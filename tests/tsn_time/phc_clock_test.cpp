#include "tsn_time/phc_clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tsn::time {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

PhcModel quiet_model(double drift_ppm) {
  PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

TEST(PhcClockTest, ReadAdvancesWithSimTime) {
  Simulation sim;
  PhcClock phc(sim, quiet_model(0.0), "phc0");
  EXPECT_EQ(phc.read(), 0);
  sim.after(1_s, [&] { EXPECT_NEAR(static_cast<double>(phc.read()), 1e9, 1.0); });
  sim.run_until(SimTime(2_s));
}

TEST(PhcClockTest, DriftAccumulates) {
  Simulation sim;
  PhcClock phc(sim, quiet_model(5.0), "phc");
  sim.after(10_s, [&] {
    // +5 ppm over 10 s = +50 us.
    EXPECT_NEAR(static_cast<double>(phc.read()) - 1e10, 50000.0, 1.0);
  });
  sim.run_until(SimTime(20_s));
}

TEST(PhcClockTest, FrequencyAdjustmentCompensatesDrift) {
  Simulation sim;
  PhcClock phc(sim, quiet_model(5.0), "phc");
  phc.adj_frequency(-5000.0); // -5 ppm in ppb
  sim.after(10_s, [&] {
    // (1+5e-6)(1-5e-6) ~ 1 - 2.5e-11: residual ~0.25 ns over 10 s.
    EXPECT_NEAR(static_cast<double>(phc.read()) - 1e10, 0.0, 5.0);
  });
  sim.run_until(SimTime(20_s));
}

TEST(PhcClockTest, StepShiftsPhase) {
  Simulation sim;
  PhcClock phc(sim, quiet_model(0.0), "phc");
  phc.step(123456);
  EXPECT_NEAR(static_cast<double>(phc.read()), 123456.0, 1.0);
  phc.step(-23456);
  EXPECT_NEAR(static_cast<double>(phc.read()), 100000.0, 1.0);
}

TEST(PhcClockTest, FreqAdjClamped) {
  Simulation sim;
  PhcModel m = quiet_model(0.0);
  m.max_freq_adj_ppb = 1000.0;
  PhcClock phc(sim, m, "phc");
  phc.adj_frequency(5000.0);
  EXPECT_DOUBLE_EQ(phc.freq_adj_ppb(), 1000.0);
  phc.adj_frequency(-99999.0);
  EXPECT_DOUBLE_EQ(phc.freq_adj_ppb(), -1000.0);
}

TEST(PhcClockTest, TimestampJitterIsBoundedAndNonDegenerate) {
  Simulation sim;
  PhcModel m = quiet_model(0.0);
  m.timestamp_jitter_ns = 8.0;
  PhcClock phc(sim, m, "phc");
  sim.after(1_s, [&] {
    double sum = 0.0, sum2 = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      const double err = static_cast<double>(phc.hw_timestamp()) - static_cast<double>(phc.read());
      sum += err;
      sum2 += err * err;
    }
    const double mean = sum / n;
    const double std = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(mean, 0.0, 1.0);
    EXPECT_NEAR(std, 8.0, 1.5);
  });
  sim.run_until(SimTime(2_s));
}

TEST(PhcClockTest, MidIntervalAdjustmentIntegratesPiecewise) {
  Simulation sim;
  PhcClock phc(sim, quiet_model(0.0), "phc");
  sim.at(SimTime(1_s), [&] { phc.adj_frequency(1000.0); }); // +1 ppm from t=1s
  sim.at(SimTime(3_s), [&] {
    // 1 s at rate 1.0 + 2 s at 1+1e-6 = 3s + 2000 ns.
    EXPECT_NEAR(static_cast<double>(phc.read()) - 3e9, 2000.0, 1.0);
  });
  sim.run_until(SimTime(4_s));
}

TEST(PhcClockTest, TwoClocksSameSeedDifferentNamesDiverge) {
  Simulation sim(99);
  PhcModel m; // random initial drift
  PhcClock a(sim, m, "a");
  PhcClock b(sim, m, "b");
  EXPECT_NE(a.true_drift_ppm(), b.true_drift_ppm());
}

TEST(PhcClockTest, EffectiveRateCombinesDriftAndAdj) {
  Simulation sim;
  PhcClock phc(sim, quiet_model(2.0), "phc");
  phc.adj_frequency(3000.0);
  EXPECT_NEAR(phc.effective_rate(), (1.0 + 2e-6) * (1.0 + 3e-6), 1e-12);
}

} // namespace
} // namespace tsn::time
