// Holdover statistics: the analytic oscillator model used by the
// fast-forward stepper (DESIGN.md §12) must reproduce the event-simulated
// wander accumulation. The oscillator integrates its bounded-random-walk
// drift lazily, quantum by quantum, so one coarse advance() and many fine
// sync-interval-sized advances over the same span consume the identical
// RNG sequence -- trajectories agree to rounding, and disjoint-seed
// populations agree in distribution (quantile comparison).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/sim_time.hpp"
#include "tsn_time/oscillator.hpp"
#include "util/rng.hpp"

namespace {

using tsn::sim::SimTime;
using tsn::time::Oscillator;
using tsn::time::OscillatorModel;

constexpr std::int64_t kSec = 1'000'000'000LL;
constexpr std::int64_t kSyncInterval = 125'000'000LL; // 8 Hz, like gPTP

// Local elapsed minus true elapsed: the holdover offset an undisciplined
// clock accumulates over [0, to].
long double offset_after_fine(std::uint64_t seed, std::int64_t horizon_ns) {
  Oscillator osc(OscillatorModel{}, tsn::util::RngStream(seed, "holdover"));
  long double elapsed = 0.0L;
  for (std::int64_t t = kSyncInterval; t <= horizon_ns; t += kSyncInterval)
    elapsed += osc.advance(SimTime{t});
  elapsed += osc.advance(SimTime{horizon_ns});
  return elapsed - static_cast<long double>(horizon_ns);
}

long double offset_after_coarse(std::uint64_t seed, std::int64_t horizon_ns) {
  Oscillator osc(OscillatorModel{}, tsn::util::RngStream(seed, "holdover"));
  return osc.advance(SimTime{horizon_ns}) -
         static_cast<long double>(horizon_ns);
}

double quantile(std::vector<double> v, double p) {
  const std::size_t k =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

// Per-seed exactness: a single analytic advance over an hour equals the
// 8 Hz event-simulated integration of the same oscillator to rounding
// (same quantum boundaries, same RNG draws, same drift trajectory).
TEST(HoldoverStatsTest, CoarseAdvanceMatchesFineAdvancePerSeed) {
  constexpr std::int64_t kHorizon = 3'600 * kSec;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull, 4242ull}) {
    Oscillator fine(OscillatorModel{}, tsn::util::RngStream(seed, "holdover"));
    Oscillator coarse(OscillatorModel{},
                      tsn::util::RngStream(seed, "holdover"));

    long double fine_elapsed = 0.0L;
    for (std::int64_t t = kSyncInterval; t <= kHorizon; t += kSyncInterval)
      fine_elapsed += fine.advance(SimTime{t});
    const long double coarse_elapsed = coarse.advance(SimTime{kHorizon});

    // Identical random walk: both consumed the same wander steps.
    EXPECT_DOUBLE_EQ(fine.drift_ppm(), coarse.drift_ppm()) << seed;
    // Identical integral to long-double rounding (~1e-3 ns over an hour;
    // 0.1 ns is orders of magnitude above the accumulated error and
    // orders of magnitude below anything the precision bound can see).
    EXPECT_NEAR(static_cast<double>(fine_elapsed - coarse_elapsed), 0.0, 0.1)
        << seed;
  }
}

// Population-level equivalence on a shortened horizon: the analytic
// offsets of one seed set and the event-simulated offsets of a disjoint
// seed set are draws from the same distribution. Compared via quantiles
// of the realized average drift rate (offset / horizon, in ppm) with a
// fixed tolerance sized for n=160 samples of a +/-5 ppm bounded walk.
TEST(HoldoverStatsTest, AnalyticOffsetDistributionMatchesSimulatedQuantiles) {
  constexpr std::int64_t kHorizon = 600 * kSec;
  constexpr std::size_t kN = 160;

  std::vector<double> fine_ppm, coarse_ppm;
  for (std::size_t i = 0; i < kN; ++i) {
    fine_ppm.push_back(static_cast<double>(
        offset_after_fine(1'000 + i, kHorizon) / (1e-6L * kHorizon)));
    coarse_ppm.push_back(static_cast<double>(
        offset_after_coarse(50'000 + i, kHorizon) / (1e-6L * kHorizon)));
  }

  // Drift stays inside the hard bound in both populations.
  for (double d : fine_ppm) EXPECT_LE(std::abs(d), 5.0);
  for (double d : coarse_ppm) EXPECT_LE(std::abs(d), 5.0);

  // Quantile agreement. The initial drift is uniform in [-5, 5] ppm and
  // the 10-minute wander contribution is small, so quantile standard
  // error at n=160 is ~0.3 ppm; 1.0 ppm is a 3-sigma gate that still
  // fails hard if the analytic path mis-scales wander or drift.
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    EXPECT_NEAR(quantile(fine_ppm, p), quantile(coarse_ppm, p), 1.0)
        << "quantile " << p;
  }
}

// Week-scale analytic accumulation stays inside the drift bound's
// envelope: |offset| <= max_drift_ppm * horizon. Guards the fast-forward
// holdover study in EXPERIMENTS.md.
TEST(HoldoverStatsTest, WeekScaleAccumulationRespectsDriftBound) {
  constexpr std::int64_t kWeek = 7LL * 24 * 3'600 * kSec;
  for (std::uint64_t seed : {5ull, 6ull}) {
    const long double off = offset_after_coarse(seed, kWeek);
    const long double envelope = 5.0e-6L * static_cast<long double>(kWeek);
    EXPECT_LE(std::abs(static_cast<double>(off)),
              static_cast<double>(envelope))
        << seed;
    // A healthy oscillator is not pathologically quiet either: over a
    // week even a 0.01 ppm average rate leaves > 6 ms.
    EXPECT_GT(std::abs(static_cast<double>(off)), 1e6) << seed;
  }
}

} // namespace
