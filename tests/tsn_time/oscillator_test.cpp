#include "tsn_time/oscillator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tsn::time {
namespace {

using tsn::sim::SimTime;
using namespace tsn::sim::literals;

OscillatorModel fixed_drift(double ppm) {
  OscillatorModel m;
  m.initial_drift_ppm = ppm;
  m.wander_sigma_ppm = 0.0; // freeze the random walk
  return m;
}

TEST(OscillatorTest, ZeroDriftTracksTrueTime) {
  Oscillator osc(fixed_drift(0.0), util::RngStream(1, "o"));
  const long double elapsed = osc.advance(SimTime(1_s));
  EXPECT_NEAR(static_cast<double>(elapsed), 1e9, 1e-3);
}

TEST(OscillatorTest, PositiveDriftRunsFast) {
  Oscillator osc(fixed_drift(5.0), util::RngStream(1, "o"));
  const long double elapsed = osc.advance(SimTime(1_s));
  // +5 ppm over 1 s = +5000 ns.
  EXPECT_NEAR(static_cast<double>(elapsed), 1e9 + 5000.0, 1e-3);
}

TEST(OscillatorTest, NegativeDriftRunsSlow) {
  Oscillator osc(fixed_drift(-5.0), util::RngStream(1, "o"));
  const long double elapsed = osc.advance(SimTime(1_s));
  EXPECT_NEAR(static_cast<double>(elapsed), 1e9 - 5000.0, 1e-3);
}

TEST(OscillatorTest, SplitAdvanceEqualsSingleAdvance) {
  Oscillator a(fixed_drift(3.0), util::RngStream(1, "o"));
  Oscillator b(fixed_drift(3.0), util::RngStream(1, "o"));
  long double split = a.advance(SimTime(400_ms));
  split += a.advance(SimTime(1_s));
  const long double whole = b.advance(SimTime(1_s));
  EXPECT_NEAR(static_cast<double>(split - whole), 0.0, 1e-3);
}

TEST(OscillatorTest, WanderStaysBounded) {
  OscillatorModel m;
  m.initial_drift_ppm = 0.0;
  m.max_drift_ppm = 5.0;
  m.wander_sigma_ppm = 0.5; // aggressive wander to stress the bound
  m.wander_step_ns = 1_ms;
  Oscillator osc(m, util::RngStream(7, "wander"));
  for (int i = 1; i <= 1000; ++i) {
    osc.advance(SimTime(i * 1_ms));
    EXPECT_LE(std::abs(osc.drift_ppm()), 5.0);
  }
}

TEST(OscillatorTest, WanderIsDeterministicPerSeed) {
  OscillatorModel m;
  m.initial_drift_ppm = 0.0;
  m.wander_sigma_ppm = 0.1;
  Oscillator a(m, util::RngStream(7, "w"));
  Oscillator b(m, util::RngStream(7, "w"));
  a.advance(SimTime(1_s));
  b.advance(SimTime(1_s));
  EXPECT_EQ(a.drift_ppm(), b.drift_ppm());
}

TEST(OscillatorTest, RandomInitialDriftWithinBound) {
  OscillatorModel m; // initial NaN -> random
  m.max_drift_ppm = 5.0;
  for (int seed = 0; seed < 20; ++seed) {
    Oscillator osc(m, util::RngStream(seed, "r"));
    EXPECT_LE(std::abs(osc.drift_ppm()), 5.0);
  }
}

TEST(OscillatorTest, DriftRateBoundLimitsDivergence) {
  // Two extreme-drift oscillators diverge at <= 2 * rmax * dt, the Gamma
  // term of the paper's precision bound (1.25 us at S = 125 ms).
  Oscillator fast(fixed_drift(5.0), util::RngStream(1, "f"));
  Oscillator slow(fixed_drift(-5.0), util::RngStream(1, "s"));
  const long double d = fast.advance(SimTime(125_ms)) - slow.advance(SimTime(125_ms));
  EXPECT_NEAR(static_cast<double>(d), 1250.0, 1e-3); // 1.25 us
}

} // namespace
} // namespace tsn::time
