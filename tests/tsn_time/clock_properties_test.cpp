// Long-horizon property tests on the clock models: the invariants every
// layer above silently depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "tsn_time/phc_clock.hpp"

namespace tsn::time {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

class ClockPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockPropertyTest, PhcReadsAreMonotoneUnderWanderAndServo) {
  Simulation sim(GetParam());
  PhcModel m; // random drift, default wander
  PhcClock phc(sim, m, "prop");
  util::RngStream rng = sim.make_rng("steps");
  std::int64_t last = phc.read();
  for (int i = 0; i < 5'000; ++i) {
    sim.after(rng.uniform_int(1, 2'000'000), [] {});
    sim.run_events(1);
    // Aggressive servo activity must never make the counter run backwards.
    if (i % 37 == 0) phc.adj_frequency(rng.uniform(-60'000.0, 60'000.0));
    const std::int64_t now = phc.read();
    ASSERT_GE(now, last) << "seed " << GetParam() << " step " << i;
    last = now;
  }
}

TEST_P(ClockPropertyTest, FreeRunningErrorBoundedByMaxDrift) {
  Simulation sim(GetParam());
  PhcModel m;
  m.oscillator.max_drift_ppm = 5.0;
  m.timestamp_jitter_ns = 0.0;
  PhcClock phc(sim, m, "bounded");
  for (int hour = 1; hour <= 6; ++hour) {
    sim.run_until(SimTime(hour * 1_h));
    const double err = std::abs(static_cast<double>(phc.read() - sim.now().ns()));
    // |error| <= rmax * elapsed, the assumption behind Gamma = 2*rmax*S.
    EXPECT_LE(err, 5e-6 * static_cast<double>(sim.now().ns()) + 1.0)
        << "seed " << GetParam() << " hour " << hour;
  }
}

TEST_P(ClockPropertyTest, HwTimestampErrorIsZeroMeanAndBounded) {
  Simulation sim(GetParam());
  PhcModel m;
  m.oscillator.initial_drift_ppm = 0.0;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 8.0;
  PhcClock phc(sim, m, "ts");
  sim.run_until(SimTime(1_s));
  double sum = 0.0;
  double worst = 0.0;
  const int n = 5'000;
  for (int i = 0; i < n; ++i) {
    const double err = static_cast<double>(phc.hw_timestamp() - phc.read());
    sum += err;
    worst = std::max(worst, std::abs(err));
  }
  EXPECT_NEAR(sum / n, 0.0, 1.0);
  EXPECT_LT(worst, 8.0 * 6.0); // 6 sigma
}

TEST_P(ClockPropertyTest, StepIsExactAndRateIsPreserved) {
  Simulation sim(GetParam());
  PhcModel m;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  PhcClock phc(sim, m, "step");
  sim.run_until(SimTime(10_s));
  const std::int64_t before = phc.read();
  phc.step(123'456'789);
  EXPECT_EQ(phc.read() - before, 123'456'789);
  const double rate_before = phc.effective_rate();
  phc.step(-123'456'789);
  EXPECT_DOUBLE_EQ(phc.effective_rate(), rate_before); // steps don't touch rate
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockPropertyTest, ::testing::Values(1, 7, 42, 1337));

} // namespace
} // namespace tsn::time
