// Sweep-level observability determinism: the merged per-replica metric
// totals of a threads=4 sweep must be identical to a threads=1 sweep
// (replicas own their worlds; snapshots fold in submission order), and
// the shared sweep-level registry must count every replica exactly once
// however many workers feed it.
#include <gtest/gtest.h>

#include "hv/ecd.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/str.hpp"

namespace tsn {
namespace {

using namespace tsn::sim::literals;

/// One replica world: a 3-VM ECD with monitor + servos instrumented
/// through the world-local registry, like a Scenario replica but cheap.
obs::MetricsSnapshot run_world(std::uint64_t seed) {
  sim::Simulation sim(seed);
  obs::Observability obs;
  hv::Ecd ecd(sim, {"ecd", {}, {}}, obs.context());
  for (int i = 0; i < 3; ++i) {
    hv::ClockSyncVmConfig cfg;
    cfg.name = util::format("vm%d", i);
    cfg.mac = net::MacAddress::from_u64(0x70 + static_cast<std::uint64_t>(i));
    cfg.domains = {1, 2, 3, 4};
    ecd.add_clock_sync_vm(cfg);
  }
  ecd.start();
  sim.run_until(sim::SimTime(3_s));
  obs.metrics.gauge("sim.events_executed").set(static_cast<double>(sim.events_executed()));
  return obs.metrics.snapshot();
}

obs::MetricsSnapshot sweep_total(std::size_t threads, obs::MetricsSnapshot* sweep_level) {
  experiments::ScenarioConfig base;
  base.seed = 7;
  const auto configs = sweep::seed_sweep(base, 8);
  obs::Observability sweep_obs;
  sweep::SweepRunner runner({.threads = threads, .obs = sweep_obs.context()});
  const auto parts = runner.run(
      configs,
      [](const experiments::ScenarioConfig& cfg, std::size_t) { return run_world(cfg.seed); });
  if (sweep_level) *sweep_level = sweep_obs.metrics.snapshot();
  return sweep::merge_metrics(parts);
}

TEST(SweepMetricsTest, MergedTotalsIdenticalAcrossThreadCounts) {
  obs::MetricsSnapshot sweep1, sweep4;
  const auto one = sweep_total(1, &sweep1);
  const auto four = sweep_total(4, &sweep4);

  // The whole point of per-world registries + submission-order merge:
  // byte-identical totals whatever thread count produced them.
  EXPECT_EQ(one.counters, four.counters);
  EXPECT_EQ(one.gauges, four.gauges);
  EXPECT_EQ(one.histograms.size(), four.histograms.size());

  // The worlds actually counted something (monitor ticks + servo samples).
  EXPECT_GT(one.counters.at("ecd/monitor.checks"), 0u);
  EXPECT_GT(one.counters.at("vm0/phc2sys.servo.samples"), 0u);
  EXPECT_GT(one.gauges.at("sim.events_executed"), 0.0);

  // The shared sweep-level registry saw every replica exactly once on
  // both runs -- the striped counters lose nothing under concurrency.
  EXPECT_EQ(sweep1.counters.at("sweep.replicas_run"), 8u);
  EXPECT_EQ(sweep4.counters.at("sweep.replicas_run"), 8u);
  EXPECT_EQ(sweep1.histograms.at("sweep.replica_wall_ms").count, 8u);
  EXPECT_EQ(sweep4.histograms.at("sweep.replica_wall_ms").count, 8u);
}

} // namespace
} // namespace tsn
