// Trace ring: bounded memory (overwrite-oldest), name interning and the
// exporters.
#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace tsn::obs {
namespace {

TraceRecord rec(std::int64_t t, TraceKind kind = TraceKind::kGateAcquire,
                std::uint16_t src = 0) {
  TraceRecord r;
  r.t_ns = t;
  r.kind = kind;
  r.source = src;
  return r;
}

TEST(TraceTest, InternReturnsStableIds) {
  TraceRing ring(8);
  const auto a = ring.intern("c11/fta");
  const auto b = ring.intern("monitor");
  EXPECT_NE(a, b);
  EXPECT_EQ(ring.intern("c11/fta"), a);
  EXPECT_EQ(ring.name(a), "c11/fta");
  EXPECT_EQ(ring.source_count(), 2u);
}

TEST(TraceTest, HoldsRecordsInOrderBeforeWrap) {
  TraceRing ring(8);
  for (int i = 0; i < 5; ++i) ring.push(rec(i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(snap[static_cast<std::size_t>(i)].t_ns, i);
}

TEST(TraceTest, MemoryStaysBoundedAndOldestIsOverwritten) {
  // The bugfix PR's acceptance gate: a ring must never grow past its
  // capacity however long the run, and it must drop the OLDEST records.
  TraceRing ring(4);
  for (int i = 0; i < 1000; ++i) ring.push(rec(i));
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 1000u);
  EXPECT_EQ(ring.dropped(), 996u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().t_ns, 996);
  EXPECT_EQ(snap.back().t_ns, 999);
}

TEST(TraceTest, ClearResets) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) ring.push(rec(i));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceTest, KindNamesAreDistinct) {
  EXPECT_STREQ(to_string(TraceKind::kGateAcquire), "gate_acquire");
  EXPECT_STRNE(to_string(TraceKind::kNoQuorum), to_string(TraceKind::kAggregate));
  EXPECT_STRNE(to_string(TraceKind::kNoSuccessor), to_string(TraceKind::kTakeover));
}

TEST(TraceTest, CsvAndJsonExportResolveNames) {
  TraceRing ring(8);
  const auto src = ring.intern("ecd1/monitor");
  ring.push(rec(125, TraceKind::kHeartbeatMiss, src));
  ring.push(rec(250, TraceKind::kTakeover, src));

  const std::string csv = ring.to_csv();
  EXPECT_NE(csv.find("heartbeat_miss"), std::string::npos);
  EXPECT_NE(csv.find("ecd1/monitor"), std::string::npos);

  const std::string json = ring.to_json();
  EXPECT_NE(json.find("\"takeover\""), std::string::npos);
  EXPECT_NE(json.find("\"t_ns\": 250"), std::string::npos);
}

} // namespace
} // namespace tsn::obs
