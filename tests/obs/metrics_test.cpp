// Metrics registry: counters, gauges, fixed-bucket histograms, snapshots
// and the deterministic merge the sweep-level exporters rely on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tsn::obs {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, RegistryReturnsSameCounterForSameName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().counters.at("x"), 2u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(-3.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g"), -3.0);
}

TEST(MetricsTest, HistogramBucketsCountAndSum) {
  MetricsRegistry reg;
  LatencyHistogram& h = reg.histogram("lat", {10.0, 100.0});
  h.observe(5.0);   // <= 10
  h.observe(10.0);  // <= 10 (upper bound is inclusive via upper_bound)
  h.observe(50.0);  // <= 100
  h.observe(500.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 565.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsTest, HistogramReregisterWithDifferentBoundsThrows) {
  MetricsRegistry reg;
  reg.histogram("lat", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("lat", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("lat", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsTest, UnsortedHistogramBoundsRejected) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {3.0, 1.0}), std::invalid_argument);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  // The striped cells must absorb concurrent writers without losing
  // increments -- this is the property the sweep-level counters lean on.
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  LatencyHistogram& h = reg.histogram("ms", {1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(0.5);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, MergeSumsCountersGaugesAndBuckets) {
  MetricsRegistry a, b;
  a.counter("n").inc(3);
  b.counter("n").inc(4);
  b.counter("only_b").inc();
  a.gauge("total").set(10.0);
  b.gauge("total").set(2.5);
  a.histogram("lat", {10.0}).observe(5.0);
  b.histogram("lat", {10.0}).observe(50.0);

  const auto merged = merge_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.counters.at("n"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  // Gauges carry per-replica totals, so the merge is the sweep total.
  EXPECT_DOUBLE_EQ(merged.gauges.at("total"), 12.5);
  const auto& h = merged.histograms.at("lat");
  EXPECT_EQ(h.count, 2u);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_DOUBLE_EQ(h.sum, 55.0);
}

TEST(MetricsTest, MergeRejectsMismatchedBuckets) {
  MetricsRegistry a, b;
  a.histogram("lat", {10.0}).observe(1.0);
  b.histogram("lat", {20.0}).observe(1.0);
  auto snap = a.snapshot();
  EXPECT_THROW(snap.merge(b.snapshot()), std::invalid_argument);
}

TEST(MetricsTest, JsonAndCsvExportContainEveryMetric) {
  MetricsRegistry reg;
  reg.counter("c11/fta.aggregations").inc(9);
  reg.gauge("sim.events_executed").set(123.0);
  reg.histogram("wall_ms", {1.0, 10.0}).observe(3.0);
  const auto snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"c11/fta.aggregations\": 9"), std::string::npos);
  EXPECT_NE(json.find("sim.events_executed"), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\""), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("counter,c11/fta.aggregations,9"), std::string::npos);
  EXPECT_NE(csv.find("gauge,sim.events_executed"), std::string::npos);
  EXPECT_NE(csv.find("histogram,wall_ms.count,1"), std::string::npos);
}

TEST(MetricsTest, SnapshotOrderIsDeterministic) {
  MetricsRegistry reg;
  reg.counter("b");
  reg.counter("a");
  reg.counter("c");
  const auto snap = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, v] : snap.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

} // namespace
} // namespace tsn::obs
