// Run manifest: the JSON record every reproduction binary writes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/manifest.hpp"

namespace tsn::obs {
namespace {

RunManifest sample_manifest() {
  RunManifest m;
  m.tool = "unit_test";
  m.seed = 42;
  m.replicas = 3;
  m.threads = 2;
  m.scenario["num_ecds"] = "4";
  m.scenario["aggregation"] = "fta";
  m.extra["peak_ns"] = "10080";
  MetricsRegistry reg;
  reg.counter("c11/fta.aggregations").inc(7);
  reg.gauge("sim.events_executed").set(99.0);
  m.metrics = reg.snapshot();
  return m;
}

TEST(ManifestTest, BuildGitShaIsNonEmpty) {
  ASSERT_NE(build_git_sha(), nullptr);
  EXPECT_GT(std::string(build_git_sha()).size(), 0u);
}

TEST(ManifestTest, JsonContainsEverySection) {
  const std::string json = sample_manifest().to_json();
  EXPECT_NE(json.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"replicas\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"num_ecds\": \"4\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_ns\": \"10080\""), std::string::npos);
  EXPECT_NE(json.find("\"c11/fta.aggregations\": 7"), std::string::npos);
}

TEST(ManifestTest, JsonEscapesSpecialCharacters) {
  RunManifest m;
  m.tool = "quo\"te";
  m.scenario["k"] = "line\nbreak";
  const std::string json = m.to_json();
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

TEST(ManifestTest, WriteManifestRoundTrips) {
  const std::string path = testing::TempDir() + "manifest_test.json";
  write_manifest(path, sample_manifest());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), sample_manifest().to_json());
  std::remove(path.c_str());
}

TEST(ManifestTest, WriteManifestThrowsOnBadPath) {
  EXPECT_THROW(write_manifest("/nonexistent-dir/x/y.json", sample_manifest()),
               std::runtime_error);
}

} // namespace
} // namespace tsn::obs
