#include "util/inline_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace tsn::util {
namespace {

using Fn = InlineFunction<int(), 64>;

TEST(InlineFnTest, EmptyIsFalsy) {
  Fn f;
  EXPECT_FALSE(f);
  Fn g = nullptr;
  EXPECT_FALSE(g);
}

TEST(InlineFnTest, InvokesCapture) {
  int x = 41;
  Fn f = [&x] { return ++x; };
  ASSERT_TRUE(f);
  EXPECT_EQ(f(), 42);
  EXPECT_EQ(x, 42);
}

TEST(InlineFnTest, ForwardsArgumentsAndReturn) {
  InlineFunction<int(int, int), 32> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(20, 22), 42);
}

TEST(InlineFnTest, MoveTransfersOwnership) {
  int calls = 0;
  Fn a = [&calls] { return ++calls; };
  Fn b = std::move(a);
  EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move) — part of the contract
  ASSERT_TRUE(b);
  EXPECT_EQ(b(), 1);
  a = std::move(b);
  EXPECT_FALSE(b); // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a(), 2);
}

TEST(InlineFnTest, SupportsMoveOnlyCaptures) {
  auto p = std::make_unique<int>(7);
  InlineFunction<int(), 64> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 7);
  InlineFunction<int(), 64> g = std::move(f);
  EXPECT_EQ(g(), 7);
}

TEST(InlineFnTest, DestroysCaptureOnResetAndDestruction) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> n;
    ~Probe() {
      if (n) ++*n;
    }
    Probe(std::shared_ptr<int> c) : n(std::move(c)) {}
    Probe(Probe&&) noexcept = default;
    int operator()() { return *n; }
  };
  {
    InlineFunction<int(), 64> f = Probe{counter};
    EXPECT_EQ(*counter, 0);
    f.reset();
    EXPECT_EQ(*counter, 1);
    EXPECT_FALSE(f);
    f = Probe{counter};
  }
  EXPECT_EQ(*counter, 2); // destructor ran at scope exit too
}

TEST(InlineFnTest, MoveAssignReleasesPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<int(), 64> f = [counter] { return 1; };
  const long before = counter.use_count();
  f = [] { return 2; };
  EXPECT_EQ(counter.use_count(), before - 1);
  EXPECT_EQ(f(), 2);
}

TEST(InlineFnTest, CapacityBoundaryCaptureFits) {
  // Exactly Capacity bytes of capture must compile and work.
  std::array<std::uint8_t, 64> blob{};
  blob[0] = 9;
  blob[63] = 33;
  Fn f = [blob] { return blob[0] + blob[63]; };
  EXPECT_EQ(f(), 42);
}

// Compile-time contract: captures one byte over Capacity are rejected, as
// are over-aligned ones. (Would trip the static_asserts if constructible.)
static_assert(std::is_constructible_v<Fn, int (*)()>);
struct TooBig {
  std::array<std::uint8_t, 65> blob;
  int operator()() { return 0; }
};
static_assert(sizeof(TooBig) > Fn::kCapacity,
              "TooBig must exceed the inline capacity for the test to mean "
              "anything");

TEST(InlineFnTest, FunctionPointerWorks) {
  struct S {
    static int forty_two() { return 42; }
  };
  Fn f = &S::forty_two;
  EXPECT_EQ(f(), 42);
}

TEST(InlineFnTest, SizeStaysCompact) {
  // One ops pointer + padded inline storage; growing this bloats every
  // event-queue entry, so lock it down.
  static_assert(sizeof(InlineFunction<void(), 64>) <=
                64 + 2 * alignof(std::max_align_t));
}

} // namespace
} // namespace tsn::util
