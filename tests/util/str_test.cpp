#include "util/str.hpp"

#include <gtest/gtest.h>

namespace tsn::util {
namespace {

TEST(StrTest, FormatBasic) {
  EXPECT_EQ(format("%d+%d=%d", 1, 2, 3), "1+2=3");
  EXPECT_EQ(format("%s", "hello"), "hello");
  EXPECT_EQ(format("%.3f", 1.23456), "1.235");
}

TEST(StrTest, FormatEmptyAndLong) {
  EXPECT_EQ(format("%s", ""), "");
  const std::string big(5000, 'x');
  EXPECT_EQ(format("%s", big.c_str()), big);
}

TEST(StrTest, TrimRemovesWhitespaceBothEnds) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrTest, SplitBasic) {
  auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrTest, SplitEmptyAndTrailing) {
  EXPECT_EQ(split("", ',').size(), 1u);
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrTest, StartsWith) {
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(StrTest, HumanNs) {
  EXPECT_EQ(human_ns(999), "999ns");
  EXPECT_EQ(human_ns(1250), "1.25us");
  EXPECT_EQ(human_ns(12636000), "12.64ms");
  EXPECT_EQ(human_ns(-2500), "-2.50us");
  EXPECT_EQ(human_ns(1500000000), "1.500s");
}

TEST(StrTest, Hms) {
  EXPECT_EQ(hms(0), "00:00:00");
  EXPECT_EQ(hms(3661LL * 1000000000LL), "01:01:01");
  EXPECT_EQ(hms(86399LL * 1000000000LL), "23:59:59");
}

TEST(StrTest, ParseDurationNs) {
  EXPECT_EQ(parse_duration_ns("90"), 90'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("90s"), 90'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("15m"), 900'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("36h"), 129'600'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("1d"), 86'400'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("1w"), 604'800'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("0.5h"), 1'800'000'000'000LL);
  EXPECT_EQ(parse_duration_ns(" 2m "), 120'000'000'000LL);
  EXPECT_EQ(parse_duration_ns("0"), 0);
  EXPECT_THROW(parse_duration_ns(""), std::invalid_argument);
  EXPECT_THROW(parse_duration_ns("abc"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ns("5x"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ns("-3s"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ns("12h30"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ns("1e12w"), std::invalid_argument);
}

} // namespace
} // namespace tsn::util
