#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tsn::util {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RngStream r(3, "merge");
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(0, 1);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSetTest, AddAfterQuantileResorts) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(0.0); // smaller than all previous
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

} // namespace
} // namespace tsn::util
