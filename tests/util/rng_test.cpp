#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace tsn::util {
namespace {

TEST(RngTest, DeterministicForSameSeedAndName) {
  RngStream a(42, "foo");
  RngStream b(42, "foo");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(RngTest, DifferentStreamsDiffer) {
  RngStream a(42, "foo");
  RngStream b(42, "bar");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, DifferentSeedsDiffer) {
  RngStream a(1, "foo");
  RngStream b(2, "foo");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRange) {
  RngStream r(7, "u");
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  RngStream r(7, "ui");
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  RngStream r(7, "n");
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ChanceEdges) {
  RngStream r(7, "c");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, Fnv1aKnownValues) {
  // FNV-1a reference: hash of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(BoundedRandomWalkTest, StaysWithinBounds) {
  RngStream r(9, "walk");
  BoundedRandomWalk w(0.0, 0.5, 5.0);
  for (int i = 0; i < 10000; ++i) {
    const double v = w.step(r);
    EXPECT_LE(v, 5.0);
    EXPECT_GE(v, -5.0);
  }
}

TEST(BoundedRandomWalkTest, ActuallyMoves) {
  RngStream r(9, "walk2");
  BoundedRandomWalk w(0.0, 0.1, 5.0);
  double min = 0, max = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = w.step(r);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, -0.5);
  EXPECT_GT(max, 0.5);
}

} // namespace
} // namespace tsn::util
