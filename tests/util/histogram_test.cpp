#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace tsn::util {
namespace {

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 100.0, 10.0);
  EXPECT_EQ(h.bin_count(), 10u);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(99.0);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 10.0, 1.0);
  h.add(-1.0);
  h.add(10.0);
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  // Out-of-range values still count towards the stats (paper's Fig. 4b
  // reports max = 10080 ns even though the plotted range ends at 1000 ns).
  EXPECT_EQ(h.stats().count(), 3u);
  EXPECT_EQ(h.stats().max(), 1e9);
}

TEST(HistogramTest, BinLo) {
  Histogram h(100.0, 200.0, 25.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 175.0);
}

TEST(HistogramTest, AsciiRendersRows) {
  Histogram h(0.0, 30.0, 10.0);
  for (int i = 0; i < 5; ++i) h.add(5.0);
  h.add(15.0);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('5'), std::string::npos);
}

} // namespace
} // namespace tsn::util
