#include "util/series.hpp"

#include <gtest/gtest.h>

namespace tsn::util {
namespace {

TEST(TimeSeriesTest, AggregateBuckets) {
  TimeSeries ts;
  // Two points in bucket 0, one in bucket 2 (bucket = 100 ns).
  ts.add(10, 1.0);
  ts.add(90, 3.0);
  ts.add(250, 10.0);
  auto agg = ts.aggregate(100);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].bucket_start_ns, 0);
  EXPECT_DOUBLE_EQ(agg[0].avg, 2.0);
  EXPECT_DOUBLE_EQ(agg[0].min, 1.0);
  EXPECT_DOUBLE_EQ(agg[0].max, 3.0);
  EXPECT_EQ(agg[0].count, 2u);
  EXPECT_EQ(agg[1].bucket_start_ns, 200);
  EXPECT_DOUBLE_EQ(agg[1].avg, 10.0);
}

TEST(TimeSeriesTest, WindowHalfOpen) {
  TimeSeries ts;
  ts.add(0, 1.0);
  ts.add(100, 2.0);
  ts.add(200, 3.0);
  auto w = ts.window(0, 200);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1].t_ns, 100);
}

TEST(TimeSeriesTest, StatsMatchValues) {
  TimeSeries ts;
  ts.add(0, 2.0);
  ts.add(1, 4.0);
  auto st = ts.stats();
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
  EXPECT_EQ(st.count(), 2u);
}

TEST(TimeSeriesTest, EmptyAggregate) {
  TimeSeries ts;
  EXPECT_TRUE(ts.aggregate(100).empty());
  EXPECT_TRUE(ts.empty());
}

} // namespace
} // namespace tsn::util
