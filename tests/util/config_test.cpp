#include "util/config.hpp"

#include <gtest/gtest.h>

namespace tsn::util {
namespace {

TEST(ConfigTest, FromArgs) {
  const char* argv[] = {"prog", "seed=42", "duration_h=24", "rate=2.5", "verbose=true"};
  Config cfg = Config::from_args(5, argv);
  EXPECT_EQ(cfg.get_int("seed", 0), 42);
  EXPECT_EQ(cfg.get_int("duration_h", 0), 24);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
}

TEST(ConfigTest, Defaults) {
  Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_FALSE(cfg.get_bool("missing", false));
}

TEST(ConfigTest, BadSyntaxThrows) {
  const char* argv[] = {"prog", "novalue"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
  const char* argv2[] = {"prog", "=x"};
  EXPECT_THROW(Config::from_args(2, argv2), std::invalid_argument);
}

TEST(ConfigTest, BoolVariants) {
  Config cfg;
  cfg.set("a", "1");
  cfg.set("b", "off");
  cfg.set("c", "maybe");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_THROW(cfg.get_bool("c", false), std::invalid_argument);
}

TEST(ConfigTest, WhitespaceTrimmed) {
  const char* argv[] = {"prog", " key = value "};
  Config cfg = Config::from_args(2, argv);
  EXPECT_EQ(cfg.get_string("key"), "value");
}

} // namespace
} // namespace tsn::util
