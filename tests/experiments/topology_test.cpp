#include "experiments/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tsn::experiments {
namespace {

TEST(Topology, MeshCountsAndPorts) {
  for (std::size_t n : {2u, 4u, 8u}) {
    const Topology t = Topology::build(TopologyKind::kMesh, n);
    EXPECT_EQ(t.edges().size(), n * (n - 1) / 2);
    EXPECT_EQ(t.max_degree(), n - 1);
    // PR 5's constraint: every switch needs num_ecds + 1 ports (two hosts
    // plus n-1 mesh neighbors).
    EXPECT_EQ(t.min_port_count(), n + 1);
    for (std::size_t x = 0; x < n; ++x) {
      EXPECT_EQ(t.neighbors(x).size(), n - 1);
      // Mesh port map matches the legacy scenario: 2 + rank among peers.
      std::size_t rank = 0;
      for (std::size_t y = 0; y < n; ++y) {
        if (y == x) continue;
        EXPECT_EQ(t.port(x, y), 2 + rank);
        ++rank;
      }
    }
  }
}

TEST(Topology, RingCountsAndPorts) {
  const Topology t = Topology::build(TopologyKind::kRing, 8);
  EXPECT_EQ(t.edges().size(), 8u);
  EXPECT_EQ(t.max_degree(), 2u);
  EXPECT_EQ(t.min_port_count(), 4u); // fits the integrated 6-port switch
  for (std::size_t x = 0; x < 8; ++x) EXPECT_EQ(t.neighbors(x).size(), 2u);
  // Shortest-way routing around the ring.
  EXPECT_EQ(t.next_hop(1, 3), 2u);
  EXPECT_EQ(t.next_hop(7, 6), 6u);
  EXPECT_EQ(t.next_hop(0, 6), 7u); // 2 hops backward beats 6 forward
}

TEST(Topology, TreeCountsAndRouting) {
  const Topology t = Topology::build(TopologyKind::kTree, 7);
  EXPECT_EQ(t.edges().size(), 6u); // n - 1
  EXPECT_EQ(t.max_degree(), 3u);   // parent + two children
  EXPECT_EQ(t.min_port_count(), 5u);
  // Routing goes through the common ancestor.
  EXPECT_EQ(t.next_hop(3, 4), 1u);  // siblings meet at their parent
  EXPECT_EQ(t.next_hop(3, 6), 1u);  // cross-subtree goes up first
  EXPECT_EQ(t.next_hop(1, 6), 0u);
  EXPECT_EQ(t.next_hop(0, 6), 2u);
  const auto children = t.tree_children(0, 0);
  EXPECT_EQ(children, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(t.tree_children(3, 0).empty());
}

TEST(Topology, EdgesAscendAndMatchAdjacency) {
  for (TopologyKind kind :
       {TopologyKind::kMesh, TopologyKind::kRing, TopologyKind::kTree}) {
    const Topology t = Topology::build(kind, 9);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    std::pair<std::size_t, std::size_t> prev{0, 0};
    for (const auto& e : t.edges()) {
      EXPECT_LT(e.a, e.b);
      const std::pair<std::size_t, std::size_t> cur{e.a, e.b};
      EXPECT_TRUE(seen.empty() || prev < cur) << topology_name(kind);
      EXPECT_TRUE(seen.insert(cur).second);
      prev = cur;
    }
    // Every adjacency appears exactly once as an edge.
    std::size_t degree_sum = 0;
    for (std::size_t x = 0; x < t.size(); ++x) degree_sum += t.neighbors(x).size();
    EXPECT_EQ(degree_sum, 2 * t.edges().size());
  }
}

TEST(Topology, ConnectivityForAllPairs) {
  // build() throws on a disconnected graph; walking first hops must reach
  // the destination within n-1 steps for every pair.
  for (TopologyKind kind :
       {TopologyKind::kMesh, TopologyKind::kRing, TopologyKind::kTree}) {
    const Topology t = Topology::build(kind, 11);
    for (std::size_t x = 0; x < t.size(); ++x) {
      for (std::size_t dst = 0; dst < t.size(); ++dst) {
        if (x == dst) continue;
        std::size_t cur = x, steps = 0;
        while (cur != dst) {
          cur = t.next_hop(cur, dst);
          ASSERT_LT(++steps, t.size()) << topology_name(kind);
        }
      }
    }
  }
}

TEST(Topology, ParseRoundTrips) {
  EXPECT_EQ(parse_topology("mesh"), TopologyKind::kMesh);
  EXPECT_EQ(parse_topology("ring"), TopologyKind::kRing);
  EXPECT_EQ(parse_topology("tree"), TopologyKind::kTree);
  EXPECT_THROW(parse_topology("torus"), std::invalid_argument);
  EXPECT_STREQ(topology_name(TopologyKind::kRing), "ring");
}

} // namespace
} // namespace tsn::experiments
