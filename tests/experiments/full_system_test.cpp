// Full-testbed integration tests: the 4-ECD mesh of Fig. 2 with all eight
// clock synchronization VMs, bridges, measurement VLAN and probe.
#include <gtest/gtest.h>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "faults/attacker.hpp"
#include "faults/injector.hpp"

namespace tsn::experiments {
namespace {

using namespace tsn::sim::literals;

TEST(FullSystemTest, BringUpConvergesToFta) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  EXPECT_TRUE(scenario.all_in_fta_phase());
  EXPECT_LT(scenario.sim().now().ns(), 60_s);
  // After FTA settles, GM clocks agree to well under the bound.
  scenario.sim().run_until(scenario.sim().now() + 30_s);
  EXPECT_LT(scenario.gm_clock_disagreement_ns(), 2'000.0);
}

TEST(FullSystemTest, CalibrationInPaperBallpark) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  // Paper exp. 1: dmin 4120 ns, dmax 9188 ns, Pi 12.64 us, gamma 1313 ns.
  EXPECT_GT(cal.dmin_ns, 2'500.0);
  EXPECT_LT(cal.dmin_ns, 6'000.0);
  EXPECT_GT(cal.dmax_ns, cal.dmin_ns);
  EXPECT_LT(cal.dmax_ns, 13'000.0);
  EXPECT_GT(cal.bound.pi_ns, 8'000.0);
  EXPECT_LT(cal.bound.pi_ns, 20'000.0);
  EXPECT_GT(cal.gamma_ns, 0.0);
  EXPECT_LT(cal.gamma_ns, 3'000.0);
  EXPECT_DOUBLE_EQ(cal.bound.drift_offset_ns, 1'250.0); // Gamma = 2*5ppm*125ms
  EXPECT_DOUBLE_EQ(cal.bound.multiplier, 2.0);          // u(4,1)
}

TEST(FullSystemTest, FaultFreePrecisionBounded) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  harness.run_measured(3_min);
  const auto& series = scenario.probe().series();
  ASSERT_GT(series.points().size(), 150u);
  EXPECT_DOUBLE_EQ(bound_holding_fraction(series, cal.bound.pi_ns, cal.gamma_ns), 1.0);
  const auto st = series.stats();
  EXPECT_LT(st.mean(), 1'500.0); // paper: avg 322 ns over 24 h
  EXPECT_GT(st.mean(), 10.0);    // sanity: jitter exists
}

TEST(FullSystemTest, SingleByzantineGmMasked) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  scenario.gm_vm(2).compromise(-24'000);
  harness.run_measured(3_min);
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0);
  EXPECT_LT(scenario.probe().series().stats().mean(), 2'000.0);
}

TEST(FullSystemTest, TwoByzantineGmsBreakSynchronization) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  scenario.gm_vm(0).compromise(-24'000);
  scenario.gm_vm(3).compromise(-24'000);
  harness.run_measured(10_min);
  // The bound must be violated (f = 1 exceeded).
  EXPECT_LT(bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns),
            0.9);
  EXPECT_GT(scenario.probe().series().stats().max(), cal.bound.pi_ns + cal.gamma_ns);
}

TEST(FullSystemTest, KernelDiversityBlocksSecondExploit) {
  ScenarioConfig cfg;
  cfg.gm_kernels = {"4.19.1", "5.4.0", "5.10.0", "6.1.0"}; // only GM 1 vulnerable
  Scenario scenario(cfg);
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();

  faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
  attacker.add_step({scenario.sim().now().ns() + 10_s, &scenario.gm_vm(0)});
  attacker.add_step({scenario.sim().now().ns() + 30_s, &scenario.gm_vm(1)});
  attacker.start();
  harness.run_measured(3_min);

  EXPECT_EQ(attacker.successful_exploits(), 1u);
  EXPECT_TRUE(scenario.gm_vm(0).compromised());
  EXPECT_FALSE(scenario.gm_vm(1).compromised());
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0);
}

TEST(FullSystemTest, FailSilentGmMaskedWithTakeover) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  // Kill the GM of domain 2 (its VM is the active CLOCK_SYNCTIME keeper).
  scenario.sim().at(scenario.sim().now() + 30_s, [&] { scenario.gm_vm(1).shutdown(); });
  harness.run_measured(3_min);
  EXPECT_EQ(harness.events().count(EventKind::kVmFailure), 1u);
  EXPECT_EQ(harness.events().count(EventKind::kTakeover), 1u);
  EXPECT_TRUE(scenario.vm(1, 1).is_active());
  // Precision stays bounded throughout: the dependent clock failed over
  // and the remaining three domains carry the FTA.
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0);
}

TEST(FullSystemTest, RebootedGmRejoinsAndResumesService) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  scenario.sim().at(scenario.sim().now() + 20_s, [&] { scenario.gm_vm(1).shutdown(); });
  scenario.sim().at(scenario.sim().now() + 80_s, [&] { scenario.gm_vm(1).boot(false); });
  harness.run_measured(4_min);
  EXPECT_TRUE(scenario.gm_vm(1).running());
  EXPECT_EQ(harness.events().count(EventKind::kVmRecovery), 1u);
  // The rebooted GM is transmitting again and nobody exceeded the bound.
  ASSERT_NE(scenario.gm_vm(1).stack(), nullptr);
  EXPECT_GT(scenario.gm_vm(1).stack()->instance_for_domain(2)->counters().syncs_sent, 100u);
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0);
}

TEST(FullSystemTest, InjectorRespectsFaultHypothesis) {
  Scenario scenario(ScenarioConfig{});
  ExperimentHarness harness(scenario);
  harness.bring_up();
  faults::InjectorConfig icfg;
  icfg.gm_kill_period_ns = 30_s;
  icfg.gm_downtime_ns = 20_s;
  icfg.standby_kills_per_hour = 120.0;
  icfg.standby_min_gap_ns = 10_s;
  icfg.standby_downtime_ns = 20_s;
  faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), icfg);
  injector.spare(&scenario.measurement_vm());
  injector.start();
  harness.run_measured(5_min);
  EXPECT_GT(injector.stats().total_kills, 8u);
  // At no point were both VMs of one ECD down: every ECD always kept a
  // CLOCK_SYNCTIME publisher, so the probe never lost a whole node pair.
  for (const auto& ev : injector.events()) {
    EXPECT_NE(ev.vm, scenario.measurement_vm().name());
  }
}

TEST(FullSystemTest, MeshPortMappingConsistent) {
  Scenario scenario(ScenarioConfig{});
  for (std::size_t x = 0; x < 4; ++x) {
    std::set<std::size_t> used{0, 1};
    for (std::size_t y = 0; y < 4; ++y) {
      if (x == y) continue;
      const std::size_t p = scenario.mesh_port(x, y);
      EXPECT_GE(p, 2u);
      EXPECT_LE(p, 4u);
      EXPECT_TRUE(used.insert(p).second) << "duplicate port on switch " << x;
    }
  }
}

TEST(FullSystemTest, AggregationAblationMedianAlsoConverges) {
  ScenarioConfig cfg;
  cfg.aggregation = core::AggregationMethod::kMedian;
  Scenario scenario(cfg);
  ExperimentHarness harness(scenario);
  harness.bring_up();
  harness.run_measured(2_min);
  EXPECT_LT(scenario.probe().series().stats().mean(), 2'000.0);
}

} // namespace
} // namespace tsn::experiments
