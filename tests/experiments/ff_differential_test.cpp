// Differential-equivalence harness for the fast-forward analytic mode
// (DESIGN.md §12): every cell of a {topology} x {fault profile} matrix is
// run twice -- ff=off (pure event simulation) and ff=on -- and must yield
// identical invariant verdicts and attack-oracle verdicts, while the ff
// run actually skips most of the horizon analytically. A deeper
// scenario-level test additionally checks bit-identical trace prefixes
// before fast-forward arms and boundary clock states within tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "experiments/harness.hpp"
#include "experiments/scenario.hpp"
#include "obs/trace.hpp"

namespace {

using namespace tsn;
using experiments::TopologyKind;

constexpr std::int64_t kSec = 1'000'000'000LL;

enum class FaultProfile { kQuiet, kScriptedKills, kDelayAttack };

const char* profile_name(FaultProfile p) {
  switch (p) {
    case FaultProfile::kQuiet: return "quiet";
    case FaultProfile::kScriptedKills: return "kills";
    case FaultProfile::kDelayAttack: return "delay-attack";
  }
  return "?";
}

check::FuzzCase make_cell(TopologyKind topo, std::size_t n, FaultProfile p) {
  check::FuzzCase c;
  c.duration_ns = 80 * kSec;
  c.scenario.seed = 7;
  c.scenario.num_ecds = n;
  c.scenario.topology = topo;
  c.scenario.partitions = 0;
  // Keep the randomized injector structurally silent so each cell's fault
  // content is exactly its profile.
  c.injector.gm_kill_period_ns = 100'000 * kSec;
  c.injector.standby_kills_per_hour = 0.0;
  switch (p) {
    case FaultProfile::kQuiet:
      break;
    case FaultProfile::kScriptedKills:
      // Absolute sim times, comfortably past bring-up + calibration
      // (~40 s); non-overlapping GM kills on distinct ECDs, inside the
      // fail-silent fault hypothesis.
      c.replay.faults.push_back({55 * kSec + 1, 1, 0, 8 * kSec});
      c.replay.faults.push_back({70 * kSec + 1, 2, 0, 8 * kSec});
      break;
    case FaultProfile::kDelayAttack: {
      attack::AttackSpec s;
      s.kind = attack::AttackKind::kDelayConst;
      s.ecd = 0;
      s.start_ns = 15 * kSec + 1; // relative to arming (end of bring-up)
      s.duration_ns = 20 * kSec;  // bounded, so ff can re-engage after it
      s.magnitude = 40'000.0;     // 4x the validity threshold: overt
      s.expect_excluded = true;
      c.attacks.push_back(s);
      break;
    }
  }
  return c;
}

void expect_same_violations(const std::vector<check::Violation>& a,
                            const std::vector<check::Violation>& b,
                            const std::string& cell) {
  if (a.size() != b.size()) {
    for (const check::Violation& v : a)
      ADD_FAILURE() << cell << " ff=off: [" << v.invariant << "] t=" << v.t_ns
                    << " " << v.message;
    for (const check::Violation& v : b)
      ADD_FAILURE() << cell << " ff=on:  [" << v.invariant << "] t=" << v.t_ns
                    << " " << v.message;
  }
  ASSERT_EQ(a.size(), b.size()) << cell;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].invariant, b[i].invariant) << cell << " #" << i;
    EXPECT_EQ(a[i].t_ns, b[i].t_ns) << cell << " #" << i;
    EXPECT_EQ(a[i].message, b[i].message) << cell << " #" << i;
  }
}

void expect_same_attack_verdicts(
    const std::vector<check::AttackExclusionInvariant::Verdict>& a,
    const std::vector<check::AttackExclusionInvariant::Verdict>& b,
    const std::string& cell) {
  ASSERT_EQ(a.size(), b.size()) << cell;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attack.spec, b[i].attack.spec) << cell << " #" << i;
    EXPECT_EQ(a[i].attack.start_abs_ns, b[i].attack.start_abs_ns) << cell;
    EXPECT_EQ(a[i].excluded_at_ns.has_value(), b[i].excluded_at_ns.has_value())
        << cell << " #" << i;
    if (a[i].excluded_at_ns && b[i].excluded_at_ns) {
      // The verdict (evicted, deadline met) must be identical; the exact
      // eviction instant may shift by a few aggregation cycles across the
      // analytic boundary (tolerance contract, DESIGN.md §12).
      EXPECT_NEAR(static_cast<double>(*a[i].excluded_at_ns),
                  static_cast<double>(*b[i].excluded_at_ns), 1e9)
          << cell << " #" << i;
    }
    EXPECT_EQ(a[i].deadline_missed, b[i].deadline_missed) << cell << " #" << i;
  }
}

struct Cell {
  TopologyKind topo;
  std::size_t n;
  FaultProfile profile;
};

TEST(FfDifferentialTest, MatrixVerdictsIdenticalWithAndWithoutFastForward) {
  const Cell cells[] = {
      {TopologyKind::kMesh, 4, FaultProfile::kQuiet},
      {TopologyKind::kMesh, 4, FaultProfile::kScriptedKills},
      {TopologyKind::kMesh, 4, FaultProfile::kDelayAttack},
      {TopologyKind::kRing, 8, FaultProfile::kQuiet},
      {TopologyKind::kRing, 8, FaultProfile::kScriptedKills},
      {TopologyKind::kRing, 8, FaultProfile::kDelayAttack},
  };
  for (const Cell& cell : cells) {
    const std::string name =
        std::string(experiments::topology_name(cell.topo)) +
        std::to_string(cell.n) + "/" + profile_name(cell.profile);

    check::FuzzCase off = make_cell(cell.topo, cell.n, cell.profile);
    check::FuzzCase on = off;
    on.fast_forward = true;

    const check::CaseResult r_off = check::run_case(off);
    const check::CaseResult r_on = check::run_case(on);

    ASSERT_TRUE(r_off.brought_up) << name << ": " << r_off.summary;
    ASSERT_TRUE(r_on.brought_up) << name << ": " << r_on.summary;

    // Identical verdicts: suite summary, every violation, every
    // attack-oracle verdict.
    EXPECT_EQ(r_off.summary, r_on.summary) << name;
    EXPECT_EQ(r_off.failed(), r_on.failed()) << name;
    expect_same_violations(r_off.violations, r_on.violations, name);
    expect_same_attack_verdicts(r_off.attack_verdicts, r_on.attack_verdicts,
                                name);

    // The ff run must actually have fast-forwarded, and cheaper than the
    // event-simulated control.
    EXPECT_GT(r_on.ff_stats.windows, 0u) << name;
    EXPECT_GT(r_on.ff_stats.skipped_ns, 10 * kSec) << name;
    EXPECT_LT(r_on.events_executed, r_off.events_executed) << name;
    // The control never touches the ff machinery.
    EXPECT_EQ(r_off.ff_stats.windows, 0u) << name;
    EXPECT_EQ(r_off.ff_stats.skipped_ns, 0) << name;
  }
}

// Scenario-level differential run: before fast-forward is armed the two
// executions are the same program, so their trace rings must match bit
// for bit; after the horizon the boundary clock state must agree within
// the analytic tolerance and both stay inside the calibrated bound Pi.
TEST(FfDifferentialTest, TracePrefixBitIdenticalAndBoundaryStateWithinTolerance) {
  experiments::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.num_ecds = 4;
  cfg.topology = TopologyKind::kMesh;
  cfg.partitions = 0;

  constexpr std::int64_t kEnd = 150 * kSec;
  // Chunks must comfortably exceed FfConfig::min_window_ns (5 s) plus a
  // check period, or no window ever fits inside one; they must also stay
  // small enough that a fully-simulated chunk cannot overflow the 4096
  // record ring between harvests (asserted below).
  constexpr std::int64_t kChunk = 10 * kSec;

  struct RunOut {
    std::vector<obs::TraceRecord> records;
    std::int64_t ff_enabled_at_ns = 0;
    double disagreement_ns = 0.0;
    double pi_ns = 0.0;
    sim::FfStats stats;
  };

  auto run_one = [&](bool ff) {
    RunOut out;
    experiments::Scenario sc(cfg);
    experiments::ExperimentHarness h(sc);
    h.bring_up();
    const auto cal = h.calibrate();
    out.pi_ns = cal.bound.pi_ns;
    out.ff_enabled_at_ns = sc.now_ns();
    if (ff) sc.enable_fast_forward();
    std::uint64_t cursor = 0;
    sc.trace().read_since(cursor, out.records);
    for (std::int64_t t = sc.now_ns() + kChunk; t <= kEnd; t += kChunk) {
      sc.run_to(t);
      const std::uint64_t before = cursor;
      sc.trace().read_since(cursor, out.records);
      EXPECT_LT(cursor - before, 4096u) << "trace ring overflowed a harvest";
    }
    sc.run_to(kEnd);
    sc.trace().read_since(cursor, out.records);
    out.disagreement_ns = sc.gm_clock_disagreement_ns();
    if (ff) out.stats = sc.fast_forward()->stats();
    return out;
  };

  const RunOut off = run_one(false);
  const RunOut on = run_one(true);

  // Same program up to the arming instant.
  ASSERT_EQ(off.ff_enabled_at_ns, on.ff_enabled_at_ns);
  const std::int64_t armed = on.ff_enabled_at_ns;

  // Bit-identical trace prefix: every record stamped before the arming
  // instant must match field for field (ff can alter nothing there).
  std::size_t prefix_off = 0, prefix_on = 0;
  while (prefix_off < off.records.size() &&
         off.records[prefix_off].t_ns <= armed)
    ++prefix_off;
  while (prefix_on < on.records.size() && on.records[prefix_on].t_ns <= armed)
    ++prefix_on;
  ASSERT_EQ(prefix_off, prefix_on);
  ASSERT_GT(prefix_off, 0u);
  for (std::size_t i = 0; i < prefix_off; ++i) {
    const obs::TraceRecord& a = off.records[i];
    const obs::TraceRecord& b = on.records[i];
    ASSERT_EQ(a.t_ns, b.t_ns) << "record " << i;
    ASSERT_EQ(a.kind, b.kind) << "record " << i;
    ASSERT_EQ(a.source, b.source) << "record " << i;
    ASSERT_EQ(a.a, b.a) << "record " << i;
    ASSERT_EQ(a.mask, b.mask) << "record " << i;
    ASSERT_EQ(a.v0, b.v0) << "record " << i;
    ASSERT_EQ(a.v1, b.v1) << "record " << i;
  }

  // The ff run crossed a real share of the horizon analytically.
  EXPECT_GT(on.stats.windows, 0u);
  EXPECT_GT(on.stats.skipped_ns, (kEnd - armed) / 4);

  // Boundary clock state: both runs end synchronized well inside Pi, and
  // the analytic trajectory lands within tolerance of the simulated one.
  EXPECT_GT(off.pi_ns, 0.0);
  EXPECT_LT(off.disagreement_ns, off.pi_ns);
  EXPECT_LT(on.disagreement_ns, on.pi_ns);
  EXPECT_LT(std::abs(on.disagreement_ns - off.disagreement_ns),
            0.5 * off.pi_ns);
}

} // namespace
