// The partitioned runtime's headline guarantee: for a fixed scenario
// seed, every partitions >= 1 (worker shard count) and every thread
// schedule produces byte-identical results -- merged experiment event
// log, metrics snapshot, injector event sequence and invariant-oracle
// verdicts. The regions and boundary tie-break keys are fixed by the
// model, not by which shard happened to run a region, so this is a
// structural property; these tests are the matrix that pins it.
//
// (The serial path partitions=0 keeps the legacy single-queue RNG
// streams and intentionally differs numerically; it is not part of the
// identity matrix.)
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "experiments/harness.hpp"
#include "faults/injector.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/str.hpp"

namespace {

using namespace tsn;

experiments::ScenarioConfig make_cfg(std::size_t ecds, experiments::TopologyKind topo,
                                     std::size_t domains, std::size_t partitions) {
  experiments::ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.num_ecds = ecds;
  cfg.topology = topo;
  cfg.num_domains = domains;
  cfg.partitions = partitions;
  return cfg;
}

/// Run `run_ns` from a cold start (determinism does not need the full
/// bring-up; startup-phase traffic exercises the same cross-region
/// machinery) and serialize everything observable into one string.
std::string run_fingerprint(const experiments::ScenarioConfig& cfg, std::int64_t run_ns,
                            bool with_faults) {
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  scenario.start();

  check::InvariantSuite suite(scenario);
  check::SuiteParams sp;
  sp.bound_ns = 1e9; // generous: the verdicts must be deterministic, not clean
  suite.add_default_invariants(sp);

  faults::FaultInjector injector(scenario.control_sim(), scenario.ecd_ptrs(), {});
  if (scenario.partitioned()) {
    std::vector<std::size_t> regions(scenario.num_ecds());
    for (std::size_t r = 0; r < regions.size(); ++r) regions[r] = r;
    injector.set_partitioned(scenario.runtime(), std::move(regions), /*home_region=*/0);
  }
  suite.observe(injector);
  suite.arm();
  if (with_faults) {
    faults::ReplaySchedule sched;
    sched.faults.push_back({1'200'000'001LL, 1 % cfg.num_ecds, 0, 2'000'000'001LL});
    sched.faults.push_back({2'400'000'003LL, 2 % cfg.num_ecds, 1, 1'500'000'001LL});
    injector.run(sched);
  }

  const std::int64_t step = 500'000'000;
  const std::int64_t end = scenario.now_ns() + run_ns;
  while (scenario.now_ns() < end) {
    scenario.run_to(std::min(end, scenario.now_ns() + step));
    suite.poll_now();
  }
  suite.finalize();

  std::string fp;
  for (const auto& e : harness.events().events()) {
    fp += util::format("ev %lld %s %s %s\n", (long long)e.t_ns, experiments::to_string(e.kind),
                       e.subject.c_str(), e.detail.c_str());
  }
  for (const auto& ev : injector.events()) {
    fp += util::format("inj %lld %s gm=%d reboot=%d\n", (long long)ev.at_ns, ev.vm.c_str(),
                       ev.was_gm ? 1 : 0, ev.is_reboot ? 1 : 0);
  }
  fp += "suite: " + suite.summary() + "\n";
  fp += scenario.metrics_snapshot().to_csv();
  return fp;
}

TEST(PartitionDeterminism, ShardCountMatrixByteIdentical) {
  // 8-ECD ring, 4 domains, scripted kills: every shard count must agree.
  const std::string p1 =
      run_fingerprint(make_cfg(8, experiments::TopologyKind::kRing, 4, 1), 4'000'000'000LL, true);
  const std::string p2 =
      run_fingerprint(make_cfg(8, experiments::TopologyKind::kRing, 4, 2), 4'000'000'000LL, true);
  const std::string p4 =
      run_fingerprint(make_cfg(8, experiments::TopologyKind::kRing, 4, 4), 4'000'000'000LL, true);
  EXPECT_FALSE(p1.empty());
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, p4);
}

TEST(PartitionDeterminism, RepeatRunByteIdentical) {
  const experiments::ScenarioConfig cfg = make_cfg(8, experiments::TopologyKind::kTree, 4, 4);
  const std::string a = run_fingerprint(cfg, 3'000'000'000LL, true);
  const std::string b = run_fingerprint(cfg, 3'000'000'000LL, true);
  EXPECT_EQ(a, b);
}

TEST(PartitionDeterminism, SweepThreadScheduleByteIdentical) {
  // The same partitioned replica executed inline and on SweepRunner
  // worker threads (two at once, racing for cores): the thread schedule
  // must not leak into the results.
  const experiments::ScenarioConfig cfg = make_cfg(8, experiments::TopologyKind::kRing, 4, 2);
  const std::string inline_fp = run_fingerprint(cfg, 2'000'000'000LL, true);

  sweep::SweepRunner runner({.threads = 4});
  const auto fps = runner.run_indexed(
      2, [&](std::size_t) { return run_fingerprint(cfg, 2'000'000'000LL, true); });
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_EQ(fps[0], inline_fp);
  EXPECT_EQ(fps[1], inline_fp);
}

TEST(PartitionDeterminism, Scale64RingByteIdentical) {
  // The issue's acceptance matrix: 64 ECDs, partitions in {1, 2, 4, 8}.
  // One simulated second keeps the test affordable; every protocol
  // (sync, monitors, startup phase, boundary frames) is already running.
  const experiments::ScenarioConfig base =
      make_cfg(64, experiments::TopologyKind::kRing, 8, 1);
  const std::string p1 = run_fingerprint(base, 1'000'000'000LL, false);
  for (std::size_t p : {2u, 4u, 8u}) {
    experiments::ScenarioConfig cfg = base;
    cfg.partitions = p;
    EXPECT_EQ(run_fingerprint(cfg, 1'000'000'000LL, false), p1) << "partitions=" << p;
  }
}

TEST(PartitionDeterminism, Scale64TreeByteIdentical) {
  const experiments::ScenarioConfig base =
      make_cfg(64, experiments::TopologyKind::kTree, 8, 1);
  const std::string p1 = run_fingerprint(base, 1'000'000'000LL, false);
  experiments::ScenarioConfig cfg = base;
  cfg.partitions = 8;
  EXPECT_EQ(run_fingerprint(cfg, 1'000'000'000LL, false), p1);
}

} // namespace
