// Property sweeps over the full testbed: the reproduction's key invariants
// must hold across random seeds, sync intervals and fault schedules, not
// just for the cherry-picked defaults.
#include <gtest/gtest.h>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "faults/injector.hpp"

namespace tsn::experiments {
namespace {

using namespace tsn::sim::literals;

// ---------------------------------------------------------------------------
// Invariant 1: fault-free, the measured precision obeys eq. (3.3) and the
// system converges -- for any seed.

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, FaultFreeBoundHolds) {
  ScenarioConfig cfg;
  cfg.seed = GetParam();
  Scenario scenario(cfg);
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  harness.run_measured(90_s);
  ASSERT_GT(scenario.probe().series().points().size(), 60u);
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0)
      << "seed " << GetParam();
  EXPECT_LT(scenario.gm_clock_disagreement_ns(), 2'000.0);
}

TEST_P(SeedSweep, FaultInjectionBoundHolds) {
  ScenarioConfig cfg;
  cfg.seed = GetParam() * 7919;
  Scenario scenario(cfg);
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  faults::InjectorConfig icfg;
  icfg.gm_kill_period_ns = 45_s; // aggressive schedule
  icfg.gm_downtime_ns = 30_s;
  icfg.standby_kills_per_hour = 60.0;
  icfg.standby_min_gap_ns = 20_s;
  icfg.standby_downtime_ns = 30_s;
  faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), icfg);
  injector.spare(&scenario.measurement_vm());
  injector.start();
  harness.run_measured(4_min);
  EXPECT_GT(injector.stats().total_kills, 3u);
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Invariant 2: a single Byzantine GM is masked regardless of which GM it
// is and which direction it lies.

class ByzantineSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::int64_t>> {};

TEST_P(ByzantineSweep, SingleAttackerAlwaysMasked) {
  const auto [victim, shift] = GetParam();
  ScenarioConfig cfg;
  cfg.seed = 17;
  Scenario scenario(cfg);
  ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  scenario.gm_vm(victim).compromise(shift);
  harness.run_measured(2_min);
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0)
      << "victim " << victim << " shift " << shift;
}

INSTANTIATE_TEST_SUITE_P(VictimsAndShifts, ByzantineSweep,
                         ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                                            ::testing::Values(-24'000, 24'000, -500'000)));

// ---------------------------------------------------------------------------
// Invariant 3: the sync interval scales the drift term but the system
// stays synchronized across a realistic S range.

class IntervalSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IntervalSweep, ConvergesAndStaysBounded) {
  ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.sync_interval_ns = GetParam();
  Scenario scenario(cfg);
  ExperimentHarness harness(scenario);
  harness.bring_up(240'000'000'000LL);
  const auto cal = harness.calibrate();
  harness.run_measured(90_s);
  EXPECT_DOUBLE_EQ(
      bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns), 1.0)
      << "S = " << GetParam();
  // Gamma scales exactly linearly with S.
  EXPECT_DOUBLE_EQ(cal.bound.drift_offset_ns,
                   2.0 * 5.0 * 1e-6 * static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(SyncIntervals, IntervalSweep,
                         ::testing::Values(31'250'000, 62'500'000, 125'000'000, 250'000'000));

} // namespace
} // namespace tsn::experiments
