// MessageTemplate must produce byte-identical images to the generic
// serializer for every patchable field combination: the templates ARE the
// wire encoder on the hot path, so any offset drift would silently corrupt
// PDUs.
#include "gptp/msg_template.hpp"

#include <gtest/gtest.h>

#include "gptp/messages.hpp"

namespace tsn::gptp {
namespace {

PortIdentity port_id(std::uint64_t clock, std::uint16_t port) {
  return PortIdentity{ClockIdentity::from_u64(clock), port};
}

std::vector<std::uint8_t> image_of(const MessageTemplate& tpl) {
  return std::vector<std::uint8_t>(tpl.data(), tpl.data() + tpl.size());
}

TEST(MsgTemplateTest, SyncMatchesSerializer) {
  SyncMessage proto;
  proto.header.type = MessageType::kSync;
  proto.header.domain = 3;
  proto.header.two_step = true;
  proto.header.source_port = port_id(0xAABB, 1);
  proto.header.log_message_interval = -3;
  MessageTemplate tpl{Message{proto}};

  proto.header.sequence_id = 0x1234;
  tpl.set_sequence_id(0x1234);
  EXPECT_EQ(image_of(tpl), serialize(Message{proto}));
}

TEST(MsgTemplateTest, FollowUpMatchesSerializerForEveryPatchedField) {
  FollowUpMessage proto;
  proto.header.type = MessageType::kFollowUp;
  proto.header.domain = 1;
  proto.header.source_port = port_id(0xCC01, 2);
  proto.header.log_message_interval = -3;
  MessageTemplate tpl{Message{proto}};

  proto.header.sequence_id = 77;
  tpl.set_sequence_id(77);
  proto.header.correction_scaled = scaled_ns::from_ns(12345.5);
  tpl.set_correction_scaled(proto.header.correction_scaled);
  proto.header.domain = 5;
  tpl.set_domain(5);
  proto.header.log_message_interval = -2;
  tpl.set_log_message_interval(-2);
  proto.header.source_port = port_id(0xDD02, 4);
  tpl.set_source_port(proto.header.source_port);
  proto.precise_origin = Timestamp::from_ns(987'654'321'012LL);
  tpl.set_body_timestamp(proto.precise_origin);
  proto.cumulative_scaled_rate_offset = rate_offset::from_ratio(1.0000421);
  tpl.set_cumulative_scaled_rate_offset(proto.cumulative_scaled_rate_offset);
  proto.gm_time_base_indicator = 0xBEEF;
  tpl.set_gm_time_base_indicator(0xBEEF);
  proto.scaled_last_gm_freq_change = -123456;
  tpl.set_scaled_last_gm_freq_change(-123456);
  EXPECT_EQ(image_of(tpl), serialize(Message{proto}));
}

TEST(MsgTemplateTest, PdelayTrioMatchesSerializer) {
  const PortIdentity self = port_id(0xFACE, 1);
  const PortIdentity requester = port_id(0xB0B0, 9);

  PdelayReqMessage req;
  req.header.type = MessageType::kPdelayReq;
  req.header.source_port = self;
  MessageTemplate req_tpl{Message{req}};
  req.header.sequence_id = 42;
  req_tpl.set_sequence_id(42);
  EXPECT_EQ(image_of(req_tpl), serialize(Message{req}));

  PdelayRespMessage resp;
  resp.header.type = MessageType::kPdelayResp;
  resp.header.two_step = true;
  resp.header.source_port = self;
  MessageTemplate resp_tpl{Message{resp}};
  resp.header.sequence_id = 42;
  resp_tpl.set_sequence_id(42);
  resp.request_receipt = Timestamp::from_ns(1'000'000'555LL);
  resp_tpl.set_body_timestamp(resp.request_receipt);
  resp.requesting_port = requester;
  resp_tpl.set_requesting_port(requester);
  EXPECT_EQ(image_of(resp_tpl), serialize(Message{resp}));

  PdelayRespFollowUpMessage fup;
  fup.header.type = MessageType::kPdelayRespFollowUp;
  fup.header.source_port = self;
  MessageTemplate fup_tpl{Message{fup}};
  fup.header.sequence_id = 42;
  fup_tpl.set_sequence_id(42);
  fup.response_origin = Timestamp::from_ns(1'000'001'777LL);
  fup_tpl.set_body_timestamp(fup.response_origin);
  fup.requesting_port = requester;
  fup_tpl.set_requesting_port(requester);
  EXPECT_EQ(image_of(fup_tpl), serialize(Message{fup}));
}

TEST(MsgTemplateTest, DelayReqRespMatchSerializer) {
  DelayReqMessage req;
  req.header.type = MessageType::kDelayReq;
  req.header.domain = 2;
  req.header.source_port = port_id(0x1111, 1);
  MessageTemplate req_tpl{Message{req}};
  req.header.sequence_id = 9;
  req_tpl.set_sequence_id(9);
  EXPECT_EQ(image_of(req_tpl), serialize(Message{req}));

  DelayRespMessage resp;
  resp.header.type = MessageType::kDelayResp;
  resp.header.domain = 2;
  resp.header.source_port = port_id(0x2222, 1);
  MessageTemplate resp_tpl{Message{resp}};
  resp.header.sequence_id = 9;
  resp_tpl.set_sequence_id(9);
  resp.receive_timestamp = Timestamp::from_ns(444'555'666LL);
  resp_tpl.set_body_timestamp(resp.receive_timestamp);
  resp.requesting_port = port_id(0x1111, 1);
  resp_tpl.set_requesting_port(resp.requesting_port);
  EXPECT_EQ(image_of(resp_tpl), serialize(Message{resp}));
}

TEST(MsgTemplateTest, PatchedFramesRoundTripThroughParse) {
  FollowUpMessage proto;
  proto.header.type = MessageType::kFollowUp;
  proto.header.domain = 7;
  proto.header.source_port = port_id(0xABCD, 3);
  MessageTemplate tpl{Message{proto}};
  tpl.set_sequence_id(1000);
  tpl.set_body_timestamp(Timestamp::from_ns(123'456'789LL));

  net::FrameRef frame = make_ptp_frame(tpl);
  EXPECT_EQ(frame->dst, net::MacAddress::gptp_multicast());
  EXPECT_EQ(frame->ethertype, net::kEtherTypePtp);
  const auto msg = parse(frame->payload);
  ASSERT_TRUE(msg.has_value());
  const auto* fup = std::get_if<FollowUpMessage>(&*msg);
  ASSERT_NE(fup, nullptr);
  EXPECT_EQ(fup->header.sequence_id, 1000);
  EXPECT_EQ(fup->header.domain, 7);
  EXPECT_EQ(fup->precise_origin.to_ns(), 123'456'789LL);
}

} // namespace
} // namespace tsn::gptp
