// End-to-end single-domain synchronization over a direct link:
// a grandmaster instance disciplines a slave's PHC via the slave's local
// PI servo (classic ptp4l operation, the baseline the paper builds on).
#include <gtest/gtest.h>

#include <cmath>

#include "gptp_test_util.hpp"
#include "util/stats.hpp"

namespace tsn::gptp {
namespace {

using testutil::StackPair;
using testutil::symmetric_link;
using tsn::sim::SimTime;
using namespace tsn::sim::literals;

InstanceConfig gm_config(std::uint8_t domain = 0) {
  InstanceConfig cfg;
  cfg.domain = domain;
  cfg.role = PortRole::kMaster;
  return cfg;
}

InstanceConfig slave_config(std::uint8_t domain = 0) {
  InstanceConfig cfg;
  cfg.domain = domain;
  cfg.role = PortRole::kSlave;
  return cfg;
}

/// |GM PHC - slave PHC| at the current instant (true simultaneous reads).
double phc_disagreement(StackPair& p) {
  return std::abs(static_cast<double>(p.nic_a.phc().read() - p.nic_b.phc().read()));
}

TEST(SyncE2eTest, SlaveConvergesToGm) {
  StackPair p(2.0, -3.0, symmetric_link(1000), /*ts_jitter=*/4.0, /*seed=*/7);
  p.nic_b.phc().step(50'000); // 50 us initial phase error
  p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  slave.enable_local_servo({});
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(60_s));
  EXPECT_LT(phc_disagreement(p), 100.0);
  EXPECT_GT(slave.counters().offsets_computed, 100u);
}

TEST(SyncE2eTest, ConvergedOffsetSamplesAreSmall) {
  StackPair p(0.0, 5.0, symmetric_link(800), 4.0, 11);
  p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  slave.enable_local_servo({});
  double last_offset = 1e18;
  slave.set_offset_callback({}); // keep local servo path
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(60_s));
  // Tap offsets after convergence.
  util::RunningStats st;
  auto& slave2 = slave;
  slave2.set_offset_callback([&](const MasterOffsetSample& s) {
    st.add(std::abs(s.offset_ns));
    last_offset = s.offset_ns;
    // Callback replaces the servo sink; re-apply manually to keep lock.
  });
  (void)last_offset;
  p.sim.run_until(SimTime(70_s));
  ASSERT_GT(st.count(), 10u);
  // Without servo updates in the tap window the drift is ~0 (already
  // compensated); offsets stay well under a microsecond.
  EXPECT_LT(st.mean(), 500.0);
}

TEST(SyncE2eTest, SyncIntervalRespected) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  // ~8 Syncs/s for 10 s minus pdelay warmup.
  EXPECT_GT(slave.counters().syncs_received, 60u);
  EXPECT_LE(slave.counters().syncs_received, 85u);
}

TEST(SyncE2eTest, AlignedLaunchTimesAreOnBoundaries) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  std::vector<std::int64_t> origins;
  slave.set_offset_callback([&](const MasterOffsetSample& s) {
    origins.push_back(s.precise_origin.to_ns());
  });
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  ASSERT_GT(origins.size(), 10u);
  for (std::int64_t o : origins) {
    const std::int64_t mod = o % 125'000'000;
    const std::int64_t dist = std::min(mod, 125'000'000 - mod);
    EXPECT_LT(dist, 100); // origin timestamps land on S boundaries
  }
}

TEST(SyncE2eTest, MaliciousGmShiftsOffset) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  auto& gm = p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  gm.set_malicious_pot_offset(-24'000); // the paper's attack: -24 us
  double sum = 0.0;
  int n = 0;
  slave.set_offset_callback([&](const MasterOffsetSample& s) {
    sum += s.offset_ns;
    ++n;
  });
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  ASSERT_GT(n, 10);
  // pOT shifted down by 24 us -> computed offset shifted up by 24 us.
  EXPECT_NEAR(sum / n, 24'000.0, 100.0);
}

TEST(SyncE2eTest, SyncReceiptTimeoutFiresWhenGmDies) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  std::vector<std::string> faults;
  slave.set_fault_callback([&](const std::string& kind) { faults.push_back(kind); });
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  EXPECT_TRUE(slave.gm_receiving());
  p.nic_a.set_up(false); // GM fails silently
  p.sim.run_until(SimTime(7_s));
  EXPECT_FALSE(slave.gm_receiving());
  ASSERT_FALSE(faults.empty());
  EXPECT_EQ(faults.front(), "sync_receipt_timeout");
  EXPECT_EQ(slave.counters().sync_receipt_timeouts, 1u);
}

TEST(SyncE2eTest, TxTimestampTimeoutSuppressesFollowUp) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  auto& gm = p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  InstanceFaultModel fm;
  fm.p_tx_timestamp_timeout = 1.0; // every Sync loses its timestamp
  gm.set_fault_model(fm);
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  EXPECT_GT(gm.counters().tx_timestamp_timeouts, 20u);
  EXPECT_EQ(gm.counters().followups_sent, 0u);
  EXPECT_GT(slave.counters().syncs_received, 20u);
  EXPECT_EQ(slave.counters().offsets_computed, 0u);
}

TEST(SyncE2eTest, LateLaunchCausesDeadlineMiss) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  auto& gm = p.stack_a.add_instance(gm_config());
  p.stack_b.add_instance(slave_config());
  InstanceFaultModel fm;
  fm.p_late_launch = 1.0;
  gm.set_fault_model(fm);
  std::vector<std::string> faults;
  gm.set_fault_callback([&](const std::string& kind) { faults.push_back(kind); });
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(3_s));
  EXPECT_GT(gm.counters().deadline_misses, 5u);
  EXPECT_EQ(gm.counters().syncs_sent, 0u);
  ASSERT_FALSE(faults.empty());
  EXPECT_EQ(faults.front(), "deadline_miss");
}

TEST(SyncE2eTest, GmEmitsSelfOffsetZero) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  auto& gm = p.stack_a.add_instance(gm_config());
  p.stack_b.add_instance(slave_config());
  int self_samples = 0;
  gm.set_offset_callback([&](const MasterOffsetSample& s) {
    EXPECT_EQ(s.offset_ns, 0.0);
    EXPECT_EQ(s.rate_ratio, 1.0);
    ++self_samples;
  });
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(3_s));
  EXPECT_GT(self_samples, 15);
}

TEST(SyncE2eTest, StopHaltsTransmission) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  auto& gm = p.stack_a.add_instance(gm_config());
  auto& slave = p.stack_b.add_instance(slave_config());
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(3_s));
  const auto sent_before = gm.counters().syncs_sent;
  gm.stop();
  p.sim.run_until(SimTime(6_s));
  EXPECT_EQ(gm.counters().syncs_sent, sent_before);
  (void)slave;
}

TEST(SyncE2eTest, BmcaElectsSingleMasterAndSynchronizes) {
  // Both ends run BMCA; the better clock (lower priority1) becomes GM.
  StackPair p(1.0, -1.0, symmetric_link(800), 0.0, 5);
  InstanceConfig a;
  a.domain = 0;
  a.use_bmca = true;
  a.priority1 = 50; // better
  InstanceConfig b = a;
  b.priority1 = 200;
  auto& ia = p.stack_a.add_instance(a);
  auto& ib = p.stack_b.add_instance(b);
  ib.enable_local_servo({});
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(30_s));
  EXPECT_EQ(ia.role(), PortRole::kMaster);
  EXPECT_EQ(ib.role(), PortRole::kSlave);
  EXPECT_GT(ib.counters().offsets_computed, 50u);
  EXPECT_LT(std::abs(static_cast<double>(p.nic_a.phc().read() - p.nic_b.phc().read())), 200.0);
}

TEST(SyncE2eTest, BmcaFailsOverWhenMasterDies) {
  StackPair p(0.0, 0.0, symmetric_link(800));
  InstanceConfig a;
  a.use_bmca = true;
  a.priority1 = 50;
  InstanceConfig b = a;
  b.priority1 = 200;
  auto& ia = p.stack_a.add_instance(a);
  auto& ib = p.stack_b.add_instance(b);
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  ASSERT_EQ(ib.role(), PortRole::kSlave);
  p.nic_a.set_up(false); // master vanishes
  p.sim.run_until(SimTime(20_s));
  EXPECT_EQ(ib.role(), PortRole::kMaster); // announce timeout -> takeover
  (void)ia;
}

} // namespace
} // namespace tsn::gptp
