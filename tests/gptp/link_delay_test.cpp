#include <gtest/gtest.h>

#include <cmath>

#include "gptp_test_util.hpp"

namespace tsn::gptp {
namespace {

using testutil::StackPair;
using testutil::symmetric_link;
using tsn::sim::SimTime;
using namespace tsn::sim::literals;

TEST(LinkDelayTest, MeasuresSymmetricDelay) {
  StackPair p(0.0, 0.0, symmetric_link(1500));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  // HW timestamps latch at the SFD, so the measured delay is propagation
  // only, independent of the pdelay frame's serialization time.
  const double expected = 1500.0;
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), expected, 10.0);
  EXPECT_NEAR(p.stack_b.link_delay().mean_link_delay_ns(), expected, 10.0);
}

TEST(LinkDelayTest, NeighborRateRatioTracksDrift) {
  // B runs +4 ppm relative to A.
  StackPair p(0.0, 4.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(30_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().neighbor_rate_ratio(), 1.000004, 2e-7);
  EXPECT_NEAR(p.stack_b.link_delay().neighbor_rate_ratio(), 0.999996, 2e-7);
}

TEST(LinkDelayTest, DriftDoesNotBiasDelay) {
  StackPair p(-5.0, 5.0, symmetric_link(2000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(30_s));
  const double expected = 2000.0;
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), expected, 15.0);
}

TEST(LinkDelayTest, JitterAveragesOut) {
  StackPair p(0.0, 0.0, symmetric_link(1000, 50.0), /*ts_jitter=*/8.0, /*seed=*/3);
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(60_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  const double expected = 1000.0;
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), expected, 60.0);
}

TEST(LinkDelayTest, InvalidatedWhenPeerDies) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  p.nic_b.set_up(false); // peer goes silent
  p.sim.run_until(SimTime(15_s));
  EXPECT_FALSE(p.stack_a.link_delay().valid());
}

TEST(LinkDelayTest, RecoversAfterPeerReturns) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  p.nic_b.set_up(false);
  p.sim.run_until(SimTime(15_s));
  ASSERT_FALSE(p.stack_a.link_delay().valid());
  p.nic_b.set_up(true);
  p.sim.run_until(SimTime(25_s));
  EXPECT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 1000.0, 10.0);
}

TEST(LinkDelayTest, ExchangeCountsAdvance) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  // One exchange per second per initiator (both sides initiate).
  EXPECT_GE(p.stack_a.link_delay().completed_exchanges(), 8u);
  EXPECT_GE(p.stack_b.link_delay().completed_exchanges(), 8u);
}

} // namespace
} // namespace tsn::gptp
