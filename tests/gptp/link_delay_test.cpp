#include <gtest/gtest.h>

#include <cmath>

#include "gptp_test_util.hpp"

namespace tsn::gptp {
namespace {

using testutil::StackPair;
using testutil::symmetric_link;
using tsn::sim::SimTime;
using namespace tsn::sim::literals;

TEST(LinkDelayTest, MeasuresSymmetricDelay) {
  StackPair p(0.0, 0.0, symmetric_link(1500));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  // HW timestamps latch at the SFD, so the measured delay is propagation
  // only, independent of the pdelay frame's serialization time.
  const double expected = 1500.0;
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), expected, 10.0);
  EXPECT_NEAR(p.stack_b.link_delay().mean_link_delay_ns(), expected, 10.0);
}

TEST(LinkDelayTest, NeighborRateRatioTracksDrift) {
  // B runs +4 ppm relative to A.
  StackPair p(0.0, 4.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(30_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().neighbor_rate_ratio(), 1.000004, 2e-7);
  EXPECT_NEAR(p.stack_b.link_delay().neighbor_rate_ratio(), 0.999996, 2e-7);
}

TEST(LinkDelayTest, DriftDoesNotBiasDelay) {
  StackPair p(-5.0, 5.0, symmetric_link(2000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(30_s));
  const double expected = 2000.0;
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), expected, 15.0);
}

TEST(LinkDelayTest, JitterAveragesOut) {
  StackPair p(0.0, 0.0, symmetric_link(1000, 50.0), /*ts_jitter=*/8.0, /*seed=*/3);
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(60_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  const double expected = 1000.0;
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), expected, 60.0);
}

TEST(LinkDelayTest, InvalidatedWhenPeerDies) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  p.nic_b.set_up(false); // peer goes silent
  p.sim.run_until(SimTime(15_s));
  EXPECT_FALSE(p.stack_a.link_delay().valid());
}

TEST(LinkDelayTest, RecoversAfterPeerReturns) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  p.nic_b.set_up(false);
  p.sim.run_until(SimTime(15_s));
  ASSERT_FALSE(p.stack_a.link_delay().valid());
  p.nic_b.set_up(true);
  p.sim.run_until(SimTime(25_s));
  EXPECT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 1000.0, 10.0);
}

// Regression: invalidation after lost responses used to keep the stale
// neighbor_rate_ratio_, so the first post-recovery exchange corrected the
// turnaround time with the dead peer's old rate. The ratio must reset to
// 1.0 on invalidation and be re-learned from the rebooted peer.
TEST(LinkDelayTest, RateRatioResetOnInvalidationAndRelearned) {
  // B runs +4 ppm; after its "reboot" it comes back at -4 ppm.
  StackPair p(0.0, 4.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(20_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().neighbor_rate_ratio(), 1.000004, 5e-7);

  p.nic_b.set_up(false); // peer dies
  p.sim.run_until(SimTime(30_s));
  ASSERT_FALSE(p.stack_a.link_delay().valid());
  // The stale +4 ppm estimate must not survive the invalidation.
  EXPECT_DOUBLE_EQ(p.stack_a.link_delay().neighbor_rate_ratio(), 1.0);

  // Peer reboots onto an oscillator running 8 ppm slower than before (the
  // drift attack adds outside the oscillator's +/-5 ppm clamp).
  p.nic_b.phc().set_drift_attack(-8.0);
  p.nic_b.set_up(true);
  p.sim.run_until(SimTime(60_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().neighbor_rate_ratio(), 0.999996, 5e-7);
  // With the ratio re-learned, the delay estimate is unbiased again. Before
  // the fix the stale ratio poisoned the turnaround correction here.
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 1000.0, 15.0);
}

// A compromised responder that tampers its Pdelay turnaround (t3) skews the
// honest initiator's delay and rate-ratio estimates -- the src/attack
// kPdelayTurnaround primitive. Clearing the attack lets smoothing converge
// back.
TEST(LinkDelayTest, TurnaroundTamperSkewsPeerMeasurement) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  ASSERT_TRUE(p.stack_a.link_delay().valid());
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 1000.0, 10.0);

  // B reports t3 values biased -2000 ns (constant: skew 0). A sees the
  // apparent turnaround shrink by 2000 ns -> +1000 ns of measured delay.
  p.stack_b.link_delay().set_turnaround_attack(-2000.0, 0.0);
  p.sim.run_until(SimTime(60_s));
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 2000.0, 25.0);
  // The attacker's own measurement of the honest side stays clean.
  EXPECT_NEAR(p.stack_b.link_delay().mean_link_delay_ns(), 1000.0, 10.0);

  // A t3 ramp masquerades as a +30 ppm faster neighbor (and keeps pushing
  // the apparent delay, so only the rate estimate is asserted here).
  p.stack_b.link_delay().set_turnaround_attack(0.0, 30.0);
  p.sim.run_until(SimTime(90_s));
  EXPECT_NEAR(p.stack_a.link_delay().neighbor_rate_ratio(), 1.000030, 5e-6);
  EXPECT_NEAR(p.stack_b.link_delay().neighbor_rate_ratio(), 1.0, 5e-7);

  p.stack_b.link_delay().clear_turnaround_attack();
  p.sim.run_until(SimTime(150_s));
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 1000.0, 25.0);
  EXPECT_NEAR(p.stack_a.link_delay().neighbor_rate_ratio(), 1.0, 5e-7);
}

TEST(LinkDelayTest, ExchangeCountsAdvance) {
  StackPair p(0.0, 0.0, symmetric_link(1000));
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  // One exchange per second per initiator (both sides initiate).
  EXPECT_GE(p.stack_a.link_delay().completed_exchanges(), 8u);
  EXPECT_GE(p.stack_b.link_delay().completed_exchanges(), 8u);
}

} // namespace
} // namespace tsn::gptp
