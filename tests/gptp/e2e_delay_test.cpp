// IEEE 1588 end-to-end delay mechanism (the protocol family's default,
// provided as a baseline to 802.1AS's peer-to-peer + bridge correction).
#include <gtest/gtest.h>

#include <cmath>

#include "gptp_test_util.hpp"
#include "net/switch.hpp"
#include "util/stats.hpp"

namespace tsn::gptp {
namespace {

using testutil::StackPair;
using testutil::symmetric_link;
using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

InstanceConfig e2e_gm() {
  InstanceConfig cfg;
  cfg.role = PortRole::kMaster;
  cfg.delay_mechanism = DelayMechanism::kE2E;
  return cfg;
}

InstanceConfig e2e_slave() {
  InstanceConfig cfg;
  cfg.role = PortRole::kSlave;
  cfg.delay_mechanism = DelayMechanism::kE2E;
  return cfg;
}

TEST(E2eMessagesTest, DelayReqRoundTrip) {
  DelayReqMessage m;
  m.header.type = MessageType::kDelayReq;
  m.header.sequence_id = 99;
  const auto bytes = serialize(Message{m});
  EXPECT_EQ(bytes.size(), 44u);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* req = std::get_if<DelayReqMessage>(&*parsed);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->header.sequence_id, 99);
}

TEST(E2eMessagesTest, DelayRespRoundTrip) {
  DelayRespMessage m;
  m.header.type = MessageType::kDelayResp;
  m.receive_timestamp = Timestamp::from_ns(123'456'789);
  m.requesting_port = {ClockIdentity::from_u64(0x42), 3};
  const auto parsed = parse(serialize(Message{m}));
  ASSERT_TRUE(parsed.has_value());
  const auto* resp = std::get_if<DelayRespMessage>(&*parsed);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->receive_timestamp.to_ns(), 123'456'789);
  EXPECT_EQ(resp->requesting_port.port, 3);
}

TEST(E2eDelayTest, MeasuresPathDelayOnDirectLink) {
  StackPair p(0.0, 0.0, symmetric_link(1500));
  p.stack_a.add_instance(e2e_gm());
  auto& slave = p.stack_b.add_instance(e2e_slave());
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(15_s));
  EXPECT_GT(slave.counters().delay_resps_received, 5u);
  EXPECT_FALSE(std::isnan(slave.e2e_path_delay_ns()));
  EXPECT_NEAR(slave.e2e_path_delay_ns(), 1500.0, 10.0);
}

TEST(E2eDelayTest, SlaveConvergesWithE2e) {
  StackPair p(3.0, -3.0, symmetric_link(1200), /*ts_jitter=*/4.0, /*seed=*/13);
  p.nic_b.phc().step(40'000);
  p.stack_a.add_instance(e2e_gm());
  auto& slave = p.stack_b.add_instance(e2e_slave());
  slave.enable_local_servo({});
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(60_s));
  EXPECT_LT(std::abs(static_cast<double>(p.nic_a.phc().read() - p.nic_b.phc().read())), 150.0);
}

TEST(E2eDelayTest, MasterCountsAnsweredRequests) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  auto& gm = p.stack_a.add_instance(e2e_gm());
  p.stack_b.add_instance(e2e_slave());
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  EXPECT_GE(gm.counters().delay_reqs_answered, 8u);
}

TEST(E2eDelayTest, P2pMasterIgnoresDelayReqs) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  InstanceConfig gm_cfg;
  gm_cfg.role = PortRole::kMaster; // P2P master
  auto& gm = p.stack_a.add_instance(gm_cfg);
  auto& slave = p.stack_b.add_instance(e2e_slave());
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  EXPECT_EQ(gm.counters().delay_reqs_answered, 0u);
  EXPECT_EQ(slave.counters().delay_resps_received, 0u);
  EXPECT_TRUE(std::isnan(slave.e2e_path_delay_ns()));
}

/// GM -- dumb (PTP-unaware) switch -- slave: E2E works where P2P cannot,
/// but queueing jitter lands in the offsets uncorrected.
struct DumbSwitchE2e {
  Simulation sim{55};
  net::Switch sw;
  net::Nic gm_nic;
  net::Nic slave_nic;
  net::Link lg;
  net::Link ls;
  PtpStack stack_g;
  PtpStack stack_s;

  static net::SwitchConfig sw_cfg(double residence_jitter) {
    net::SwitchConfig cfg;
    cfg.port_count = 3;
    cfg.residence_base_ns = 2'000;
    cfg.residence_jitter_ns = residence_jitter;
    cfg.phc.oscillator.initial_drift_ppm = 0.0;
    cfg.phc.oscillator.wander_sigma_ppm = 0.0;
    return cfg;
  }

  explicit DumbSwitchE2e(double residence_jitter)
      : sw(sim, sw_cfg(residence_jitter), "dumb"),
        gm_nic(sim, testutil::phc_with_drift(0.0), net::MacAddress::from_u64(0xA), "gm"),
        slave_nic(sim, testutil::phc_with_drift(0.0), net::MacAddress::from_u64(0xB), "sl"),
        lg(sim, gm_nic.port(), sw.port(0), testutil::symmetric_link(500), "g"),
        ls(sim, slave_nic.port(), sw.port(1), testutil::symmetric_link(500), "s"),
        stack_g(sim, gm_nic, {}, "G"),
        stack_s(sim, slave_nic, {}, "S") {}
        // NOTE: no TimeAwareBridge attached -> the switch just forwards PTP.
};

TEST(E2eDelayTest, WorksThroughPtpUnawareSwitch) {
  DumbSwitchE2e t(0.0);
  t.stack_g.add_instance(e2e_gm());
  auto& slave = t.stack_s.add_instance(e2e_slave());
  util::RunningStats st;
  slave.set_offset_callback([&](const MasterOffsetSample& s) { st.add(s.offset_ns); });
  t.stack_g.start();
  t.stack_s.start();
  t.sim.run_until(SimTime(20_s));
  ASSERT_GT(st.count(), 50u);
  // Symmetric path, no jitter: E2E fully accounts for the 2 us residence.
  EXPECT_LT(std::abs(st.mean()), 20.0);
  EXPECT_NEAR(slave.e2e_path_delay_ns(), 500.0 + 2'000.0 + 500.0 + 672.0, 30.0);
}

TEST(E2eDelayTest, QueueingJitterLandsInOffsetsUncorrected) {
  // The structural weakness vs 802.1AS P2P: a time-aware bridge timestamps
  // and corrects its residence; a dumb switch cannot, so its jitter goes
  // straight into the E2E offsets.
  DumbSwitchE2e t(400.0);
  t.stack_g.add_instance(e2e_gm());
  auto& slave = t.stack_s.add_instance(e2e_slave());
  util::RunningStats st;
  slave.set_offset_callback([&](const MasterOffsetSample& s) { st.add(s.offset_ns); });
  t.stack_g.start();
  t.stack_s.start();
  t.sim.run_until(SimTime(30_s));
  ASSERT_GT(st.count(), 100u);
  EXPECT_GT(st.stddev(), 200.0); // vs ~10 ns for P2P through a bridge
}

} // namespace
} // namespace tsn::gptp
