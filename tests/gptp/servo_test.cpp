#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gptp/servo.hpp"
#include "obs/obs.hpp"

namespace tsn::gptp {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

TEST(PiServoTest, FirstSampleIsUnlocked) {
  PiServo servo;
  const auto r = servo.sample(1000, 0);
  EXPECT_EQ(r.state, PiServo::State::kUnlocked);
}

TEST(PiServoTest, LargeInitialOffsetRequestsJump) {
  PiServo servo;
  servo.sample(1'000'000, 0);
  const auto r = servo.sample(1'000'000, kSecond);
  EXPECT_EQ(r.state, PiServo::State::kJump);
}

TEST(PiServoTest, SmallInitialOffsetLocksWithoutJump) {
  PiServo servo;
  servo.sample(500, 0);
  const auto r = servo.sample(500, kSecond);
  EXPECT_EQ(r.state, PiServo::State::kLocked);
}

TEST(PiServoTest, DriftEstimatedFromFirstTwoSamples) {
  PiServo servo;
  // Offset grows 1000 ns per second -> +1000 ppb local frequency error.
  servo.sample(0, 0);
  const auto r = servo.sample(1000, kSecond);
  EXPECT_EQ(r.state, PiServo::State::kLocked);
  // integral ~ +1000 ppb (plus ki*offset), output ~ -(kp*1000 + integral).
  EXPECT_LT(r.freq_ppb, -1000.0);
}

TEST(PiServoTest, PositiveOffsetYieldsNegativeCorrection) {
  PiServo servo;
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  const auto r = servo.sample(800, 2 * kSecond);
  EXPECT_EQ(r.state, PiServo::State::kLocked);
  EXPECT_LT(r.freq_ppb, 0.0);
}

TEST(PiServoTest, NegativeOffsetYieldsPositiveCorrection) {
  PiServo servo;
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  const auto r = servo.sample(-800, 2 * kSecond);
  EXPECT_GT(r.freq_ppb, 0.0);
}

TEST(PiServoTest, FrequencyClamped) {
  PiServoConfig cfg;
  cfg.max_frequency_ppb = 100.0;
  PiServo servo(cfg);
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  const auto r = servo.sample(1'000'000'0, 2 * kSecond);
  EXPECT_GE(r.freq_ppb, -100.0);
  EXPECT_LE(r.freq_ppb, 100.0);
}

TEST(PiServoTest, StepThresholdUnlocksWhenExceeded) {
  PiServoConfig cfg;
  cfg.step_threshold_ns = 10'000;
  PiServo servo(cfg);
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  EXPECT_EQ(servo.sample(100, 2 * kSecond).state, PiServo::State::kLocked);
  // A wild offset sends the servo back to acquisition.
  EXPECT_EQ(servo.sample(50'000, 3 * kSecond).state, PiServo::State::kUnlocked);
}

TEST(PiServoTest, ResetKeepsIntegral) {
  PiServo servo;
  servo.sample(0, 0);
  servo.sample(1000, kSecond); // learns ~1000 ppb
  const double learned = servo.integral_ppb();
  EXPECT_NE(learned, 0.0);
  servo.reset();
  EXPECT_EQ(servo.state(), PiServo::State::kUnlocked);
  EXPECT_EQ(servo.integral_ppb(), learned);
}

TEST(PiServoTest, WarmStartIntegral) {
  PiServo servo;
  servo.set_integral_ppb(-2500.0);
  const auto r = servo.sample(0, 0);
  // Even the very first (unlocked) sample programs the inherited frequency.
  EXPECT_DOUBLE_EQ(r.freq_ppb, 2500.0);
}

// Regression: the phase-jump decision used to flip kUnlocked -> kLocked in
// one sample, so a servo-state trace never showed kJump and an attack or
// reboot step was indistinguishable from a clean lock. The trace must show
// the full Unlocked -> Jump -> Locked sequence with the previous state in
// v1.
TEST(PiServoTest, JumpTransitionVisibleInTrace) {
  obs::Observability obs;
  PiServo servo;
  servo.attach_obs(obs.context(), "ecd0/servo");
  servo.sample(1'000'000, 0); // acquisition; no state change, no record
  EXPECT_EQ(servo.sample(1'000'000, kSecond).state, PiServo::State::kJump);
  EXPECT_EQ(servo.sample(100, 2 * kSecond).state, PiServo::State::kLocked);

  std::vector<obs::TraceRecord> states;
  for (const obs::TraceRecord& r : obs.trace.snapshot()) {
    if (r.kind == obs::TraceKind::kServoState) states.push_back(r);
  }
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0].a, static_cast<std::uint32_t>(PiServo::State::kJump));
  EXPECT_EQ(static_cast<int>(states[0].v1), static_cast<int>(PiServo::State::kUnlocked));
  EXPECT_EQ(states[0].t_ns, kSecond);
  EXPECT_EQ(states[1].a, static_cast<std::uint32_t>(PiServo::State::kLocked));
  EXPECT_EQ(static_cast<int>(states[1].v1), static_cast<int>(PiServo::State::kJump));
  EXPECT_EQ(states[1].t_ns, 2 * kSecond);
  EXPECT_EQ(obs.metrics.counter("ecd0/servo.jumps").value(), 1u);
}

TEST(PiServoTest, SmallOffsetLockProducesNoJumpRecord) {
  obs::Observability obs;
  PiServo servo;
  servo.attach_obs(obs.context(), "ecd0/servo");
  servo.sample(500, 0);
  EXPECT_EQ(servo.sample(500, kSecond).state, PiServo::State::kLocked);
  const auto recs = obs.trace.snapshot();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].a, static_cast<std::uint32_t>(PiServo::State::kLocked));
  EXPECT_EQ(static_cast<int>(recs[0].v1), static_cast<int>(PiServo::State::kUnlocked));
}

// Regression: the runaway-offset check used to test `state_ == kLocked`,
// so a wild offset arriving while the servo still held kJump was fed
// straight into the PI loop instead of restarting acquisition.
TEST(PiServoTest, RunawayOffsetDuringJumpRestartsAcquisition) {
  PiServoConfig cfg;
  cfg.step_threshold_ns = 100'000;
  PiServo servo(cfg);
  servo.sample(0, 0);
  EXPECT_EQ(servo.sample(50'000, kSecond).state, PiServo::State::kJump);
  EXPECT_EQ(servo.sample(500'000, 2 * kSecond).state, PiServo::State::kUnlocked);
}

/// Closed-loop simulation: a simple discrete clock model disciplined by the
/// servo must converge to the master from any drift within range.
class ServoConvergence : public ::testing::TestWithParam<double> {};

TEST_P(ServoConvergence, ConvergesForDrift) {
  const double drift_ppm = GetParam();
  PiServo servo;
  const std::int64_t S = 125'000'000; // 125 ms
  double slave_ns = 5'000.0;          // initial phase error
  double freq_adj_ppb = 0.0;
  double last_offset = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double rate = (1.0 + drift_ppm * 1e-6) * (1.0 + freq_adj_ppb * 1e-9);
    slave_ns += static_cast<double>(S) * (rate - 1.0); // error growth per interval
    last_offset = slave_ns;
    const auto r = servo.sample(static_cast<std::int64_t>(slave_ns),
                                static_cast<std::int64_t>(i) * S);
    if (r.state == PiServo::State::kJump) {
      slave_ns = 0.0;
    }
    freq_adj_ppb = r.freq_ppb;
  }
  EXPECT_LT(std::abs(last_offset), 50.0) << "drift " << drift_ppm << " ppm";
}

INSTANTIATE_TEST_SUITE_P(DriftSweep, ServoConvergence,
                         ::testing::Values(-5.0, -2.5, -0.5, 0.0, 0.5, 2.5, 5.0));

} // namespace
} // namespace tsn::gptp
