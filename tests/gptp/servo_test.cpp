#include <gtest/gtest.h>

#include <cmath>

#include "gptp/servo.hpp"

namespace tsn::gptp {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

TEST(PiServoTest, FirstSampleIsUnlocked) {
  PiServo servo;
  const auto r = servo.sample(1000, 0);
  EXPECT_EQ(r.state, PiServo::State::kUnlocked);
}

TEST(PiServoTest, LargeInitialOffsetRequestsJump) {
  PiServo servo;
  servo.sample(1'000'000, 0);
  const auto r = servo.sample(1'000'000, kSecond);
  EXPECT_EQ(r.state, PiServo::State::kJump);
}

TEST(PiServoTest, SmallInitialOffsetLocksWithoutJump) {
  PiServo servo;
  servo.sample(500, 0);
  const auto r = servo.sample(500, kSecond);
  EXPECT_EQ(r.state, PiServo::State::kLocked);
}

TEST(PiServoTest, DriftEstimatedFromFirstTwoSamples) {
  PiServo servo;
  // Offset grows 1000 ns per second -> +1000 ppb local frequency error.
  servo.sample(0, 0);
  const auto r = servo.sample(1000, kSecond);
  EXPECT_EQ(r.state, PiServo::State::kLocked);
  // integral ~ +1000 ppb (plus ki*offset), output ~ -(kp*1000 + integral).
  EXPECT_LT(r.freq_ppb, -1000.0);
}

TEST(PiServoTest, PositiveOffsetYieldsNegativeCorrection) {
  PiServo servo;
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  const auto r = servo.sample(800, 2 * kSecond);
  EXPECT_EQ(r.state, PiServo::State::kLocked);
  EXPECT_LT(r.freq_ppb, 0.0);
}

TEST(PiServoTest, NegativeOffsetYieldsPositiveCorrection) {
  PiServo servo;
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  const auto r = servo.sample(-800, 2 * kSecond);
  EXPECT_GT(r.freq_ppb, 0.0);
}

TEST(PiServoTest, FrequencyClamped) {
  PiServoConfig cfg;
  cfg.max_frequency_ppb = 100.0;
  PiServo servo(cfg);
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  const auto r = servo.sample(1'000'000'0, 2 * kSecond);
  EXPECT_GE(r.freq_ppb, -100.0);
  EXPECT_LE(r.freq_ppb, 100.0);
}

TEST(PiServoTest, StepThresholdUnlocksWhenExceeded) {
  PiServoConfig cfg;
  cfg.step_threshold_ns = 10'000;
  PiServo servo(cfg);
  servo.sample(0, 0);
  servo.sample(0, kSecond);
  EXPECT_EQ(servo.sample(100, 2 * kSecond).state, PiServo::State::kLocked);
  // A wild offset sends the servo back to acquisition.
  EXPECT_EQ(servo.sample(50'000, 3 * kSecond).state, PiServo::State::kUnlocked);
}

TEST(PiServoTest, ResetKeepsIntegral) {
  PiServo servo;
  servo.sample(0, 0);
  servo.sample(1000, kSecond); // learns ~1000 ppb
  const double learned = servo.integral_ppb();
  EXPECT_NE(learned, 0.0);
  servo.reset();
  EXPECT_EQ(servo.state(), PiServo::State::kUnlocked);
  EXPECT_EQ(servo.integral_ppb(), learned);
}

TEST(PiServoTest, WarmStartIntegral) {
  PiServo servo;
  servo.set_integral_ppb(-2500.0);
  const auto r = servo.sample(0, 0);
  // Even the very first (unlocked) sample programs the inherited frequency.
  EXPECT_DOUBLE_EQ(r.freq_ppb, 2500.0);
}

/// Closed-loop simulation: a simple discrete clock model disciplined by the
/// servo must converge to the master from any drift within range.
class ServoConvergence : public ::testing::TestWithParam<double> {};

TEST_P(ServoConvergence, ConvergesForDrift) {
  const double drift_ppm = GetParam();
  PiServo servo;
  const std::int64_t S = 125'000'000; // 125 ms
  double slave_ns = 5'000.0;          // initial phase error
  double freq_adj_ppb = 0.0;
  double last_offset = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double rate = (1.0 + drift_ppm * 1e-6) * (1.0 + freq_adj_ppb * 1e-9);
    slave_ns += static_cast<double>(S) * (rate - 1.0); // error growth per interval
    last_offset = slave_ns;
    const auto r = servo.sample(static_cast<std::int64_t>(slave_ns),
                                static_cast<std::int64_t>(i) * S);
    if (r.state == PiServo::State::kJump) {
      slave_ns = 0.0;
    }
    freq_adj_ppb = r.freq_ppb;
  }
  EXPECT_LT(std::abs(last_offset), 50.0) << "drift " << drift_ppm << " ppm";
}

INSTANTIATE_TEST_SUITE_P(DriftSweep, ServoConvergence,
                         ::testing::Values(-5.0, -2.5, -0.5, 0.0, 0.5, 2.5, 5.0));

} // namespace
} // namespace tsn::gptp
