// Time-aware bridge tests: Sync relaying with correction-field accumulation
// through one and two bridges, residence-time compensation, and multi-domain
// separation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gptp/bridge.hpp"
#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace tsn::gptp {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel phc(double drift_ppm, double jitter = 0.0) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = jitter;
  return m;
}

net::LinkConfig link_cfg(std::int64_t d) {
  net::LinkConfig cfg;
  cfg.a_to_b = {d, 0.0};
  cfg.b_to_a = {d, 0.0};
  return cfg;
}

net::SwitchConfig switch_cfg(double drift_ppm, double residence_jitter = 0.0) {
  net::SwitchConfig cfg;
  cfg.port_count = 4;
  cfg.residence_base_ns = 2'000;
  cfg.residence_jitter_ns = residence_jitter;
  cfg.phc = phc(drift_ppm);
  return cfg;
}

InstanceConfig gm_cfg(std::uint8_t domain = 0) {
  InstanceConfig c;
  c.domain = domain;
  c.role = PortRole::kMaster;
  return c;
}

InstanceConfig slave_cfg(std::uint8_t domain = 0) {
  InstanceConfig c;
  c.domain = domain;
  c.role = PortRole::kSlave;
  return c;
}

/// GM -- sw -- slave chain with one bridge.
struct OneBridge {
  Simulation sim{21};
  net::Nic gm_nic;
  net::Nic slave_nic;
  net::Switch sw;
  net::Link l_gm;
  net::Link l_slave;
  PtpStack gm_stack;
  PtpStack slave_stack;
  TimeAwareBridge bridge;

  OneBridge(double gm_drift, double sw_drift, double slave_drift,
            double residence_jitter = 0.0, double ts_jitter = 0.0)
      : gm_nic(sim, phc(gm_drift, ts_jitter), net::MacAddress::from_u64(0xA), "gm"),
        slave_nic(sim, phc(slave_drift, ts_jitter), net::MacAddress::from_u64(0xB), "slave"),
        sw(sim, switch_cfg(sw_drift, residence_jitter), "sw"),
        l_gm(sim, gm_nic.port(), sw.port(0), link_cfg(600), "gm-sw"),
        l_slave(sim, slave_nic.port(), sw.port(1), link_cfg(900), "sw-slave"),
        gm_stack(sim, gm_nic, {}, "gm"),
        slave_stack(sim, slave_nic, {}, "slave"),
        bridge(sim, sw, bridge_config(), "br") {}

  static BridgeConfig bridge_config() {
    BridgeConfig cfg;
    BridgeDomainConfig d;
    d.domain = 0;
    d.slave_port = 0;
    d.master_ports = {1};
    cfg.domains = {d};
    return cfg;
  }

  void start() {
    gm_stack.start();
    slave_stack.start();
    bridge.start();
  }
};

TEST(BridgeTest, RelaysSyncToSlave) {
  OneBridge t(0.0, 0.0, 0.0);
  t.gm_stack.add_instance(gm_cfg());
  auto& slave = t.slave_stack.add_instance(slave_cfg());
  t.start();
  t.sim.run_until(SimTime(10_s));
  EXPECT_GT(slave.counters().offsets_computed, 40u);
  EXPECT_GT(t.bridge.counters().syncs_relayed, 40u);
  EXPECT_GT(t.bridge.counters().followups_relayed, 40u);
}

TEST(BridgeTest, CorrectionCompensatesResidenceAndUpstreamDelay) {
  // All clocks perfect, no jitter: the computed slave offset must be ~0
  // even though the frame spends ~2 us inside the bridge.
  OneBridge t(0.0, 0.0, 0.0);
  t.gm_stack.add_instance(gm_cfg());
  auto& slave = t.slave_stack.add_instance(slave_cfg());
  util::RunningStats st;
  slave.set_offset_callback([&](const MasterOffsetSample& s) { st.add(s.offset_ns); });
  t.start();
  t.sim.run_until(SimTime(20_s));
  ASSERT_GT(st.count(), 50u);
  EXPECT_LT(std::abs(st.mean()), 5.0);
  EXPECT_LT(st.max() - st.min(), 10.0);
}

TEST(BridgeTest, ResidenceJitterIsCompensated) {
  // Large residence jitter must NOT leak into the offset: the bridge
  // timestamps ingress/egress and writes the difference into the
  // correction field.
  OneBridge t(0.0, 0.0, 0.0, /*residence_jitter=*/500.0);
  t.gm_stack.add_instance(gm_cfg());
  auto& slave = t.slave_stack.add_instance(slave_cfg());
  util::RunningStats st;
  slave.set_offset_callback([&](const MasterOffsetSample& s) { st.add(s.offset_ns); });
  t.start();
  t.sim.run_until(SimTime(20_s));
  ASSERT_GT(st.count(), 50u);
  EXPECT_LT(st.stddev(), 20.0); // vs. 500 ns residence jitter uncompensated
}

TEST(BridgeTest, DriftingBridgeClockDoesNotBreakSync) {
  // The bridge's free-running clock drifts +5 ppm; rate-ratio conversion in
  // the correction math keeps the slave accurate.
  OneBridge t(0.0, 5.0, -3.0);
  t.gm_stack.add_instance(gm_cfg());
  auto& slave = t.slave_stack.add_instance(slave_cfg());
  slave.enable_local_servo({});
  t.start();
  t.sim.run_until(SimTime(60_s));
  const double disagreement =
      std::abs(static_cast<double>(t.gm_nic.phc().read() - t.slave_nic.phc().read()));
  EXPECT_LT(disagreement, 100.0);
}

TEST(BridgeTest, SyncOnPassivePortIgnored) {
  OneBridge t(0.0, 0.0, 0.0);
  // Configure the *slave NIC* as a master in the same domain: its Syncs
  // arrive on bridge port 1, which is a master (non-slave) port.
  t.gm_stack.add_instance(gm_cfg());
  t.slave_stack.add_instance(gm_cfg());
  t.start();
  t.sim.run_until(SimTime(5_s));
  EXPECT_GT(t.bridge.counters().syncs_on_non_slave_port, 10u);
}

TEST(BridgeTest, UnconfiguredDomainNotRelayed) {
  OneBridge t(0.0, 0.0, 0.0);
  t.gm_stack.add_instance(gm_cfg(/*domain=*/7)); // bridge only knows domain 0
  auto& slave = t.slave_stack.add_instance(slave_cfg(7));
  t.start();
  t.sim.run_until(SimTime(5_s));
  EXPECT_EQ(slave.counters().syncs_received, 0u);
}

/// GM -- sw1 -- sw2 -- slave chain (two bridges).
struct TwoBridges {
  Simulation sim{31};
  net::Nic gm_nic;
  net::Nic slave_nic;
  net::Switch sw1;
  net::Switch sw2;
  net::Link l_gm;
  net::Link l_mid;
  net::Link l_slave;
  PtpStack gm_stack;
  PtpStack slave_stack;
  TimeAwareBridge br1;
  TimeAwareBridge br2;

  TwoBridges(double sw1_drift, double sw2_drift, double gm_drift = 2.0,
             double slave_drift = -2.0, double ts_jitter = 4.0)
      : gm_nic(sim, phc(gm_drift, ts_jitter), net::MacAddress::from_u64(0xA), "gm"),
        slave_nic(sim, phc(slave_drift, ts_jitter), net::MacAddress::from_u64(0xB), "slave"),
        sw1(sim, switch_cfg(sw1_drift, 200.0), "sw1"),
        sw2(sim, switch_cfg(sw2_drift, 200.0), "sw2"),
        l_gm(sim, gm_nic.port(), sw1.port(0), link_cfg(600), "gm-sw1"),
        l_mid(sim, sw1.port(1), sw2.port(0), link_cfg(800), "sw1-sw2"),
        l_slave(sim, slave_nic.port(), sw2.port(1), link_cfg(700), "sw2-slave"),
        gm_stack(sim, gm_nic, {}, "gm"),
        slave_stack(sim, slave_nic, {}, "slave"),
        br1(sim, sw1, cfg_br1(), "br1"),
        br2(sim, sw2, cfg_br2(), "br2") {}

  static BridgeConfig cfg_br1() {
    BridgeConfig cfg;
    cfg.domains = {{0, 0, {1}}};
    return cfg;
  }
  static BridgeConfig cfg_br2() {
    BridgeConfig cfg;
    cfg.domains = {{0, 0, {1}}};
    return cfg;
  }

  void start() {
    gm_stack.start();
    slave_stack.start();
    br1.start();
    br2.start();
  }
};

TEST(BridgeTest, TwoHopChainConverges) {
  TwoBridges t(4.0, -4.0);
  t.gm_stack.add_instance(gm_cfg());
  auto& slave = t.slave_stack.add_instance(slave_cfg());
  slave.enable_local_servo({});
  t.start();
  t.sim.run_until(SimTime(60_s));
  const double disagreement =
      std::abs(static_cast<double>(t.gm_nic.phc().read() - t.slave_nic.phc().read()));
  EXPECT_LT(disagreement, 150.0);
  EXPECT_GT(slave.counters().offsets_computed, 100u);
}

TEST(BridgeTest, CorrectionFieldGrowsAlongChain) {
  // All clocks ideal and no servo: any residual offset would be path delay
  // the correction field failed to carry.
  TwoBridges t(0.0, 0.0, /*gm_drift=*/0.0, /*slave_drift=*/0.0, /*ts_jitter=*/0.0);
  t.gm_stack.add_instance(gm_cfg());
  auto& slave = t.slave_stack.add_instance(slave_cfg());
  // Offsets near zero prove the correction field carried the full path
  // delay (~2 residences + 2 upstream link delays ~ 6+ us).
  util::RunningStats st;
  slave.set_offset_callback([&](const MasterOffsetSample& s) { st.add(s.offset_ns); });
  t.start();
  t.sim.run_until(SimTime(30_s));
  ASSERT_GT(st.count(), 20u);
  EXPECT_LT(std::abs(st.mean()), 30.0);
}

} // namespace
} // namespace tsn::gptp
