// PtpStack demultiplexing and lifecycle edge cases.
#include <gtest/gtest.h>

#include "gptp_test_util.hpp"
#include "util/stats.hpp"

namespace tsn::gptp {
namespace {

using testutil::StackPair;
using testutil::symmetric_link;
using tsn::sim::SimTime;
using namespace tsn::sim::literals;

TEST(PtpStackTest, MalformedFramesCountedAndDropped) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  p.stack_a.start();
  p.stack_b.start();
  // Inject garbage with the PTP ethertype.
  net::EthernetFrame junk;
  junk.dst = net::MacAddress::gptp_multicast();
  junk.ethertype = net::kEtherTypePtp;
  junk.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  p.nic_a.send(junk);
  p.sim.run_until(SimTime(100_ms));
  EXPECT_EQ(p.stack_b.malformed_frames(), 1u);
}

TEST(PtpStackTest, MessagesForUnknownDomainIgnored) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  InstanceConfig gm;
  gm.role = PortRole::kMaster;
  gm.domain = 42;
  p.stack_a.add_instance(gm);
  InstanceConfig slave;
  slave.role = PortRole::kSlave;
  slave.domain = 7; // listens to a different domain
  auto& inst = p.stack_b.add_instance(slave);
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  EXPECT_EQ(inst.counters().syncs_received, 0u);
}

TEST(PtpStackTest, InstanceLookupByDomain) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  InstanceConfig a;
  a.domain = 1;
  InstanceConfig b;
  b.domain = 2;
  p.stack_a.add_instance(a);
  p.stack_a.add_instance(b);
  EXPECT_NE(p.stack_a.instance_for_domain(1), nullptr);
  EXPECT_NE(p.stack_a.instance_for_domain(2), nullptr);
  EXPECT_EQ(p.stack_a.instance_for_domain(3), nullptr);
  EXPECT_EQ(p.stack_a.instance_for_domain(1)->config().domain, 1);
}

TEST(PtpStackTest, StoppedStackIgnoresTraffic) {
  StackPair p(0.0, 0.0, symmetric_link(500));
  InstanceConfig gm;
  gm.role = PortRole::kMaster;
  p.stack_a.add_instance(gm);
  auto& slave = p.stack_b.add_instance({});
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(5_s));
  const auto received = slave.counters().syncs_received;
  EXPECT_GT(received, 0u);
  p.stack_b.stop();
  p.sim.run_until(SimTime(10_s));
  EXPECT_EQ(slave.counters().syncs_received, received);
  // And it comes back after a restart.
  p.stack_b.start();
  p.sim.run_until(SimTime(15_s));
  EXPECT_GT(slave.counters().syncs_received, received);
}

TEST(PtpStackTest, MultiDomainInstancesShareOnePdelayService) {
  StackPair p(0.0, 3.0, symmetric_link(900));
  for (std::uint8_t d = 1; d <= 4; ++d) {
    InstanceConfig cfg;
    cfg.domain = d;
    cfg.role = PortRole::kSlave;
    p.stack_a.add_instance(cfg);
  }
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(10_s));
  // One pdelay exchange per second regardless of 4 domains.
  EXPECT_LE(p.stack_a.link_delay().completed_exchanges(), 11u);
  EXPECT_GE(p.stack_a.link_delay().completed_exchanges(), 8u);
  EXPECT_NEAR(p.stack_a.link_delay().mean_link_delay_ns(), 900.0, 10.0);
}

TEST(PtpStackTest, TwoDomainsSyncIndependently) {
  // GM for domain 1 on A, GM for domain 2 on B; each side is also the
  // other domain's slave -- the minimal mutual multi-domain setup.
  StackPair p(2.0, -2.0, symmetric_link(700), 4.0, 9);
  InstanceConfig gm1;
  gm1.role = PortRole::kMaster;
  gm1.domain = 1;
  InstanceConfig slave2;
  slave2.role = PortRole::kSlave;
  slave2.domain = 2;
  p.stack_a.add_instance(gm1);
  auto& a_slave = p.stack_a.add_instance(slave2);
  InstanceConfig gm2;
  gm2.role = PortRole::kMaster;
  gm2.domain = 2;
  InstanceConfig slave1;
  slave1.role = PortRole::kSlave;
  slave1.domain = 1;
  p.stack_b.add_instance(gm2);
  auto& b_slave = p.stack_b.add_instance(slave1);

  util::RunningStats a_off, b_off;
  a_slave.set_offset_callback([&](const MasterOffsetSample& s) { a_off.add(s.offset_ns); });
  b_slave.set_offset_callback([&](const MasterOffsetSample& s) { b_off.add(s.offset_ns); });
  p.stack_a.start();
  p.stack_b.start();
  p.sim.run_until(SimTime(20_s));
  EXPECT_GT(a_off.count(), 100u);
  EXPECT_GT(b_off.count(), 100u);
  // Offsets are consistent: A sees B's clock as B sees A's, mirrored
  // (within drift accumulated over the window and noise).
  EXPECT_NEAR(a_off.mean(), -b_off.mean(), 2'000.0);
}

} // namespace
} // namespace tsn::gptp
