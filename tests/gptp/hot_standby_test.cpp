// Hot-standby grandmasters via BMCA through a dynamic-mode bridge -- the
// redundancy mechanism IEEE 802.1AS/1588 "emphasize" (paper sec. I) and
// which the library provides alongside the paper's FTA approach.
//
// Topology: gmA (prio 50), gmB (prio 100) and a slave on one switch.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gptp/bridge.hpp"
#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace tsn::gptp {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel phc(double drift_ppm) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 4.0;
  return m;
}

struct HotStandby {
  Simulation sim{77};
  net::Switch sw;
  net::Nic gm_a;
  net::Nic gm_b;
  net::Nic slave_nic;
  net::Link la;
  net::Link lb;
  net::Link ls;
  PtpStack stack_a;
  PtpStack stack_b;
  PtpStack stack_s;
  TimeAwareBridge bridge;
  PtpInstance* inst_a = nullptr;
  PtpInstance* inst_b = nullptr;
  PtpInstance* inst_s = nullptr;

  static net::SwitchConfig sw_cfg() {
    net::SwitchConfig cfg;
    cfg.port_count = 4;
    cfg.residence_jitter_ns = 50.0;
    cfg.phc.oscillator.initial_drift_ppm = 1.0;
    cfg.phc.oscillator.wander_sigma_ppm = 0.0;
    return cfg;
  }
  static BridgeConfig bridge_cfg() {
    BridgeConfig cfg;
    BridgeDomainConfig d;
    d.domain = 0;
    d.dynamic = true; // hot-standby mode
    cfg.domains = {d};
    return cfg;
  }

  HotStandby()
      : sw(sim, sw_cfg(), "sw"),
        gm_a(sim, phc(2.0), net::MacAddress::from_u64(0xA), "gmA"),
        gm_b(sim, phc(-2.0), net::MacAddress::from_u64(0xB), "gmB"),
        slave_nic(sim, phc(4.0), net::MacAddress::from_u64(0xC), "slave"),
        la(sim, gm_a.port(), sw.port(0), {}, "a"),
        lb(sim, gm_b.port(), sw.port(1), {}, "b"),
        ls(sim, slave_nic.port(), sw.port(2), {}, "s"),
        stack_a(sim, gm_a, {}, "A"),
        stack_b(sim, gm_b, {}, "B"),
        stack_s(sim, slave_nic, {}, "S"),
        bridge(sim, sw, bridge_cfg(), "br") {
    InstanceConfig a;
    a.use_bmca = true;
    a.priority1 = 50; // primary GM
    inst_a = &stack_a.add_instance(a);
    InstanceConfig b = a;
    b.priority1 = 100; // hot standby
    inst_b = &stack_b.add_instance(b);
    InstanceConfig s = a;
    s.priority1 = 255; // never a master in practice
    inst_s = &stack_s.add_instance(s);
    inst_s->enable_local_servo({});
    stack_a.start();
    stack_b.start();
    stack_s.start();
    bridge.start();
  }

  double slave_offset_to(net::Nic& gm) {
    return std::abs(static_cast<double>(slave_nic.phc().read() - gm.phc().read()));
  }
};

TEST(HotStandbyTest, PrimaryElectedThroughBridge) {
  HotStandby t;
  t.sim.run_until(SimTime(15_s));
  EXPECT_EQ(t.inst_a->role(), PortRole::kMaster);
  EXPECT_EQ(t.inst_b->role(), PortRole::kSlave);
  EXPECT_EQ(t.inst_s->role(), PortRole::kSlave);
  EXPECT_GT(t.bridge.counters().announces_relayed, 10u);
}

TEST(HotStandbyTest, SlaveSynchronizesToPrimary) {
  HotStandby t;
  t.sim.run_until(SimTime(30_s));
  // Average the disagreement over a window: single reads catch servo
  // ripple (residence jitter is 50 ns through one bridge hop).
  util::RunningStats st;
  for (int i = 0; i < 40; ++i) {
    t.sim.run_until(t.sim.now() + 250_ms);
    st.add(t.slave_offset_to(t.gm_a));
  }
  EXPECT_LT(st.mean(), 400.0);
}

TEST(HotStandbyTest, StandbyTakesOverWhenPrimaryDies) {
  HotStandby t;
  t.sim.run_until(SimTime(20_s));
  ASSERT_EQ(t.inst_a->role(), PortRole::kMaster);
  t.gm_a.set_up(false); // primary GM fails silently
  t.sim.run_until(SimTime(40_s));
  EXPECT_EQ(t.inst_b->role(), PortRole::kMaster); // hot standby promoted
  EXPECT_EQ(t.inst_s->role(), PortRole::kSlave);
  // The slave now tracks gmB.
  t.sim.run_until(SimTime(70_s));
  EXPECT_LT(t.slave_offset_to(t.gm_b), 300.0);
}

TEST(HotStandbyTest, PrimaryReclaimsOnReturn) {
  HotStandby t;
  t.sim.run_until(SimTime(20_s));
  t.gm_a.set_up(false);
  t.sim.run_until(SimTime(40_s));
  ASSERT_EQ(t.inst_b->role(), PortRole::kMaster);
  t.gm_a.set_up(true); // better clock returns
  t.sim.run_until(SimTime(60_s));
  EXPECT_EQ(t.inst_a->role(), PortRole::kMaster);
  EXPECT_EQ(t.inst_b->role(), PortRole::kSlave);
}

TEST(HotStandbyTest, StepsRemovedGrowsAcrossBridge) {
  HotStandby t;
  // Sniff announces on the slave NIC.
  std::uint16_t seen_steps = 0;
  t.slave_nic.set_rx_handler(net::kEtherTypePtp,
                             [&](const net::EthernetFrame& f, const net::RxMeta& m) {
                               if (auto msg = parse(f.payload)) {
                                 if (auto* ann = std::get_if<AnnounceMessage>(&*msg)) {
                                   seen_steps = ann->steps_removed;
                                 }
                               }
                               // keep the stack working too
                               (void)m;
                             });
  t.sim.run_until(SimTime(5_s));
  EXPECT_EQ(seen_steps, 1u); // one bridge hop
}

} // namespace
} // namespace tsn::gptp
