#include <gtest/gtest.h>

#include "gptp/messages.hpp"
#include "gptp/wire.hpp"

namespace tsn::gptp {
namespace {

MessageHeader sample_header(MessageType type) {
  MessageHeader h;
  h.type = type;
  h.domain = 3;
  h.two_step = (type == MessageType::kSync);
  h.correction_scaled = scaled_ns::from_ns(12345.5);
  h.source_port = {ClockIdentity::from_u64(0x0011223344556677ULL), 2};
  h.sequence_id = 0xBEEF;
  h.log_message_interval = -3;
  return h;
}

TEST(WireTest, U16U32U48U64RoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u48(0x0000123456789ABCULL);
  w.u64(0xFEDCBA9876543210ULL);
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u48(), 0x0000123456789ABCULL);
  EXPECT_EQ(r.u64(), 0xFEDCBA9876543210ULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, BigEndianOnTheWire) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u16(0x1234);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
}

TEST(WireTest, ReaderUnderflowSetsNotOk) {
  std::vector<std::uint8_t> buf{1, 2};
  ByteReader r(buf);
  r.u32();
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, TimestampRoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  const Timestamp ts = Timestamp::from_ns(1'234'567'890'123LL);
  w.timestamp(ts);
  EXPECT_EQ(buf.size(), 10u);
  ByteReader r(buf);
  EXPECT_EQ(r.timestamp(), ts);
}

TEST(TypesTest, TimestampConversion) {
  const Timestamp ts = Timestamp::from_ns(5'000'000'123LL);
  EXPECT_EQ(ts.seconds, 5u);
  EXPECT_EQ(ts.nanoseconds, 123u);
  EXPECT_EQ(ts.to_ns(), 5'000'000'123LL);
  EXPECT_EQ(Timestamp::from_ns(-5).to_ns(), 0); // clamped at the epoch
}

TEST(TypesTest, ScaledNsRoundTrip) {
  EXPECT_DOUBLE_EQ(scaled_ns::to_ns(scaled_ns::from_ns(1000.25)), 1000.25);
  EXPECT_EQ(scaled_ns::from_ns(1.0), 65536);
  EXPECT_DOUBLE_EQ(scaled_ns::to_ns(-65536), -1.0);
}

TEST(TypesTest, RateOffsetRoundTrip) {
  // +5 ppm rate ratio survives the 2^-41 quantization to ~1e-12.
  const double ratio = 1.000005;
  EXPECT_NEAR(rate_offset::to_ratio(rate_offset::from_ratio(ratio)), ratio, 1e-11);
  EXPECT_EQ(rate_offset::from_ratio(1.0), 0);
}

TEST(TypesTest, ClockIdentityString) {
  const auto id = ClockIdentity::from_u64(0x0011223344556677ULL);
  EXPECT_EQ(id.to_string(), "001122.3344.556677");
  EXPECT_EQ(id.to_u64(), 0x0011223344556677ULL);
}

TEST(MessagesTest, SyncRoundTrip) {
  SyncMessage m{sample_header(MessageType::kSync)};
  const auto bytes = serialize(Message{m});
  EXPECT_EQ(bytes.size(), 44u); // 34 header + 10 reserved
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* sync = std::get_if<SyncMessage>(&*parsed);
  ASSERT_NE(sync, nullptr);
  EXPECT_EQ(sync->header.domain, 3);
  EXPECT_TRUE(sync->header.two_step);
  EXPECT_EQ(sync->header.sequence_id, 0xBEEF);
  EXPECT_EQ(sync->header.correction_scaled, scaled_ns::from_ns(12345.5));
  EXPECT_EQ(sync->header.source_port.port, 2);
  EXPECT_EQ(sync->header.log_message_interval, -3);
}

TEST(MessagesTest, FollowUpRoundTripWithTlv) {
  FollowUpMessage m;
  m.header = sample_header(MessageType::kFollowUp);
  m.precise_origin = Timestamp::from_ns(987'654'321'000LL);
  m.cumulative_scaled_rate_offset = rate_offset::from_ratio(1.0000042);
  m.gm_time_base_indicator = 7;
  m.scaled_last_gm_freq_change = -42;
  const auto bytes = serialize(Message{m});
  EXPECT_EQ(bytes.size(), 76u); // 34 + 10 + 32 TLV
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* fup = std::get_if<FollowUpMessage>(&*parsed);
  ASSERT_NE(fup, nullptr);
  EXPECT_EQ(fup->precise_origin.to_ns(), 987'654'321'000LL);
  EXPECT_EQ(fup->cumulative_scaled_rate_offset, m.cumulative_scaled_rate_offset);
  EXPECT_EQ(fup->gm_time_base_indicator, 7);
  EXPECT_EQ(fup->scaled_last_gm_freq_change, -42);
  EXPECT_NEAR(fup->rate_ratio(), 1.0000042, 1e-11);
}

TEST(MessagesTest, PdelayReqRoundTrip) {
  PdelayReqMessage m{sample_header(MessageType::kPdelayReq)};
  const auto bytes = serialize(Message{m});
  EXPECT_EQ(bytes.size(), 54u);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(std::get_if<PdelayReqMessage>(&*parsed), nullptr);
}

TEST(MessagesTest, PdelayRespRoundTrip) {
  PdelayRespMessage m;
  m.header = sample_header(MessageType::kPdelayResp);
  m.request_receipt = Timestamp::from_ns(123'456'789LL);
  m.requesting_port = {ClockIdentity::from_u64(0xAA), 9};
  const auto bytes = serialize(Message{m});
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto* resp = std::get_if<PdelayRespMessage>(&*parsed);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->request_receipt.to_ns(), 123'456'789LL);
  EXPECT_EQ(resp->requesting_port.port, 9);
}

TEST(MessagesTest, PdelayRespFollowUpRoundTrip) {
  PdelayRespFollowUpMessage m;
  m.header = sample_header(MessageType::kPdelayRespFollowUp);
  m.response_origin = Timestamp::from_ns(42);
  m.requesting_port = {ClockIdentity::from_u64(0xBB), 1};
  const auto parsed = parse(serialize(Message{m}));
  ASSERT_TRUE(parsed.has_value());
  const auto* fup = std::get_if<PdelayRespFollowUpMessage>(&*parsed);
  ASSERT_NE(fup, nullptr);
  EXPECT_EQ(fup->response_origin.to_ns(), 42);
}

TEST(MessagesTest, AnnounceRoundTripWithPathTrace) {
  AnnounceMessage m;
  m.header = sample_header(MessageType::kAnnounce);
  m.grandmaster_priority1 = 100;
  m.grandmaster_priority2 = 200;
  m.grandmaster_quality = {6, 0x20, 0x1234};
  m.grandmaster_identity = ClockIdentity::from_u64(0xCAFE);
  m.steps_removed = 3;
  m.time_source = 0x10;
  m.path_trace = {ClockIdentity::from_u64(1), ClockIdentity::from_u64(2)};
  const auto parsed = parse(serialize(Message{m}));
  ASSERT_TRUE(parsed.has_value());
  const auto* ann = std::get_if<AnnounceMessage>(&*parsed);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->grandmaster_priority1, 100);
  EXPECT_EQ(ann->grandmaster_quality.clock_class, 6);
  EXPECT_EQ(ann->grandmaster_quality.offset_scaled_log_variance, 0x1234);
  EXPECT_EQ(ann->grandmaster_identity.to_u64(), 0xCAFEu);
  EXPECT_EQ(ann->steps_removed, 3);
  ASSERT_EQ(ann->path_trace.size(), 2u);
  EXPECT_EQ(ann->path_trace[1].to_u64(), 2u);
}

TEST(MessagesTest, AnnounceWithoutPathTrace) {
  AnnounceMessage m;
  m.header = sample_header(MessageType::kAnnounce);
  const auto parsed = parse(serialize(Message{m}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(std::get_if<AnnounceMessage>(&*parsed)->path_trace.empty());
}

TEST(MessagesTest, MessageLengthFieldMatches) {
  SyncMessage m{sample_header(MessageType::kSync)};
  const auto bytes = serialize(Message{m});
  const std::uint16_t len = static_cast<std::uint16_t>((bytes[2] << 8) | bytes[3]);
  EXPECT_EQ(len, bytes.size());
}

TEST(MessagesTest, TruncatedInputRejected) {
  SyncMessage m{sample_header(MessageType::kSync)};
  auto bytes = serialize(Message{m});
  bytes.resize(bytes.size() - 5);
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(MessagesTest, EmptyAndGarbageRejected) {
  EXPECT_FALSE(parse(std::vector<std::uint8_t>{}).has_value());
  EXPECT_FALSE(parse(std::vector<std::uint8_t>(44, 0xFF)).has_value());
}

TEST(MessagesTest, WrongTransportSpecificRejected) {
  SyncMessage m{sample_header(MessageType::kSync)};
  auto bytes = serialize(Message{m});
  bytes[0] = (0x0 << 4) | 0x0; // transportSpecific = 0 (non-802.1AS)
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(MessagesTest, FollowUpWithMangledTlvRejected) {
  FollowUpMessage m;
  m.header = sample_header(MessageType::kFollowUp);
  auto bytes = serialize(Message{m});
  bytes[44] = 0xFF; // corrupt the TLV type
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(MessagesTest, HeaderOfAccessors) {
  Message m = SyncMessage{sample_header(MessageType::kSync)};
  EXPECT_EQ(header_of(m).sequence_id, 0xBEEF);
  header_of(m).sequence_id = 7;
  EXPECT_EQ(header_of(m).sequence_id, 7);
}

} // namespace
} // namespace tsn::gptp
