// Robustness of the wire-format parser: arbitrary and mutated inputs must
// never crash, and every accepted message must re-serialize consistently.
#include <gtest/gtest.h>

#include "gptp/messages.hpp"
#include "util/rng.hpp"

namespace tsn::gptp {
namespace {

Message sample_message(MessageType type, util::RngStream& rng) {
  MessageHeader h;
  h.type = type;
  h.domain = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  h.two_step = rng.chance(0.5);
  h.correction_scaled = rng.uniform_int(-1'000'000'000, 1'000'000'000);
  h.source_port = {ClockIdentity::from_u64(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))),
                   static_cast<std::uint16_t>(rng.uniform_int(0, 65535))};
  h.sequence_id = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  h.log_message_interval = static_cast<std::int8_t>(rng.uniform_int(-8, 8));
  switch (type) {
    case MessageType::kSync: return SyncMessage{h};
    case MessageType::kDelayReq: return DelayReqMessage{h};
    case MessageType::kPdelayReq: return PdelayReqMessage{h};
    case MessageType::kFollowUp: {
      FollowUpMessage m;
      m.header = h;
      m.precise_origin = Timestamp::from_ns(rng.uniform_int(0, INT64_MAX / 4));
      m.cumulative_scaled_rate_offset = static_cast<std::int32_t>(rng.uniform_int(-1e9, 1e9));
      m.gm_time_base_indicator = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      m.scaled_last_gm_freq_change = static_cast<std::int32_t>(rng.uniform_int(-1e9, 1e9));
      return m;
    }
    case MessageType::kDelayResp: {
      DelayRespMessage m;
      m.header = h;
      m.receive_timestamp = Timestamp::from_ns(rng.uniform_int(0, INT64_MAX / 4));
      m.requesting_port = h.source_port;
      return m;
    }
    case MessageType::kPdelayResp: {
      PdelayRespMessage m;
      m.header = h;
      m.request_receipt = Timestamp::from_ns(rng.uniform_int(0, INT64_MAX / 4));
      m.requesting_port = h.source_port;
      return m;
    }
    case MessageType::kPdelayRespFollowUp: {
      PdelayRespFollowUpMessage m;
      m.header = h;
      m.response_origin = Timestamp::from_ns(rng.uniform_int(0, INT64_MAX / 4));
      m.requesting_port = h.source_port;
      return m;
    }
    case MessageType::kAnnounce: {
      AnnounceMessage m;
      m.header = h;
      m.grandmaster_priority1 = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      m.grandmaster_identity = ClockIdentity::from_u64(
          static_cast<std::uint64_t>(rng.uniform_int(0, INT64_MAX / 2)));
      m.steps_removed = static_cast<std::uint16_t>(rng.uniform_int(0, 255));
      const int hops = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < hops; ++i) {
        m.path_trace.push_back(
            ClockIdentity::from_u64(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20))));
      }
      return m;
    }
  }
  return SyncMessage{h};
}

const MessageType kAllTypes[] = {
    MessageType::kSync,       MessageType::kDelayReq,  MessageType::kPdelayReq,
    MessageType::kPdelayResp, MessageType::kFollowUp,  MessageType::kDelayResp,
    MessageType::kPdelayRespFollowUp, MessageType::kAnnounce,
};

TEST(FuzzParseTest, RandomBytesNeverCrash) {
  util::RngStream rng(4242, "fuzz-random");
  int accepted = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 120));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (parse(bytes)) ++accepted;
  }
  // Random bytes essentially never form a valid 802.1AS message (the
  // transportSpecific/version/TLV checks reject them).
  EXPECT_LT(accepted, 60); // ~1/512 pass the header nibble gates
}

TEST(FuzzParseTest, DoubleRoundTripIsStable) {
  util::RngStream rng(7, "fuzz-rt");
  for (int trial = 0; trial < 2'000; ++trial) {
    const auto type = kAllTypes[rng.uniform_int(0, 7)];
    const Message original = sample_message(type, rng);
    const auto bytes1 = serialize(original);
    const auto parsed = parse(bytes1);
    ASSERT_TRUE(parsed.has_value()) << "type " << static_cast<int>(type);
    const auto bytes2 = serialize(*parsed);
    EXPECT_EQ(bytes1, bytes2) << "type " << static_cast<int>(type);
  }
}

TEST(FuzzParseTest, TruncationsNeverCrashOrMisparse) {
  util::RngStream rng(11, "fuzz-trunc");
  for (int trial = 0; trial < 500; ++trial) {
    const auto type = kAllTypes[rng.uniform_int(0, 7)];
    auto bytes = serialize(sample_message(type, rng));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
      const auto parsed = parse(cut);
      if (parsed) {
        // A shorter prefix that still parses must be a self-contained
        // message (e.g. announce without its optional path-trace TLV).
        EXPECT_EQ(header_of(*parsed).type, type);
      }
    }
  }
}

TEST(FuzzParseTest, SingleByteMutationsNeverCrash) {
  util::RngStream rng(13, "fuzz-mut");
  for (int trial = 0; trial < 2'000; ++trial) {
    const auto type = kAllTypes[rng.uniform_int(0, 7)];
    auto bytes = serialize(sample_message(type, rng));
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    (void)parse(bytes); // must not crash; accept/reject both fine
  }
}

} // namespace
} // namespace tsn::gptp
