// Shared fixtures for gPTP protocol tests.
#pragma once

#include <memory>
#include <string>

#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "sim/simulation.hpp"

namespace tsn::gptp::testutil {

inline time::PhcModel phc_with_drift(double ppm, double ts_jitter_ns = 0.0,
                                     double wander_ppm = 0.0) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = ppm;
  m.oscillator.wander_sigma_ppm = wander_ppm;
  m.timestamp_jitter_ns = ts_jitter_ns;
  return m;
}

inline net::LinkConfig symmetric_link(std::int64_t delay_ns, double jitter_ns = 0.0) {
  net::LinkConfig cfg;
  cfg.a_to_b = {delay_ns, jitter_ns};
  cfg.b_to_a = {delay_ns, jitter_ns};
  return cfg;
}

/// Two directly connected NICs, each with a PtpStack.
struct StackPair {
  sim::Simulation sim;
  net::Nic nic_a;
  net::Nic nic_b;
  net::Link link;
  PtpStack stack_a;
  PtpStack stack_b;

  StackPair(double drift_a_ppm, double drift_b_ppm, net::LinkConfig link_cfg,
            double ts_jitter_ns = 0.0, std::uint64_t seed = 1,
            LinkDelayConfig ld_cfg = {})
      : sim(seed),
        nic_a(sim, phc_with_drift(drift_a_ppm, ts_jitter_ns), net::MacAddress::from_u64(0xA),
              "nicA"),
        nic_b(sim, phc_with_drift(drift_b_ppm, ts_jitter_ns), net::MacAddress::from_u64(0xB),
              "nicB"),
        link(sim, nic_a.port(), nic_b.port(), link_cfg, "ab"),
        stack_a(sim, nic_a, ld_cfg, "A"),
        stack_b(sim, nic_b, ld_cfg, "B") {}
};

} // namespace tsn::gptp::testutil
