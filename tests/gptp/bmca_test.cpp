#include <gtest/gtest.h>

#include "gptp/bmca.hpp"

namespace tsn::gptp {
namespace {

PriorityVector vec(std::uint8_t p1, std::uint8_t clock_class, std::uint64_t id,
                   std::uint16_t steps = 0) {
  PriorityVector v;
  v.priority1 = p1;
  v.quality.clock_class = clock_class;
  v.identity = ClockIdentity::from_u64(id);
  v.steps_removed = steps;
  return v;
}

AnnounceMessage announce_from(const PriorityVector& v, std::uint64_t sender_id) {
  AnnounceMessage m;
  m.header.type = MessageType::kAnnounce;
  m.header.source_port = {ClockIdentity::from_u64(sender_id), 1};
  m.grandmaster_priority1 = v.priority1;
  m.grandmaster_quality = v.quality;
  m.grandmaster_priority2 = v.priority2;
  m.grandmaster_identity = v.identity;
  m.steps_removed = v.steps_removed;
  return m;
}

TEST(BmcaCompareTest, Priority1Dominates) {
  EXPECT_LT(compare_priority(vec(10, 248, 5), vec(20, 6, 1)), 0);
}

TEST(BmcaCompareTest, ClockClassBreaksTie) {
  EXPECT_LT(compare_priority(vec(10, 6, 5), vec(10, 248, 1)), 0);
}

TEST(BmcaCompareTest, IdentityIsFinalTiebreaker) {
  EXPECT_LT(compare_priority(vec(10, 6, 1), vec(10, 6, 2)), 0);
  EXPECT_GT(compare_priority(vec(10, 6, 2), vec(10, 6, 1)), 0);
}

TEST(BmcaCompareTest, EqualVectorsCompareEqual) {
  EXPECT_EQ(compare_priority(vec(10, 6, 1), vec(10, 6, 1)), 0);
}

TEST(BmcaCompareTest, StepsRemovedBreaksTieForSameGm) {
  EXPECT_LT(compare_priority(vec(10, 6, 1, 1), vec(10, 6, 1, 2)), 0);
}

TEST(BmcaEngineTest, AloneMeansMaster) {
  BmcaEngine engine({vec(100, 248, 42), 3'000'000'000});
  const auto d = engine.evaluate(0);
  EXPECT_EQ(d.role, PortRole::kMaster);
  EXPECT_EQ(d.grandmaster.to_u64(), 42u);
}

TEST(BmcaEngineTest, BetterForeignMasterWins) {
  BmcaEngine engine({vec(100, 248, 42), 3'000'000'000});
  engine.on_announce(announce_from(vec(50, 6, 7), 7), 0);
  const auto d = engine.evaluate(1);
  EXPECT_EQ(d.role, PortRole::kSlave);
  EXPECT_EQ(d.grandmaster.to_u64(), 7u);
  ASSERT_TRUE(d.parent_port.has_value());
  EXPECT_EQ(d.parent_port->clock.to_u64(), 7u);
}

TEST(BmcaEngineTest, WorseForeignMasterLoses) {
  BmcaEngine engine({vec(50, 6, 42), 3'000'000'000});
  engine.on_announce(announce_from(vec(100, 248, 7), 7), 0);
  EXPECT_EQ(engine.evaluate(1).role, PortRole::kMaster);
}

TEST(BmcaEngineTest, BestOfSeveralForeignMasters) {
  BmcaEngine engine({vec(200, 248, 42), 3'000'000'000});
  engine.on_announce(announce_from(vec(100, 248, 7), 7), 0);
  engine.on_announce(announce_from(vec(50, 248, 9), 9), 0);
  engine.on_announce(announce_from(vec(80, 248, 11), 11), 0);
  const auto d = engine.evaluate(1);
  EXPECT_EQ(d.role, PortRole::kSlave);
  EXPECT_EQ(d.grandmaster.to_u64(), 9u);
}

TEST(BmcaEngineTest, ForeignMasterExpires) {
  BmcaEngine engine({vec(100, 248, 42), 1'000});
  engine.on_announce(announce_from(vec(50, 6, 7), 7), 0);
  EXPECT_EQ(engine.evaluate(500).role, PortRole::kSlave);
  EXPECT_EQ(engine.evaluate(2'000).role, PortRole::kMaster);
  EXPECT_EQ(engine.foreign_master_count(), 0u);
}

TEST(BmcaEngineTest, RefreshedAnnounceKeepsMasterAlive) {
  BmcaEngine engine({vec(100, 248, 42), 1'000});
  engine.on_announce(announce_from(vec(50, 6, 7), 7), 0);
  engine.on_announce(announce_from(vec(50, 6, 7), 7), 900);
  EXPECT_EQ(engine.evaluate(1'500).role, PortRole::kSlave);
}

TEST(BmcaEngineTest, IgnoresOwnReflectedAnnounce) {
  BmcaEngine engine({vec(100, 248, 42), 3'000'000'000});
  engine.on_announce(announce_from(vec(10, 6, 42), 42), 0); // claims our GM id
  EXPECT_EQ(engine.evaluate(1).role, PortRole::kMaster);
}

TEST(BmcaEngineTest, PathTraceLoopPrevention) {
  BmcaEngine engine({vec(100, 248, 42), 3'000'000'000});
  auto ann = announce_from(vec(10, 6, 7), 7);
  ann.path_trace = {ClockIdentity::from_u64(7), ClockIdentity::from_u64(42)};
  engine.on_announce(ann, 0);
  EXPECT_EQ(engine.evaluate(1).role, PortRole::kMaster);
  EXPECT_EQ(engine.foreign_master_count(), 0u);
}

TEST(BmcaEngineTest, StepsRemovedIncrementedOnReceipt) {
  BmcaEngine engine({vec(200, 248, 42), 3'000'000'000});
  auto ann = announce_from(vec(100, 248, 7, 2), 7);
  engine.on_announce(ann, 0);
  // The same GM via a longer path (more steps) must not replace a shorter
  // one from a different sender.
  BmcaEngine engine2({vec(200, 248, 42), 3'000'000'000});
  engine2.on_announce(announce_from(vec(100, 248, 7, 1), 8), 0);
  engine2.on_announce(announce_from(vec(100, 248, 7, 5), 9), 0);
  const auto d = engine2.evaluate(1);
  ASSERT_TRUE(d.parent_port.has_value());
  EXPECT_EQ(d.parent_port->clock.to_u64(), 8u);
}

} // namespace
} // namespace tsn::gptp
