#include "core/validity.hpp"

#include <gtest/gtest.h>

namespace tsn::core {
namespace {

std::optional<GmOffsetRecord> rec(double offset, std::int64_t rx_ts) {
  GmOffsetRecord r;
  r.offset_ns = offset;
  r.local_rx_ts = rx_ts;
  return r;
}

ValidityConfig cfg(double threshold = 100.0, std::int64_t window = 1000) {
  ValidityConfig c;
  c.agreement_threshold_ns = threshold;
  c.freshness_window_ns = window;
  return c;
}

TEST(ValidityTest, AllFreshAndAgreeing) {
  const auto v = evaluate_validity({rec(10, 900), rec(20, 900), rec(15, 900), rec(12, 900)},
                                   1000, cfg());
  for (const auto& verdict : v) {
    EXPECT_TRUE(verdict.fresh);
    EXPECT_TRUE(verdict.agrees);
    EXPECT_TRUE(verdict.usable());
  }
}

TEST(ValidityTest, EmptySlotNotFresh) {
  const auto v = evaluate_validity({std::nullopt, rec(0, 900)}, 1000, cfg());
  EXPECT_FALSE(v[0].fresh);
  EXPECT_TRUE(v[1].fresh);
}

TEST(ValidityTest, StaleOffsetExcluded) {
  // Slot 0 last updated at t=0; window 1000; now 2000 -> stale.
  const auto v = evaluate_validity({rec(10, 0), rec(10, 1900), rec(12, 1900), rec(11, 1900)},
                                   2000, cfg());
  EXPECT_FALSE(v[0].fresh);
  EXPECT_TRUE(v[1].fresh);
}

TEST(ValidityTest, OutlierVotedOut) {
  const auto v = evaluate_validity(
      {rec(10, 900), rec(-24'000, 900), rec(15, 900), rec(12, 900)}, 1000, cfg());
  EXPECT_TRUE(v[0].usable());
  EXPECT_FALSE(v[1].agrees); // the paper's -24 us attacker
  EXPECT_TRUE(v[1].fresh);
  EXPECT_TRUE(v[2].usable());
  EXPECT_TRUE(v[3].usable());
}

TEST(ValidityTest, BoundaryExactlyAtThresholdAgrees) {
  // Offsets 0, 0, 100 with threshold 100: median is 0, the outlier sits
  // exactly at the threshold -> still agreeing (<=).
  const auto v = evaluate_validity({rec(0, 900), rec(0, 900), rec(100, 900)}, 1000, cfg(100.0));
  EXPECT_TRUE(v[2].agrees);
}

TEST(ValidityTest, TwoFreshClocksCannotVoteEachOtherOut) {
  // With fewer than 3 fresh clocks there is no quorum to declare a GM bad.
  const auto v = evaluate_validity({rec(0, 900), rec(1'000'000, 900)}, 1000, cfg());
  EXPECT_TRUE(v[0].agrees);
  EXPECT_TRUE(v[1].agrees);
}

TEST(ValidityTest, StalePeersDontParticipateInVote) {
  // Slot 1 agrees with slot 0 but is stale; slots 2,3 form the majority.
  const auto v = evaluate_validity(
      {rec(0, 900), rec(0, -500), rec(500, 900), rec(510, 900)}, 1000, cfg(100.0));
  EXPECT_FALSE(v[1].fresh);
  // Fresh set is {0, 500, 510}: median 500 -> slot 0 voted out.
  EXPECT_FALSE(v[0].agrees);
  EXPECT_TRUE(v[2].agrees);
  EXPECT_TRUE(v[3].agrees);
}

TEST(ValidityTest, TwoAttackersVsTwoHonestNobodyExcluded) {
  // The identical-kernel attack scenario: 2 honest + 2 malicious (both at
  // -24 us). Median voting cannot tell the camps apart -> the FTA's
  // masking assumption (f=1) is genuinely violated, as in Fig. 3a.
  const auto v = evaluate_validity(
      {rec(-24'000, 900), rec(5, 900), rec(-24'010, 900), rec(10, 900)}, 1000, cfg(1000.0));
  int usable = 0;
  for (const auto& verdict : v) usable += verdict.usable() ? 1 : 0;
  // Each camp's members see a median straddling both camps; with threshold
  // 1 us nobody is within it -> everyone is voted out, or symmetric cases
  // keep everyone. Either way honest GMs cannot form a clean majority.
  EXPECT_TRUE(usable == 0 || usable == 4) << "usable=" << usable;
}

} // namespace
} // namespace tsn::core
