#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/ft_shmem.hpp"
#include "core/seqlock.hpp"

namespace tsn::core {
namespace {

struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(SeqLockTest, StoresAndLoads) {
  SeqLock<Pair> lock;
  lock.store({1, 2});
  const Pair p = lock.load();
  EXPECT_EQ(p.a, 1u);
  EXPECT_EQ(p.b, 2u);
  EXPECT_EQ(lock.version(), 1u);
}

TEST(SeqLockTest, DefaultConstructedReadsZero) {
  SeqLock<Pair> lock;
  const Pair p = lock.load();
  EXPECT_EQ(p.a, 0u);
  EXPECT_EQ(lock.version(), 0u);
}

TEST(SeqLockTest, NoTornReadsUnderConcurrency) {
  // Writer stores pairs with b == 2*a; any reader observing b != 2*a saw a
  // torn record.
  SeqLock<Pair> lock(Pair{0, 0});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Pair p = lock.load();
        if (p.b != 2 * p.a) torn.fetch_add(1);
      }
    });
  }
  for (std::uint64_t i = 1; i <= 200'000; ++i) {
    lock.store({i, 2 * i});
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(lock.version(), 200'000u);
}

TEST(FtShmemTest, RejectsBadDomainCounts) {
  EXPECT_THROW(FtShmem(0), std::invalid_argument);
  EXPECT_THROW(FtShmem(kMaxDomains + 1), std::invalid_argument);
}

TEST(FtShmemTest, OffsetsStartEmpty) {
  FtShmem shm(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(shm.load_offset(i).has_value());
  EXPECT_THROW(shm.load_offset(4), std::out_of_range);
}

TEST(FtShmemTest, StoreBumpsSampleCount) {
  FtShmem shm(4);
  GmOffsetRecord r;
  r.offset_ns = 5.0;
  shm.store_offset(2, r);
  shm.store_offset(2, r);
  const auto loaded = shm.load_offset(2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sample_count, 2u);
  EXPECT_DOUBLE_EQ(loaded->offset_ns, 5.0);
}

TEST(FtShmemTest, GateFirstCallerWins) {
  FtShmem shm(4);
  // Unset gate: first arrival wins.
  EXPECT_TRUE(shm.try_acquire_gate(1000, 125));
  EXPECT_EQ(shm.adjust_last(), 1000);
  // Within the same interval: everyone else loses.
  EXPECT_FALSE(shm.try_acquire_gate(1050, 125));
  EXPECT_FALSE(shm.try_acquire_gate(1124, 125));
  // Next interval boundary: gate opens again.
  EXPECT_TRUE(shm.try_acquire_gate(1125, 125));
  EXPECT_EQ(shm.adjust_last(), 1125);
}

TEST(FtShmemTest, GateExactBoundaryIsInclusive) {
  FtShmem shm(4);
  shm.set_adjust_last(0);
  EXPECT_FALSE(shm.try_acquire_gate(124, 125));
  EXPECT_TRUE(shm.try_acquire_gate(125, 125)); // adjust_last + S <= now
}

TEST(FtShmemTest, GateUnderThreadContentionAdmitsExactlyOnePerInterval) {
  FtShmem shm(4);
  shm.set_adjust_last(0);
  constexpr int kThreads = 4;
  constexpr std::int64_t kIntervals = 2000;
  std::atomic<std::int64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::int64_t i = 1; i <= kIntervals; ++i) {
        if (shm.try_acquire_gate(i * 125, 125)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every interval admits exactly one winner; threads race over the same
  // series of gate times.
  EXPECT_EQ(wins.load(), kIntervals);
}

TEST(FtShmemTest, ValidityFlags) {
  FtShmem shm(3);
  EXPECT_TRUE(shm.gm_valid(0));
  shm.set_gm_valid(0, false);
  EXPECT_FALSE(shm.gm_valid(0));
  EXPECT_TRUE(shm.gm_valid(1));
  EXPECT_THROW(shm.set_gm_valid(3, true), std::out_of_range);
}

TEST(FtShmemTest, ServoStateSharedAndPhase) {
  FtShmem shm(4);
  EXPECT_DOUBLE_EQ(shm.servo_integral(), 0.0);
  shm.store_servo_integral(-123.5);
  EXPECT_DOUBLE_EQ(shm.servo_integral(), -123.5);
  EXPECT_EQ(shm.phase(), SyncPhase::kStartup);
  shm.set_phase(SyncPhase::kFta);
  EXPECT_EQ(shm.phase(), SyncPhase::kFta);
}

TEST(FtShmemTest, ConcurrentSlotWritersDoNotInterfere) {
  FtShmem shm(4);
  std::vector<std::thread> writers;
  for (std::size_t slot = 0; slot < 4; ++slot) {
    writers.emplace_back([&shm, slot] {
      for (int i = 1; i <= 50'000; ++i) {
        GmOffsetRecord r;
        r.offset_ns = static_cast<double>(slot) * 1000.0 + 1.0;
        r.local_rx_ts = i;
        shm.store_offset(slot, r);
      }
    });
  }
  for (auto& w : writers) w.join();
  for (std::size_t slot = 0; slot < 4; ++slot) {
    const auto r = shm.load_offset(slot);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(r->offset_ns, static_cast<double>(slot) * 1000.0 + 1.0);
    EXPECT_EQ(r->sample_count, 50'000u);
    EXPECT_EQ(r->local_rx_ts, 50'000);
  }
}

} // namespace
} // namespace tsn::core
