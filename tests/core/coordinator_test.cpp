#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace tsn::core {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet_phc(double drift_ppm = 0.0) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

CoordinatorConfig default_cfg() {
  CoordinatorConfig cfg;
  cfg.domains = {1, 2, 3, 4};
  cfg.initial_domain = 1;
  cfg.startup_consecutive = 3;
  cfg.startup_threshold_ns = 2000.0;
  return cfg;
}

gptp::MasterOffsetSample sample(std::uint8_t domain, double offset, std::int64_t rx_ts) {
  gptp::MasterOffsetSample s;
  s.domain = domain;
  s.offset_ns = offset;
  s.local_rx_ts = rx_ts;
  s.rate_ratio = 1.0;
  return s;
}

struct Fixture {
  Simulation sim{5};
  time::PhcClock phc;
  FtShmem shmem;
  MultiDomainCoordinator coord;

  explicit Fixture(CoordinatorConfig cfg = default_cfg())
      : phc(sim, quiet_phc(), "phc"), shmem(cfg.domains.size()), coord(sim, phc, shmem, cfg, "c") {}

  /// Feed one interval's worth of samples at sim time `t`. Domains are
  /// staggered by 2 ms like real Sync arrivals (all-simultaneous delivery
  /// would make a gate miss waste the whole interval).
  void feed_all(std::int64_t t, std::vector<double> offsets) {
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      sim.at(SimTime(t + static_cast<std::int64_t>(i) * 2'000'000),
             [this, i, v = offsets[i]] {
               coord.on_offset(sample(static_cast<std::uint8_t>(i + 1), v, phc.read()));
             });
    }
  }
};

TEST(CoordinatorTest, RejectsBadConfigs) {
  Simulation sim;
  time::PhcClock phc(sim, quiet_phc(), "phc");
  FtShmem shmem(4);
  CoordinatorConfig cfg = default_cfg();
  cfg.domains = {1, 2};
  EXPECT_THROW(MultiDomainCoordinator(sim, phc, shmem, cfg, "x"), std::invalid_argument);
  cfg = default_cfg();
  cfg.domains = {1, 1, 2, 3};
  EXPECT_THROW(MultiDomainCoordinator(sim, phc, shmem, cfg, "x"), std::invalid_argument);
  cfg = default_cfg();
  cfg.initial_domain = 9;
  EXPECT_THROW(MultiDomainCoordinator(sim, phc, shmem, cfg, "x"), std::invalid_argument);
}

TEST(CoordinatorTest, StartsInStartupPhaseAndTransitions) {
  Fixture f;
  EXPECT_EQ(f.coord.phase(), SyncPhase::kStartup);
  int phase_changes = 0;
  f.coord.on_phase_change = [&](SyncPhase p) {
    EXPECT_EQ(p, SyncPhase::kFta);
    ++phase_changes;
  };
  for (int i = 1; i <= 5; ++i) {
    f.feed_all(i * 125_ms, {10.0, 20.0, -15.0, 5.0});
  }
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(f.coord.phase(), SyncPhase::kFta);
  EXPECT_EQ(phase_changes, 1);
  EXPECT_GE(f.coord.stats().startup_adjustments, 3u);
}

TEST(CoordinatorTest, NoTransitionWhileOffsetsLarge) {
  Fixture f;
  for (int i = 1; i <= 10; ++i) {
    f.feed_all(i * 125_ms, {10.0, 50'000.0, -15.0, 5.0}); // domain 2 far off
  }
  f.sim.run_until(SimTime(3_s));
  EXPECT_EQ(f.coord.phase(), SyncPhase::kStartup);
}

TEST(CoordinatorTest, StartupStreakResetsOnBadSample) {
  CoordinatorConfig cfg = default_cfg();
  cfg.startup_consecutive = 4;
  Fixture f(cfg);
  f.feed_all(1 * 125_ms, {0, 0, 0, 0});
  f.feed_all(2 * 125_ms, {0, 0, 0, 0});
  f.feed_all(3 * 125_ms, {0, 90'000.0, 0, 0}); // streak broken
  f.feed_all(4 * 125_ms, {0, 0, 0, 0});
  f.feed_all(5 * 125_ms, {0, 0, 0, 0});
  f.feed_all(6 * 125_ms, {0, 0, 0, 0});
  f.sim.run_until(SimTime(900_ms));
  EXPECT_EQ(f.coord.phase(), SyncPhase::kStartup);
  // The bad value stays visible one extra interval (it is judged when the
  // *next* initial-domain sample arrives), so two more good rounds needed.
  f.feed_all(7 * 125_ms, {0, 0, 0, 0});
  f.feed_all(8 * 125_ms, {0, 0, 0, 0});
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(f.coord.phase(), SyncPhase::kFta);
}

TEST(CoordinatorTest, SkipStartupGoesStraightToFta) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  Fixture f(cfg);
  EXPECT_EQ(f.coord.phase(), SyncPhase::kFta);
}

TEST(CoordinatorTest, OnlyOneAggregationPerInterval) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  cfg.validity.freshness_window_ns = 2_s; // feeds below are 1 s apart
  Fixture f(cfg);
  // Warm-up: the very first gate winner sees only its own slot filled.
  f.feed_all(500_ms, {1.0, 2.0, 3.0, 4.0});
  f.feed_all(1_s, {1.0, 2.0, 3.0, 4.0});
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(f.coord.stats().aggregations, 1u);
  // Next interval: exactly one more aggregation despite four deliveries.
  f.feed_all(2_s, {1.0, 2.0, 3.0, 4.0});
  f.sim.run_until(SimTime(3_s));
  EXPECT_EQ(f.coord.stats().aggregations, 2u);
}

TEST(CoordinatorTest, AggregateIsFtaOfUsableOffsets) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  Fixture f(cfg);
  double aggregated = 0.0;
  int used = 0;
  f.coord.on_aggregate = [&](double off, int n) {
    aggregated = off;
    used = n;
  };
  f.feed_all(500_ms, {10.0, -5.0, 1000.0, 20.0});
  f.feed_all(1_s, {10.0, -5.0, 1000.0, 20.0});
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(used, 4);
  EXPECT_DOUBLE_EQ(aggregated, 15.0); // (10+20)/2, extremes trimmed
}

TEST(CoordinatorTest, ByzantineOffsetMaskedInAggregate) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  Fixture f(cfg);
  double aggregated = 1e18;
  f.coord.on_aggregate = [&](double off, int) { aggregated = off; };
  f.feed_all(500_ms, {-24'000.0, 3.0, 5.0, 7.0}); // the paper's attacker
  f.feed_all(1_s, {-24'000.0, 3.0, 5.0, 7.0});
  f.sim.run_until(SimTime(2_s));
  EXPECT_GE(aggregated, 3.0);
  EXPECT_LE(aggregated, 7.0);
}

TEST(CoordinatorTest, StaleDomainExcludedAndFlagged) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  cfg.validity.freshness_window_ns = 400_ms;
  Fixture f(cfg);
  std::vector<std::pair<std::size_t, bool>> validity_events;
  f.coord.on_validity_change = [&](std::size_t slot, bool valid) {
    validity_events.emplace_back(slot, valid);
  };
  // Domain 1 (slot 0) delivers once, then goes silent (fail-silent GM).
  f.feed_all(1_s, {1.0, 2.0, 3.0, 4.0});
  for (int i = 1; i <= 20; ++i) {
    f.sim.at(SimTime(1_s + i * 125_ms), [&f] {
      const std::int64_t rx = f.phc.read();
      for (std::uint8_t d = 2; d <= 4; ++d) f.coord.on_offset(sample(d, 2.0, rx));
    });
  }
  f.sim.run_until(SimTime(5_s));
  EXPECT_GT(f.coord.stats().gms_excluded_stale, 0u);
  EXPECT_FALSE(f.shmem.gm_valid(0));
  // Slot 0 must have been flagged invalid at some point (warm-up produces
  // transient invalid flags for the not-yet-filled slots first).
  const bool slot0_invalidated =
      std::any_of(validity_events.begin(), validity_events.end(),
                  [](const auto& e) { return e.first == 0 && !e.second; });
  EXPECT_TRUE(slot0_invalidated);
  // Three remaining clocks still aggregate (f=1 needs >= 3).
  EXPECT_GT(f.coord.stats().aggregations, 10u);
}

TEST(CoordinatorTest, NoQuorumHoldsFrequency) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  cfg.validity.freshness_window_ns = 400_ms;
  Fixture f(cfg);
  // Only two domains alive: FTA with f=1 needs 3 -> skip, free-run.
  for (int i = 1; i <= 10; ++i) {
    f.sim.at(SimTime(i * 125_ms), [&f] {
      const std::int64_t rx = f.phc.read();
      f.coord.on_offset(sample(1, 1.0, rx));
      f.coord.on_offset(sample(2, 2.0, rx));
    });
  }
  f.sim.run_until(SimTime(3_s));
  EXPECT_EQ(f.coord.stats().aggregations, 0u);
  EXPECT_GT(f.coord.stats().aggregation_skipped_no_quorum, 5u);
  EXPECT_DOUBLE_EQ(f.phc.freq_adj_ppb(), 0.0);
}

TEST(CoordinatorTest, ServoDisciplinesPhcTowardAggregate) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  Fixture f(cfg);
  // Constant positive offset: the servo must slow the clock (negative adj).
  for (int i = 1; i <= 40; ++i) {
    f.feed_all(i * 125_ms, {800.0, 800.0, 800.0, 800.0});
  }
  f.sim.run_until(SimTime(6_s));
  EXPECT_GT(f.coord.stats().aggregations, 30u);
  EXPECT_LT(f.phc.freq_adj_ppb(), -100.0);
}

TEST(CoordinatorTest, ServoIntegralMirroredToShmem) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  Fixture f(cfg);
  for (int i = 1; i <= 10; ++i) {
    f.feed_all(i * 125_ms, {500.0, 500.0, 500.0, 500.0});
  }
  f.sim.run_until(SimTime(2_s));
  EXPECT_NE(f.shmem.servo_integral(), 0.0);
}

TEST(CoordinatorTest, WarmStandbyInheritsServoState) {
  Simulation sim{9};
  time::PhcClock phc(sim, quiet_phc(), "phc");
  FtShmem shmem(4);
  shmem.store_servo_integral(-4242.0);
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  MultiDomainCoordinator coord(sim, phc, shmem, cfg, "standby");
  // With zero offsets, the programmed frequency converges to minus the
  // inherited integral (the learned oscillator drift), not to zero.
  for (int i = 1; i <= 4; ++i) {
    sim.at(SimTime(i * 125_ms), [&] {
      const std::int64_t rx = phc.read();
      for (std::uint8_t d = 1; d <= 4; ++d) coord.on_offset(sample(d, 0.0, rx));
    });
  }
  sim.run_until(SimTime(2_s));
  EXPECT_NEAR(phc.freq_adj_ppb(), 4242.0, 1.0);
}

TEST(CoordinatorTest, NoQuorumStillConsumesTheGateAndTraces) {
  // A no-quorum interval must advance adjust_last exactly like a
  // successful aggregation: the gate was won, the interval is spent.
  // Otherwise every subsequent delivery in the interval would re-run the
  // (pointless) aggregation attempt.
  Simulation sim{5};
  time::PhcClock phc(sim, quiet_phc(), "phc");
  FtShmem shmem(4);
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  cfg.validity.freshness_window_ns = 400_ms;
  obs::TraceRing ring(64);
  MultiDomainCoordinator coord(sim, phc, shmem, cfg, "c", obs::ObsContext{nullptr, &ring});

  std::int64_t first_gate = -1;
  sim.at(SimTime(1_s), [&] {
    const std::int64_t rx = phc.read();
    coord.on_offset(sample(1, 1.0, rx)); // wins the gate, 1 usable -> skip
    first_gate = shmem.adjust_last();
    coord.on_offset(sample(2, 2.0, rx)); // same interval: gate closed
  });
  sim.run_until(SimTime(1'100_ms));
  EXPECT_EQ(coord.stats().aggregations, 0u);
  EXPECT_EQ(coord.stats().aggregation_skipped_no_quorum, 1u);
  EXPECT_GT(first_gate, 0);
  EXPECT_EQ(shmem.adjust_last(), first_gate);

  // One sync interval later the gate opens again and skips again.
  sim.at(SimTime(1_s + 126_ms), [&] { coord.on_offset(sample(1, 1.0, phc.read())); });
  sim.run_until(SimTime(1'300_ms));
  EXPECT_EQ(coord.stats().aggregation_skipped_no_quorum, 2u);
  EXPECT_EQ(shmem.adjust_last() - first_gate, 126_ms); // advanced to `now`

  // The trace ring recorded both skipped intervals with the usable count.
  std::vector<std::uint32_t> no_quorum_counts;
  for (const auto& r : ring.snapshot()) {
    if (r.kind == obs::TraceKind::kNoQuorum) no_quorum_counts.push_back(r.a);
  }
  EXPECT_EQ(no_quorum_counts, (std::vector<std::uint32_t>{1, 2}));
}

TEST(CoordinatorTest, IgnoresUnknownDomains) {
  CoordinatorConfig cfg = default_cfg();
  cfg.skip_startup = true;
  Fixture f(cfg);
  f.sim.at(SimTime(1_s), [&f] { f.coord.on_offset(sample(99, 1.0, f.phc.read())); });
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(f.coord.stats().samples_stored, 0u);
}

} // namespace
} // namespace tsn::core
