#include "core/fta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace tsn::core {
namespace {

TEST(FtaTest, FourValuesDropMinMaxAverageMiddle) {
  // The paper's configuration: N = 4, f = 1.
  const auto r = fault_tolerant_average({5.0, -3.0, 100.0, 7.0}, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 6.0); // (5 + 7) / 2
}

TEST(FtaTest, FZeroIsPlainMean) {
  const auto r = fault_tolerant_average({1.0, 2.0, 3.0}, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 2.0);
}

TEST(FtaTest, TooFewValuesReturnsNullopt) {
  EXPECT_FALSE(fault_tolerant_average({1.0, 2.0}, 1).has_value());
  EXPECT_FALSE(fault_tolerant_average({}, 0).has_value());
  EXPECT_FALSE(fault_tolerant_average({1.0}, 1).has_value());
}

TEST(FtaTest, ExactlyTwoFPlusOneIsMedian) {
  const auto r = fault_tolerant_average({10.0, -100.0, 3.0}, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 3.0);
}

TEST(FtaTest, NegativeFThrows) {
  EXPECT_THROW(fault_tolerant_average({1.0, 2.0, 3.0}, -1), std::invalid_argument);
}

TEST(FtaTest, ByzantineValueMaskedRegardlessOfMagnitude) {
  for (double evil : {1e18, -1e18, 1e6, -42.0}) {
    const auto r = fault_tolerant_average({1.0, 2.0, 3.0, evil}, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(*r, 1.0);
    EXPECT_LE(*r, 3.0);
  }
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(*median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(*median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_FALSE(median({}).has_value());
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(*mean({1.0, 2.0, 6.0}), 3.0);
  EXPECT_FALSE(mean({}).has_value());
}

TEST(AggregateTest, DispatchesMethods) {
  std::vector<double> v{1.0, 2.0, 3.0, 1000.0};
  EXPECT_DOUBLE_EQ(*aggregate(v, AggregationMethod::kFta, 1), 2.5);
  EXPECT_DOUBLE_EQ(*aggregate(v, AggregationMethod::kMedian, 1), 2.5);
  EXPECT_DOUBLE_EQ(*aggregate(v, AggregationMethod::kMean, 1), 251.5);
}

TEST(FtaBoundTest, PaperMultiplier) {
  EXPECT_DOUBLE_EQ(fta_precision_multiplier(4, 1), 2.0); // the paper's u(N,f)
  EXPECT_DOUBLE_EQ(fta_precision_multiplier(7, 2), 3.0);
  EXPECT_DOUBLE_EQ(fta_precision_multiplier(4, 0), 1.0);
  EXPECT_THROW(fta_precision_multiplier(3, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property-based checks over random inputs.

class FtaProperty : public ::testing::TestWithParam<int> {};

TEST_P(FtaProperty, ResultWithinRangeOfSurvivors) {
  const int f = GetParam();
  util::RngStream rng(99 + f, "fta-prop");
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2 * f + 1, 12));
    std::vector<double> v;
    for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-1e6, 1e6));
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    const auto r = fault_tolerant_average(v, f);
    ASSERT_TRUE(r.has_value());
    // The FTA lies within the range of the surviving (trimmed) values.
    EXPECT_GE(*r, sorted[f] - 1e-9);
    EXPECT_LE(*r, sorted[n - 1 - f] + 1e-9);
  }
}

TEST_P(FtaProperty, TranslationInvariance) {
  const int f = GetParam();
  util::RngStream rng(7 + f, "fta-shift");
  for (int trial = 0; trial < 100; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2 * f + 1, 10));
    std::vector<double> v, shifted;
    const double shift = rng.uniform(-1e5, 1e5);
    for (int i = 0; i < n; ++i) {
      const double x = rng.uniform(-1e4, 1e4);
      v.push_back(x);
      shifted.push_back(x + shift);
    }
    EXPECT_NEAR(*fault_tolerant_average(shifted, f), *fault_tolerant_average(v, f) + shift, 1e-6);
  }
}

TEST_P(FtaProperty, PermutationInvariance) {
  const int f = GetParam();
  util::RngStream rng(13 + f, "fta-perm");
  for (int trial = 0; trial < 100; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2 * f + 1, 10));
    std::vector<double> v;
    for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-1e6, 1e6));
    auto shuffled = v;
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    EXPECT_DOUBLE_EQ(*fault_tolerant_average(v, f), *fault_tolerant_average(shuffled, f));
  }
}

TEST_P(FtaProperty, ByzantineMaskingWithEnoughClocks) {
  // With n >= 3f+1 and f adversarial values, the result stays within the
  // range of the honest values.
  const int f = GetParam();
  if (f == 0) return;
  util::RngStream rng(23 + f, "fta-byz");
  for (int trial = 0; trial < 200; ++trial) {
    const int honest_n = static_cast<int>(rng.uniform_int(2 * f + 1, 10));
    std::vector<double> honest;
    for (int i = 0; i < honest_n; ++i) honest.push_back(rng.uniform(-1000.0, 1000.0));
    std::vector<double> all = honest;
    for (int i = 0; i < f; ++i) all.push_back(rng.uniform(-1e18, 1e18));
    const auto r = fault_tolerant_average(all, f);
    ASSERT_TRUE(r.has_value());
    const double lo = *std::min_element(honest.begin(), honest.end());
    const double hi = *std::max_element(honest.begin(), honest.end());
    EXPECT_GE(*r, lo - 1e-9);
    EXPECT_LE(*r, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultCounts, FtaProperty, ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// The nth_element-based implementation must agree with the textbook
// sort-then-trim formulation.

double reference_sorted_fta(std::vector<double> values, int f) {
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  const std::size_t lo = static_cast<std::size_t>(f);
  const std::size_t hi = values.size() - static_cast<std::size_t>(f);
  for (std::size_t i = lo; i < hi; ++i) sum += values[i];
  return sum / static_cast<double>(hi - lo);
}

TEST(FtaTest, MatchesSortedReferenceOnRandomVectors) {
  util::RngStream rng(4242, "fta-ref");
  for (int f = 0; f <= 3; ++f) {
    for (int trial = 0; trial < 300; ++trial) {
      const int n = static_cast<int>(rng.uniform_int(2 * f + 1, 64));
      std::vector<double> v;
      for (int i = 0; i < n; ++i) {
        // Mix magnitudes and force duplicates in about a third of draws.
        if (!v.empty() && rng.uniform01() < 0.33) {
          v.push_back(v[static_cast<std::size_t>(rng.uniform_int(0, n)) % v.size()]);
        } else {
          v.push_back(rng.uniform(-1e9, 1e9));
        }
      }
      const auto got = fault_tolerant_average(v, f);
      ASSERT_TRUE(got.has_value());
      const double want = reference_sorted_fta(v, f);
      // The reference's left-to-right sum carries O(n·eps·max|x|) rounding
      // error; the compensated implementation is at least as accurate.
      EXPECT_NEAR(*got, want, static_cast<double>(n) * 1e9 * 1e-15)
          << "f=" << f << " n=" << n;
    }
  }
}

TEST(FtaTest, MatchesSortedReferenceWithInfinities) {
  // A single +inf or -inf is trimmed away exactly like the sorted version
  // would trim it.
  EXPECT_DOUBLE_EQ(*fault_tolerant_average(
                       {std::numeric_limits<double>::infinity(), 1.0, 2.0, 3.0}, 1),
                   2.5);
  EXPECT_DOUBLE_EQ(*fault_tolerant_average(
                       {-std::numeric_limits<double>::infinity(), 1.0, 2.0, 3.0}, 1),
                   1.5);
  EXPECT_DOUBLE_EQ(*fault_tolerant_average({-std::numeric_limits<double>::infinity(), 1.0, 2.0,
                                            std::numeric_limits<double>::infinity()},
                                           1),
                   1.5);
  // An infinity that survives the trim propagates, as with a full sort.
  const auto surviving = fault_tolerant_average(
      {std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(), 1.0,
       2.0},
      1);
  ASSERT_TRUE(surviving.has_value());
  EXPECT_TRUE(std::isinf(*surviving));
  // Duplicated infinities on both sides of the trim.
  const auto both = fault_tolerant_average(
      {std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
       -std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(), 5.0},
      2);
  ASSERT_TRUE(both.has_value());
  EXPECT_DOUBLE_EQ(*both, 5.0);
}

TEST(MedianTest, MatchesSortedReferenceOnRandomVectors) {
  util::RngStream rng(777, "med-ref");
  for (int trial = 0; trial < 300; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 65));
    std::vector<double> v;
    for (int i = 0; i < n; ++i) {
      v.push_back(rng.uniform01() < 0.3 ? std::floor(rng.uniform(-5.0, 5.0))
                                        : rng.uniform(-1e9, 1e9));
    }
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    const double want = (n % 2 == 1)
                            ? sorted[static_cast<std::size_t>(n) / 2]
                            : (sorted[static_cast<std::size_t>(n) / 2 - 1] +
                               sorted[static_cast<std::size_t>(n) / 2]) /
                                  2.0;
    EXPECT_DOUBLE_EQ(*median(v), want) << "n=" << n;
  }
}

} // namespace
} // namespace tsn::core
