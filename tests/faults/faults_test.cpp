#include <gtest/gtest.h>

#include "faults/attacker.hpp"
#include "faults/injector.hpp"
#include "faults/kernel_vuln.hpp"
#include "hv/ecd.hpp"

namespace tsn::faults {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

TEST(KernelVulnDbTest, DefaultsCoverCve201818955) {
  const auto db = KernelVulnDb::with_defaults();
  EXPECT_TRUE(db.vulnerable("4.19.1", kCve2018_18955));
  EXPECT_TRUE(db.vulnerable("4.15.0", kCve2018_18955));
  EXPECT_FALSE(db.vulnerable("4.19.2", kCve2018_18955));
  EXPECT_FALSE(db.vulnerable("5.10.0", kCve2018_18955));
  EXPECT_FALSE(db.vulnerable("4.19.1", "CVE-0000-0000"));
}

TEST(KernelVulnDbTest, AddExtendsAffectedSet) {
  KernelVulnDb db;
  EXPECT_FALSE(db.vulnerable("6.1.0", "CVE-X"));
  db.add("CVE-X", "6.1.0");
  EXPECT_TRUE(db.vulnerable("6.1.0", "CVE-X"));
}

time::PhcModel quiet() {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = 0.0;
  m.oscillator.wander_sigma_ppm = 0.0;
  return m;
}

hv::ClockSyncVmConfig vm_cfg(const std::string& name, std::uint64_t mac,
                             const std::string& kernel, bool gm) {
  hv::ClockSyncVmConfig cfg;
  cfg.name = name;
  cfg.mac = net::MacAddress::from_u64(mac);
  cfg.phc = quiet();
  cfg.domains = {1, 2, 3, 4};
  cfg.kernel_version = kernel;
  if (gm) cfg.gm_domain = 1;
  return cfg;
}

struct HostFixture {
  Simulation sim{7};
  hv::Ecd ecd;

  HostFixture() : ecd(sim, {"ecd", quiet(), {}}) {
    ecd.add_clock_sync_vm(vm_cfg("gm-vuln", 0xA1, "4.19.1", true));
    ecd.add_clock_sync_vm(vm_cfg("standby-safe", 0xA2, "5.10.0", false));
    ecd.start();
  }
};

TEST(AttackerTest, ExploitSucceedsOnVulnerableKernel) {
  HostFixture f;
  Attacker attacker(f.sim, KernelVulnDb::with_defaults());
  attacker.add_step({1_s, &f.ecd.vm(0)});
  int attempts = 0;
  attacker.on_attempt = [&](const AttackResult& r) {
    ++attempts;
    EXPECT_TRUE(r.success);
  };
  attacker.start();
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(attacker.successful_exploits(), 1u);
  EXPECT_TRUE(f.ecd.vm(0).compromised());
}

TEST(AttackerTest, ExploitFailsOnPatchedKernel) {
  HostFixture f;
  Attacker attacker(f.sim, KernelVulnDb::with_defaults());
  attacker.add_step({1_s, &f.ecd.vm(1)});
  attacker.start();
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(attacker.successful_exploits(), 0u);
  EXPECT_FALSE(f.ecd.vm(1).compromised());
}

TEST(AttackerTest, ExploitFailsOnDeadVm) {
  HostFixture f;
  f.sim.at(SimTime(500'000'000), [&] { f.ecd.vm(0).shutdown(); });
  Attacker attacker(f.sim, KernelVulnDb::with_defaults());
  attacker.add_step({1_s, &f.ecd.vm(0)});
  attacker.start();
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(attacker.successful_exploits(), 0u);
}

TEST(InjectorTest, NeverKillsBothVmsOfANode) {
  Simulation sim{3};
  hv::Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0xB1, "5.4.0", true));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0xB2, "5.4.0", false));
  ecd.start();

  InjectorConfig cfg;
  cfg.gm_kill_period_ns = 2_s;
  cfg.gm_downtime_ns = 10_s; // long downtime forces overlap attempts
  cfg.standby_kills_per_hour = 3600.0;
  cfg.standby_min_gap_ns = 1_s;
  cfg.standby_downtime_ns = 10_s;
  FaultInjector injector(sim, {&ecd}, cfg);
  injector.start();
  sim.run_until(SimTime(60_s));

  EXPECT_GT(injector.stats().total_kills, 3u);
  EXPECT_GT(injector.stats().skipped_fault_hypothesis, 0u);
  // Replay the event log: at most one VM of the node down at any time.
  int down = 0;
  for (const auto& ev : injector.events()) {
    down += ev.is_reboot ? -1 : 1;
    EXPECT_GE(down, 0);
    EXPECT_LE(down, 1);
  }
}

TEST(InjectorTest, SparedVmIsNeverKilled) {
  Simulation sim{3};
  hv::Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0xB1, "5.4.0", true));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0xB2, "5.4.0", false));
  ecd.start();
  InjectorConfig cfg;
  cfg.gm_kill_period_ns = 500_ms;
  cfg.gm_downtime_ns = 100_ms;
  cfg.standby_kills_per_hour = 3600.0;
  cfg.standby_min_gap_ns = 500_ms;
  cfg.standby_downtime_ns = 100_ms;
  FaultInjector injector(sim, {&ecd}, cfg);
  injector.spare(&ecd.vm(1));
  injector.start();
  sim.run_until(SimTime(30_s));
  for (const auto& ev : injector.events()) EXPECT_NE(ev.vm, "vm1");
  EXPECT_GT(injector.stats().gm_kills, 10u);
  EXPECT_EQ(injector.stats().standby_kills, 0u);
}

TEST(InjectorTest, GmKillsRotateAcrossEcds) {
  Simulation sim{3};
  std::vector<std::unique_ptr<hv::Ecd>> ecds;
  std::vector<hv::Ecd*> ptrs;
  for (int x = 0; x < 3; ++x) {
    ecds.push_back(std::make_unique<hv::Ecd>(sim, hv::EcdConfig{"e" + std::to_string(x), quiet(), {}}));
    ecds.back()->add_clock_sync_vm(
        vm_cfg("gm" + std::to_string(x), 0xC0 + x, "5.4.0", true));
    ecds.back()->add_clock_sync_vm(
        vm_cfg("sb" + std::to_string(x), 0xD0 + x, "5.4.0", false));
    ecds.back()->start();
    ptrs.push_back(ecds.back().get());
  }
  InjectorConfig cfg;
  cfg.gm_kill_period_ns = 1_s;
  cfg.gm_downtime_ns = 500_ms;
  cfg.standby_kills_per_hour = 0.0001; // effectively off
  FaultInjector injector(sim, ptrs, cfg);
  injector.start();
  sim.run_until(SimTime(6_s + 500_ms));
  // 6 GM kill slots over 3 ECDs: each GM killed exactly twice.
  std::map<std::string, int> kills;
  for (const auto& ev : injector.events()) {
    if (!ev.is_reboot) ++kills[ev.vm];
  }
  EXPECT_EQ(kills.size(), 3u);
  for (const auto& [vm, n] : kills) EXPECT_EQ(n, 2) << vm;
}

TEST(InjectorTest, RebootPastRunEndStaysPendingInAccounting) {
  // Regression: a reboot scheduled beyond the end of the scenario used to
  // vanish silently -- total_kills drifted away from reboots and the
  // conservation identity could never hold at finalize time.
  Simulation sim{3};
  hv::Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0xB1, "5.4.0", true));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0xB2, "5.4.0", false));
  ecd.start();

  FaultInjector injector(sim, {&ecd}, InjectorConfig{});
  ReplaySchedule schedule;
  schedule.faults.push_back({1_s, 0, 0, 10_s}); // reboot would fire at 11s
  injector.run(schedule);
  sim.run_until(SimTime(5_s)); // stop before the reboot

  EXPECT_EQ(injector.stats().total_kills, 1u);
  EXPECT_EQ(injector.stats().reboots, 0u);
  EXPECT_EQ(injector.stats().pending_reboots, 1u);
  EXPECT_FALSE(ecd.vm(0).running());

  // Once the reboot fires, the identity rebalances.
  sim.run_until(SimTime(12_s));
  EXPECT_EQ(injector.stats().reboots, 1u);
  EXPECT_EQ(injector.stats().pending_reboots, 0u);
  EXPECT_EQ(injector.stats().total_kills,
            injector.stats().reboots + injector.stats().pending_reboots);
  EXPECT_TRUE(ecd.vm(0).running());
}

TEST(InjectorTest, RawReplayExecutesDoubleKill) {
  Simulation sim{3};
  hv::Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0xB1, "5.4.0", true));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0xB2, "5.4.0", false));
  ecd.start();

  FaultInjector injector(sim, {&ecd}, InjectorConfig{});
  ReplaySchedule schedule;
  schedule.raw = true;
  schedule.faults.push_back({1_s, 0, 0, 20_s});
  schedule.faults.push_back({2_s, 0, 1, 20_s});
  injector.run(schedule);
  sim.run_until(SimTime(3_s));

  // Raw mode deliberately breaks the fault hypothesis: both kills execute.
  EXPECT_EQ(injector.stats().total_kills, 2u);
  EXPECT_EQ(injector.stats().skipped_fault_hypothesis, 0u);
  EXPECT_FALSE(ecd.vm(0).running());
  EXPECT_FALSE(ecd.vm(1).running());
}

TEST(InjectorTest, NonRawReplayRespectsFaultHypothesis) {
  Simulation sim{3};
  hv::Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0xB1, "5.4.0", true));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0xB2, "5.4.0", false));
  ecd.start();

  FaultInjector injector(sim, {&ecd}, InjectorConfig{});
  ReplaySchedule schedule; // raw defaults to false
  schedule.faults.push_back({1_s, 0, 0, 20_s});
  schedule.faults.push_back({2_s, 0, 1, 20_s}); // peer still down -> skipped
  injector.run(schedule);
  sim.run_until(SimTime(3_s));

  EXPECT_EQ(injector.stats().total_kills, 1u);
  EXPECT_EQ(injector.stats().skipped_fault_hypothesis, 1u);
  EXPECT_FALSE(ecd.vm(0).running());
  EXPECT_TRUE(ecd.vm(1).running());
}

TEST(InjectorTest, ReplayIgnoresSpareList) {
  // A replay must reproduce its recording exactly -- the spare list only
  // shapes randomized schedules.
  Simulation sim{3};
  hv::Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0xB1, "5.4.0", true));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0xB2, "5.4.0", false));
  ecd.start();

  FaultInjector injector(sim, {&ecd}, InjectorConfig{});
  injector.spare(&ecd.vm(0));
  ReplaySchedule schedule;
  schedule.faults.push_back({1_s, 0, 0, 2_s});
  injector.run(schedule);
  sim.run_until(SimTime(2_s));

  EXPECT_EQ(injector.stats().total_kills, 1u);
  ASSERT_FALSE(injector.events().empty());
  EXPECT_EQ(injector.events().front().vm, "vm0");
}

} // namespace
} // namespace tsn::faults
