// Adversarial-schedule library: derivation purity, replay round-trips,
// oracle verdicts, and execution-mode identity (threads / partitions) for
// attack campaigns.
#include "attack/attack.hpp"

#include <gtest/gtest.h>

#include "check/fuzz.hpp"

namespace tsn::attack {
namespace {

constexpr std::int64_t kSec = 1'000'000'000LL;

TEST(AttackDeriveTest, ScheduleIsPureFunctionOfSeedAndIndex) {
  const AttackSchedule a = derive_attacks(9, 4, /*num_ecds=*/5, /*domain_count=*/5,
                                          /*fta_f=*/1, 60 * kSec);
  const AttackSchedule b = derive_attacks(9, 4, 5, 5, 1, 60 * kSec);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());

  // Different indices and different master seeds draw different schedules.
  bool any_diff = false;
  for (std::uint64_t i = 0; i < 8 && !any_diff; ++i) {
    any_diff = derive_attacks(9, 100 + i, 5, 5, 1, 60 * kSec) != a;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AttackDeriveTest, SchedulesAreWellFormed) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    const AttackSchedule s = derive_attacks(3, i, 5, 5, 2, 60 * kSec);
    ASSERT_FALSE(s.empty()) << "case " << i;
    for (const AttackSpec& a : s) {
      EXPECT_LT(a.ecd, 5u) << "case " << i;
      EXPECT_GE(a.start_ns, 5 * kSec) << "case " << i;
      EXPECT_EQ(a.start_ns % 2, 1) << "case " << i << ": off-grid start";
      if (a.expect_excluded) {
        // Only overt, persistent attacks demand eviction.
        EXPECT_EQ(a.duration_ns, 0) << "case " << i;
        EXPECT_GE(std::abs(a.magnitude), 25'000.0) << "case " << i;
      }
    }
  }
}

TEST(AttackDeriveTest, AttacksRideOnAnUnchangedBaseWorld) {
  const check::FuzzCase plain = check::derive_case(9, 2, 45 * kSec, /*with_attacks=*/false);
  const check::FuzzCase armed = check::derive_case(9, 2, 45 * kSec, /*with_attacks=*/true);
  // Same testbed, same fault profile -- the adversarial schedule comes from
  // its own RNG stream and must not perturb the base derivation.
  EXPECT_EQ(plain.scenario.seed, armed.scenario.seed);
  EXPECT_EQ(plain.scenario.num_ecds, armed.scenario.num_ecds);
  EXPECT_EQ(plain.scenario.fta_f, armed.scenario.fta_f);
  EXPECT_TRUE(plain.attacks.empty());
  EXPECT_FALSE(armed.attacks.empty());
}

TEST(AttackReplayTest, RoundTripsLosslessly) {
  check::FuzzCase c = check::derive_case(9, 2, 45 * kSec, /*with_attacks=*/true);
  c.replay.raw = true;
  c.replay.faults.push_back({10 * kSec + 1, 1, 0, 5 * kSec});
  const std::string text = check::replay_to_text(c);
  EXPECT_NE(text.find("attack0="), std::string::npos);

  const check::FuzzCase parsed = check::replay_from_text(text);
  EXPECT_EQ(check::replay_to_text(parsed), text);
  ASSERT_EQ(parsed.attacks.size(), c.attacks.size());
  for (std::size_t i = 0; i < c.attacks.size(); ++i) {
    EXPECT_EQ(parsed.attacks[i], c.attacks[i]) << "attack " << i;
  }
}

TEST(AttackOracleTest, OvertCorrectionFieldAttackIsEvicted) {
  check::FuzzCase c = check::derive_case(11, 1, 40 * kSec);
  // Script a single benign fault so the randomized injector stays out of
  // the picture; the scenario under test is the attack alone.
  c.replay.raw = true;
  c.replay.faults.push_back({30 * kSec + 1, c.scenario.num_ecds - 1, 0, 3 * kSec});

  AttackSpec s;
  s.kind = AttackKind::kCorrectionField;
  s.ecd = 0;
  s.start_ns = 5 * kSec + 1;
  s.duration_ns = 0; // persists to end of run
  s.magnitude = 40'000.0; // 4x the 10 us validity threshold: overt
  s.expect_excluded = true;
  c.attacks.push_back(s);

  const check::CaseResult r = check::run_case(c);
  ASSERT_TRUE(r.brought_up);
  EXPECT_FALSE(r.failed()) << r.summary;
  ASSERT_EQ(r.attack_verdicts.size(), 1u);
  const auto& v = r.attack_verdicts[0];
  ASSERT_TRUE(v.excluded_at_ns.has_value()) << "FTA never dropped the poisoned domain";
  EXPECT_FALSE(v.deadline_missed);
  // Eviction latency: within the oracle deadline of the attack onset.
  EXPECT_GT(*v.excluded_at_ns, v.attack.start_abs_ns);
  EXPECT_LE(*v.excluded_at_ns, v.attack.start_abs_ns + 5 * kSec);
}

TEST(AttackOracleTest, MissedEvictionIsAViolation) {
  check::FuzzCase c = check::derive_case(11, 1, 30 * kSec);
  c.replay.raw = true;
  c.replay.faults.push_back({25 * kSec + 1, c.scenario.num_ecds - 1, 0, 2 * kSec});

  // A covert bias FTA is designed to absorb -- mislabeled as overt. The
  // oracle must notice the promised eviction never happens.
  AttackSpec s;
  s.kind = AttackKind::kCorrectionField;
  s.ecd = 0;
  s.start_ns = 5 * kSec + 1;
  s.duration_ns = 0;
  s.magnitude = 2'000.0; // well inside the 10 us validity threshold
  s.expect_excluded = true;
  c.attacks.push_back(s);

  const check::CaseResult r = check::run_case(c);
  ASSERT_TRUE(r.brought_up);
  ASSERT_EQ(r.attack_verdicts.size(), 1u);
  EXPECT_FALSE(r.attack_verdicts[0].excluded_at_ns.has_value());
  EXPECT_TRUE(r.attack_verdicts[0].deadline_missed);
  bool oracle_fired = false;
  for (const check::Violation& viol : r.violations) {
    oracle_fired |= viol.invariant == "attack-eviction";
  }
  EXPECT_TRUE(oracle_fired) << r.summary;
}

TEST(AttackCampaignTest, SummaryByteIdenticalAcrossThreadCounts) {
  check::CampaignConfig cfg;
  cfg.master_seed = 9;
  cfg.num_cases = 4;
  cfg.duration_ns = 30 * kSec;
  cfg.attacks = true;

  cfg.threads = 1;
  const check::CampaignResult serial = check::run_campaign(cfg);
  cfg.threads = 4;
  const check::CampaignResult parallel = check::run_campaign(cfg);

  EXPECT_EQ(serial.summary_text(), parallel.summary_text());
  ASSERT_EQ(serial.cases.size(), parallel.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].summary, parallel.cases[i].summary) << "case " << i;
    ASSERT_EQ(serial.cases[i].attack_verdicts.size(), parallel.cases[i].attack_verdicts.size())
        << "case " << i;
    for (std::size_t j = 0; j < serial.cases[i].attack_verdicts.size(); ++j) {
      EXPECT_EQ(serial.cases[i].attack_verdicts[j].excluded_at_ns,
                parallel.cases[i].attack_verdicts[j].excluded_at_ns)
          << "case " << i << " attack " << j;
    }
  }
}

TEST(AttackCampaignTest, PartitionCountDoesNotChangeVerdicts) {
  // The partitioned runtime's identity guarantee is partitions >= 1: any
  // shard count executes the same event interleaving byte-identically.
  check::FuzzCase c = check::derive_case(9, 3, 30 * kSec, /*with_attacks=*/true);
  c.scenario.partitions = 1;
  const check::CaseResult one = check::run_case(c);
  c.scenario.partitions = 2;
  const check::CaseResult two = check::run_case(c);

  EXPECT_EQ(one.summary, two.summary);
  ASSERT_EQ(one.attack_verdicts.size(), two.attack_verdicts.size());
  for (std::size_t j = 0; j < one.attack_verdicts.size(); ++j) {
    EXPECT_EQ(one.attack_verdicts[j].excluded_at_ns, two.attack_verdicts[j].excluded_at_ns)
        << "attack " << j;
    EXPECT_EQ(one.attack_verdicts[j].deadline_missed, two.attack_verdicts[j].deadline_missed)
        << "attack " << j;
  }
}

} // namespace
} // namespace tsn::attack
