// The sweep subsystem's two contracts: the pool runs everything it is
// given, and a parallel sweep's merged output is byte-identical to the
// sequential run.
#include "sweep/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "faults/injector.hpp"
#include "sweep/thread_pool.hpp"
#include "util/str.hpp"

namespace tsn::sweep {
namespace {

using namespace tsn::sim::literals;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 4; ++j) {
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPoolTest, WaitIdleOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(SweepRunnerTest, ResultsInSubmissionOrder) {
  experiments::ScenarioConfig base;
  base.seed = 100;
  auto configs = seed_sweep(base, 32);
  SweepRunner runner({.threads = 4});
  const auto results = runner.run(
      configs, [](const experiments::ScenarioConfig& cfg, std::size_t index) {
        return std::make_pair(index, cfg.seed);
      });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].first, i);
    EXPECT_EQ(results[i].second, 100 + i);
  }
}

TEST(SweepRunnerTest, ReplicaExceptionIsRethrown) {
  experiments::ScenarioConfig base;
  auto configs = seed_sweep(base, 8);
  SweepRunner runner({.threads = 4});
  EXPECT_THROW(
      runner.run(configs,
                 [](const experiments::ScenarioConfig& cfg, std::size_t) -> int {
                   if (cfg.seed == 4) throw std::runtime_error("replica failed");
                   return 0;
                 }),
      std::runtime_error);
}

TEST(SweepRunnerTest, MergeHelpersFoldInOrder) {
  std::vector<util::TimeSeries> series(2);
  series[0].add(10, 1.0);
  series[1].add(5, 2.0);
  const auto merged = merge_series(series);
  ASSERT_EQ(merged.points().size(), 2u);
  EXPECT_EQ(merged.points()[0].t_ns, 10);
  EXPECT_EQ(merged.points()[1].t_ns, 5);

  std::vector<experiments::EventLog> logs(2);
  logs[0].record(1, experiments::EventKind::kTakeover, "a");
  logs[1].record(2, experiments::EventKind::kAttack, "b");
  const auto mlog = merge_event_logs(logs);
  ASSERT_EQ(mlog.events().size(), 2u);
  EXPECT_EQ(mlog.events()[0].subject, "a");

  std::vector<util::Histogram> hists(2, util::Histogram(0.0, 100.0, 10.0));
  hists[0].add(5.0);
  hists[1].add(5.0);
  hists[1].add(205.0);
  const auto mh = merge_histograms(hists);
  EXPECT_EQ(mh.bin(0), 2u);
  EXPECT_EQ(mh.overflow(), 1u);
  EXPECT_EQ(mh.stats().count(), 3u);
}

// ---------------------------------------------------------------------------
// The headline guarantee: a fig4b-style 8-seed fault-injection sweep at
// threads=4 produces byte-identical merged CSV output and identical
// merged stats to threads=1.

struct Fig4bReplica {
  util::TimeSeries series;
  experiments::EventLog events;
};

Fig4bReplica run_fig4b_replica(const experiments::ScenarioConfig& cfg) {
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  gptp::InstanceFaultModel fm;
  fm.p_tx_timestamp_timeout = 1.06e-3;
  fm.p_late_launch = 1.25e-4;
  for (std::size_t x = 0; x < scenario.num_ecds(); ++x) {
    for (std::size_t i = 0; i < 2; ++i) scenario.vm(x, i).set_fault_model(fm);
  }
  harness.bring_up();
  harness.calibrate();
  faults::InjectorConfig icfg;
  icfg.gm_kill_period_ns = 45_s;
  icfg.gm_downtime_ns = 30_s;
  icfg.standby_kills_per_hour = 60.0;
  icfg.standby_min_gap_ns = 20_s;
  icfg.standby_downtime_ns = 30_s;
  faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), icfg);
  injector.spare(&scenario.measurement_vm());
  injector.on_event = [&](const faults::InjectionEvent& ev) {
    harness.events().record(ev.at_ns,
                            ev.is_reboot ? experiments::EventKind::kVmReboot
                                         : experiments::EventKind::kVmFailure,
                            ev.vm, ev.was_gm ? "gm" : "standby");
  };
  injector.start();
  harness.run_measured(60_s);
  return {scenario.probe().series(), harness.events()};
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string sweep_artifacts(std::size_t threads, const std::string& tag) {
  experiments::ScenarioConfig base;
  base.seed = 7001;
  SweepRunner runner({.threads = threads});
  const auto results = runner.run(
      seed_sweep(base, 8),
      [](const experiments::ScenarioConfig& cfg, std::size_t) { return run_fig4b_replica(cfg); });

  std::vector<util::TimeSeries> series;
  std::vector<experiments::EventLog> logs;
  for (const auto& r : results) {
    series.push_back(r.series);
    logs.push_back(r.events);
  }
  const auto merged_series = merge_series(series);
  const auto merged_log = merge_event_logs(logs);

  const std::string series_csv = "sweep_det_series_" + tag + ".csv";
  const std::string events_csv = "sweep_det_events_" + tag + ".csv";
  experiments::dump_series_csv(merged_series, series_csv);
  experiments::dump_events_csv(merged_log, events_csv);

  std::vector<util::Histogram> hists;
  for (const auto& r : results) {
    util::Histogram h(0.0, 1000.0, 50.0);
    for (const auto& p : r.series.points()) h.add(p.value);
    hists.push_back(h);
  }
  const auto merged_hist = merge_histograms(hists);

  const auto st = merged_series.stats();
  std::string artifacts = file_bytes(series_csv) + "\n---\n" + file_bytes(events_csv) + "\n---\n" +
                          merged_hist.ascii() + "\n---\n" +
                          util::format("%zu %.17g %.17g %.17g %.17g", merged_series.points().size(),
                                       st.mean(), st.stddev(), st.min(), st.max());
  std::remove(series_csv.c_str());
  std::remove(events_csv.c_str());
  return artifacts;
}

TEST(SweepDeterminismTest, ParallelMergedOutputByteIdenticalToSequential) {
  const std::string sequential = sweep_artifacts(1, "t1");
  const std::string parallel = sweep_artifacts(4, "t4");
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
  // Sanity: the sweep actually produced data (8 replicas x ~60 probe
  // samples each).
  EXPECT_GT(sequential.size(), 1000u);
}

} // namespace
} // namespace tsn::sweep
