#include "hv/st_shmem.hpp"

#include <gtest/gtest.h>

namespace tsn::hv {
namespace {

TEST(StShmemTest, ParamsRoundTrip) {
  StShmem shm;
  EXPECT_FALSE(shm.read_params().valid);
  SyncTimeParams p;
  p.base_tsc = 1000;
  p.base_sync = 2000;
  p.rate = 1.0000025;
  p.valid = true;
  shm.publish_params(p);
  const auto q = shm.read_params();
  EXPECT_TRUE(q.valid);
  EXPECT_EQ(q.base_tsc, 1000);
  EXPECT_EQ(q.base_sync, 2000);
  EXPECT_DOUBLE_EQ(q.rate, 1.0000025);
}

TEST(StShmemTest, SynctimeDerivation) {
  StShmem shm;
  EXPECT_FALSE(read_synctime(shm, 123).has_value()); // no params yet
  SyncTimeParams p;
  p.base_tsc = 1'000'000;
  p.base_sync = 5'000'000;
  p.rate = 1.0;
  p.valid = true;
  shm.publish_params(p);
  EXPECT_EQ(read_synctime(shm, 1'000'100).value(), 5'000'100);
  // Rate scales the TSC delta.
  p.rate = 2.0;
  shm.publish_params(p);
  EXPECT_EQ(read_synctime(shm, 1'000'100).value(), 5'000'200);
  // Works backwards in TSC too.
  EXPECT_EQ(read_synctime(shm, 999'900).value(), 4'999'800);
}

TEST(StShmemTest, HeartbeatAges) {
  StShmem shm;
  EXPECT_EQ(shm.heartbeat_age(0, 500), INT64_MAX); // never beaten
  shm.heartbeat(0, 400);
  EXPECT_EQ(shm.heartbeat_age(0, 500), 100);
  EXPECT_EQ(shm.heartbeat_age(1, 500), INT64_MAX);
}

TEST(StShmemTest, ActiveVmAndGeneration) {
  StShmem shm;
  EXPECT_EQ(shm.active_vm(), 0u);
  EXPECT_EQ(shm.generation(), 0u);
  shm.set_active_vm(1);
  EXPECT_EQ(shm.bump_generation(), 1u);
  EXPECT_EQ(shm.active_vm(), 1u);
  EXPECT_EQ(shm.generation(), 1u);
}

} // namespace
} // namespace tsn::hv
