// Regression tests for the two monitor bugs this PR fixes:
//
//   1. Even-size majority vote used the upper median, so two colluding
//      fast clocks in a 4-VM vote dragged the "median" to their side and
//      the honest VMs were voted out. The fix takes the true median
//      (midpoint of the two central values).
//   2. When the active VM failed with no healthy successor, the fail-over
//      loop silently did nothing and the failed VM kept maintaining
//      CLOCK_SYNCTIME. The fix suspends publication (deactivate), counts
//      the episode once (no_successor) and reactivates on recovery.
#include <gtest/gtest.h>

#include "hv/ecd.hpp"

namespace tsn::hv {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet(double drift_ppm = 0.0) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

ClockSyncVmConfig vm_cfg(const std::string& name, std::uint64_t mac) {
  ClockSyncVmConfig cfg;
  cfg.name = name;
  cfg.mac = net::MacAddress::from_u64(mac);
  cfg.phc = quiet();
  cfg.domains = {1, 2, 3, 4};
  return cfg;
}

struct FourVmFixture {
  Simulation sim{31};
  Ecd ecd;

  FourVmFixture() : ecd(sim, {"ecd", quiet(), {}}) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      ecd.add_clock_sync_vm(vm_cfg("vm" + std::to_string(i), 0x51 + i));
    }
    ecd.start();
  }
};

TEST(MonitorRegressionTest, EvenVoteTwoColludersCannotEvictHonestMajority) {
  // Views after corruption: {0, 0, +16000, +16000}. True median = 8000,
  // every deviation is 8000 < the 10000 threshold -> nobody is excluded.
  // The old upper-median (16000) made the HONEST VMs deviate by 16000 and
  // voted them out, handing CLOCK_SYNCTIME to a colluder.
  FourVmFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(2).updater()->set_param_corruption(16'000);
  f.ecd.vm(3).updater()->set_param_corruption(16'000);
  f.sim.run_until(SimTime(8_s));
  EXPECT_EQ(f.ecd.monitor().stats().vote_exclusions, 0u);
  EXPECT_EQ(f.ecd.monitor().stats().takeovers, 0u);
  EXPECT_FALSE(f.ecd.monitor().voted_out(0));
  EXPECT_FALSE(f.ecd.monitor().voted_out(1));
  EXPECT_TRUE(f.ecd.vm(0).is_active());
}

TEST(MonitorRegressionTest, EvenVoteSingleOutlierStillExcluded) {
  // The true-median fix must not weaken the 4-VM vote against a single
  // faulty clock: views {0, 0, 0, +50000} -> median 0 -> vm3 is out.
  FourVmFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(3).updater()->set_param_corruption(50'000);
  f.sim.run_until(SimTime(8_s));
  EXPECT_TRUE(f.ecd.monitor().voted_out(3));
  EXPECT_EQ(f.ecd.monitor().stats().vote_exclusions, 1u);
  EXPECT_FALSE(f.ecd.monitor().voted_out(0));
  EXPECT_TRUE(f.ecd.vm(0).is_active());
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 0u);
}

struct NoSuccessorFixture {
  Simulation sim{37};
  Ecd ecd;

  NoSuccessorFixture() : ecd(sim, {"ecd", quiet(), sanity_monitor()}) {
    ecd.add_clock_sync_vm(vm_cfg("vm0", 0x61));
    ecd.add_clock_sync_vm(vm_cfg("vm1", 0x62));
    ecd.start();
  }

  static MonitorConfig sanity_monitor() {
    MonitorConfig cfg;
    cfg.max_rate_error = 1e-4; // enable the rate sanity check
    return cfg;
  }
};

TEST(MonitorRegressionTest, ActiveFailsWithNoSuccessorSuspendsPublication) {
  NoSuccessorFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(1).shutdown(); // the only possible successor dies
  f.sim.run_until(SimTime(6_s));
  ASSERT_GE(f.ecd.monitor().stats().failures_detected, 1u);

  // The active VM starts publishing an insane rate: fail-over is wanted
  // but nobody healthy is left. The failed VM must NOT keep serving.
  f.ecd.vm(0).updater()->set_rate_corruption(1e-3);
  f.sim.run_until(SimTime(8_s));
  EXPECT_GE(f.ecd.monitor().stats().param_sanity_failures, 1u);
  EXPECT_EQ(f.ecd.monitor().stats().takeovers, 0u);
  EXPECT_EQ(f.ecd.monitor().stats().no_successor, 1u); // once per episode
  EXPECT_FALSE(f.ecd.vm(0).is_active());

  // Recovery: the rate becomes sane again and the monitor reactivates the
  // designated VM instead of leaving the node without CLOCK_SYNCTIME.
  f.ecd.vm(0).updater()->set_rate_corruption(0.0);
  f.sim.run_until(SimTime(10_s));
  EXPECT_TRUE(f.ecd.vm(0).is_active());
  EXPECT_EQ(f.ecd.monitor().stats().no_successor, 1u);

  // A second episode counts again (the latch resets on the healthy path).
  f.ecd.vm(0).updater()->set_rate_corruption(1e-3);
  f.sim.run_until(SimTime(12_s));
  EXPECT_EQ(f.ecd.monitor().stats().no_successor, 2u);
  EXPECT_FALSE(f.ecd.vm(0).is_active());
}

TEST(MonitorRegressionTest, NoSuccessorEpisodeEndsViaTakeoverWhenStandbyReturns) {
  NoSuccessorFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(1).shutdown();
  f.sim.run_until(SimTime(6_s));
  f.ecd.vm(0).updater()->set_rate_corruption(1e-3);
  f.sim.run_until(SimTime(8_s));
  ASSERT_FALSE(f.ecd.vm(0).is_active());

  // The standby reboots while the active is still insane: the normal
  // fail-over path promotes it and ends the episode.
  f.ecd.vm(1).boot(/*first_boot=*/false);
  f.sim.run_until(SimTime(11_s));
  EXPECT_GE(f.ecd.monitor().stats().takeovers, 1u);
  EXPECT_TRUE(f.ecd.vm(1).is_active());
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 1u);
}

} // namespace
} // namespace tsn::hv
