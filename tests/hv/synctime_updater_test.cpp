#include "hv/synctime_updater.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tsn::hv {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet(double drift_ppm) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

struct Fixture {
  Simulation sim{3};
  time::PhcClock phc;  // the NIC clock carrying synchronized time
  time::PhcClock tsc;  // the platform TSC
  StShmem shmem;
  SyncTimeUpdater updater;

  explicit Fixture(double phc_drift = 0.0, double tsc_drift = 0.0,
                   SyncTimeUpdaterConfig cfg = {})
      : phc(sim, quiet(phc_drift), "phc"),
        tsc(sim, quiet(tsc_drift), "tsc"),
        updater(sim, phc, tsc, shmem, cfg, "upd") {}
};

TEST(SyncTimeUpdaterTest, HeartbeatsEvenWhenNotPublishing) {
  Fixture f;
  f.updater.start(1);
  f.sim.run_until(SimTime(1_s));
  EXPECT_LT(f.shmem.heartbeat_age(1, f.tsc.read()), 200_ms);
  EXPECT_FALSE(f.shmem.read_params().valid);
  EXPECT_EQ(f.updater.publications(), 0u);
}

TEST(SyncTimeUpdaterTest, PublishesWhenActive) {
  Fixture f;
  f.updater.start(0);
  f.updater.set_publishing(true);
  f.sim.run_until(SimTime(1_s));
  EXPECT_TRUE(f.shmem.read_params().valid);
  EXPECT_GT(f.updater.publications(), 5u);
}

TEST(SyncTimeUpdaterTest, SynctimeTracksPhcThroughTscMapping) {
  // PHC +5 ppm, TSC -3 ppm: CLOCK_SYNCTIME derived via the TSC must still
  // follow the PHC.
  Fixture f(5.0, -3.0);
  f.updater.start(0);
  f.updater.set_publishing(true);
  f.sim.run_until(SimTime(30_s));
  const auto synctime = read_synctime(f.shmem, f.tsc.read());
  ASSERT_TRUE(synctime.has_value());
  EXPECT_NEAR(static_cast<double>(*synctime - f.phc.read()), 0.0, 50.0);
  EXPECT_NEAR(f.updater.estimated_rate(), 1.000008, 1e-6);
}

TEST(SyncTimeUpdaterTest, TakeoverPublishesImmediately) {
  Fixture f;
  f.updater.start(0);
  f.sim.run_until(SimTime(1_s));
  EXPECT_FALSE(f.shmem.read_params().valid);
  f.updater.set_publishing(true); // takeover IRQ path
  EXPECT_TRUE(f.shmem.read_params().valid);
}

TEST(SyncTimeUpdaterTest, StopCeasesActivity) {
  Fixture f;
  f.updater.start(0);
  f.updater.set_publishing(true);
  f.sim.run_until(SimTime(1_s));
  const auto pubs = f.updater.publications();
  f.updater.stop();
  f.sim.run_until(SimTime(2_s));
  EXPECT_EQ(f.updater.publications(), pubs);
  EXPECT_GT(f.shmem.heartbeat_age(0, f.tsc.read()), 500_ms);
}

TEST(SyncTimeUpdaterTest, FeedForwardRateConverges) {
  SyncTimeUpdaterConfig cfg;
  cfg.mode = SyncTimeMode::kFeedForward;
  cfg.feed_forward_window = 16;
  Fixture f(4.0, 0.0, cfg);
  f.updater.start(0);
  f.updater.set_publishing(true);
  f.sim.run_until(SimTime(30_s));
  EXPECT_NEAR(f.updater.estimated_rate(), 1.000004, 2e-7);
  const auto synctime = read_synctime(f.shmem, f.tsc.read());
  ASSERT_TRUE(synctime.has_value());
  EXPECT_NEAR(static_cast<double>(*synctime - f.phc.read()), 0.0, 50.0);
}

} // namespace
} // namespace tsn::hv
