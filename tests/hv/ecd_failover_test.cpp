// Ecd + monitor + ClockSyncVm fail-over tests. The VMs' NICs are left
// unconnected: heartbeats and CLOCK_SYNCTIME maintenance do not need the
// network, which keeps these tests focused on the dependent-clock logic.
#include <gtest/gtest.h>

#include <cmath>

#include "hv/ecd.hpp"

namespace tsn::hv {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet(double drift_ppm = 0.0) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

ClockSyncVmConfig vm_cfg(const std::string& name, std::uint64_t mac, double drift = 0.0) {
  ClockSyncVmConfig cfg;
  cfg.name = name;
  cfg.mac = net::MacAddress::from_u64(mac);
  cfg.phc = quiet(drift);
  cfg.domains = {1, 2, 3, 4};
  cfg.coordinator.initial_domain = 1;
  return cfg;
}

struct Fixture {
  Simulation sim{17};
  Ecd ecd;

  Fixture() : ecd(sim, {"ecd1", quiet(1.0), {}}) {
    ecd.add_clock_sync_vm(vm_cfg("c11", 0x11, 2.0));
    ecd.add_clock_sync_vm(vm_cfg("c12", 0x12, -2.0));
  }
};

TEST(EcdTest, StartBootsVmsAndPublishes) {
  Fixture f;
  f.ecd.start();
  f.sim.run_until(SimTime(2_s));
  EXPECT_TRUE(f.ecd.vm(0).running());
  EXPECT_TRUE(f.ecd.vm(1).running());
  EXPECT_TRUE(f.ecd.vm(0).is_active());
  EXPECT_FALSE(f.ecd.vm(1).is_active());
  EXPECT_TRUE(f.ecd.read_synctime().has_value());
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 0u);
}

TEST(EcdTest, SynctimeFollowsActiveVmPhc) {
  Fixture f;
  f.ecd.start();
  f.sim.run_until(SimTime(10_s));
  const auto st = f.ecd.read_synctime();
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(static_cast<double>(*st - f.ecd.vm(0).nic().phc().read()), 0.0, 100.0);
}

TEST(EcdTest, MonitorDetectsFailSilentActiveAndFailsOver) {
  Fixture f;
  int failures = 0, takeovers = 0;
  std::size_t takeover_vm = 99;
  f.ecd.monitor().on_vm_failure = [&](std::size_t) { ++failures; };
  f.ecd.monitor().on_takeover = [&](std::size_t idx) {
    ++takeovers;
    takeover_vm = idx;
  };
  f.ecd.start();
  f.sim.at(SimTime(5_s), [&] { f.ecd.vm(0).shutdown(); });
  f.sim.run_until(SimTime(7_s));
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(takeovers, 1);
  EXPECT_EQ(takeover_vm, 1u);
  EXPECT_TRUE(f.ecd.vm(1).is_active());
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 1u);
  EXPECT_GE(f.ecd.st_shmem().generation(), 1u);
  // CLOCK_SYNCTIME still progresses from the standby's clock.
  EXPECT_TRUE(f.ecd.read_synctime().has_value());
}

TEST(EcdTest, FailoverLatencyWithinMonitorBudget) {
  // Detection needs heartbeat_timeout (400 ms) + <= 1 monitor period.
  Fixture f;
  std::int64_t takeover_time = -1;
  f.ecd.monitor().on_takeover = [&](std::size_t) { takeover_time = f.sim.now().ns(); };
  f.ecd.start();
  f.sim.at(SimTime(5_s), [&] { f.ecd.vm(0).shutdown(); });
  f.sim.run_until(SimTime(10_s));
  ASSERT_GT(takeover_time, 0);
  const std::int64_t latency = takeover_time - 5_s;
  EXPECT_LE(latency, 400_ms + 2 * 125_ms);
  EXPECT_GE(latency, 125_ms);
}

TEST(EcdTest, SynctimeContinuousAcrossTakeover) {
  Fixture f;
  f.ecd.start();
  f.sim.run_until(SimTime(5_s));
  std::int64_t before = *f.ecd.read_synctime();
  const std::int64_t t_before = f.sim.now().ns();
  f.ecd.vm(0).shutdown();
  f.sim.run_until(SimTime(8_s));
  const std::int64_t after = *f.ecd.read_synctime();
  const std::int64_t elapsed_true = f.sim.now().ns() - t_before;
  // Continuity: synctime advanced by ~3 s, no huge step. The two VM clocks
  // free-run (no network here) at +/-2 ppm, so allow drift * elapsed.
  EXPECT_NEAR(static_cast<double>(after - before), static_cast<double>(elapsed_true),
              4e-6 * static_cast<double>(f.sim.now().ns()) + 1000.0);
}

TEST(EcdTest, RebootedVmBecomesStandby) {
  Fixture f;
  int recoveries = 0;
  f.ecd.monitor().on_vm_recovery = [&](std::size_t idx) {
    ++recoveries;
    EXPECT_EQ(idx, 0u);
  };
  f.ecd.start();
  f.sim.at(SimTime(5_s), [&] { f.ecd.vm(0).shutdown(); });
  f.sim.at(SimTime(20_s), [&] { f.ecd.vm(0).boot(/*first_boot=*/false); });
  f.sim.run_until(SimTime(25_s));
  EXPECT_EQ(recoveries, 1);
  EXPECT_TRUE(f.ecd.vm(0).running());
  // No fail-back: VM 1 keeps maintaining CLOCK_SYNCTIME.
  EXPECT_TRUE(f.ecd.vm(1).is_active());
  EXPECT_FALSE(f.ecd.vm(0).is_active());
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 1u);
}

TEST(EcdTest, SecondFailoverBackToRebootedVm) {
  Fixture f;
  f.ecd.start();
  f.sim.at(SimTime(5_s), [&] { f.ecd.vm(0).shutdown(); });
  f.sim.at(SimTime(20_s), [&] { f.ecd.vm(0).boot(false); });
  f.sim.at(SimTime(30_s), [&] { f.ecd.vm(1).shutdown(); });
  f.sim.run_until(SimTime(35_s));
  EXPECT_TRUE(f.ecd.vm(0).is_active());
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 0u);
  EXPECT_EQ(f.ecd.monitor().stats().takeovers, 2u);
}

TEST(EcdTest, BothVmsDownNoTakeoverTarget) {
  Fixture f;
  f.ecd.start();
  f.sim.at(SimTime(5_s), [&] {
    f.ecd.vm(0).shutdown();
    f.ecd.vm(1).shutdown();
  });
  f.sim.run_until(SimTime(8_s));
  EXPECT_EQ(f.ecd.monitor().stats().takeovers, 0u);
  EXPECT_EQ(f.ecd.monitor().stats().failures_detected, 2u);
}

TEST(EcdTest, ShutdownIsIdempotentAndBootAfterShutdownWorks) {
  Fixture f;
  f.ecd.start();
  f.sim.run_until(SimTime(2_s));
  f.ecd.vm(0).shutdown();
  f.ecd.vm(0).shutdown(); // no-op
  EXPECT_FALSE(f.ecd.vm(0).running());
  f.ecd.vm(0).boot(false);
  f.ecd.vm(0).boot(false); // no-op
  EXPECT_TRUE(f.ecd.vm(0).running());
}

TEST(EcdTest, CompromiseBeforeBootAppliesAfterBuild) {
  Simulation sim{5};
  Ecd ecd(sim, {"ecd", quiet(), {}});
  auto cfg = vm_cfg("gm", 0x21);
  cfg.gm_domain = 1;
  auto& vm = ecd.add_clock_sync_vm(cfg);
  vm.compromise(-24'000);
  ecd.start();
  ASSERT_NE(vm.stack(), nullptr);
  auto* inst = vm.stack()->instance_for_domain(1);
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->is_malicious());
  EXPECT_TRUE(vm.compromised());
}

} // namespace
} // namespace tsn::hv
