// 2f+1 fail-consistent monitor voting (paper sec. II-A: "to tolerate f
// consistently failing clock synchronization VMs, we require 2f+1
// redundant clock synchronization VMs").
#include <gtest/gtest.h>

#include "hv/ecd.hpp"

namespace tsn::hv {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet(double drift_ppm = 0.0) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift_ppm;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

ClockSyncVmConfig vm_cfg(const std::string& name, std::uint64_t mac, double drift) {
  ClockSyncVmConfig cfg;
  cfg.name = name;
  cfg.mac = net::MacAddress::from_u64(mac);
  cfg.phc = quiet(drift);
  cfg.domains = {1, 2, 3, 4};
  return cfg;
}

struct ThreeVmFixture {
  Simulation sim{23};
  Ecd ecd;

  ThreeVmFixture() : ecd(sim, {"ecd", quiet(1.0), {}}) {
    // 2f+1 = 3 redundant clock synchronization VMs (needs 3 NICs).
    ecd.add_clock_sync_vm(vm_cfg("vm0", 0x31, 0.5));
    ecd.add_clock_sync_vm(vm_cfg("vm1", 0x32, -0.5));
    ecd.add_clock_sync_vm(vm_cfg("vm2", 0x33, 0.0));
    ecd.start();
  }
};

TEST(FailConsistentTest, HealthyTripleHasNoExclusions) {
  ThreeVmFixture f;
  f.sim.run_until(SimTime(10_s));
  EXPECT_EQ(f.ecd.monitor().stats().vote_exclusions, 0u);
  EXPECT_TRUE(f.ecd.vm(0).is_active());
}

TEST(FailConsistentTest, CorruptActiveVotedOutAndReplaced) {
  ThreeVmFixture f;
  std::size_t excluded = 99;
  f.ecd.monitor().on_vote_exclusion = [&](std::size_t idx) { excluded = idx; };
  f.sim.run_until(SimTime(5_s));
  // The active VM starts publishing a consistently wrong CLOCK_SYNCTIME
  // (+50 us): all readers would see the same wrong value -- exactly the
  // fail-consistent fault the majority vote must catch.
  f.ecd.vm(0).updater()->set_param_corruption(50'000);
  f.sim.run_until(SimTime(7_s));
  EXPECT_EQ(excluded, 0u);
  EXPECT_GE(f.ecd.monitor().stats().vote_exclusions, 1u);
  EXPECT_TRUE(f.ecd.monitor().voted_out(0));
  // CLOCK_SYNCTIME maintenance moved to a healthy VM.
  EXPECT_NE(f.ecd.st_shmem().active_vm(), 0u);
  EXPECT_GE(f.ecd.monitor().stats().takeovers, 1u);
  // And co-located VMs read a sane clock again (vs. vm2's view).
  const auto st = f.ecd.read_synctime();
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(static_cast<double>(*st - f.ecd.vm(2).nic().phc().read()), 0.0, 5'000.0);
}

TEST(FailConsistentTest, CorruptStandbyVotedOutWithoutTakeover) {
  ThreeVmFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(2).updater()->set_param_corruption(-80'000);
  f.sim.run_until(SimTime(7_s));
  EXPECT_TRUE(f.ecd.monitor().voted_out(2));
  EXPECT_EQ(f.ecd.st_shmem().active_vm(), 0u); // active untouched
  EXPECT_EQ(f.ecd.monitor().stats().takeovers, 0u);
}

TEST(FailConsistentTest, SmallDeviationTolerated) {
  ThreeVmFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(0).updater()->set_param_corruption(2'000); // below 10 us threshold
  f.sim.run_until(SimTime(8_s));
  EXPECT_EQ(f.ecd.monitor().stats().vote_exclusions, 0u);
  EXPECT_TRUE(f.ecd.vm(0).is_active());
}

TEST(FailConsistentTest, RecoveredVmRejoinsMajority) {
  ThreeVmFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(2).updater()->set_param_corruption(100'000);
  f.sim.run_until(SimTime(7_s));
  ASSERT_TRUE(f.ecd.monitor().voted_out(2));
  f.ecd.vm(2).updater()->set_param_corruption(0);
  f.sim.run_until(SimTime(9_s));
  EXPECT_FALSE(f.ecd.monitor().voted_out(2));
}

TEST(FailConsistentTest, TwoVmsCannotVote) {
  // With only f+1 = 2 VMs (the paper's actual hardware) a consistent
  // fault is undetectable by voting: the fail-silent hypothesis is all
  // the 2-NIC setup can support.
  Simulation sim{29};
  Ecd ecd(sim, {"ecd", quiet(), {}});
  ecd.add_clock_sync_vm(vm_cfg("vm0", 0x41, 0.0));
  ecd.add_clock_sync_vm(vm_cfg("vm1", 0x42, 0.0));
  ecd.start();
  sim.run_until(SimTime(5_s));
  ecd.vm(0).updater()->set_param_corruption(1'000'000);
  sim.run_until(SimTime(8_s));
  EXPECT_EQ(ecd.monitor().stats().vote_exclusions, 0u);
  EXPECT_TRUE(ecd.vm(0).is_active()); // the wrong clock keeps serving
}

TEST(FailConsistentTest, VoteSurvivesOneFailSilentPlusVote) {
  // vm1 dies silently, then vm0 goes fail-consistent: with only two
  // opinions left the vote disables itself, but the earlier heartbeat
  // failure handling still works.
  ThreeVmFixture f;
  f.sim.run_until(SimTime(5_s));
  f.ecd.vm(1).shutdown();
  f.sim.run_until(SimTime(7_s));
  EXPECT_GE(f.ecd.monitor().stats().failures_detected, 1u);
  f.ecd.vm(0).updater()->set_param_corruption(200'000);
  f.sim.run_until(SimTime(10_s));
  // Only 2 candidates remain -> no quorum -> no exclusion.
  EXPECT_EQ(f.ecd.monitor().stats().vote_exclusions, 0u);
}

} // namespace
} // namespace tsn::hv
