// Determinism properties of the fuzz campaign: the verdict table must be
// byte-identical whatever thread count ran it, case derivation must be a
// pure function of (master_seed, index), and replay files must round-trip
// losslessly.
#include "check/fuzz.hpp"

#include <gtest/gtest.h>

namespace tsn::check {
namespace {

constexpr std::int64_t kSec = 1'000'000'000LL;

TEST(FuzzDeterminismTest, CampaignSummaryIsByteIdenticalAcrossThreadCounts) {
  CampaignConfig cfg;
  cfg.master_seed = 11;
  cfg.num_cases = 6;
  cfg.duration_ns = 45 * kSec;

  cfg.threads = 1;
  const CampaignResult serial = run_campaign(cfg);
  cfg.threads = 4;
  const CampaignResult parallel = run_campaign(cfg);

  EXPECT_EQ(serial.summary_text(), parallel.summary_text());
  EXPECT_EQ(serial.failures, parallel.failures);
  ASSERT_EQ(serial.cases.size(), parallel.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].summary, parallel.cases[i].summary) << "case " << i;
    EXPECT_EQ(serial.cases[i].injector_stats.total_kills,
              parallel.cases[i].injector_stats.total_kills)
        << "case " << i;
    EXPECT_EQ(serial.cases[i].events.size(), parallel.cases[i].events.size()) << "case " << i;
  }
}

TEST(FuzzDeterminismTest, DeriveCaseIsPure) {
  const FuzzCase a = derive_case(5, 3);
  const FuzzCase b = derive_case(5, 3);
  EXPECT_EQ(replay_to_text(a), replay_to_text(b));

  // Different indices (and different master seeds) give different worlds.
  const FuzzCase c = derive_case(5, 4);
  const FuzzCase d = derive_case(6, 3);
  EXPECT_NE(replay_to_text(a), replay_to_text(c));
  EXPECT_NE(replay_to_text(a), replay_to_text(d));
}

TEST(FuzzDeterminismTest, RerunningTheSameCaseGivesTheSameVerdict) {
  const FuzzCase c = derive_case(11, 2, 45 * kSec);
  const CaseResult r1 = run_case(c);
  const CaseResult r2 = run_case(c);
  EXPECT_EQ(r1.summary, r2.summary);
  EXPECT_EQ(r1.bound_ns, r2.bound_ns);
  EXPECT_EQ(r1.injector_stats.total_kills, r2.injector_stats.total_kills);
  ASSERT_EQ(r1.events.size(), r2.events.size());
  for (std::size_t i = 0; i < r1.events.size(); ++i) {
    EXPECT_EQ(r1.events[i].at_ns, r2.events[i].at_ns) << "event " << i;
  }
}

TEST(FuzzDeterminismTest, ReplayTextRoundTripsLosslessly) {
  // A randomized case...
  const FuzzCase original = derive_case(7, 1, 60 * kSec);
  const std::string text = replay_to_text(original);
  const FuzzCase parsed = replay_from_text(text);
  EXPECT_EQ(replay_to_text(parsed), text);
  EXPECT_EQ(parsed.scenario.seed, original.scenario.seed);
  EXPECT_EQ(parsed.scenario.num_ecds, original.scenario.num_ecds);
  EXPECT_EQ(parsed.scenario.fta_f, original.scenario.fta_f);
  EXPECT_EQ(parsed.duration_ns, original.duration_ns);

  // ...and a scripted one with an explicit fault schedule.
  FuzzCase scripted = original;
  scripted.replay.raw = true;
  scripted.replay.faults.push_back({45 * kSec + 1, 0, 0, 20 * kSec});
  scripted.replay.faults.push_back({47 * kSec + 1, 2, 1, 15 * kSec});
  const std::string stext = replay_to_text(scripted);
  const FuzzCase sparsed = replay_from_text(stext);
  EXPECT_EQ(replay_to_text(sparsed), stext);
  ASSERT_EQ(sparsed.replay.size(), 2u);
  EXPECT_TRUE(sparsed.replay.raw);
  EXPECT_EQ(sparsed.replay.faults[0].at_ns, 45 * kSec + 1);
  EXPECT_EQ(sparsed.replay.faults[1].ecd, 2u);
  EXPECT_EQ(sparsed.replay.faults[1].downtime_ns, 15 * kSec);
}

TEST(FuzzDeterminismTest, ScriptedReplayMatchesTheRandomizedRun) {
  // The scripted twin extracted from a randomized run must execute the
  // same kill sequence when replayed.
  const FuzzCase c = derive_case(11, 0, 45 * kSec);
  const CaseResult live = run_case(c);
  ASSERT_TRUE(live.brought_up);

  FuzzCase scripted = c;
  scripted.replay = schedule_from_events(live.events);
  const CaseResult replayed = run_case(scripted);
  EXPECT_EQ(replayed.summary, live.summary);
  EXPECT_EQ(replayed.injector_stats.total_kills, live.injector_stats.total_kills);
}

} // namespace
} // namespace tsn::check
