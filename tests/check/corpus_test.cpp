// Regression corpus: every checked-in replay under tests/corpus/ must run
// clean. The corpus holds interesting stress cases promoted from fuzz
// campaigns (high-f topologies, kill storms, near-quorum-loss schedules,
// former findings fixed in-tree) -- a violation here means a resilience
// property regressed.
#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#ifndef TSN_CORPUS_DIR
#error "TSN_CORPUS_DIR must point at tests/corpus"
#endif

namespace tsn::check {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(TSN_CORPUS_DIR)) {
    if (entry.path().extension() == ".replay") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(CorpusTest, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 8u) << "expected a seeded corpus in " << TSN_CORPUS_DIR;
}

class CorpusReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplayTest, RunsClean) {
  const std::string& path = GetParam();
  FuzzCase c;
  ASSERT_NO_THROW(c = load_replay(path)) << path;
  const CaseResult r = run_case(c);
  EXPECT_FALSE(r.failed()) << path << ": " << r.summary;
  for (const Violation& v : r.violations) {
    ADD_FAILURE() << path << " [" << v.invariant << "] t=" << v.t_ns / 1'000'000
                  << " ms: " << v.message;
  }
}

std::string corpus_test_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& ch : stem) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplayTest, ::testing::ValuesIn(corpus_files()),
                         corpus_test_name);

} // namespace
} // namespace tsn::check
