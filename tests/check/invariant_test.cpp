// Each oracle must fire on a synthetically violated stream and stay
// silent on a healthy one -- unit-level first (records fed by hand, no
// world), then integration-level through a real scenario run.
#include <gtest/gtest.h>

#include "check/fuzz.hpp"
#include "check/invariant.hpp"

namespace tsn::check {
namespace {

constexpr std::int64_t kSec = 1'000'000'000LL;

struct CollectSink : ViolationSink {
  std::vector<Violation> got;
  void report(Violation v) override { got.push_back(std::move(v)); }
  std::size_t count(const std::string& inv) const {
    std::size_t n = 0;
    for (const auto& v : got) {
      if (v.invariant == inv) ++n;
    }
    return n;
  }
};

obs::TraceRecord rec(std::int64_t t_ns, obs::TraceKind kind, std::uint16_t source,
                     std::uint32_t a = 0, std::uint32_t mask = 0, double v0 = 0.0) {
  obs::TraceRecord r;
  r.t_ns = t_ns;
  r.kind = kind;
  r.source = source;
  r.a = a;
  r.mask = mask;
  r.v0 = v0;
  return r;
}

faults::InjectionEvent kill_ev(std::int64_t t_ns, const std::string& vm, std::size_t ecd,
                               std::size_t vm_idx, std::int64_t downtime_ns = 20 * kSec) {
  return faults::InjectionEvent{t_ns, vm, false, false, ecd, vm_idx, downtime_ns};
}

faults::InjectionEvent reboot_ev(std::int64_t t_ns, const std::string& vm, std::size_t ecd,
                                 std::size_t vm_idx) {
  return faults::InjectionEvent{t_ns, vm, false, true, ecd, vm_idx, 0};
}

// ---------------------------------------------------------------------------
// PrecisionBoundInvariant

TEST(PrecisionBoundTest, FiresOncePostConvergenceExceedance) {
  obs::TraceRing ring;
  const auto src = ring.intern("c11/fta");
  CollectSink sink;
  PrecisionBoundInvariant inv({10'000.0, 1.0, 3, 20 * kSec});
  inv.bind(&sink);

  for (int i = 0; i < 3; ++i) {
    inv.on_trace(rec((i + 1) * kSec, obs::TraceKind::kAggregate, src, 3, 0b111, 5'000.0), ring);
  }
  EXPECT_TRUE(sink.got.empty()) << "converging aggregates must not be judged";

  inv.on_trace(rec(4 * kSec, obs::TraceKind::kAggregate, src, 3, 0b111, 15'000.0), ring);
  ASSERT_EQ(sink.count("precision-bound"), 1u);
  EXPECT_NE(sink.got[0].message.find("c11"), std::string::npos);

  // Demoted after the report: the very next exceedance is part of the same
  // episode, not a second violation.
  inv.on_trace(rec(5 * kSec, obs::TraceKind::kAggregate, src, 3, 0b111, 15'000.0), ring);
  EXPECT_EQ(sink.count("precision-bound"), 1u);
}

TEST(PrecisionBoundTest, SilentOnHealthyStream) {
  obs::TraceRing ring;
  const auto src = ring.intern("c11/fta");
  CollectSink sink;
  PrecisionBoundInvariant inv({10'000.0, 1.25, 3, 20 * kSec});
  inv.bind(&sink);
  for (int i = 0; i < 50; ++i) {
    inv.on_trace(rec(i * kSec, obs::TraceKind::kAggregate, src, 3, 0b111,
                     (i % 2 ? 1.0 : -1.0) * 8'000.0),
                 ring);
    inv.on_sample(i * kSec);
  }
  inv.finalize(50 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

TEST(PrecisionBoundTest, RebootMustReconvergeWithinDeadline) {
  obs::TraceRing ring;
  const auto src = ring.intern("c21/fta");
  CollectSink sink;
  PrecisionBoundInvariant inv({10'000.0, 1.0, 3, 20 * kSec});
  inv.bind(&sink);
  for (int i = 0; i < 3; ++i) {
    inv.on_trace(rec((i + 1) * kSec, obs::TraceKind::kAggregate, src, 3, 0b111, 1'000.0), ring);
  }
  inv.on_injection(kill_ev(10 * kSec, "c21", 1, 0));
  // Down: post-reboot transients above the bound are NOT violations...
  inv.on_injection(reboot_ev(30 * kSec, "c21", 1, 0));
  inv.on_trace(rec(31 * kSec, obs::TraceKind::kAggregate, src, 3, 0b111, 90'000.0), ring);
  inv.on_sample(35 * kSec);
  EXPECT_TRUE(sink.got.empty());
  // ...but never reconverging is.
  inv.on_sample(30 * kSec + 20 * kSec + 1);
  ASSERT_EQ(sink.count("precision-bound"), 1u);
  EXPECT_NE(sink.got[0].message.find("(re)converge"), std::string::npos);
}

TEST(PrecisionBoundTest, RebootReconvergedInTimeIsSilent) {
  obs::TraceRing ring;
  const auto src = ring.intern("c21/fta");
  CollectSink sink;
  PrecisionBoundInvariant inv({10'000.0, 1.0, 3, 20 * kSec});
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c21", 1, 0));
  inv.on_injection(reboot_ev(30 * kSec, "c21", 1, 0));
  for (int i = 0; i < 3; ++i) {
    inv.on_trace(rec(31 * kSec + i * kSec, obs::TraceKind::kAggregate, src, 3, 0b111, 2'000.0),
                 ring);
  }
  inv.on_sample(60 * kSec);
  inv.finalize(120 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

// ---------------------------------------------------------------------------
// FailoverLatencyInvariant

TEST(FailoverLatencyTest, TakeoverWithinDeadlineIsSilent) {
  obs::TraceRing ring;
  const auto mon = ring.intern("ecd1/monitor");
  CollectSink sink;
  FailoverLatencyInvariant inv(1, 1 * kSec);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_trace(rec(10 * kSec + 500'000'000, obs::TraceKind::kTakeover, mon, 1), ring);
  inv.on_sample(20 * kSec);
  inv.finalize(30 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

TEST(FailoverLatencyTest, UnansweredKillFires) {
  obs::TraceRing ring;
  ring.intern("ecd1/monitor");
  CollectSink sink;
  FailoverLatencyInvariant inv(1, 1 * kSec);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_sample(10 * kSec + 900'000'000);
  EXPECT_TRUE(sink.got.empty());
  inv.on_sample(10 * kSec + 1'100'000'000);
  ASSERT_EQ(sink.count("failover-latency"), 1u);
  EXPECT_NE(sink.got[0].message.find("unanswered"), std::string::npos);
}

TEST(FailoverLatencyTest, LateTakeoverFires) {
  obs::TraceRing ring;
  const auto mon = ring.intern("ecd1/monitor");
  CollectSink sink;
  FailoverLatencyInvariant inv(1, 1 * kSec);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_trace(rec(13 * kSec, obs::TraceKind::kTakeover, mon, 1), ring);
  EXPECT_EQ(sink.count("failover-latency"), 1u);
}

TEST(FailoverLatencyTest, TracksActiveVmAcrossTakeovers) {
  obs::TraceRing ring;
  const auto mon = ring.intern("ecd1/monitor");
  CollectSink sink;
  FailoverLatencyInvariant inv(1, 1 * kSec);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_trace(rec(10 * kSec + 300'000'000, obs::TraceKind::kTakeover, mon, 1), ring);
  // VM 1 is now active: a kill of rebooted-but-standby VM 0 needs no answer.
  inv.on_injection(reboot_ev(30 * kSec, "c11", 0, 0));
  inv.on_injection(kill_ev(40 * kSec, "c11", 0, 0));
  inv.on_sample(50 * kSec);
  EXPECT_TRUE(sink.got.empty());
  // But a kill of the new active VM 1 does.
  inv.on_injection(kill_ev(60 * kSec, "c12", 0, 1));
  inv.on_sample(70 * kSec);
  EXPECT_EQ(sink.count("failover-latency"), 1u);
}

TEST(FailoverLatencyTest, NoSuccessorAnswersThePendingKill) {
  obs::TraceRing ring;
  const auto mon = ring.intern("ecd1/monitor");
  CollectSink sink;
  FailoverLatencyInvariant inv(1, 1 * kSec);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_trace(rec(10 * kSec + 400'000'000, obs::TraceKind::kNoSuccessor, mon, 0), ring);
  inv.on_sample(30 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

TEST(FailoverLatencyTest, MonitorSourceParsing) {
  EXPECT_EQ(monitor_source_ecd("ecd1/monitor"), std::size_t{0});
  EXPECT_EQ(monitor_source_ecd("ecd12/monitor"), std::size_t{11});
  EXPECT_FALSE(monitor_source_ecd("c11/fta").has_value());
  EXPECT_FALSE(monitor_source_ecd("ecd0/monitor").has_value());
  EXPECT_FALSE(monitor_source_ecd("ecdX/monitor").has_value());
  EXPECT_FALSE(monitor_source_ecd("ecd1/tsc").has_value());
}

// ---------------------------------------------------------------------------
// SynctimeMonotonicityInvariant

TEST(SynctimeMonotonicityTest, BackwardStepBeyondToleranceFires) {
  CollectSink sink;
  std::int64_t value = 100 * kSec;
  SynctimeMonotonicityInvariant inv(1, 50'000.0,
                                    [&](std::size_t) { return std::optional<std::int64_t>(value); });
  inv.bind(&sink);
  inv.on_sample(1 * kSec);
  value += kSec;
  inv.on_sample(2 * kSec);
  EXPECT_TRUE(sink.got.empty());
  value -= 200'000; // 200 us backwards, tolerance 50 us
  inv.on_sample(3 * kSec);
  ASSERT_EQ(sink.count("synctime-monotonic"), 1u);
  EXPECT_NE(sink.got[0].message.find("backwards"), std::string::npos);
}

TEST(SynctimeMonotonicityTest, SmallFailoverStepWithinToleranceIsSilent) {
  CollectSink sink;
  std::int64_t value = 100 * kSec;
  SynctimeMonotonicityInvariant inv(1, 50'000.0,
                                    [&](std::size_t) { return std::optional<std::int64_t>(value); });
  inv.bind(&sink);
  inv.on_sample(1 * kSec);
  value -= 20'000; // a fail-over step inside the tolerance
  inv.on_sample(2 * kSec);
  value += kSec;
  inv.on_sample(3 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

TEST(SynctimeMonotonicityTest, UnpublishedClockIsSkipped) {
  CollectSink sink;
  SynctimeMonotonicityInvariant inv(1, 50'000.0,
                                    [](std::size_t) { return std::optional<std::int64_t>{}; });
  inv.bind(&sink);
  inv.on_sample(1 * kSec);
  inv.on_sample(2 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

// ---------------------------------------------------------------------------
// FaultHypothesisInvariant

TEST(FaultHypothesisTest, DoubleKillFires) {
  CollectSink sink;
  FaultHypothesisInvariant inv(2, 2);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  EXPECT_TRUE(sink.got.empty());
  inv.on_injection(kill_ev(12 * kSec, "c12", 0, 1));
  ASSERT_EQ(sink.count("fault-hypothesis"), 1u);
  EXPECT_NE(sink.got[0].message.find("ecd1"), std::string::npos);
}

TEST(FaultHypothesisTest, SequentialKillsWithRebootBetweenAreSilent) {
  CollectSink sink;
  FaultHypothesisInvariant inv(2, 2);
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_injection(reboot_ev(30 * kSec, "c11", 0, 0));
  inv.on_injection(kill_ev(31 * kSec, "c12", 0, 1));
  inv.on_injection(reboot_ev(51 * kSec, "c12", 0, 1));
  // Kills on different nodes may overlap freely.
  inv.on_injection(kill_ev(60 * kSec, "c11", 0, 0));
  inv.on_injection(kill_ev(60 * kSec, "c21", 1, 0));
  EXPECT_TRUE(sink.got.empty());
}

TEST(FaultHypothesisTest, LiveSamplerLatchesOnePerEpisode) {
  CollectSink sink;
  std::size_t down = 0;
  FaultHypothesisInvariant inv(1, 2, [&](std::size_t) { return down; });
  inv.bind(&sink);
  inv.on_sample(1 * kSec);
  down = 2;
  inv.on_sample(2 * kSec);
  inv.on_sample(3 * kSec); // same episode: no second report
  EXPECT_EQ(sink.count("fault-hypothesis"), 1u);
  down = 1;
  inv.on_sample(4 * kSec);
  down = 2;
  inv.on_sample(5 * kSec); // new episode
  EXPECT_EQ(sink.count("fault-hypothesis"), 2u);
}

// ---------------------------------------------------------------------------
// ConservationInvariant

TEST(ConservationTest, AggregateMaskAndQuorumConsistency) {
  obs::TraceRing ring;
  const auto src = ring.intern("c11/fta");
  CollectSink sink;
  ConservationInvariant inv(3, {});
  inv.bind(&sink);
  inv.on_trace(rec(1 * kSec, obs::TraceKind::kAggregate, src, 3, 0b0111), ring);
  inv.on_trace(rec(2 * kSec, obs::TraceKind::kNoQuorum, src, 2, 0b0011), ring);
  EXPECT_TRUE(sink.got.empty());
  inv.on_trace(rec(3 * kSec, obs::TraceKind::kAggregate, src, 3, 0b0011), ring);
  EXPECT_EQ(sink.count("conservation"), 1u); // mask has 2 bits, a says 3
  inv.on_trace(rec(4 * kSec, obs::TraceKind::kAggregate, src, 2, 0b0011), ring);
  EXPECT_EQ(sink.count("conservation"), 2u); // below the 2f+1 quorum
  inv.on_trace(rec(5 * kSec, obs::TraceKind::kNoQuorum, src, 3, 0b0111), ring);
  EXPECT_EQ(sink.count("conservation"), 3u); // no-quorum despite quorum
}

TEST(ConservationTest, KillRebootAccountingMatchesStats) {
  CollectSink sink;
  faults::InjectorStats stats;
  ConservationInvariant inv(0, [&] { return stats; });
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  inv.on_injection(reboot_ev(30 * kSec, "c11", 0, 0));
  inv.on_injection(kill_ev(40 * kSec, "c21", 1, 0)); // reboot still pending at end
  stats.total_kills = 2;
  stats.reboots = 1;
  stats.pending_reboots = 1;
  inv.finalize(50 * kSec);
  EXPECT_TRUE(sink.got.empty());
}

TEST(ConservationTest, DroppedRebootAccountingFires) {
  CollectSink sink;
  faults::InjectorStats stats;
  ConservationInvariant inv(0, [&] { return stats; });
  inv.bind(&sink);
  inv.on_injection(kill_ev(10 * kSec, "c11", 0, 0));
  // The regression the pending_reboots field fixes: a kill whose reboot
  // fell past the end of the run used to vanish from the accounting.
  stats.total_kills = 1;
  stats.reboots = 0;
  stats.pending_reboots = 0;
  inv.finalize(50 * kSec);
  EXPECT_GE(sink.count("conservation"), 1u);
}

TEST(ConservationTest, RebootWithoutKillFires) {
  CollectSink sink;
  ConservationInvariant inv(0, {});
  inv.bind(&sink);
  inv.on_injection(reboot_ev(10 * kSec, "c11", 0, 0));
  EXPECT_EQ(sink.count("conservation"), 1u);
}

// ---------------------------------------------------------------------------
// InvariantSuite on a real scenario.

TEST(InvariantSuiteTest, HealthyFaultInjectionRunIsClean) {
  FuzzCase c;
  c.duration_ns = 90 * kSec;
  c.injector.gm_kill_period_ns = 25 * kSec + 1;
  c.injector.gm_downtime_ns = 12 * kSec + 1;
  c.injector.standby_kills_per_hour = 90.0;
  c.injector.standby_min_gap_ns = 15 * kSec + 1;
  c.injector.standby_downtime_ns = 12 * kSec + 1;
  const CaseResult r = run_case(c);
  ASSERT_TRUE(r.brought_up);
  EXPECT_GT(r.injector_stats.total_kills, 2u) << "the run must actually exercise fail-over";
  EXPECT_EQ(r.summary, "ok") << r.summary;
  EXPECT_TRUE(r.violations.empty());
}

TEST(InvariantSuiteTest, RawDoubleKillIsCaught) {
  FuzzCase c;
  c.duration_ns = 60 * kSec;
  c.replay.raw = true;
  c.replay.faults = {{45 * kSec + 1, 1, 0, 20 * kSec}, {47 * kSec + 1, 1, 1, 20 * kSec}};
  const CaseResult r = run_case(c);
  ASSERT_TRUE(r.brought_up);
  EXPECT_EQ(r.injector_stats.total_kills, 2u);
  ASSERT_FALSE(r.violations.empty());
  bool hypothesis = false;
  for (const Violation& v : r.violations) hypothesis |= v.invariant == "fault-hypothesis";
  EXPECT_TRUE(hypothesis) << r.summary;
}

TEST(InvariantSuiteTest, NonRawScheduleRespectsGuardAndStaysClean) {
  FuzzCase c;
  c.duration_ns = 60 * kSec;
  c.replay.raw = false; // the guard must skip the second, illegal kill
  c.replay.faults = {{45 * kSec + 1, 1, 0, 20 * kSec}, {47 * kSec + 1, 1, 1, 20 * kSec}};
  const CaseResult r = run_case(c);
  ASSERT_TRUE(r.brought_up);
  EXPECT_EQ(r.injector_stats.total_kills, 1u);
  EXPECT_EQ(r.injector_stats.skipped_fault_hypothesis, 1u);
  EXPECT_EQ(r.summary, "ok") << r.summary;
}

// The headline shrink story: a seeded 12-event failing schedule reduces
// to the minimal reproducer (the one overlapping kill pair).
TEST(InvariantSuiteTest, TwelveEventScheduleShrinksToMinimalReproducer) {
  FuzzCase c;
  c.scenario.seed = 42;
  c.duration_ns = 120 * kSec;
  c.replay.raw = true;
  const std::int64_t d = 15 * kSec;
  c.replay.faults = {
      {45 * kSec + 1, 0, 0, d}, {48 * kSec + 1, 1, 0, d},  {52 * kSec + 1, 2, 1, d},
      {66 * kSec + 1, 3, 0, d}, {70 * kSec + 1, 0, 1, d},  {74 * kSec + 1, 1, 0, d},
      {80 * kSec + 1, 2, 0, d}, {84 * kSec + 1, 2, 1, d},  // <- overlap on ecd3
      {90 * kSec + 1, 3, 1, d}, {95 * kSec + 1, 0, 0, d},  {100 * kSec + 1, 1, 1, d},
      {105 * kSec + 1, 3, 0, d},
  };
  const ShrinkOutcome sh = shrink_case(c);
  EXPECT_TRUE(sh.reproduced);
  EXPECT_EQ(sh.target_invariant, "fault-hypothesis");
  EXPECT_EQ(sh.stats.initial_size, 12u);
  EXPECT_LE(sh.stats.final_size, 3u);
  ASSERT_LE(sh.minimized.replay.size(), 3u);
  // The minimal schedule still violates the hypothesis when replayed.
  const CaseResult r = run_case(sh.minimized);
  bool hypothesis = false;
  for (const Violation& v : r.violations) hypothesis |= v.invariant == "fault-hypothesis";
  EXPECT_TRUE(hypothesis);
}

} // namespace
} // namespace tsn::check
