#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tsn::check {
namespace {

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(DdminTest, ReducesToMinimalFailingPair) {
  // Failure requires both 3 and 7 in the candidate; everything else is
  // noise ddmin must strip.
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  ShrinkStats stats;
  const std::vector<int> min = ddmin(
      items, [](const std::vector<int>& c) { return contains(c, 3) && contains(c, 7); }, &stats);

  ASSERT_EQ(min.size(), 2u);
  EXPECT_TRUE(contains(min, 3));
  EXPECT_TRUE(contains(min, 7));
  EXPECT_EQ(stats.initial_size, 12u);
  EXPECT_EQ(stats.final_size, 2u);
  EXPECT_GT(stats.tests_run, 0u);
}

TEST(DdminTest, SingleCulpritReducesToOne) {
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> min =
      ddmin(items, [](const std::vector<int>& c) { return contains(c, 5); });
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(min[0], 5);
}

TEST(DdminTest, AlwaysFailingPredicateReducesToEmpty) {
  std::vector<int> items{1, 2, 3, 4};
  const std::vector<int> min = ddmin(items, [](const std::vector<int>&) { return true; });
  EXPECT_TRUE(min.empty());
}

TEST(DdminTest, PreservesRelativeOrder) {
  // The minimal set is {2, 9, 4} and must come back in input order.
  std::vector<int> items{8, 2, 6, 9, 1, 4, 7};
  const std::vector<int> min = ddmin(items, [](const std::vector<int>& c) {
    return contains(c, 2) && contains(c, 9) && contains(c, 4);
  });
  const std::vector<int> expected{2, 9, 4};
  EXPECT_EQ(min, expected);
}

TEST(DdminTest, RespectsTestBudget) {
  std::vector<int> items(64);
  for (int i = 0; i < 64; ++i) items[static_cast<std::size_t>(i)] = i;
  ShrinkStats stats;
  const std::vector<int> min = ddmin(
      items, [](const std::vector<int>& c) { return contains(c, 17) && contains(c, 42); }, &stats,
      /*max_tests=*/5);
  // With an exhausted budget the result may not be minimal, but it must
  // still be a failing subset and the budget must be honored.
  EXPECT_LE(stats.tests_run, 5u);
  EXPECT_TRUE(contains(min, 17));
  EXPECT_TRUE(contains(min, 42));
}

TEST(DdminTest, EmptyInputStaysEmpty) {
  std::vector<int> items;
  ShrinkStats stats;
  const std::vector<int> min =
      ddmin(items, [](const std::vector<int>&) { return true; }, &stats);
  EXPECT_TRUE(min.empty());
  EXPECT_EQ(stats.tests_run, 0u);
}

} // namespace
} // namespace tsn::check
