// Snapshot-based incremental ddmin (DESIGN.md §12): every probe restores
// the converged post-calibration world from a SimSnapshot instead of
// re-building and re-converging it, so minimizing the headline 12-fault
// schedule must cost strictly fewer simulated events than the full-re-run
// shrinker while landing on the same minimal reproducer.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/fuzz.hpp"

namespace tsn::check {
namespace {

constexpr std::int64_t kSec = 1'000'000'000LL;

FuzzCase twelve_event_case() {
  FuzzCase c;
  c.scenario.seed = 42;
  c.duration_ns = 120 * kSec;
  c.replay.raw = true;
  const std::int64_t d = 15 * kSec;
  c.replay.faults = {
      {45 * kSec + 1, 0, 0, d}, {48 * kSec + 1, 1, 0, d},  {52 * kSec + 1, 2, 1, d},
      {66 * kSec + 1, 3, 0, d}, {70 * kSec + 1, 0, 1, d},  {74 * kSec + 1, 1, 0, d},
      {80 * kSec + 1, 2, 0, d}, {84 * kSec + 1, 2, 1, d},  // <- overlap on ecd3
      {90 * kSec + 1, 3, 1, d}, {95 * kSec + 1, 0, 0, d},  {100 * kSec + 1, 1, 1, d},
      {105 * kSec + 1, 3, 0, d},
  };
  return c;
}

TEST(IncrementalShrinkTest, TwelveEventCaseShrinksWithStrictlyFewerEvents) {
  const FuzzCase c = twelve_event_case();

  const ShrinkOutcome full = shrink_case(c);
  ASSERT_TRUE(full.reproduced);
  ASSERT_EQ(full.target_invariant, "fault-hypothesis");
  ASSERT_GT(full.events_simulated, 0u);

  const ShrinkOutcome inc = shrink_case_incremental(c);
  ASSERT_TRUE(inc.reproduced);
  EXPECT_EQ(inc.target_invariant, "fault-hypothesis");
  EXPECT_EQ(inc.stats.initial_size, 12u);
  EXPECT_LE(inc.stats.final_size, 3u);
  ASSERT_LE(inc.minimized.replay.size(), 3u);

  // The minimal schedule still violates the hypothesis when replayed
  // from a cold boot (no snapshot involved).
  const CaseResult r = run_case(inc.minimized);
  bool hypothesis = false;
  for (const Violation& v : r.violations)
    hypothesis |= v.invariant == "fault-hypothesis";
  EXPECT_TRUE(hypothesis) << r.summary;

  // The whole point: one paid bring-up, every probe from the snapshot.
  ASSERT_GT(inc.events_simulated, 0u);
  EXPECT_LT(inc.events_simulated, full.events_simulated)
      << "incremental=" << inc.events_simulated
      << " full=" << full.events_simulated;
}

TEST(IncrementalShrinkTest, AttackCaseFallsBackToFullShrinker) {
  // Attack schedules arm against absolute times the snapshot protocol
  // does not rewind; shrink_case_incremental must refuse and delegate.
  FuzzCase c;
  c.duration_ns = 60 * kSec;
  c.replay.raw = true;
  c.replay.faults = {{45 * kSec + 1, 1, 0, 20 * kSec},
                     {47 * kSec + 1, 1, 1, 20 * kSec}};
  attack::AttackSpec s;
  s.kind = attack::AttackKind::kDelayConst;
  s.ecd = 0;
  s.start_ns = 10 * kSec + 1;
  s.duration_ns = 10 * kSec;
  s.magnitude = 2'000.0; // covert: rides along without its own verdict
  s.expect_excluded = false;
  c.attacks.push_back(s);

  const ShrinkOutcome inc = shrink_case_incremental(c);
  EXPECT_TRUE(inc.reproduced);
  EXPECT_EQ(inc.target_invariant, "fault-hypothesis");
  EXPECT_LE(inc.stats.final_size, 2u);
  EXPECT_GT(inc.events_simulated, 0u);
}

} // namespace
} // namespace tsn::check
