#include <gtest/gtest.h>

#include "measure/bound.hpp"
#include "measure/path_delay.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "sim/simulation.hpp"

namespace tsn::measure {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

TEST(BoundTest, PaperExperiment1Values) {
  // Section III-B: dmin 4120, dmax 9188 -> E 5068, Pi 12.636 us.
  BoundInputs in;
  in.dmin_ns = 4120;
  in.dmax_ns = 9188;
  const auto b = compute_bound(in);
  EXPECT_DOUBLE_EQ(b.reading_error_ns, 5068.0);
  EXPECT_DOUBLE_EQ(b.drift_offset_ns, 1250.0);
  EXPECT_DOUBLE_EQ(b.multiplier, 2.0);
  EXPECT_DOUBLE_EQ(b.pi_ns, 12'636.0);
}

TEST(BoundTest, ScalesWithSyncInterval) {
  BoundInputs in;
  in.dmin_ns = 0;
  in.dmax_ns = 0;
  in.sync_interval_ns = 1'000'000'000; // 1 s
  const auto b = compute_bound(in);
  EXPECT_DOUBLE_EQ(b.drift_offset_ns, 10'000.0); // 2 * 5ppm * 1s
  EXPECT_DOUBLE_EQ(b.pi_ns, 20'000.0);
}

TEST(BoundTest, MoreCLocksTightenMultiplier) {
  BoundInputs in;
  in.dmin_ns = 0;
  in.dmax_ns = 1000;
  in.n = 7;
  in.f = 1;
  const auto b = compute_bound(in);
  EXPECT_DOUBLE_EQ(b.multiplier, 1.25); // (7-2)/(7-3)
}

time::PhcModel quiet() {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = 0.0;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

TEST(PathDelayMeterTest, MeasuresAsymmetricPairDelays) {
  Simulation sim{9};
  net::Nic a(sim, quiet(), net::MacAddress::from_u64(0xA), "a");
  net::Nic b(sim, quiet(), net::MacAddress::from_u64(0xB), "b");
  net::LinkConfig lc;
  lc.a_to_b = {1000, 0.0};
  lc.b_to_a = {3000, 0.0};
  net::Link link(sim, a.port(), b.port(), lc, "ab");

  PathDelayMeter meter(sim, 0, "meter");
  meter.add_node("a", &a);
  meter.add_node("b", &b);
  bool done = false;
  meter.run(5, 10_ms, [&] { done = true; });
  sim.run_until(SimTime(1_s));
  ASSERT_TRUE(done);
  EXPECT_EQ(meter.probes_received(), 10u);
  // Probe frames: 46B payload -> 64B minimum frame + 20B overhead = 672 ns
  // serialization (true transit includes it), plus propagation.
  const auto& ab = meter.pairs().at({"a", "b"});
  const auto& ba = meter.pairs().at({"b", "a"});
  EXPECT_NEAR(ab.delay_ns.mean(), 1000.0 + 672.0, 2.0);
  EXPECT_NEAR(ba.delay_ns.mean(), 3000.0 + 672.0, 2.0);
  EXPECT_NEAR(meter.reading_error_ns(), 2000.0, 4.0);
}

TEST(PathDelayMeterTest, GammaOverSelectedPaths) {
  Simulation sim{9};
  net::Nic a(sim, quiet(), net::MacAddress::from_u64(0xA), "a");
  net::Nic b(sim, quiet(), net::MacAddress::from_u64(0xB), "b");
  net::LinkConfig lc;
  lc.a_to_b = {1000, 0.0};
  lc.b_to_a = {1400, 0.0};
  net::Link link(sim, a.port(), b.port(), lc, "ab");
  PathDelayMeter meter(sim, 0, "meter");
  meter.add_node("a", &a);
  meter.add_node("b", &b);
  meter.run(3, 10_ms);
  sim.run_until(SimTime(1_s));
  // gamma over only a->b: zero jitter -> max == min -> gamma == 0.
  EXPECT_NEAR(meter.gamma_ns("a", {"b"}), 0.0, 1.0);
  // Unknown destination contributes nothing.
  EXPECT_EQ(meter.gamma_ns("a", {"zzz"}), 0.0);
}

TEST(PathDelayMeterTest, DeadDestinationYieldsNoSamples) {
  Simulation sim{9};
  net::Nic a(sim, quiet(), net::MacAddress::from_u64(0xA), "a");
  net::Nic b(sim, quiet(), net::MacAddress::from_u64(0xB), "b");
  net::LinkConfig lc;
  net::Link link(sim, a.port(), b.port(), lc, "ab");
  b.set_up(false);
  PathDelayMeter meter(sim, 0, "meter");
  meter.add_node("a", &a);
  meter.add_node("b", &b);
  meter.run(3, 10_ms);
  sim.run_until(SimTime(1_s));
  EXPECT_EQ(meter.pairs().count({"a", "b"}), 0u);
}

} // namespace
} // namespace tsn::measure
