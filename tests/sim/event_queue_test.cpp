#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsn::sim {
namespace {

using namespace tsn::sim::literals;

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(30), [&] { order.push_back(3); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime(100), [&order, i] { order.push_back(i); });
  }
  while (auto e = q.try_pop()) e->fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(SimTime(2), [&] { order.push_back(2); });
  q.schedule(SimTime(3), [&] { order.push_back(3); });
  h.cancel();
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(5), [] {});
  q.schedule(SimTime(9), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime(9));
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  auto a = q.schedule(SimTime(1), [] {});
  auto b = q.schedule(SimTime(2), [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel(); // must not crash
}

TEST(EventQueueTest, PoppedReportsScheduledTime) {
  EventQueue q;
  q.schedule(SimTime(1234), [] {});
  auto e = q.try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->time, SimTime(1234));
}

TEST(EventQueueTest, PostedEventsInterleaveWithScheduled) {
  EventQueue q;
  std::vector<int> order;
  q.post(SimTime(20), [&] { order.push_back(2); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.post(SimTime(30), [&] { order.push_back(3); });
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, LiveSizeTracksCancellation) {
  EventQueue q;
  auto a = q.schedule(SimTime(1), [] {});
  auto b = q.schedule(SimTime(2), [] {});
  q.post(SimTime(3), [] {});
  EXPECT_EQ(q.live_size(), 3u);
  EXPECT_EQ(q.size_upper_bound(), 3u);
  a.cancel();
  // The cancelled entry still sits in the heap, but live_size is exact.
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_EQ(q.size_upper_bound(), 3u);
  a.cancel(); // double cancel must not drift the count
  b.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_EQ(q.live_size(), 0u);
  EXPECT_EQ(q.size_upper_bound(), 0u);
}

TEST(EventQueueTest, HandleInertAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(1), [] {});
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_FALSE(h.pending());
  h.cancel(); // must be a no-op, not cancel some future event
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueueTest, StaleHandleDoesNotCancelSlotReuse) {
  EventQueue q;
  // Fire the first event so its slab slot is freed, then schedule another
  // event that reuses the slot. The stale handle must not affect it.
  EventHandle stale = q.schedule(SimTime(1), [] {});
  ASSERT_TRUE(q.try_pop().has_value());
  bool fired = false;
  EventHandle fresh = q.schedule(SimTime(2), [&] { fired = true; });
  stale.cancel();
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  while (auto e = q.try_pop()) e->fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, ManyCancellationsReuseSlab) {
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 16; ++i) {
      handles.push_back(q.schedule(SimTime(round * 100 + i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    EXPECT_EQ(q.live_size(), 0u);
    EXPECT_TRUE(q.empty());
  }
}

} // namespace
} // namespace tsn::sim
