#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsn::sim {
namespace {

using namespace tsn::sim::literals;

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(30), [&] { order.push_back(3); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime(100), [&order, i] { order.push_back(i); });
  }
  while (auto e = q.try_pop()) e->fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(SimTime(2), [&] { order.push_back(2); });
  q.schedule(SimTime(3), [&] { order.push_back(3); });
  h.cancel();
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(5), [] {});
  q.schedule(SimTime(9), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime(9));
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  auto a = q.schedule(SimTime(1), [] {});
  auto b = q.schedule(SimTime(2), [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel(); // must not crash
}

TEST(EventQueueTest, PoppedReportsScheduledTime) {
  EventQueue q;
  q.schedule(SimTime(1234), [] {});
  auto e = q.try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->time, SimTime(1234));
}

} // namespace
} // namespace tsn::sim
