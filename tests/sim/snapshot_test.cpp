// SimSnapshot property tests (DESIGN.md §12): snapshot -> run N events ->
// rollback -> re-run must be byte-identical (same trace, same terminal
// snapshot hash), randomized over seeds; plus a wheel-state round-trip
// regression that restores at an instant where the timing wheel's L1/L2
// cursors sit mid-ring and standing events straddle the level horizons.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"

namespace {

using tsn::sim::SimTime;

struct Tick {
  std::int64_t t_ns = 0;
  std::int64_t value = 0;
  std::uint64_t count = 0;

  bool operator==(const Tick&) const = default;
};

// Minimal honest Persistent: one standing periodic event, RNG-driven
// state, every fire appended to a shared log. The periods below are
// chosen so standing events live in wheel level 0, level 1, level 2 and
// the beyond-horizon heap all at once.
class Ticker final : public tsn::sim::Persistent {
 public:
  Ticker(tsn::sim::Simulation& sim, std::string name, std::int64_t period_ns,
         std::vector<Tick>* log)
      : sim_(sim), name_(std::move(name)), period_ns_(period_ns),
        rng_(sim.make_rng(name_)), log_(log) {}

  void start(std::int64_t first_due_ns) {
    active_ = true;
    arm(first_due_ns);
  }

  const char* persist_name() const override { return name_.c_str(); }

  void save_state(tsn::sim::StateWriter& w) override {
    w.b(active_);
    w.i64(next_due_ns_);
    w.u64(count_);
    w.i64(acc_);
    w.rng(rng_);
  }

  void load_state(tsn::sim::StateReader& r) override {
    active_ = r.b();
    next_due_ns_ = r.i64();
    count_ = r.u64();
    acc_ = r.i64();
    r.rng(rng_);
    if (active_) arm(next_due_ns_);
  }

  std::size_t live_events() const override { return active_ ? 1u : 0u; }

  std::uint64_t count() const { return count_; }
  std::int64_t acc() const { return acc_; }

 private:
  void arm(std::int64_t due_ns) {
    next_due_ns_ = due_ns;
    sim_.at(SimTime{due_ns}, [this] {
      const SimTime t = sim_.now();
      const std::int64_t v = rng_.uniform_int(0, 1'000'000);
      ++count_;
      acc_ += v;
      if (log_) log_->push_back({t.ns(), v, count_});
      arm(t.ns() + period_ns_);
    });
  }

  tsn::sim::Simulation& sim_;
  std::string name_;
  std::int64_t period_ns_;
  std::int64_t next_due_ns_ = 0;
  std::uint64_t count_ = 0;
  std::int64_t acc_ = 0;
  bool active_ = false;
  tsn::util::RngStream rng_;
  std::vector<Tick>* log_;
};

struct World {
  explicit World(std::uint64_t seed) : sim(seed) {
    // Periods that keep standing events spread over the whole wheel:
    //   level 0 slot span is 2^12 ns (~4 us), level-0 horizon ~2.1 ms,
    //   level-1 horizon ~1.07 s, level-2 horizon ~550 s. A 1 ms ticker
    //   stays in L0/L1, a 3 s ticker in L2 and the 700 s ticker is a
    //   permanent heap spill.
    tickers.push_back(std::make_unique<Ticker>(sim, "fast", 1'000'000, &log));
    tickers.push_back(std::make_unique<Ticker>(sim, "mid", 137'000'000, &log));
    tickers.push_back(std::make_unique<Ticker>(sim, "slow", 3'000'000'000, &log));
    tickers.push_back(
        std::make_unique<Ticker>(sim, "glacial", 700'000'000'000, &log));
    // Deliberately unaligned first-due times so the wheel cursors sit
    // mid-ring at every snapshot instant.
    std::int64_t phase = 17'321;
    for (auto& t : tickers) {
      t->start(phase);
      phase += 911'117;
    }
    for (auto& t : tickers) targets.push_back(t.get());
  }

  tsn::sim::SimSnapshot snapshot() const {
    return tsn::sim::take_snapshot(sim, targets);
  }

  /// run_until() leaves now() at the last fired event; pin it to the
  /// boundary so snapshot instants are explicit.
  void run_to(std::int64_t t_ns) {
    sim.run_until(SimTime{t_ns});
    sim.advance_to(SimTime{t_ns});
  }

  tsn::sim::Simulation sim;
  std::vector<std::unique_ptr<Ticker>> tickers;
  std::vector<tsn::sim::Persistent*> targets;
  std::vector<Tick> log;
};

TEST(SimSnapshotTest, RollbackReplayIsByteIdentical) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull, 0xdeadbeefull}) {
    World w(seed);
    w.run_to(50'000'000);
    ASSERT_TRUE(tsn::sim::components_quiescent(w.sim, w.targets)) << seed;

    const tsn::sim::SimSnapshot snap = w.snapshot();
    EXPECT_EQ(snap.now_ns, 50'000'000);
    EXPECT_NE(snap.hash, 0u);

    // Segment A: run a few hundred events past the snapshot.
    w.log.clear();
    w.run_to(3'200'000'000);
    const std::vector<Tick> segment_a = w.log;
    const tsn::sim::SimSnapshot end_a = w.snapshot();
    ASSERT_GT(segment_a.size(), 100u) << seed;

    // Rollback and replay the same window.
    tsn::sim::restore_snapshot(w.sim, w.targets, snap);
    EXPECT_EQ(w.sim.now().ns(), snap.now_ns);
    const tsn::sim::SimSnapshot resnap = w.snapshot();
    EXPECT_EQ(resnap.hash, snap.hash) << seed;
    EXPECT_EQ(resnap.bytes, snap.bytes) << seed;

    w.log.clear();
    w.run_to(3'200'000'000);
    const tsn::sim::SimSnapshot end_b = w.snapshot();

    EXPECT_EQ(w.log, segment_a) << "replay diverged, seed=" << seed;
    EXPECT_EQ(end_b.hash, end_a.hash) << seed;
    EXPECT_EQ(end_b.bytes, end_a.bytes) << seed;
    EXPECT_EQ(end_b.now_ns, end_a.now_ns) << seed;
  }
}

TEST(SimSnapshotTest, EventsExecutedIsNotRewoundByRestore) {
  World w(3);
  w.run_to(50'000'000);
  const tsn::sim::SimSnapshot snap = w.snapshot();
  w.run_to(500'000'000);
  const std::uint64_t before = w.sim.events_executed();
  EXPECT_GT(before, snap.events_executed);
  tsn::sim::restore_snapshot(w.sim, w.targets, snap);
  EXPECT_GE(w.sim.events_executed(), before);
  w.run_to(500'000'000);
  EXPECT_GT(w.sim.events_executed(), before);
}

TEST(SimSnapshotTest, HashCoversComponentState) {
  // Different seeds produce different RNG trajectories, so the archives
  // of two structurally identical worlds must differ.
  World a(1), b(2);
  a.run_to(50'000'000);
  b.run_to(50'000'000);
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_NE(sa.hash, sb.hash);
  EXPECT_NE(sa.bytes, sb.bytes);
}

TEST(SimSnapshotTest, RestoreWithMismatchedTargetOrderThrows) {
  World w(5);
  w.run_to(50'000'000);
  const tsn::sim::SimSnapshot snap = w.snapshot();
  std::vector<tsn::sim::Persistent*> shuffled(w.targets.rbegin(),
                                              w.targets.rend());
  EXPECT_THROW(tsn::sim::restore_snapshot(w.sim, shuffled, snap),
               std::runtime_error);
}

// Regression: restore at instants chosen to land just before and just
// after wheel level-1 / level-2 cursor boundaries (level-1 slots are
// 2^21 ns wide, level-2 slots 2^30 ns wide). After the queue clear the
// standing events are re-inserted against freshly positioned cursors;
// any re-bucketing error shows up as a divergent replay.
TEST(SimSnapshotTest, WheelCursorBoundaryRoundTrip) {
  constexpr std::int64_t kL1 = 1ll << 21; // 2.097 ms
  constexpr std::int64_t kL2 = 1ll << 30; // 1.074 s
  const std::int64_t instants[] = {
      3 * kL1 - 5,  3 * kL1 + 5,         // straddle an L1 slot boundary
      2 * kL2 - 7,  2 * kL2 + 7,         // straddle an L2 slot boundary
      5 * kL2 + 3 * kL1 + 1,             // deep mid-ring on both levels
  };
  for (std::int64_t t_snap : instants) {
    World w(11);
    w.run_to(t_snap);
    ASSERT_TRUE(tsn::sim::components_quiescent(w.sim, w.targets)) << t_snap;
    const tsn::sim::SimSnapshot snap = w.snapshot();

    const std::int64_t t_end = t_snap + 4 * kL2 + 3; // crosses L2 cascades
    w.log.clear();
    w.run_to(t_end);
    const std::vector<Tick> control = w.log;
    const tsn::sim::SimSnapshot end_control = w.snapshot();

    tsn::sim::restore_snapshot(w.sim, w.targets, snap);
    w.log.clear();
    w.run_to(t_end);

    EXPECT_EQ(w.log, control) << "t_snap=" << t_snap;
    const tsn::sim::SimSnapshot end_replay = w.snapshot();
    EXPECT_EQ(end_replay.hash, end_control.hash) << "t_snap=" << t_snap;
  }
}

// EventQueue::clear() invalidates outstanding handles without breaking
// the sequence counter: events re-scheduled after a clear pop in the
// same relative order as in a fresh queue, and cancel() on a stale
// handle is a safe no-op.
TEST(SimSnapshotTest, EventQueueClearRoundTrip) {
  constexpr std::int64_t kL1 = 1ll << 21;
  constexpr std::int64_t kL2 = 1ll << 30;
  const std::int64_t times[] = {
      100,          kL1 - 1,      kL1,           kL1 + 1,
      3 * kL1 + 17, kL2 - 1,      kL2,           kL2 + 1,
      7 * kL2 + 5,  600ll * kL2, // beyond the level-2 horizon: heap spill
  };

  auto fill = [&](tsn::sim::EventQueue& q, std::vector<int>* order) {
    std::vector<tsn::sim::EventHandle> handles;
    int tag = 0;
    for (std::int64_t t : times) {
      const int id = tag++;
      handles.push_back(
          q.schedule(SimTime{t}, [order, id] { order->push_back(id); }));
    }
    return handles;
  };

  tsn::sim::EventQueue fresh;
  std::vector<int> fresh_order;
  fill(fresh, &fresh_order);
  std::vector<std::int64_t> fresh_times;
  while (auto p = fresh.try_pop()) {
    fresh_times.push_back(p->time.ns());
    p->fn();
  }

  tsn::sim::EventQueue q;
  std::vector<int> dead_order;
  auto stale = fill(q, &dead_order);
  // Drain a prefix so the wheel cursors sit mid-ring, then clear.
  for (int i = 0; i < 4; ++i) {
    auto p = q.try_pop();
    ASSERT_TRUE(p.has_value());
    p->fn();
  }
  q.clear();
  EXPECT_EQ(q.live_size(), 0u);
  EXPECT_FALSE(q.try_pop().has_value());
  for (auto& h : stale) {
    EXPECT_FALSE(h.pending());
    h.cancel(); // must be a safe no-op on the bumped generation
  }

  std::vector<int> replay_order;
  fill(q, &replay_order);
  std::vector<std::int64_t> replay_times;
  while (auto p = q.try_pop()) {
    replay_times.push_back(p->time.ns());
    p->fn();
  }

  EXPECT_EQ(replay_times, fresh_times);
  // Same relative pop order as the fresh queue (ids are insertion tags).
  std::vector<int> fresh_ids(fresh_order.begin() + 4, fresh_order.end());
  std::vector<int> replay_ids(replay_order.begin() + 4, replay_order.end());
  EXPECT_EQ(replay_order, fresh_order);
  EXPECT_EQ(replay_ids, fresh_ids);
}

} // namespace
