#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace tsn::sim {
namespace {

using namespace tsn::sim::literals;

// ---------------------------------------------------------------------------
// post_keyed / EventQueue semantics

TEST(PostKeyed, BoundaryEventsSortAfterInternalAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t{1000};
  // Keyed entries inserted FIRST must still pop after plain posts at the
  // same time: their sequence lives in the upper half of the key space.
  q.post_keyed(t, (1ull << 63) | 0, [&] { order.push_back(10); });
  q.post_keyed(t, (1ull << 63) | 1, [&] { order.push_back(11); });
  q.post(t, [&] { order.push_back(0); });
  q.post(t, [&] { order.push_back(1); });
  while (auto p = q.try_pop()) p->fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
}

TEST(PostKeyed, PopOrderFollowsKeyNotInsertionMoment) {
  // Two queues receive the same keyed messages in opposite insertion
  // orders; pop order must match exactly.
  std::vector<int> a, b;
  EventQueue qa, qb;
  const SimTime t{500};
  auto key = [](std::uint64_t ch, std::uint64_t seq) {
    return (1ull << 63) | (ch << 40) | seq;
  };
  qa.post_keyed(t, key(2, 0), [&] { a.push_back(20); });
  qa.post_keyed(t, key(1, 0), [&] { a.push_back(10); });
  qa.post_keyed(t, key(1, 1), [&] { a.push_back(11); });
  qb.post_keyed(t, key(1, 1), [&] { b.push_back(11); });
  qb.post_keyed(t, key(1, 0), [&] { b.push_back(10); });
  qb.post_keyed(t, key(2, 0), [&] { b.push_back(20); });
  while (auto p = qa.try_pop()) p->fn();
  while (auto p = qb.try_pop()) p->fn();
  EXPECT_EQ(a, (std::vector<int>{10, 11, 20}));
  EXPECT_EQ(a, b);
}

TEST(EventQueueMultiQueue, PendingAndPurgeAreQueueLocal) {
  // Each queue reports exact live counts independently; purging one never
  // disturbs the other's pending events (the multi-queue case the
  // partitioned runtime relies on).
  EventQueue qa, qb;
  int fired_a = 0, fired_b = 0;
  EventHandle ha = qa.schedule(SimTime{100}, [&] { ++fired_a; });
  EventHandle hb = qb.schedule(SimTime{100}, [&] { ++fired_b; });
  qa.post(SimTime{200}, [&] { ++fired_a; });
  EXPECT_EQ(qa.live_size(), 2u);
  EXPECT_EQ(qb.live_size(), 1u);

  ha.cancel();
  EXPECT_EQ(qa.live_size(), 1u); // exact immediately, before any purge
  EXPECT_TRUE(hb.pending());     // the other queue's slab is untouched
  qa.purge_dead();
  EXPECT_EQ(qa.live_size(), 1u); // purge reclaims storage, not liveness
  EXPECT_TRUE(hb.pending());
  EXPECT_EQ(qb.live_size(), 1u);

  while (auto p = qa.try_pop()) p->fn();
  while (auto p = qb.try_pop()) p->fn();
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
  EXPECT_FALSE(hb.pending());
}

TEST(RunReady, HorizonIsExclusiveLimitIsInclusive) {
  Simulation sim(1);
  std::vector<std::int64_t> fired;
  for (std::int64_t t : {10, 20, 30}) {
    sim.queue().post(SimTime{t}, [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.run_ready(SimTime{100}, 30), 2u); // 30 is the horizon: excluded
  EXPECT_EQ(fired, (std::vector<std::int64_t>{10, 20}));
  EXPECT_EQ(sim.now().ns(), 20); // not bumped to the limit
  EXPECT_EQ(sim.next_event_ns(), 30);
  EXPECT_EQ(sim.run_ready(SimTime{30}, INT64_MAX), 1u); // limit inclusive
  EXPECT_EQ(sim.next_event_ns(), INT64_MAX);
  sim.advance_to(SimTime{100});
  EXPECT_EQ(sim.now().ns(), 100);
}

// ---------------------------------------------------------------------------
// PartitionRuntime

struct PingPongWorld {
  explicit PingPongWorld(std::size_t workers)
      : rt(2, /*master_seed=*/7, workers) {
    ch01 = rt.add_channel(0, 1, 100);
    ch10 = rt.add_channel(1, 0, 100);
  }

  void start(int hops) {
    // Region 0 kicks off; each hop logs locally and forwards.
    rt.region_sim(0).queue().post(SimTime{0},
                                  [this, hops] { bounce(0, 0, hops); });
  }

  void bounce(std::size_t region, int hop, int max_hops) {
    log[region].push_back(rt.region_sim(region).now().ns() * 10 +
                          static_cast<std::int64_t>(hop % 10));
    if (hop >= max_hops) return;
    const std::size_t next = 1 - region;
    const SimTime at = rt.region_sim(region).now() + 100;
    rt.post_remote(region == 0 ? ch01 : ch10, at,
                   [this, next, hop, max_hops] { bounce(next, hop + 1, max_hops); });
  }

  PartitionRuntime rt;
  std::uint32_t ch01 = 0, ch10 = 0;
  std::vector<std::int64_t> log[2];
};

TEST(PartitionRuntime, PingPongMatchesAcrossWorkerCounts) {
  std::vector<std::int64_t> ref[2];
  for (std::size_t workers : {1u, 2u}) {
    PingPongWorld w(workers);
    w.start(50);
    const std::uint64_t ran = w.rt.run_until(SimTime{1'000'000});
    EXPECT_EQ(ran, 51u);
    EXPECT_EQ(w.rt.now().ns(), 1'000'000);
    if (workers == 1) {
      ref[0] = w.log[0];
      ref[1] = w.log[1];
    } else {
      EXPECT_EQ(w.log[0], ref[0]);
      EXPECT_EQ(w.log[1], ref[1]);
    }
    EXPECT_EQ(w.log[0].size() + w.log[1].size(), 51u);
  }
}

TEST(PartitionRuntime, LeapCrossesQuietGapsAndStops) {
  // Events seconds apart with 100 ns lookahead would need ~1e7 null
  // passes without the leap; with it this finishes instantly.
  PartitionRuntime rt(2, 1, 2);
  rt.add_channel(0, 1, 100);
  rt.add_channel(1, 0, 100);
  std::vector<std::int64_t> times;
  for (std::int64_t t = 0; t < 10; ++t) {
    const std::size_t r = static_cast<std::size_t>(t) % 2;
    rt.region_sim(r).queue().post(SimTime{t * 1'000'000'000}, [&times, &rt, r] {
      times.push_back(rt.region_sim(r).now().ns());
    });
  }
  rt.run_until(SimTime{20'000'000'000});
  EXPECT_EQ(times.size(), 10u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
}

TEST(PartitionRuntime, StagesComposeAndInterStageSchedulingWorks) {
  PartitionRuntime rt(3, 1, 2);
  rt.control_channel(0, 1);
  rt.control_channel(1, 2);
  // Events in unrelated regions run on different shard threads with no
  // ordering edge between them, so the shared counter must be atomic.
  std::atomic<int> fired{0};
  rt.region_sim(0).queue().post(SimTime{10}, [&] { ++fired; });
  rt.run_until(SimTime{1'000});
  EXPECT_EQ(fired.load(), 1);
  // Scheduling between stages must lower the region horizon again.
  rt.region_sim(1).queue().post(SimTime{2'000}, [&] { ++fired; });
  rt.region_sim(2).queue().post(SimTime{1'500}, [&] { ++fired; });
  rt.run_until(SimTime{2'000});
  EXPECT_EQ(fired.load(), 3);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rt.region_sim(r).now().ns(), 2'000);
  }
}

TEST(PartitionRuntime, ControlChannelFindOrCreate) {
  PartitionRuntime rt(2, 1, 1);
  const std::uint32_t a = rt.control_channel(0, 1);
  EXPECT_EQ(rt.control_channel(0, 1), a);
  EXPECT_NE(rt.control_channel(1, 0), a);
}

TEST(PartitionRuntime, MailboxOverflowKeepsEveryMessage) {
  // Far more same-stage messages than the ring holds: the overflow path
  // must deliver all of them, and in key order at equal times.
  PartitionRuntime rt(2, 1, 2);
  const std::uint32_t ch = rt.add_channel(0, 1, 100);
  std::vector<int> got;
  constexpr int kCount = 500; // >> Channel ring size
  rt.region_sim(0).queue().post(SimTime{0}, [&rt, ch, &got] {
    for (int i = 0; i < kCount; ++i) {
      rt.post_remote(ch, SimTime{1000}, [&got, i] { got.push_back(i); });
    }
  });
  rt.run_until(SimTime{2000});
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(PartitionRuntime, ScopeHookBracketsExecution) {
  PartitionRuntime rt(2, 1, 1);
  rt.add_channel(0, 1, 100);
  std::vector<std::string> trace;
  rt.set_region_scope_hook([&](std::size_t r, bool enter) {
    trace.push_back((enter ? "+" : "-") + std::to_string(r));
  });
  std::size_t seen_region = SIZE_MAX;
  rt.region_sim(1).queue().post(SimTime{5}, [&] {
    seen_region = PartitionRuntime::current_region();
  });
  rt.run_until(SimTime{10});
  EXPECT_EQ(seen_region, 1u);
  EXPECT_EQ(trace, (std::vector<std::string>{"+1", "-1"}));
  EXPECT_EQ(PartitionRuntime::current_region(), SIZE_MAX);
}

} // namespace
} // namespace tsn::sim
