// The timing-wheel front-end must be observationally identical to a plain
// (time, insertion-seq) priority queue: same pop order for any interleaving
// of schedules, posts, cancels and pops, across every internal boundary
// (level-0/1/2 buckets, the heap spill, and the staged behind-cursor list).
// The sweep byte-identity contract rides on this.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace tsn::sim {
namespace {

constexpr std::int64_t kL0 = 1ll << 12; // level-0 bucket span (ns)
constexpr std::int64_t kL1 = 1ll << 21; // level-1 bucket span
constexpr std::int64_t kL2 = 1ll << 30; // level-2 bucket span

// Regression: an activation that ends exactly on a level-1 bucket boundary
// rolls the cursor into the next bucket without cascading it; the scan then
// started past the cursor's own bucket and stranded its entries forever.
TEST(WheelDeterminismTest, EventSurvivesCursorRollAcrossL1Boundary) {
  EventQueue q;
  std::vector<int> order;
  // Last level-0 bucket of level-1 bucket 0, then level-1 bucket 1.
  q.schedule(SimTime(kL1 - 100), [&] { order.push_back(1); });
  q.schedule(SimTime(kL1 + 5000), [&] { order.push_back(2); });
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(WheelDeterminismTest, EventSurvivesCursorRollAcrossL2Boundary) {
  EventQueue q;
  std::vector<int> order;
  // Last level-0 bucket of the last level-1 bucket of level-2 bucket 0,
  // then level-2 bucket 1.
  q.schedule(SimTime(kL2 - 100), [&] { order.push_back(1); });
  q.schedule(SimTime(kL2 + 5000), [&] { order.push_back(2); });
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(WheelDeterminismTest, PeriodicSurvivesEveryBucketBoundary) {
  // A reschedule-on-fire periodic whose period forces the cursor across
  // every level-0 boundary alignment, including exact L1/L2 roll-overs.
  EventQueue q;
  std::int64_t fires = 0;
  std::int64_t t = 0;
  const std::int64_t period = kL0 - 1; // drifts through all alignments
  struct Tick {
    EventQueue* q;
    std::int64_t* fires;
    std::int64_t* t;
    std::int64_t period;
    void operator()() const {
      ++*fires;
      *t += period;
      if (*fires < 3000) {
        auto self = *this;
        q->post(SimTime(*t), EventFn(self));
      }
    }
  };
  q.post(SimTime(t), EventFn(Tick{&q, &fires, &t, period}));
  while (auto e = q.try_pop()) e->fn();
  EXPECT_EQ(fires, 3000);
}

// Randomized differential test against a brute-force reference model.
TEST(WheelDeterminismTest, MatchesReferenceModelUnderRandomLoad) {
  struct RefEv {
    std::int64_t time;
    std::uint64_t seq;
    int id;
    bool cancelled = false;
  };

  std::mt19937_64 rng(0xC0FFEE);
  EventQueue q;
  std::vector<RefEv> ref;
  std::vector<std::pair<int, EventHandle>> handles;
  std::vector<int> popped;
  std::vector<int> expected;
  std::uint64_t seq = 0;
  int next_id = 0;
  std::int64_t now = 0;

  auto ref_min = [&]() -> RefEv* {
    RefEv* best = nullptr;
    for (auto& e : ref) {
      if (e.cancelled) continue;
      if (!best || e.time < best->time ||
          (e.time == best->time && e.seq < best->seq)) {
        best = &e;
      }
    }
    return best;
  };

  auto random_time = [&]() -> std::int64_t {
    // Mix of near-cursor (staged / level-0), mid-range (level-1/2) and
    // beyond-horizon (heap spill) targets, all >= the last popped time.
    switch (rng() % 6) {
      case 0: return now;                                        // tie / staged
      case 1: return now + static_cast<std::int64_t>(rng() % kL0);
      case 2: return now + static_cast<std::int64_t>(rng() % kL1);
      case 3: return now + static_cast<std::int64_t>(rng() % kL2);
      case 4: return now + static_cast<std::int64_t>(rng() % (400ll * kL2));
      default: // exact bucket boundaries, the historical failure mode
        return (now / kL1 + 1 + static_cast<std::int64_t>(rng() % 3)) * kL1 -
               static_cast<std::int64_t>(rng() % 2);
    }
  };

  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t r = rng() % 10;
    if (r < 5) {
      const std::int64_t t = random_time();
      const int id = next_id++;
      if (rng() % 3 == 0) {
        q.post(SimTime(t), [&popped, id] { popped.push_back(id); });
      } else {
        handles.emplace_back(
            id, q.schedule(SimTime(t), [&popped, id] { popped.push_back(id); }));
      }
      ref.push_back(RefEv{t, seq++, id});
    } else if (r < 6 && !handles.empty()) {
      const std::size_t k = rng() % handles.size();
      handles[k].second.cancel();
      for (auto& e : ref) {
        if (e.id == handles[k].first) e.cancelled = true;
      }
      handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      RefEv* want = ref_min();
      auto got = q.try_pop();
      ASSERT_EQ(got.has_value(), want != nullptr) << "op " << op;
      if (!got) continue;
      got->fn();
      ASSERT_EQ(got->time.ns(), want->time) << "op " << op;
      ASSERT_EQ(popped.back(), want->id) << "op " << op;
      expected.push_back(want->id);
      now = want->time;
      want->cancelled = true; // consumed
    }
  }
  // Drain both to the end.
  while (RefEv* want = ref_min()) {
    auto got = q.try_pop();
    ASSERT_TRUE(got.has_value());
    got->fn();
    ASSERT_EQ(got->time.ns(), want->time);
    ASSERT_EQ(popped.back(), want->id);
    expected.push_back(want->id);
    want->cancelled = true;
  }
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(popped, expected);
}

TEST(WheelDeterminismTest, PurgeDeadReclaimsCancelledHeads) {
  EventQueue q;
  // Cancelled entries at the heap front and in the activated window are
  // reclaimed eagerly by purge_dead() without firing anything.
  auto far = q.schedule(SimTime(600ll * kL2), [] {});  // heap spill
  auto near = q.schedule(SimTime(10), [] {});
  q.schedule(SimTime(20), [] {});
  near.cancel();
  far.cancel();
  q.purge_dead();
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.live_size(), 1u);
  auto e = q.try_pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->time, SimTime(20));
  EXPECT_TRUE(q.empty());
}

TEST(WheelDeterminismTest, TryPopAtOrBeforeRespectsLimit) {
  EventQueue q;
  q.schedule(SimTime(100), [] {});
  q.schedule(SimTime(kL1 + 100), [] {});
  EXPECT_FALSE(q.try_pop_at_or_before(SimTime(99)).has_value());
  auto a = q.try_pop_at_or_before(SimTime(100));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->time, SimTime(100));
  // The limit must not pop the far event early...
  EXPECT_FALSE(q.try_pop_at_or_before(SimTime(kL1)).has_value());
  // ...and the refusal must not have lost it.
  auto b = q.try_pop_at_or_before(SimTime(kL1 + 100));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->time, SimTime(kL1 + 100));
}

} // namespace
} // namespace tsn::sim
