#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsn::sim {
namespace {

using namespace tsn::sim::literals;

TEST(SimulationTest, TimeAdvancesWithEvents) {
  Simulation sim;
  std::vector<std::int64_t> times;
  sim.after(100, [&] { times.push_back(sim.now().ns()); });
  sim.after(50, [&] { times.push_back(sim.now().ns()); });
  sim.run_until(SimTime(1000));
  EXPECT_EQ(times, (std::vector<std::int64_t>{50, 100}));
  EXPECT_EQ(sim.now(), SimTime(1000));
}

TEST(SimulationTest, RunUntilExecutesEventsAtLimit) {
  Simulation sim;
  bool fired = false;
  sim.at(SimTime(100), [&] { fired = true; });
  sim.run_until(SimTime(100));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  bool fired = false;
  sim.at(SimTime(101), [&] { fired = true; });
  sim.run_until(SimTime(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), SimTime(100));
  sim.run_until(SimTime(200));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, PastScheduleClampsToNow) {
  Simulation sim;
  sim.at(SimTime(100), [&] {
    // Scheduling in the past fires "immediately" rather than rewinding time.
    sim.at(SimTime(10), [&] { EXPECT_EQ(sim.now(), SimTime(100)); });
  });
  sim.run_until(SimTime(1000));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.after(10, chain);
  };
  sim.after(0, chain);
  sim.run_until(SimTime(1000));
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulationTest, PeriodicFiresAtFixedTimes) {
  Simulation sim;
  std::vector<std::int64_t> fire_times;
  sim.every(SimTime(100), 250, [&](SimTime t) { fire_times.push_back(t.ns()); });
  sim.run_until(SimTime(1000));
  EXPECT_EQ(fire_times, (std::vector<std::int64_t>{100, 350, 600, 850}));
}

TEST(SimulationTest, PeriodicCancelStops) {
  Simulation sim;
  int count = 0;
  auto h = sim.every(SimTime(0), 100, [&](SimTime) { ++count; });
  sim.at(SimTime(250), [&] { h.cancel(); });
  sim.run_until(SimTime(10000));
  EXPECT_EQ(count, 3); // t = 0, 100, 200
}

TEST(SimulationTest, PeriodicSelfCancelWithinCallback) {
  Simulation sim;
  int count = 0;
  Simulation::PeriodicHandle h = sim.every(SimTime(0), 100, [&](SimTime) {
    if (++count == 2) h.cancel();
  });
  sim.run_until(SimTime(10000));
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int count = 0;
  sim.every(SimTime(0), 10, [&](SimTime) {
    if (++count == 5) sim.stop();
  });
  sim.run_until(SimTime(1'000'000));
  EXPECT_EQ(count, 5);
}

TEST(SimulationTest, RunEventsBounded) {
  Simulation sim;
  int count = 0;
  sim.every(SimTime(0), 10, [&](SimTime) { ++count; });
  const auto n = sim.run_events(7);
  EXPECT_EQ(n, 7u);
  EXPECT_EQ(count, 7);
}

TEST(SimulationTest, MakeRngIsDeterministicPerName) {
  Simulation sim(123);
  auto a = sim.make_rng("x");
  auto b = sim.make_rng("x");
  EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  std::vector<std::int64_t> fire_times;
  sim.at(SimTime(100), [&] {
    sim.after(-50, [&] { fire_times.push_back(sim.now().ns()); });
    sim.after(-1'000'000, [&] { fire_times.push_back(sim.now().ns()); });
  });
  sim.run_until(SimTime(1000));
  // Both fire "immediately" at t=100 instead of rewinding time.
  EXPECT_EQ(fire_times, (std::vector<std::int64_t>{100, 100}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulationTest, PeriodicFirstFiringMayBeAtZero) {
  Simulation sim;
  std::vector<std::int64_t> fire_times;
  sim.every(SimTime::zero(), 500, [&](SimTime t) { fire_times.push_back(t.ns()); });
  sim.run_until(SimTime(1200));
  EXPECT_EQ(fire_times, (std::vector<std::int64_t>{0, 500, 1000}));
}

} // namespace
} // namespace tsn::sim
