#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "net/mac.hpp"

namespace tsn::net {
namespace {

TEST(MacAddressTest, RoundTripU64) {
  const MacAddress m = MacAddress::from_u64(0x0123456789abULL);
  EXPECT_EQ(m.to_u64(), 0x0123456789abULL);
  EXPECT_EQ(m.to_string(), "01:23:45:67:89:ab");
}

TEST(MacAddressTest, MulticastBit) {
  EXPECT_TRUE(MacAddress::gptp_multicast().is_multicast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::from_u64(0x020000000001ULL).is_multicast());
  EXPECT_FALSE(MacAddress::gptp_multicast().is_broadcast());
}

TEST(MacAddressTest, GptpMulticastWellKnown) {
  EXPECT_EQ(MacAddress::gptp_multicast().to_string(), "01:80:c2:00:00:0e");
}

TEST(MacAddressTest, Ordering) {
  EXPECT_LT(MacAddress::from_u64(1), MacAddress::from_u64(2));
  EXPECT_EQ(MacAddress::from_u64(7), MacAddress::from_u64(7));
}

TEST(EthernetFrameTest, WireSizeMinimum) {
  EthernetFrame f;
  f.payload.resize(10);
  EXPECT_EQ(f.wire_size(), 64u); // padded to minimum frame
}

TEST(EthernetFrameTest, WireSizeWithVlanAndPayload) {
  EthernetFrame f;
  f.payload.resize(100);
  EXPECT_EQ(f.wire_size(), 118u);
  f.vlan = VlanTag{10, 5};
  EXPECT_EQ(f.wire_size(), 122u);
}

} // namespace
} // namespace tsn::net
