#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace tsn::net {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet_phc() {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = 0.0;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

SwitchConfig quiet_switch(std::size_t ports = 4) {
  SwitchConfig cfg;
  cfg.port_count = ports;
  cfg.residence_base_ns = 2000;
  cfg.residence_jitter_ns = 0.0;
  cfg.phc = quiet_phc();
  return cfg;
}

LinkConfig quiet_link() {
  LinkConfig cfg;
  cfg.a_to_b = {500, 0.0};
  cfg.b_to_a = {500, 0.0};
  return cfg;
}

/// Star: three NICs on switch ports 0..2.
struct Star {
  Simulation sim{11};
  Switch sw;
  std::vector<std::unique_ptr<Nic>> nics;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<int> rx_count;

  Star() : sw(sim, quiet_switch(), "sw") {
    for (std::uint64_t i = 0; i < 3; ++i) {
      nics.push_back(
          std::make_unique<Nic>(sim, quiet_phc(), MacAddress::from_u64(0x10 + i), "n" + std::to_string(i)));
      links.push_back(std::make_unique<Link>(sim, nics.back()->port(), sw.port(i), quiet_link(),
                                             "l" + std::to_string(i)));
    }
    rx_count.assign(3, 0);
    for (std::size_t i = 0; i < 3; ++i) {
      nics[i]->set_rx_handler(0x1234, [this, i](const EthernetFrame&, const RxMeta&) {
        ++rx_count[i];
      });
    }
  }

  EthernetFrame frame_to(MacAddress dst) {
    EthernetFrame f;
    f.dst = dst;
    f.ethertype = 0x1234;
    f.payload.resize(46);
    return f;
  }
};

TEST(SwitchTest, FloodsUnknownUnicastExceptIngress) {
  Star s;
  s.nics[0]->send(s.frame_to(MacAddress::from_u64(0x99)));
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(s.rx_count[0], 0); // no reflection
  // Flooded to ports 1 and 2 but NICs filter by MAC -> no delivery upward.
  EXPECT_EQ(s.rx_count[1], 0);
  EXPECT_EQ(s.rx_count[2], 0);
}

TEST(SwitchTest, FloodedBroadcastReachesAllOthers) {
  Star s;
  s.nics[0]->send(s.frame_to(MacAddress::broadcast()));
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(s.rx_count[0], 0);
  EXPECT_EQ(s.rx_count[1], 1);
  EXPECT_EQ(s.rx_count[2], 1);
}

TEST(SwitchTest, FdbDirectsUnicast) {
  Star s;
  s.sw.add_fdb_entry(0, s.nics[2]->mac(), 2);
  int port1_deliveries = 0;
  // Spy on port 1 by attaching a counting handler for broadcasts too; easier:
  // send unicast to nic2, confirm only nic2 got it.
  s.nics[0]->send(s.frame_to(s.nics[2]->mac()));
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(s.rx_count[2], 1);
  EXPECT_EQ(s.rx_count[1], 0);
  (void)port1_deliveries;
}

TEST(SwitchTest, StoreAndForwardDelayApplied) {
  Star s;
  s.sw.add_fdb_entry(0, s.nics[1]->mac(), 1);
  std::int64_t rx_time = -1;
  s.nics[1]->set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta& m) {
    rx_time = m.true_rx_time.ns();
  });
  s.nics[0]->send(s.frame_to(s.nics[1]->mac()));
  s.sim.run_until(SimTime(1_ms));
  // hop1 (672+500) + residence 2000 + hop2 (672+500) = 4344.
  EXPECT_EQ(rx_time, 4344);
}

TEST(SwitchTest, VlanRestrictsFlooding) {
  Star s;
  s.sw.add_vlan_member(10, 0);
  s.sw.add_vlan_member(10, 1);
  EthernetFrame f = s.frame_to(MacAddress::broadcast());
  f.vlan = VlanTag{10, 0};
  s.nics[0]->send(f);
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(s.rx_count[1], 1);
  EXPECT_EQ(s.rx_count[2], 0); // port 2 not a member of VLAN 10
}

TEST(SwitchTest, PtpFramesGoToPtpSinkNotForwarded) {
  Star s;
  int ptp_rx = 0;
  std::size_t ptp_port = 99;
  s.sw.set_ptp_sink([&](std::size_t idx, const EthernetFrame& f, const RxMeta&) {
    ++ptp_rx;
    ptp_port = idx;
    EXPECT_EQ(f.ethertype, kEtherTypePtp);
  });
  EthernetFrame f = s.frame_to(MacAddress::gptp_multicast());
  f.ethertype = kEtherTypePtp;
  s.nics[0]->send(f);
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(ptp_rx, 1);
  EXPECT_EQ(ptp_port, 0u);
  EXPECT_EQ(s.rx_count[1], 0);
  EXPECT_EQ(s.rx_count[2], 0);
}

TEST(SwitchTest, SendFromPortOriginatesFrames) {
  Star s;
  int got = 0;
  s.nics[1]->set_rx_handler(0x4242, [&](const EthernetFrame&, const RxMeta&) { ++got; });
  EthernetFrame f;
  f.dst = s.nics[1]->mac();
  f.src = MacAddress::from_u64(0xFFFE);
  f.ethertype = 0x4242;
  f.payload.resize(46);
  s.sw.send_from_port(1, f);
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(got, 1);
}

TEST(SwitchTest, MulticastFdbFanout) {
  Star s;
  const MacAddress group({0x01, 0x00, 0x5e, 0x01, 0x02, 0x03});
  s.sw.add_fdb_entry(0, group, 1);
  s.sw.add_fdb_entry(0, group, 2);
  s.nics[1]->join_multicast(group);
  s.nics[2]->join_multicast(group);
  s.nics[0]->send(s.frame_to(group));
  s.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(s.rx_count[1], 1);
  EXPECT_EQ(s.rx_count[2], 1);
  EXPECT_EQ(s.rx_count[0], 0);
}

TEST(SwitchTest, ResidenceJitterVaries) {
  Simulation sim(5);
  SwitchConfig cfg = quiet_switch();
  cfg.residence_jitter_ns = 200.0;
  Switch sw(sim, cfg, "jsw");
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t r = sw.draw_residence_ns();
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    EXPECT_GE(r, cfg.residence_base_ns / 2);
  }
  EXPECT_GT(hi - lo, 100);
}

} // namespace
} // namespace tsn::net
