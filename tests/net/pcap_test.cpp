#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/link.hpp"
#include "net/nic.hpp"
#include "sim/simulation.hpp"

namespace tsn::net {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

std::uint32_t read_u32_le(std::ifstream& in) {
  std::uint8_t b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  return static_cast<std::uint32_t>(b[0]) | (b[1] << 8) | (b[2] << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

TEST(FrameToWireBytesTest, LayoutWithoutVlan) {
  EthernetFrame f;
  f.dst = MacAddress::from_u64(0x010203040506ULL);
  f.src = MacAddress::from_u64(0x0A0B0C0D0E0FULL);
  f.ethertype = 0x88F7;
  f.payload = {0xDE, 0xAD};
  const auto bytes = frame_to_wire_bytes(f);
  ASSERT_GE(bytes.size(), 60u); // padded
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[5], 0x06);
  EXPECT_EQ(bytes[6], 0x0A);
  EXPECT_EQ(bytes[12], 0x88);
  EXPECT_EQ(bytes[13], 0xF7);
  EXPECT_EQ(bytes[14], 0xDE);
  EXPECT_EQ(bytes[15], 0xAD);
}

TEST(FrameToWireBytesTest, VlanTagInserted) {
  EthernetFrame f;
  f.vlan = VlanTag{100, 6};
  f.ethertype = 0x1234;
  f.payload.resize(50);
  const auto bytes = frame_to_wire_bytes(f);
  EXPECT_EQ(bytes[12], 0x81); // TPID
  EXPECT_EQ(bytes[13], 0x00);
  EXPECT_EQ(bytes[14], (6 << 5) | 0); // pcp in the top 3 bits
  EXPECT_EQ(bytes[15], 100);
  EXPECT_EQ(bytes[16], 0x12);
  EXPECT_EQ(bytes[17], 0x34);
}

TEST(PcapTracerTest, WritesValidHeaderAndRecords) {
  const std::string path = "/tmp/tsn_pcap_test.pcap";
  Simulation sim(1);
  {
    PcapTracer tracer(sim, path);
    sim.at(SimTime(1'500'000'042), [&] {
      EthernetFrame f;
      f.ethertype = 0x88F7;
      f.payload.resize(30);
      tracer.record(f);
    });
    sim.run_until(SimTime(2_s));
    EXPECT_EQ(tracer.frames_written(), 1u);
    tracer.flush();
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(read_u32_le(in), 0xa1b23c4du); // ns-resolution magic
  in.seekg(20);
  EXPECT_EQ(read_u32_le(in), 1u); // LINKTYPE_ETHERNET
  // First record header.
  EXPECT_EQ(read_u32_le(in), 1u);             // ts_sec
  EXPECT_EQ(read_u32_le(in), 500'000'042u);   // ts_nsec
  const std::uint32_t incl = read_u32_le(in);
  EXPECT_EQ(incl, 60u); // padded minimum frame
  EXPECT_EQ(read_u32_le(in), incl);
  std::remove(path.c_str());
}

TEST(PcapTracerTest, TapCapturesLiveTraffic) {
  const std::string path = "/tmp/tsn_pcap_tap_test.pcap";
  Simulation sim(2);
  time::PhcModel quiet;
  quiet.oscillator.initial_drift_ppm = 0.0;
  quiet.oscillator.wander_sigma_ppm = 0.0;
  Nic a(sim, quiet, MacAddress::from_u64(0xA), "a");
  Nic b(sim, quiet, MacAddress::from_u64(0xB), "b");
  Link link(sim, a.port(), b.port(), {}, "ab");
  PcapTracer tracer(sim, path);
  tracer.attach(b.port(), /*capture_tx=*/false, /*capture_rx=*/true);
  for (int i = 0; i < 5; ++i) {
    EthernetFrame f;
    f.dst = b.mac();
    f.ethertype = 0x1234;
    f.payload.resize(46);
    a.send(f);
  }
  sim.run_until(SimTime(1_ms));
  EXPECT_EQ(tracer.frames_written(), 5u);
  std::remove(path.c_str());
}

} // namespace
} // namespace tsn::net
