#include "net/frame_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tsn::net {
namespace {

TEST(FramePoolTest, AcquireGivesPristineSoleReference) {
  FramePool pool;
  FrameRef f = pool.acquire();
  ASSERT_TRUE(f);
  EXPECT_EQ(f.use_count(), 1u);
  EXPECT_TRUE(f->payload.empty());
  EXPECT_FALSE(f->vlan.has_value());
  EXPECT_EQ(pool.stats().acquired, 1u);
  EXPECT_EQ(pool.stats().in_use, 1u);
  EXPECT_EQ(pool.stats().buffers, FramePool::kChunk);
}

TEST(FramePoolTest, ReleaseRecyclesBufferNoNewAllocation) {
  FramePool pool;
  const EthernetFrame* addr;
  {
    FrameRef f = pool.acquire();
    addr = &*f;
  }
  EXPECT_EQ(pool.stats().released, 1u);
  EXPECT_EQ(pool.stats().in_use, 0u);
  FrameRef g = pool.acquire();
  // Free-list recycling: the same buffer comes back, no growth step.
  EXPECT_EQ(&*g, addr);
  EXPECT_EQ(pool.stats().chunks, 1u);
}

TEST(FramePoolTest, GrowsByChunkWhenExhausted) {
  FramePool pool;
  std::vector<FrameRef> live;
  for (std::size_t i = 0; i < FramePool::kChunk + 1; ++i) {
    live.push_back(pool.acquire());
  }
  EXPECT_EQ(pool.stats().chunks, 2u);
  EXPECT_EQ(pool.stats().buffers, 2 * FramePool::kChunk);
  EXPECT_EQ(pool.stats().in_use, FramePool::kChunk + 1);
  EXPECT_EQ(pool.stats().high_water, FramePool::kChunk + 1);
  // All buffers are distinct objects.
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = i + 1; j < live.size(); ++j) {
      EXPECT_NE(&*live[i], &*live[j]);
    }
  }
  live.clear();
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().released, FramePool::kChunk + 1);
}

TEST(FramePoolTest, RefcountUnderMulticastFanout) {
  // A switch fanning one frame out to N egress ports copies the FrameRef N
  // times; the payload bytes must be shared, not duplicated, and the buffer
  // must only return to the pool when the last port drops it.
  FramePool pool;
  FrameRef original = pool.acquire();
  original.writable().payload = {1, 2, 3, 4};
  const std::uint8_t* bytes = original->payload.data();

  std::vector<FrameRef> ports(8, original);
  EXPECT_EQ(original.use_count(), 9u);
  for (const FrameRef& p : ports) {
    EXPECT_EQ(p->payload.data(), bytes); // zero-copy: same storage
  }
  ports.clear();
  EXPECT_EQ(original.use_count(), 1u);
  EXPECT_EQ(pool.stats().released, 0u);
  original.reset();
  EXPECT_EQ(pool.stats().released, 1u);
  EXPECT_EQ(pool.stats().in_use, 0u);
}

TEST(FramePoolTest, MoveDoesNotTouchRefcount) {
  FramePool pool;
  FrameRef a = pool.acquire();
  FrameRef b = std::move(a);
  EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move) — moved-from is empty
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(pool.stats().released, 0u);
}

TEST(FramePoolTest, AdoptPreservesFrameContents) {
  FramePool pool;
  EthernetFrame f;
  f.ethertype = kEtherTypePtp;
  f.payload = {9, 8, 7};
  FrameRef r = pool.adopt(std::move(f));
  EXPECT_EQ(r->ethertype, kEtherTypePtp);
  EXPECT_EQ(r->payload, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(r.use_count(), 1u);
}

TEST(FramePoolTest, RecycledBufferIsPristineEvenAfterHeapSpill) {
  FramePool pool;
  const EthernetFrame* addr;
  {
    FrameRef f = pool.acquire();
    EthernetFrame& w = f.writable();
    w.vlan = VlanTag{5, 3};
    w.payload.resize(3 * Payload::kInlineCapacity); // force heap spill
    EXPECT_TRUE(w.payload.is_heap());
    addr = &*f;
  }
  FrameRef g = pool.acquire();
  ASSERT_EQ(&*g, addr);
  // The recycled frame is back at its default, inline-storage state.
  EXPECT_TRUE(g->payload.empty());
  EXPECT_FALSE(g->payload.is_heap());
  EXPECT_FALSE(g->vlan.has_value());
  EXPECT_EQ(g->ethertype, 0);
}

TEST(FramePoolTest, LocalPoolIsPerThreadSingleton) {
  FramePool& a = FramePool::local();
  FramePool& b = FramePool::local();
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.stats().acquired;
  { FrameRef f = a.acquire(); }
  EXPECT_EQ(a.stats().acquired, before + 1);
}

} // namespace
} // namespace tsn::net
