#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/port.hpp"
#include "sim/simulation.hpp"

namespace tsn::net {
namespace {

using tsn::sim::SimTime;
using tsn::sim::Simulation;
using namespace tsn::sim::literals;

time::PhcModel quiet_phc() {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = 0.0;
  m.oscillator.wander_sigma_ppm = 0.0;
  m.timestamp_jitter_ns = 0.0;
  return m;
}

LinkConfig quiet_link(std::int64_t delay_ns = 500) {
  LinkConfig cfg;
  cfg.a_to_b = {delay_ns, 0.0};
  cfg.b_to_a = {delay_ns, 0.0};
  return cfg;
}

struct TwoNics {
  Simulation sim{42};
  Nic a;
  Nic b;
  Link link;

  explicit TwoNics(LinkConfig cfg = quiet_link())
      : a(sim, quiet_phc(), MacAddress::from_u64(0xA), "nicA"),
        b(sim, quiet_phc(), MacAddress::from_u64(0xB), "nicB"),
        link(sim, a.port(), b.port(), cfg, "ab") {}
};

EthernetFrame frame_to(MacAddress dst, std::uint16_t ethertype = 0x1234, std::size_t len = 46) {
  EthernetFrame f;
  f.dst = dst;
  f.ethertype = ethertype;
  f.payload.resize(len);
  return f;
}

TEST(LinkTest, DeliversUnicastToPeer) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame& f, const RxMeta&) {
    ++received;
    EXPECT_EQ(f.src, t.a.mac());
  });
  t.a.send(frame_to(t.b.mac()));
  t.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(received, 1);
}

TEST(LinkTest, DeliveryDelayIsSerializationPlusPropagation) {
  TwoNics t(quiet_link(500));
  std::int64_t rx_time = -1;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta& m) {
    rx_time = m.true_rx_time.ns();
  });
  t.a.send(frame_to(t.b.mac()));
  t.sim.run_until(SimTime(1_ms));
  // 64-byte frame + 20B overhead = 84B = 672 bits @1Gbps = 672 ns, + 500.
  EXPECT_EQ(rx_time, 672 + 500);
}

TEST(LinkTest, AsymmetricDelays) {
  LinkConfig cfg;
  cfg.a_to_b = {1000, 0.0};
  cfg.b_to_a = {3000, 0.0};
  TwoNics t(cfg);
  std::int64_t rx_at_b = -1, rx_at_a = -1;
  t.b.set_rx_handler(1, [&](const EthernetFrame&, const RxMeta& m) { rx_at_b = m.true_rx_time.ns(); });
  t.a.set_rx_handler(1, [&](const EthernetFrame&, const RxMeta& m) { rx_at_a = m.true_rx_time.ns(); });
  t.a.send(frame_to(t.b.mac(), 1));
  t.sim.run_until(SimTime(1_ms));
  const std::int64_t t_ab = rx_at_b;
  t.b.send(frame_to(t.a.mac(), 1));
  t.sim.run_until(SimTime(2_ms));
  const std::int64_t t_ba = rx_at_a - 1_ms;
  EXPECT_EQ(t_ba - t_ab, 2000);
}

TEST(NicTest, FiltersForeignUnicast) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta&) { ++received; });
  t.a.send(frame_to(MacAddress::from_u64(0xDEAD)));
  t.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(received, 0);
}

TEST(NicTest, AcceptsBroadcastAndJoinedMulticast) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta&) { ++received; });
  t.a.send(frame_to(MacAddress::broadcast()));
  const MacAddress group({0x01, 0x00, 0x5e, 0x00, 0x00, 0x01});
  t.a.send(frame_to(group)); // not joined yet -> dropped
  t.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(received, 1);
  t.b.join_multicast(group);
  t.a.send(frame_to(group));
  t.sim.run_until(SimTime(2_ms));
  EXPECT_EQ(received, 2);
}

TEST(NicTest, DownNicDropsRxAndTx) {
  TwoNics t;
  int received = 0;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta&) { ++received; });
  t.b.set_up(false);
  t.a.send(frame_to(t.b.mac()));
  t.sim.run_until(SimTime(1_ms));
  EXPECT_EQ(received, 0);

  bool reported_down = false;
  t.b.send(frame_to(t.a.mac()), {std::nullopt, [&](const TxReport& r) {
                                   reported_down = (r.status == TxReport::Status::kPortDown);
                                 }});
  EXPECT_TRUE(reported_down);
}

TEST(NicTest, TxTimestampDelivered) {
  TwoNics t;
  std::optional<std::int64_t> tx_ts;
  TxOptions opts;
  opts.on_complete = [&](const TxReport& r) {
    ASSERT_EQ(r.status, TxReport::Status::kSent);
    tx_ts = r.hw_tx_ts;
  };
  t.sim.at(SimTime(1_s), [&] { t.a.send(frame_to(t.b.mac()), std::move(opts)); });
  t.sim.run_until(SimTime(2_s));
  ASSERT_TRUE(tx_ts.has_value());
  EXPECT_NEAR(static_cast<double>(*tx_ts), 1e9, 2.0);
}

TEST(NicTest, RxHwTimestampPresent) {
  TwoNics t;
  std::optional<std::int64_t> rx_ts;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta& m) { rx_ts = m.hw_rx_ts; });
  t.a.send(frame_to(t.b.mac()));
  t.sim.run_until(SimTime(1_ms));
  ASSERT_TRUE(rx_ts.has_value());
  // SFD timestamp: serialization excluded, only propagation remains.
  EXPECT_NEAR(static_cast<double>(*rx_ts), 500.0, 2.0);
}

TEST(EtfTest, LaunchTimeHonored) {
  TwoNics t;
  std::int64_t rx_time = -1;
  t.b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta& m) {
    rx_time = m.true_rx_time.ns();
  });
  TxOptions opts;
  opts.launch_time = 100'000; // PHC time == true time for the quiet model
  t.a.send(frame_to(t.b.mac()), std::move(opts));
  t.sim.run_until(SimTime(1_ms));
  EXPECT_NEAR(static_cast<double>(rx_time), 100'000 + 672 + 500, 3.0);
}

TEST(EtfTest, PastLaunchTimeIsDeadlineMiss) {
  TwoNics t;
  t.sim.run_until(SimTime(1_ms));
  bool missed = false;
  TxOptions opts;
  opts.launch_time = 500'000; // in the past (now = 1 ms)
  opts.on_complete = [&](const TxReport& r) {
    missed = (r.status == TxReport::Status::kDeadlineMissed);
  };
  t.a.send(frame_to(t.b.mac()), std::move(opts));
  EXPECT_TRUE(missed);
}

TEST(EtfTest, FarFutureLaunchTimeInvalid) {
  TwoNics t;
  bool invalid = false;
  TxOptions opts;
  opts.launch_time = 10'000'000'000; // 10 s ahead, beyond default 1 s horizon
  opts.on_complete = [&](const TxReport& r) {
    invalid = (r.status == TxReport::Status::kInvalidLaunch);
  };
  t.a.send(frame_to(t.b.mac()), std::move(opts));
  EXPECT_TRUE(invalid);
}

TEST(EtfTest, LaunchTimeTracksDriftingPhc) {
  // The launch gate compares against the *PHC*, not true time: with a +100
  // ppm... (we use 5 ppm) fast PHC, launch happens slightly before true
  // launch_time nanoseconds elapse.
  Simulation sim(7);
  time::PhcModel fast = quiet_phc();
  fast.oscillator.initial_drift_ppm = 5.0;
  Nic a(sim, fast, MacAddress::from_u64(0xA), "a");
  Nic b(sim, quiet_phc(), MacAddress::from_u64(0xB), "b");
  Link link(sim, a.port(), b.port(), quiet_link(0), "ab");
  std::int64_t rx_time = -1;
  b.set_rx_handler(0x1234, [&](const EthernetFrame&, const RxMeta& m) {
    rx_time = m.true_rx_time.ns();
  });
  TxOptions opts;
  opts.launch_time = 100'000'000; // 100 ms on a's PHC
  a.send(frame_to(b.mac()), std::move(opts));
  sim.run_until(SimTime(1_s));
  ASSERT_GT(rx_time, 0);
  const std::int64_t launch_true = rx_time - 672 - 0;
  // 5 ppm over 100 ms = 500 ns early.
  EXPECT_NEAR(static_cast<double>(launch_true), 100'000'000 - 500, 5.0);
}

} // namespace
} // namespace tsn::net
