#include "check/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "experiments/harness.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

namespace tsn::check {

namespace {

/// Odd nanosecond values never collide with the 125 ms periodic grid
/// (monitor ticks, sync intervals), so replay-mode kills land at unique
/// event-queue timestamps and the randomized and scripted runs order
/// identically.
std::int64_t odd_ns(std::int64_t v) { return v | 1; }

} // namespace

FuzzCase derive_case(std::uint64_t master_seed, std::uint64_t index, std::int64_t duration_ns,
                     bool with_attacks) {
  util::RngStream rng(master_seed, util::format("fuzz-case-%llu", (unsigned long long)index));

  FuzzCase c;
  c.master_seed = master_seed;
  c.index = index;
  c.duration_ns = duration_ns;

  experiments::ScenarioConfig& s = c.scenario;
  s.seed = rng.engine()();

  // Topology: f = 1 with N in [4, 6] most of the time; occasionally the
  // f = 2 configuration, which needs N = 7 (the FTA requires N > 3f).
  if (rng.chance(0.2)) {
    s.fta_f = 2;
    s.num_ecds = 7;
  } else {
    s.fta_f = 1;
    s.num_ecds = static_cast<std::size_t>(rng.uniform_int(4, 6));
  }
  s.gm_kernels.assign(s.num_ecds, "4.19.1");

  // Clock and network randomization. Drift is capped at 12 ppm so Gamma =
  // 2 * rmax * S stays <= 3 us and the analytic bound Pi stays clear of
  // the 10 us validity threshold -- beyond that, losing quorum is the
  // *correct* behavior and every case would "fail" by design.
  s.max_drift_ppm = rng.uniform(2.0, 12.0);
  s.wander_sigma_ppm = rng.uniform(0.001, 0.004);
  s.nic_ts_jitter_ns = rng.uniform(4.0, 40.0);
  s.initial_phase_range_ns = rng.uniform(10'000.0, 100'000.0);
  s.host_link_jitter_ns = rng.uniform(5.0, 40.0);
  s.mesh_link_jitter_ns = rng.uniform(20.0, 120.0);
  s.switch_residence_jitter_ns = rng.uniform(40.0, 200.0);

  // Fault profile: aggressive enough that a two-minute window sees several
  // GM fail-overs and standby losses, spaced so the warm-reboot
  // reconvergence window (~20 s) fits between kills of the same node.
  faults::InjectorConfig& inj = c.injector;
  inj.gm_kill_period_ns = odd_ns(rng.uniform_int(12'000'000'000LL, 30'000'000'000LL));
  inj.gm_downtime_ns = odd_ns(rng.uniform_int(5'000'000'000LL, 20'000'000'000LL));
  inj.standby_kills_per_hour = rng.uniform(20.0, 90.0);
  inj.standby_min_gap_ns = odd_ns(rng.uniform_int(8'000'000'000LL, 20'000'000'000LL));
  inj.standby_downtime_ns = odd_ns(rng.uniform_int(5'000'000'000LL, 20'000'000'000LL));

  // Long horizons stretch the fault spacing with the duration instead of
  // keeping the rate: the profile above is tuned so a two-minute window
  // sees a handful of kills, and a week at a 12-30 s cadence would leave
  // the fast-forward path no quiescent stretch to cross (and make every
  // case mostly reconvergence transient). Same expected kill count per
  // case whatever the horizon; downtimes stay physical.
  constexpr std::int64_t kProfileBaseNs = 120'000'000'000LL;
  if (duration_ns > kProfileBaseNs) {
    const long double stretch =
        static_cast<long double>(duration_ns) / static_cast<long double>(kProfileBaseNs);
    inj.gm_kill_period_ns =
        odd_ns(static_cast<std::int64_t>(static_cast<long double>(inj.gm_kill_period_ns) * stretch));
    inj.standby_min_gap_ns =
        odd_ns(static_cast<std::int64_t>(static_cast<long double>(inj.standby_min_gap_ns) * stretch));
    inj.standby_kills_per_hour /= static_cast<double>(stretch);
  }

  // A quarter of the cases run on the conservative-parallel runtime.
  // partitions = 1 keeps each fuzz worker single-threaded (the campaign
  // already parallelizes across cases) while still exercising every
  // cross-region protocol path: boundary links, control channels, the
  // merged oracle dispatch.
  s.partitions = rng.chance(0.25) ? 1 : 0;

  if (with_attacks) {
    // Separate RNG stream: the base world above stays bit-identical with
    // and without attacks. Every ECD hosts a domain here (derive_case
    // caps num_ecds at 7, well inside the STSHMEM slot count).
    c.attacks = attack::derive_attacks(master_seed, index, s.num_ecds,
                                       /*domain_count=*/s.num_ecds, s.fta_f, duration_ns);
  }
  return c;
}

CaseResult run_case(const FuzzCase& c) {
  CaseResult out;
  out.index = c.index;
  out.case_seed = c.scenario.seed;
  try {
    // Fast-forward is serial-only; serial and partitioned executions of
    // the same case are verdict-equivalent (partition-determinism suite),
    // so forcing the serial runtime preserves the case's meaning.
    experiments::ScenarioConfig scfg = c.scenario;
    if (c.fast_forward) scfg.partitions = 0;
    experiments::Scenario scenario(scfg);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up();
    out.brought_up = true;
    const auto cal = harness.calibrate();
    out.bound_ns = cal.bound.pi_ns;

    InvariantSuite suite(scenario);
    SuiteParams sp;
    sp.bound_ns = cal.bound.pi_ns;
    suite.add_default_invariants(sp);

    // The driver must outlive the run loop: scheduled closures index it.
    attack::AttackDriver attack_driver;
    AttackExclusionInvariant* attack_oracle = nullptr;
    if (!c.attacks.empty()) {
      attack_driver.arm(scenario, c.attacks);
      for (const attack::ArmedAttack& a : attack_driver.armed()) {
        if (!attack::compromises_victim_clock(a.spec.kind)) continue;
        // The victim GM's own timebase (or its measurement chain) is
        // compromised: per-node oracles judge only the honest nodes.
        // The window extends past the attack end because poisoned
        // measurement state decays, not snaps, back (the NRR ring holds
        // tampered samples for its whole span and delay smoothing decays
        // geometrically); after that the exemption re-arms reboot-style
        // deadlines, so the victim must still re-prove convergence.
        const std::int64_t until =
            a.end_abs_ns >= INT64_MAX - sp.reconverge_deadline_ns
                ? INT64_MAX
                : a.end_abs_ns + sp.reconverge_deadline_ns;
        suite.precision_bound()->exempt_source(a.victim_vm, a.start_abs_ns, until);
        suite.synctime_monotonicity()->exempt_ecd(a.spec.ecd, a.start_abs_ns, until);
      }
      std::map<std::string, std::size_t> vm_ecd;
      for (std::size_t e = 0; e < scenario.num_ecds(); ++e) {
        for (std::size_t v = 0; v < scenario.ecd(e).vm_count(); ++v) {
          vm_ecd[scenario.vm(e, v).name()] = e;
        }
      }
      auto oracle = std::make_unique<AttackExclusionInvariant>(
          attack_driver.armed(),
          [vm_ecd = std::move(vm_ecd)](const std::string& vm) -> std::optional<std::size_t> {
            const auto it = vm_ecd.find(vm);
            if (it == vm_ecd.end()) return std::nullopt;
            return it->second;
          },
          /*eviction_deadline_ns=*/5'000'000'000LL);
      attack_oracle = oracle.get();
      suite.add(std::move(oracle));
    }

    faults::FaultInjector injector(scenario.control_sim(), scenario.ecd_ptrs(), c.injector);
    if (scenario.partitioned()) {
      std::vector<std::size_t> regions(scenario.num_ecds());
      for (std::size_t r = 0; r < regions.size(); ++r) regions[r] = r;
      injector.set_partitioned(scenario.runtime(), std::move(regions), /*home_region=*/0);
    }
    suite.observe(injector);
    suite.arm();
    if (!c.replay.empty()) {
      injector.run(c.replay);
    } else {
      injector.start();
    }

    if (c.fast_forward) {
      scenario.enable_fast_forward();
      sim::FfController* ff = scenario.fast_forward();
      // The suite parks and phase-realigns its poll across windows; the
      // injector and attack driver are accounting-only participants whose
      // scheduled edges double as barriers (windows never cross a kill,
      // reboot or attack edge).
      ff->add_participant(&suite);
      ff->add_participant(&injector);
      ff->add_barrier([&injector](std::int64_t t) { return injector.next_pending_ns(t); });
      if (!c.attacks.empty()) {
        ff->add_participant(&attack_driver);
        ff->add_barrier(
            [&attack_driver](std::int64_t t) { return attack_driver.next_edge_ns(t); });
      }
      ff->set_model_quiescent([&scenario, &suite, &attack_driver] {
        const std::int64_t now = scenario.sim().now().ns();
        return scenario.model_quiescent() && suite.ff_quiescent(now) &&
               !attack_driver.any_active(now);
      });
    }

    const std::int64_t end = scenario.now_ns() + c.duration_ns;
    if (c.fast_forward) {
      // One shot: chunking would cap every analytic window at the chunk
      // size. Serial worlds sample through the suite's own periodic poll.
      scenario.run_to(end);
    } else {
      // Chunked so partitioned runs get their oracle sampling ticks at the
      // stage boundaries (poll_now is a no-op when serial, and a serial
      // run_until chunked at arbitrary times executes identically).
      const std::int64_t step = 1'000'000'000;
      while (scenario.now_ns() < end) {
        scenario.run_to(std::min(end, scenario.now_ns() + step));
        suite.poll_now();
      }
    }
    suite.finalize();

    out.summary = suite.summary();
    out.violations = suite.violations();
    out.injector_stats = injector.stats();
    out.events = injector.events();
    if (attack_oracle) {
      out.attack_verdicts = attack_oracle->verdicts();
      std::size_t evicted = 0;
      for (const auto& v : out.attack_verdicts) {
        if (v.excluded_at_ns) ++evicted;
      }
      out.summary += util::format(" attacks=%zu evicted=%zu", out.attack_verdicts.size(), evicted);
    }
    out.events_executed = scenario.events_executed();
    if (c.fast_forward) out.ff_stats = scenario.fast_forward()->stats();
  } catch (const std::exception& e) {
    out.summary = util::format("bringup-failed: %s", e.what());
  }
  return out;
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  sweep::SweepRunner runner({.threads = cfg.threads});
  CampaignResult out;
  out.cases = runner.run_indexed(cfg.num_cases, [&cfg](std::size_t i) {
    FuzzCase c = derive_case(cfg.master_seed, i, cfg.duration_ns, cfg.attacks);
    c.fast_forward = cfg.fast_forward;
    return run_case(c);
  });
  for (const CaseResult& r : out.cases) {
    if (r.failed()) ++out.failures;
  }
  return out;
}

std::string CampaignResult::summary_text() const {
  std::string out;
  for (const CaseResult& r : cases) {
    out += util::format("case %llu seed=%llu kills=%llu %s\n", (unsigned long long)r.index,
                        (unsigned long long)r.case_seed,
                        (unsigned long long)r.injector_stats.total_kills, r.summary.c_str());
  }
  out += util::format("campaign: %zu cases, %zu failing\n", cases.size(), failures);
  return out;
}

// ---------------------------------------------------------------------------
// Replay files.

namespace {

const char* method_name(core::AggregationMethod m) {
  switch (m) {
    case core::AggregationMethod::kMedian: return "median";
    case core::AggregationMethod::kMean: return "mean";
    case core::AggregationMethod::kFta: break;
  }
  return "fta";
}

core::AggregationMethod parse_method(const std::string& name) {
  if (name == "median") return core::AggregationMethod::kMedian;
  if (name == "mean") return core::AggregationMethod::kMean;
  if (name == "fta") return core::AggregationMethod::kFta;
  throw std::runtime_error("replay: unknown aggregation '" + name + "'");
}

} // namespace

std::string replay_to_text(const FuzzCase& c) {
  const experiments::ScenarioConfig& s = c.scenario;
  const faults::InjectorConfig& inj = c.injector;
  std::string out = "# tsnfta_fuzz replay -- self-contained failing (or corpus) case\n";
  out += util::format("master_seed=%llu\n", (unsigned long long)c.master_seed);
  out += util::format("index=%llu\n", (unsigned long long)c.index);
  out += util::format("duration_ns=%lld\n", (long long)c.duration_ns);
  out += util::format("seed=%llu\n", (unsigned long long)s.seed);
  out += util::format("num_ecds=%zu\n", s.num_ecds);
  out += util::format("fta_f=%d\n", s.fta_f);
  out += util::format("aggregation=%s\n", method_name(s.aggregation));
  out += util::format("topology=%s\n", experiments::topology_name(s.topology));
  out += util::format("num_domains=%zu\n", s.num_domains);
  out += util::format("partitions=%zu\n", s.partitions);
  out += util::format("max_drift_ppm=%.17g\n", s.max_drift_ppm);
  out += util::format("wander_sigma_ppm=%.17g\n", s.wander_sigma_ppm);
  out += util::format("nic_ts_jitter_ns=%.17g\n", s.nic_ts_jitter_ns);
  out += util::format("initial_phase_range_ns=%.17g\n", s.initial_phase_range_ns);
  out += util::format("host_link_delay_ns=%lld\n", (long long)s.host_link_delay_ns);
  out += util::format("host_link_jitter_ns=%.17g\n", s.host_link_jitter_ns);
  out += util::format("mesh_link_delay_ns=%lld\n", (long long)s.mesh_link_delay_ns);
  out += util::format("mesh_link_jitter_ns=%.17g\n", s.mesh_link_jitter_ns);
  out += util::format("switch_residence_ns=%lld\n", (long long)s.switch_residence_ns);
  out += util::format("switch_residence_jitter_ns=%.17g\n", s.switch_residence_jitter_ns);
  out += util::format("sync_interval_ns=%lld\n", (long long)s.sync_interval_ns);
  out += util::format("validity_threshold_ns=%.17g\n", s.validity_threshold_ns);
  out += util::format("startup_threshold_ns=%.17g\n", s.startup_threshold_ns);
  out += util::format("startup_consecutive=%d\n", s.startup_consecutive);
  out += util::format("synctime_period_ns=%lld\n", (long long)s.synctime_period_ns);
  out += util::format("synctime_feed_forward=%d\n", s.synctime_feed_forward ? 1 : 0);
  out += util::format("gm_mutual_sync=%d\n", s.gm_mutual_sync ? 1 : 0);
  out += util::format("measurement_ecd=%zu\n", s.measurement_ecd);
  out += util::format("gm_kill_period_ns=%lld\n", (long long)inj.gm_kill_period_ns);
  out += util::format("gm_downtime_ns=%lld\n", (long long)inj.gm_downtime_ns);
  out += util::format("standby_kills_per_hour=%.17g\n", inj.standby_kills_per_hour);
  out += util::format("standby_min_gap_ns=%lld\n", (long long)inj.standby_min_gap_ns);
  out += util::format("standby_downtime_ns=%lld\n", (long long)inj.standby_downtime_ns);
  out += util::format("replay_raw=%d\n", c.replay.raw ? 1 : 0);
  out += util::format("fast_forward=%d\n", c.fast_forward ? 1 : 0);
  for (std::size_t i = 0; i < c.replay.faults.size(); ++i) {
    const faults::ScheduledFault& f = c.replay.faults[i];
    out += util::format("fault%zu=%lld,%zu,%zu,%lld\n", i, (long long)f.at_ns, f.ecd, f.vm,
                        (long long)f.downtime_ns);
  }
  for (std::size_t i = 0; i < c.attacks.size(); ++i) {
    const attack::AttackSpec& a = c.attacks[i];
    out += util::format("attack%zu=%s,%zu,%lld,%lld,%.17g,%.17g,%d\n", i,
                        attack::to_string(a.kind), a.ecd, (long long)a.start_ns,
                        (long long)a.duration_ns, a.magnitude, a.secondary,
                        a.expect_excluded ? 1 : 0);
  }
  return out;
}

FuzzCase replay_from_text(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::vector<std::pair<std::size_t, faults::ScheduledFault>> faults;
  std::vector<std::pair<std::size_t, attack::AttackSpec>> attacks;
  std::istringstream in(text);
  std::string line;
  auto parse_ordinal = [](const std::string& key, std::size_t prefix_len) {
    std::size_t ordinal = 0;
    for (std::size_t i = prefix_len; i < key.size(); ++i) {
      if (key[i] < '0' || key[i] > '9') throw std::runtime_error("replay: bad key '" + key + "'");
      ordinal = ordinal * 10 + static_cast<std::size_t>(key[i] - '0');
    }
    return ordinal;
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) throw std::runtime_error("replay: bad line '" + line + "'");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key.rfind("fault", 0) == 0 && key.size() > 5) {
      const std::size_t ordinal = parse_ordinal(key, 5);
      faults::ScheduledFault f;
      long long at = 0, down = 0;
      unsigned long long ecd = 0, vm = 0;
      if (std::sscanf(value.c_str(), "%lld,%llu,%llu,%lld", &at, &ecd, &vm, &down) != 4) {
        throw std::runtime_error("replay: bad fault '" + value + "'");
      }
      f.at_ns = at;
      f.ecd = static_cast<std::size_t>(ecd);
      f.vm = static_cast<std::size_t>(vm);
      f.downtime_ns = down;
      faults.emplace_back(ordinal, f);
    } else if (key.rfind("attack", 0) == 0 && key.size() > 6) {
      const std::size_t ordinal = parse_ordinal(key, 6);
      const std::size_t comma = value.find(',');
      if (comma == std::string::npos) throw std::runtime_error("replay: bad attack '" + value + "'");
      const auto kind = attack::parse_attack_kind(value.substr(0, comma));
      if (!kind) throw std::runtime_error("replay: unknown attack kind in '" + value + "'");
      attack::AttackSpec a;
      a.kind = *kind;
      unsigned long long ecd = 0;
      long long start = 0, duration = 0;
      double magnitude = 0.0, secondary = 0.0;
      int excluded = 0;
      if (std::sscanf(value.c_str() + comma + 1, "%llu,%lld,%lld,%lf,%lf,%d", &ecd, &start,
                      &duration, &magnitude, &secondary, &excluded) != 6) {
        throw std::runtime_error("replay: bad attack '" + value + "'");
      }
      a.ecd = static_cast<std::size_t>(ecd);
      a.start_ns = start;
      a.duration_ns = duration;
      a.magnitude = magnitude;
      a.secondary = secondary;
      a.expect_excluded = excluded != 0;
      attacks.emplace_back(ordinal, a);
    } else {
      kv[key] = value;
    }
  }

  auto get_i = [&](const char* key, std::int64_t def) {
    auto it = kv.find(key);
    return it == kv.end() ? def : static_cast<std::int64_t>(std::stoll(it->second));
  };
  auto get_u = [&](const char* key, std::uint64_t def) {
    auto it = kv.find(key);
    return it == kv.end() ? def : static_cast<std::uint64_t>(std::stoull(it->second));
  };
  auto get_d = [&](const char* key, double def) {
    auto it = kv.find(key);
    return it == kv.end() ? def : std::stod(it->second);
  };

  FuzzCase c;
  c.master_seed = get_u("master_seed", c.master_seed);
  c.index = get_u("index", c.index);
  c.duration_ns = get_i("duration_ns", c.duration_ns);

  experiments::ScenarioConfig& s = c.scenario;
  s.seed = get_u("seed", s.seed);
  s.num_ecds = static_cast<std::size_t>(get_i("num_ecds", (std::int64_t)s.num_ecds));
  s.fta_f = static_cast<int>(get_i("fta_f", s.fta_f));
  if (kv.count("aggregation")) s.aggregation = parse_method(kv["aggregation"]);
  if (kv.count("topology")) s.topology = experiments::parse_topology(kv["topology"]);
  s.num_domains = static_cast<std::size_t>(get_i("num_domains", (std::int64_t)s.num_domains));
  s.partitions = static_cast<std::size_t>(get_i("partitions", (std::int64_t)s.partitions));
  s.max_drift_ppm = get_d("max_drift_ppm", s.max_drift_ppm);
  s.wander_sigma_ppm = get_d("wander_sigma_ppm", s.wander_sigma_ppm);
  s.nic_ts_jitter_ns = get_d("nic_ts_jitter_ns", s.nic_ts_jitter_ns);
  s.initial_phase_range_ns = get_d("initial_phase_range_ns", s.initial_phase_range_ns);
  s.host_link_delay_ns = get_i("host_link_delay_ns", s.host_link_delay_ns);
  s.host_link_jitter_ns = get_d("host_link_jitter_ns", s.host_link_jitter_ns);
  s.mesh_link_delay_ns = get_i("mesh_link_delay_ns", s.mesh_link_delay_ns);
  s.mesh_link_jitter_ns = get_d("mesh_link_jitter_ns", s.mesh_link_jitter_ns);
  s.switch_residence_ns = get_i("switch_residence_ns", s.switch_residence_ns);
  s.switch_residence_jitter_ns = get_d("switch_residence_jitter_ns", s.switch_residence_jitter_ns);
  s.sync_interval_ns = get_i("sync_interval_ns", s.sync_interval_ns);
  s.validity_threshold_ns = get_d("validity_threshold_ns", s.validity_threshold_ns);
  s.startup_threshold_ns = get_d("startup_threshold_ns", s.startup_threshold_ns);
  s.startup_consecutive = static_cast<int>(get_i("startup_consecutive", s.startup_consecutive));
  s.synctime_period_ns = get_i("synctime_period_ns", s.synctime_period_ns);
  s.synctime_feed_forward = get_i("synctime_feed_forward", s.synctime_feed_forward ? 1 : 0) != 0;
  s.gm_mutual_sync = get_i("gm_mutual_sync", s.gm_mutual_sync ? 1 : 0) != 0;
  s.measurement_ecd = static_cast<std::size_t>(get_i("measurement_ecd", (std::int64_t)s.measurement_ecd));
  s.gm_kernels.assign(s.num_ecds, "4.19.1");

  faults::InjectorConfig& inj = c.injector;
  inj.gm_kill_period_ns = get_i("gm_kill_period_ns", inj.gm_kill_period_ns);
  inj.gm_downtime_ns = get_i("gm_downtime_ns", inj.gm_downtime_ns);
  inj.standby_kills_per_hour = get_d("standby_kills_per_hour", inj.standby_kills_per_hour);
  inj.standby_min_gap_ns = get_i("standby_min_gap_ns", inj.standby_min_gap_ns);
  inj.standby_downtime_ns = get_i("standby_downtime_ns", inj.standby_downtime_ns);

  c.replay.raw = get_i("replay_raw", 0) != 0;
  c.fast_forward = get_i("fast_forward", 0) != 0;
  std::sort(faults.begin(), faults.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [ordinal, f] : faults) c.replay.faults.push_back(f);
  std::sort(attacks.begin(), attacks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [ordinal, a] : attacks) c.attacks.push_back(a);
  return c;
}

void write_replay(const std::string& path, const FuzzCase& c) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("replay: cannot write " + path);
  out << replay_to_text(c);
}

FuzzCase load_replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("replay: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return replay_from_text(buf.str());
}

faults::ReplaySchedule schedule_from_events(const std::vector<faults::InjectionEvent>& events) {
  faults::ReplaySchedule schedule;
  for (const faults::InjectionEvent& ev : events) {
    if (ev.is_reboot) continue;
    schedule.faults.push_back(
        faults::ScheduledFault{ev.at_ns, ev.ecd_idx, ev.vm_idx, ev.downtime_ns});
  }
  return schedule;
}

ShrinkOutcome shrink_case(const FuzzCase& c, std::size_t max_tests) {
  ShrinkOutcome out;
  out.minimized = c;

  const CaseResult base = run_case(c);
  out.events_simulated += base.events_executed;
  if (!base.brought_up || base.violations.empty()) return out; // nothing to shrink
  out.target_invariant = base.violations.front().invariant;
  const std::string& target = out.target_invariant;

  auto fails_with = [&target](const CaseResult& r) {
    for (const Violation& v : r.violations) {
      if (v.invariant == target) return true;
    }
    return false;
  };

  // Script the randomized run so the schedule becomes an editable list,
  // then confirm the scripted twin still shows the same violation class.
  FuzzCase scripted = c;
  if (scripted.replay.empty()) {
    scripted.replay = schedule_from_events(base.events);
    out.minimized = scripted;
    const CaseResult check = run_case(scripted);
    out.events_simulated += check.events_executed;
    if (!fails_with(check)) return out; // timing divergence: report un-shrunk
  }
  out.reproduced = true;

  auto oracle = [&](const std::vector<faults::ScheduledFault>& candidate) {
    FuzzCase t = scripted;
    t.replay.faults = candidate;
    const CaseResult r = run_case(t);
    out.events_simulated += r.events_executed;
    return fails_with(r);
  };
  out.minimized = scripted;
  out.minimized.replay.faults = ddmin(scripted.replay.faults, oracle, &out.stats, max_tests);
  return out;
}

ShrinkOutcome shrink_case_incremental(const FuzzCase& c, std::size_t max_tests) {
  // The attack driver arms absolute schedules straight on the queues (not
  // restorable), and snapshots are serial-only: both shapes keep the
  // proven full-re-run path.
  if (!c.attacks.empty() || c.scenario.partitions > 0) return shrink_case(c, max_tests);

  ShrinkOutcome out;
  out.minimized = c;

  // A randomized case needs one observed run to extract the schedule (the
  // violation class comes with it for free); a scripted corpus case skips
  // straight to the shared world.
  FuzzCase scripted = c;
  if (scripted.replay.empty()) {
    const CaseResult base = run_case(c);
    out.events_simulated += base.events_executed;
    if (!base.brought_up || base.violations.empty()) return out;
    out.target_invariant = base.violations.front().invariant;
    scripted.replay = schedule_from_events(base.events);
    out.minimized = scripted;
    if (scripted.replay.faults.empty()) return out;
  }

  try {
    experiments::Scenario scenario(scripted.scenario);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up();
    const auto cal = harness.calibrate();

    // The shared baseline: one converged world, captured once at the
    // first component-quiescent instant after calibration. Every
    // scheduled fault must lie beyond the capture time or probes would
    // schedule kills in the restored world's past.
    if (!scenario.run_to_quiescence()) {
      ShrinkOutcome fb = shrink_case(scripted, max_tests);
      fb.events_simulated += out.events_simulated + scenario.events_executed();
      return fb;
    }
    const sim::SimSnapshot snap = scenario.snapshot();
    for (const faults::ScheduledFault& f : scripted.replay.faults) {
      if (f.at_ns <= snap.now_ns) {
        ShrinkOutcome fb = shrink_case(scripted, max_tests);
        fb.events_simulated += out.events_simulated + scenario.events_executed();
        return fb;
      }
    }
    const std::int64_t end_ns = snap.now_ns + scripted.duration_ns;

    // One probe = restore + fresh suite and injector + fault phase. The
    // restore clears the queue first, so the previous probe's stale suite
    // and injector closures (standing polls, pending reboots) die before
    // anything could invoke their destroyed owners.
    auto probe = [&](const std::vector<faults::ScheduledFault>& candidate) {
      scenario.restore(snap);
      InvariantSuite suite(scenario);
      SuiteParams sp;
      sp.bound_ns = cal.bound.pi_ns;
      suite.add_default_invariants(sp);
      faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), scripted.injector);
      suite.observe(injector);
      suite.arm();
      faults::ReplaySchedule sched;
      sched.raw = scripted.replay.raw;
      sched.faults = candidate;
      injector.run(sched);
      scenario.run_to(end_ns);
      suite.finalize();
      return suite.violations();
    };
    auto fails_with = [&out](const std::vector<Violation>& vio) {
      for (const Violation& v : vio) {
        if (v.invariant == out.target_invariant) return true;
      }
      return false;
    };

    // The violation must re-prove itself inside THIS harness: the
    // snapshot timeline trails run_case's by the quiescence hunt, so the
    // full schedule is re-verified (and, for corpus cases, the target
    // class is learned) before any reduction is trusted.
    const std::vector<Violation> full = probe(scripted.replay.faults);
    if (out.target_invariant.empty()) {
      if (full.empty()) {
        out.events_simulated += scenario.events_executed();
        return out;
      }
      out.target_invariant = full.front().invariant;
    } else if (!fails_with(full)) {
      out.minimized = scripted;
      out.events_simulated += scenario.events_executed();
      return out; // timing divergence: report un-shrunk
    }
    out.reproduced = true;

    auto oracle = [&](const std::vector<faults::ScheduledFault>& candidate) {
      return fails_with(probe(candidate));
    };
    out.minimized = scripted;
    out.minimized.replay.faults = ddmin(scripted.replay.faults, oracle, &out.stats, max_tests);
    out.events_simulated += scenario.events_executed();
  } catch (const std::exception&) {
    // Construction or bring-up failed: nothing to shrink (mirrors
    // run_case's never-throw contract).
  }
  return out;
}

ShrinkOutcome shrink_attack_case(const FuzzCase& c, std::size_t max_tests) {
  ShrinkOutcome out;
  out.minimized = c;

  const CaseResult base = run_case(c);
  out.events_simulated += base.events_executed;
  if (!base.brought_up) return out;

  // The preserved property is the whole oracle signature: the verdict
  // class plus each attack's evicted-or-not bit (eviction *latencies*
  // shift as faults disappear; the pattern must not).
  auto signature = [](const CaseResult& r) {
    std::string sig =
        r.failed() ? (r.violations.empty() ? "fail" : "fail:" + r.violations.front().invariant)
                   : "ok";
    for (const AttackExclusionInvariant::Verdict& v : r.attack_verdicts) {
      sig += v.excluded_at_ns ? "+evicted" : "+held";
    }
    return sig;
  };
  const std::string target = signature(base);
  out.target_invariant = target;

  FuzzCase scripted = c;
  if (scripted.replay.empty()) {
    scripted.replay = schedule_from_events(base.events);
    out.minimized = scripted;
    if (scripted.replay.empty()) {
      // No faults at all: the attack schedule IS the minimal case.
      out.reproduced = true;
      out.stats.initial_size = 0;
      out.stats.final_size = 0;
      return out;
    }
    const CaseResult check = run_case(scripted);
    out.events_simulated += check.events_executed;
    if (signature(check) != target) return out; // timing divergence
  }
  out.reproduced = true;

  auto oracle = [&](const std::vector<faults::ScheduledFault>& candidate) {
    // An emptied schedule must stay scripted (an empty replay would fall
    // back to the randomized injector): keep one-element minimum unless
    // the schedule was already empty.
    if (candidate.empty()) return false;
    FuzzCase t = scripted;
    t.replay.faults = candidate;
    const CaseResult r = run_case(t);
    out.events_simulated += r.events_executed;
    return signature(r) == target;
  };
  out.minimized = scripted;
  out.minimized.replay.faults = ddmin(scripted.replay.faults, oracle, &out.stats, max_tests);
  return out;
}

} // namespace tsn::check
