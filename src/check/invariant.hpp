// Invariant oracles: system-level properties checked continuously while a
// Scenario runs (DESIGN.md §8).
//
// An Invariant consumes three deterministic event streams -- the
// scenario's obs::TraceRing records, the FaultInjector's kill/reboot
// events, and a periodic sampling tick -- and reports a Violation the
// moment a property is broken, with the simulation time and a
// human-readable message. The InvariantSuite owns the plumbing: it drains
// the trace ring incrementally (TraceRing::read_since), buffers injector
// events and dispatches both merged in time order, runs the sampling tick
// on the scenario's own Simulation, and collects violations.
//
// The five default oracles encode the paper's resilience claims:
//   1. PrecisionBoundInvariant   -- post-convergence, |FTA aggregated
//      offset| stays below the analytic bound Pi(N, f, E, Gamma).
//   2. FailoverLatencyInvariant  -- a kill of the CLOCK_SYNCTIME-
//      maintaining VM is answered by a takeover (or an explicit
//      no-successor record) within a bounded latency.
//   3. SynctimeMonotonicityInvariant -- CLOCK_SYNCTIME never jumps
//      backwards beyond the fail-over tolerance on any node.
//   4. FaultHypothesisInvariant  -- never both VMs of a node down at
//      once (the fail-silent fault hypothesis the injector must respect).
//   5. ConservationInvariant     -- kills == reboots + pending reboots,
//      event log and VM liveness agree, and aggregate/no-quorum trace
//      records are internally consistent with the FTA quorum rule.
//
// Invariants are plain objects bound to a ViolationSink, so unit tests
// feed them synthetic records without building a world.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/attack.hpp"
#include "faults/injector.hpp"
#include "obs/trace.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"

namespace tsn::experiments {
class Scenario;
}

namespace tsn::check {

struct Violation {
  std::string invariant;
  std::int64_t t_ns = 0;
  std::string message;
};

class ViolationSink {
 public:
  virtual ~ViolationSink() = default;
  virtual void report(Violation v) = 0;
};

class Invariant {
 public:
  virtual ~Invariant() = default;

  virtual std::string_view name() const = 0;
  void bind(ViolationSink* sink) { sink_ = sink; }

  /// A record drained from the scenario's trace ring (time order).
  virtual void on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring);
  /// A fault-injector kill/reboot (merged into the same time order).
  virtual void on_injection(const faults::InjectionEvent& ev);
  /// Periodic sampling tick (suite poll period).
  virtual void on_sample(std::int64_t now_ns);
  /// End-of-run accounting checks.
  virtual void finalize(std::int64_t now_ns);
  /// True when this invariant holds no armed deadline at `now_ns`: a
  /// fast-forward window would starve it of the evidence (aggregates,
  /// takeover records) the deadline is waiting for, turning a healthy run
  /// into a spurious violation. Default: always quiescent.
  virtual bool ff_quiescent(std::int64_t now_ns) const;

 protected:
  void report(std::int64_t t_ns, std::string message);

 private:
  ViolationSink* sink_ = nullptr;
};

// ---------------------------------------------------------------------------
// 1. FTA precision bound.

class PrecisionBoundInvariant : public Invariant {
 public:
  struct Params {
    /// The analytic bound Pi = u(N, f) * (E + Gamma) for the run's f.
    double bound_ns = 0.0;
    /// Headroom for servo transients riding on top of the steady state.
    double margin = 1.25;
    /// Aggregates below the bound before a source counts as converged.
    int converge_consecutive = 3;
    /// A source must (re)converge within this after arming or rebooting.
    std::int64_t reconverge_deadline_ns = 20'000'000'000LL;
  };

  explicit PrecisionBoundInvariant(Params p) : p_(p) {}

  std::string_view name() const override { return "precision-bound"; }
  void on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) override;
  void on_injection(const faults::InjectionEvent& ev) override;
  void on_sample(std::int64_t now_ns) override;
  void finalize(std::int64_t now_ns) override;
  bool ff_quiescent(std::int64_t now_ns) const override;

  /// Exempt a (compromised) source VM from judgment inside [from_ns,
  /// until_ns]: the attack library perturbs that VM's own timebase, and
  /// the paper's claim is that HONEST nodes keep the bound, not that the
  /// victim does. The first aggregate after the window re-arms a normal
  /// reconvergence deadline, so a victim that never recovers after the
  /// attack ends is still a violation.
  void exempt_source(const std::string& vm, std::int64_t from_ns, std::int64_t until_ns);

 private:
  struct Source {
    bool converged = false;
    int streak = 0;
    std::int64_t deadline_ns = INT64_MIN; ///< INT64_MIN = no active deadline
  };
  Source& source_for(const std::string& vm_name);
  void check_deadlines(std::int64_t now_ns, bool at_end);

  struct Exemption {
    std::int64_t from_ns = 0;
    std::int64_t until_ns = 0;
    bool rearmed = false; ///< post-window reconvergence deadline opened
  };

  Params p_;
  /// Keyed by VM name: coordinator trace sources are "<vm>/fta".
  std::map<std::string, Source> sources_;
  std::map<std::string, Exemption> exempt_;
  /// System-wide reconvergence grace: while ANY node's warm-rebooted
  /// clock is re-entering aggregation (its residual offset can approach
  /// the validity threshold, well above Pi), every observer's correction
  /// step is legitimately perturbed -- the steady-state bound only
  /// applies outside this window. Exceedances inside it demote the
  /// source quietly; deadlines extend to the window's end.
  std::int64_t grace_until_ns_ = INT64_MIN;
};

// ---------------------------------------------------------------------------
// 2. Fail-over latency.

class FailoverLatencyInvariant : public Invariant {
 public:
  /// `deadline_ns` should cover heartbeat timeout + a couple of monitor
  /// periods (the detection path) plus margin.
  FailoverLatencyInvariant(std::size_t num_ecds, std::int64_t deadline_ns);

  std::string_view name() const override { return "failover-latency"; }
  void on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) override;
  void on_injection(const faults::InjectionEvent& ev) override;
  void on_sample(std::int64_t now_ns) override;
  void finalize(std::int64_t now_ns) override;
  bool ff_quiescent(std::int64_t now_ns) const override;

 private:
  struct Pending {
    std::int64_t kill_ns = 0;
    std::string vm;
  };
  void expire(std::int64_t now_ns, bool at_end);

  std::int64_t deadline_ns_;
  std::vector<std::size_t> active_;             ///< designated active VM per ECD
  std::vector<std::optional<Pending>> pending_; ///< unanswered active-VM kill
};

/// Parse an ECD index out of a monitor trace-source name ("ecd3/monitor"
/// -> 2). Returns nullopt for non-monitor sources.
std::optional<std::size_t> monitor_source_ecd(std::string_view source_name);

// ---------------------------------------------------------------------------
// 3. CLOCK_SYNCTIME monotonicity.

class SynctimeMonotonicityInvariant : public Invariant {
 public:
  /// Reads a node's CLOCK_SYNCTIME (nullopt before the first publication).
  using Sampler = std::function<std::optional<std::int64_t>(std::size_t ecd)>;

  /// `tolerance_ns` absorbs the step a fail-over may introduce (the two
  /// VMs' views of the synchronized time differ by at most ~Pi plus servo
  /// transients).
  SynctimeMonotonicityInvariant(std::size_t num_ecds, double tolerance_ns, Sampler sampler);

  std::string_view name() const override { return "synctime-monotonic"; }
  void on_sample(std::int64_t now_ns) override;

  /// Skip judging `ecd` inside [from_ns, until_ns] (its CLOCK_SYNCTIME
  /// maintainer's clock is under attack); sampling restarts from a fresh
  /// baseline after the window.
  void exempt_ecd(std::size_t ecd, std::int64_t from_ns, std::int64_t until_ns);

 private:
  double tolerance_ns_;
  Sampler sampler_;
  std::vector<std::optional<std::int64_t>> last_;
  std::map<std::size_t, std::pair<std::int64_t, std::int64_t>> exempt_;
};

// ---------------------------------------------------------------------------
// 4. Fault-hypothesis conformance.

class FaultHypothesisInvariant : public Invariant {
 public:
  /// Counts a node's VMs that are currently not running (cross-check
  /// against the injector's own event bookkeeping); may be empty.
  using DownSampler = std::function<std::size_t(std::size_t ecd)>;

  FaultHypothesisInvariant(std::size_t num_ecds, std::size_t vms_per_ecd,
                           DownSampler down_sampler = {});

  std::string_view name() const override { return "fault-hypothesis"; }
  void on_injection(const faults::InjectionEvent& ev) override;
  void on_sample(std::int64_t now_ns) override;

 private:
  std::size_t vms_per_ecd_;
  DownSampler down_sampler_;
  std::vector<std::vector<bool>> down_; ///< [ecd][vm] down per injector events
  std::vector<bool> latched_;           ///< one report per live-sample episode
};

// ---------------------------------------------------------------------------
// 5. Conservation & trace consistency.

class ConservationInvariant : public Invariant {
 public:
  using StatsFn = std::function<faults::InjectorStats()>;
  /// Whether VM `vm` of ECD `ecd` is currently running; may be empty.
  using LivenessFn = std::function<bool(std::size_t ecd, std::size_t vm)>;

  /// `fta_quorum` is 2f+1 for the FTA method (0 disables the quorum
  /// consistency check, e.g. for median/mean ablations).
  ConservationInvariant(int fta_quorum, StatsFn stats, LivenessFn liveness = {});

  std::string_view name() const override { return "conservation"; }
  void on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) override;
  void on_injection(const faults::InjectionEvent& ev) override;
  void finalize(std::int64_t now_ns) override;

 private:
  int fta_quorum_;
  StatsFn stats_;
  LivenessFn liveness_;
  std::uint64_t kills_seen_ = 0;
  std::uint64_t reboots_seen_ = 0;
  std::map<std::pair<std::size_t, std::size_t>, std::int64_t> down_since_;
};

// ---------------------------------------------------------------------------
// 6. Attack eviction (the oracle half of src/attack, DESIGN.md §11).

/// Watches honest sources' kAggregate validity masks for the victim
/// domain's slot. For every armed attack it records WHEN the first honest
/// observer evicted the victim (eviction latency); for overt attacks
/// (spec.expect_excluded) a missing eviction within the deadline is a
/// violation -- the validity threshold failed to contain an attacker it
/// is designed to catch.
class AttackExclusionInvariant : public Invariant {
 public:
  struct Verdict {
    attack::ArmedAttack attack;
    /// First post-attack honest aggregate whose mask cleared the victim
    /// slot; nullopt = the victim was never evicted.
    std::optional<std::int64_t> excluded_at_ns;
    bool deadline_missed = false;
  };

  /// Maps a coordinator VM name to its ECD index (nullopt = unknown); used
  /// to tell honest observers from the victim's own (exempt) VMs.
  using EcdOfVm = std::function<std::optional<std::size_t>(const std::string& vm)>;

  AttackExclusionInvariant(std::vector<attack::ArmedAttack> attacks, EcdOfVm ecd_of_vm,
                           std::int64_t eviction_deadline_ns);

  std::string_view name() const override { return "attack-eviction"; }
  void on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) override;
  void on_sample(std::int64_t now_ns) override;
  void finalize(std::int64_t now_ns) override;
  bool ff_quiescent(std::int64_t now_ns) const override;

  const std::vector<Verdict>& verdicts() const { return verdicts_; }

 private:
  void check_deadlines(std::int64_t now_ns, bool at_end);

  EcdOfVm ecd_of_vm_;
  std::int64_t eviction_deadline_ns_;
  std::vector<Verdict> verdicts_;
};

// ---------------------------------------------------------------------------
// The suite.

struct SuiteParams {
  /// Analytic precision bound Pi for the run (from the calibration).
  double bound_ns = 0.0;
  double bound_margin = 1.25;
  int converge_consecutive = 3;
  std::int64_t reconverge_deadline_ns = 20'000'000'000LL;
  /// Fail-over answer deadline; defaults cover the monitor's detection
  /// path (heartbeat timeout + 2 periods) with ~2x margin.
  std::int64_t failover_deadline_ns = 1'500'000'000LL;
  /// Backward-step tolerance for CLOCK_SYNCTIME (0 = derive from bound).
  double synctime_tolerance_ns = 0.0;
  std::int64_t poll_period_ns = 50'000'000;
};

class InvariantSuite : public ViolationSink, public sim::Persistent {
 public:
  explicit InvariantSuite(experiments::Scenario& scenario);
  ~InvariantSuite();

  InvariantSuite(const InvariantSuite&) = delete;
  InvariantSuite& operator=(const InvariantSuite&) = delete;

  /// Add a custom invariant (binds it to this suite).
  Invariant& add(std::unique_ptr<Invariant> inv);
  /// Install the five default oracles wired to the scenario.
  void add_default_invariants(const SuiteParams& p);

  /// The default oracles that support attack exemptions (null until
  /// add_default_invariants ran); the attack harness marks compromised
  /// victims through these.
  PrecisionBoundInvariant* precision_bound() { return precision_; }
  SynctimeMonotonicityInvariant* synctime_monotonicity() { return synctime_; }

  /// Subscribe to an injector's events (call before faults start).
  void observe(faults::FaultInjector& injector);

  /// Start checking: sets the trace cursor to "now" (startup transients
  /// before arming are not judged) and schedules the poll task. Call
  /// after bring_up. Partitioned scenarios have no single Simulation to
  /// carry the periodic tick; the driver calls poll_now() at run_to
  /// boundaries instead (sampling granularity = stage length).
  void arm();

  /// Drain and dispatch everything outstanding, then run the sampling
  /// tick, at the current stage boundary. Partitioned mode only (serial
  /// runs poll automatically); safe no-op before arm()/after finalize().
  void poll_now();

  /// Drain outstanding events, run the end-of-run checks, stop polling.
  /// Idempotent.
  void finalize();

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  /// Deterministic one-line verdict: "ok" or "name xN; name xM" sorted by
  /// invariant name (byte-identical whatever thread ran the replica).
  std::string summary() const;
  std::uint64_t suppressed() const { return suppressed_; }

  void report(Violation v) override;

  /// True when no invariant is sitting on an armed deadline: the suite's
  /// contribution to the ff model predicate. Compose it with the
  /// scenario's own gate when arming fast-forward:
  ///   ff->set_model_quiescent([&] {
  ///     return sc.model_quiescent() && suite.ff_quiescent(sc.sim().now().ns());
  ///   });
  bool ff_quiescent(std::int64_t now_ns) const;

  // -- sim::Persistent ------------------------------------------------------
  // The suite joins the ff controller so its 50 ms poll parks across
  // analytic windows (ff_park runs one final poll first, so nothing
  // drained pre-window is judged with post-window eyes). It is
  // observational: no restorable state (fuzz probes build a fresh suite
  // per replay), so save/load are no-ops.
  const char* persist_name() const override { return "invariant-suite"; }
  void save_state(sim::StateWriter&) override {}
  void load_state(sim::StateReader&) override {}
  std::size_t live_events() const override { return poll_.active() ? 1u : 0u; }
  void ff_park() override;
  void ff_resume() override;

 private:
  void poll(std::int64_t now_ns);
  void dispatch_until(std::int64_t now_ns);

  experiments::Scenario& scenario_;
  faults::FaultInjector* injector_ = nullptr;
  PrecisionBoundInvariant* precision_ = nullptr;
  SynctimeMonotonicityInvariant* synctime_ = nullptr;
  std::vector<std::unique_ptr<Invariant>> invariants_;
  std::vector<Violation> violations_;
  std::uint64_t trace_cursor_ = 0;
  std::vector<std::uint64_t> region_cursors_; ///< per-region (partitioned)
  std::vector<obs::TraceRecord> drain_buf_;
  std::deque<faults::InjectionEvent> injections_;
  sim::Simulation::PeriodicHandle poll_;
  bool armed_ = false;
  bool finalized_ = false;
  std::int64_t poll_period_ns_ = 50'000'000;
  std::size_t max_violations_ = 200;
  std::uint64_t suppressed_ = 0;

  // Fast-forward park state.
  bool parked_poll_ = false;
  std::int64_t park_due_ns_ = 0;
};

} // namespace tsn::check
