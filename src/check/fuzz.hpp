// Randomized fault-campaign fuzzing (DESIGN.md §8).
//
// A FuzzCase is a complete, self-contained experiment: a randomized
// testbed topology (node count, tolerated faults f, drift, PDV) plus a
// randomized fault-injection profile, all derived deterministically from
// (master_seed, index) through util::RngStream. run_case() boots the
// world, calibrates the analytic precision bound, attaches the
// InvariantSuite and lets the fault injector loose; the verdict is the
// suite's violation list.
//
// On a violation the case serializes to a replay file -- a key=value text
// that reconstructs the exact world with the exact fault schedule -- and
// shrink_case() delta-debugs the schedule down to the minimal failing
// kill sequence. Replay files under tests/corpus/ double as a regression
// suite.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/attack.hpp"
#include "check/invariant.hpp"
#include "check/shrink.hpp"
#include "experiments/scenario.hpp"
#include "faults/injector.hpp"

namespace tsn::check {

struct FuzzCase {
  std::uint64_t master_seed = 1;
  std::uint64_t index = 0;
  std::int64_t duration_ns = 120'000'000'000LL; ///< fault phase after bring-up
  experiments::ScenarioConfig scenario;
  faults::InjectorConfig injector;
  /// Non-empty: run this scripted schedule instead of the randomized
  /// injector (replay / shrink / synthetic-violation mode).
  faults::ReplaySchedule replay;
  /// Non-empty: arm this adversarial schedule (AttackDriver) and attach
  /// the AttackExclusionInvariant; start_ns offsets are relative to the
  /// end of bring-up, like the injector's clock.
  attack::AttackSchedule attacks;
  /// Run the fault phase under the fast-forward controller (DESIGN.md
  /// §12): quiescent stretches advance analytically, every fault/attack
  /// edge is a barrier, and the invariant suite's armed deadlines keep
  /// windows shut until their evidence has flowed. Forces the serial
  /// runtime (the ff machinery is serial-only; serial and partitioned
  /// runs of one case are verdict-equivalent by the partition-determinism
  /// suite, but not byte-identical).
  bool fast_forward = false;
};

/// Derive case `index` of the campaign keyed by `master_seed`. Pure: the
/// same pair always yields the same case, independent of thread or call
/// order. Parameter ranges are chosen so a healthy implementation passes
/// (e.g. drift is capped so Gamma stays well inside the validity
/// threshold); see DESIGN.md §8 for the ranges and why.
/// `with_attacks` additionally derives an adversarial schedule (from its
/// own RNG stream, so the base world is bit-identical with and without).
FuzzCase derive_case(std::uint64_t master_seed, std::uint64_t index,
                     std::int64_t duration_ns = 120'000'000'000LL, bool with_attacks = false);

struct CaseResult {
  std::uint64_t index = 0;
  std::uint64_t case_seed = 0; ///< the ScenarioConfig seed actually used
  bool brought_up = false;     ///< initial synchronization converged
  double bound_ns = 0.0;       ///< calibrated Pi
  std::string summary;         ///< InvariantSuite::summary() or "bringup-failed: ..."
  std::vector<Violation> violations;
  faults::InjectorStats injector_stats;
  std::vector<faults::InjectionEvent> events; ///< for schedule extraction
  /// Per-attack oracle verdicts (empty unless the case carried attacks).
  std::vector<AttackExclusionInvariant::Verdict> attack_verdicts;
  /// Executive events the run consumed (world construction through
  /// finalize); the incremental-shrink benchmark's cost unit.
  std::uint64_t events_executed = 0;
  /// Fast-forward telemetry (all-zero when the case ran with ff off).
  sim::FfStats ff_stats;

  bool failed() const { return !brought_up || !violations.empty(); }
};

/// Build the world described by `c`, run it with the invariant suite
/// attached, and return the verdict. Never throws: construction or
/// bring-up errors are reported as a failed result.
CaseResult run_case(const FuzzCase& c);

struct CampaignConfig {
  std::uint64_t master_seed = 1;
  std::size_t num_cases = 64;
  std::size_t threads = 1;
  std::int64_t duration_ns = 120'000'000'000LL;
  /// Attack campaign: every case also carries a derived attack schedule.
  bool attacks = false;
  /// Run every case under the fast-forward controller (FuzzCase::
  /// fast_forward); the week-horizon smoke campaign's switch.
  bool fast_forward = false;
};

struct CampaignResult {
  std::vector<CaseResult> cases; ///< index order
  std::size_t failures = 0;

  /// Deterministic verdict table: one line per case plus a totals line.
  /// Byte-identical for any thread count (results are assembled in index
  /// order and each case is a sealed deterministic world).
  std::string summary_text() const;
};

CampaignResult run_campaign(const CampaignConfig& cfg);

// ---------------------------------------------------------------------------
// Replay files.

/// Serialize a case to self-contained "key=value" text (one key per
/// line, faults as "faultK=at_ns,ecd,vm,downtime_ns").
std::string replay_to_text(const FuzzCase& c);
/// Parse replay text; throws std::runtime_error on malformed input.
FuzzCase replay_from_text(const std::string& text);
void write_replay(const std::string& path, const FuzzCase& c);
/// Throws std::runtime_error if the file cannot be read or parsed.
FuzzCase load_replay(const std::string& path);

/// Extract the scripted schedule equivalent to an observed run: the kill
/// events with their realized times and downtimes (reboots are implied).
faults::ReplaySchedule schedule_from_events(const std::vector<faults::InjectionEvent>& events);

// ---------------------------------------------------------------------------
// Shrinking.

struct ShrinkOutcome {
  FuzzCase minimized;
  ShrinkStats stats;
  /// False if the scripted re-run of the original failure did not
  /// reproduce the violation (timing divergence); `minimized` is then the
  /// un-shrunk scripted case for manual inspection.
  bool reproduced = false;
  std::string target_invariant; ///< the violation class being preserved
  /// Total executive events all runs of this shrink consumed (base run,
  /// verification, every oracle probe). The incremental shrinker's whole
  /// point is making this strictly smaller than the full-re-run ddmin's.
  std::uint64_t events_simulated = 0;
};

/// Minimize a failing case's fault schedule with ddmin. If the case was a
/// randomized run (empty replay), its observed kill events are first
/// converted to a scripted schedule and the failure re-verified. The
/// oracle preserves the first violation's invariant class. Each oracle
/// test is a full scenario run; `max_tests` bounds the budget.
ShrinkOutcome shrink_case(const FuzzCase& c, std::size_t max_tests = 128);

/// Minimize an attack case's FAULT schedule while preserving its full
/// oracle signature -- pass/fail class plus each attack's evicted-or-not
/// verdict (the attacks themselves are the scenario under test and stay).
/// This is how clean attack-campaign cases shrink into compact corpus
/// replays; for failing cases shrink_case() already preserves the
/// violation class with the attacks riding along.
ShrinkOutcome shrink_attack_case(const FuzzCase& c, std::size_t max_tests = 64);

/// shrink_case(), but every ddmin probe starts from a SimSnapshot taken
/// at the converged post-calibration steady state instead of re-building
/// and re-converging the world: one bring-up is paid once, each probe
/// costs restore + fault-phase simulation only, so the events_simulated
/// total is strictly below the full-re-run shrinker's for any non-trivial
/// schedule. Fault-only serial cases only; attack or partitioned cases
/// fall back to shrink_case() (the attack driver arms non-restorable
/// absolute schedules, and snapshots are serial-only).
ShrinkOutcome shrink_case_incremental(const FuzzCase& c, std::size_t max_tests = 128);

} // namespace tsn::check
