// Delta debugging (ddmin, Zeller & Hildebrandt 2002): reduce a failing
// input to a locally-minimal subsequence that still fails.
//
// The fuzzer uses it to shrink a violating fault schedule -- typically
// dozens of randomized kills -- down to the few that actually matter, so
// the checked-in replay file IS the explanation of the bug. The algorithm
// is generic over the item type and the oracle: `still_fails(candidate)`
// must re-run the system under test deterministically (same seed, same
// config) with only the candidate subset applied.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace tsn::check {

struct ShrinkStats {
  std::size_t initial_size = 0;
  std::size_t final_size = 0;
  std::size_t tests_run = 0; ///< oracle invocations (each one a full re-run)
};

/// Minimize `items` under `still_fails`. The input is assumed to fail
/// (callers should verify once before shrinking; ddmin itself never tests
/// the full input). Returns a 1-minimal subsequence: removing any single
/// remaining chunk at the finest granularity makes the failure disappear.
/// `max_tests` bounds the oracle budget; on exhaustion the best-so-far
/// reduction is returned.
template <typename T, typename Pred>
std::vector<T> ddmin(std::vector<T> items, Pred&& still_fails, ShrinkStats* stats = nullptr,
                     std::size_t max_tests = 10'000) {
  ShrinkStats local;
  local.initial_size = items.size();

  auto test = [&](const std::vector<T>& candidate) {
    ++local.tests_run;
    return still_fails(candidate);
  };

  std::size_t granularity = 2;
  while (items.size() >= 2 && local.tests_run < max_tests) {
    const std::size_t n = std::min(granularity, items.size());
    const std::size_t chunk = (items.size() + n - 1) / n;
    bool reduced = false;

    // Try each complement (input minus one chunk), largest reduction first.
    for (std::size_t start = 0; start < items.size() && local.tests_run < max_tests;
         start += chunk) {
      const std::size_t end = std::min(start + chunk, items.size());
      std::vector<T> complement;
      complement.reserve(items.size() - (end - start));
      complement.insert(complement.end(), items.begin(), items.begin() + start);
      complement.insert(complement.end(), items.begin() + end, items.end());
      if (complement.empty()) continue;
      if (test(complement)) {
        items = std::move(complement);
        granularity = granularity > 2 ? granularity - 1 : 2;
        reduced = true;
        break;
      }
    }

    if (!reduced) {
      if (n >= items.size()) break; // finest granularity, nothing removable
      granularity = std::min(items.size(), granularity * 2);
    }
  }

  // Try the empty-adjacent case ddmin's complement loop skips: a single
  // surviving item might itself be unnecessary (failure needs zero items
  // -- e.g. an oracle that mis-fires on healthy runs).
  if (items.size() == 1 && local.tests_run < max_tests) {
    if (test(std::vector<T>{})) items.clear();
  }

  local.final_size = items.size();
  if (stats) *stats = local;
  return items;
}

} // namespace tsn::check
