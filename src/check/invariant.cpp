#include "check/invariant.hpp"

#include <algorithm>
#include <bitset>
#include <cmath>

#include "experiments/scenario.hpp"
#include "gptp/servo.hpp"
#include "util/str.hpp"

namespace tsn::check {

void Invariant::on_trace(const obs::TraceRecord&, const obs::TraceRing&) {}
void Invariant::on_injection(const faults::InjectionEvent&) {}
void Invariant::on_sample(std::int64_t) {}
void Invariant::finalize(std::int64_t) {}
bool Invariant::ff_quiescent(std::int64_t) const { return true; }

void Invariant::report(std::int64_t t_ns, std::string message) {
  if (sink_) sink_->report(Violation{std::string(name()), t_ns, std::move(message)});
}

namespace {

/// Strip a "/fta" suffix; nullopt for non-coordinator sources.
std::optional<std::string> fta_source_vm(std::string_view source_name) {
  constexpr std::string_view suffix = "/fta";
  if (source_name.size() <= suffix.size()) return std::nullopt;
  if (source_name.substr(source_name.size() - suffix.size()) != suffix) return std::nullopt;
  return std::string(source_name.substr(0, source_name.size() - suffix.size()));
}

/// Strip a ".servo" suffix then the "/fta" one: "c11/fta.servo" -> "c11".
/// Nullopt for non-coordinator servos (the synctime updater's, "<vm>/st.servo"
/// flavors) -- their jumps are fail-over steps the synctime tolerance covers.
std::optional<std::string> coordinator_servo_vm(std::string_view source_name) {
  constexpr std::string_view suffix = ".servo";
  if (source_name.size() <= suffix.size()) return std::nullopt;
  if (source_name.substr(source_name.size() - suffix.size()) != suffix) return std::nullopt;
  return fta_source_vm(source_name.substr(0, source_name.size() - suffix.size()));
}

} // namespace

std::optional<std::size_t> monitor_source_ecd(std::string_view source_name) {
  constexpr std::string_view prefix = "ecd";
  constexpr std::string_view suffix = "/monitor";
  if (source_name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (source_name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (source_name.substr(source_name.size() - suffix.size()) != suffix) return std::nullopt;
  const std::string_view digits =
      source_name.substr(prefix.size(), source_name.size() - prefix.size() - suffix.size());
  std::size_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (value == 0) return std::nullopt; // ECD names are 1-based
  return value - 1;
}

// ---------------------------------------------------------------------------
// PrecisionBoundInvariant

PrecisionBoundInvariant::Source& PrecisionBoundInvariant::source_for(const std::string& vm_name) {
  auto [it, inserted] = sources_.try_emplace(vm_name);
  return it->second;
}

void PrecisionBoundInvariant::exempt_source(const std::string& vm, std::int64_t from_ns,
                                            std::int64_t until_ns) {
  Exemption& e = exempt_[vm];
  // Overlapping attacks on the same victim merge into one wide window.
  if (e.until_ns == 0 && e.from_ns == 0) {
    e.from_ns = from_ns;
    e.until_ns = until_ns;
  } else {
    e.from_ns = std::min(e.from_ns, from_ns);
    e.until_ns = std::max(e.until_ns, until_ns);
  }
  e.rearmed = false;
}

void PrecisionBoundInvariant::on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) {
  if (r.kind == obs::TraceKind::kServoState &&
      r.a == static_cast<std::uint32_t>(gptp::PiServo::State::kJump)) {
    // A coordinator servo announced a deliberate clock step. The stepped
    // clock (and, until it re-validates, every observer aggregating it)
    // is legitimately off the steady-state bound: demote it with a fresh
    // reconvergence deadline and open the system-wide grace window,
    // exactly like a warm reboot.
    const auto vm = coordinator_servo_vm(ring.name(r.source));
    if (vm) {
      Source& s = source_for(*vm);
      s.converged = false;
      s.streak = 0;
      s.deadline_ns = r.t_ns + p_.reconverge_deadline_ns;
      grace_until_ns_ = std::max(grace_until_ns_, r.t_ns + p_.reconverge_deadline_ns);
    }
    return;
  }
  if (r.kind != obs::TraceKind::kAggregate) return;
  const auto vm = fta_source_vm(ring.name(r.source));
  if (!vm) return;

  if (auto e = exempt_.find(*vm); e != exempt_.end() && r.t_ns >= e->second.from_ns) {
    Source& s = source_for(*vm);
    if (r.t_ns <= e->second.until_ns) {
      // Compromised and under attack: not judged at all.
      s.converged = false;
      s.streak = 0;
      s.deadline_ns = INT64_MIN;
      return;
    }
    if (!e->second.rearmed) {
      // First aggregate after the attack window: the victim must now
      // recover like a rebooted clock would.
      e->second.rearmed = true;
      s.converged = false;
      s.streak = 0;
      s.deadline_ns = r.t_ns + p_.reconverge_deadline_ns;
    }
  }

  auto it = sources_.find(*vm);
  if (it == sources_.end()) {
    // First aggregate from this source since arming: give it the standard
    // window to converge instead of judging its startup transient.
    it = sources_.try_emplace(*vm).first;
    it->second.deadline_ns = r.t_ns + p_.reconverge_deadline_ns;
  }
  Source& s = it->second;

  const double limit = p_.bound_ns * p_.margin;
  const double off = std::abs(r.v0);
  if (s.converged) {
    if (off > limit) {
      if (r.t_ns > grace_until_ns_) {
        report(r.t_ns, util::format("%s: |aggregated offset| %.0f ns exceeds bound %.0f ns "
                                    "(Pi %.0f ns x margin %.2f) post-convergence",
                                    vm->c_str(), off, limit, p_.bound_ns, p_.margin));
      }
      // Demote so a persistently diverged clock re-reports once per missed
      // reconvergence deadline instead of once per aggregation round (and
      // so a grace-window transient must re-prove convergence quietly).
      s.converged = false;
      s.streak = 0;
      s.deadline_ns = r.t_ns + p_.reconverge_deadline_ns;
    }
  } else {
    if (off <= limit) {
      if (++s.streak >= p_.converge_consecutive) {
        s.converged = true;
        s.streak = 0;
        s.deadline_ns = INT64_MIN;
      }
    } else {
      s.streak = 0;
    }
  }
}

void PrecisionBoundInvariant::on_injection(const faults::InjectionEvent& ev) {
  Source& s = source_for(ev.vm);
  if (!ev.is_reboot) {
    // Down: no aggregates expected, no deadline while down.
    s.converged = false;
    s.streak = 0;
    s.deadline_ns = INT64_MIN;
  } else {
    // Warm reboot: the NIC PHC drifted undisciplined through the whole
    // downtime, so the first aggregates legitimately exceed the bound.
    // Require reconvergence within the deadline instead, and open the
    // system-wide grace window -- every observer that aggregates this
    // clock once it re-validates sees the residual offset too.
    s.converged = false;
    s.streak = 0;
    s.deadline_ns = ev.at_ns + p_.reconverge_deadline_ns;
    grace_until_ns_ = std::max(grace_until_ns_, ev.at_ns + p_.reconverge_deadline_ns);
  }
}

void PrecisionBoundInvariant::check_deadlines(std::int64_t now_ns, bool at_end) {
  for (auto& [vm, s] : sources_) {
    if (s.converged || s.deadline_ns == INT64_MIN) continue;
    if (auto e = exempt_.find(vm);
        e != exempt_.end() && now_ns >= e->second.from_ns && now_ns <= e->second.until_ns) {
      continue;
    }
    // While the grace window is open (another reboot is still settling),
    // reconvergence is allowed to take until the window closes.
    const std::int64_t deadline = std::max(s.deadline_ns, grace_until_ns_);
    if (now_ns > deadline) {
      report(now_ns, util::format("%s: failed to (re)converge below %.0f ns within %lld ms",
                                  vm.c_str(), p_.bound_ns * p_.margin,
                                  (long long)(p_.reconverge_deadline_ns / 1'000'000)));
      s.deadline_ns = INT64_MIN;
    } else if (at_end) {
      // The run ended inside the reconvergence window: not a violation.
      s.deadline_ns = INT64_MIN;
    }
  }
}

void PrecisionBoundInvariant::on_sample(std::int64_t now_ns) { check_deadlines(now_ns, false); }
void PrecisionBoundInvariant::finalize(std::int64_t now_ns) { check_deadlines(now_ns, true); }

bool PrecisionBoundInvariant::ff_quiescent(std::int64_t now_ns) const {
  // An armed reconvergence deadline (or an open grace window) is waiting
  // for aggregate evidence that an analytic window would withhold.
  if (now_ns < grace_until_ns_) return false;
  for (const auto& [vm, s] : sources_) {
    if (!s.converged && s.deadline_ns != INT64_MIN) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FailoverLatencyInvariant

FailoverLatencyInvariant::FailoverLatencyInvariant(std::size_t num_ecds, std::int64_t deadline_ns)
    : deadline_ns_(deadline_ns), active_(num_ecds, 0), pending_(num_ecds) {}

void FailoverLatencyInvariant::on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) {
  if (r.kind != obs::TraceKind::kTakeover && r.kind != obs::TraceKind::kNoSuccessor) return;
  const auto ecd = monitor_source_ecd(ring.name(r.source));
  if (!ecd || *ecd >= active_.size()) return;

  if (r.kind == obs::TraceKind::kTakeover) {
    if (pending_[*ecd]) {
      const std::int64_t latency = r.t_ns - pending_[*ecd]->kill_ns;
      if (latency > deadline_ns_) {
        report(r.t_ns, util::format("%s: takeover answered kill of %s only after %lld ms "
                                    "(deadline %lld ms)",
                                    ring.name(r.source).c_str(), pending_[*ecd]->vm.c_str(),
                                    (long long)(latency / 1'000'000),
                                    (long long)(deadline_ns_ / 1'000'000)));
      }
      pending_[*ecd].reset();
    }
    active_[*ecd] = r.a;
  } else {
    // Explicit no-successor verdict: the monitor answered, but there was
    // nobody to promote. Whether that state was ever legal is the
    // fault-hypothesis invariant's call, not a latency failure.
    pending_[*ecd].reset();
  }
}

void FailoverLatencyInvariant::on_injection(const faults::InjectionEvent& ev) {
  if (ev.is_reboot || ev.ecd_idx >= active_.size()) return;
  if (ev.vm_idx == active_[ev.ecd_idx]) {
    pending_[ev.ecd_idx] = Pending{ev.at_ns, ev.vm};
  }
}

void FailoverLatencyInvariant::expire(std::int64_t now_ns, bool at_end) {
  for (std::size_t e = 0; e < pending_.size(); ++e) {
    if (!pending_[e]) continue;
    const std::int64_t age = now_ns - pending_[e]->kill_ns;
    if (age > deadline_ns_) {
      report(now_ns, util::format("ecd%zu: kill of active VM %s unanswered after %lld ms "
                                  "(deadline %lld ms)",
                                  e + 1, pending_[e]->vm.c_str(), (long long)(age / 1'000'000),
                                  (long long)(deadline_ns_ / 1'000'000)));
      pending_[e].reset();
    } else if (at_end) {
      // Kill landed within one deadline of the end of the run.
      pending_[e].reset();
    }
  }
}

void FailoverLatencyInvariant::on_sample(std::int64_t now_ns) { expire(now_ns, false); }
void FailoverLatencyInvariant::finalize(std::int64_t now_ns) { expire(now_ns, true); }

bool FailoverLatencyInvariant::ff_quiescent(std::int64_t) const {
  for (const auto& p : pending_) {
    if (p) return false; // unanswered active-VM kill: takeover in flight
  }
  return true;
}

// ---------------------------------------------------------------------------
// SynctimeMonotonicityInvariant

SynctimeMonotonicityInvariant::SynctimeMonotonicityInvariant(std::size_t num_ecds,
                                                             double tolerance_ns, Sampler sampler)
    : tolerance_ns_(tolerance_ns), sampler_(std::move(sampler)), last_(num_ecds) {}

void SynctimeMonotonicityInvariant::exempt_ecd(std::size_t ecd, std::int64_t from_ns,
                                               std::int64_t until_ns) {
  auto [it, inserted] = exempt_.try_emplace(ecd, from_ns, until_ns);
  if (!inserted) {
    it->second.first = std::min(it->second.first, from_ns);
    it->second.second = std::max(it->second.second, until_ns);
  }
}

void SynctimeMonotonicityInvariant::on_sample(std::int64_t now_ns) {
  if (!sampler_) return;
  for (std::size_t e = 0; e < last_.size(); ++e) {
    if (auto ex = exempt_.find(e);
        ex != exempt_.end() && now_ns >= ex->second.first && now_ns <= ex->second.second) {
      // Under attack: drop the baseline so the post-window comparison
      // starts fresh instead of judging the attack-era step.
      last_[e].reset();
      continue;
    }
    const std::optional<std::int64_t> now_v = sampler_(e);
    if (!now_v) continue;
    if (last_[e] && static_cast<double>(*now_v) < static_cast<double>(*last_[e]) - tolerance_ns_) {
      report(now_ns, util::format("ecd%zu: CLOCK_SYNCTIME stepped backwards %lld ns "
                                  "(tolerance %.0f ns)",
                                  e + 1, (long long)(*last_[e] - *now_v), tolerance_ns_));
    }
    last_[e] = *now_v;
  }
}

// ---------------------------------------------------------------------------
// FaultHypothesisInvariant

FaultHypothesisInvariant::FaultHypothesisInvariant(std::size_t num_ecds, std::size_t vms_per_ecd,
                                                   DownSampler down_sampler)
    : vms_per_ecd_(vms_per_ecd), down_sampler_(std::move(down_sampler)),
      down_(num_ecds, std::vector<bool>(vms_per_ecd, false)), latched_(num_ecds, false) {}

void FaultHypothesisInvariant::on_injection(const faults::InjectionEvent& ev) {
  if (ev.ecd_idx >= down_.size() || ev.vm_idx >= vms_per_ecd_) return;
  down_[ev.ecd_idx][ev.vm_idx] = !ev.is_reboot;
  if (!ev.is_reboot) {
    const auto n = static_cast<std::size_t>(
        std::count(down_[ev.ecd_idx].begin(), down_[ev.ecd_idx].end(), true));
    if (n >= 2) {
      report(ev.at_ns, util::format("ecd%zu: kill of %s leaves %zu VMs of the node down at once "
                                    "(fail-silent fault hypothesis violated)",
                                    ev.ecd_idx + 1, ev.vm.c_str(), n));
    }
  }
}

void FaultHypothesisInvariant::on_sample(std::int64_t now_ns) {
  if (!down_sampler_) return;
  for (std::size_t e = 0; e < down_.size(); ++e) {
    const std::size_t n = down_sampler_(e);
    if (n >= 2) {
      if (!latched_[e]) {
        latched_[e] = true;
        report(now_ns, util::format("ecd%zu: %zu VMs observed not running simultaneously "
                                    "(fail-silent fault hypothesis violated)",
                                    e + 1, n));
      }
    } else {
      latched_[e] = false;
    }
  }
}

// ---------------------------------------------------------------------------
// ConservationInvariant

ConservationInvariant::ConservationInvariant(int fta_quorum, StatsFn stats, LivenessFn liveness)
    : fta_quorum_(fta_quorum), stats_(std::move(stats)), liveness_(std::move(liveness)) {}

void ConservationInvariant::on_trace(const obs::TraceRecord& r, const obs::TraceRing&) {
  if (r.kind == obs::TraceKind::kAggregate) {
    const auto used = static_cast<std::uint32_t>(std::bitset<32>(r.mask).count());
    if (used != r.a) {
      report(r.t_ns, util::format("aggregate record inconsistent: %u clocks used but validity "
                                  "mask has %u bits set",
                                  r.a, used));
    }
    if (fta_quorum_ > 0 && r.a < static_cast<std::uint32_t>(fta_quorum_)) {
      report(r.t_ns, util::format("aggregate executed with %u clocks, below the FTA quorum "
                                  "2f+1 = %d",
                                  r.a, fta_quorum_));
    }
  } else if (r.kind == obs::TraceKind::kNoQuorum) {
    if (fta_quorum_ > 0 && r.a >= static_cast<std::uint32_t>(fta_quorum_)) {
      report(r.t_ns, util::format("no-quorum recorded despite %u usable clocks (quorum 2f+1 "
                                  "= %d)",
                                  r.a, fta_quorum_));
    }
  }
}

void ConservationInvariant::on_injection(const faults::InjectionEvent& ev) {
  const auto key = std::make_pair(ev.ecd_idx, ev.vm_idx);
  if (!ev.is_reboot) {
    ++kills_seen_;
    down_since_[key] = ev.at_ns;
  } else {
    ++reboots_seen_;
    if (down_since_.erase(key) == 0) {
      report(ev.at_ns, util::format("reboot of %s without a matching kill event", ev.vm.c_str()));
    }
  }
}

void ConservationInvariant::finalize(std::int64_t now_ns) {
  if (!stats_) return;
  const faults::InjectorStats s = stats_();
  if (s.total_kills != s.reboots + s.pending_reboots) {
    report(now_ns, util::format("injector accounting broken: %llu kills != %llu reboots + %llu "
                                "pending",
                                (unsigned long long)s.total_kills, (unsigned long long)s.reboots,
                                (unsigned long long)s.pending_reboots));
  }
  if (kills_seen_ != s.total_kills || reboots_seen_ != s.reboots) {
    report(now_ns, util::format("event log disagrees with injector stats: saw %llu kills / %llu "
                                "reboots, stats say %llu / %llu",
                                (unsigned long long)kills_seen_, (unsigned long long)reboots_seen_,
                                (unsigned long long)s.total_kills, (unsigned long long)s.reboots));
  }
  if (down_since_.size() != s.pending_reboots) {
    report(now_ns, util::format("%zu VMs tracked still-down but injector reports %llu pending "
                                "reboots",
                                down_since_.size(), (unsigned long long)s.pending_reboots));
  }
  if (liveness_) {
    for (const auto& [key, since] : down_since_) {
      if (liveness_(key.first, key.second)) {
        report(now_ns, util::format("ecd%zu VM %zu recorded down since t=%lld ns but is running",
                                    key.first + 1, key.second, (long long)since));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AttackExclusionInvariant

AttackExclusionInvariant::AttackExclusionInvariant(std::vector<attack::ArmedAttack> attacks,
                                                   EcdOfVm ecd_of_vm,
                                                   std::int64_t eviction_deadline_ns)
    : ecd_of_vm_(std::move(ecd_of_vm)), eviction_deadline_ns_(eviction_deadline_ns) {
  verdicts_.reserve(attacks.size());
  for (attack::ArmedAttack& a : attacks) verdicts_.push_back(Verdict{std::move(a), std::nullopt});
}

void AttackExclusionInvariant::on_trace(const obs::TraceRecord& r, const obs::TraceRing& ring) {
  if (r.kind != obs::TraceKind::kAggregate) return;
  const auto vm = fta_source_vm(ring.name(r.source));
  if (!vm) return;
  const std::optional<std::size_t> src_ecd = ecd_of_vm_ ? ecd_of_vm_(*vm) : std::nullopt;
  if (!src_ecd) return;

  for (Verdict& v : verdicts_) {
    if (v.excluded_at_ns) continue;
    if (*src_ecd == v.attack.spec.ecd) continue; // the victim's own VMs are not witnesses
    if (r.t_ns < v.attack.start_abs_ns) continue;
    if (v.attack.victim_slot >= 32) continue;
    if (r.a < 1 || (r.mask >> v.attack.victim_slot) & 1u) continue; // victim still valid
    v.excluded_at_ns = r.t_ns;
  }
}

void AttackExclusionInvariant::check_deadlines(std::int64_t now_ns, bool at_end) {
  for (Verdict& v : verdicts_) {
    if (!v.attack.spec.expect_excluded || v.excluded_at_ns || v.deadline_missed) continue;
    const std::int64_t deadline = v.attack.start_abs_ns + eviction_deadline_ns_;
    if (now_ns > deadline) {
      v.deadline_missed = true;
      report(now_ns,
             util::format("%s attack on ecd%zu (magnitude %.0f) not evicted by any honest "
                          "observer within %lld ms of t=%lld ns",
                          attack::to_string(v.attack.spec.kind), v.attack.spec.ecd + 1,
                          v.attack.spec.magnitude, (long long)(eviction_deadline_ns_ / 1'000'000),
                          (long long)v.attack.start_abs_ns));
    } else if (at_end) {
      // The run ended inside the eviction window: not judged.
      v.deadline_missed = true;
    }
  }
}

void AttackExclusionInvariant::on_sample(std::int64_t now_ns) { check_deadlines(now_ns, false); }
void AttackExclusionInvariant::finalize(std::int64_t now_ns) { check_deadlines(now_ns, true); }

bool AttackExclusionInvariant::ff_quiescent(std::int64_t now_ns) const {
  for (const Verdict& v : verdicts_) {
    if (!v.attack.spec.expect_excluded || v.excluded_at_ns || v.deadline_missed) continue;
    // Eviction window still open: honest aggregates are the evidence.
    if (now_ns >= v.attack.start_abs_ns) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// InvariantSuite

InvariantSuite::InvariantSuite(experiments::Scenario& scenario) : scenario_(scenario) {}

InvariantSuite::~InvariantSuite() { poll_.cancel(); }

Invariant& InvariantSuite::add(std::unique_ptr<Invariant> inv) {
  inv->bind(this);
  invariants_.push_back(std::move(inv));
  return *invariants_.back();
}

void InvariantSuite::add_default_invariants(const SuiteParams& p) {
  const experiments::ScenarioConfig& cfg = scenario_.config();
  poll_period_ns_ = p.poll_period_ns;

  auto precision = std::make_unique<PrecisionBoundInvariant>(PrecisionBoundInvariant::Params{
      p.bound_ns, p.bound_margin, p.converge_consecutive, p.reconverge_deadline_ns});
  precision_ = precision.get();
  add(std::move(precision));

  add(std::make_unique<FailoverLatencyInvariant>(scenario_.num_ecds(), p.failover_deadline_ns));

  const double tol = p.synctime_tolerance_ns > 0.0 ? p.synctime_tolerance_ns
                                                   : 2.0 * p.bound_ns + 10'000.0;
  experiments::Scenario* sc = &scenario_;
  auto synctime = std::make_unique<SynctimeMonotonicityInvariant>(
      scenario_.num_ecds(), tol,
      [sc](std::size_t e) { return sc->ecd(e).read_synctime(); });
  synctime_ = synctime.get();
  add(std::move(synctime));

  add(std::make_unique<FaultHypothesisInvariant>(
      scenario_.num_ecds(), scenario_.ecd(0).vm_count(), [sc](std::size_t e) {
        std::size_t down = 0;
        hv::Ecd& ecd = sc->ecd(e);
        for (std::size_t i = 0; i < ecd.vm_count(); ++i) {
          if (!ecd.vm(i).running()) ++down;
        }
        return down;
      }));

  const int quorum =
      cfg.aggregation == core::AggregationMethod::kFta ? 2 * cfg.fta_f + 1 : 0;
  add(std::make_unique<ConservationInvariant>(
      quorum, [this] { return injector_ ? injector_->stats() : faults::InjectorStats{}; },
      [sc](std::size_t e, std::size_t v) { return sc->ecd(e).vm(v).running(); }));
}

void InvariantSuite::observe(faults::FaultInjector& injector) {
  injector_ = &injector;
  injector.add_listener([this](const faults::InjectionEvent& ev) { injections_.push_back(ev); });
}

void InvariantSuite::arm() {
  if (armed_) return;
  armed_ = true;
  // Everything already in the rings is pre-arm history (boot, startup
  // phase); the oracles judge the run from here on.
  injections_.clear();
  if (scenario_.partitioned()) {
    region_cursors_.resize(scenario_.region_count());
    for (std::size_t r = 0; r < region_cursors_.size(); ++r) {
      region_cursors_[r] = scenario_.region_trace(r).total();
    }
    // No periodic tick: no single Simulation drives a partitioned world,
    // and a region-local task could not safely sample its neighbors. The
    // driver calls poll_now() between stages instead.
    return;
  }
  trace_cursor_ = scenario_.trace().total();
  const std::int64_t start = scenario_.sim().now().ns();
  poll_ = scenario_.sim().every(sim::SimTime(start + poll_period_ns_), poll_period_ns_,
                                [this](sim::SimTime t) { poll(t.ns()); });
}

void InvariantSuite::poll(std::int64_t now_ns) {
  if (finalized_) return;
  dispatch_until(now_ns);
  for (auto& inv : invariants_) inv->on_sample(now_ns);
}

void InvariantSuite::poll_now() {
  if (!armed_ || finalized_ || !scenario_.partitioned()) return;
  poll(scenario_.now_ns());
}

bool InvariantSuite::ff_quiescent(std::int64_t now_ns) const {
  if (!armed_ || finalized_) return true;
  if (!injections_.empty()) return false; // buffered, not yet dispatched
  for (const auto& inv : invariants_) {
    if (!inv->ff_quiescent(now_ns)) return false;
  }
  return true;
}

void InvariantSuite::ff_park() {
  parked_poll_ = poll_.active();
  if (!parked_poll_) return;
  park_due_ns_ = poll_.next_due_ns();
  poll_.cancel();
  // One last poll at the park instant: everything already traced belongs
  // to the pre-window world and must be judged with pre-window deadlines.
  poll(scenario_.sim().now().ns());
}

void InvariantSuite::ff_resume() {
  if (!parked_poll_) return;
  parked_poll_ = false;
  poll_ = scenario_.sim().every(
      sim::SimTime(
          sim::align_phase(park_due_ns_, poll_period_ns_, scenario_.sim().now().ns())),
      poll_period_ns_, [this](sim::SimTime t) { poll(t.ns()); });
}

void InvariantSuite::dispatch_until(std::int64_t now_ns) {
  if (scenario_.partitioned()) {
    // K-way merge of the region rings: tag each drained record with its
    // region and sort by (time, region) -- stable, so a region's records
    // keep their deterministic execution order. The home region's
    // injection stream is folded in afterwards like the serial path.
    struct Tagged {
      obs::TraceRecord rec;
      std::size_t region;
    };
    std::vector<Tagged> tagged;
    for (std::size_t r = 0; r < region_cursors_.size(); ++r) {
      drain_buf_.clear();
      const std::uint64_t lost =
          scenario_.region_trace(r).read_since(region_cursors_[r], drain_buf_);
      if (lost > 0) {
        report(Violation{"trace-overrun", now_ns,
                         util::format("region %zu: %llu trace records overwritten before the "
                                      "suite read them (raise the ring capacity or poll more)",
                                      r, (unsigned long long)lost)});
      }
      for (const obs::TraceRecord& rec : drain_buf_) tagged.push_back({rec, r});
    }
    std::stable_sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
      if (a.rec.t_ns != b.rec.t_ns) return a.rec.t_ns < b.rec.t_ns;
      return a.region < b.region;
    });
    // Injections arrive at the home region in report order, which is not
    // monotone in the event's at_ns (local kills report immediately,
    // remote ones a control-hop later) -- sort a snapshot.
    std::vector<faults::InjectionEvent> inj(injections_.begin(), injections_.end());
    injections_.clear();
    std::stable_sort(inj.begin(), inj.end(),
                     [](const faults::InjectionEvent& a, const faults::InjectionEvent& b) {
                       return a.at_ns < b.at_ns;
                     });
    std::size_t ti = 0, ii = 0;
    while (ti < tagged.size() || ii < inj.size()) {
      const bool take_injection =
          ii < inj.size() && (ti >= tagged.size() || inj[ii].at_ns <= tagged[ti].rec.t_ns);
      if (take_injection) {
        for (auto& inv : invariants_) inv->on_injection(inj[ii]);
        ++ii;
      } else {
        const obs::TraceRing& ring = scenario_.region_trace(tagged[ti].region);
        for (auto& inv : invariants_) inv->on_trace(tagged[ti].rec, ring);
        ++ti;
      }
    }
    return;
  }

  drain_buf_.clear();
  const std::uint64_t lost = scenario_.trace().read_since(trace_cursor_, drain_buf_);
  if (lost > 0) {
    report(Violation{"trace-overrun", now_ns,
                     util::format("%llu trace records overwritten before the suite read them "
                                  "(raise the ring capacity or the poll rate)",
                                  (unsigned long long)lost)});
  }
  // Merge the two (individually time-ordered) streams; injections win ties
  // so a reboot demotion precedes the rebooted VM's first aggregates.
  const obs::TraceRing& ring = scenario_.trace();
  std::size_t ti = 0;
  while (ti < drain_buf_.size() || !injections_.empty()) {
    const bool take_injection =
        !injections_.empty() &&
        (ti >= drain_buf_.size() || injections_.front().at_ns <= drain_buf_[ti].t_ns);
    if (take_injection) {
      const faults::InjectionEvent ev = injections_.front();
      injections_.pop_front();
      for (auto& inv : invariants_) inv->on_injection(ev);
    } else {
      for (auto& inv : invariants_) inv->on_trace(drain_buf_[ti], ring);
      ++ti;
    }
  }
}

void InvariantSuite::finalize() {
  if (!armed_ || finalized_) return;
  poll_.cancel();
  const std::int64_t now = scenario_.now_ns();
  dispatch_until(now);
  for (auto& inv : invariants_) inv->on_sample(now);
  finalized_ = true;
  for (auto& inv : invariants_) inv->finalize(now);
}

void InvariantSuite::report(Violation v) {
  if (violations_.size() >= max_violations_) {
    ++suppressed_;
    return;
  }
  violations_.push_back(std::move(v));
}

std::string InvariantSuite::summary() const {
  if (violations_.empty() && suppressed_ == 0) return "ok";
  std::map<std::string, std::size_t> counts;
  for (const Violation& v : violations_) ++counts[v.invariant];
  std::string out;
  for (const auto& [name, n] : counts) {
    if (!out.empty()) out += "; ";
    out += util::format("%s x%zu", name.c_str(), n);
  }
  if (suppressed_ > 0) out += util::format(" (+%llu suppressed)", (unsigned long long)suppressed_);
  return out;
}

} // namespace tsn::check
