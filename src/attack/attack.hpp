// Adversarial-time attacker library (DESIGN.md §11).
//
// Implements the attack families of "Breaking Precision Time: OS
// Vulnerability Exploits Against IEEE 1588" against this repo's
// virtualized 802.1AS world, each as a scripted, seed-derivable schedule
// with the same (master_seed, index) purity as fuzz cases:
//
//   family             layer hook                         magnitude / secondary
//   kDelayConst        net::Link::set_delay_attack        one-way bias ns / -
//   kDelayRamp         net::Link::set_delay_attack        ramp ns per s / -
//   kCorrectionField   TimeAwareBridge::set_correction_attack   bias ns / -
//   kPdelayTurnaround  LinkDelayService::set_turnaround_attack  t3 bias ns / skew ppm
//   kSyncStorm         TimeAwareBridge::start_sync_storm  volley period ns / -
//   kTimerStep         time::PhcClock::step               step ns / -
//   kTimerSkew         time::PhcClock::set_drift_attack   extra ppm / -
//
// Every attack targets one victim ECD: its GM VM's host link, its
// bridge, or its GM VM's PHC. The oracle half lives in
// check::AttackExclusionInvariant -- did FTA + diversification keep the
// precision bound Pi for honest nodes, and how long until honest
// aggregation masks evict the attacked domain?
//
// Magnitudes are derived in two safe bands (see derive_attacks): covert
// attacks small enough that the FTA must absorb them (single-outlier
// discard), overt attacks far past the validity threshold so honest
// receivers must evict the victim domain. Overt attacks never revert
// mid-run -- a reverting large attack would force the free-running victim
// through a reconvergence transient no reboot grace window covers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/persist.hpp"

namespace tsn::experiments {
class Scenario;
}
namespace tsn::gptp {
class LinkDelayService;
class TimeAwareBridge;
}
namespace tsn::net {
class Link;
}
namespace tsn::obs {
class TraceRing;
}
namespace tsn::time {
class PhcClock;
}

namespace tsn::attack {

enum class AttackKind : std::uint8_t {
  kDelayConst,       ///< constant asymmetric path delay on the victim host link
  kDelayRamp,        ///< slowly ramping asymmetric path delay
  kCorrectionField,  ///< compromised bridge inflates its own domain's corrections
  kPdelayTurnaround, ///< compromised responder tampers t3 (skews peer NRR)
  kSyncStorm,        ///< bogus-Sync DoS on an unconfigured domain
  kTimerStep,        ///< one-shot OS-timer step of the victim GM's PHC
  kTimerSkew,        ///< hidden extra drift on the victim GM's PHC
};

const char* to_string(AttackKind kind);
std::optional<AttackKind> parse_attack_kind(std::string_view name);

/// True for families that compromise the victim GM VM's own timebase or
/// measurement chain: the per-node oracles (precision bound, synctime
/// monotonicity) exempt that VM from the attack start -- the paper's
/// claim is about honest nodes surviving, not about the compromised node
/// itself staying in spec.
bool compromises_victim_clock(AttackKind kind);

struct AttackSpec {
  AttackKind kind = AttackKind::kDelayConst;
  std::size_t ecd = 0;          ///< victim ECD index
  std::int64_t start_ns = 0;    ///< offset from arming time
  std::int64_t duration_ns = 0; ///< 0 = persists to end of run
  double magnitude = 0.0;       ///< family-specific (see header table)
  double secondary = 0.0;       ///< family-specific second knob
  /// Overt attack: the oracle requires honest nodes to evict the victim
  /// domain (validity-mask bit cleared) within the eviction deadline.
  bool expect_excluded = false;

  bool operator==(const AttackSpec&) const = default;
};

using AttackSchedule = std::vector<AttackSpec>;

/// Derive the attack schedule for campaign case (master_seed, index).
/// Pure, and drawn from a *separate* RNG stream than the fuzz-case
/// derivation, so enabling attacks never perturbs the base worlds.
/// Victims are distinct and at most `fta_f` per case (the FTA's fault
/// hypothesis); every victim hosts a domain (ecd < domain_count).
AttackSchedule derive_attacks(std::uint64_t master_seed, std::uint64_t index,
                              std::size_t num_ecds, std::size_t domain_count, int fta_f,
                              std::int64_t duration_ns);

/// One attack as armed against a concrete scenario (absolute times, the
/// victim's FTA slot and GM VM name resolved).
struct ArmedAttack {
  AttackSpec spec;
  std::int64_t start_abs_ns = 0;
  std::int64_t end_abs_ns = 0; ///< INT64_MAX for open-ended attacks
  std::size_t victim_slot = 0; ///< FTA validity-mask bit of the victim's domain
  std::string victim_vm;       ///< the victim ECD's GM VM name (e.g. "c31")
};

/// Schedules every spec's enable/disable directly on the victim ECD's
/// region Simulation, so arming is legal from the driving thread between
/// stages and the run stays byte-identical across `threads=` and
/// `partitions=` (no cross-region messaging is involved). Pushes a
/// TraceKind::kAttack record into the victim region's ring at each edge.
class AttackDriver : public sim::Persistent {
 public:
  /// Call once after bring-up (the suite may be armed before or after);
  /// spec.start_ns offsets are relative to the scenario's current time.
  /// The driver must outlive the run (scheduled closures reference it).
  void arm(experiments::Scenario& scenario, const AttackSchedule& schedule);

  const std::vector<ArmedAttack>& armed() const { return armed_; }

  /// True while any armed attack interval covers `now_ns`. Open-ended
  /// attacks (end_abs_ns == INT64_MAX: overt steps and persistent biases)
  /// count forever -- composed into the fast-forward model gate, this
  /// keeps analytic windows off tampered dynamics for the rest of the
  /// run, which is conservative but always sound.
  bool any_active(std::int64_t now_ns) const;
  /// Earliest attack enable/disable edge strictly after `after_ns`
  /// (INT64_MAX when none): the fast-forward barrier.
  std::int64_t next_edge_ns(std::int64_t after_ns) const;

  // -- sim::Persistent ------------------------------------------------------
  // Accounting-only, like the FaultInjector: the enable/disable edges are
  // standing one-shot events the barrier keeps outside every window.
  const char* persist_name() const override { return "attack-driver"; }
  void save_state(sim::StateWriter&) override {}
  void load_state(sim::StateReader&) override {}
  std::size_t live_events() const override { return scheduled_ - fired_; }

 private:
  /// Pre-resolved victim objects, so the scheduled closures capture only
  /// (this, index) and stay inside the event queue's inline storage.
  struct Hook {
    net::Link* link = nullptr;
    gptp::TimeAwareBridge* bridge = nullptr;
    gptp::LinkDelayService* ldl = nullptr;
    time::PhcClock* phc = nullptr;
    obs::TraceRing* ring = nullptr;
    std::uint16_t src = 0;
  };

  void apply(std::size_t i, bool enable);

  std::vector<ArmedAttack> armed_;
  std::vector<Hook> hooks_;
  std::size_t scheduled_ = 0; ///< edge events arm() put on the queues
  std::size_t fired_ = 0;     ///< edge events that have fired
};

} // namespace tsn::attack
