#include "attack/attack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "experiments/scenario.hpp"
#include "gptp/bridge.hpp"
#include "gptp/link_delay.hpp"
#include "hv/clock_sync_vm.hpp"
#include "hv/ecd.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

namespace tsn::attack {

namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

/// gPTP domain no VM or bridge ever configures: storm Syncs for it are
/// parsed and dropped everywhere, i.e. pure protocol-processing load.
constexpr std::uint8_t kStormDomain = 0x7F;

/// Nudge a derived instant off the 125 ms protocol grid so attack edges
/// never tie with Sync/aggregation events (ties would make the result
/// depend on scheduling order instead of the model).
std::int64_t odd_ns(std::int64_t t) { return t | 1; }

double random_sign(util::RngStream& rng) { return rng.chance(0.5) ? 1.0 : -1.0; }

} // namespace

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kDelayConst: return "delay_const";
    case AttackKind::kDelayRamp: return "delay_ramp";
    case AttackKind::kCorrectionField: return "correction_field";
    case AttackKind::kPdelayTurnaround: return "pdelay_turnaround";
    case AttackKind::kSyncStorm: return "sync_storm";
    case AttackKind::kTimerStep: return "timer_step";
    case AttackKind::kTimerSkew: return "timer_skew";
  }
  return "?";
}

std::optional<AttackKind> parse_attack_kind(std::string_view name) {
  for (int k = 0; k <= static_cast<int>(AttackKind::kTimerSkew); ++k) {
    const auto kind = static_cast<AttackKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

bool compromises_victim_clock(AttackKind kind) {
  switch (kind) {
    case AttackKind::kDelayConst:
    case AttackKind::kDelayRamp:
    case AttackKind::kPdelayTurnaround:
    case AttackKind::kTimerStep:
    case AttackKind::kTimerSkew:
      return true;
    case AttackKind::kCorrectionField:
    case AttackKind::kSyncStorm:
      return false;
  }
  return false;
}

AttackSchedule derive_attacks(std::uint64_t master_seed, std::uint64_t index,
                              std::size_t num_ecds, std::size_t domain_count, int fta_f,
                              std::int64_t duration_ns) {
  (void)num_ecds;
  AttackSchedule out;
  if (domain_count == 0 || duration_ns <= 0) return out;

  util::RngStream rng(master_seed,
                      util::format("attack-case-%llu", static_cast<unsigned long long>(index)));

  // At most f simultaneous victims: the FTA's fault hypothesis. More would
  // legitimately break the bound, which is not an interesting verdict.
  const auto max_victims =
      std::min<std::size_t>(domain_count, static_cast<std::size_t>(std::max(1, fta_f)));
  std::size_t n_victims = 1;
  if (max_victims >= 2 && rng.chance(0.3)) n_victims = 2;

  std::vector<std::size_t> pool(domain_count);
  std::iota(pool.begin(), pool.end(), std::size_t{0});

  for (std::size_t v = 0; v < n_victims; ++v) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    AttackSpec a;
    a.ecd = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));

    // Start well past the startup phase, in the first half of the run so
    // eviction deadlines and reconvergence fit before the end.
    const std::int64_t earliest = 5 * kSecond;
    const std::int64_t latest = std::max(earliest + kSecond, duration_ns / 2);
    a.start_ns = odd_ns(rng.uniform_int(earliest, latest));

    // Covert magnitudes stay far inside the 10 us validity threshold (the
    // FTA's f-discard must absorb them); overt magnitudes land far beyond
    // it (honest receivers must evict the victim domain) and persist to
    // the end of the run -- reverting a large attack would drag the
    // free-running victim through a reconvergence transient that no
    // reboot grace window models.
    switch (rng.uniform_int(0, 5)) {
      case 0:
        a.kind = AttackKind::kDelayConst;
        a.magnitude = static_cast<double>(rng.uniform_int(800, 6'000)); // one-way bias ns
        a.duration_ns = odd_ns(rng.uniform_int(10 * kSecond, 30 * kSecond));
        break;
      case 1:
        a.kind = AttackKind::kDelayRamp;
        a.magnitude = rng.uniform(50.0, 300.0); // ns per second
        a.duration_ns = odd_ns(rng.uniform_int(10 * kSecond, 20 * kSecond));
        break;
      case 2:
        a.kind = AttackKind::kCorrectionField;
        if (rng.chance(0.35)) {
          a.magnitude = random_sign(rng) * static_cast<double>(rng.uniform_int(25'000, 60'000));
          a.duration_ns = 0;
          a.expect_excluded = true;
        } else {
          a.magnitude = random_sign(rng) * static_cast<double>(rng.uniform_int(500, 5'000));
          a.duration_ns = odd_ns(rng.uniform_int(10 * kSecond, 30 * kSecond));
        }
        break;
      case 3:
        a.kind = AttackKind::kPdelayTurnaround;
        // Negative t3 bias: the peer's measured delay inflates by |bias|/2
        // (a positive bias could drive it negative, which real hardware
        // cannot produce and the covert band is symmetric anyway).
        a.magnitude = -static_cast<double>(rng.uniform_int(1'000, 6'000));
        a.secondary = random_sign(rng) * rng.uniform(5.0, 60.0); // t3 skew ppm
        a.duration_ns = odd_ns(rng.uniform_int(10 * kSecond, 30 * kSecond));
        break;
      case 4:
        a.kind = AttackKind::kSyncStorm;
        a.magnitude =
            static_cast<double>(odd_ns(rng.uniform_int(1'000'000, 4'000'000))); // volley period
        a.duration_ns = odd_ns(rng.uniform_int(5 * kSecond, 15 * kSecond));
        break;
      default:
        if (rng.chance(0.5)) {
          a.kind = AttackKind::kTimerStep;
          a.magnitude = random_sign(rng) * static_cast<double>(rng.uniform_int(25'000, 80'000));
          a.duration_ns = 0; // a step cannot be "un-stepped"
          a.expect_excluded = true;
        } else {
          a.kind = AttackKind::kTimerSkew;
          a.magnitude = random_sign(rng) * rng.uniform(2.0, 10.0); // extra ppm
          a.duration_ns = odd_ns(rng.uniform_int(10 * kSecond, 30 * kSecond));
        }
        break;
    }
    out.push_back(a);
  }
  return out;
}

void AttackDriver::arm(experiments::Scenario& scenario, const AttackSchedule& schedule) {
  const std::int64_t now = scenario.now_ns();
  armed_.reserve(armed_.size() + schedule.size());
  hooks_.reserve(hooks_.size() + schedule.size());

  for (const AttackSpec& spec : schedule) {
    ArmedAttack a;
    a.spec = spec;
    a.start_abs_ns = now + spec.start_ns;
    a.end_abs_ns = spec.duration_ns > 0 ? a.start_abs_ns + spec.duration_ns : INT64_MAX;
    a.victim_slot = spec.ecd; // slot i of the validity mask is domain i+1, ECD i's
    a.victim_vm = scenario.gm_vm(spec.ecd).name();

    Hook h;
    // Partitioned worlds keep one ring per region and one region per ECD,
    // so the victim's edges land in its own region's deterministic order.
    obs::TraceRing& ring = scenario.region_trace(scenario.partitioned() ? spec.ecd : 0);
    h.ring = &ring;
    h.src = ring.intern(util::format("attack/%s", to_string(spec.kind)));
    switch (spec.kind) {
      case AttackKind::kDelayConst:
      case AttackKind::kDelayRamp:
        h.link = &scenario.host_link(spec.ecd, 0); // the victim GM VM's host link
        break;
      case AttackKind::kCorrectionField:
      case AttackKind::kSyncStorm:
        h.bridge = &scenario.bridge(spec.ecd);
        break;
      case AttackKind::kPdelayTurnaround:
        // The compromised responder on the bridge port facing the GM VM:
        // it poisons the VM's initiator-side NRR and meanLinkDelay.
        h.ldl = &scenario.bridge(spec.ecd).port_link_delay(0);
        break;
      case AttackKind::kTimerStep:
      case AttackKind::kTimerSkew:
        h.phc = &scenario.gm_vm(spec.ecd).nic().phc();
        break;
    }

    const std::size_t i = armed_.size();
    armed_.push_back(std::move(a));
    hooks_.push_back(h);

    // Everything the attack touches lives in the victim ECD's region, so
    // scheduling straight on its Simulation keeps partitioned runs
    // byte-identical across threads= and partitions= (no boundary
    // channels, no lookahead interaction).
    sim::Simulation& rsim = scenario.ecd(spec.ecd).sim();
    ++scheduled_;
    rsim.at(sim::SimTime(armed_[i].start_abs_ns), [this, i] { apply(i, true); });
    if (armed_[i].end_abs_ns != INT64_MAX) {
      ++scheduled_;
      rsim.at(sim::SimTime(armed_[i].end_abs_ns), [this, i] { apply(i, false); });
    }
  }
}

bool AttackDriver::any_active(std::int64_t now_ns) const {
  for (const ArmedAttack& a : armed_) {
    if (a.start_abs_ns <= now_ns && now_ns < a.end_abs_ns) return true;
  }
  return false;
}

std::int64_t AttackDriver::next_edge_ns(std::int64_t after_ns) const {
  std::int64_t best = INT64_MAX;
  for (const ArmedAttack& a : armed_) {
    if (a.start_abs_ns > after_ns) best = std::min(best, a.start_abs_ns);
    if (a.end_abs_ns != INT64_MAX && a.end_abs_ns > after_ns) best = std::min(best, a.end_abs_ns);
  }
  return best;
}

void AttackDriver::apply(std::size_t i, bool enable) {
  ++fired_;
  const ArmedAttack& a = armed_[i];
  const AttackSpec& s = a.spec;
  Hook& h = hooks_[i];

  switch (s.kind) {
    case AttackKind::kDelayConst:
      if (enable) {
        h.link->set_delay_attack(true, static_cast<std::int64_t>(std::llround(s.magnitude)), 0.0);
      } else {
        h.link->clear_delay_attack(true);
      }
      break;
    case AttackKind::kDelayRamp:
      if (enable) {
        h.link->set_delay_attack(true, 0, s.magnitude);
      } else {
        h.link->clear_delay_attack(true);
      }
      break;
    case AttackKind::kCorrectionField:
      if (enable) {
        h.bridge->set_correction_attack(static_cast<std::uint8_t>(s.ecd + 1), s.magnitude);
      } else {
        h.bridge->clear_correction_attack();
      }
      break;
    case AttackKind::kPdelayTurnaround:
      if (enable) {
        h.ldl->set_turnaround_attack(s.magnitude, s.secondary);
      } else {
        h.ldl->clear_turnaround_attack();
      }
      break;
    case AttackKind::kSyncStorm:
      if (enable) {
        h.bridge->start_sync_storm(kStormDomain,
                                   static_cast<std::int64_t>(std::llround(s.magnitude)));
      } else {
        h.bridge->stop_sync_storm();
      }
      break;
    case AttackKind::kTimerStep:
      if (enable) h.phc->step(static_cast<std::int64_t>(std::llround(s.magnitude)));
      break;
    case AttackKind::kTimerSkew:
      if (enable) {
        h.phc->set_drift_attack(s.magnitude);
      } else {
        h.phc->clear_drift_attack();
      }
      break;
  }

  obs::TraceRecord rec;
  rec.t_ns = enable ? a.start_abs_ns : a.end_abs_ns;
  rec.kind = obs::TraceKind::kAttack;
  rec.source = h.src;
  rec.a = static_cast<std::uint32_t>(s.kind);
  rec.mask = enable ? 1u : 0u;
  rec.v0 = s.magnitude;
  rec.v1 = static_cast<double>(s.ecd);
  h.ring->push(rec);
}

} // namespace tsn::attack
