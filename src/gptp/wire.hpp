// Big-endian (network order) byte stream primitives for PTP wire formats.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gptp/types.hpp"

namespace tsn::gptp {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u48(std::uint64_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const std::uint8_t* data, std::size_t n);
  void zeros(std::size_t n);
  void timestamp(const Timestamp& ts); // 10 bytes: 48-bit s + 32-bit ns
  void clock_identity(const ClockIdentity& id);
  void port_identity(const PortIdentity& id);

  std::size_t size() const { return out_.size(); }
  /// Patch a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : data_(buf.data()), size_(buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u48();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  void skip(std::size_t n);
  Timestamp timestamp();
  ClockIdentity clock_identity();
  PortIdentity port_identity();

 private:
  bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

} // namespace tsn::gptp
