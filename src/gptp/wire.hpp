// Big-endian (network order) byte stream primitives for PTP wire formats.
//
// The writer is generic over the output container (std::vector<uint8_t> or
// net::Payload) so hot paths can serialize straight into a pooled frame's
// inline payload without an intermediate heap vector.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "gptp/types.hpp"

namespace tsn::gptp {

template <class Buf>
class BasicByteWriter {
 public:
  explicit BasicByteWriter(Buf& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u48(std::uint64_t v) {
    u16(static_cast<std::uint16_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const std::uint8_t* data, std::size_t n) {
    out_.insert(out_.end(), data, data + n);
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }
  void timestamp(const Timestamp& ts) { // 10 bytes: 48-bit s + 32-bit ns
    u48(ts.seconds);
    u32(ts.nanoseconds);
  }
  void clock_identity(const ClockIdentity& id) {
    bytes(id.bytes().data(), id.bytes().size());
  }
  void port_identity(const PortIdentity& id) {
    clock_identity(id.clock);
    u16(id.port);
  }

  std::size_t size() const { return out_.size(); }
  /// Patch a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  Buf& out_;
};

using ByteWriter = BasicByteWriter<std::vector<std::uint8_t>>;

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  /// From any contiguous byte container (std::vector, net::Payload, ...).
  template <class C, typename = std::enable_if_t<!std::is_same_v<std::decay_t<C>, ByteReader>,
                                                 decltype(std::declval<const C&>().data())>>
  explicit ByteReader(const C& buf) : data_(buf.data()), size_(buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u48();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  void skip(std::size_t n);
  Timestamp timestamp();
  ClockIdentity clock_identity();
  PortIdentity port_identity();

 private:
  bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

} // namespace tsn::gptp
