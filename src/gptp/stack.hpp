// PtpStack: binds the gPTP protocol entities of one NIC together.
//
// Owns the per-port peer-delay service plus one PtpInstance per domain, and
// demultiplexes received gPTP frames: Pdelay* messages go to the link-delay
// service (CMLDS-style, shared across domains), everything else to the
// instance serving the message's domainNumber.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gptp/instance.hpp"
#include "gptp/link_delay.hpp"
#include "net/nic.hpp"
#include "sim/simulation.hpp"

namespace tsn::gptp {

class PtpStack {
 public:
  PtpStack(sim::Simulation& sim, net::Nic& nic, const LinkDelayConfig& ld_cfg,
           const std::string& name);

  PtpStack(const PtpStack&) = delete;
  PtpStack& operator=(const PtpStack&) = delete;

  /// Add a domain instance. Must be called before start().
  PtpInstance& add_instance(const InstanceConfig& cfg);

  void start();
  void stop();

  LinkDelayService& link_delay() { return link_delay_; }
  net::Nic& nic() { return nic_; }
  std::vector<std::unique_ptr<PtpInstance>>& instances() { return instances_; }
  PtpInstance* instance_for_domain(std::uint8_t domain);

  /// Total malformed frames dropped by the demux.
  std::uint64_t malformed_frames() const { return malformed_; }

  // -- Snapshot / fast-forward support (aggregates the link-delay service
  //    and every domain instance; driven by the owning VM) -----------------
  void save_state(sim::StateWriter& w);
  void load_state(sim::StateReader& r);
  std::size_t live_events() const;
  void ff_park();
  void ff_advance(const sim::FfWindow& w);
  void ff_resume();

 private:
  void on_rx(const net::EthernetFrame& frame, const net::RxMeta& meta);

  sim::Simulation& sim_;
  net::Nic& nic_;
  std::string name_;
  LinkDelayService link_delay_;
  std::vector<std::unique_ptr<PtpInstance>> instances_;
  std::uint64_t malformed_ = 0;
  bool started_ = false;
};

} // namespace tsn::gptp
