#include "gptp/servo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace tsn::gptp {

PiServo::PiServo(const PiServoConfig& cfg) : cfg_(cfg) {}

double PiServo::clamp_freq(double ppb) const {
  return std::clamp(ppb, -cfg_.max_frequency_ppb, cfg_.max_frequency_ppb);
}

void PiServo::reset() {
  state_ = State::kUnlocked;
  sample_count_ = 0;
  // The integral (learned frequency error) survives a reset on purpose:
  // losing it after a reference switch would re-learn the oscillator's
  // static drift from scratch. Call set_integral_ppb(0) for a cold reset.
}

PiServo::Result PiServo::sample(std::int64_t offset_ns, std::int64_t local_ts_ns) {
  Result res;

  if (state_ == State::kLocked && cfg_.step_threshold_ns > 0 &&
      std::llabs(offset_ns) > cfg_.step_threshold_ns) {
    // Runaway offset: fall back to acquisition.
    state_ = State::kUnlocked;
    sample_count_ = 0;
  }

  switch (state_) {
    case State::kUnlocked: {
      if (sample_count_ == 0) {
        first_offset_ = offset_ns;
        first_ts_ = local_ts_ns;
        ++sample_count_;
        res.state = State::kUnlocked;
        res.freq_ppb = clamp_freq(-integral_ppb_);
        return res;
      }
      // Second sample: estimate the frequency error between the two
      // offsets, then decide whether to step the phase.
      const double dt = static_cast<double>(local_ts_ns - first_ts_);
      if (dt > 0) {
        const double drift_ppb = static_cast<double>(offset_ns - first_offset_) / dt * 1e9;
        integral_ppb_ = clamp_freq(integral_ppb_ + drift_ppb);
      }
      sample_count_ = 0;
      if (cfg_.first_step_threshold_ns > 0 &&
          std::llabs(offset_ns) > cfg_.first_step_threshold_ns) {
        state_ = State::kLocked;
        res.state = State::kJump;
        res.freq_ppb = clamp_freq(-integral_ppb_);
        return res;
      }
      state_ = State::kLocked;
      [[fallthrough]];
    }
    case State::kJump:
    case State::kLocked: {
      integral_ppb_ = clamp_freq(integral_ppb_ + cfg_.ki * static_cast<double>(offset_ns));
      const double out = clamp_freq(-(cfg_.kp * static_cast<double>(offset_ns) + integral_ppb_));
      state_ = State::kLocked;
      res.state = State::kLocked;
      res.freq_ppb = out;
      return res;
    }
  }
  return res;
}

} // namespace tsn::gptp
