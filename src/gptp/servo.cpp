#include "gptp/servo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sim/persist.hpp"

namespace tsn::gptp {

PiServo::PiServo(const PiServoConfig& cfg) : cfg_(cfg) {}

double PiServo::clamp_freq(double ppb) const {
  return std::clamp(ppb, -cfg_.max_frequency_ppb, cfg_.max_frequency_ppb);
}

void PiServo::reset() {
  state_ = State::kUnlocked;
  sample_count_ = 0;
  // The integral (learned frequency error) survives a reset on purpose:
  // losing it after a reference switch would re-learn the oscillator's
  // static drift from scratch. Call set_integral_ppb(0) for a cold reset.
}

void PiServo::save_state(sim::StateWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.i64(sample_count_);
  w.i64(first_offset_);
  w.i64(first_ts_);
  w.f64(integral_ppb_);
}

void PiServo::load_state(sim::StateReader& r) {
  state_ = static_cast<State>(r.u8());
  sample_count_ = static_cast<int>(r.i64());
  first_offset_ = r.i64();
  first_ts_ = r.i64();
  integral_ppb_ = r.f64();
}

void PiServo::attach_obs(obs::ObsContext ctx, const std::string& name) {
  if (ctx.metrics) {
    c_samples_ = &ctx.metrics->counter(name + ".samples");
    c_jumps_ = &ctx.metrics->counter(name + ".jumps");
    c_unlock_resets_ = &ctx.metrics->counter(name + ".unlock_resets");
  }
  trace_ = ctx.trace;
  if (trace_) trace_src_ = trace_->intern(name);
}

void PiServo::note_state(State prev, std::int64_t local_ts_ns, double freq_ppb) {
  if (state_ == prev || !trace_) return;
  obs::TraceRecord rec;
  rec.t_ns = local_ts_ns;
  rec.kind = obs::TraceKind::kServoState;
  rec.source = trace_src_;
  rec.a = static_cast<std::uint32_t>(state_);
  rec.v0 = static_cast<std::int64_t>(freq_ppb);
  rec.v1 = static_cast<std::int64_t>(prev);
  trace_->push(rec);
}

PiServo::Result PiServo::sample(std::int64_t offset_ns, std::int64_t local_ts_ns) {
  Result res;
  const State prev = state_;
  if (c_samples_) c_samples_->inc();

  if (state_ != State::kUnlocked && cfg_.step_threshold_ns > 0 &&
      std::llabs(offset_ns) > cfg_.step_threshold_ns) {
    // Runaway offset: fall back to acquisition.
    state_ = State::kUnlocked;
    sample_count_ = 0;
    if (c_unlock_resets_) c_unlock_resets_->inc();
  }

  switch (state_) {
    case State::kUnlocked: {
      if (sample_count_ == 0) {
        first_offset_ = offset_ns;
        first_ts_ = local_ts_ns;
        ++sample_count_;
        res.state = State::kUnlocked;
        res.freq_ppb = clamp_freq(-integral_ppb_);
        note_state(prev, local_ts_ns, res.freq_ppb);
        return res;
      }
      // Second sample: estimate the frequency error between the two
      // offsets, then decide whether to step the phase.
      const double dt = static_cast<double>(local_ts_ns - first_ts_);
      if (dt > 0) {
        const double drift_ppb = static_cast<double>(offset_ns - first_offset_) / dt * 1e9;
        integral_ppb_ = clamp_freq(integral_ppb_ + drift_ppb);
      }
      sample_count_ = 0;
      if (cfg_.first_step_threshold_ns > 0 &&
          std::llabs(offset_ns) > cfg_.first_step_threshold_ns) {
        // Hold kJump until the next sample so the trace shows the
        // Unlocked -> Jump -> Locked sequence; the next sample's
        // kLocked handling records the Jump -> Locked edge.
        state_ = State::kJump;
        res.state = State::kJump;
        res.freq_ppb = clamp_freq(-integral_ppb_);
        if (c_jumps_) c_jumps_->inc();
        note_state(prev, local_ts_ns, res.freq_ppb);
        return res;
      }
      state_ = State::kLocked;
      [[fallthrough]];
    }
    case State::kJump:
    case State::kLocked: {
      integral_ppb_ = clamp_freq(integral_ppb_ + cfg_.ki * static_cast<double>(offset_ns));
      const double out = clamp_freq(-(cfg_.kp * static_cast<double>(offset_ns) + integral_ppb_));
      state_ = State::kLocked;
      res.state = State::kLocked;
      res.freq_ppb = out;
      note_state(prev, local_ts_ns, out);
      return res;
    }
  }
  return res;
}

} // namespace tsn::gptp
