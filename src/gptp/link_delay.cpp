#include "gptp/link_delay.hpp"

#include <cmath>

#include "util/log.hpp"

namespace tsn::gptp {

LinkDelayService::LinkDelayService(sim::Simulation& sim, PortIdentity identity, SendFn send,
                                   const LinkDelayConfig& cfg, const std::string& name)
    : sim_(sim), identity_(identity), send_(std::move(send)), cfg_(cfg), name_(name) {}

void LinkDelayService::start() {
  if (periodic_.active()) return;
  periodic_ = sim_.every(sim_.now(), cfg_.pdelay_interval_ns,
                         [this](sim::SimTime) { send_request(); });
}

void LinkDelayService::stop() {
  periodic_.cancel();
  exchange_open_ = false;
}

void LinkDelayService::send_request() {
  if (exchange_open_) {
    // Previous exchange never completed (lost frame or dead neighbor).
    if (++consecutive_misses_ >= cfg_.lost_responses_allowed) {
      valid_ = false;
      nrr_history_.clear();
    }
  }
  exchange_open_ = true;
  t1_.reset();
  t2_.reset();
  t3_.reset();
  t4_.reset();

  PdelayReqMessage req;
  req.header.type = MessageType::kPdelayReq;
  req.header.source_port = identity_;
  req.header.sequence_id = ++seq_;
  req.header.log_message_interval = 0;
  send_(req, [this, seq = seq_](std::optional<std::int64_t> tx_ts) {
    if (tx_ts && seq == seq_) t1_ = *tx_ts;
  });
}

void LinkDelayService::on_message(const Message& msg, std::int64_t rx_ts) {
  if (const auto* req = std::get_if<PdelayReqMessage>(&msg)) {
    // ---- Responder: reply with t2 then t3.
    responder_t2_ = rx_ts;
    PdelayRespMessage resp;
    resp.header.type = MessageType::kPdelayResp;
    resp.header.two_step = true;
    resp.header.source_port = identity_;
    resp.header.sequence_id = req->header.sequence_id;
    resp.request_receipt = Timestamp::from_ns(rx_ts);
    resp.requesting_port = req->header.source_port;
    send_(resp, [this, hdr = resp.header, requesting = resp.requesting_port](
                    std::optional<std::int64_t> tx_ts) {
      if (!tx_ts) return;
      PdelayRespFollowUpMessage fup;
      fup.header = hdr;
      fup.header.type = MessageType::kPdelayRespFollowUp;
      fup.header.two_step = false;
      fup.response_origin = Timestamp::from_ns(*tx_ts);
      fup.requesting_port = requesting;
      send_(fup, {});
    });
    return;
  }

  if (const auto* resp = std::get_if<PdelayRespMessage>(&msg)) {
    if (!exchange_open_ || resp->requesting_port != identity_ ||
        resp->header.sequence_id != seq_) {
      return;
    }
    t4_ = rx_ts;
    t2_ = resp->request_receipt.to_ns();
    if (t1_ && t2_ && t3_ && t4_) complete_exchange();
    return;
  }

  if (const auto* fup = std::get_if<PdelayRespFollowUpMessage>(&msg)) {
    if (!exchange_open_ || fup->requesting_port != identity_ ||
        fup->header.sequence_id != seq_) {
      return;
    }
    t3_ = fup->response_origin.to_ns();
    if (t1_ && t2_ && t3_ && t4_) complete_exchange();
    return;
  }
}

void LinkDelayService::complete_exchange() {
  exchange_open_ = false;
  consecutive_misses_ = 0;

  // Neighbor rate ratio across the sample window: remote elapsed / local
  // elapsed between the oldest retained exchange and this one.
  nrr_history_.emplace_back(*t3_, *t4_);
  while (nrr_history_.size() > cfg_.nrr_window) nrr_history_.pop_front();
  if (nrr_history_.size() >= 2) {
    const auto& [t3_old, t4_old] = nrr_history_.front();
    const double remote_elapsed = static_cast<double>(*t3_ - t3_old);
    const double local_elapsed = static_cast<double>(*t4_ - t4_old);
    if (local_elapsed > 0) neighbor_rate_ratio_ = remote_elapsed / local_elapsed;
  }

  // meanLinkDelay = ((t4-t1) - (t3-t2)/nrr) / 2, in the local timebase.
  const double turnaround = static_cast<double>(*t4_ - *t1_);
  const double remote_residence = static_cast<double>(*t3_ - *t2_) / neighbor_rate_ratio_;
  raw_link_delay_ns_ = (turnaround - remote_residence) / 2.0;

  if (!valid_) {
    mean_link_delay_ns_ = raw_link_delay_ns_;
  } else {
    mean_link_delay_ns_ += cfg_.delay_smoothing * (raw_link_delay_ns_ - mean_link_delay_ns_);
  }
  valid_ = true;
  ++completed_;
  TSN_LOG_TRACE("pdelay", "%s: D=%.1fns nrr=%.9f", name_.c_str(), mean_link_delay_ns_,
                neighbor_rate_ratio_);
}

} // namespace tsn::gptp
