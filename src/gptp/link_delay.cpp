#include "gptp/link_delay.hpp"

#include <cmath>

#include "util/log.hpp"

namespace tsn::gptp {
namespace {

Message make_req_proto(const PortIdentity& identity) {
  PdelayReqMessage req;
  req.header.type = MessageType::kPdelayReq;
  req.header.source_port = identity;
  req.header.log_message_interval = 0;
  return req;
}

Message make_resp_proto(const PortIdentity& identity) {
  PdelayRespMessage resp;
  resp.header.type = MessageType::kPdelayResp;
  resp.header.two_step = true;
  resp.header.source_port = identity;
  return resp;
}

Message make_resp_fup_proto(const PortIdentity& identity) {
  PdelayRespFollowUpMessage fup;
  fup.header.type = MessageType::kPdelayRespFollowUp;
  fup.header.source_port = identity;
  return fup;
}

} // namespace

LinkDelayService::LinkDelayService(sim::Simulation& sim, PortIdentity identity, SendFn send,
                                   const LinkDelayConfig& cfg, const std::string& name)
    : sim_(sim),
      identity_(identity),
      send_(std::move(send)),
      cfg_(cfg),
      name_(name),
      req_tpl_(make_req_proto(identity)),
      resp_tpl_(make_resp_proto(identity)),
      resp_fup_tpl_(make_resp_fup_proto(identity)) {
  nrr_ring_.resize(std::max<std::size_t>(cfg_.nrr_window, 1));
}

void LinkDelayService::start() {
  if (periodic_.active()) return;
  periodic_ = sim_.every(sim_.now(), cfg_.pdelay_interval_ns,
                         [this](sim::SimTime) { send_request(); });
}

void LinkDelayService::stop() {
  periodic_.cancel();
  exchange_open_ = false;
}

void LinkDelayService::save_state(sim::StateWriter& w) const {
  w.b(periodic_.active());
  w.i64(periodic_.next_due_ns());
  w.u16(seq_);
  w.opt_i64(t1_);
  w.opt_i64(t2_);
  w.opt_i64(t3_);
  w.opt_i64(t4_);
  w.b(exchange_open_);
  w.i64(consecutive_misses_);
  // Ring in logical (oldest-first) order so the byte image depends only on
  // the retained samples, not on where the head happens to sit.
  w.u64(nrr_count_);
  for (std::size_t i = 0; i < nrr_count_; ++i) {
    const auto& [t3, t4] = nrr_ring_[(nrr_head_ + i) % nrr_ring_.size()];
    w.i64(t3);
    w.i64(t4);
  }
  w.b(atk_turnaround_);
  w.f64(atk_t3_bias_ns_);
  w.f64(atk_t3_skew_ppm_);
  w.opt_i64(atk_t3_epoch_ns_);
  w.b(valid_);
  w.f64(mean_link_delay_ns_);
  w.f64(raw_link_delay_ns_);
  w.f64(neighbor_rate_ratio_);
  w.u64(completed_);
}

void LinkDelayService::load_state(sim::StateReader& r) {
  const bool running = r.b();
  const std::int64_t due = r.i64();
  seq_ = r.u16();
  t1_ = r.opt_i64<std::int64_t>();
  t2_ = r.opt_i64<std::int64_t>();
  t3_ = r.opt_i64<std::int64_t>();
  t4_ = r.opt_i64<std::int64_t>();
  exchange_open_ = r.b();
  consecutive_misses_ = static_cast<int>(r.i64());
  nrr_count_ = r.u64();
  nrr_head_ = 0;
  for (std::size_t i = 0; i < nrr_count_; ++i) {
    nrr_ring_[i].first = r.i64();
    nrr_ring_[i].second = r.i64();
  }
  atk_turnaround_ = r.b();
  atk_t3_bias_ns_ = r.f64();
  atk_t3_skew_ppm_ = r.f64();
  atk_t3_epoch_ns_ = r.opt_i64<std::int64_t>();
  valid_ = r.b();
  mean_link_delay_ns_ = r.f64();
  raw_link_delay_ns_ = r.f64();
  neighbor_rate_ratio_ = r.f64();
  completed_ = r.u64();
  periodic_ = {};
  if (running) {
    periodic_ = sim_.every(
        sim::SimTime{sim::align_phase(due, cfg_.pdelay_interval_ns, sim_.now().ns())},
        cfg_.pdelay_interval_ns, [this](sim::SimTime) { send_request(); });
  }
}

void LinkDelayService::ff_park() {
  parked_running_ = periodic_.active();
  park_due_ns_ = periodic_.next_due_ns();
  periodic_.cancel();
}

void LinkDelayService::ff_advance(const sim::FfWindow&) {
  // The retained (t3, t4) pairs straddle the analytic jump, which pulls
  // the VM clocks toward the ensemble in discrete steps -- a rate-ratio
  // regression across that discontinuity is garbage. Drop the history,
  // keep the estimate; two post-resume exchanges rebuild the window.
  nrr_head_ = 0;
  nrr_count_ = 0;
}

void LinkDelayService::ff_resume() {
  if (!parked_running_) return;
  parked_running_ = false;
  periodic_ = sim_.every(
      sim::SimTime{sim::align_phase(park_due_ns_, cfg_.pdelay_interval_ns, sim_.now().ns())},
      cfg_.pdelay_interval_ns, [this](sim::SimTime) { send_request(); });
}

void LinkDelayService::send_request() {
  if (exchange_open_) {
    // Previous exchange never completed (lost frame or dead neighbor).
    if (++consecutive_misses_ >= cfg_.lost_responses_allowed) {
      valid_ = false;
      nrr_head_ = 0;
      nrr_count_ = 0;
      // The ratio belongs to the dead neighbor's oscillator; keeping it
      // would poison the first meanLinkDelay computed after the neighbor
      // comes back with a different rate (the ring needs two fresh
      // exchanges before it can re-estimate).
      neighbor_rate_ratio_ = 1.0;
    }
  }
  exchange_open_ = true;
  t1_.reset();
  t2_.reset();
  t3_.reset();
  t4_.reset();

  req_tpl_.set_sequence_id(++seq_);
  send_(make_ptp_frame(req_tpl_), TxTsFn([this, seq = seq_](std::optional<std::int64_t> tx_ts) {
          if (tx_ts && seq == seq_) t1_ = *tx_ts;
        }));
}

void LinkDelayService::set_turnaround_attack(double bias_ns, double skew_ppm) {
  atk_turnaround_ = true;
  atk_t3_bias_ns_ = bias_ns;
  atk_t3_skew_ppm_ = skew_ppm;
  atk_t3_epoch_ns_.reset();
}

void LinkDelayService::clear_turnaround_attack() {
  atk_turnaround_ = false;
  atk_t3_epoch_ns_.reset();
}

std::int64_t LinkDelayService::tampered_t3(std::int64_t t3) {
  if (!atk_turnaround_) return t3;
  if (!atk_t3_epoch_ns_) atk_t3_epoch_ns_ = t3;
  const double skew =
      atk_t3_skew_ppm_ * 1e-6 * static_cast<double>(t3 - *atk_t3_epoch_ns_);
  return t3 + static_cast<std::int64_t>(std::llround(atk_t3_bias_ns_ + skew));
}

void LinkDelayService::on_message(const Message& msg, std::int64_t rx_ts) {
  if (const auto* req = std::get_if<PdelayReqMessage>(&msg)) {
    // ---- Responder: reply with t2 then t3.
    const std::uint16_t seq = req->header.sequence_id;
    const PortIdentity requesting = req->header.source_port;
    resp_tpl_.set_sequence_id(seq);
    resp_tpl_.set_body_timestamp(Timestamp::from_ns(rx_ts));
    resp_tpl_.set_requesting_port(requesting);
    send_(make_ptp_frame(resp_tpl_),
          TxTsFn([this, seq, requesting](std::optional<std::int64_t> tx_ts) {
            if (!tx_ts) return;
            resp_fup_tpl_.set_sequence_id(seq);
            resp_fup_tpl_.set_body_timestamp(Timestamp::from_ns(tampered_t3(*tx_ts)));
            resp_fup_tpl_.set_requesting_port(requesting);
            send_(make_ptp_frame(resp_fup_tpl_), {});
          }));
    return;
  }

  if (const auto* resp = std::get_if<PdelayRespMessage>(&msg)) {
    if (!exchange_open_ || resp->requesting_port != identity_ ||
        resp->header.sequence_id != seq_) {
      return;
    }
    t4_ = rx_ts;
    t2_ = resp->request_receipt.to_ns();
    if (t1_ && t2_ && t3_ && t4_) complete_exchange();
    return;
  }

  if (const auto* fup = std::get_if<PdelayRespFollowUpMessage>(&msg)) {
    if (!exchange_open_ || fup->requesting_port != identity_ ||
        fup->header.sequence_id != seq_) {
      return;
    }
    t3_ = fup->response_origin.to_ns();
    if (t1_ && t2_ && t3_ && t4_) complete_exchange();
    return;
  }
}

void LinkDelayService::complete_exchange() {
  exchange_open_ = false;
  consecutive_misses_ = 0;

  // Neighbor rate ratio across the sample window: remote elapsed / local
  // elapsed between the oldest retained exchange and this one.
  const std::size_t window = nrr_ring_.size();
  nrr_ring_[(nrr_head_ + nrr_count_) % window] = {*t3_, *t4_};
  if (nrr_count_ < window) {
    ++nrr_count_;
  } else {
    nrr_head_ = (nrr_head_ + 1) % window; // overwrote the oldest sample
  }
  if (nrr_count_ >= 2) {
    const auto& [t3_old, t4_old] = nrr_ring_[nrr_head_];
    const double remote_elapsed = static_cast<double>(*t3_ - t3_old);
    const double local_elapsed = static_cast<double>(*t4_ - t4_old);
    if (local_elapsed > 0) neighbor_rate_ratio_ = remote_elapsed / local_elapsed;
  }

  // meanLinkDelay = ((t4-t1) - (t3-t2)/nrr) / 2, in the local timebase.
  const double turnaround = static_cast<double>(*t4_ - *t1_);
  const double remote_residence = static_cast<double>(*t3_ - *t2_) / neighbor_rate_ratio_;
  raw_link_delay_ns_ = (turnaround - remote_residence) / 2.0;

  if (!valid_) {
    mean_link_delay_ns_ = raw_link_delay_ns_;
  } else {
    mean_link_delay_ns_ += cfg_.delay_smoothing * (raw_link_delay_ns_ - mean_link_delay_ns_);
  }
  valid_ = true;
  ++completed_;
  TSN_LOG_TRACE("pdelay", "%s: D=%.1fns nrr=%.9f", name_.c_str(), mean_link_delay_ns_,
                neighbor_rate_ratio_);
}

} // namespace tsn::gptp
