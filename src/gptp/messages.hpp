// IEEE 802.1AS message set with exact wire-format (de)serialization.
//
// Layouts follow IEEE 1588-2019 clause 13 with the 802.1AS media-dependent
// profile: transportSpecific = 1, Ethernet multicast 01-80-C2-00-00-0E,
// two-step Sync + FollowUp carrying the Follow_Up information TLV
// (cumulativeScaledRateOffset), and the peer-delay mechanism.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "gptp/types.hpp"

namespace tsn::net {
class Payload; // net/frame.hpp
}

namespace tsn::gptp {

enum class MessageType : std::uint8_t {
  kSync = 0x0,
  kDelayReq = 0x1, // IEEE 1588 end-to-end mechanism (not used by 802.1AS)
  kPdelayReq = 0x2,
  kPdelayResp = 0x3,
  kFollowUp = 0x8,
  kDelayResp = 0x9,
  kPdelayRespFollowUp = 0xA,
  kAnnounce = 0xB,
};

/// Common PTP header (34 bytes on the wire).
struct MessageHeader {
  MessageType type = MessageType::kSync;
  std::uint8_t domain = 0;
  bool two_step = false;
  std::int64_t correction_scaled = 0; // nanoseconds * 2^16
  PortIdentity source_port;
  std::uint16_t sequence_id = 0;
  std::int8_t log_message_interval = 0;

  double correction_ns() const { return scaled_ns::to_ns(correction_scaled); }
};

struct SyncMessage {
  MessageHeader header;
  // 802.1AS two-step Sync carries a reserved (zero) originTimestamp.
};

struct FollowUpMessage {
  MessageHeader header;
  Timestamp precise_origin;
  /// Follow_Up information TLV.
  std::int32_t cumulative_scaled_rate_offset = 0;
  std::uint16_t gm_time_base_indicator = 0;
  std::int32_t scaled_last_gm_freq_change = 0;

  double rate_ratio() const { return rate_offset::to_ratio(cumulative_scaled_rate_offset); }
};

struct PdelayReqMessage {
  MessageHeader header;
};

/// IEEE 1588 end-to-end delay request (the default PTP profile's
/// mechanism; provided as a baseline -- 802.1AS itself is P2P-only).
struct DelayReqMessage {
  MessageHeader header;
};

struct DelayRespMessage {
  MessageHeader header;
  Timestamp receive_timestamp;
  PortIdentity requesting_port;
};

struct PdelayRespMessage {
  MessageHeader header;
  Timestamp request_receipt;
  PortIdentity requesting_port;
};

struct PdelayRespFollowUpMessage {
  MessageHeader header;
  Timestamp response_origin;
  PortIdentity requesting_port;
};

struct AnnounceMessage {
  MessageHeader header;
  std::uint8_t grandmaster_priority1 = 246;
  ClockQuality grandmaster_quality;
  std::uint8_t grandmaster_priority2 = 248;
  ClockIdentity grandmaster_identity;
  std::uint16_t steps_removed = 0;
  std::uint8_t time_source = 0xA0; // internal oscillator
  std::vector<ClockIdentity> path_trace;
};

using Message = std::variant<SyncMessage, FollowUpMessage, PdelayReqMessage, PdelayRespMessage,
                             PdelayRespFollowUpMessage, AnnounceMessage, DelayReqMessage,
                             DelayRespMessage>;

/// Access the common header of any message alternative.
const MessageHeader& header_of(const Message& msg);
MessageHeader& header_of(Message& msg);

/// Serialize to the exact wire representation.
std::vector<std::uint8_t> serialize(const Message& msg);

/// Append the wire representation to an existing buffer. The Payload
/// overload is the hot path: writes straight into a pooled frame's inline
/// storage, no intermediate vector.
void serialize_into(const Message& msg, std::vector<std::uint8_t>& out);
void serialize_into(const Message& msg, net::Payload& out);

/// Parse from wire bytes; nullopt on malformed/truncated/unknown input.
std::optional<Message> parse(const std::uint8_t* data, std::size_t size);
template <class C>
std::optional<Message> parse(const C& bytes) {
  return parse(bytes.data(), bytes.size());
}

} // namespace tsn::gptp
