// IEEE 802.1AS / IEEE 1588 base types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace tsn::gptp {

/// EUI-64 clock identity.
class ClockIdentity {
 public:
  constexpr ClockIdentity() = default;
  constexpr explicit ClockIdentity(std::array<std::uint8_t, 8> b) : bytes_(b) {}
  static ClockIdentity from_u64(std::uint64_t v);

  const std::array<std::uint8_t, 8>& bytes() const { return bytes_; }
  std::uint64_t to_u64() const;
  std::string to_string() const;

  friend constexpr auto operator<=>(const ClockIdentity&, const ClockIdentity&) = default;

 private:
  std::array<std::uint8_t, 8> bytes_{};
};

struct PortIdentity {
  ClockIdentity clock;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const PortIdentity&, const PortIdentity&) = default;
  std::string to_string() const;
};

/// PTP timestamp: 48-bit seconds + 32-bit nanoseconds.
struct Timestamp {
  std::uint64_t seconds = 0; // only low 48 bits are valid on the wire
  std::uint32_t nanoseconds = 0;

  static Timestamp from_ns(std::int64_t ns);
  std::int64_t to_ns() const;

  friend constexpr auto operator<=>(const Timestamp&, const Timestamp&) = default;
};

/// Correction field semantics: signed nanoseconds scaled by 2^16.
namespace scaled_ns {
constexpr std::int64_t kOne = 1 << 16;
constexpr std::int64_t from_ns(double ns) {
  return static_cast<std::int64_t>(ns * static_cast<double>(kOne));
}
constexpr double to_ns(std::int64_t scaled) {
  return static_cast<double>(scaled) / static_cast<double>(kOne);
}
} // namespace scaled_ns

/// cumulativeScaledRateOffset semantics: (rateRatio - 1.0) * 2^41.
namespace rate_offset {
constexpr double kScale = 2199023255552.0; // 2^41
inline std::int32_t from_ratio(double rate_ratio) {
  return static_cast<std::int32_t>((rate_ratio - 1.0) * kScale);
}
inline double to_ratio(std::int32_t scaled) {
  return 1.0 + static_cast<double>(scaled) / kScale;
}
} // namespace rate_offset

/// IEEE 1588 clockQuality.
struct ClockQuality {
  std::uint8_t clock_class = 248;            // default, application specific
  std::uint8_t clock_accuracy = 0xFE;        // unknown
  std::uint16_t offset_scaled_log_variance = 0x4E5D; // 802.1AS default

  friend constexpr auto operator<=>(const ClockQuality&, const ClockQuality&) = default;
};

enum class PortRole : std::uint8_t {
  kDisabled = 0,
  kMaster = 1,
  kSlave = 2,
  kPassive = 3,
};

const char* to_string(PortRole role);

} // namespace tsn::gptp
