#include "gptp/msg_template.hpp"

#include <cstring>

namespace tsn::gptp {

MessageTemplate::MessageTemplate(const Message& prototype) : type_(header_of(prototype).type) {
  net::Payload image;
  serialize_into(prototype, image);
  assert(image.size() <= bytes_.size() && !image.is_heap());
  std::memcpy(bytes_.data(), image.data(), image.size());
  size_ = static_cast<std::uint8_t>(image.size());
}

void MessageTemplate::put_port_identity(std::size_t off, const PortIdentity& id) {
  const auto& cid = id.clock.bytes();
  std::memcpy(bytes_.data() + off, cid.data(), cid.size());
  put_u16(off + cid.size(), id.port);
}

net::FrameRef make_ptp_frame(const MessageTemplate& tpl) {
  net::FrameRef ref = net::FramePool::local().acquire();
  net::EthernetFrame& frame = ref.writable();
  frame.dst = net::MacAddress::gptp_multicast();
  frame.ethertype = net::kEtherTypePtp;
  frame.payload.assign(tpl.data(), tpl.size());
  return ref;
}

} // namespace tsn::gptp
