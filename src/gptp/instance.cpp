#include "gptp/instance.hpp"

#include <cmath>

#include "util/log.hpp"

namespace tsn::gptp {
namespace {

Message make_sync_proto(const InstanceConfig& cfg, const PortIdentity& identity) {
  SyncMessage sync;
  sync.header.type = MessageType::kSync;
  sync.header.domain = cfg.domain;
  sync.header.two_step = true;
  sync.header.source_port = identity;
  sync.header.log_message_interval = -3; // 125 ms
  return sync;
}

Message make_fup_proto(const InstanceConfig& cfg, const PortIdentity& identity) {
  FollowUpMessage fup;
  fup.header.type = MessageType::kFollowUp;
  fup.header.domain = cfg.domain;
  fup.header.source_port = identity;
  fup.header.log_message_interval = -3;
  fup.cumulative_scaled_rate_offset = 0; // we are the GM timebase
  return fup;
}

Message make_delay_req_proto(const InstanceConfig& cfg, const PortIdentity& identity) {
  DelayReqMessage req;
  req.header.type = MessageType::kDelayReq;
  req.header.domain = cfg.domain;
  req.header.source_port = identity;
  return req;
}

Message make_delay_resp_proto(const InstanceConfig& cfg, const PortIdentity& identity) {
  DelayRespMessage resp;
  resp.header.type = MessageType::kDelayResp;
  resp.header.domain = cfg.domain;
  resp.header.source_port = identity;
  return resp;
}

} // namespace

PtpInstance::PtpInstance(sim::Simulation& sim, net::Nic& nic, LinkDelayService& link_delay,
                         const InstanceConfig& cfg, const std::string& name)
    : sim_(sim),
      nic_(nic),
      link_delay_(link_delay),
      cfg_(cfg),
      name_(name),
      identity_{ClockIdentity::from_u64(nic.mac().to_u64()), 1},
      role_(cfg.role),
      fault_rng_(sim.make_rng("ptp-fault/" + name)),
      sync_tpl_(make_sync_proto(cfg, identity_)),
      fup_tpl_(make_fup_proto(cfg, identity_)),
      delay_req_tpl_(make_delay_req_proto(cfg, identity_)),
      delay_resp_tpl_(make_delay_resp_proto(cfg, identity_)) {
  if (cfg_.use_bmca) {
    BmcaEngine::Config bc;
    bc.local.priority1 = cfg_.priority1;
    bc.local.priority2 = cfg_.priority2;
    bc.local.quality = cfg_.quality;
    bc.local.identity = identity_.clock;
    bc.announce_timeout_ns = 3 * cfg_.announce_interval_ns;
    bmca_ = BmcaEngine(bc);
    role_ = PortRole::kMaster; // assume master until a better clock is heard
  }
}

void PtpInstance::fault(const std::string& kind) {
  if (fault_cb_) fault_cb_(kind);
}

void PtpInstance::send_message(const Message& msg, std::optional<std::int64_t> launch_time,
                               net::TxCallback on_complete) {
  net::FrameRef frame = net::FramePool::local().acquire();
  net::EthernetFrame& eth = frame.writable();
  eth.dst = net::MacAddress::gptp_multicast();
  eth.ethertype = net::kEtherTypePtp;
  serialize_into(msg, eth.payload);
  net::TxOptions opts;
  opts.launch_time = launch_time;
  opts.on_complete = std::move(on_complete);
  nic_.send(std::move(frame), std::move(opts));
}

void PtpInstance::send_template(const MessageTemplate& tpl, std::optional<std::int64_t> launch_time,
                                net::TxCallback on_complete) {
  net::TxOptions opts;
  opts.launch_time = launch_time;
  opts.on_complete = std::move(on_complete);
  nic_.send(make_ptp_frame(tpl), std::move(opts));
}

void PtpInstance::start() {
  if (running_) return;
  running_ = true;
  if (role_ == PortRole::kMaster && !cfg_.use_bmca) {
    schedule_next_sync_tx();
  }
  if (role_ == PortRole::kSlave || cfg_.use_bmca) {
    sync_check_ = sim_.every(sim_.now() + cfg_.sync_interval_ns, cfg_.sync_interval_ns,
                             [this](sim::SimTime t) { check_sync_receipt(t); });
    if (cfg_.delay_mechanism == DelayMechanism::kE2E) {
      delay_req_timer_ = sim_.every(sim_.now() + cfg_.delay_req_interval_ns,
                                    cfg_.delay_req_interval_ns,
                                    [this](sim::SimTime) { send_delay_req(); });
    }
  }
  if (cfg_.use_bmca) {
    announce_tx_ = sim_.every(sim_.now(), cfg_.announce_interval_ns,
                              [this](sim::SimTime) { send_announce(); });
    bmca_eval_ = sim_.every(sim_.now() + cfg_.announce_interval_ns, cfg_.announce_interval_ns,
                            [this](sim::SimTime) { evaluate_bmca(); });
    schedule_next_sync_tx(); // starts as master
  }
}

void PtpInstance::stop() {
  running_ = false;
  ++epoch_;
  sync_check_.cancel();
  delay_req_timer_.cancel();
  announce_tx_.cancel();
  bmca_eval_.cancel();
  pending_sync_.reset();
  gm_receiving_ = false;
  last_sync_rx_sim_ns_ = -1;
}

void PtpInstance::schedule_at_phc(std::int64_t target_phc, std::function<void()> fn) {
  const std::int64_t now_phc = nic_.phc().read();
  const std::int64_t remaining = target_phc - now_phc;
  if (remaining <= 0) {
    fn();
    return;
  }
  const double rate = nic_.phc().effective_rate();
  const auto dt = static_cast<std::int64_t>(std::llround(static_cast<double>(remaining) / rate));
  const std::uint64_t epoch = epoch_;
  const std::int64_t delay = std::max<std::int64_t>(dt, 1);
  hop_due_ns_ = sim_.now().ns() + delay;
  sim_.after(delay, [this, target_phc, fn = std::move(fn), epoch]() mutable {
    if (epoch != epoch_ || !running_) return;
    schedule_at_phc(target_phc, std::move(fn));
  });
}

void PtpInstance::schedule_next_sync_tx() {
  if (!running_ || role_ != PortRole::kMaster) return;
  const std::int64_t S = cfg_.sync_interval_ns;
  const std::int64_t now_phc = nic_.phc().read();
  if (cfg_.align_launch) {
    // Next boundary with strictly more than launch_guard of preparation
    // room (strict: with the guard landing exactly on now, a synchronous
    // send-failure callback would otherwise re-enter this function at the
    // same instant forever).
    std::int64_t boundary = (now_phc / S + 1) * S;
    if (boundary - now_phc <= cfg_.launch_guard_ns) boundary += S;
    next_boundary_phc_ = boundary;
    schedule_at_phc(boundary - cfg_.launch_guard_ns,
                    [this, boundary] { prepare_sync_tx(boundary); });
  } else {
    next_boundary_phc_ = now_phc + S;
    schedule_at_phc(next_boundary_phc_, [this] { prepare_sync_tx(0); });
  }
}

void PtpInstance::prepare_sync_tx(std::int64_t launch_phc) {
  if (!running_ || role_ != PortRole::kMaster) return;
  if (cfg_.align_launch && fault_model_.p_late_launch > 0 &&
      fault_rng_.chance(fault_model_.p_late_launch)) {
    // Software stack hiccup: the Sync is enqueued after its launch time
    // already passed; the ETF qdisc rejects it (deadline miss).
    const std::uint64_t epoch = epoch_;
    const std::int64_t until_launch = std::max<std::int64_t>(launch_phc - nic_.phc().read(), 0);
    sim_.after(fault_model_.late_launch_delay_ns + until_launch,
               [this, launch_phc, epoch] {
                 if (epoch != epoch_ || !running_) return;
                 transmit_sync(launch_phc);
               });
    return;
  }
  transmit_sync(launch_phc);
}

void PtpInstance::transmit_sync(std::int64_t launch_phc) {
  if (!running_ || role_ != PortRole::kMaster) return;
  sync_tpl_.set_sequence_id(++sync_seq_);

  const std::uint64_t epoch = epoch_;
  const std::uint16_t seq = sync_seq_;
  send_template(
      sync_tpl_, cfg_.align_launch ? std::optional<std::int64_t>(launch_phc) : std::nullopt,
      [this, seq, epoch](const net::TxReport& report) {
        if (epoch != epoch_ || !running_) return;
        switch (report.status) {
          case net::TxReport::Status::kSent:
            ++counters_.syncs_sent;
            break;
          case net::TxReport::Status::kDeadlineMissed:
          case net::TxReport::Status::kInvalidLaunch:
            ++counters_.deadline_misses;
            fault("deadline_miss");
            schedule_next_sync_tx();
            return;
          case net::TxReport::Status::kPortDown:
            schedule_next_sync_tx();
            return;
        }
        if (fault_model_.p_tx_timestamp_timeout > 0 &&
            fault_rng_.chance(fault_model_.p_tx_timestamp_timeout)) {
          // The kernel never delivered the egress timestamp: ptp4l times
          // out and cannot send the FollowUp; slaves drop this Sync.
          ++counters_.tx_timestamp_timeouts;
          fault("tx_timeout");
          schedule_next_sync_tx();
          return;
        }
        if (!report.hw_tx_ts) {
          schedule_next_sync_tx();
          return;
        }
        const Timestamp precise_origin =
            Timestamp::from_ns(*report.hw_tx_ts + malicious_pot_offset_ns_);
        fup_tpl_.set_sequence_id(seq);
        fup_tpl_.set_body_timestamp(precise_origin);
        send_template(fup_tpl_, std::nullopt, {});
        ++counters_.followups_sent;

        // The grandmaster's own clock participates in multi-domain
        // aggregation with a zero offset to itself.
        if (offset_cb_) {
          MasterOffsetSample self;
          self.domain = cfg_.domain;
          self.offset_ns = 0.0;
          self.local_rx_ts = *report.hw_tx_ts;
          self.precise_origin = precise_origin;
          self.rate_ratio = 1.0;
          self.sequence_id = seq;
          offset_cb_(self);
        }
        schedule_next_sync_tx();
      });
}

void PtpInstance::handle_message(const Message& msg, std::int64_t rx_ts) {
  if (!running_) return;
  if (header_of(msg).domain != cfg_.domain) return;
  if (const auto* sync = std::get_if<SyncMessage>(&msg)) {
    on_sync(*sync, rx_ts);
  } else if (const auto* fup = std::get_if<FollowUpMessage>(&msg)) {
    on_follow_up(*fup);
  } else if (const auto* ann = std::get_if<AnnounceMessage>(&msg)) {
    on_announce_msg(*ann);
  } else if (const auto* dreq = std::get_if<DelayReqMessage>(&msg)) {
    on_delay_req(*dreq, rx_ts);
  } else if (const auto* dresp = std::get_if<DelayRespMessage>(&msg)) {
    on_delay_resp(*dresp);
  }
}

void PtpInstance::send_delay_req() {
  if (!running_ || role_ != PortRole::kSlave) return;
  delay_req_tpl_.set_sequence_id(++delay_req_seq_);
  e2e_t3_.reset();
  const std::uint64_t epoch = epoch_;
  send_template(delay_req_tpl_, std::nullopt,
                [this, epoch, seq = delay_req_seq_](const net::TxReport& r) {
                  if (epoch != epoch_ || !running_) return;
                  if (r.status == net::TxReport::Status::kSent && r.hw_tx_ts &&
                      seq == delay_req_seq_) {
                    e2e_t3_ = *r.hw_tx_ts;
                  }
                });
}

void PtpInstance::on_delay_req(const DelayReqMessage& msg, std::int64_t rx_ts) {
  if (role_ != PortRole::kMaster || cfg_.delay_mechanism != DelayMechanism::kE2E) return;
  delay_resp_tpl_.set_sequence_id(msg.header.sequence_id);
  delay_resp_tpl_.set_body_timestamp(Timestamp::from_ns(rx_ts));
  delay_resp_tpl_.set_requesting_port(msg.header.source_port);
  ++counters_.delay_reqs_answered;
  send_template(delay_resp_tpl_, std::nullopt, {});
}

void PtpInstance::on_delay_resp(const DelayRespMessage& msg) {
  if (role_ != PortRole::kSlave || !e2e_t3_ || msg.requesting_port != identity_ ||
      msg.header.sequence_id != delay_req_seq_ || !e2e_last_sync_) {
    return;
  }
  ++counters_.delay_resps_received;
  // IEEE 1588 E2E: d = ((t2 - t1) + (t4 - t3)) / 2.
  const auto [t1, t2] = *e2e_last_sync_;
  const double t3 = static_cast<double>(*e2e_t3_);
  const double t4 = static_cast<double>(msg.receive_timestamp.to_ns());
  const double d = ((static_cast<double>(t2) - t1) + (t4 - t3)) / 2.0;
  if (std::isnan(e2e_delay_ns_)) {
    e2e_delay_ns_ = d;
  } else {
    e2e_delay_ns_ += 0.25 * (d - e2e_delay_ns_); // linuxptp-ish smoothing
  }
  e2e_t3_.reset();
}

void PtpInstance::on_sync(const SyncMessage& msg, std::int64_t rx_ts) {
  if (role_ != PortRole::kSlave) return;
  ++counters_.syncs_received;
  pending_sync_ = PendingSync{msg.header.sequence_id, rx_ts, msg.header.correction_scaled,
                              msg.header.source_port};
}

void PtpInstance::on_follow_up(const FollowUpMessage& msg) {
  if (role_ != PortRole::kSlave || !pending_sync_) return;
  if (msg.header.sequence_id != pending_sync_->seq ||
      msg.header.source_port != pending_sync_->source) {
    return;
  }
  const PendingSync sync = *pending_sync_;
  pending_sync_.reset();

  const double correction_ns =
      scaled_ns::to_ns(sync.correction_scaled + msg.header.correction_scaled);

  if (cfg_.delay_mechanism == DelayMechanism::kE2E) {
    const double t1 = static_cast<double>(msg.precise_origin.to_ns()) + correction_ns;
    e2e_last_sync_ = {t1, sync.rx_ts};
    if (std::isnan(e2e_delay_ns_)) return; // no delay estimate yet
    MasterOffsetSample sample;
    sample.domain = cfg_.domain;
    sample.offset_ns = static_cast<double>(sync.rx_ts) - t1 - e2e_delay_ns_;
    sample.local_rx_ts = sync.rx_ts;
    sample.precise_origin = msg.precise_origin;
    sample.rate_ratio = msg.rate_ratio();
    sample.sequence_id = sync.seq;
    ++counters_.offsets_computed;
    last_sync_rx_sim_ns_ = sim_.now().ns();
    gm_receiving_ = true;
    deliver_offset(sample);
    return;
  }

  if (!link_delay_.valid()) return; // no usable path delay yet
  // Cumulative GM-to-local rate ratio: sender's GM ratio times the
  // neighbor rate ratio measured on our ingress link.
  const double rate_ratio = msg.rate_ratio() * link_delay_.neighbor_rate_ratio();
  const double delay_gm_ns = link_delay_.mean_link_delay_ns() * rate_ratio;

  MasterOffsetSample sample;
  sample.domain = cfg_.domain;
  sample.offset_ns = static_cast<double>(sync.rx_ts) -
                     (static_cast<double>(msg.precise_origin.to_ns()) + correction_ns +
                      delay_gm_ns);
  sample.local_rx_ts = sync.rx_ts;
  sample.precise_origin = msg.precise_origin;
  sample.rate_ratio = rate_ratio;
  sample.sequence_id = sync.seq;
  ++counters_.offsets_computed;

  last_sync_rx_sim_ns_ = sim_.now().ns();
  gm_receiving_ = true;

  deliver_offset(sample);
}

void PtpInstance::deliver_offset(const MasterOffsetSample& sample) {
  if (offset_cb_) {
    offset_cb_(sample);
    return;
  }
  if (local_servo_) {
    const auto res = local_servo_->sample(static_cast<std::int64_t>(sample.offset_ns),
                                          sample.local_rx_ts);
    switch (res.state) {
      case PiServo::State::kUnlocked:
        break;
      case PiServo::State::kJump:
        nic_.phc().step(-static_cast<std::int64_t>(sample.offset_ns));
        nic_.phc().adj_frequency(res.freq_ppb);
        break;
      case PiServo::State::kLocked:
        nic_.phc().adj_frequency(res.freq_ppb);
        break;
    }
  }
}

void PtpInstance::enable_local_servo(const PiServoConfig& cfg) { local_servo_ = PiServo(cfg); }

void PtpInstance::check_sync_receipt(sim::SimTime now) {
  if (role_ != PortRole::kSlave) return;
  const std::int64_t timeout =
      cfg_.sync_receipt_timeout_intervals * cfg_.sync_interval_ns;
  if (last_sync_rx_sim_ns_ < 0) return; // never synchronized yet
  if (gm_receiving_ && now.ns() - last_sync_rx_sim_ns_ > timeout) {
    gm_receiving_ = false;
    ++counters_.sync_receipt_timeouts;
    fault("sync_receipt_timeout");
    if (local_servo_) local_servo_->reset();
  }
}

void PtpInstance::send_announce() {
  if (!running_ || role_ != PortRole::kMaster || !bmca_) return;
  AnnounceMessage ann;
  ann.header.type = MessageType::kAnnounce;
  ann.header.domain = cfg_.domain;
  ann.header.source_port = identity_;
  ann.header.sequence_id = ++announce_seq_;
  ann.grandmaster_priority1 = cfg_.priority1;
  ann.grandmaster_priority2 = cfg_.priority2;
  ann.grandmaster_quality = cfg_.quality;
  ann.grandmaster_identity = identity_.clock;
  ann.steps_removed = 0;
  ann.path_trace = {identity_.clock};
  send_message(ann, std::nullopt, {});
}

void PtpInstance::on_announce_msg(const AnnounceMessage& msg) {
  if (!bmca_) return;
  bmca_->on_announce(msg, sim_.now().ns());
}

void PtpInstance::arm_sync_hop_at(std::int64_t due_ns) {
  const std::uint64_t epoch = epoch_;
  hop_due_ns_ = due_ns;
  if (cfg_.align_launch) {
    const std::int64_t boundary = next_boundary_phc_;
    sim_.at(sim::SimTime{due_ns}, [this, boundary, epoch] {
      if (epoch != epoch_ || !running_) return;
      schedule_at_phc(boundary - cfg_.launch_guard_ns,
                      [this, boundary] { prepare_sync_tx(boundary); });
    });
  } else {
    sim_.at(sim::SimTime{due_ns}, [this, epoch] {
      if (epoch != epoch_ || !running_) return;
      schedule_at_phc(next_boundary_phc_, [this] { prepare_sync_tx(0); });
    });
  }
}

void PtpInstance::save_state(sim::StateWriter& w) {
  w.b(running_);
  w.u8(static_cast<std::uint8_t>(role_));
  w.u16(sync_seq_);
  w.i64(next_boundary_phc_);
  w.i64(hop_due_ns_);
  w.rng(fault_rng_);
  w.b(pending_sync_.has_value());
  if (pending_sync_) {
    w.u16(pending_sync_->seq);
    w.i64(pending_sync_->rx_ts);
    w.i64(pending_sync_->correction_scaled);
    w.u64(pending_sync_->source.clock.to_u64());
    w.u16(pending_sync_->source.port);
  }
  w.i64(last_sync_rx_sim_ns_);
  w.b(e2e_last_sync_.has_value());
  w.f64(e2e_last_sync_ ? e2e_last_sync_->first : 0.0);
  w.i64(e2e_last_sync_ ? e2e_last_sync_->second : 0);
  w.u16(delay_req_seq_);
  w.opt_i64(e2e_t3_);
  w.f64(e2e_delay_ns_);
  w.b(gm_receiving_);
  w.b(sync_check_.active());
  w.i64(sync_check_.next_due_ns());
  w.b(delay_req_timer_.active());
  w.i64(delay_req_timer_.next_due_ns());
  w.b(announce_tx_.active());
  w.i64(announce_tx_.next_due_ns());
  w.b(bmca_eval_.active());
  w.i64(bmca_eval_.next_due_ns());
  if (bmca_) bmca_->save_state(w);
  w.u16(announce_seq_);
  w.b(local_servo_.has_value());
  if (local_servo_) local_servo_->save_state(w);
  w.i64(malicious_pot_offset_ns_);
  w.u64(counters_.syncs_sent);
  w.u64(counters_.followups_sent);
  w.u64(counters_.syncs_received);
  w.u64(counters_.offsets_computed);
  w.u64(counters_.tx_timestamp_timeouts);
  w.u64(counters_.deadline_misses);
  w.u64(counters_.sync_receipt_timeouts);
  w.u64(counters_.malformed_messages);
  w.u64(counters_.delay_reqs_answered);
  w.u64(counters_.delay_resps_received);
}

void PtpInstance::load_state(sim::StateReader& r) {
  ++epoch_; // invalidate anything captured before the restore
  sync_check_ = {};
  delay_req_timer_ = {};
  announce_tx_ = {};
  bmca_eval_ = {};
  running_ = r.b();
  role_ = static_cast<PortRole>(r.u8());
  sync_seq_ = r.u16();
  next_boundary_phc_ = r.i64();
  const std::int64_t hop_due = r.i64();
  r.rng(fault_rng_);
  if (r.b()) {
    PendingSync p;
    p.seq = r.u16();
    p.rx_ts = r.i64();
    p.correction_scaled = r.i64();
    p.source.clock = ClockIdentity::from_u64(r.u64());
    p.source.port = r.u16();
    pending_sync_ = p;
  } else {
    pending_sync_.reset();
  }
  last_sync_rx_sim_ns_ = r.i64();
  const bool has_e2e = r.b();
  const double e2e_t1 = r.f64();
  const std::int64_t e2e_t2 = r.i64();
  e2e_last_sync_ = has_e2e ? std::optional<std::pair<double, std::int64_t>>({e2e_t1, e2e_t2})
                           : std::nullopt;
  delay_req_seq_ = r.u16();
  e2e_t3_ = r.opt_i64<std::int64_t>();
  e2e_delay_ns_ = r.f64();
  gm_receiving_ = r.b();
  const bool sc_run = r.b();
  const std::int64_t sc_due = r.i64();
  const bool dr_run = r.b();
  const std::int64_t dr_due = r.i64();
  const bool at_run = r.b();
  const std::int64_t at_due = r.i64();
  const bool be_run = r.b();
  const std::int64_t be_due = r.i64();
  if (bmca_) bmca_->load_state(r);
  announce_seq_ = r.u16();
  const bool has_servo = r.b();
  if (has_servo) {
    if (!local_servo_) local_servo_ = PiServo();
    local_servo_->load_state(r);
  }
  malicious_pot_offset_ns_ = r.i64();
  counters_.syncs_sent = r.u64();
  counters_.followups_sent = r.u64();
  counters_.syncs_received = r.u64();
  counters_.offsets_computed = r.u64();
  counters_.tx_timestamp_timeouts = r.u64();
  counters_.deadline_misses = r.u64();
  counters_.sync_receipt_timeouts = r.u64();
  counters_.malformed_messages = r.u64();
  counters_.delay_reqs_answered = r.u64();
  counters_.delay_resps_received = r.u64();
  if (!running_) {
    hop_due_ns_ = -1;
    return;
  }
  // Re-arm standing events in the same order start() creates them so
  // same-timestamp firings keep their boot-time relative sequence order.
  const bool master_chain = role_ == PortRole::kMaster && hop_due >= 0;
  if (master_chain && !cfg_.use_bmca) arm_sync_hop_at(hop_due);
  if (sc_run) {
    sync_check_ = sim_.every(sim::SimTime{sc_due}, cfg_.sync_interval_ns,
                             [this](sim::SimTime t) { check_sync_receipt(t); });
  }
  if (dr_run) {
    delay_req_timer_ = sim_.every(sim::SimTime{dr_due}, cfg_.delay_req_interval_ns,
                                  [this](sim::SimTime) { send_delay_req(); });
  }
  if (at_run) {
    announce_tx_ = sim_.every(sim::SimTime{at_due}, cfg_.announce_interval_ns,
                              [this](sim::SimTime) { send_announce(); });
  }
  if (be_run) {
    bmca_eval_ = sim_.every(sim::SimTime{be_due}, cfg_.announce_interval_ns,
                            [this](sim::SimTime) { evaluate_bmca(); });
  }
  if (master_chain && cfg_.use_bmca) arm_sync_hop_at(hop_due);
}

std::size_t PtpInstance::live_events() const {
  if (!running_) return 0;
  std::size_t n = 0;
  if (role_ == PortRole::kMaster) ++n; // the sync-chain hop
  if (sync_check_.active()) ++n;
  if (delay_req_timer_.active()) ++n;
  if (announce_tx_.active()) ++n;
  if (bmca_eval_.active()) ++n;
  return n;
}

void PtpInstance::ff_park() {
  park_sync_check_ = {sync_check_.active(), sync_check_.next_due_ns()};
  park_delay_req_ = {delay_req_timer_.active(), delay_req_timer_.next_due_ns()};
  park_announce_ = {announce_tx_.active(), announce_tx_.next_due_ns()};
  park_bmca_ = {bmca_eval_.active(), bmca_eval_.next_due_ns()};
  sync_check_.cancel();
  delay_req_timer_.cancel();
  announce_tx_.cancel();
  bmca_eval_.cancel();
  ++epoch_; // kills the sync-chain hop and any in-flight tx callbacks
}

void PtpInstance::ff_advance(const sim::FfWindow& w) {
  if (last_sync_rx_sim_ns_ >= 0) last_sync_rx_sim_ns_ += w.span_ns();
  e2e_t3_.reset(); // force a clean first post-resume E2E exchange
  if (bmca_) bmca_->ff_advance(w);
}

void PtpInstance::ff_resume() {
  if (!running_) return;
  const auto rearm = [this](const ParkedPeriodic& p, std::int64_t period,
                            std::function<void(sim::SimTime)> fn) {
    if (!p.running) return sim::Simulation::PeriodicHandle{};
    return sim_.every(
        sim::SimTime{sim::align_phase(p.due_ns, period, sim_.now().ns())}, period,
        std::move(fn));
  };
  // Masters recompute the next launch boundary from the (analytically
  // advanced) PHC -- the sync grid is PHC-aligned, not sim-time-aligned.
  if (role_ == PortRole::kMaster && !cfg_.use_bmca) schedule_next_sync_tx();
  sync_check_ = rearm(park_sync_check_, cfg_.sync_interval_ns,
                      [this](sim::SimTime t) { check_sync_receipt(t); });
  delay_req_timer_ = rearm(park_delay_req_, cfg_.delay_req_interval_ns,
                           [this](sim::SimTime) { send_delay_req(); });
  announce_tx_ = rearm(park_announce_, cfg_.announce_interval_ns,
                       [this](sim::SimTime) { send_announce(); });
  bmca_eval_ = rearm(park_bmca_, cfg_.announce_interval_ns,
                     [this](sim::SimTime) { evaluate_bmca(); });
  if (role_ == PortRole::kMaster && cfg_.use_bmca) schedule_next_sync_tx();
  park_sync_check_ = {};
  park_delay_req_ = {};
  park_announce_ = {};
  park_bmca_ = {};
}

void PtpInstance::evaluate_bmca() {
  if (!bmca_ || !running_) return;
  const auto decision = bmca_->evaluate(sim_.now().ns());
  if (decision.role == role_) return;
  TSN_LOG_DEBUG("ptp", "%s: BMCA role change %s -> %s", name_.c_str(), to_string(role_),
                to_string(decision.role));
  role_ = decision.role;
  if (role_ == PortRole::kMaster) {
    pending_sync_.reset();
    schedule_next_sync_tx();
  } else {
    if (local_servo_) local_servo_->reset();
  }
}

} // namespace tsn::gptp
