// Pre-built gPTP message images with field patching.
//
// Sync/FollowUp/Pdelay transmissions differ from one another only in a
// handful of fields (sequenceId, timestamps, correction, requesting port).
// Re-serializing the whole PDU per transmission costs a field-by-field
// rebuild; instead each sender serializes a prototype once at setup and
// per transmission patches the few bytes that change, then memcpys the
// image into a pooled frame. Offsets follow IEEE 1588-2019 clause 13 and
// are cross-checked against the generic serializer by the unit tests.
//
// Only fixed-size messages are supported (<= 96 bytes, the frame pool's
// inline payload). Announce with its variable path-trace TLV stays on the
// generic serialize_into path.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "gptp/messages.hpp"
#include "net/frame_pool.hpp"

namespace tsn::gptp {

class MessageTemplate {
 public:
  // Header offsets (common to all PTP messages).
  static constexpr std::size_t kOffLength = 2;
  static constexpr std::size_t kOffDomain = 4;
  static constexpr std::size_t kOffCorrection = 8;
  static constexpr std::size_t kOffSourcePort = 20;
  static constexpr std::size_t kOffSequenceId = 30;
  static constexpr std::size_t kOffLogInterval = 33;
  // Body offsets.
  static constexpr std::size_t kOffBodyTimestamp = 34; ///< origin/receipt ts
  static constexpr std::size_t kOffRequestingPort = 44; ///< *Resp messages
  static constexpr std::size_t kOffCsro = 54;           ///< FollowUp TLV
  static constexpr std::size_t kOffGmTimeBase = 58;     ///< FollowUp TLV
  static constexpr std::size_t kOffGmFreqChange = 72;   ///< FollowUp TLV

  explicit MessageTemplate(const Message& prototype);

  MessageType type() const { return type_; }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size() const { return size_; }

  void set_sequence_id(std::uint16_t v) { put_u16(kOffSequenceId, v); }
  void set_domain(std::uint8_t v) { bytes_[kOffDomain] = v; }
  void set_log_message_interval(std::int8_t v) {
    bytes_[kOffLogInterval] = static_cast<std::uint8_t>(v);
  }
  void set_correction_scaled(std::int64_t v) {
    put_u64(kOffCorrection, static_cast<std::uint64_t>(v));
  }
  void set_source_port(const PortIdentity& id) {
    put_port_identity(kOffSourcePort, id);
  }
  /// The 10-byte body timestamp (FollowUp preciseOrigin, DelayResp /
  /// PdelayResp receipt, PdelayRespFollowUp responseOrigin).
  void set_body_timestamp(const Timestamp& ts) {
    put_u48(kOffBodyTimestamp, ts.seconds);
    put_u32(kOffBodyTimestamp + 6, ts.nanoseconds);
  }
  void set_requesting_port(const PortIdentity& id) {
    put_port_identity(kOffRequestingPort, id);
  }
  void set_cumulative_scaled_rate_offset(std::int32_t v) {
    assert(type_ == MessageType::kFollowUp);
    put_u32(kOffCsro, static_cast<std::uint32_t>(v));
  }
  void set_gm_time_base_indicator(std::uint16_t v) {
    assert(type_ == MessageType::kFollowUp);
    put_u16(kOffGmTimeBase, v);
  }
  void set_scaled_last_gm_freq_change(std::int32_t v) {
    assert(type_ == MessageType::kFollowUp);
    put_u32(kOffGmFreqChange, static_cast<std::uint32_t>(v));
  }

 private:
  void put_u16(std::size_t off, std::uint16_t v) {
    bytes_[off] = static_cast<std::uint8_t>(v >> 8);
    bytes_[off + 1] = static_cast<std::uint8_t>(v);
  }
  void put_u32(std::size_t off, std::uint32_t v) {
    put_u16(off, static_cast<std::uint16_t>(v >> 16));
    put_u16(off + 2, static_cast<std::uint16_t>(v));
  }
  void put_u48(std::size_t off, std::uint64_t v) {
    put_u16(off, static_cast<std::uint16_t>(v >> 32));
    put_u32(off + 2, static_cast<std::uint32_t>(v));
  }
  void put_u64(std::size_t off, std::uint64_t v) {
    put_u32(off, static_cast<std::uint32_t>(v >> 32));
    put_u32(off + 4, static_cast<std::uint32_t>(v));
  }
  void put_port_identity(std::size_t off, const PortIdentity& id);

  std::array<std::uint8_t, net::Payload::kInlineCapacity> bytes_{};
  std::uint8_t size_ = 0;
  MessageType type_;
};

/// A pooled gPTP frame (multicast dst, PTP ethertype) carrying the
/// template's current image; sole reference, ready for Nic::send /
/// Switch::send_from_port.
net::FrameRef make_ptp_frame(const MessageTemplate& tpl);

} // namespace tsn::gptp
