// Best Master Clock Algorithm (IEEE 1588 dataset comparison, 802.1AS
// profile). The paper's experiments disable BMCA in favour of external port
// configuration, but the library implements it for completeness and for
// single-domain deployments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "gptp/messages.hpp"
#include "gptp/types.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
struct FfWindow;
} // namespace tsn::sim

namespace tsn::gptp {

/// The fields compared by the BMCA, in comparison order.
struct PriorityVector {
  std::uint8_t priority1 = 246;
  ClockQuality quality;
  std::uint8_t priority2 = 248;
  ClockIdentity identity;
  std::uint16_t steps_removed = 0;

  static PriorityVector from_announce(const AnnounceMessage& msg);
};

/// Three-way comparison: negative when `a` is the better master.
int compare_priority(const PriorityVector& a, const PriorityVector& b);

/// Foreign-master tracking and master selection for a single-port
/// time-aware end station.
class BmcaEngine {
 public:
  struct Config {
    PriorityVector local;
    /// Announce receipt timeout: a foreign master is forgotten when no
    /// Announce arrives within this window.
    std::int64_t announce_timeout_ns = 3'000'000'000;
  };

  explicit BmcaEngine(const Config& cfg) : cfg_(cfg) {}

  /// Record a received Announce at local time `now_ns`.
  void on_announce(const AnnounceMessage& msg, std::int64_t now_ns);

  struct Decision {
    PortRole role = PortRole::kMaster;
    /// Identity of the selected grandmaster (the local clock when master).
    ClockIdentity grandmaster;
    /// Source port of the best foreign announce (valid when slave).
    std::optional<PortIdentity> parent_port;
  };

  /// Purge expired foreign masters and decide the local port role.
  Decision evaluate(std::int64_t now_ns);

  std::size_t foreign_master_count() const { return foreign_.size(); }
  const Config& config() const { return cfg_; }

  /// Snapshot support: the foreign-master table.
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);
  /// Fast-forward: shift last-seen stamps so foreign masters keep the age
  /// they had when the window opened.
  void ff_advance(const sim::FfWindow& w);

 private:
  struct Foreign {
    PriorityVector vector;
    PortIdentity source;
    std::int64_t last_seen_ns = 0;
  };

  Config cfg_;
  std::map<std::uint64_t, Foreign> foreign_; // keyed by sender clock identity
};

} // namespace tsn::gptp
