#include "gptp/bridge.hpp"

#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::gptp {
namespace {

Message make_relay_sync_proto() {
  SyncMessage sync;
  sync.header.type = MessageType::kSync;
  sync.header.two_step = true;
  return sync;
}

Message make_relay_fup_proto() {
  FollowUpMessage fup;
  fup.header.type = MessageType::kFollowUp;
  return fup;
}

} // namespace

TimeAwareBridge::TimeAwareBridge(sim::Simulation& sim, net::Switch& sw, const BridgeConfig& cfg,
                                 const std::string& name)
    : sim_(sim),
      sw_(sw),
      cfg_(cfg),
      name_(name),
      identity_(ClockIdentity::from_u64(util::fnv1a64("bridge/" + name))),
      sync_tpl_(make_relay_sync_proto()),
      fup_tpl_(make_relay_fup_proto()) {
  for (std::size_t i = 0; i < sw_.port_count(); ++i) {
    link_delay_.push_back(std::make_unique<LinkDelayService>(
        sim, port_identity(i),
        [this, i](net::FrameRef frame, LinkDelayService::TxTsFn on_tx) {
          send_on_port(i, std::move(frame), std::move(on_tx));
        },
        cfg_.link_delay, util::format("%s/P%zu/pdelay", name.c_str(), i)));
  }
  for (const auto& dc : cfg_.domains) {
    domains_[dc.domain] = DomainState{dc, std::nullopt};
  }
  sw_.set_ptp_sink([this](std::size_t idx, const net::EthernetFrame& frame,
                          const net::RxMeta& meta) { on_ptp(idx, frame, meta); });
}

PortIdentity TimeAwareBridge::port_identity(std::size_t port_idx) const {
  return PortIdentity{identity_, static_cast<std::uint16_t>(port_idx + 1)};
}

void TimeAwareBridge::send_on_port(std::size_t port_idx, net::FrameRef frame,
                                   LinkDelayService::TxTsFn on_tx) {
  frame.writable().src = net::MacAddress::from_u64(identity_.to_u64() & 0xFFFFFFFFFFFF);
  net::TxOptions opts;
  if (on_tx) {
    opts.on_complete = [on_tx = std::move(on_tx)](const net::TxReport& r) mutable {
      on_tx(r.status == net::TxReport::Status::kSent ? r.hw_tx_ts : std::nullopt);
    };
  }
  sw_.send_from_port(port_idx, std::move(frame), std::move(opts));
}

void TimeAwareBridge::send_message_on_port(std::size_t port_idx, const Message& msg,
                                           LinkDelayService::TxTsFn on_tx) {
  net::FrameRef frame = net::FramePool::local().acquire();
  net::EthernetFrame& eth = frame.writable();
  eth.dst = net::MacAddress::gptp_multicast();
  eth.ethertype = net::kEtherTypePtp;
  serialize_into(msg, eth.payload);
  send_on_port(port_idx, std::move(frame), std::move(on_tx));
}

std::uint32_t TimeAwareBridge::alloc_relay_slot() {
  if (!relay_free_.empty()) {
    const std::uint32_t slot = relay_free_.back();
    relay_free_.pop_back();
    return slot;
  }
  relay_ctx_.emplace_back();
  return static_cast<std::uint32_t>(relay_ctx_.size() - 1);
}

void TimeAwareBridge::start() {
  started_ = true;
  for (auto& ld : link_delay_) {
    ld->start();
  }
}

void TimeAwareBridge::stop() {
  started_ = false;
  for (auto& ld : link_delay_) ld->stop();
  stop_sync_storm();
}

void TimeAwareBridge::set_correction_attack(std::uint8_t domain, double bias_ns) {
  atk_corr_domain_ = domain;
  atk_corr_bias_ns_ = bias_ns;
}

void TimeAwareBridge::clear_correction_attack() {
  atk_corr_domain_.reset();
  atk_corr_bias_ns_ = 0.0;
}

void TimeAwareBridge::start_sync_storm(std::uint8_t domain, std::int64_t period_ns) {
  if (storm_.active()) return;
  storm_domain_ = domain;
  storm_period_ns_ = period_ns;
  arm_storm(sim_.now().ns());
}

void TimeAwareBridge::arm_storm(std::int64_t first_ns) {
  storm_ = sim_.every(sim::SimTime{first_ns}, storm_period_ns_, [this](sim::SimTime) {
    SyncMessage sync;
    sync.header.type = MessageType::kSync;
    sync.header.two_step = false; // standalone: no FollowUp ever comes
    sync.header.domain = storm_domain_;
    sync.header.sequence_id = ++storm_seq_;
    for (std::size_t p = 0; p < sw_.port_count(); ++p) {
      if (!sw_.port(p).connected()) continue;
      sync.header.source_port = port_identity(p);
      ++counters_.storm_syncs_sent;
      send_message_on_port(p, sync, {});
    }
  });
}

void TimeAwareBridge::stop_sync_storm() { storm_.cancel(); }

void TimeAwareBridge::save_state(sim::StateWriter& w) {
  w.b(started_);
  w.u64(counters_.syncs_relayed);
  w.u64(counters_.followups_relayed);
  w.u64(counters_.announces_relayed);
  w.u64(counters_.syncs_on_non_slave_port);
  w.u64(counters_.malformed);
  w.u64(counters_.storm_syncs_sent);
  for (auto& ld : link_delay_) ld->save_state(w);
  for (const auto& [domain, ds] : domains_) {
    w.b(ds.pending.has_value());
    const PendingSync p = ds.pending.value_or(PendingSync{});
    w.u16(p.seq);
    w.i64(p.rx_ts);
    w.i64(p.correction_scaled);
    w.u64(p.source.clock.to_u64());
    w.u16(p.source.port);
    w.u64(p.ingress_port);
  }
  w.b(atk_corr_domain_.has_value());
  w.u8(atk_corr_domain_.value_or(0));
  w.f64(atk_corr_bias_ns_);
  w.b(storm_.active());
  w.i64(storm_.next_due_ns());
  w.u16(storm_seq_);
  w.u8(storm_domain_);
  w.i64(storm_period_ns_);
}

void TimeAwareBridge::load_state(sim::StateReader& r) {
  started_ = r.b();
  counters_.syncs_relayed = r.u64();
  counters_.followups_relayed = r.u64();
  counters_.announces_relayed = r.u64();
  counters_.syncs_on_non_slave_port = r.u64();
  counters_.malformed = r.u64();
  counters_.storm_syncs_sent = r.u64();
  for (auto& ld : link_delay_) ld->load_state(r);
  for (auto& [domain, ds] : domains_) {
    const bool has = r.b();
    PendingSync p;
    p.seq = r.u16();
    p.rx_ts = r.i64();
    p.correction_scaled = r.i64();
    p.source = PortIdentity{ClockIdentity::from_u64(r.u64()), 0};
    p.source.port = r.u16();
    p.ingress_port = r.u64();
    ds.pending.reset();
    if (has) ds.pending = p;
  }
  const bool has_corr = r.b();
  const std::uint8_t corr_domain = r.u8();
  atk_corr_domain_.reset();
  if (has_corr) atk_corr_domain_ = corr_domain;
  atk_corr_bias_ns_ = r.f64();
  const bool storm_active = r.b();
  const std::int64_t storm_due = r.i64();
  storm_seq_ = r.u16();
  storm_domain_ = r.u8();
  storm_period_ns_ = r.i64();
  storm_ = {};
  if (storm_active) {
    arm_storm(sim::align_phase(storm_due, storm_period_ns_, sim_.now().ns()));
  }
}

std::size_t TimeAwareBridge::live_events() const {
  std::size_t n = storm_.active() ? 1u : 0u;
  for (const auto& ld : link_delay_) n += ld->live_events();
  return n;
}

void TimeAwareBridge::ff_park() {
  for (auto& ld : link_delay_) ld->ff_park();
  parked_storm_ = storm_.active();
  park_storm_due_ns_ = storm_.next_due_ns();
  storm_.cancel();
}

void TimeAwareBridge::ff_advance(const sim::FfWindow& w) {
  for (auto& ld : link_delay_) ld->ff_advance(w);
  // A Sync whose FollowUp has not arrived by a multi-second quiescent
  // window is an abandoned relay; its seq is long gone after the jump.
  for (auto& [domain, ds] : domains_) ds.pending.reset();
}

void TimeAwareBridge::ff_resume() {
  for (auto& ld : link_delay_) ld->ff_resume();
  if (parked_storm_) {
    parked_storm_ = false;
    arm_storm(sim::align_phase(park_storm_due_ns_, storm_period_ns_, sim_.now().ns()));
  }
}

void TimeAwareBridge::on_ptp(std::size_t port_idx, const net::EthernetFrame& frame,
                             const net::RxMeta& meta) {
  if (!started_) return;
  const auto msg = parse(frame.payload);
  if (!msg) {
    ++counters_.malformed;
    return;
  }
  const std::int64_t rx_ts = meta.hw_rx_ts.value_or(0);
  const auto& header = header_of(*msg);

  if (header.type == MessageType::kPdelayReq || header.type == MessageType::kPdelayResp ||
      header.type == MessageType::kPdelayRespFollowUp) {
    link_delay_[port_idx]->on_message(*msg, rx_ts);
    return;
  }

  auto it = domains_.find(header.domain);
  if (it == domains_.end()) return; // domain not configured here
  DomainState& ds = it->second;

  if (const auto* sync = std::get_if<SyncMessage>(&*msg)) {
    if (!ds.cfg.dynamic && port_idx != ds.cfg.slave_port) {
      ++counters_.syncs_on_non_slave_port; // passive port: ignore
      return;
    }
    ds.pending = PendingSync{sync->header.sequence_id, rx_ts, sync->header.correction_scaled,
                             sync->header.source_port, port_idx};
    return;
  }

  if (const auto* fup = std::get_if<FollowUpMessage>(&*msg)) {
    if (!ds.cfg.dynamic && port_idx != ds.cfg.slave_port) return;
    if (!ds.pending || ds.pending->seq != fup->header.sequence_id ||
        ds.pending->source != fup->header.source_port ||
        ds.pending->ingress_port != port_idx) {
      return;
    }
    relay_follow_up(ds, *fup);
    return;
  }

  if (const auto* ann = std::get_if<AnnounceMessage>(&*msg)) {
    if (ds.cfg.dynamic) relay_announce(ds, port_idx, *ann);
    return; // with external port configuration announces are not relayed
  }
}

void TimeAwareBridge::relay_announce(DomainState& ds, std::size_t ingress,
                                     const AnnounceMessage& msg) {
  // Loop prevention: never relay an announce that already traversed us.
  for (const auto& hop : msg.path_trace) {
    if (hop == identity_) return;
  }
  AnnounceMessage out = msg;
  out.steps_removed = static_cast<std::uint16_t>(out.steps_removed + 1);
  out.path_trace.push_back(identity_);
  for (std::size_t p = 0; p < sw_.port_count(); ++p) {
    if (p == ingress || !sw_.port(p).connected()) continue;
    out.header.source_port = port_identity(p);
    ++counters_.announces_relayed;
    send_message_on_port(p, out, {});
  }
  (void)ds;
}

void TimeAwareBridge::relay_follow_up(DomainState& ds, const FollowUpMessage& fup) {
  const PendingSync pending = *ds.pending;
  ds.pending.reset();

  LinkDelayService& ingress_ld = *link_delay_[pending.ingress_port];
  if (!ingress_ld.valid()) return; // upstream link delay not yet measured

  // Cumulative rate ratio from the GM to this bridge's clock.
  const double rate_ratio = fup.rate_ratio() * ingress_ld.neighbor_rate_ratio();
  const double upstream_delay_ns = ingress_ld.mean_link_delay_ns();

  std::set<std::size_t> egress = ds.cfg.master_ports;
  if (ds.cfg.dynamic) {
    egress.clear();
    for (std::size_t p = 0; p < sw_.port_count(); ++p) {
      if (p != pending.ingress_port && sw_.port(p).connected()) egress.insert(p);
    }
  }
  for (std::size_t out_port : egress) {
    sync_tpl_.set_domain(ds.cfg.domain);
    sync_tpl_.set_source_port(port_identity(out_port));
    sync_tpl_.set_sequence_id(pending.seq);
    sync_tpl_.set_log_message_interval(fup.header.log_message_interval);

    const std::uint32_t slot = alloc_relay_slot();
    RelayCtx& ctx = relay_ctx_[slot];
    ctx.domain = ds.cfg.domain;
    ctx.log_interval = fup.header.log_message_interval;
    ctx.seq = pending.seq;
    ctx.out_port = out_port;
    ctx.rx_ts = pending.rx_ts;
    ctx.base_correction = pending.correction_scaled + fup.header.correction_scaled;
    ctx.precise_origin = fup.precise_origin;
    ctx.gm_time_base_indicator = fup.gm_time_base_indicator;
    ctx.freq_change = fup.scaled_last_gm_freq_change;
    ctx.rate_ratio = rate_ratio;
    ctx.upstream_delay_ns = upstream_delay_ns;

    ++counters_.syncs_relayed;
    send_on_port(out_port, make_ptp_frame(sync_tpl_),
                 LinkDelayService::TxTsFn([this, slot](std::optional<std::int64_t> tx_ts) {
                   finish_relay(slot, tx_ts);
                 }));
  }
}

void TimeAwareBridge::finish_relay(std::uint32_t slot, std::optional<std::int64_t> tx_ts) {
  const RelayCtx ctx = relay_ctx_[slot];
  relay_free_.push_back(slot);
  if (!tx_ts || !started_) return;
  // Residence time in the bridge's local clock, plus the upstream link
  // delay, both converted to GM time.
  const double residence_ns = static_cast<double>(*tx_ts - ctx.rx_ts);
  double added_ns = ctx.rate_ratio * (residence_ns + ctx.upstream_delay_ns);
  // Compromised-bridge correction tamper: the FollowUp claims more (or
  // less) residence than actually elapsed for the attacked domain.
  if (atk_corr_domain_ && *atk_corr_domain_ == ctx.domain) added_ns += atk_corr_bias_ns_;

  fup_tpl_.set_domain(ctx.domain);
  fup_tpl_.set_source_port(port_identity(ctx.out_port));
  fup_tpl_.set_sequence_id(ctx.seq);
  fup_tpl_.set_log_message_interval(ctx.log_interval);
  fup_tpl_.set_correction_scaled(ctx.base_correction + scaled_ns::from_ns(added_ns));
  fup_tpl_.set_body_timestamp(ctx.precise_origin);
  fup_tpl_.set_cumulative_scaled_rate_offset(rate_offset::from_ratio(ctx.rate_ratio));
  fup_tpl_.set_gm_time_base_indicator(ctx.gm_time_base_indicator);
  fup_tpl_.set_scaled_last_gm_freq_change(ctx.freq_change);
  ++counters_.followups_relayed;
  send_on_port(ctx.out_port, make_ptp_frame(fup_tpl_), {});
}

} // namespace tsn::gptp
