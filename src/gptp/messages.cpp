#include "gptp/messages.hpp"

#include "gptp/wire.hpp"
#include "net/frame.hpp"

namespace tsn::gptp {
namespace {

constexpr std::uint8_t kTransportSpecific = 1; // 802.1AS
constexpr std::uint8_t kVersionPtp = 2;
constexpr std::uint16_t kFlagTwoStep = 0x0200;     // flagField[0] bit 1
constexpr std::uint16_t kFlagPtpTimescale = 0x0008; // flagField[1] bit 3

constexpr std::uint16_t kTlvOrgExtension = 0x0003;
constexpr std::uint16_t kTlvPathTrace = 0x0008;

std::uint8_t control_field(MessageType type) {
  switch (type) {
    case MessageType::kSync: return 0;
    case MessageType::kFollowUp: return 2;
    default: return 5;
  }
}

template <class Buf>
void write_header(BasicByteWriter<Buf>& w, const MessageHeader& h) {
  w.u8(static_cast<std::uint8_t>((kTransportSpecific << 4) |
                                 static_cast<std::uint8_t>(h.type)));
  w.u8(kVersionPtp);
  w.u16(0); // messageLength, patched at offset 2 once the body is complete
  w.u8(h.domain);
  w.u8(0); // minorSdoId
  w.u16(static_cast<std::uint16_t>((h.two_step ? kFlagTwoStep : 0) | kFlagPtpTimescale));
  w.i64(h.correction_scaled);
  w.u32(0); // messageTypeSpecific
  w.port_identity(h.source_port);
  w.u16(h.sequence_id);
  w.u8(control_field(h.type));
  w.u8(static_cast<std::uint8_t>(h.log_message_interval));
}

bool read_header(ByteReader& r, MessageHeader& h) {
  const std::uint8_t type_byte = r.u8();
  if ((type_byte >> 4) != kTransportSpecific) return false;
  h.type = static_cast<MessageType>(type_byte & 0x0F);
  const std::uint8_t version = r.u8();
  if ((version & 0x0F) != kVersionPtp) return false;
  r.u16(); // messageLength (validated against buffer size by the reader)
  h.domain = r.u8();
  r.u8(); // minorSdoId
  const std::uint16_t flags = r.u16();
  h.two_step = (flags & kFlagTwoStep) != 0;
  h.correction_scaled = r.i64();
  r.u32(); // messageTypeSpecific
  h.source_port = r.port_identity();
  h.sequence_id = r.u16();
  r.u8(); // controlField
  h.log_message_interval = static_cast<std::int8_t>(r.u8());
  return r.ok();
}

// Appends at the current end of `out`; the messageLength field is patched
// relative to `base`, so serialization composes with non-empty buffers.
template <class Buf>
struct SerializerT {
  Buf& out;
  std::size_t base;

  void finish(BasicByteWriter<Buf>& w) {
    w.patch_u16(base + 2, static_cast<std::uint16_t>(out.size() - base));
  }

  void operator()(const SyncMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.zeros(10); // reserved originTimestamp
    finish(w);
  }

  void operator()(const FollowUpMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.timestamp(m.precise_origin);
    // Follow_Up information TLV (802.1AS 11.4.4.3).
    w.u16(kTlvOrgExtension);
    w.u16(28);
    w.u8(0x00); w.u8(0x80); w.u8(0xC2); // organizationId
    w.u8(0); w.u8(0); w.u8(1);          // organizationSubType = 1
    w.i32(m.cumulative_scaled_rate_offset);
    w.u16(m.gm_time_base_indicator);
    w.zeros(12); // lastGmPhaseChange
    w.i32(m.scaled_last_gm_freq_change);
    finish(w);
  }

  void operator()(const PdelayReqMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.zeros(20); // reserved
    finish(w);
  }

  void operator()(const DelayReqMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.zeros(10); // originTimestamp (zero: HW timestamping)
    finish(w);
  }

  void operator()(const DelayRespMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.timestamp(m.receive_timestamp);
    w.port_identity(m.requesting_port);
    finish(w);
  }

  void operator()(const PdelayRespMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.timestamp(m.request_receipt);
    w.port_identity(m.requesting_port);
    finish(w);
  }

  void operator()(const PdelayRespFollowUpMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.timestamp(m.response_origin);
    w.port_identity(m.requesting_port);
    finish(w);
  }

  void operator()(const AnnounceMessage& m) {
    BasicByteWriter<Buf> w(out);
    write_header(w, m.header);
    w.zeros(10); // originTimestamp (reserved in 802.1AS)
    w.u16(0);    // currentUtcOffset
    w.u8(0);     // reserved
    w.u8(m.grandmaster_priority1);
    w.u8(m.grandmaster_quality.clock_class);
    w.u8(m.grandmaster_quality.clock_accuracy);
    w.u16(m.grandmaster_quality.offset_scaled_log_variance);
    w.u8(m.grandmaster_priority2);
    w.clock_identity(m.grandmaster_identity);
    w.u16(m.steps_removed);
    w.u8(m.time_source);
    if (!m.path_trace.empty()) {
      w.u16(kTlvPathTrace);
      w.u16(static_cast<std::uint16_t>(8 * m.path_trace.size()));
      for (const auto& id : m.path_trace) w.clock_identity(id);
    }
    finish(w);
  }
};

std::optional<Message> parse_body(ByteReader& r, const MessageHeader& h) {
  switch (h.type) {
    case MessageType::kSync: {
      SyncMessage m{h};
      r.skip(10);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kFollowUp: {
      FollowUpMessage m;
      m.header = h;
      m.precise_origin = r.timestamp();
      if (r.u16() != kTlvOrgExtension) return std::nullopt;
      if (r.u16() != 28) return std::nullopt;
      r.skip(6); // organizationId + subtype
      m.cumulative_scaled_rate_offset = r.i32();
      m.gm_time_base_indicator = r.u16();
      r.skip(12);
      m.scaled_last_gm_freq_change = r.i32();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kPdelayReq: {
      PdelayReqMessage m{h};
      r.skip(20);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kDelayReq: {
      DelayReqMessage m{h};
      r.skip(10);
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kDelayResp: {
      DelayRespMessage m;
      m.header = h;
      m.receive_timestamp = r.timestamp();
      m.requesting_port = r.port_identity();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kPdelayResp: {
      PdelayRespMessage m;
      m.header = h;
      m.request_receipt = r.timestamp();
      m.requesting_port = r.port_identity();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kPdelayRespFollowUp: {
      PdelayRespFollowUpMessage m;
      m.header = h;
      m.response_origin = r.timestamp();
      m.requesting_port = r.port_identity();
      if (!r.ok()) return std::nullopt;
      return m;
    }
    case MessageType::kAnnounce: {
      AnnounceMessage m;
      m.header = h;
      r.skip(10); // originTimestamp
      r.u16();    // currentUtcOffset
      r.u8();     // reserved
      m.grandmaster_priority1 = r.u8();
      m.grandmaster_quality.clock_class = r.u8();
      m.grandmaster_quality.clock_accuracy = r.u8();
      m.grandmaster_quality.offset_scaled_log_variance = r.u16();
      m.grandmaster_priority2 = r.u8();
      m.grandmaster_identity = r.clock_identity();
      m.steps_removed = r.u16();
      m.time_source = r.u8();
      if (r.remaining() >= 4) {
        if (r.u16() == kTlvPathTrace) {
          const std::uint16_t len = r.u16();
          if (len % 8 != 0 || len > r.remaining()) return std::nullopt;
          for (std::uint16_t i = 0; i < len / 8; ++i) {
            m.path_trace.push_back(r.clock_identity());
          }
        }
      }
      if (!r.ok()) return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

} // namespace

const MessageHeader& header_of(const Message& msg) {
  return std::visit([](const auto& m) -> const MessageHeader& { return m.header; }, msg);
}

MessageHeader& header_of(Message& msg) {
  return std::visit([](auto& m) -> MessageHeader& { return m.header; }, msg);
}

std::vector<std::uint8_t> serialize(const Message& msg) {
  std::vector<std::uint8_t> out;
  serialize_into(msg, out);
  return out;
}

void serialize_into(const Message& msg, std::vector<std::uint8_t>& out) {
  std::visit(SerializerT<std::vector<std::uint8_t>>{out, out.size()}, msg);
}

void serialize_into(const Message& msg, net::Payload& out) {
  std::visit(SerializerT<net::Payload>{out, out.size()}, msg);
}

std::optional<Message> parse(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  MessageHeader h;
  if (!read_header(r, h)) return std::nullopt;
  return parse_body(r, h);
}

} // namespace tsn::gptp
