// IEEE 802.1AS time-aware bridge.
//
// Attached to a net::Switch, it terminates gPTP on every port: it runs the
// peer-delay mechanism per port and, per domain, relays Sync/FollowUp from
// the domain's slave port to its master ports, accumulating the residence
// time and upstream link delay into the correction field (scaled by the
// cumulative rate ratio) exactly as 802.1AS clause 11 prescribes. The
// bridge's own PHC free-runs; it never syntonizes, it only measures.
//
// Port roles are statically assigned (external port configuration, as in
// the paper's testbed: "no best master clock algorithm").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gptp/link_delay.hpp"
#include "gptp/messages.hpp"
#include "gptp/msg_template.hpp"
#include "net/switch.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"

namespace tsn::gptp {

struct BridgeDomainConfig {
  std::uint8_t domain = 0;
  std::size_t slave_port = 0;
  std::set<std::size_t> master_ports;
  // Ports not listed are passive for this domain.

  /// Dynamic mode (hot-standby grandmasters via BMCA): ignore the static
  /// roles above; relay Announce messages to every other port (stepsRemoved
  /// incremented, own identity appended to the path trace) and relay
  /// Sync/FollowUp from whichever port they arrive on to all others.
  /// Requires a physically loop-free topology for this domain.
  bool dynamic = false;
};

struct BridgeConfig {
  LinkDelayConfig link_delay;
  std::vector<BridgeDomainConfig> domains;
};

struct BridgeCounters {
  std::uint64_t syncs_relayed = 0;
  std::uint64_t followups_relayed = 0;
  std::uint64_t announces_relayed = 0;
  std::uint64_t syncs_on_non_slave_port = 0;
  std::uint64_t malformed = 0;
  std::uint64_t storm_syncs_sent = 0; ///< bogus Syncs injected by a compromise
};

class TimeAwareBridge : public sim::Persistent {
 public:
  TimeAwareBridge(sim::Simulation& sim, net::Switch& sw, const BridgeConfig& cfg,
                  const std::string& name);

  TimeAwareBridge(const TimeAwareBridge&) = delete;
  TimeAwareBridge& operator=(const TimeAwareBridge&) = delete;

  void start();
  void stop();

  LinkDelayService& port_link_delay(std::size_t port_idx) { return *link_delay_.at(port_idx); }
  const BridgeCounters& counters() const { return counters_; }
  net::Switch& bridge_switch() { return sw_; }

  // -- Compromised-bridge attack hooks (src/attack) -------------------------

  /// Inflate the correction field of every Sync relayed for `domain` by
  /// `bias_ns` (added on top of the honest residence + upstream-delay
  /// accumulation in finish_relay). Downstream slaves of that domain see
  /// its offset shifted by the bias.
  void set_correction_attack(std::uint8_t domain, double bias_ns);
  void clear_correction_attack();

  /// Sync-storm DoS: flood standalone Sync messages for `domain`
  /// (typically one no VM or bridge has configured, so every receiver
  /// drops them after parsing) out of every connected port, one volley
  /// per `period_ns`. Pure protocol-processing load.
  void start_sync_storm(std::uint8_t domain, std::int64_t period_ns);
  void stop_sync_storm();

  /// True while an adversarial relay corruption or sync storm is armed
  /// (a fast-forward barrier: a compromised bridge stays event-simulated).
  bool attack_armed() const { return atk_corr_domain_.has_value() || storm_.active(); }

  // -- sim::Persistent ------------------------------------------------------
  const char* persist_name() const override { return name_.c_str(); }
  void save_state(sim::StateWriter& w) override;
  void load_state(sim::StateReader& r) override;
  std::size_t live_events() const override;
  void ff_park() override;
  void ff_advance(const sim::FfWindow& w) override;
  void ff_resume() override;

 private:
  struct PendingSync {
    std::uint16_t seq = 0;
    std::int64_t rx_ts = 0; // switch PHC at ingress
    std::int64_t correction_scaled = 0;
    PortIdentity source;
    std::size_t ingress_port = 0;
  };
  struct DomainState {
    BridgeDomainConfig cfg;
    std::optional<PendingSync> pending;
  };

  // State of one in-flight Sync relay waiting for its egress timestamp.
  // Kept in a reusable slab so the tx callback captures only (this, slot)
  // and stays inside the inline callback storage.
  struct RelayCtx {
    std::uint8_t domain = 0;
    std::int8_t log_interval = 0;
    std::uint16_t seq = 0;
    std::size_t out_port = 0;
    std::int64_t rx_ts = 0;
    std::int64_t base_correction = 0; // upstream Sync + FollowUp corrections
    Timestamp precise_origin;
    std::uint16_t gm_time_base_indicator = 0;
    std::int32_t freq_change = 0;
    double rate_ratio = 1.0;
    double upstream_delay_ns = 0.0;
  };

  void on_ptp(std::size_t port_idx, const net::EthernetFrame& frame, const net::RxMeta& meta);
  void relay_follow_up(DomainState& ds, const FollowUpMessage& fup);
  void finish_relay(std::uint32_t slot, std::optional<std::int64_t> tx_ts);
  void relay_announce(DomainState& ds, std::size_t ingress, const AnnounceMessage& msg);
  /// Hot path: transmit a pooled frame (the bridge's source MAC filled in).
  void send_on_port(std::size_t port_idx, net::FrameRef frame, LinkDelayService::TxTsFn on_tx);
  /// Cold path (Announce relay): serialize into a pooled frame first.
  void send_message_on_port(std::size_t port_idx, const Message& msg,
                            LinkDelayService::TxTsFn on_tx);
  std::uint32_t alloc_relay_slot();
  PortIdentity port_identity(std::size_t port_idx) const;
  /// (Re-)create the storm periodic from storm_domain_/storm_period_ns_.
  void arm_storm(std::int64_t first_ns);

  sim::Simulation& sim_;
  net::Switch& sw_;
  BridgeConfig cfg_;
  std::string name_;
  ClockIdentity identity_;
  std::vector<std::unique_ptr<LinkDelayService>> link_delay_; // one per port
  std::map<std::uint8_t, DomainState> domains_;
  BridgeCounters counters_;
  bool started_ = false;

  // Attack state (inert unless src/attack arms it).
  std::optional<std::uint8_t> atk_corr_domain_;
  double atk_corr_bias_ns_ = 0.0;
  sim::Simulation::PeriodicHandle storm_;
  std::uint16_t storm_seq_ = 0;
  std::uint8_t storm_domain_ = 0;      ///< remembered for re-arming
  std::int64_t storm_period_ns_ = 0;   ///< 0 = storm never armed

  // Fast-forward park state.
  bool parked_storm_ = false;
  std::int64_t park_storm_due_ns_ = 0;

  // Pre-built relay PDU images; every varying field (domain, egress port
  // identity, seq, correction, timestamps, TLV) is patched per transmission.
  MessageTemplate sync_tpl_;
  MessageTemplate fup_tpl_;
  std::vector<RelayCtx> relay_ctx_;
  std::vector<std::uint32_t> relay_free_;
};

} // namespace tsn::gptp
