// Peer-to-peer delay mechanism (802.1AS MDPdelayReq/Resp state machines).
//
// One service instance runs per physical port and is shared by all gPTP
// domains on that port, mirroring 802.1AS-2020's CMLDS. It measures:
//   * meanLinkDelay: one-way propagation delay in the local timebase
//   * neighborRateRatio: d(neighbor clock)/d(local clock)
//
// Transmission is allocation-free in steady state: the three Pdelay PDUs
// are pre-serialized once as MessageTemplates and only the per-exchange
// fields (sequenceId, timestamps, requesting port) are patched before the
// image is copied into a pooled frame.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gptp/messages.hpp"
#include "gptp/msg_template.hpp"
#include "net/frame_pool.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "util/inline_fn.hpp"

namespace tsn::gptp {

struct LinkDelayConfig {
  std::int64_t pdelay_interval_ns = 1'000'000'000;
  /// Number of (t3, t4) samples spanned by the rate-ratio estimate.
  std::size_t nrr_window = 8;
  /// EWMA weight for new meanLinkDelay samples.
  double delay_smoothing = 0.25;
  /// Exchanges missed before the measurement is declared invalid.
  int lost_responses_allowed = 3;
};

class LinkDelayService {
 public:
  /// Egress-timestamp delivery: invoked once the frame left the port with
  /// the HW tx timestamp, or nullopt on failure. Rides the event queue, so
  /// it uses inline no-allocation storage (move-only, small captures).
  using TxTsFn = util::InlineFunction<void(std::optional<std::int64_t>), 32>;
  /// `send` transmits a pooled gPTP frame out of the port. The callback may
  /// be empty when the sender does not need the egress timestamp.
  using SendFn = std::function<void(net::FrameRef, TxTsFn)>;

  LinkDelayService(sim::Simulation& sim, PortIdentity identity, SendFn send,
                   const LinkDelayConfig& cfg, const std::string& name);

  /// Start periodic PdelayReq transmission (initiator role). The responder
  /// role is always active.
  void start();
  void stop();

  /// Feed any received Pdelay* message with its HW rx timestamp.
  void on_message(const Message& msg, std::int64_t rx_ts);

  /// Pdelay-turnaround manipulation (attack library, responder side):
  /// tamper the t3 this responder reports in PdelayRespFollowUp by a
  /// constant `bias_ns` plus `skew_ppm` of the time elapsed since the
  /// attack started. The peer *initiator* then under-measures its
  /// meanLinkDelay by ~bias/2 and mis-estimates neighbor_rate_ratio_ by
  /// ~skew_ppm (the reported remote clock appears to run fast/slow).
  void set_turnaround_attack(double bias_ns, double skew_ppm);
  void clear_turnaround_attack();

  // -- Snapshot / fast-forward support (driven by the owning stack/bridge,
  //    which is the Persistent; see sim/persist.hpp) ------------------------
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);
  std::size_t live_events() const { return periodic_.active() ? 1 : 0; }
  void ff_park();
  void ff_advance(const sim::FfWindow& w);
  void ff_resume();

  bool valid() const { return valid_; }
  double mean_link_delay_ns() const { return mean_link_delay_ns_; }
  /// Most recent raw (unsmoothed) delay sample.
  double raw_link_delay_ns() const { return raw_link_delay_ns_; }
  double neighbor_rate_ratio() const { return neighbor_rate_ratio_; }
  std::uint64_t completed_exchanges() const { return completed_; }
  const PortIdentity& identity() const { return identity_; }

 private:
  void send_request();
  void complete_exchange();
  std::int64_t tampered_t3(std::int64_t t3);

  sim::Simulation& sim_;
  PortIdentity identity_;
  SendFn send_;
  LinkDelayConfig cfg_;
  std::string name_;
  sim::Simulation::PeriodicHandle periodic_;

  // Pre-built PDU images; per transmission only seq/timestamps/requesting
  // port are patched.
  MessageTemplate req_tpl_;
  MessageTemplate resp_tpl_;
  MessageTemplate resp_fup_tpl_;

  // Initiator state for the in-flight exchange.
  std::uint16_t seq_ = 0;
  std::optional<std::int64_t> t1_; // our PdelayReq egress
  std::optional<std::int64_t> t2_; // neighbor's receipt (remote timebase)
  std::optional<std::int64_t> t3_; // neighbor's response egress (remote)
  std::optional<std::int64_t> t4_; // our PdelayResp ingress
  bool exchange_open_ = false;
  int consecutive_misses_ = 0;

  // Rate ratio estimation history: (t3, t4) of the last nrr_window completed
  // exchanges in a fixed ring (preallocated; no steady-state churn).
  std::vector<std::pair<std::int64_t, std::int64_t>> nrr_ring_;
  std::size_t nrr_head_ = 0;  // index of the oldest retained sample
  std::size_t nrr_count_ = 0;

  // Responder-side t3 tamper (inert unless src/attack arms it). The skew
  // epoch is the first tampered t3 after activation, so the linear term
  // grows from zero in the responder's own timebase.
  bool atk_turnaround_ = false;
  double atk_t3_bias_ns_ = 0.0;
  double atk_t3_skew_ppm_ = 0.0;
  std::optional<std::int64_t> atk_t3_epoch_ns_;

  bool valid_ = false;
  double mean_link_delay_ns_ = 0.0;
  double raw_link_delay_ns_ = 0.0;
  double neighbor_rate_ratio_ = 1.0;
  std::uint64_t completed_ = 0;

  // Phase remembered across ff_park()/ff_resume().
  bool parked_running_ = false;
  std::int64_t park_due_ns_ = 0;
};

} // namespace tsn::gptp
