#include "gptp/wire.hpp"

namespace tsn::gptp {

bool ByteReader::take(std::size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>((hi << 8) | u8());
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  return (hi << 16) | u16();
}

std::uint64_t ByteReader::u48() {
  const std::uint64_t hi = u16();
  return (hi << 32) | u32();
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  return (hi << 32) | u32();
}

void ByteReader::skip(std::size_t n) {
  if (take(n)) pos_ += n;
}

Timestamp ByteReader::timestamp() {
  Timestamp ts;
  ts.seconds = u48();
  ts.nanoseconds = u32();
  return ts;
}

ClockIdentity ByteReader::clock_identity() {
  std::array<std::uint8_t, 8> b{};
  for (auto& byte : b) byte = u8();
  return ClockIdentity(b);
}

PortIdentity ByteReader::port_identity() {
  PortIdentity id;
  id.clock = clock_identity();
  id.port = u16();
  return id;
}

} // namespace tsn::gptp
