#include "gptp/stack.hpp"

#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::gptp {

PtpStack::PtpStack(sim::Simulation& sim, net::Nic& nic, const LinkDelayConfig& ld_cfg,
                   const std::string& name)
    : sim_(sim),
      nic_(nic),
      name_(name),
      link_delay_(
          sim, PortIdentity{ClockIdentity::from_u64(nic.mac().to_u64()), 1},
          [this](net::FrameRef frame, LinkDelayService::TxTsFn on_tx) {
            net::TxOptions opts;
            if (on_tx) {
              opts.on_complete = [on_tx = std::move(on_tx)](const net::TxReport& r) mutable {
                on_tx(r.status == net::TxReport::Status::kSent ? r.hw_tx_ts : std::nullopt);
              };
            }
            nic_.send(std::move(frame), std::move(opts));
          },
          ld_cfg, name + "/pdelay") {
  nic_.set_rx_handler(net::kEtherTypePtp, [this](const net::EthernetFrame& frame,
                                                 const net::RxMeta& meta) { on_rx(frame, meta); });
}

PtpInstance& PtpStack::add_instance(const InstanceConfig& cfg) {
  instances_.push_back(std::make_unique<PtpInstance>(
      sim_, nic_, link_delay_, cfg, util::format("%s/dom%u", name_.c_str(), cfg.domain)));
  return *instances_.back();
}

PtpInstance* PtpStack::instance_for_domain(std::uint8_t domain) {
  for (auto& inst : instances_) {
    if (inst->config().domain == domain) return inst.get();
  }
  return nullptr;
}

void PtpStack::start() {
  if (started_) return;
  started_ = true;
  link_delay_.start();
  for (auto& inst : instances_) inst->start();
}

void PtpStack::stop() {
  started_ = false;
  link_delay_.stop();
  for (auto& inst : instances_) inst->stop();
}

void PtpStack::save_state(sim::StateWriter& w) {
  w.b(started_);
  w.u64(malformed_);
  link_delay_.save_state(w);
  for (auto& inst : instances_) inst->save_state(w);
}

void PtpStack::load_state(sim::StateReader& r) {
  started_ = r.b();
  malformed_ = r.u64();
  link_delay_.load_state(r);
  for (auto& inst : instances_) inst->load_state(r);
}

std::size_t PtpStack::live_events() const {
  std::size_t n = link_delay_.live_events();
  for (const auto& inst : instances_) n += inst->live_events();
  return n;
}

void PtpStack::ff_park() {
  link_delay_.ff_park();
  for (auto& inst : instances_) inst->ff_park();
}

void PtpStack::ff_advance(const sim::FfWindow& w) {
  link_delay_.ff_advance(w);
  for (auto& inst : instances_) inst->ff_advance(w);
}

void PtpStack::ff_resume() {
  link_delay_.ff_resume();
  for (auto& inst : instances_) inst->ff_resume();
}

void PtpStack::on_rx(const net::EthernetFrame& frame, const net::RxMeta& meta) {
  if (!started_) return;
  const auto msg = parse(frame.payload);
  if (!msg) {
    ++malformed_;
    TSN_LOG_DEBUG("ptp", "%s: malformed gPTP frame dropped", name_.c_str());
    return;
  }
  const std::int64_t rx_ts = meta.hw_rx_ts.value_or(0);
  const auto type = header_of(*msg).type;
  if (type == MessageType::kPdelayReq || type == MessageType::kPdelayResp ||
      type == MessageType::kPdelayRespFollowUp) {
    link_delay_.on_message(*msg, rx_ts);
    return;
  }
  if (PtpInstance* inst = instance_for_domain(header_of(*msg).domain)) {
    inst->handle_message(*msg, rx_ts);
  }
}

} // namespace tsn::gptp
