#include "gptp/types.hpp"

#include "util/str.hpp"

namespace tsn::gptp {

ClockIdentity ClockIdentity::from_u64(std::uint64_t v) {
  std::array<std::uint8_t, 8> b{};
  for (int i = 7; i >= 0; --i) {
    b[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return ClockIdentity(b);
}

std::uint64_t ClockIdentity::to_u64() const {
  std::uint64_t v = 0;
  for (auto byte : bytes_) v = (v << 8) | byte;
  return v;
}

std::string ClockIdentity::to_string() const {
  return util::format("%02x%02x%02x.%02x%02x.%02x%02x%02x", bytes_[0], bytes_[1], bytes_[2],
                      bytes_[3], bytes_[4], bytes_[5], bytes_[6], bytes_[7]);
}

std::string PortIdentity::to_string() const {
  return clock.to_string() + util::format("-%u", port);
}

Timestamp Timestamp::from_ns(std::int64_t ns) {
  Timestamp ts;
  if (ns < 0) ns = 0; // PTP timestamps are unsigned; the sim epoch is 0
  ts.seconds = static_cast<std::uint64_t>(ns / 1'000'000'000) & 0xFFFFFFFFFFFFULL;
  ts.nanoseconds = static_cast<std::uint32_t>(ns % 1'000'000'000);
  return ts;
}

std::int64_t Timestamp::to_ns() const {
  return static_cast<std::int64_t>(seconds) * 1'000'000'000 +
         static_cast<std::int64_t>(nanoseconds);
}

const char* to_string(PortRole role) {
  switch (role) {
    case PortRole::kDisabled: return "disabled";
    case PortRole::kMaster: return "master";
    case PortRole::kSlave: return "slave";
    case PortRole::kPassive: return "passive";
  }
  return "?";
}

} // namespace tsn::gptp
