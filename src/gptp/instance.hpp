// A "ptp4l instance": one IEEE 802.1AS domain on one NIC.
//
// As grandmaster (master role) it transmits two-step Sync/FollowUp pairs,
// optionally ETF launch-time aligned to sync-interval boundaries of its PHC
// so that the grandmasters of all domains transmit quasi-simultaneously
// (paper section II-B). As slave it computes the master offset
//     offset = t_rx - (preciseOriginTimestamp + correction + rateRatio * D)
// and hands it to the registered offset callback -- in the paper's
// architecture that callback stores the offset into FTSHMEM for FTA
// aggregation (core module). Without a callback an optional local PI servo
// disciplines the NIC PHC directly (classic single-domain ptp4l).
#pragma once

#include <cstdint>
#include <functional>
#include <cmath>
#include <optional>
#include <string>

#include "gptp/bmca.hpp"
#include "gptp/link_delay.hpp"
#include "gptp/messages.hpp"
#include "gptp/msg_template.hpp"
#include "gptp/servo.hpp"
#include "net/nic.hpp"
#include "sim/simulation.hpp"

namespace tsn::gptp {

/// Path-delay mechanism. 802.1AS mandates peer-to-peer (the default); the
/// end-to-end mechanism of plain IEEE 1588 is provided as a baseline for
/// networks of PTP-unaware switches.
enum class DelayMechanism { kP2P, kE2E };

struct InstanceConfig {
  std::uint8_t domain = 0;
  /// Static role (external port configuration). Ignored when use_bmca.
  PortRole role = PortRole::kSlave;
  std::int64_t sync_interval_ns = 125'000'000; // S = 125 ms (paper)
  /// Align Sync launch to multiples of the sync interval via ETF.
  bool align_launch = true;
  /// How long before the launch boundary the Sync is prepared/enqueued.
  std::int64_t launch_guard_ns = 2'000'000;
  /// Declare the GM lost after this many silent sync intervals.
  int sync_receipt_timeout_intervals = 3;
  /// Dynamic master selection via announce messages instead of static roles.
  bool use_bmca = false;
  DelayMechanism delay_mechanism = DelayMechanism::kP2P;
  std::int64_t delay_req_interval_ns = 1'000'000'000;
  std::int64_t announce_interval_ns = 1'000'000'000;
  std::uint8_t priority1 = 246;
  std::uint8_t priority2 = 248;
  ClockQuality quality;
};

/// One computed master offset (the value ptp4l stores into FTSHMEM).
struct MasterOffsetSample {
  std::uint8_t domain = 0;
  double offset_ns = 0.0; ///< local PHC minus grandmaster time
  std::int64_t local_rx_ts = 0;
  Timestamp precise_origin;
  double rate_ratio = 1.0; ///< grandmaster frequency / local frequency
  std::uint16_t sequence_id = 0;
};

/// Transient software-stack fault injection (paper section III-C observed
/// tx-timestamp timeouts and launch deadline misses in the igb driver).
struct InstanceFaultModel {
  double p_tx_timestamp_timeout = 0.0;
  double p_late_launch = 0.0;
  std::int64_t late_launch_delay_ns = 5'000'000;
};

struct InstanceCounters {
  std::uint64_t syncs_sent = 0;
  std::uint64_t followups_sent = 0;
  std::uint64_t syncs_received = 0;
  std::uint64_t offsets_computed = 0;
  std::uint64_t tx_timestamp_timeouts = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t sync_receipt_timeouts = 0;
  std::uint64_t malformed_messages = 0;
  std::uint64_t delay_reqs_answered = 0;
  std::uint64_t delay_resps_received = 0;
};

class PtpInstance {
 public:
  PtpInstance(sim::Simulation& sim, net::Nic& nic, LinkDelayService& link_delay,
              const InstanceConfig& cfg, const std::string& name);

  PtpInstance(const PtpInstance&) = delete;
  PtpInstance& operator=(const PtpInstance&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Feed a Sync/FollowUp/Announce for this instance's domain.
  void handle_message(const Message& msg, std::int64_t rx_ts);

  using OffsetCallback = std::function<void(const MasterOffsetSample&)>;
  void set_offset_callback(OffsetCallback cb) { offset_cb_ = std::move(cb); }

  /// Standalone mode: discipline the NIC PHC with an internal PI servo.
  void enable_local_servo(const PiServoConfig& cfg);

  /// Attack model: shift transmitted preciseOriginTimestamps (a compromised
  /// GM distributing faulty time; the paper uses -24 us).
  void set_malicious_pot_offset(std::int64_t ns) { malicious_pot_offset_ns_ = ns; }
  bool is_malicious() const { return malicious_pot_offset_ns_ != 0; }

  void set_fault_model(const InstanceFaultModel& m) { fault_model_ = m; }

  /// Invoked on each transient application fault ("tx_timeout",
  /// "deadline_miss", "sync_receipt_timeout").
  using FaultCallback = std::function<void(const std::string& kind)>;
  void set_fault_callback(FaultCallback cb) { fault_cb_ = std::move(cb); }

  // -- Snapshot / fast-forward support (driven by the owning stack; see
  //    sim/persist.hpp for the contract) -----------------------------------
  void save_state(sim::StateWriter& w);
  void load_state(sim::StateReader& r);
  std::size_t live_events() const;
  void ff_park();
  void ff_advance(const sim::FfWindow& w);
  void ff_resume();

  const InstanceConfig& config() const { return cfg_; }
  const InstanceCounters& counters() const { return counters_; }
  PortRole role() const { return role_; }
  ClockIdentity clock_identity() const { return identity_.clock; }
  const std::string& name() const { return name_; }
  /// True while Syncs from the GM arrive within the receipt timeout.
  bool gm_receiving() const { return gm_receiving_; }
  /// E2E mode: the current mean path delay estimate (ns), NaN before the
  /// first completed DelayReq/DelayResp exchange.
  double e2e_path_delay_ns() const { return e2e_delay_ns_; }

 private:
  void schedule_next_sync_tx();
  /// Re-create the pending sync-chain hop at exactly `due_ns` (snapshot
  /// restore): popping it re-enters schedule_at_phc just like the
  /// original in-queue hop closure would, so PHC read times -- and with
  /// them the oscillator integration segmentation -- are reproduced
  /// bit-exactly.
  void arm_sync_hop_at(std::int64_t due_ns);
  void prepare_sync_tx(std::int64_t launch_phc);
  void transmit_sync(std::int64_t launch_phc);
  void on_sync(const SyncMessage& msg, std::int64_t rx_ts);
  void on_follow_up(const FollowUpMessage& msg);
  void on_delay_req(const DelayReqMessage& msg, std::int64_t rx_ts);
  void on_delay_resp(const DelayRespMessage& msg);
  void send_delay_req();
  void on_announce_msg(const AnnounceMessage& msg);
  void deliver_offset(const MasterOffsetSample& sample);
  void check_sync_receipt(sim::SimTime now);
  void schedule_at_phc(std::int64_t target_phc, std::function<void()> fn);
  /// Cold path (Announce): serialize the message into a pooled frame.
  void send_message(const Message& msg, std::optional<std::int64_t> launch_time,
                    net::TxCallback on_complete);
  /// Hot path (Sync/FollowUp/DelayReq/DelayResp): copy the pre-built,
  /// freshly patched template image into a pooled frame.
  void send_template(const MessageTemplate& tpl, std::optional<std::int64_t> launch_time,
                     net::TxCallback on_complete);
  void send_announce();
  void evaluate_bmca();
  void fault(const std::string& kind);

  sim::Simulation& sim_;
  net::Nic& nic_;
  LinkDelayService& link_delay_;
  InstanceConfig cfg_;
  std::string name_;
  PortIdentity identity_;
  PortRole role_;
  bool running_ = false;

  // Master state.
  std::uint16_t sync_seq_ = 0;
  std::int64_t next_boundary_phc_ = 0;
  std::int64_t hop_due_ns_ = -1; ///< sim-time due of the pending chain hop
  util::RngStream fault_rng_;
  InstanceFaultModel fault_model_;

  // Pre-built PDU images (fixed fields serialized once at construction;
  // only seq/timestamps/requesting port are patched per transmission).
  MessageTemplate sync_tpl_;
  MessageTemplate fup_tpl_;
  MessageTemplate delay_req_tpl_;
  MessageTemplate delay_resp_tpl_;

  // Slave state.
  struct PendingSync {
    std::uint16_t seq = 0;
    std::int64_t rx_ts = 0;
    std::int64_t correction_scaled = 0;
    PortIdentity source;
  };
  std::optional<PendingSync> pending_sync_;
  std::int64_t last_sync_rx_sim_ns_ = -1;
  // E2E state: last (t1 = GM origin, t2 = local rx) pair and the delay
  // request in flight (t3 = local tx of the DelayReq).
  std::optional<std::pair<double, std::int64_t>> e2e_last_sync_;
  std::uint16_t delay_req_seq_ = 0;
  std::optional<std::int64_t> e2e_t3_;
  double e2e_delay_ns_ = std::nan("");
  sim::Simulation::PeriodicHandle delay_req_timer_;
  bool gm_receiving_ = false;
  sim::Simulation::PeriodicHandle sync_check_;

  // BMCA state.
  std::optional<BmcaEngine> bmca_;
  sim::Simulation::PeriodicHandle announce_tx_;
  sim::Simulation::PeriodicHandle bmca_eval_;
  std::uint16_t announce_seq_ = 0;

  // Phases remembered across ff_park()/ff_resume().
  struct ParkedPeriodic {
    bool running = false;
    std::int64_t due_ns = 0;
  };
  ParkedPeriodic park_sync_check_, park_delay_req_, park_announce_, park_bmca_;

  OffsetCallback offset_cb_;
  std::optional<PiServo> local_servo_;
  std::int64_t malicious_pot_offset_ns_ = 0;
  FaultCallback fault_cb_;
  InstanceCounters counters_;
  std::uint64_t epoch_ = 0; // bumped on stop() to invalidate in-flight work
};

} // namespace tsn::gptp
