// Proportional-integral clock servo, modelled on LinuxPTP's pi.c.
//
// The servo consumes master-offset samples (slave time minus master time)
// and produces the frequency adjustment to program into the disciplined
// clock. Conventions match LinuxPTP: the returned value is the adjustment
// passed to clockadj_set_freq, i.e. a clock running fast (positive offset)
// yields a negative frequency adjustment.
#pragma once

#include <cstdint>
#include <string>

#include "obs/obs.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
} // namespace tsn::sim

namespace tsn::gptp {

struct PiServoConfig {
  double kp = 0.7;
  double ki = 0.3;
  /// Maximum |frequency adjustment| in ppb.
  double max_frequency_ppb = 62'499'999.0;
  /// Offsets larger than this on the *first* update step the clock
  /// (linuxptp first_step_threshold, default 20 us).
  std::int64_t first_step_threshold_ns = 20'000;
  /// Offsets larger than this at any time step the clock and reset the
  /// servo; 0 disables stepping after startup (linuxptp step_threshold).
  std::int64_t step_threshold_ns = 0;
};

class PiServo {
 public:
  enum class State {
    kUnlocked, ///< gathering the first sample
    kJump,     ///< caller must step the clock by -offset and keep frequency
    kLocked,   ///< caller must program the returned frequency
  };

  struct Result {
    State state = State::kUnlocked;
    /// Frequency to program when state == kLocked (ppb; also valid after
    /// kJump as the held frequency).
    double freq_ppb = 0.0;
  };

  explicit PiServo(const PiServoConfig& cfg = {});

  /// Feed one offset sample taken at `local_ts_ns` (monotonic local clock).
  Result sample(std::int64_t offset_ns, std::int64_t local_ts_ns);

  /// Forget all state (e.g. after the reference changed).
  void reset();

  /// Seed the integral term, used when a warm standby takes over with the
  /// predecessor's servo state (the paper's FTSHMEM carries servo state).
  void set_integral_ppb(double ppb) { integral_ppb_ = ppb; }
  double integral_ppb() const { return integral_ppb_; }

  State state() const { return state_; }

  /// Snapshot support: discipline state only (obs attachments are not
  /// persisted -- re-attach after restoring into a fresh servo).
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);

  /// Attach observability under `name` (e.g. "c11/fta.servo"): counts
  /// samples, phase jumps and runaway unlock-resets in `<name>.*` and
  /// traces every state transition (record time = the sample's local
  /// timestamp). Survives copies; re-attach after assigning a fresh servo.
  void attach_obs(obs::ObsContext ctx, const std::string& name);

 private:
  double clamp_freq(double ppb) const;
  void note_state(State prev, std::int64_t local_ts_ns, double freq_ppb);

  PiServoConfig cfg_;
  State state_ = State::kUnlocked;
  int sample_count_ = 0;
  std::int64_t first_offset_ = 0;
  std::int64_t first_ts_ = 0;
  double integral_ppb_ = 0.0;

  obs::Counter* c_samples_ = nullptr;
  obs::Counter* c_jumps_ = nullptr;
  obs::Counter* c_unlock_resets_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  std::uint16_t trace_src_ = 0;
};

} // namespace tsn::gptp
