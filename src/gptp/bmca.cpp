#include "gptp/bmca.hpp"

#include "sim/persist.hpp"

namespace tsn::gptp {

PriorityVector PriorityVector::from_announce(const AnnounceMessage& msg) {
  PriorityVector v;
  v.priority1 = msg.grandmaster_priority1;
  v.quality = msg.grandmaster_quality;
  v.priority2 = msg.grandmaster_priority2;
  v.identity = msg.grandmaster_identity;
  v.steps_removed = msg.steps_removed;
  return v;
}

int compare_priority(const PriorityVector& a, const PriorityVector& b) {
  auto cmp = [](auto x, auto y) { return (x < y) ? -1 : (x > y ? 1 : 0); };
  if (int c = cmp(a.priority1, b.priority1)) return c;
  if (int c = cmp(a.quality.clock_class, b.quality.clock_class)) return c;
  if (int c = cmp(a.quality.clock_accuracy, b.quality.clock_accuracy)) return c;
  if (int c = cmp(a.quality.offset_scaled_log_variance, b.quality.offset_scaled_log_variance)) {
    return c;
  }
  if (int c = cmp(a.priority2, b.priority2)) return c;
  if (int c = cmp(a.identity.to_u64(), b.identity.to_u64())) return c;
  return cmp(a.steps_removed, b.steps_removed);
}

void BmcaEngine::on_announce(const AnnounceMessage& msg, std::int64_t now_ns) {
  // Announces advertising ourselves as GM are reflections; ignore them.
  if (msg.grandmaster_identity == cfg_.local.identity) return;
  // Path-trace loop prevention: ignore announces that already traversed us.
  for (const auto& hop : msg.path_trace) {
    if (hop == cfg_.local.identity) return;
  }
  Foreign f;
  f.vector = PriorityVector::from_announce(msg);
  // Messages from a foreign port have travelled one hop more.
  f.vector.steps_removed = static_cast<std::uint16_t>(f.vector.steps_removed + 1);
  f.source = msg.header.source_port;
  f.last_seen_ns = now_ns;
  foreign_[msg.header.source_port.clock.to_u64()] = f;
}

BmcaEngine::Decision BmcaEngine::evaluate(std::int64_t now_ns) {
  for (auto it = foreign_.begin(); it != foreign_.end();) {
    if (now_ns - it->second.last_seen_ns > cfg_.announce_timeout_ns) {
      it = foreign_.erase(it);
    } else {
      ++it;
    }
  }

  const Foreign* best = nullptr;
  for (const auto& [id, f] : foreign_) {
    if (best == nullptr || compare_priority(f.vector, best->vector) < 0) best = &f;
  }

  Decision d;
  if (best == nullptr || compare_priority(cfg_.local, best->vector) < 0) {
    d.role = PortRole::kMaster;
    d.grandmaster = cfg_.local.identity;
  } else {
    d.role = PortRole::kSlave;
    d.grandmaster = best->vector.identity;
    d.parent_port = best->source;
  }
  return d;
}

void BmcaEngine::save_state(sim::StateWriter& w) const {
  w.u64(foreign_.size());
  for (const auto& [id, f] : foreign_) {
    w.u64(id);
    w.u8(f.vector.priority1);
    w.u8(f.vector.quality.clock_class);
    w.u8(f.vector.quality.clock_accuracy);
    w.u16(f.vector.quality.offset_scaled_log_variance);
    w.u8(f.vector.priority2);
    w.u64(f.vector.identity.to_u64());
    w.u16(f.vector.steps_removed);
    w.u64(f.source.clock.to_u64());
    w.u16(f.source.port);
    w.i64(f.last_seen_ns);
  }
}

void BmcaEngine::load_state(sim::StateReader& r) {
  foreign_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t id = r.u64();
    Foreign f;
    f.vector.priority1 = r.u8();
    f.vector.quality.clock_class = r.u8();
    f.vector.quality.clock_accuracy = r.u8();
    f.vector.quality.offset_scaled_log_variance = r.u16();
    f.vector.priority2 = r.u8();
    f.vector.identity = ClockIdentity::from_u64(r.u64());
    f.vector.steps_removed = r.u16();
    f.source.clock = ClockIdentity::from_u64(r.u64());
    f.source.port = r.u16();
    f.last_seen_ns = r.i64();
    foreign_.emplace(id, f);
  }
}

void BmcaEngine::ff_advance(const sim::FfWindow& w) {
  for (auto& [id, f] : foreign_) f.last_seen_ns += w.span_ns();
}

} // namespace tsn::gptp
