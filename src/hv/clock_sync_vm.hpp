// A clock synchronization VM (paper section II): runs M ptp4l instances
// with the FTSHMEM-based multi-domain aggregation, disciplines its
// passthrough NIC's PHC, and -- when active -- maintains CLOCK_SYNCTIME in
// the hypervisor's STSHMEM via the SyncTimeUpdater.
//
// The VM can be shut down (fail-silent fault injection) and booted again;
// the NIC hardware (and its PHC state) survives reboots, so a rebooted VM
// rejoins directly in FTA phase with a warm clock.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.hpp"
#include "core/ft_shmem.hpp"
#include "gptp/stack.hpp"
#include "hv/st_shmem.hpp"
#include "hv/synctime_updater.hpp"
#include "net/nic.hpp"
#include "obs/obs.hpp"
#include "sim/simulation.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
struct FfWindow;
} // namespace tsn::sim

namespace tsn::hv {

struct ClockSyncVmConfig {
  std::string name;
  std::string kernel_version = "5.10.0";
  net::MacAddress mac;
  time::PhcModel phc;
  /// All gPTP domains this VM aggregates.
  std::vector<std::uint8_t> domains;
  /// Domain for which this VM acts as grandmaster, if any.
  std::optional<std::uint8_t> gm_domain;
  core::CoordinatorConfig coordinator; ///< .domains is overwritten from `domains`
  /// When false the VM runs its ptp4l instances WITHOUT multi-domain
  /// aggregation (no FTSHMEM/coordinator): a GM transmits from its
  /// free-running clock, slaves compute offsets nobody consumes. This is
  /// the Kyriakakis et al. baseline the paper argues against, where GM
  /// clocks of different domains are never synchronized with each other.
  bool aggregate = true;
  gptp::LinkDelayConfig link_delay;
  gptp::InstanceConfig instance; ///< template: domain/role overwritten per instance
  SyncTimeUpdaterConfig synctime;
};

class ClockSyncVm {
 public:
  ClockSyncVm(sim::Simulation& sim, StShmem& st_shmem, time::PhcClock& ecd_tsc,
              const ClockSyncVmConfig& cfg, std::size_t vm_index, obs::ObsContext obs = {});

  ClockSyncVm(const ClockSyncVm&) = delete;
  ClockSyncVm& operator=(const ClockSyncVm&) = delete;

  /// Boot the VM. `first_boot` selects a cold start (startup phase, paper's
  /// fault-free initial synchronization) vs. a warm rejoin (FTA phase with
  /// the NIC PHC still running).
  void boot(bool first_boot);
  /// Fail silently: all protocol activity and heartbeats stop at once.
  void shutdown();
  bool running() const { return running_; }

  /// Hypervisor monitor injected the takeover interrupt: start maintaining
  /// CLOCK_SYNCTIME.
  void takeover_irq();
  void set_active(bool active);
  bool is_active() const { return updater_ && updater_->publishing(); }

  /// Attack model: replace the benign ptp4l of the GM domain with one that
  /// distributes shifted preciseOriginTimestamps.
  void compromise(std::int64_t malicious_pot_offset_ns);
  bool compromised() const { return malicious_pot_offset_ns_ != 0; }

  /// Transient software-fault model applied to all instances.
  void set_fault_model(const gptp::InstanceFaultModel& m);
  using FaultCallback = std::function<void(const std::string& vm, const std::string& kind)>;
  void set_fault_callback(FaultCallback cb) { fault_cb_ = std::move(cb); }

  const std::string& name() const { return cfg_.name; }
  const std::string& kernel_version() const { return kernel_version_; }
  void set_kernel_version(std::string v) { kernel_version_ = std::move(v); }
  std::size_t vm_index() const { return vm_index_; }
  bool is_gm() const { return cfg_.gm_domain.has_value(); }
  std::optional<std::uint8_t> gm_domain() const { return cfg_.gm_domain; }

  net::Nic& nic() { return nic_; }
  gptp::PtpStack* stack() { return stack_.get(); }
  core::MultiDomainCoordinator* coordinator() { return coordinator_.get(); }
  core::FtShmem* ft_shmem() { return ft_shmem_.get(); }
  SyncTimeUpdater* updater() { return updater_.get(); }

  /// Aggregate ptp4l application-fault counters across reboots.
  std::uint64_t total_tx_timestamp_timeouts() const;
  std::uint64_t total_deadline_misses() const;

  // -- Snapshot / fast-forward support -------------------------------------
  // save_state captures the NIC PHC plus the whole software stack; load
  // reconciles the boot state first (building or tearing down the stack to
  // match the snapshot) and then restores into the live components. The
  // externally-owned fault model is config, not state: the harness that
  // drives faults re-applies it after a restore.
  void save_state(sim::StateWriter& w);
  void load_state(sim::StateReader& r);
  std::size_t live_events() const;
  void ff_park();
  void ff_advance(const sim::FfWindow& w);
  void ff_resume();

 private:
  void build_stack();

  sim::Simulation& sim_;
  StShmem& st_shmem_;
  ClockSyncVmConfig cfg_;
  std::size_t vm_index_;
  obs::ObsContext obs_;
  std::string kernel_version_;
  net::Nic nic_;

  std::unique_ptr<core::FtShmem> ft_shmem_;
  std::unique_ptr<gptp::PtpStack> stack_;
  std::unique_ptr<core::MultiDomainCoordinator> coordinator_;
  std::unique_ptr<SyncTimeUpdater> updater_;

  bool running_ = false;
  std::int64_t malicious_pot_offset_ns_ = 0;
  gptp::InstanceFaultModel fault_model_;
  FaultCallback fault_cb_;
  std::uint64_t past_tx_timeouts_ = 0;
  std::uint64_t past_deadline_misses_ = 0;

  /// NIC PHC reading at ff_park, for FTSHMEM's freshness-preserving shift.
  std::int64_t ff_entry_phc_ = 0;
};

} // namespace tsn::hv
