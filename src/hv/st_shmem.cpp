#include "hv/st_shmem.hpp"

#include <cmath>
#include <optional>

#include "sim/persist.hpp"

namespace tsn::hv {

namespace {

void save_params(sim::StateWriter& w, const SyncTimeParams& p) {
  w.i64(p.base_tsc);
  w.i64(p.base_sync);
  w.f64(p.rate);
  w.u32(p.generation);
  w.b(p.valid);
}

SyncTimeParams load_params(sim::StateReader& r) {
  SyncTimeParams p;
  p.base_tsc = r.i64();
  p.base_sync = r.i64();
  p.rate = r.f64();
  p.generation = r.u32();
  p.valid = r.b();
  return p;
}

} // namespace

void StShmem::save_state(sim::StateWriter& w) const {
  save_params(w, params_.load());
  for (const auto& c : candidates_) save_params(w, c.load());
  for (const auto& h : heartbeats_) w.i64(h.load(std::memory_order_acquire));
  w.u64(active_vm_.load(std::memory_order_acquire));
  w.u32(generation_.load(std::memory_order_acquire));
}

void StShmem::load_state(sim::StateReader& r) {
  params_.store(load_params(r));
  for (auto& c : candidates_) c.store(load_params(r));
  for (auto& h : heartbeats_) h.store(r.i64(), std::memory_order_release);
  active_vm_.store(r.u64(), std::memory_order_release);
  generation_.store(r.u32(), std::memory_order_release);
}

std::optional<std::int64_t> read_synctime(const StShmem& shmem, std::int64_t tsc_now) {
  const SyncTimeParams p = shmem.read_params();
  if (!p.valid) return std::nullopt;
  const double elapsed = static_cast<double>(tsc_now - p.base_tsc);
  return p.base_sync + static_cast<std::int64_t>(std::llround(elapsed * p.rate));
}

} // namespace tsn::hv
