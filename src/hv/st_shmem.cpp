#include "hv/st_shmem.hpp"

#include <cmath>
#include <optional>

namespace tsn::hv {

std::optional<std::int64_t> read_synctime(const StShmem& shmem, std::int64_t tsc_now) {
  const SyncTimeParams p = shmem.read_params();
  if (!p.valid) return std::nullopt;
  const double elapsed = static_cast<double>(tsc_now - p.base_tsc);
  return p.base_sync + static_cast<std::int64_t>(std::llround(elapsed * p.rate));
}

} // namespace tsn::hv
