// SyncTimeUpdater: the phc2sys equivalent of the paper's architecture.
//
// Periodically compares CLOCK_SYNCTIME against the NIC PHC (the
// fault-tolerant global time) and publishes fresh parameters into STSHMEM.
// It also stamps the VM's heartbeat for the hypervisor monitor.
//
// Two derivations are provided:
//   * kPiFeedback (default): CLOCK_SYNCTIME is a PI-servo-disciplined
//     virtual clock, exactly how phc2sys disciplines a kernel clock. This
//     reproduces the mild feedback instability the paper observes as
//     precision spikes (sec. III-C discussion).
//   * kFeedForward: RADclock-style -- the published value snaps to the PHC
//     each update and the rate comes from a long baseline, no feedback.
//     The paper's future-work hypothesis; see the ablation bench.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "gptp/servo.hpp"
#include "hv/st_shmem.hpp"
#include "obs/obs.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
struct FfWindow;
} // namespace tsn::sim

namespace tsn::hv {

enum class SyncTimeMode { kPiFeedback, kFeedForward };

struct SyncTimeUpdaterConfig {
  std::int64_t period_ns = 125'000'000;
  SyncTimeMode mode = SyncTimeMode::kPiFeedback;
  /// Servo gains for the feedback mode (phc2sys-like).
  gptp::PiServoConfig servo;
  /// Feed-forward baseline length in periods.
  int feed_forward_window = 64;
};

class SyncTimeUpdater {
 public:
  SyncTimeUpdater(sim::Simulation& sim, time::PhcClock& phc, time::PhcClock& tsc,
                  StShmem& shmem, const SyncTimeUpdaterConfig& cfg, const std::string& name);

  SyncTimeUpdater(const SyncTimeUpdater&) = delete;
  SyncTimeUpdater& operator=(const SyncTimeUpdater&) = delete;

  /// Begin periodic operation as VM `vm_index`. Heartbeats always; params
  /// are only published while `publishing` is set.
  void start(std::size_t vm_index);
  void stop();
  bool running() const { return running_; }

  void set_publishing(bool on);
  bool publishing() const { return publishing_; }

  double estimated_rate() const { return rate_; }

  /// Fault model: a fail-consistent faulty VM publishes parameters whose
  /// base_sync is consistently shifted (all readers see the same wrong
  /// clock). Used to exercise the monitor's 2f+1 majority vote.
  void set_param_corruption(std::int64_t offset_ns) { corruption_ns_ = offset_ns; }
  std::int64_t param_corruption() const { return corruption_ns_; }
  /// Fault model: publish a rate off by `delta` (e.g. 1e-3 = 1000 ppm).
  /// Exercises the monitor's parameter sanity check; 0 clears the fault.
  void set_rate_corruption(double delta) { rate_corruption_ = delta; }
  double rate_corruption() const { return rate_corruption_; }

  /// Attach observability: the internal phc2sys servo reports under
  /// `<name>.servo`. Survives restarts (start() re-attaches).
  void set_obs(obs::ObsContext ctx);
  std::uint64_t publications() const { return publications_; }
  /// Last CLOCK_SYNCTIME-vs-PHC error seen by the feedback servo (ns).
  double last_error_ns() const { return last_error_ns_; }

  // -- Snapshot / fast-forward support -------------------------------------
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);
  std::size_t live_events() const { return periodic_.active() ? 1u : 0u; }
  void ff_park();
  /// Re-anchor the virtual clock on the analytically advanced PHC (keeping
  /// the at-park residual), restart the feed-forward baseline, and publish
  /// params + heartbeat immediately so the monitor's first post-resume poll
  /// sees this VM fresh.
  void ff_advance(const sim::FfWindow& w);
  void ff_resume();

 private:
  void tick();
  void tick_feedback(std::int64_t tsc, std::int64_t phc);
  void tick_feed_forward(std::int64_t tsc, std::int64_t phc);
  void publish(std::int64_t base_tsc, std::int64_t base_sync, double rate);

  sim::Simulation& sim_;
  time::PhcClock& phc_;
  time::PhcClock& tsc_;
  StShmem& shmem_;
  SyncTimeUpdaterConfig cfg_;
  std::string name_;
  sim::Simulation::PeriodicHandle periodic_;
  std::size_t vm_index_ = 0;
  bool running_ = false;
  bool publishing_ = false;

  // Feedback state: the disciplined virtual clock.
  gptp::PiServo servo_;
  bool virt_initialized_ = false;
  long double virt_value_ = 0.0L;
  std::int64_t last_tsc_ = 0;
  double rate_ = 1.0; ///< current d(synctime)/d(tsc)
  double last_error_ns_ = 0.0;

  // Feed-forward state.
  std::optional<std::pair<std::int64_t, std::int64_t>> ff_anchor_; // (tsc, phc)
  int ff_count_ = 0;
  std::int64_t corruption_ns_ = 0;
  double rate_corruption_ = 0.0;

  std::uint64_t publications_ = 0;
  obs::ObsContext obs_;

  // Fast-forward park state.
  bool parked_running_ = false;
  std::int64_t park_due_ns_ = 0;
  long double park_residual_ = 0.0L; ///< virt_value_ - PHC at park
};

} // namespace tsn::hv
