#include "hv/synctime_updater.hpp"

#include <cmath>

#include "sim/persist.hpp"

namespace tsn::hv {

SyncTimeUpdater::SyncTimeUpdater(sim::Simulation& sim, time::PhcClock& phc, time::PhcClock& tsc,
                                 StShmem& shmem, const SyncTimeUpdaterConfig& cfg,
                                 const std::string& name)
    : sim_(sim), phc_(phc), tsc_(tsc), shmem_(shmem), cfg_(cfg), name_(name),
      servo_(cfg.servo) {}

void SyncTimeUpdater::set_obs(obs::ObsContext ctx) {
  obs_ = ctx;
  servo_.attach_obs(obs_, name_ + ".servo");
}

void SyncTimeUpdater::start(std::size_t vm_index) {
  if (running_) return;
  vm_index_ = vm_index;
  running_ = true;
  virt_initialized_ = false;
  ff_anchor_.reset();
  ff_count_ = 0;
  rate_ = 1.0;
  servo_ = gptp::PiServo(cfg_.servo);
  // The assignment above wiped the servo's obs handles; re-attach.
  if (obs_) servo_.attach_obs(obs_, name_ + ".servo");
  periodic_ = sim_.every(sim_.now(), cfg_.period_ns, [this](sim::SimTime) { tick(); });
}

void SyncTimeUpdater::stop() {
  periodic_.cancel();
  running_ = false;
  publishing_ = false;
}

void SyncTimeUpdater::set_publishing(bool on) {
  const bool was = publishing_;
  publishing_ = on;
  if (on && !was && running_) {
    // Take over immediately: publish the current state of our clock.
    const std::int64_t tsc = tsc_.read();
    if (virt_initialized_) {
      publish(last_tsc_, static_cast<std::int64_t>(std::llroundl(virt_value_)), rate_);
    } else {
      publish(tsc, phc_.read(), 1.0);
    }
  }
}

void SyncTimeUpdater::tick() {
  shmem_.heartbeat(vm_index_, tsc_.read());
  const std::int64_t tsc = tsc_.read();
  const std::int64_t phc = phc_.read();
  if (cfg_.mode == SyncTimeMode::kFeedForward) {
    tick_feed_forward(tsc, phc);
  } else {
    tick_feedback(tsc, phc);
  }
}

void SyncTimeUpdater::tick_feedback(std::int64_t tsc, std::int64_t phc) {
  if (!virt_initialized_) {
    virt_initialized_ = true;
    virt_value_ = static_cast<long double>(phc);
    last_tsc_ = tsc;
    rate_ = 1.0;
    publish(tsc, phc, rate_);
    return;
  }
  // Advance the virtual clock at its programmed rate, then discipline it
  // toward the PHC with the PI servo -- phc2sys semantics.
  virt_value_ += static_cast<long double>(tsc - last_tsc_) * static_cast<long double>(rate_);
  last_tsc_ = tsc;
  const double err = static_cast<double>(virt_value_ - static_cast<long double>(phc));
  last_error_ns_ = err;
  const auto res = servo_.sample(static_cast<std::int64_t>(std::llround(err)), tsc);
  switch (res.state) {
    case gptp::PiServo::State::kUnlocked:
      break;
    case gptp::PiServo::State::kJump:
      virt_value_ = static_cast<long double>(phc);
      rate_ = 1.0 + res.freq_ppb * 1e-9;
      break;
    case gptp::PiServo::State::kLocked:
      rate_ = 1.0 + res.freq_ppb * 1e-9;
      break;
  }
  publish(tsc, static_cast<std::int64_t>(std::llroundl(virt_value_)), rate_);
}

void SyncTimeUpdater::tick_feed_forward(std::int64_t tsc, std::int64_t phc) {
  // Rate over a long, fixed baseline: immune to servo-induced wiggle but
  // slower to follow genuine frequency changes. The published value snaps
  // to the PHC -- no feedback loop at all.
  if (ff_anchor_ && tsc != ff_anchor_->first) {
    rate_ = static_cast<double>(phc - ff_anchor_->second) /
            static_cast<double>(tsc - ff_anchor_->first);
  }
  if (!ff_anchor_ || ++ff_count_ >= cfg_.feed_forward_window) {
    ff_anchor_ = {tsc, phc};
    ff_count_ = 0;
  }
  last_tsc_ = tsc;
  virt_value_ = static_cast<long double>(phc);
  virt_initialized_ = true;
  publish(tsc, phc, rate_);
}

void SyncTimeUpdater::save_state(sim::StateWriter& w) const {
  w.b(periodic_.active());
  w.i64(periodic_.next_due_ns());
  w.u64(vm_index_);
  w.b(running_);
  w.b(publishing_);
  servo_.save_state(w);
  w.b(virt_initialized_);
  w.ld(virt_value_);
  w.i64(last_tsc_);
  w.f64(rate_);
  w.f64(last_error_ns_);
  w.b(ff_anchor_.has_value());
  w.i64(ff_anchor_ ? ff_anchor_->first : 0);
  w.i64(ff_anchor_ ? ff_anchor_->second : 0);
  w.i64(ff_count_);
  w.i64(corruption_ns_);
  w.f64(rate_corruption_);
  w.u64(publications_);
}

void SyncTimeUpdater::load_state(sim::StateReader& r) {
  const bool active = r.b();
  const std::int64_t due = r.i64();
  vm_index_ = r.u64();
  running_ = r.b();
  publishing_ = r.b();
  servo_.load_state(r);
  virt_initialized_ = r.b();
  virt_value_ = r.ld();
  last_tsc_ = r.i64();
  rate_ = r.f64();
  last_error_ns_ = r.f64();
  const bool have_anchor = r.b();
  const std::int64_t anchor_tsc = r.i64();
  const std::int64_t anchor_phc = r.i64();
  ff_anchor_.reset();
  if (have_anchor) ff_anchor_ = {anchor_tsc, anchor_phc};
  ff_count_ = static_cast<int>(r.i64());
  corruption_ns_ = r.i64();
  rate_corruption_ = r.f64();
  publications_ = r.u64();
  periodic_ = {};
  if (active) {
    periodic_ = sim_.every(
        sim::SimTime{sim::align_phase(due, cfg_.period_ns, sim_.now().ns())},
        cfg_.period_ns, [this](sim::SimTime) { tick(); });
  }
}

void SyncTimeUpdater::ff_park() {
  parked_running_ = periodic_.active();
  park_due_ns_ = periodic_.next_due_ns();
  periodic_.cancel();
  if (!virt_initialized_) {
    park_residual_ = 0.0L;
    return;
  }
  // virt_value_ is a snapshot at last_tsc_, up to one period old; the PHC
  // read below is current. Integrate the virtual clock forward to the park
  // instant first, or the elapsed wall time folds into the residual and
  // ff_advance re-anchors CLOCK_SYNCTIME that far off -- a phase step the
  // feedback servo answers with a railed frequency excursion.
  const std::int64_t tsc = tsc_.read();
  virt_value_ +=
      static_cast<long double>(tsc - last_tsc_) * static_cast<long double>(rate_);
  last_tsc_ = tsc;
  park_residual_ = virt_value_ - static_cast<long double>(phc_.read());
}

void SyncTimeUpdater::ff_advance(const sim::FfWindow&) {
  if (!running_) return;
  const std::int64_t tsc = tsc_.read();
  const std::int64_t phc = phc_.read();
  if (virt_initialized_) {
    // Keep the at-park offset from the PHC rather than re-integrating the
    // rate across the window: the servo was locked (quiescence gate), so
    // the residual is the steady-state error.
    virt_value_ = static_cast<long double>(phc) + park_residual_;
    last_tsc_ = tsc;
  }
  // A rate baseline straddling the analytic jump would regress across the
  // ensemble-pull discontinuity; restart it, keep the current estimate.
  if (ff_anchor_) {
    ff_anchor_ = {tsc, phc};
    ff_count_ = 0;
  }
  shmem_.heartbeat(vm_index_, tsc);
  if (virt_initialized_) {
    publish(last_tsc_, static_cast<std::int64_t>(std::llroundl(virt_value_)), rate_);
  }
}

void SyncTimeUpdater::ff_resume() {
  if (!parked_running_) return;
  parked_running_ = false;
  periodic_ = sim_.every(
      sim::SimTime{sim::align_phase(park_due_ns_, cfg_.period_ns, sim_.now().ns())},
      cfg_.period_ns, [this](sim::SimTime) { tick(); });
}

void SyncTimeUpdater::publish(std::int64_t base_tsc, std::int64_t base_sync, double rate) {
  SyncTimeParams p;
  p.base_tsc = base_tsc;
  p.base_sync = base_sync + corruption_ns_;
  p.rate = rate + rate_corruption_;
  p.generation = shmem_.generation();
  p.valid = true;
  // Candidate slot: every running VM's view, for the monitor's vote.
  shmem_.publish_candidate(vm_index_, p);
  if (publishing_) {
    shmem_.publish_params(p);
    ++publications_;
  }
}

} // namespace tsn::hv
