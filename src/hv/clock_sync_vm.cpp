#include "hv/clock_sync_vm.hpp"

#include "sim/persist.hpp"
#include "util/log.hpp"

namespace tsn::hv {

ClockSyncVm::ClockSyncVm(sim::Simulation& sim, StShmem& st_shmem, time::PhcClock& ecd_tsc,
                         const ClockSyncVmConfig& cfg, std::size_t vm_index, obs::ObsContext obs)
    : sim_(sim),
      st_shmem_(st_shmem),
      cfg_(cfg),
      vm_index_(vm_index),
      obs_(obs),
      kernel_version_(cfg.kernel_version),
      nic_(sim, cfg.phc, cfg.mac, cfg.name + "/nic") {
  updater_ = std::make_unique<SyncTimeUpdater>(sim, nic_.phc(), ecd_tsc, st_shmem_,
                                               cfg_.synctime, cfg_.name + "/phc2sys");
  updater_->set_obs(obs_);
  nic_.set_up(false); // powered but VM not booted yet
}

std::uint64_t ClockSyncVm::total_tx_timestamp_timeouts() const {
  std::uint64_t total = past_tx_timeouts_;
  if (stack_) {
    for (const auto& inst : const_cast<ClockSyncVm*>(this)->stack_->instances()) {
      total += inst->counters().tx_timestamp_timeouts;
    }
  }
  return total;
}

std::uint64_t ClockSyncVm::total_deadline_misses() const {
  std::uint64_t total = past_deadline_misses_;
  if (stack_) {
    for (const auto& inst : const_cast<ClockSyncVm*>(this)->stack_->instances()) {
      total += inst->counters().deadline_misses;
    }
  }
  return total;
}

void ClockSyncVm::build_stack() {
  if (cfg_.aggregate) {
    ft_shmem_ = std::make_unique<core::FtShmem>(cfg_.domains.size());
    core::CoordinatorConfig coord_cfg = cfg_.coordinator;
    coord_cfg.domains = cfg_.domains;
    coordinator_ = std::make_unique<core::MultiDomainCoordinator>(
        sim_, nic_.phc(), *ft_shmem_, coord_cfg, cfg_.name + "/fta", obs_);
  }

  stack_ = std::make_unique<gptp::PtpStack>(sim_, nic_, cfg_.link_delay, cfg_.name);
  for (std::uint8_t domain : cfg_.domains) {
    gptp::InstanceConfig icfg = cfg_.instance;
    icfg.domain = domain;
    icfg.use_bmca = false; // external port configuration (paper setup)
    icfg.role = (cfg_.gm_domain && *cfg_.gm_domain == domain) ? gptp::PortRole::kMaster
                                                              : gptp::PortRole::kSlave;
    auto& inst = stack_->add_instance(icfg);
    if (coordinator_) {
      inst.set_offset_callback(
          [this](const gptp::MasterOffsetSample& s) { coordinator_->on_offset(s); });
    }
    inst.set_fault_model(fault_model_);
    inst.set_fault_callback([this, name = inst.name()](const std::string& kind) {
      if (fault_cb_) fault_cb_(cfg_.name, kind);
    });
    if (icfg.role == gptp::PortRole::kMaster && malicious_pot_offset_ns_ != 0) {
      inst.set_malicious_pot_offset(malicious_pot_offset_ns_);
    }
  }
}

void ClockSyncVm::boot(bool first_boot) {
  if (running_) return;
  TSN_LOG_DEBUG("hv", "%s: boot (%s)", cfg_.name.c_str(), first_boot ? "cold" : "warm");
  running_ = true;
  nic_.set_up(true);

  // Warm rejoin (NIC PHC still running) skips the startup phase; a cold
  // boot honours whatever the deployment configured.
  if (!first_boot) cfg_.coordinator.skip_startup = true;
  build_stack();
  stack_->start();
  updater_->start(vm_index_);
}

void ClockSyncVm::shutdown() {
  if (!running_) return;
  TSN_LOG_DEBUG("hv", "%s: fail-silent shutdown", cfg_.name.c_str());
  running_ = false;
  // Preserve application-fault totals across the reboot.
  if (stack_) {
    for (const auto& inst : stack_->instances()) {
      past_tx_timeouts_ += inst->counters().tx_timestamp_timeouts;
      past_deadline_misses_ += inst->counters().deadline_misses;
    }
  }
  updater_->stop();
  if (stack_) stack_->stop();
  nic_.set_up(false);
  stack_.reset();
  coordinator_.reset();
  ft_shmem_.reset();
}

void ClockSyncVm::takeover_irq() {
  if (!running_) return;
  TSN_LOG_INFO("hv", "%s: takeover IRQ - maintaining CLOCK_SYNCTIME", cfg_.name.c_str());
  updater_->set_publishing(true);
}

void ClockSyncVm::set_active(bool active) {
  if (updater_) updater_->set_publishing(active && running_);
}

void ClockSyncVm::compromise(std::int64_t malicious_pot_offset_ns) {
  malicious_pot_offset_ns_ = malicious_pot_offset_ns;
  if (stack_ && cfg_.gm_domain) {
    if (auto* inst = stack_->instance_for_domain(*cfg_.gm_domain)) {
      inst->set_malicious_pot_offset(malicious_pot_offset_ns);
    }
  }
}

void ClockSyncVm::save_state(sim::StateWriter& w) {
  w.b(running_);
  w.i64(malicious_pot_offset_ns_);
  w.str(kernel_version_);
  w.u64(past_tx_timeouts_);
  w.u64(past_deadline_misses_);
  w.b(cfg_.coordinator.skip_startup); // boot(!first) mutates this
  nic_.phc().save_state(w);
  updater_->save_state(w);
  if (running_) {
    if (ft_shmem_) ft_shmem_->save_state(w);
    if (coordinator_) coordinator_->save_state(w);
    stack_->save_state(w);
  }
}

void ClockSyncVm::load_state(sim::StateReader& r) {
  const bool was_running = r.b();
  malicious_pot_offset_ns_ = r.i64();
  kernel_version_ = r.str();
  past_tx_timeouts_ = r.u64();
  past_deadline_misses_ = r.u64();
  cfg_.coordinator.skip_startup = r.b();
  // Reconcile the boot state before restoring component state into it.
  if (was_running && !running_) {
    running_ = true;
    nic_.set_up(true);
    build_stack();
  } else if (!was_running && running_) {
    // Manual teardown: shutdown() would fold live counters into the
    // `past_` totals we just restored.
    running_ = false;
    updater_->stop();
    if (stack_) stack_->stop();
    nic_.set_up(false);
    stack_.reset();
    coordinator_.reset();
    ft_shmem_.reset();
  }
  nic_.phc().load_state(r);
  updater_->load_state(r);
  if (running_) {
    if (ft_shmem_) ft_shmem_->load_state(r);
    if (coordinator_) coordinator_->load_state(r);
    stack_->load_state(r);
  }
}

std::size_t ClockSyncVm::live_events() const {
  std::size_t n = updater_->live_events();
  if (stack_) n += stack_->live_events();
  return n;
}

void ClockSyncVm::ff_park() {
  ff_entry_phc_ = nic_.phc().read();
  if (stack_) stack_->ff_park();
  updater_->ff_park();
}

void ClockSyncVm::ff_advance(const sim::FfWindow& w) {
  // The analytic stepper has already advanced the NIC PHC; shift the
  // FTSHMEM stamps (which live in this PHC's timebase) by the same amount,
  // preserving at-entry freshness classification.
  const std::int64_t shift = nic_.phc().read() - ff_entry_phc_;
  if (ft_shmem_) {
    ft_shmem_->ff_shift(shift, ff_entry_phc_, cfg_.coordinator.validity.freshness_window_ns);
  }
  if (stack_) stack_->ff_advance(w);
  updater_->ff_advance(w);
}

void ClockSyncVm::ff_resume() {
  if (stack_) stack_->ff_resume();
  updater_->ff_resume();
}

void ClockSyncVm::set_fault_model(const gptp::InstanceFaultModel& m) {
  fault_model_ = m;
  if (stack_) {
    for (auto& inst : stack_->instances()) inst->set_fault_model(m);
  }
}

} // namespace tsn::hv
