// STSHMEM: the hypervisor-shared clock parameter page (paper section II-A).
//
// ACRN exposes this page to all co-located VMs through a virtual PCI
// device; the active clock synchronization VM publishes the parameters of
// CLOCK_SYNCTIME into it and every VM derives the synchronized time as
//     synctime(tsc) = base_sync + rate * (tsc - base_tsc).
// The page also carries per-VM heartbeats for the hypervisor monitor and
// the active-VM/generation bookkeeping used for fail-over.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>

#include "core/seqlock.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
} // namespace tsn::sim

namespace tsn::hv {

inline constexpr std::size_t kMaxClockSyncVms = 4;

struct SyncTimeParams {
  std::int64_t base_tsc = 0;
  std::int64_t base_sync = 0;
  double rate = 1.0; ///< d(synctime)/d(tsc)
  std::uint32_t generation = 0;
  bool valid = false;
};

class StShmem {
 public:
  StShmem() {
    for (auto& h : heartbeats_) h.store(INT64_MIN, std::memory_order_relaxed);
  }

  StShmem(const StShmem&) = delete;
  StShmem& operator=(const StShmem&) = delete;

  void publish_params(const SyncTimeParams& p) { params_.store(p); }
  SyncTimeParams read_params() const { return params_.load(); }

  /// Per-VM liveness heartbeat, stamped with the ECD TSC.
  void heartbeat(std::size_t vm_index, std::int64_t tsc_now) {
    heartbeats_.at(vm_index).store(tsc_now, std::memory_order_release);
  }
  /// Age of a VM's last heartbeat in TSC ns (INT64_MAX if never beaten).
  std::int64_t heartbeat_age(std::size_t vm_index, std::int64_t tsc_now) const {
    const std::int64_t last = heartbeats_.at(vm_index).load(std::memory_order_acquire);
    return last == INT64_MIN ? INT64_MAX : tsc_now - last;
  }

  std::size_t active_vm() const { return active_vm_.load(std::memory_order_acquire); }
  void set_active_vm(std::size_t idx) { active_vm_.store(idx, std::memory_order_release); }

  std::uint32_t generation() const { return generation_.load(std::memory_order_acquire); }
  std::uint32_t bump_generation() {
    return generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Per-VM *candidate* parameters: every running clock synchronization VM
  /// publishes its view here (not only the active one), enabling the
  /// monitor's 2f+1 majority vote under the fail-consistent hypothesis
  /// (paper sec. II-A; needs >= 3 VMs / NICs per node).
  void publish_candidate(std::size_t vm_index, const SyncTimeParams& p) {
    candidates_.at(vm_index).store(p);
  }
  SyncTimeParams read_candidate(std::size_t vm_index) const {
    return candidates_.at(vm_index).load();
  }

  // -- Snapshot support ------------------------------------------------------
  // No ff_shift needed: the timestamps here are heartbeats and base_tsc
  // values in the ECD TSC timebase, and every *running* updater republishes
  // params + heartbeat in its own ff_advance before the monitor's first
  // post-resume poll. Down VMs' heartbeats stay stale, which is exactly the
  // classification the monitor should see after the jump.
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);

 private:
  core::SeqLock<SyncTimeParams> params_;
  std::array<core::SeqLock<SyncTimeParams>, kMaxClockSyncVms> candidates_;
  std::array<std::atomic<std::int64_t>, kMaxClockSyncVms> heartbeats_;
  std::atomic<std::size_t> active_vm_{0};
  std::atomic<std::uint32_t> generation_{0};
};

/// CLOCK_SYNCTIME as read by any co-located VM: derive the synchronized
/// time from the shared parameters and the current TSC. Returns nullopt
/// until the first parameter publication.
std::optional<std::int64_t> read_synctime(const StShmem& shmem, std::int64_t tsc_now);

} // namespace tsn::hv
