// The hypervisor-native monitor (paper section II-A).
//
// Executes periodically (125 ms in the paper's testbed) inside ACRN,
// checking the clock synchronization VMs' liveness through their STSHMEM
// heartbeats. When the VM currently maintaining CLOCK_SYNCTIME fails
// silently, the monitor injects a takeover interrupt into a healthy
// redundant VM, which continues maintaining the dependent clock.
//
// With 2f+1 redundant VMs the monitor can additionally majority-vote on
// the published clock parameters (fail-consistent hypothesis); the paper's
// hardware only fits 2 NICs per ECD, restricting it -- and our default
// experiment configuration -- to f+1 = 2 fail-silent VMs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hv/clock_sync_vm.hpp"
#include "hv/st_shmem.hpp"
#include "obs/obs.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
struct FfWindow;
} // namespace tsn::sim

namespace tsn::hv {

struct MonitorConfig {
  std::int64_t period_ns = 125'000'000;
  /// A VM is considered fail-silent when its heartbeat is older than this.
  std::int64_t heartbeat_timeout_ns = 400'000'000;
  /// Sanity window on the published rate (|rate - 1| above this is
  /// faulty). 0 disables the check -- the default, matching the paper's
  /// monitor which only detects fail-silence. Enabling it is a
  /// beyond-the-paper containment measure (see the ablation bench).
  double max_rate_error = 0.0;
  /// Majority vote over the per-VM candidate clock parameters, active when
  /// >= 3 VMs are healthy (the paper's 2f+1 fail-consistent mode, which
  /// its 2-NIC hardware could not host). A VM whose candidate CLOCK_SYNCTIME
  /// deviates from the healthy median by more than this is voted out;
  /// 0 disables the vote.
  double vote_threshold_ns = 10'000.0;
};

/// Snapshot of the monitor's registry-backed counters; kept as a plain
/// struct so existing `stats().field` call sites read unchanged.
struct MonitorStats {
  std::uint64_t checks = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t param_sanity_failures = 0;
  std::uint64_t vote_exclusions = 0;
  /// Active VM failed with no healthy VM left to promote; CLOCK_SYNCTIME
  /// publication is suspended until one recovers. Counted once per episode.
  std::uint64_t no_successor = 0;
};

class HvMonitor {
 public:
  HvMonitor(sim::Simulation& sim, StShmem& shmem, time::PhcClock& tsc,
            const MonitorConfig& cfg, const std::string& name, obs::ObsContext obs = {});

  HvMonitor(const HvMonitor&) = delete;
  HvMonitor& operator=(const HvMonitor&) = delete;

  /// VMs in index order; index 0 is the initially active VM.
  void add_vm(ClockSyncVm* vm) { vms_.push_back(vm); }

  void start();
  void stop();

  /// Reads the live counters into a plain struct (by value: the backing
  /// store is the metrics registry, not a member struct).
  MonitorStats stats() const;

  /// (vm index) the monitor declared fail-silent.
  std::function<void(std::size_t)> on_vm_failure;
  /// (vm index) that took over maintaining CLOCK_SYNCTIME.
  std::function<void(std::size_t)> on_takeover;
  /// (vm index) whose heartbeat returned after a failure.
  std::function<void(std::size_t)> on_vm_recovery;
  /// (vm index) voted out by the 2f+1 majority (fail-consistent fault).
  std::function<void(std::size_t)> on_vote_exclusion;

  /// True when the majority vote currently excludes VM `idx`.
  bool voted_out(std::size_t idx) const { return idx < voted_out_.size() && voted_out_[idx]; }

  /// True when the monitor currently classifies VM `idx` as fail-silent.
  /// The fast-forward quiescence gate requires this to agree with the VM's
  /// actual running() state: a just-killed VM whose heartbeat is not yet
  /// stale must keep the window shut until the takeover has played out.
  bool detected_failed(std::size_t idx) const { return idx < failed_.size() && failed_[idx]; }

  // -- Snapshot / fast-forward support -------------------------------------
  // Counters live in the metrics registry (observational, outside snapshot
  // state). Heartbeat ages stay consistent across a window because the
  // updaters re-stamp in their own ff_advance, which runs before this
  // monitor's first post-resume poll (registration order = boot order).
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);
  std::size_t live_events() const { return periodic_.active() ? 1u : 0u; }
  void ff_park();
  void ff_advance(const sim::FfWindow&) {}
  void ff_resume();

 private:
  void check();
  void majority_vote(std::int64_t tsc_now);
  void bind_metrics(obs::ObsContext obs);
  void trace(obs::TraceKind kind, std::uint32_t a, std::int64_t v0, std::int64_t v1) const;

  sim::Simulation& sim_;
  StShmem& shmem_;
  time::PhcClock& tsc_;
  MonitorConfig cfg_;
  std::string name_;

  std::vector<ClockSyncVm*> vms_;
  std::vector<bool> failed_;
  std::vector<bool> voted_out_;
  /// Scratch reused across 125 ms ticks so the vote never allocates on the
  /// steady-state path.
  std::vector<std::pair<std::size_t, double>> vote_views_;
  std::vector<double> vote_scratch_;
  /// True while the "active failed, nobody healthy to promote" episode is
  /// ongoing; keeps no_successor from counting once per tick.
  bool no_successor_latched_ = false;
  sim::Simulation::PeriodicHandle periodic_;

  // Fast-forward park state.
  bool parked_running_ = false;
  std::int64_t park_due_ns_ = 0;

  /// Owned fallback so stats() works when no shared registry is wired in.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::Counter* c_checks_ = nullptr;
  obs::Counter* c_failures_ = nullptr;
  obs::Counter* c_takeovers_ = nullptr;
  obs::Counter* c_recoveries_ = nullptr;
  obs::Counter* c_sanity_failures_ = nullptr;
  obs::Counter* c_vote_exclusions_ = nullptr;
  obs::Counter* c_no_successor_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  std::uint16_t trace_src_ = 0;
};

} // namespace tsn::hv
