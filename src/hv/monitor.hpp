// The hypervisor-native monitor (paper section II-A).
//
// Executes periodically (125 ms in the paper's testbed) inside ACRN,
// checking the clock synchronization VMs' liveness through their STSHMEM
// heartbeats. When the VM currently maintaining CLOCK_SYNCTIME fails
// silently, the monitor injects a takeover interrupt into a healthy
// redundant VM, which continues maintaining the dependent clock.
//
// With 2f+1 redundant VMs the monitor can additionally majority-vote on
// the published clock parameters (fail-consistent hypothesis); the paper's
// hardware only fits 2 NICs per ECD, restricting it -- and our default
// experiment configuration -- to f+1 = 2 fail-silent VMs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hv/clock_sync_vm.hpp"
#include "hv/st_shmem.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::hv {

struct MonitorConfig {
  std::int64_t period_ns = 125'000'000;
  /// A VM is considered fail-silent when its heartbeat is older than this.
  std::int64_t heartbeat_timeout_ns = 400'000'000;
  /// Sanity window on the published rate (|rate - 1| above this is
  /// faulty). 0 disables the check -- the default, matching the paper's
  /// monitor which only detects fail-silence. Enabling it is a
  /// beyond-the-paper containment measure (see the ablation bench).
  double max_rate_error = 0.0;
  /// Majority vote over the per-VM candidate clock parameters, active when
  /// >= 3 VMs are healthy (the paper's 2f+1 fail-consistent mode, which
  /// its 2-NIC hardware could not host). A VM whose candidate CLOCK_SYNCTIME
  /// deviates from the healthy median by more than this is voted out;
  /// 0 disables the vote.
  double vote_threshold_ns = 10'000.0;
};

struct MonitorStats {
  std::uint64_t checks = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t param_sanity_failures = 0;
  std::uint64_t vote_exclusions = 0;
};

class HvMonitor {
 public:
  HvMonitor(sim::Simulation& sim, StShmem& shmem, time::PhcClock& tsc,
            const MonitorConfig& cfg, const std::string& name);

  HvMonitor(const HvMonitor&) = delete;
  HvMonitor& operator=(const HvMonitor&) = delete;

  /// VMs in index order; index 0 is the initially active VM.
  void add_vm(ClockSyncVm* vm) { vms_.push_back(vm); }

  void start();
  void stop();

  const MonitorStats& stats() const { return stats_; }

  /// (vm index) the monitor declared fail-silent.
  std::function<void(std::size_t)> on_vm_failure;
  /// (vm index) that took over maintaining CLOCK_SYNCTIME.
  std::function<void(std::size_t)> on_takeover;
  /// (vm index) whose heartbeat returned after a failure.
  std::function<void(std::size_t)> on_vm_recovery;
  /// (vm index) voted out by the 2f+1 majority (fail-consistent fault).
  std::function<void(std::size_t)> on_vote_exclusion;

  /// True when the majority vote currently excludes VM `idx`.
  bool voted_out(std::size_t idx) const { return idx < voted_out_.size() && voted_out_[idx]; }

 private:
  void check();

  sim::Simulation& sim_;
  StShmem& shmem_;
  time::PhcClock& tsc_;
  MonitorConfig cfg_;
  std::string name_;
  void majority_vote(std::int64_t tsc_now);

  std::vector<ClockSyncVm*> vms_;
  std::vector<bool> failed_;
  std::vector<bool> voted_out_;
  sim::Simulation::PeriodicHandle periodic_;
  MonitorStats stats_;
};

} // namespace tsn::hv
