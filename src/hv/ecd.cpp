#include "hv/ecd.hpp"

namespace tsn::hv {

Ecd::Ecd(sim::Simulation& sim, const EcdConfig& cfg, obs::ObsContext obs)
    : sim_(sim),
      cfg_(cfg),
      obs_(obs),
      tsc_(sim, cfg.tsc, cfg.name + "/tsc"),
      monitor_(sim, st_shmem_, tsc_, cfg.monitor, cfg.name + "/monitor", obs) {}

ClockSyncVm& Ecd::add_clock_sync_vm(const ClockSyncVmConfig& cfg) {
  vms_.push_back(std::make_unique<ClockSyncVm>(sim_, st_shmem_, tsc_, cfg, vms_.size(), obs_));
  monitor_.add_vm(vms_.back().get());
  return *vms_.back();
}

void Ecd::start() {
  for (auto& vm : vms_) vm->boot(/*first_boot=*/true);
  if (!vms_.empty()) {
    st_shmem_.set_active_vm(0);
    vms_[0]->set_active(true);
  }
  monitor_.start();
}

void Ecd::save_state(sim::StateWriter& w) {
  tsc_.save_state(w);
  st_shmem_.save_state(w);
  for (auto& vm : vms_) vm->save_state(w);
  monitor_.save_state(w);
}

void Ecd::load_state(sim::StateReader& r) {
  tsc_.load_state(r);
  st_shmem_.load_state(r);
  for (auto& vm : vms_) vm->load_state(r);
  monitor_.load_state(r);
}

std::size_t Ecd::live_events() const {
  std::size_t n = monitor_.live_events();
  for (const auto& vm : vms_) n += vm->live_events();
  return n;
}

void Ecd::ff_park() {
  for (auto& vm : vms_) vm->ff_park();
  monitor_.ff_park();
}

void Ecd::ff_advance(const sim::FfWindow& w) {
  for (auto& vm : vms_) vm->ff_advance(w);
  monitor_.ff_advance(w);
}

void Ecd::ff_resume() {
  for (auto& vm : vms_) vm->ff_resume();
  monitor_.ff_resume();
}

} // namespace tsn::hv
