#include "hv/ecd.hpp"

namespace tsn::hv {

Ecd::Ecd(sim::Simulation& sim, const EcdConfig& cfg, obs::ObsContext obs)
    : sim_(sim),
      cfg_(cfg),
      obs_(obs),
      tsc_(sim, cfg.tsc, cfg.name + "/tsc"),
      monitor_(sim, st_shmem_, tsc_, cfg.monitor, cfg.name + "/monitor", obs) {}

ClockSyncVm& Ecd::add_clock_sync_vm(const ClockSyncVmConfig& cfg) {
  vms_.push_back(std::make_unique<ClockSyncVm>(sim_, st_shmem_, tsc_, cfg, vms_.size(), obs_));
  monitor_.add_vm(vms_.back().get());
  return *vms_.back();
}

void Ecd::start() {
  for (auto& vm : vms_) vm->boot(/*first_boot=*/true);
  if (!vms_.empty()) {
    st_shmem_.set_active_vm(0);
    vms_[0]->set_active(true);
  }
  monitor_.start();
}

} // namespace tsn::hv
