// An edge computing device (ECD): the ACRN-virtualized node of the paper's
// testbed. Hosts the hypervisor state (TSC, STSHMEM, monitor) and the
// clock synchronization VMs. The integrated TSN switch is modelled
// separately (net::Switch + gptp::TimeAwareBridge) and wired up by the
// experiment scenario builder.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hv/clock_sync_vm.hpp"
#include "hv/monitor.hpp"
#include "hv/st_shmem.hpp"
#include "obs/obs.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::hv {

struct EcdConfig {
  std::string name;
  /// The platform TSC: free-running, never servo-adjusted.
  time::PhcModel tsc;
  MonitorConfig monitor;
};

class Ecd : public sim::Persistent {
 public:
  Ecd(sim::Simulation& sim, const EcdConfig& cfg, obs::ObsContext obs = {});

  Ecd(const Ecd&) = delete;
  Ecd& operator=(const Ecd&) = delete;

  /// Add a clock synchronization VM; the first added VM is initially active.
  ClockSyncVm& add_clock_sync_vm(const ClockSyncVmConfig& cfg);

  /// Boot all VMs (cold) and start the monitor. VM 0 starts publishing.
  void start();

  const std::string& name() const { return cfg_.name; }
  /// The Simulation this ECD schedules on (its region's, when the scenario
  /// is partitioned; the single shared one otherwise).
  sim::Simulation& sim() { return sim_; }
  time::PhcClock& tsc() { return tsc_; }
  StShmem& st_shmem() { return st_shmem_; }
  HvMonitor& monitor() { return monitor_; }
  std::size_t vm_count() const { return vms_.size(); }
  ClockSyncVm& vm(std::size_t idx) { return *vms_.at(idx); }

  /// CLOCK_SYNCTIME as a co-located application VM would read it.
  std::optional<std::int64_t> read_synctime() { return hv::read_synctime(st_shmem_, tsc_.read()); }

  // -- sim::Persistent: the ECD is one snapshot/ff unit. Internal order
  // mirrors boot order (VMs in index order, then the monitor) so the
  // re-armed chains keep their relative event ordering.
  const char* persist_name() const override { return cfg_.name.c_str(); }
  void save_state(sim::StateWriter& w) override;
  void load_state(sim::StateReader& r) override;
  std::size_t live_events() const override;
  void ff_park() override;
  void ff_advance(const sim::FfWindow& w) override;
  void ff_resume() override;

 private:
  sim::Simulation& sim_;
  EcdConfig cfg_;
  obs::ObsContext obs_;
  time::PhcClock tsc_;
  StShmem st_shmem_;
  HvMonitor monitor_;
  std::vector<std::unique_ptr<ClockSyncVm>> vms_;
};

} // namespace tsn::hv
