#include "hv/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "sim/persist.hpp"
#include "util/log.hpp"

namespace tsn::hv {

HvMonitor::HvMonitor(sim::Simulation& sim, StShmem& shmem, time::PhcClock& tsc,
                     const MonitorConfig& cfg, const std::string& name, obs::ObsContext obs)
    : sim_(sim), shmem_(shmem), tsc_(tsc), cfg_(cfg), name_(name) {
  bind_metrics(obs);
}

void HvMonitor::bind_metrics(obs::ObsContext obs) {
  obs::MetricsRegistry* reg = obs.metrics;
  if (!reg) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    reg = own_metrics_.get();
  }
  const std::string p = name_ + ".";
  c_checks_ = &reg->counter(p + "checks");
  c_failures_ = &reg->counter(p + "failures_detected");
  c_takeovers_ = &reg->counter(p + "takeovers");
  c_recoveries_ = &reg->counter(p + "recoveries");
  c_sanity_failures_ = &reg->counter(p + "param_sanity_failures");
  c_vote_exclusions_ = &reg->counter(p + "vote_exclusions");
  c_no_successor_ = &reg->counter(p + "no_successor");
  trace_ = obs.trace;
  if (trace_) trace_src_ = trace_->intern(name_);
}

void HvMonitor::trace(obs::TraceKind kind, std::uint32_t a, std::int64_t v0,
                      std::int64_t v1) const {
  if (!trace_) return;
  obs::TraceRecord rec;
  rec.t_ns = sim_.now().ns();
  rec.kind = kind;
  rec.source = trace_src_;
  rec.a = a;
  rec.v0 = v0;
  rec.v1 = v1;
  trace_->push(rec);
}

MonitorStats HvMonitor::stats() const {
  MonitorStats s;
  s.checks = c_checks_->value();
  s.failures_detected = c_failures_->value();
  s.takeovers = c_takeovers_->value();
  s.recoveries = c_recoveries_->value();
  s.param_sanity_failures = c_sanity_failures_->value();
  s.vote_exclusions = c_vote_exclusions_->value();
  s.no_successor = c_no_successor_->value();
  return s;
}

void HvMonitor::start() {
  failed_.assign(vms_.size(), false);
  voted_out_.assign(vms_.size(), false);
  no_successor_latched_ = false;
  periodic_ = sim_.every(sim_.now() + cfg_.period_ns, cfg_.period_ns,
                         [this](sim::SimTime) { check(); });
}

void HvMonitor::stop() { periodic_.cancel(); }

void HvMonitor::save_state(sim::StateWriter& w) const {
  w.b(periodic_.active());
  w.i64(periodic_.next_due_ns());
  w.u64(failed_.size());
  for (const bool f : failed_) w.b(f);
  for (const bool v : voted_out_) w.b(v);
  w.b(no_successor_latched_);
}

void HvMonitor::load_state(sim::StateReader& r) {
  const bool active = r.b();
  const std::int64_t due = r.i64();
  const std::uint64_t n = r.u64();
  failed_.assign(n, false);
  for (std::uint64_t i = 0; i < n; ++i) failed_[i] = r.b();
  voted_out_.assign(n, false);
  for (std::uint64_t i = 0; i < n; ++i) voted_out_[i] = r.b();
  no_successor_latched_ = r.b();
  periodic_ = {};
  if (active) {
    periodic_ = sim_.every(
        sim::SimTime{sim::align_phase(due, cfg_.period_ns, sim_.now().ns())},
        cfg_.period_ns, [this](sim::SimTime) { check(); });
  }
}

void HvMonitor::ff_park() {
  parked_running_ = periodic_.active();
  park_due_ns_ = periodic_.next_due_ns();
  periodic_.cancel();
}

void HvMonitor::ff_resume() {
  if (!parked_running_) return;
  parked_running_ = false;
  periodic_ = sim_.every(
      sim::SimTime{sim::align_phase(park_due_ns_, cfg_.period_ns, sim_.now().ns())},
      cfg_.period_ns, [this](sim::SimTime) { check(); });
}

void HvMonitor::check() {
  c_checks_->inc();
  const std::int64_t tsc_now = tsc_.read();

  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const std::int64_t age = shmem_.heartbeat_age(i, tsc_now);
    const bool alive = age <= cfg_.heartbeat_timeout_ns;
    if (!alive && !failed_[i]) {
      failed_[i] = true;
      c_failures_->inc();
      TSN_LOG_INFO("hv-mon", "%s: VM %zu (%s) fail-silent", name_.c_str(), i,
                   vms_[i]->name().c_str());
      trace(obs::TraceKind::kHeartbeatMiss, static_cast<std::uint32_t>(i), age, 0);
      if (on_vm_failure) on_vm_failure(i);
    } else if (alive && failed_[i]) {
      failed_[i] = false;
      c_recoveries_->inc();
      trace(obs::TraceKind::kVmRecovery, static_cast<std::uint32_t>(i), age, 0);
      if (on_vm_recovery) on_vm_recovery(i);
    }
  }

  // Parameter sanity check on the active publisher (cheap voting-lite; the
  // full 2f+1 vote needs more redundant VMs than the testbed could host).
  // Reads the VM's *candidate* parameters, which every running VM keeps
  // publishing whether or not it owns CLOCK_SYNCTIME: once the check
  // deactivates the publisher the published params freeze, but the
  // candidate stream keeps reflecting the VM's actual state, so a later
  // recovery is observable.
  const std::size_t active = shmem_.active_vm();
  if (cfg_.max_rate_error > 0.0 && active < failed_.size() && !failed_[active]) {
    const SyncTimeParams p = shmem_.read_candidate(active);
    if (p.valid && std::abs(p.rate - 1.0) > cfg_.max_rate_error) {
      c_sanity_failures_->inc();
      failed_[active] = true;
      c_failures_->inc();
      if (on_vm_failure) on_vm_failure(active);
    }
  }

  majority_vote(tsc_now);

  if (active >= failed_.size()) return;

  if (failed_[active] || voted_out_[active]) {
    // Fail-over: the active VM is down or voted out; promote the
    // lowest-index healthy VM.
    bool promoted = false;
    for (std::size_t j = 0; j < vms_.size(); ++j) {
      if (failed_[j] || voted_out_[j] || j == active) continue;
      shmem_.set_active_vm(j);
      shmem_.bump_generation();
      vms_[active]->set_active(false);
      vms_[j]->takeover_irq();
      c_takeovers_->inc();
      no_successor_latched_ = false;
      TSN_LOG_INFO("hv-mon", "%s: takeover VM %zu -> VM %zu", name_.c_str(), active, j);
      trace(obs::TraceKind::kTakeover, static_cast<std::uint32_t>(j),
            static_cast<std::int64_t>(active), 0);
      if (on_takeover) on_takeover(j);
      promoted = true;
      break;
    }
    if (!promoted) {
      // No healthy successor: a failed VM must not keep maintaining
      // CLOCK_SYNCTIME, so suspend publication until somebody recovers.
      if (vms_[active]->is_active()) vms_[active]->set_active(false);
      if (!no_successor_latched_) {
        no_successor_latched_ = true;
        c_no_successor_->inc();
        TSN_LOG_INFO("hv-mon", "%s: VM %zu failed with no healthy successor", name_.c_str(),
                     active);
        trace(obs::TraceKind::kNoSuccessor, static_cast<std::uint32_t>(active), tsc_now, 0);
      }
    }
  } else {
    no_successor_latched_ = false;
    // The designated active VM is healthy again but was deactivated during
    // a no-successor episode (or rejoined after a vote-out): resume
    // CLOCK_SYNCTIME publication.
    if (vms_[active]->running() && !vms_[active]->is_active()) {
      vms_[active]->set_active(true);
      TSN_LOG_INFO("hv-mon", "%s: VM %zu reactivated", name_.c_str(), active);
    }
  }
}

void HvMonitor::majority_vote(std::int64_t tsc_now) {
  if (cfg_.vote_threshold_ns <= 0.0) return;
  // Collect the candidate CLOCK_SYNCTIME of every heartbeat-healthy VM.
  vote_views_.clear();
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    if (failed_[i]) continue;
    const SyncTimeParams p = shmem_.read_candidate(i);
    if (!p.valid) continue;
    const double v = static_cast<double>(p.base_sync) +
                     static_cast<double>(tsc_now - p.base_tsc) * p.rate;
    vote_views_.emplace_back(i, v);
  }
  if (vote_views_.size() < 3) return; // 2f+1 needs at least three opinions

  vote_scratch_.clear();
  for (const auto& [idx, v] : vote_views_) vote_scratch_.push_back(v);
  // True median: with an even number of opinions the midpoint of the two
  // central values, not the upper one -- otherwise two colluding fast
  // clocks in a 4-VM vote drag the "median" to their side and the honest
  // VMs get voted out.
  const std::size_t mid = vote_scratch_.size() / 2;
  std::nth_element(vote_scratch_.begin(), vote_scratch_.begin() + mid, vote_scratch_.end());
  double med = vote_scratch_[mid];
  if (vote_scratch_.size() % 2 == 0) {
    const double lower = *std::max_element(vote_scratch_.begin(), vote_scratch_.begin() + mid);
    med = 0.5 * (lower + med);
  }

  for (const auto& [idx, v] : vote_views_) {
    const double dev = std::abs(v - med);
    if (!voted_out_[idx] && dev > cfg_.vote_threshold_ns) {
      voted_out_[idx] = true;
      c_vote_exclusions_->inc();
      TSN_LOG_INFO("hv-mon", "%s: VM %zu (%s) voted out (dev %.0f ns)", name_.c_str(), idx,
                   vms_[idx]->name().c_str(), dev);
      trace(obs::TraceKind::kVoteExclusion, static_cast<std::uint32_t>(idx),
            static_cast<std::int64_t>(std::llround(dev)), 0);
      if (on_vote_exclusion) on_vote_exclusion(idx);
    } else if (voted_out_[idx] && dev <= cfg_.vote_threshold_ns / 2) {
      voted_out_[idx] = false; // rejoined the majority (hysteresis)
    }
  }
}

} // namespace tsn::hv
