#include "hv/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/log.hpp"

namespace tsn::hv {

HvMonitor::HvMonitor(sim::Simulation& sim, StShmem& shmem, time::PhcClock& tsc,
                     const MonitorConfig& cfg, const std::string& name)
    : sim_(sim), shmem_(shmem), tsc_(tsc), cfg_(cfg), name_(name) {}

void HvMonitor::start() {
  failed_.assign(vms_.size(), false);
  voted_out_.assign(vms_.size(), false);
  periodic_ = sim_.every(sim_.now() + cfg_.period_ns, cfg_.period_ns,
                         [this](sim::SimTime) { check(); });
}

void HvMonitor::stop() { periodic_.cancel(); }

void HvMonitor::check() {
  ++stats_.checks;
  const std::int64_t tsc_now = tsc_.read();

  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const bool alive = shmem_.heartbeat_age(i, tsc_now) <= cfg_.heartbeat_timeout_ns;
    if (!alive && !failed_[i]) {
      failed_[i] = true;
      ++stats_.failures_detected;
      TSN_LOG_INFO("hv-mon", "%s: VM %zu (%s) fail-silent", name_.c_str(), i,
                   vms_[i]->name().c_str());
      if (on_vm_failure) on_vm_failure(i);
    } else if (alive && failed_[i]) {
      failed_[i] = false;
      ++stats_.recoveries;
      if (on_vm_recovery) on_vm_recovery(i);
    }
  }

  // Parameter sanity check on the active publisher (cheap voting-lite; the
  // full 2f+1 vote needs more redundant VMs than the testbed could host).
  const std::size_t active = shmem_.active_vm();
  if (cfg_.max_rate_error > 0.0 && active < failed_.size() && !failed_[active]) {
    const SyncTimeParams p = shmem_.read_params();
    if (p.valid && std::abs(p.rate - 1.0) > cfg_.max_rate_error) {
      ++stats_.param_sanity_failures;
      failed_[active] = true;
      ++stats_.failures_detected;
      if (on_vm_failure) on_vm_failure(active);
    }
  }

  majority_vote(tsc_now);

  // Fail-over: the active VM is down or voted out; promote the
  // lowest-index healthy VM.
  if (active < failed_.size() && (failed_[active] || voted_out_[active])) {
    for (std::size_t j = 0; j < vms_.size(); ++j) {
      if (failed_[j] || voted_out_[j] || j == active) continue;
      shmem_.set_active_vm(j);
      shmem_.bump_generation();
      vms_[active]->set_active(false);
      vms_[j]->takeover_irq();
      ++stats_.takeovers;
      TSN_LOG_INFO("hv-mon", "%s: takeover VM %zu -> VM %zu", name_.c_str(), active, j);
      if (on_takeover) on_takeover(j);
      break;
    }
  }
}

void HvMonitor::majority_vote(std::int64_t tsc_now) {
  if (cfg_.vote_threshold_ns <= 0.0) return;
  // Collect the candidate CLOCK_SYNCTIME of every heartbeat-healthy VM.
  std::vector<std::pair<std::size_t, double>> views;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    if (failed_[i]) continue;
    const SyncTimeParams p = shmem_.read_candidate(i);
    if (!p.valid) continue;
    const double v = static_cast<double>(p.base_sync) +
                     static_cast<double>(tsc_now - p.base_tsc) * p.rate;
    views.emplace_back(i, v);
  }
  if (views.size() < 3) return; // 2f+1 needs at least three opinions

  std::vector<double> sorted;
  for (const auto& [idx, v] : views) sorted.push_back(v);
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
  const double med = sorted[sorted.size() / 2];

  for (const auto& [idx, v] : views) {
    const double dev = std::abs(v - med);
    if (!voted_out_[idx] && dev > cfg_.vote_threshold_ns) {
      voted_out_[idx] = true;
      ++stats_.vote_exclusions;
      TSN_LOG_INFO("hv-mon", "%s: VM %zu (%s) voted out (dev %.0f ns)", name_.c_str(), idx,
                   vms_[idx]->name().c_str(), dev);
      if (on_vote_exclusion) on_vote_exclusion(idx);
    } else if (voted_out_[idx] && dev <= cfg_.vote_threshold_ns / 2) {
      voted_out_[idx] = false; // rejoined the majority (hysteresis)
    }
  }
}

} // namespace tsn::hv
