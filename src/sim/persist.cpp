#include "sim/persist.hpp"

#include <sstream>

namespace tsn::sim {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
} // namespace

void StateWriter::put(const void* p, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), bytes, bytes + n);
  for (std::size_t i = 0; i < n; ++i) {
    hash_ ^= bytes[i];
    hash_ *= kFnvPrime;
  }
}

void StateWriter::begin_section(std::string_view name) {
  // The marker byte keeps a section boundary from being confused with
  // string payload of the previous section.
  u8(0xA5);
  str(name);
}

void StateWriter::rng(const util::RngStream& s) {
  std::ostringstream os;
  os << const_cast<util::RngStream&>(s).engine();
  str(os.str());
}

void StateReader::get(void* p, std::size_t n) {
  if (pos_ + n > buf_.size()) {
    throw std::runtime_error("StateReader: archive truncated");
  }
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

void StateReader::begin_section(std::string_view name) {
  if (u8() != 0xA5) {
    throw std::runtime_error("StateReader: bad section marker before '" + std::string(name) + "'");
  }
  const std::string found = str();
  if (found != name) {
    throw std::runtime_error("StateReader: expected section '" + std::string(name) +
                             "', found '" + found + "'");
  }
}

void StateReader::rng(util::RngStream& s) {
  std::istringstream is(str());
  is >> s.engine();
  if (!is) throw std::runtime_error("StateReader: bad RNG engine state");
}

} // namespace tsn::sim
