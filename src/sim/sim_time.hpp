// Simulated true time.
//
// SimTime is the simulator's notion of *true* (perfect) time in integer
// nanoseconds since experiment start. Every physical clock in the system is
// a function of SimTime; no component other than the clock models may ever
// treat SimTime as observable.
#pragma once

#include <compare>
#include <cstdint>

namespace tsn::sim {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(std::int64_t dt_ns) const { return SimTime(ns_ + dt_ns); }
  constexpr SimTime operator-(std::int64_t dt_ns) const { return SimTime(ns_ - dt_ns); }
  constexpr std::int64_t operator-(SimTime other) const { return ns_ - other.ns_; }
  SimTime& operator+=(std::int64_t dt_ns) { ns_ += dt_ns; return *this; }

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

 private:
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr std::int64_t operator""_ns(unsigned long long v) { return static_cast<std::int64_t>(v); }
constexpr std::int64_t operator""_us(unsigned long long v) { return static_cast<std::int64_t>(v) * 1'000; }
constexpr std::int64_t operator""_ms(unsigned long long v) { return static_cast<std::int64_t>(v) * 1'000'000; }
constexpr std::int64_t operator""_s(unsigned long long v) { return static_cast<std::int64_t>(v) * 1'000'000'000; }
constexpr std::int64_t operator""_min(unsigned long long v) { return static_cast<std::int64_t>(v) * 60'000'000'000; }
constexpr std::int64_t operator""_h(unsigned long long v) { return static_cast<std::int64_t>(v) * 3'600'000'000'000; }
} // namespace literals

} // namespace tsn::sim
