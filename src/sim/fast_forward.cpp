#include "sim/fast_forward.hpp"

#include <algorithm>
#include <cassert>

#include "sim/simulation.hpp"

namespace tsn::sim {

FfController::FfController(Simulation& sim, FfConfig cfg)
    : sim_(sim), cfg_(cfg) {
  assert(cfg_.min_window_ns > cfg_.drain_span_ns);
  assert(cfg_.check_period_ns > 0);
}

void FfController::add_participant(Persistent* p) { participants_.push_back(p); }

void FfController::add_barrier(std::function<std::int64_t(std::int64_t)> next_after) {
  barriers_.push_back(std::move(next_after));
}

void FfController::set_model_quiescent(std::function<bool()> fn) {
  model_quiescent_ = std::move(fn);
}

void FfController::set_analytic_prepare(std::function<void(std::int64_t)> fn) {
  analytic_prepare_ = std::move(fn);
}

void FfController::set_analytic_advance(std::function<void(std::int64_t, std::int64_t)> fn) {
  analytic_advance_ = std::move(fn);
}

std::size_t FfController::expected_live() const {
  std::size_t n = 0;
  for (const Persistent* p : participants_) n += p->live_events();
  return n;
}

std::int64_t FfController::next_barrier(std::int64_t after) const {
  std::int64_t b = INT64_MAX;
  for (const auto& fn : barriers_) b = std::min(b, fn(after));
  return b;
}

bool FfController::quiescent() {
  ++stats_.checks;
  if (model_quiescent_ && !model_quiescent_()) {
    ++stats_.blocked_model;
    return false;
  }
  if (sim_.queue().live_size() != expected_live()) {
    ++stats_.blocked_events;
    return false;
  }
  return true;
}

std::uint64_t FfController::enter_window(std::int64_t to_ns) {
  const std::int64_t park_ns = sim_.now().ns();
  if (analytic_prepare_) analytic_prepare_(park_ns);
  for (Persistent* p : participants_) p->ff_park();
  // Every parked chain still has one already-posted closure in the queue;
  // run far enough that each pops as a no-op. Barrier events (pending
  // faults / attack edges) lie beyond the window, so they survive.
  const std::uint64_t drained =
      sim_.run_until(SimTime{park_ns + cfg_.drain_span_ns});
  if (analytic_advance_) analytic_advance_(sim_.now().ns(), to_ns);
  sim_.advance_to(SimTime{to_ns});
  // The window spans from park time: state shifted by span_ns() keeps the
  // same age relative to now() that it had at park (e.g. last-Sync-rx
  // stamps and shmem freshness stay classified exactly as at entry).
  const FfWindow w{park_ns, to_ns};
  for (Persistent* p : participants_) p->ff_advance(w);
  for (Persistent* p : participants_) p->ff_resume();
  windows_.push_back(w);
  ++stats_.windows;
  stats_.skipped_ns += w.span_ns();
  return drained;
}

std::uint64_t FfController::run_to(SimTime limit) {
  std::uint64_t n = 0;
  while (sim_.now() < limit) {
    const std::int64_t now = sim_.now().ns();
    if (now < cfg_.settle_ns) {
      n += sim_.run_until(SimTime{std::min(limit.ns(), cfg_.settle_ns)});
      continue;
    }
    const std::int64_t target = std::min(next_barrier(now), limit.ns());
    if (target - now < cfg_.min_window_ns) {
      // Too close to a barrier (or the limit) for a window to pay off:
      // simulate through it, then step one check period past so the
      // barrier's own events fire before the next lookahead.
      n += sim_.run_until(SimTime{target});
      if (sim_.now() < limit) {
        n += sim_.run_until(
            SimTime{std::min(limit.ns(), sim_.now().ns() + cfg_.check_period_ns)});
      }
      continue;
    }
    if (!quiescent()) {
      n += sim_.run_until(SimTime{std::min(target, now + cfg_.check_period_ns)});
      continue;
    }
    n += enter_window(target);
    // The window ended exactly at a barrier (or the limit). Events due at
    // this very instant -- the barrier's own kill / reboot / attack edge --
    // have not fired yet, and next_barrier() looks strictly beyond now, so
    // without this step the next lookahead could re-enter a window whose
    // drain swallows the barrier event while the monitor and the oracle
    // suite are parked. Simulate one check period with everyone live so
    // the edge lands under full observation before the next decision.
    if (sim_.now() < limit) {
      n += sim_.run_until(
          SimTime{std::min(limit.ns(), sim_.now().ns() + cfg_.check_period_ns)});
    }
  }
  return n;
}

} // namespace tsn::sim
