#include "sim/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sweep/thread_pool.hpp"

// Conservative-sync protocol contracts (no send below the sender's promise
// plus lookahead, no arrival below the destination's promise). Plain
// assert() normally -- free in Release builds -- but -DTSN_FORCE_CONTRACTS
// keeps them armed regardless of NDEBUG so CI can run the partition
// determinism matrix on an optimized build with the contracts enforced.
#if defined(TSN_FORCE_CONTRACTS)
#define TSN_CONTRACT(cond, msg)                                                   \
  do {                                                                            \
    if (!(cond)) {                                                                \
      std::fprintf(stderr, "partition contract violated: %s (%s:%d)\n", msg,      \
                   __FILE__, __LINE__);                                           \
      std::abort();                                                               \
    }                                                                             \
  } while (0)
#else
#define TSN_CONTRACT(cond, msg) assert((cond) && msg)
#endif

namespace tsn::sim {
namespace {

/// Which region the calling thread is executing right now (SIZE_MAX = not
/// inside region execution). One slot per thread is enough: regions never
/// nest.
thread_local std::size_t t_current_region = SIZE_MAX;

void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_release,
                                  std::memory_order_relaxed)) {
  }
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (a >= INT64_MAX - b) return INT64_MAX;
  return a + b;
}

} // namespace

void Channel::push(SimTime at, RemoteFn&& fn) {
  Msg m{at, (1ull << 63) | (static_cast<std::uint64_t>(id_) << 40) |
                next_seq_++,
        std::move(fn)};
  if (!overflowed_.load(std::memory_order_relaxed)) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) < kRingSize) {
      ring_[t & kRingMask] = std::move(m);
      tail_.store(t + 1, std::memory_order_release);
      return;
    }
  }
  std::lock_guard<std::mutex> g(overflow_mu_);
  overflow_.push_back(std::move(m));
  overflowed_.store(true, std::memory_order_release);
}

PartitionRuntime::PartitionRuntime(std::size_t regions,
                                   std::uint64_t master_seed,
                                   std::size_t workers) {
  assert(regions >= 1);
  regions_.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    regions_.push_back(std::make_unique<Region>(r, master_seed));
  }
  workers_ = std::max<std::size_t>(1, std::min(workers, regions));
  if (workers_ > 1) pool_ = std::make_unique<sweep::ThreadPool>(workers_);
}

PartitionRuntime::~PartitionRuntime() = default;

std::uint32_t PartitionRuntime::add_channel(std::size_t src, std::size_t dst,
                                            std::int64_t min_delay_ns) {
  assert(src < regions_.size() && dst < regions_.size() && src != dst);
  TSN_CONTRACT(min_delay_ns > 0, "conservative lookahead requires positive delay");
  const auto id = static_cast<std::uint32_t>(channels_.size());
  channels_.push_back(std::make_unique<Channel>(id, src, dst, min_delay_ns));
  Channel* ch = channels_.back().get();
  regions_[src]->out.push_back(ch);
  regions_[dst]->in.push_back(ch);
  return id;
}

std::uint32_t PartitionRuntime::control_channel(std::size_t src,
                                                std::size_t dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  for (const auto& [k, id] : control_ids_) {
    if (k == key) return id;
  }
  const std::uint32_t id = add_channel(src, dst, kControlLookaheadNs);
  control_ids_.emplace_back(key, id);
  return id;
}

void PartitionRuntime::post_remote(std::uint32_t channel_id, SimTime at,
                                   RemoteFn fn) {
  Channel& ch = *channels_[channel_id];
  TSN_CONTRACT(t_current_region == ch.src(),
               "post_remote must run inside the channel's source region");
  TSN_CONTRACT(at.ns() >=
                   regions_[ch.src()]->sim.now().ns() + ch.min_delay_ns(),
               "post_remote violates the channel's lookahead contract");
  TSN_CONTRACT(at.ns() >=
                   regions_[ch.src()]->safe_until.load(std::memory_order_relaxed) +
                       ch.min_delay_ns(),
               "send undercuts the source region's own published promise");
  in_flight_.fetch_add(1, std::memory_order_release);
  ch.push(at, std::move(fn));
}

void PartitionRuntime::post_control(std::size_t dst_region, SimTime at,
                                    RemoteFn fn) {
  const std::size_t src = t_current_region;
  TSN_CONTRACT(src != SIZE_MAX, "post_control outside region execution");
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst_region;
  for (const auto& [k, id] : control_ids_) {
    if (k == key) {
      post_remote(id, at, std::move(fn));
      return;
    }
  }
  TSN_CONTRACT(false, "no control channel declared for this region pair");
}

std::size_t PartitionRuntime::current_region() { return t_current_region; }

void PartitionRuntime::enqueue_remote(Region& region, Channel::Msg&& msg) {
  // A message below the destination's own promise means some promise
  // upstream lied (the 625 ms stage-init bug was exactly this shape);
  // below now() it is already too late to order correctly.
  TSN_CONTRACT(msg.at.ns() >=
                   region.safe_until.load(std::memory_order_relaxed),
               "arrival below the destination region's published promise");
  TSN_CONTRACT(msg.at.ns() >= region.sim.now().ns(),
               "arrival behind the destination region's clock");
  std::uint32_t slot;
  if (!region.parked_free.empty()) {
    slot = region.parked_free.back();
    region.parked_free.pop_back();
    region.parked[slot] = std::move(msg.fn);
  } else {
    slot = static_cast<std::uint32_t>(region.parked.size());
    region.parked.push_back(std::move(msg.fn));
  }
  Region* reg = &region;
  region.sim.queue().post_keyed(msg.at, msg.key, [reg, slot] {
    RemoteFn fn = std::move(reg->parked[slot]);
    reg->parked_free.push_back(slot);
    fn();
  });
}

bool PartitionRuntime::step_region(Region& region, SimTime limit) {
  // 1. Horizon from the neighbors' current promises. Reading U *before*
  //    draining is what makes the later execute step safe: any message
  //    not yet visible to the drain was sent by an event at or after the
  //    snapshotted promise, so it arrives at or after this EIT.
  std::int64_t eit = INT64_MAX;
  for (const Channel* c : region.in) {
    const std::int64_t u =
        regions_[c->src()]->safe_until.load(std::memory_order_acquire);
    eit = std::min(eit, sat_add(u, c->min_delay_ns()));
  }

  // 2. Drain mailboxes into the region queue (explicitly keyed, so the
  //    insertion moment never affects ordering).
  std::size_t drained = 0;
  for (Channel* c : region.in) {
    drained += c->drain(
        [this, &region](Channel::Msg&& m) { enqueue_remote(region, std::move(m)); });
  }

  // 3. Execute the safe window: strictly below EIT, at most to the limit.
  std::uint64_t ran = 0;
  if (region.sim.next_event_ns() < eit &&
      region.sim.next_event_ns() <= limit.ns()) {
    t_current_region = region.index;
    if (scope_hook_) scope_hook_(region.index, true);
    ran = region.sim.run_ready(limit, eit);
    if (scope_hook_) scope_hook_(region.index, false);
    t_current_region = SIZE_MAX;
  }

  // 4. Publish. next_event must be visible before in_flight_ drops, so a
  //    zero in-flight count guarantees every delivered message is already
  //    reflected in a published value (the leap relies on this).
  const std::int64_t next = region.sim.next_event_ns();
  region.next_event.store(next, std::memory_order_release);
  atomic_max(region.safe_until, std::min(next, eit));
  if (drained > 0) {
    in_flight_.fetch_sub(static_cast<std::int64_t>(drained),
                         std::memory_order_release);
  }
  return ran > 0 || drained > 0;
}

bool PartitionRuntime::try_leap(SimTime limit) {
  // Published next_event values are lower bounds at all times (execution
  // only consumes the published minimum and schedules at or after it), so
  // a leap to their minimum is always safe; it is *exact* — and therefore
  // guarantees progress or detects stage completion — once no message is
  // in flight.
  if (in_flight_.load(std::memory_order_acquire) != 0) return false;
  std::unique_lock<std::mutex> lk(leap_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return false;
  if (in_flight_.load(std::memory_order_acquire) != 0) return false;

  std::int64_t g = INT64_MAX;
  for (const auto& r : regions_) {
    g = std::min(g, r->next_event.load(std::memory_order_acquire));
  }
  if (g > limit.ns()) {
    stage_done_.store(true, std::memory_order_release);
    return true;
  }
  bool raised = false;
  for (const auto& r : regions_) {
    if (r->safe_until.load(std::memory_order_relaxed) < g) {
      atomic_max(r->safe_until, g);
      raised = true;
    }
  }
  return raised;
}

void PartitionRuntime::shard_loop(std::size_t shard, SimTime limit) {
  int idle = 0;
  while (!stage_done_.load(std::memory_order_acquire)) {
    bool progressed = false;
    for (std::size_t r = shard; r < regions_.size(); r += workers_) {
      progressed = step_region(*regions_[r], limit) || progressed;
    }
    if (progressed || try_leap(limit)) {
      idle = 0;
      continue;
    }
    if (++idle > 32) std::this_thread::yield();
  }
}

std::uint64_t PartitionRuntime::run_until(SimTime limit) {
  assert(limit >= now_);
  const std::uint64_t before = events_executed();
  // Stage init: publish exact next-event times, but promise only the
  // global minimum. A region's own next event is NOT a valid promise: a
  // quiet region mid-path (say a pure forwarder whose next timer is far
  // out) can be made to act much earlier by an arrival, and a promise
  // above that arrival would cascade through every neighbor's horizon —
  // promises only ever rise within a stage. The global minimum is safe
  // for everyone (no event exists anywhere before it, and input-driven
  // action additionally pays a channel delay); the first steps raise the
  // promises from there, input-capped. Resetting here is also what lets
  // events scheduled between stages — by the driving thread, at or after
  // the previous limit — lower a region's horizon again.
  std::int64_t init_floor = INT64_MAX;
  for (const auto& r : regions_) {
    const std::int64_t next = r->sim.next_event_ns();
    r->next_event.store(next, std::memory_order_relaxed);
    init_floor = std::min(init_floor, next);
  }
  for (const auto& r : regions_) {
    r->safe_until.store(init_floor, std::memory_order_relaxed);
  }
  stage_done_.store(false, std::memory_order_relaxed);
  if (!pool_) {
    shard_loop(0, limit);
  } else {
    for (std::size_t s = 0; s < workers_; ++s) {
      pool_->submit([this, s, limit] { shard_loop(s, limit); });
    }
    pool_->wait_idle();
  }
  for (const auto& r : regions_) r->sim.advance_to(limit);
  now_ = limit;
  return events_executed() - before;
}

std::uint64_t PartitionRuntime::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& r : regions_) n += r->sim.events_executed();
  return n;
}

} // namespace tsn::sim
