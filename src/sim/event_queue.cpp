#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>

namespace tsn::sim {

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  slot_gen_.reserve(n);
  free_slots_.reserve(n);
  active_.reserve(n);
  nodes_.reserve(n);
}

void EventQueue::clear() {
  active_.clear();
  active_pos_ = 0;
  staged_.clear();
  scratch_.clear();
  for (auto& level : bucket_head_) level.fill(kNone);
  for (auto& level : bitmap_) level.fill(0);
  wheel_count_ = 0;
  for (auto& node : nodes_) node.entry.fn.reset();
  nodes_.clear();
  node_free_ = kNone;
  heap_.clear();
  // Bump every slot generation so outstanding EventHandles turn into
  // harmless no-ops, then return all slots to the free list in a fixed
  // order -- slot indices never influence pop order, but determinism is
  // cheap to keep everywhere.
  for (auto& g : slot_gen_) ++g;
  free_slots_.clear();
  for (std::uint32_t s = 0; s < slot_gen_.size(); ++s) free_slots_.push_back(s);
  live_ = 0;
  // cur_ (activation cursor) and next_seq_ stay: restore re-arms events at
  // or after the restored now(), and behind-cursor inserts go to staging
  // with pop order unchanged; stats_ are lifetime totals.
}

std::uint32_t EventQueue::alloc_node(SimTime at, std::uint64_t seq,
                                     std::uint32_t slot, std::uint32_t gen,
                                     EventFn&& fn) {
  if (node_free_ != kNone) {
    const std::uint32_t idx = node_free_;
    node_free_ = nodes_[idx].next;
    Entry& e = nodes_[idx].entry;
    e.time = at;
    e.seq = seq;
    e.slot = slot;
    e.gen = gen;
    e.fn = std::move(fn);
    return idx;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{Entry{at, seq, slot, gen, std::move(fn)}, kNone});
  return idx;
}

void EventQueue::free_node(std::uint32_t idx) {
  nodes_[idx].entry.fn.reset(); // drop captures while the node idles
  nodes_[idx].next = node_free_;
  node_free_ = idx;
}

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.push_back(0);
  }
  const std::uint32_t gen = slot_gen_[slot];
  insert(at, slot, gen, std::move(fn));
  ++live_;
  ++stats_.scheduled;
  return EventHandle(this, slot, gen);
}

void EventQueue::post(SimTime at, EventFn fn) {
  insert(at, kNoSlot, 0, std::move(fn));
  ++live_;
  ++stats_.posted;
}

void EventQueue::post_keyed(SimTime at, std::uint64_t seq, EventFn fn) {
  assert((seq >> 63) != 0 &&
         "caller-supplied keys live in the upper half of the sequence "
         "space, above every internal insertion counter value");
  insert_with_seq(at, seq, kNoSlot, 0, std::move(fn));
  ++live_;
  ++stats_.posted;
}

void EventQueue::insert(SimTime at, std::uint32_t slot, std::uint32_t gen,
                        EventFn&& fn) {
  insert_with_seq(at, next_seq_++, slot, gen, std::move(fn));
}

void EventQueue::insert_with_seq(SimTime at, std::uint64_t seq,
                                 std::uint32_t slot, std::uint32_t gen,
                                 EventFn&& fn) {
  const Key k{at, seq, alloc_node(at, seq, slot, gen, std::move(fn))};
  const std::int64_t t = at.ns();
  if (t < cur_) {
    // Behind the activated window (e.g. scheduled "now" while draining the
    // current bucket). Staged unsorted; merged into the window at the next
    // ordered lookup.
    staged_.push_back(k);
    ++stats_.staged_inserts;
  } else if ((t >> kShift[2]) - (cur_ >> kShift[2]) < kSlots) {
    place(k);
    ++wheel_count_;
    ++stats_.wheel_inserts;
  } else {
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++stats_.heap_spills;
  }
}

void EventQueue::place(Key k) {
  const std::int64_t t = k.time.ns();
  if ((t >> kShift[1]) == (cur_ >> kShift[1])) {
    add_bucket(0, t >> kShift[0], k.node); // within current L1 bucket
  } else if ((t >> kShift[2]) == (cur_ >> kShift[2])) {
    add_bucket(1, t >> kShift[1], k.node); // within current L2 bucket
  } else {
    add_bucket(2, t >> kShift[2], k.node);
  }
}

void EventQueue::add_bucket(int level, std::int64_t abs_idx,
                            std::uint32_t node) {
  const std::int64_t slot = abs_idx & kSlotMask;
  nodes_[node].next = bucket_head_[level][static_cast<std::size_t>(slot)];
  bucket_head_[level][static_cast<std::size_t>(slot)] = node;
  bitmap_[level][static_cast<std::size_t>(slot >> 6)] |= 1ull << (slot & 63);
}

/// First occupied bucket of `level` with absolute index in [from, limit),
/// or -1. Scans the occupancy bitmap a word at a time (ring addressing).
std::int64_t EventQueue::next_set(int level, std::int64_t from,
                                  std::int64_t limit) const {
  std::int64_t n = limit - from;
  if (n <= 0) return -1;
  if (n > kSlots) n = kSlots;
  const auto& bm = bitmap_[level];
  std::int64_t pos = from;
  while (n > 0) {
    const std::int64_t slot = pos & kSlotMask;
    const int bit = static_cast<int>(slot & 63);
    const std::uint64_t word = bm[static_cast<std::size_t>(slot >> 6)] &
                               (~0ull << bit);
    const std::int64_t take = std::min<std::int64_t>(n, 64 - bit);
    if (word != 0) {
      const int b = std::countr_zero(word);
      if (b - bit < take) return pos + (b - bit);
    }
    pos += take;
    n -= take;
  }
  return -1;
}

void EventQueue::activate(std::int64_t abs_l0_idx) {
  const std::int64_t slot = abs_l0_idx & kSlotMask;
  bitmap_[0][static_cast<std::size_t>(slot >> 6)] &= ~(1ull << (slot & 63));
  // Drain the bucket's node list into the (recycled) active_ key buffer
  // and sort it into pop order; the nodes stay put until their entry is
  // popped (or reclaimed as cancelled).
  active_.clear();
  active_pos_ = 0;
  std::uint32_t idx = bucket_head_[0][static_cast<std::size_t>(slot)];
  bucket_head_[0][static_cast<std::size_t>(slot)] = kNone;
  while (idx != kNone) {
    const Entry& e = nodes_[idx].entry;
    active_.push_back(Key{e.time, e.seq, idx});
    idx = nodes_[idx].next;
  }
  wheel_count_ -= active_.size();
  std::sort(active_.begin(), active_.end(), Earlier{});
  cur_ = (abs_l0_idx + 1) << kShift[0];
}

void EventQueue::cascade(int level, std::int64_t abs_idx) {
  const std::int64_t slot = abs_idx & kSlotMask;
  bitmap_[level][static_cast<std::size_t>(slot >> 6)] &= ~(1ull << (slot & 63));
  cur_ = std::max(cur_, abs_idx << kShift[level]);
  ++stats_.cascades;
  // Redistribution is a pure relink: each node is unhooked from this
  // bucket's list and hooked into a lower-level one. Entries don't move.
  std::uint32_t idx = bucket_head_[level][static_cast<std::size_t>(slot)];
  bucket_head_[level][static_cast<std::size_t>(slot)] = kNone;
  while (idx != kNone) {
    const std::uint32_t next = nodes_[idx].next;
    const Entry& e = nodes_[idx].entry;
    place(Key{e.time, e.seq, idx});
    idx = next;
  }
}

/// Advance the cursor to the next occupied bucket and activate it.
/// Precondition: the active window is exhausted and staged_ is empty.
/// Returns false only when every wheel bucket is empty.
bool EventQueue::advance_wheel() {
  while (wheel_count_ > 0) {
    const std::int64_t c0 = cur_ >> kShift[0];
    const std::int64_t c1 = cur_ >> kShift[1];
    const std::int64_t c2 = cur_ >> kShift[2];
    // An activation that ends exactly on a bucket boundary rolls the
    // cursor into the next higher-level bucket without cascading it. The
    // scans below start past the cursor's own bucket, so an occupied
    // bucket sitting exactly at the cursor must be redistributed first —
    // otherwise its entries are skipped (and, once the ring index wraps,
    // would be re-placed behind the cursor out of order).
    if (bitmap_[2][static_cast<std::size_t>((c2 & kSlotMask) >> 6)] >>
            (c2 & 63) & 1) {
      cascade(2, c2);
      continue;
    }
    if (bitmap_[1][static_cast<std::size_t>((c1 & kSlotMask) >> 6)] >>
            (c1 & 63) & 1) {
      cascade(1, c1);
      continue;
    }
    // Next level-0 bucket within the current level-1 bucket.
    const std::int64_t a0 = next_set(0, c0, (c1 + 1) << kSlotBits);
    if (a0 >= 0) {
      activate(a0);
      return true;
    }
    // Next level-1 bucket within the current level-2 bucket.
    const std::int64_t a1 = next_set(1, c1 + 1, (c2 + 1) << kSlotBits);
    if (a1 >= 0) {
      cascade(1, a1);
      continue;
    }
    // Next level-2 bucket anywhere in the ring.
    const std::int64_t a2 = next_set(2, c2 + 1, c2 + kSlots);
    if (a2 >= 0) {
      cascade(2, a2);
      continue;
    }
    assert(false && "wheel_count_ > 0 but no occupied bucket");
    return false;
  }
  return false;
}

void EventQueue::merge_staged() {
  if (staged_.empty()) return;
  std::sort(staged_.begin(), staged_.end(), Earlier{});
  if (active_pos_ >= active_.size()) {
    active_.swap(staged_);
  } else {
    scratch_.clear();
    scratch_.reserve(active_.size() - active_pos_ + staged_.size());
    std::merge(active_.begin() + static_cast<std::ptrdiff_t>(active_pos_),
               active_.end(), staged_.begin(), staged_.end(),
               std::back_inserter(scratch_), Earlier{});
    active_.swap(scratch_);
  }
  staged_.clear();
  active_pos_ = 0;
}

void EventQueue::release_slot(std::uint32_t slot) {
  // Bumping the generation invalidates every outstanding handle (and any
  // stale buffered entry) referring to this incarnation of the slot.
  ++slot_gen_[slot];
  free_slots_.push_back(slot);
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_pending(slot, gen)) return;
  release_slot(slot);
  --live_;
  ++stats_.cancelled;
}

void EventQueue::drop_dead_heap() {
  while (!heap_.empty() && !key_live(heap_.front())) {
    free_node(heap_.front().node);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::purge_dead() {
  drop_dead_heap();
  while (active_pos_ < active_.size() && !key_live(active_[active_pos_])) {
    free_node(active_[active_pos_].node);
    ++active_pos_;
  }
}

EventQueue::Src EventQueue::locate() {
  merge_staged();
  for (;;) {
    while (active_pos_ < active_.size() && !key_live(active_[active_pos_])) {
      free_node(active_[active_pos_].node);
      ++active_pos_;
    }
    if (active_pos_ < active_.size()) break;
    if (wheel_count_ == 0) break;
    active_.clear();
    active_pos_ = 0;
    advance_wheel();
  }
  drop_dead_heap();
  const bool have_active = active_pos_ < active_.size();
  const bool have_heap = !heap_.empty();
  if (have_active && have_heap) {
    return Later{}(active_[active_pos_], heap_.front()) ? Src::kHeap
                                                        : Src::kActive;
  }
  if (have_active) return Src::kActive;
  return have_heap ? Src::kHeap : Src::kNone;
}

EventQueue::Popped EventQueue::pop_from(Src src) {
  Key k;
  if (src == Src::kActive) {
    k = active_[active_pos_++];
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    k = heap_.back();
    heap_.pop_back();
  }
  Entry& e = nodes_[k.node].entry;
  // Release before returning so pending() is false from the instant the
  // event is handed out — including while its own callback runs.
  if (e.slot != kNoSlot) release_slot(e.slot);
  Popped out{e.time, std::move(e.fn)};
  free_node(k.node);
  --live_;
  ++stats_.fired;
  return out;
}

SimTime EventQueue::next_time() {
  const Src src = locate();
  assert(src != Src::kNone);
  return src == Src::kActive ? active_[active_pos_].time : heap_.front().time;
}

std::optional<EventQueue::Popped> EventQueue::try_pop() {
  const Src src = locate();
  if (src == Src::kNone) return std::nullopt;
  return pop_from(src);
}

std::optional<EventQueue::Popped> EventQueue::try_pop_at_or_before(
    SimTime limit) {
  const Src src = locate();
  if (src == Src::kNone) return std::nullopt;
  const SimTime t =
      src == Src::kActive ? active_[active_pos_].time : heap_.front().time;
  if (t > limit) return std::nullopt;
  return pop_from(src);
}

} // namespace tsn::sim
