#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace tsn::sim {

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  slot_gen_.reserve(n);
  free_slots_.reserve(n);
}

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.push_back(0);
  }
  const std::uint32_t gen = slot_gen_[slot];
  heap_.push_back(Entry{at, next_seq_++, slot, gen, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  ++stats_.scheduled;
  return EventHandle(this, slot, gen);
}

void EventQueue::post(SimTime at, EventFn fn) {
  heap_.push_back(Entry{at, next_seq_++, kNoSlot, 0, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  ++stats_.posted;
}

void EventQueue::release_slot(std::uint32_t slot) {
  // Bumping the generation invalidates every outstanding handle (and any
  // stale heap entry) referring to this incarnation of the slot.
  ++slot_gen_[slot];
  free_slots_.push_back(slot);
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_pending(slot, gen)) return;
  release_slot(slot);
  --live_;
  ++stats_.cancelled;
}

void EventQueue::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    pop_top();
  }
}

bool EventQueue::empty() {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_dead();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::optional<EventQueue::Popped> EventQueue::try_pop() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry& top = heap_.back();
  if (top.slot != kNoSlot) release_slot(top.slot);
  Popped out{top.time, std::move(top.fn)};
  heap_.pop_back();
  --live_;
  ++stats_.fired;
  return out;
}

} // namespace tsn::sim
