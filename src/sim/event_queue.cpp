#include "sim/event_queue.hpp"

#include <cassert>

namespace tsn::sim {

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  auto alive = std::make_shared<bool>(true);
  heap_.push(Entry{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && !*heap_.top().alive) {
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_dead();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::optional<EventQueue::Popped> EventQueue::try_pop() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  // std::priority_queue::top() returns const&; moving the function object out
  // requires a const_cast, which is safe because we pop immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.fn)};
  heap_.pop();
  return out;
}

} // namespace tsn::sim
