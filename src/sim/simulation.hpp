// Simulation executive: owns true time, the event queue and the master RNG
// seed. All model components schedule themselves through this object.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/sim_time.hpp"
#include "util/rng.hpp"

namespace tsn::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t master_seed = 1) : master_seed_(master_seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  std::uint64_t master_seed() const { return master_seed_; }

  /// Derive a named deterministic RNG stream for a component.
  util::RngStream make_rng(std::string_view stream_name) const {
    return util::RngStream(master_seed_, stream_name);
  }

  /// Schedule at an absolute time; times in the past are clamped to now
  /// (fire "immediately", after currently pending same-time events).
  EventHandle at(SimTime when, EventFn fn);
  /// Schedule after a relative delay in ns. Negative delays are clamped
  /// to 0 (fire "immediately") and warned about once per Simulation.
  EventHandle after(std::int64_t delay_ns, EventFn fn);

  /// Schedule `fn` every `period_ns`, first firing at `first`. The callback
  /// may call cancel() on the returned handle to stop. Tasks live in a
  /// slab owned by the Simulation, so each fire re-posts a 24-byte closure
  /// with no reference-count traffic; like EventHandle, a PeriodicHandle
  /// must not outlive its Simulation.
  class PeriodicHandle {
   public:
    void cancel() { if (task_) task_->alive = false; }
    bool active() const { return task_ && task_->alive; }
    /// Next scheduled firing time of an active task; the phase a parked
    /// or snapshotted chain is re-armed on (sim/persist.hpp).
    std::int64_t next_due_ns() const { return task_ ? task_->next_due_ns : 0; }
    std::int64_t period_ns() const { return task_ ? task_->period_ns : 0; }

   private:
    friend class Simulation;
    struct Task {
      std::function<void(SimTime)> fn;
      std::int64_t period_ns = 0;
      std::int64_t next_due_ns = 0;
      bool alive = false;
    };
    Task* task_ = nullptr;
  };
  PeriodicHandle every(SimTime first, std::int64_t period_ns, std::function<void(SimTime)> fn);

  /// Run until the queue drains or `limit` is passed. Events exactly at
  /// `limit` still execute. Returns the number of events executed.
  std::uint64_t run_until(SimTime limit);
  /// Partitioned-runtime step: execute events with time <= limit AND
  /// time < horizon_ns, leaving now() at the last executed event instead
  /// of bumping it to the limit (the region may be re-entered with a
  /// larger horizon; the runtime advances now() explicitly at stage end).
  std::uint64_t run_ready(SimTime limit, std::int64_t horizon_ns);
  /// Earliest pending event time in ns, or INT64_MAX when idle.
  std::int64_t next_event_ns() {
    return queue_.empty() ? INT64_MAX : queue_.next_time().ns();
  }
  /// Jump now() forward to `t`; no-op when t <= now().
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  /// Snapshot restore: set now() to an arbitrary (possibly earlier) time.
  /// Only valid with an empty/cleared queue or when every pending event
  /// lies at or after `t` -- the run loop asserts event times >= now().
  void restore_now(SimTime t) { now_ = t; }
  /// Run the next `max_events` events regardless of time.
  std::uint64_t run_events(std::uint64_t max_events);
  /// Stop the current run_until() loop after the current event returns.
  void stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  EventQueue& queue() { return queue_; }
  const EventQueue& queue() const { return queue_; }

 private:
  void schedule_periodic(SimTime when, PeriodicHandle::Task* task);

  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  std::vector<std::unique_ptr<PeriodicHandle::Task>> periodic_;
  std::uint64_t master_seed_;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  bool warned_negative_delay_ = false;
};

} // namespace tsn::sim
