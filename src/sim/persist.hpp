// State persistence and fast-forward participation (DESIGN.md §12).
//
// StateWriter/StateReader serialize component state into a flat byte
// archive with named sections and a running FNV-1a content hash. The
// format is process-private (snapshots never leave the process and are
// not versioned); sections exist so a save/load mismatch fails loudly at
// the exact component instead of corrupting everything downstream.
//
// Persistent is the interface every stateful model component implements
// to take part in the two facilities built on top:
//
//   * SimSnapshot (sim/snapshot.hpp): copy-out/copy-in of a whole world
//     at a *component-quiescent* instant -- every live event in the queue
//     is a standing event some component re-creates in load_state(), so
//     the queue itself is never serialized. Used by the incremental ddmin
//     shrinker and the snapshot/rollback property tests.
//   * Fast-forward (sim/fast_forward.hpp): park (cancel timers), skip a
//     quiescent window analytically, shift time-stamped state across the
//     window, resume (re-arm timers phase-aligned).
//
// The quiescence accounting contract: live_events() reports exactly the
// number of live entries this component currently keeps in the event
// queue in its *idle* steady state (periodic chains, the GM's next-Sync
// hop, pending fault/attack edges). Anything unaccounted -- an in-flight
// frame, an ETF launch, a pending probe evaluation -- makes the queue's
// live count exceed the sum and blocks both snapshotting and
// fast-forward entry until it drains. Components therefore only need to
// be honest about their standing events; transients are caught
// structurally.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace tsn::sim {

/// One fast-forwarded window of simulated time.
struct FfWindow {
  std::int64_t from_ns = 0; ///< sim time when the analytic advance began
  std::int64_t to_ns = 0;   ///< sim time after the jump
  std::int64_t span_ns() const { return to_ns - from_ns; }
};

class StateWriter {
 public:
  /// Open a named section; the name is hashed into the stream so a
  /// save/load traversal mismatch is detected at load time.
  void begin_section(std::string_view name);

  void b(bool v) { u8(v ? 1 : 0); }
  void u8(std::uint8_t v) { put(&v, 1); }
  void u16(std::uint16_t v) { put(&v, sizeof v); }
  void u32(std::uint32_t v) { put(&v, sizeof v); }
  void u64(std::uint64_t v) { put(&v, sizeof v); }
  void i64(std::int64_t v) { put(&v, sizeof v); }
  void f64(double v) { put(&v, sizeof v); }
  /// long double as a (hi, lo) double-double pair: deterministic byte
  /// image (no x87 padding garbage) and an exact round trip for any
  /// value with a <= 106-bit significand -- which covers the 64-bit
  /// x87 mantissa of every extended-precision accumulator we persist.
  void ld(long double v) {
    const double hi = static_cast<double>(v);
    const double lo = static_cast<double>(v - static_cast<long double>(hi));
    f64(hi);
    f64(lo);
  }
  void str(std::string_view s) {
    u64(s.size());
    put(s.data(), s.size());
  }
  /// mt19937_64 engine state via its standard text serialization.
  void rng(const util::RngStream& s);
  template <typename T>
  void opt_i64(const std::optional<T>& v) {
    b(v.has_value());
    i64(v ? static_cast<std::int64_t>(*v) : 0);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  /// FNV-1a over everything written so far (section names included).
  std::uint64_t hash() const { return hash_; }

 private:
  void put(const void* p, std::size_t n);

  std::vector<std::uint8_t> buf_;
  std::uint64_t hash_ = 1469598103934665603ull; // FNV-1a offset basis
};

class StateReader {
 public:
  explicit StateReader(const std::vector<std::uint8_t>& data) : buf_(data) {}

  /// Must mirror the writer's begin_section calls exactly; throws
  /// std::runtime_error naming both sections on mismatch.
  void begin_section(std::string_view name);

  bool b() { return u8() != 0; }
  std::uint8_t u8() {
    std::uint8_t v;
    get(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v;
    get(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    get(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    get(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    get(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    get(&v, sizeof v);
    return v;
  }
  long double ld() {
    const double hi = f64();
    const double lo = f64();
    return static_cast<long double>(hi) + static_cast<long double>(lo);
  }
  std::string str() {
    const std::uint64_t n = u64();
    std::string s(n, '\0');
    get(s.data(), n);
    return s;
  }
  void rng(util::RngStream& s);
  template <typename T>
  std::optional<T> opt_i64() {
    const bool has = b();
    const std::int64_t v = i64();
    if (!has) return std::nullopt;
    return static_cast<T>(v);
  }

  bool at_end() const { return pos_ == buf_.size(); }

 private:
  void get(void* p, std::size_t n);

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Interface of a snapshottable / fast-forwardable component. Every
/// method has a safe default so pure-data components only implement
/// save/load and event-less components skip the ff hooks.
class Persistent {
 public:
  virtual ~Persistent() = default;

  /// Stable section name (used for archive traversal checking).
  virtual const char* persist_name() const = 0;

  /// Serialize into `w`. Deliberately non-const: capture normalizes
  /// lazily-integrated state (e.g. a PHC advances itself to now()) so
  /// that the capture-and-continue timeline and the restored timeline
  /// resume from bit-identical state -- otherwise the restore-time
  /// catch-up would split an oscillator integration segment the live
  /// run integrates whole, and long-double rounding could diverge by
  /// an ulp.
  virtual void save_state(StateWriter& w) = 0;
  /// Restore from `r`. Called with sim.now() already restored and the
  /// event queue cleared; the component must re-create its own standing
  /// events (periodic chains, one-shot hops) from the loaded state --
  /// never from stale handles, which the queue clear invalidated.
  virtual void load_state(StateReader& r) = 0;

  // -- Fast-forward participation ------------------------------------------

  /// Live queue entries this component keeps around in its idle steady
  /// state right now (see the accounting contract above).
  virtual std::size_t live_events() const { return 0; }
  /// Cancel all standing events, remembering their phases. After parking,
  /// the component's queued closures must be inert no-ops when popped.
  virtual void ff_park() {}
  /// Shift time-stamped state across the window (called with sim.now()
  /// already at window.to_ns, clocks already advanced analytically).
  virtual void ff_advance(const FfWindow& w) { (void)w; }
  /// Re-create standing events, phase-aligned to the pre-park grid.
  virtual void ff_resume() {}
};

/// First firing time >= `now` on the periodic grid anchored at `due`
/// (the phase remembered at park/save time) with period `period`.
inline std::int64_t align_phase(std::int64_t due, std::int64_t period, std::int64_t now) {
  if (due >= now) return due;
  const std::int64_t behind = now - due;
  const std::int64_t k = (behind + period - 1) / period;
  return due + k * period;
}

} // namespace tsn::sim
