#include "sim/snapshot.hpp"

#include <stdexcept>

#include "sim/simulation.hpp"

namespace tsn::sim {

std::size_t expected_live_events(const std::vector<Persistent*>& targets) {
  std::size_t n = 0;
  for (const Persistent* p : targets) n += p->live_events();
  return n;
}

bool components_quiescent(const Simulation& sim,
                          const std::vector<Persistent*>& targets) {
  return sim.queue().live_size() == expected_live_events(targets);
}

SimSnapshot take_snapshot(const Simulation& sim,
                          const std::vector<Persistent*>& targets) {
  StateWriter w;
  w.begin_section("sim");
  w.i64(sim.now().ns());
  w.u64(targets.size());
  for (Persistent* p : targets) {
    w.begin_section(p->persist_name());
    p->save_state(w);
  }
  SimSnapshot snap;
  snap.now_ns = sim.now().ns();
  snap.events_executed = sim.events_executed();
  snap.hash = w.hash();
  snap.bytes = w.data();
  return snap;
}

void restore_snapshot(Simulation& sim,
                      const std::vector<Persistent*>& targets,
                      const SimSnapshot& snap) {
  sim.queue().clear();
  sim.restore_now(SimTime{snap.now_ns});
  StateReader r(snap.bytes);
  r.begin_section("sim");
  if (r.i64() != snap.now_ns) {
    throw std::runtime_error("SimSnapshot: header time does not match snapshot");
  }
  if (r.u64() != targets.size()) {
    throw std::runtime_error("SimSnapshot: component count changed since capture");
  }
  for (Persistent* p : targets) {
    r.begin_section(p->persist_name());
    p->load_state(r);
  }
  if (!r.at_end()) {
    throw std::runtime_error("SimSnapshot: trailing bytes after restore");
  }
}

} // namespace tsn::sim
