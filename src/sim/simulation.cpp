#include "sim/simulation.hpp"

#include <cassert>

#include "util/log.hpp"

namespace tsn::sim {

EventHandle Simulation::at(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulation::after(std::int64_t delay_ns, EventFn fn) {
  if (delay_ns < 0) {
    if (!warned_negative_delay_) {
      warned_negative_delay_ = true;
      TSN_LOG_WARN("sim", "after() called with negative delay %lld ns; clamping to 0 "
                          "(further occurrences not logged)",
                   static_cast<long long>(delay_ns));
    }
    delay_ns = 0;
  }
  return queue_.schedule(now_ + delay_ns, std::move(fn));
}

void Simulation::schedule_periodic(SimTime when, std::int64_t period_ns,
                                   std::shared_ptr<bool> alive,
                                   std::shared_ptr<std::function<void(SimTime)>> fn) {
  queue_.post(when, [this, when, period_ns, alive, fn]() {
    if (!*alive) return;
    (*fn)(when);
    if (*alive) schedule_periodic(when + period_ns, period_ns, alive, fn);
  });
}

Simulation::PeriodicHandle Simulation::every(SimTime first, std::int64_t period_ns,
                                             std::function<void(SimTime)> fn) {
  assert(period_ns > 0);
  PeriodicHandle handle;
  handle.alive_ = std::make_shared<bool>(true);
  schedule_periodic(first, period_ns, handle.alive_,
                    std::make_shared<std::function<void(SimTime)>>(std::move(fn)));
  return handle;
}

std::uint64_t Simulation::run_until(SimTime limit) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > limit) break;
    auto popped = queue_.try_pop();
    if (!popped) break;
    assert(popped->time >= now_);
    now_ = popped->time;
    popped->fn();
    ++n;
    ++events_executed_;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

std::uint64_t Simulation::run_events(std::uint64_t max_events) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (n < max_events && !stop_requested_) {
    auto popped = queue_.try_pop();
    if (!popped) break;
    assert(popped->time >= now_);
    now_ = popped->time;
    popped->fn();
    ++n;
    ++events_executed_;
  }
  return n;
}

} // namespace tsn::sim
