#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace tsn::sim {

EventHandle Simulation::at(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulation::after(std::int64_t delay_ns, EventFn fn) {
  if (delay_ns < 0) {
    if (!warned_negative_delay_) {
      warned_negative_delay_ = true;
      TSN_LOG_WARN("sim", "after() called with negative delay %lld ns; clamping to 0 "
                          "(further occurrences not logged)",
                   static_cast<long long>(delay_ns));
    }
    delay_ns = 0;
  }
  return queue_.schedule(now_ + delay_ns, std::move(fn));
}

void Simulation::schedule_periodic(SimTime when, PeriodicHandle::Task* task) {
  task->next_due_ns = when.ns();
  queue_.post(when, [this, when, task]() {
    if (!task->alive) return;
    task->fn(when);
    if (task->alive) schedule_periodic(when + task->period_ns, task);
  });
}

Simulation::PeriodicHandle Simulation::every(SimTime first, std::int64_t period_ns,
                                             std::function<void(SimTime)> fn) {
  assert(period_ns > 0);
  periodic_.push_back(std::make_unique<PeriodicHandle::Task>(
      PeriodicHandle::Task{std::move(fn), period_ns, first.ns(), true}));
  PeriodicHandle handle;
  handle.task_ = periodic_.back().get();
  schedule_periodic(first, handle.task_);
  return handle;
}

std::uint64_t Simulation::run_until(SimTime limit) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_) {
    // One ordered lookup per event instead of empty()+next_time()+pop.
    auto popped = queue_.try_pop_at_or_before(limit);
    if (!popped) break;
    assert(popped->time >= now_);
    now_ = popped->time;
    popped->fn();
    ++n;
    ++events_executed_;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

std::uint64_t Simulation::run_ready(SimTime limit, std::int64_t horizon_ns) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  // Horizon is exclusive (a neighbor may still inject events exactly at
  // it); the limit stays inclusive like run_until's.
  const SimTime bound{horizon_ns == INT64_MAX
                          ? limit.ns()
                          : std::min(limit.ns(), horizon_ns - 1)};
  while (!stop_requested_) {
    auto popped = queue_.try_pop_at_or_before(bound);
    if (!popped) break;
    assert(popped->time >= now_);
    now_ = popped->time;
    popped->fn();
    ++n;
    ++events_executed_;
  }
  return n;
}

std::uint64_t Simulation::run_events(std::uint64_t max_events) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (n < max_events && !stop_requested_) {
    auto popped = queue_.try_pop();
    if (!popped) break;
    assert(popped->time >= now_);
    now_ = popped->time;
    popped->fn();
    ++n;
    ++events_executed_;
  }
  return n;
}

} // namespace tsn::sim
