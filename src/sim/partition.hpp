// Conservative parallel discrete-event runtime: one scenario, many cores.
//
// The serial simulator runs one EventQueue; parallelism only ever existed
// *across* sweep replicas. PartitionRuntime splits a single world into R
// logical regions, each owning its own Simulation (queue, now, RNG
// derivation from the shared master seed), and executes them on P worker
// shards with Chandy–Misra-style conservative lookahead:
//
//   - Cross-region interaction happens only through declared Channels,
//     each with a minimum delivery delay ("lookahead"). For network
//     boundaries the link propagation floor is the natural bound; sparse
//     control traffic (probe samples, fault commands) rides dedicated
//     control channels with a fixed 1 ms bound.
//   - Every region r publishes a monotone promise U_r ("safe-until"): no
//     message sent by r in the future will be delivered before
//     U_r + min_delay(channel). A region may execute events strictly
//     below EIT_r = min over in-channels (U_src + min_delay), and at most
//     at the stage limit.
//   - Messages travel through SPSC mailbox rings carrying a (time, key)
//     pair plus an inline closure. The key embeds (channel id, per-channel
//     sequence) with the top bit set, so boundary events order *after*
//     same-time internal events and identically for every partition
//     count and thread count — the event queue breaks time ties by key,
//     never by arrival order.
//   - When every region is blocked (typical between 125 ms sync bursts),
//     a global "leap" jumps all promises to the minimum pending event
//     time, skipping the quiet gap in O(R) instead of creeping across it
//     in lookahead-sized steps.
//
// Determinism: the number of regions is fixed by the model (one per ECD
// in the scenario layer), *not* by the worker count. partitions=P only
// chooses how many shards multiplex the regions, so results are identical
// for every P and every thread schedule by construction; the protocol
// above makes them race-free as well (verified under TSan).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulation.hpp"
#include "util/inline_fn.hpp"

namespace tsn::sweep {
class ThreadPool;
}

namespace tsn::sim {

/// Closure shipped across a partition boundary and executed in the
/// destination region. Bigger than EventFn because boundary deliveries
/// carry a frame by value (~150 bytes with the inline payload).
using RemoteFn = util::InlineFunction<void(), 192>;

/// Default lookahead of control channels (measurement samples, fault
/// commands): senders must post at least this far ahead.
inline constexpr std::int64_t kControlLookaheadNs = 1'000'000;

/// One direction of a partition boundary: an SPSC mailbox from a fixed
/// source region to a fixed destination region with a contractual minimum
/// delivery delay. Message order on the wire is irrelevant — each message
/// carries an explicit (time, key) and the destination queue sorts — so
/// the ring may spill to a mutex-guarded overflow list without affecting
/// results.
class Channel {
 public:
  Channel(std::uint32_t id, std::size_t src, std::size_t dst,
          std::int64_t min_delay_ns)
      : id_(id), src_(src), dst_(dst), min_delay_ns_(min_delay_ns) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::uint32_t id() const { return id_; }
  std::size_t src() const { return src_; }
  std::size_t dst() const { return dst_; }
  std::int64_t min_delay_ns() const { return min_delay_ns_; }

 private:
  friend class PartitionRuntime;

  struct Msg {
    SimTime at;
    std::uint64_t key = 0;
    RemoteFn fn;
  };
  static constexpr std::size_t kRingSize = 32; // power of two
  static constexpr std::size_t kRingMask = kRingSize - 1;

  /// Producer side (source region's shard only).
  void push(SimTime at, RemoteFn&& fn);

  /// Consumer side (destination region's shard only). Invokes
  /// `sink(Msg&&)` for every buffered message, returns the count.
  template <typename Sink>
  std::size_t drain(Sink&& sink) {
    std::size_t n = 0;
    std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    while (h != t) {
      sink(std::move(ring_[h & kRingMask]));
      ring_[h & kRingMask].fn.reset();
      ++h;
      ++n;
    }
    if (n > 0) head_.store(h, std::memory_order_release);
    if (overflowed_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> g(overflow_mu_);
      while (!overflow_.empty()) {
        sink(std::move(overflow_.front()));
        overflow_.pop_front();
        ++n;
      }
      overflowed_.store(false, std::memory_order_relaxed);
    }
    return n;
  }

  const std::uint32_t id_;
  const std::size_t src_;
  const std::size_t dst_;
  const std::int64_t min_delay_ns_;

  std::uint64_t next_seq_ = 0; ///< producer-side message counter
  std::array<Msg, kRingSize> ring_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::atomic<bool> overflowed_{false};
  std::mutex overflow_mu_;
  std::deque<Msg> overflow_;
};

class PartitionRuntime {
 public:
  /// `regions` Simulations sharing `master_seed`; `workers` shards execute
  /// them (clamped to the region count; <=1 runs inline on the caller).
  PartitionRuntime(std::size_t regions, std::uint64_t master_seed,
                   std::size_t workers);
  ~PartitionRuntime();

  PartitionRuntime(const PartitionRuntime&) = delete;
  PartitionRuntime& operator=(const PartitionRuntime&) = delete;

  std::size_t region_count() const { return regions_.size(); }
  std::size_t workers() const { return workers_; }
  Simulation& region_sim(std::size_t r) { return regions_[r]->sim; }

  /// Declare a boundary src -> dst with the given lookahead. Only legal
  /// from the driving thread while no stage is running. Returns the
  /// channel id used by post_remote().
  std::uint32_t add_channel(std::size_t src, std::size_t dst,
                            std::int64_t min_delay_ns);

  /// Find-or-create the control channel src -> dst (kControlLookaheadNs).
  std::uint32_t control_channel(std::size_t src, std::size_t dst);

  /// Send `fn` for execution in the channel's destination region at `at`.
  /// Must be called from code executing inside the channel's source
  /// region; `at` must be >= the source region's now + the channel's
  /// min delay. Delivery order at equal `at` follows (channel id, send
  /// order), after all same-time internal events — identically for every
  /// worker count.
  void post_remote(std::uint32_t channel_id, SimTime at, RemoteFn fn);

  /// Convenience: post_remote over the pre-created control channel from
  /// the currently executing region to `dst_region`.
  void post_control(std::size_t dst_region, SimTime at, RemoteFn fn);

  /// The region the calling thread is currently executing, or SIZE_MAX
  /// when the caller is not inside region execution (e.g. the driving
  /// thread between stages).
  static std::size_t current_region();

  /// Installed hook runs on the executing worker right before (enter=true)
  /// and after (enter=false) a region executes events; used to swap in
  /// region-local thread-local state (frame pools).
  void set_region_scope_hook(std::function<void(std::size_t, bool)> hook) {
    scope_hook_ = std::move(hook);
  }

  /// Advance every region to `limit` (events at exactly `limit` run, as
  /// in Simulation::run_until). Returns the number of events executed
  /// across all regions. Blocks until the stage completes.
  std::uint64_t run_until(SimTime limit);

  /// Common time at stage boundaries (the last run_until limit).
  SimTime now() const { return now_; }

  std::uint64_t events_executed() const;

 private:
  struct Region {
    explicit Region(std::size_t idx, std::uint64_t master_seed)
        : index(idx), sim(master_seed) {}

    const std::size_t index;
    Simulation sim;
    std::vector<Channel*> in;  ///< channels delivering into this region
    std::vector<Channel*> out; ///< channels this region sends on

    /// Promise: nothing this region does in the future reaches a
    /// neighbor before safe_until + channel delay. Monotone per stage.
    std::atomic<std::int64_t> safe_until{0};
    /// Last published earliest-pending-event time (exact when quiesced,
    /// a lower bound otherwise).
    std::atomic<std::int64_t> next_event{INT64_MAX};

    /// Parking slab for oversized remote closures: the queue entry only
    /// captures (region, slot). Touched solely by this region's shard.
    std::vector<RemoteFn> parked;
    std::vector<std::uint32_t> parked_free;
  };

  void shard_loop(std::size_t shard, SimTime limit);
  bool step_region(Region& region, SimTime limit);
  bool try_leap(SimTime limit);
  void enqueue_remote(Region& region, Channel::Msg&& msg);

  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<std::unique_ptr<Channel>> channels_;
  /// (src << 32 | dst) -> control channel id, for post_control.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> control_ids_;
  std::size_t workers_;
  std::unique_ptr<sweep::ThreadPool> pool_;
  std::function<void(std::size_t, bool)> scope_hook_;

  /// Messages pushed but not yet folded into a published next_event;
  /// leaping (which trusts published values) is barred while nonzero.
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<bool> stage_done_{false};
  std::mutex leap_mu_;
  SimTime now_ = SimTime::zero();
};

} // namespace tsn::sim
