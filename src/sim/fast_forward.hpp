// Fast-forward analytic mode (DESIGN.md §12): when a region of the model
// is quiescent -- steady-state periodic traffic only, no pending faults,
// attacks or state-machine transitions inside a lookahead window -- the
// controller parks every participant (cancelling its standing events),
// drains the now-dead closures, advances the clocks analytically across
// the window in ~O(1), shifts time-stamped component state, and re-arms
// the periodic chains phase-aligned. Around "interesting" times (fault
// edges, attack edges, anything a barrier reports) it drops back into
// ordinary event-by-event simulation.
//
// The controller is model-agnostic: quiescence of the *model* (servos
// locked, coordinators in steady phase, probes idle) comes from an
// injected predicate, the analytic clock advance from an injected
// callback, and "interesting times" from barrier functions. Quiescence
// of the *queue* is structural: live_size() must equal the sum of the
// participants' live_events() (see sim/persist.hpp for the contract).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/persist.hpp"
#include "sim/sim_time.hpp"

namespace tsn::sim {

class Simulation;

struct FfConfig {
  /// Never enter a window shorter than this (entry/exit overhead and the
  /// drain span make small windows a net loss). Must exceed drain_span_ns.
  std::int64_t min_window_ns = 5'000'000'000;
  /// No fast-forward before this absolute sim time: lets servos converge
  /// and -- when an invariant suite is armed -- lets its reconvergence
  /// deadlines expire while real aggregation evidence is still flowing.
  std::int64_t settle_ns = 30'000'000'000;
  /// Cadence of quiescence probes while the model is active.
  std::int64_t check_period_ns = 250'000'000;
  /// After parking, run the queue this far so every cancelled chain's
  /// already-posted closure pops as a no-op. Must exceed the longest
  /// participant period (the 1 s suite poll is the worst case).
  std::int64_t drain_span_ns = 2'500'000'000;
  /// Upper bound on analytic stepper iterations per window (the scenario
  /// stepper reads it from here; the controller itself does not step).
  int max_steps = 131072;
  /// Analytic stepper stride: the scenario stepper pulls the disciplined
  /// clocks onto the aggregate once per stride (never finer than the sync
  /// interval). Between pulls the clocks free-run on their parked trims,
  /// so the stride bounds the intra-window divergence at roughly the
  /// residual rate error times the stride -- ~1 ppm of wander against a
  /// frozen trim makes 1 s ≈ 1 us, comfortably inside the tolerance
  /// contract, at 1/8 the per-window work of sync-interval stepping.
  std::int64_t analytic_step_ns = 1'000'000'000;
};

struct FfStats {
  std::uint64_t windows = 0;        ///< fast-forward windows entered
  std::int64_t skipped_ns = 0;      ///< total sim time crossed analytically
  std::uint64_t checks = 0;         ///< quiescence probes performed
  std::uint64_t blocked_model = 0;  ///< probes rejected by the model predicate
  std::uint64_t blocked_events = 0; ///< probes rejected by unaccounted events
};

class FfController {
 public:
  FfController(Simulation& sim, FfConfig cfg);

  /// Registration order is the park/advance/resume order; register in
  /// boot order so re-armed same-timestamp chains keep the relative
  /// sequence order a cold boot would give them.
  void add_participant(Persistent* p);
  /// Barrier: earliest "interesting" sim time strictly after `t`, or
  /// INT64_MAX when none. Windows never cross a barrier.
  void add_barrier(std::function<std::int64_t(std::int64_t)> next_after);
  /// Model-level quiescence (servos locked, no active attacks, ...).
  void set_model_quiescent(std::function<bool()> fn);
  /// Called with sim.now() == park_ns before the participants park and
  /// the queue drains: the stepper's chance to capture entry state
  /// (ensemble membership, per-clock residuals) from the live model. The
  /// drain that follows runs every clock open-loop on its last servo
  /// frequency trim; the spread it accrues must be pulled back out by the
  /// first analytic step, not locked into the window's residuals.
  void set_analytic_prepare(std::function<void(std::int64_t)> fn);
  /// Analytic clock advance over [from_ns, to_ns]; called after the park
  /// drain with sim.now() == from_ns; must leave sim.now() == to_ns.
  void set_analytic_advance(std::function<void(std::int64_t, std::int64_t)> fn);

  /// Drive the simulation to `limit`, fast-forwarding through quiescent
  /// windows. Returns the number of events executed (analytic windows
  /// execute none). Behaves like Simulation::run_until(limit) otherwise.
  std::uint64_t run_to(SimTime limit);

  std::size_t expected_live() const;
  /// Structural + model quiescence right now (no side effects).
  bool quiescent();

  const FfStats& stats() const { return stats_; }
  const std::vector<FfWindow>& windows() const { return windows_; }
  const std::vector<Persistent*>& participants() const { return participants_; }

 private:
  std::int64_t next_barrier(std::int64_t after) const;
  std::uint64_t enter_window(std::int64_t to_ns);

  Simulation& sim_;
  FfConfig cfg_;
  std::vector<Persistent*> participants_;
  std::vector<std::function<std::int64_t(std::int64_t)>> barriers_;
  std::function<bool()> model_quiescent_;
  std::function<void(std::int64_t)> analytic_prepare_;
  std::function<void(std::int64_t, std::int64_t)> analytic_advance_;
  std::vector<FfWindow> windows_;
  FfStats stats_;
};

} // namespace tsn::sim
