// Whole-world snapshot / restore over a list of Persistent components
// (DESIGN.md §12). Snapshots are only taken at *component-quiescent*
// instants -- every live entry in the event queue is a standing event
// some component re-creates in load_state() -- so the queue itself is
// never serialized. components_quiescent() is the structural check.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/persist.hpp"

namespace tsn::sim {

class Simulation;

/// A copy-out of the world at one instant. `bytes` is the flat archive
/// (process-private, unversioned); `hash` is the FNV-1a over it -- two
/// snapshots of identical worlds hash equal, which is what the rollback
/// property test asserts. `events_executed` records the executive's
/// lifetime event counter at capture purely for reporting; restore does
/// NOT rewind it (the incremental shrinker relies on its monotonicity
/// to charge probe costs).
struct SimSnapshot {
  std::int64_t now_ns = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t hash = 0;
  std::vector<std::uint8_t> bytes;
};

/// Sum of live_events() over `targets`: the number of queue entries the
/// components collectively account for in their idle steady state.
std::size_t expected_live_events(const std::vector<Persistent*>& targets);

/// True when every live queue entry is accounted for by some component
/// (no in-flight frames, ETF launches or pending evaluations). Both
/// take_snapshot() and fast-forward entry require this.
bool components_quiescent(const Simulation& sim,
                          const std::vector<Persistent*>& targets);

/// Serialize all targets (in list order -- which must match the order
/// they will be restored in). Precondition: components_quiescent().
SimSnapshot take_snapshot(const Simulation& sim,
                          const std::vector<Persistent*>& targets);

/// Restore: clears the event queue (invalidating every outstanding
/// EventHandle), rewinds now() and loads each target in list order;
/// components re-create their standing events inside load_state().
/// `targets` must be the same list, in the same order, as at capture --
/// the section names catch mismatches and throw std::runtime_error.
void restore_snapshot(Simulation& sim,
                      const std::vector<Persistent*>& targets,
                      const SimSnapshot& snap);

} // namespace tsn::sim
