// Deterministic discrete-event queue.
//
// Ties at the same timestamp are broken by insertion sequence number, so a
// given schedule of calls always executes in the same order regardless of
// heap internals.
//
// Cancellation uses a slab of generation-counted slots instead of a
// per-event heap allocation: an EventHandle is (queue, slot index,
// generation) and stays O(1)/allocation-free to create, test and cancel.
// Events scheduled through post() skip the slab entirely — that is the
// hot path Simulation::every() rides on.
//
// Handles must not outlive their queue (they hold a raw pointer into it);
// within a Simulation that is guaranteed by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/sim_time.hpp"

namespace tsn::sim {

using EventFn = std::function<void()>;

class EventQueue;

/// Handle for cancelling a scheduled event. Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}
  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Lifetime totals of one queue; plain integers because a queue belongs to
/// exactly one (replica) thread. Harvested into the metrics registry as
/// gauges at snapshot time.
struct QueueStats {
  std::uint64_t scheduled = 0; ///< schedule() calls (cancellable slab path)
  std::uint64_t posted = 0;    ///< post() calls (no-handle fast path)
  std::uint64_t cancelled = 0; ///< successful cancels
  std::uint64_t fired = 0;     ///< events popped for execution
};

class EventQueue {
 public:
  EventQueue() { reserve(kDefaultReserve); }

  /// Schedule `fn` at absolute time `at`, returning a cancellable handle.
  EventHandle schedule(SimTime at, EventFn fn);

  /// Fast path: schedule `fn` at `at` with no cancellation handle. Zero
  /// slab traffic; the entry only dies by firing.
  void post(SimTime at, EventFn fn);

  /// True when no live (non-cancelled) events remain. Purges cancelled
  /// entries from the top of the heap as a side effect.
  bool empty();

  /// Earliest live event time. Precondition: !empty().
  SimTime next_time();

  struct Popped {
    SimTime time;
    EventFn fn;
  };
  /// Pop the earliest live event, or nullopt if none remain.
  std::optional<Popped> try_pop();

  /// Total entries in the heap including not-yet-purged cancelled ones;
  /// an upper bound on the number of live events.
  std::size_t size_upper_bound() const { return heap_.size(); }

  /// Exact number of live (scheduled, neither fired nor cancelled)
  /// events, independent of how many cancelled entries still sit
  /// unpurged in the heap.
  std::size_t live_size() const { return live_; }

  /// Pre-size the heap and the cancellation slab.
  void reserve(std::size_t n);

  const QueueStats& stats() const { return stats_; }

 private:
  friend class EventHandle;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kDefaultReserve = 64;

  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot; ///< kNoSlot for post()ed events
    std::uint32_t gen;  ///< slab generation at schedule time
    EventFn fn;
  };
  // std::push_heap/pop_heap build a max-heap w.r.t. the comparator, so
  // "a fires later than b" puts the earliest event at the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool entry_live(const Entry& e) const {
    return e.slot == kNoSlot || slot_gen_[e.slot] == e.gen;
  }
  void release_slot(std::uint32_t slot);
  void pop_top();
  void drop_dead();
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);
  bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slot_gen_.size() && slot_gen_[slot] == gen;
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> slot_gen_; ///< current generation per slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  QueueStats stats_;
};

inline void EventHandle::cancel() {
  if (queue_) queue_->cancel_slot(slot_, gen_);
}

inline bool EventHandle::pending() const {
  return queue_ && queue_->slot_pending(slot_, gen_);
}

} // namespace tsn::sim
