// Deterministic discrete-event queue.
//
// Ties at the same timestamp are broken by insertion sequence number, so a
// given schedule of calls always executes in the same order regardless of
// std::priority_queue internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/sim_time.hpp"

namespace tsn::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event. Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() { if (alive_) *alive_ = false; }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`.
  EventHandle schedule(SimTime at, EventFn fn);

  /// True when no live (non-cancelled) events remain. Purges cancelled
  /// entries from the top of the heap as a side effect.
  bool empty();

  /// Earliest live event time. Precondition: !empty().
  SimTime next_time();

  struct Popped {
    SimTime time;
    EventFn fn;
  };
  /// Pop the earliest live event, or nullopt if none remain.
  std::optional<Popped> try_pop();

  /// Total entries in the heap including not-yet-purged cancelled ones;
  /// an upper bound on the number of live events.
  std::size_t size_upper_bound() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

} // namespace tsn::sim
