// Deterministic discrete-event queue.
//
// Ties at the same timestamp are broken by insertion sequence number, so a
// given schedule of calls always executes in the same order regardless of
// the internal container layout.
//
// Internally the queue is a hierarchical timing wheel with a binary-heap
// spill for far-future events:
//
//   level 0:  512 buckets x 4.096 us   (covers ~2.1 ms)
//   level 1:  512 buckets x ~2.1 ms    (covers ~1.07 s)
//   level 2:  512 buckets x ~1.07 s    (covers ~550 s)
//   heap:     everything beyond the level-2 horizon
//
// Near-horizon inserts (every sync interval, the 125 ms monitor ticks,
// frame deliveries) are O(1): drop into a bucket by time bits. Buckets are
// intrusive linked lists over a shared free-listed node slab, so steady
// state allocates nothing regardless of which ring slot an event lands in.
// The entry (with its 64-byte inline closure) is written into its node
// once at insert and read once at pop; everything in between — cascades,
// activation, sorting, the staging merge, the spill heap — shuffles
// trivially-copyable 24-byte (time, seq, node) keys, and re-bucketing a
// node is a pure pointer relink.
// A bucket is sorted only when the cursor reaches it ("activate"), which
// amortizes to O(log bucket-size) per event; per-level occupancy bitmaps
// let the cursor jump over empty regions in O(1) words. Events landing
// before the cursor (the already-activated window) go to a small staging
// list merged on the next pop. The global pop order is min((time, seq))
// over the activated bucket, the staging list and the heap top —
// byte-identical to the pure heap implementation this replaces.
//
// Cancellation uses a slab of generation-counted slots instead of a
// per-event heap allocation: an EventHandle is (queue, slot index,
// generation) and stays O(1)/allocation-free to create, test and cancel.
// Events scheduled through post() skip the slab entirely — that is the
// hot path Simulation::every() rides on. Slots are released the moment an
// event is popped for execution, so pending() is exact even while the
// event's own callback runs.
//
// Handles must not outlive their queue (they hold a raw pointer into it);
// within a Simulation that is guaranteed by construction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/sim_time.hpp"
#include "util/inline_fn.hpp"

namespace tsn::sim {

/// Event closures live inline in the queue: 64 bytes of capture, no heap.
/// Oversized captures fail to compile — move bulky state into the owning
/// object and capture an index instead.
using EventFn = util::InlineFunction<void(), 64>;

class EventQueue;

/// Handle for cancelling a scheduled event. Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}
  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Lifetime totals of one queue; plain integers because a queue belongs to
/// exactly one (replica) thread. Harvested into the metrics registry as
/// gauges at snapshot time.
struct QueueStats {
  std::uint64_t scheduled = 0;      ///< schedule() calls (cancellable slab path)
  std::uint64_t posted = 0;         ///< post() calls (no-handle fast path)
  std::uint64_t cancelled = 0;      ///< successful cancels
  std::uint64_t fired = 0;          ///< events popped for execution
  std::uint64_t wheel_inserts = 0;  ///< entries that landed in a wheel bucket
  std::uint64_t staged_inserts = 0; ///< entries behind the cursor (merged at pop)
  std::uint64_t heap_spills = 0;    ///< entries beyond the wheel horizon
  std::uint64_t cascades = 0;       ///< higher-level buckets redistributed
};

class EventQueue {
 public:
  EventQueue() {
    for (auto& level : bucket_head_) level.fill(kNone);
    reserve(kDefaultReserve);
  }

  /// Schedule `fn` at absolute time `at`, returning a cancellable handle.
  EventHandle schedule(SimTime at, EventFn fn);

  /// Fast path: schedule `fn` at `at` with no cancellation handle. Zero
  /// slab traffic; the entry only dies by firing.
  void post(SimTime at, EventFn fn);

  /// Boundary insertion for the partitioned runtime: like post(), but the
  /// tie-break sequence is supplied by the caller instead of drawn from
  /// this queue's insertion counter. Keys must have the top bit set
  /// (internal sequences never do), which makes same-time boundary events
  /// sort after internal ones and — because the key encodes the sending
  /// channel, not the arrival moment — makes pop order independent of
  /// *when* a cross-partition message was drained into the queue.
  /// Passing the same (at, seq) twice is a caller bug (the relative order
  /// of the duplicates is unspecified, which breaks determinism).
  void post_keyed(SimTime at, std::uint64_t seq, EventFn fn);

  /// True when no live (non-cancelled) events remain. Pure observer:
  /// cancelled entries are reclaimed lazily at pop time (or explicitly
  /// via purge_dead()).
  bool empty() const { return live_ == 0; }

  /// Earliest live event time. Precondition: !empty().
  SimTime next_time();

  struct Popped {
    SimTime time;
    EventFn fn;
  };
  /// Pop the earliest live event, or nullopt if none remain.
  std::optional<Popped> try_pop();

  /// Pop the earliest live event if its time is <= `limit`; nullopt when
  /// the queue is empty or the next event lies beyond the limit. Lets the
  /// run loop do one ordered lookup instead of empty()+next_time()+pop.
  std::optional<Popped> try_pop_at_or_before(SimTime limit);

  /// Drop cancelled entries sitting at the front of the heap and the
  /// activated window, releasing their closures early. Optional memory
  /// hygiene — pop does the same lazily. Strictly queue-local: in a
  /// partitioned world (one queue per region) purging one queue never
  /// touches another's slabs or counters, and an EventHandle only ever
  /// refers to the queue that minted it.
  void purge_dead();

  /// Total entries still buffered (activated window + staging + wheel
  /// buckets + heap), including not-yet-reclaimed cancelled ones; an
  /// upper bound on the number of live events.
  std::size_t size_upper_bound() const {
    return (active_.size() - active_pos_) + staged_.size() + wheel_count_ +
           heap_.size();
  }

  /// Exact number of live (scheduled, neither fired nor cancelled)
  /// events, independent of how many cancelled entries still sit
  /// unreclaimed in the buckets — cancel_slot() decrements live_
  /// immediately, purge_dead() only reclaims storage. Like pending(),
  /// this is exact per queue: partitioned regions report their own live
  /// counts independently and the scenario sums them.
  std::size_t live_size() const { return live_; }

  /// Pre-size the heap and the cancellation slab.
  void reserve(std::size_t n);

  /// Discard every buffered entry without executing it (snapshot restore).
  /// All outstanding EventHandles are invalidated (their generations are
  /// bumped, so cancel()/pending() stay safe no-ops); closures are
  /// destroyed, releasing whatever they captured. The insertion sequence
  /// counter and the activation cursor stay monotonic -- re-scheduled
  /// events get fresh sequence numbers but identical *relative* order,
  /// which is all pop-order determinism requires. Lifetime stats are kept.
  void clear();

  const QueueStats& stats() const { return stats_; }

 private:
  friend class EventHandle;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kDefaultReserve = 64;

  // Wheel geometry: 3 levels x 512 slots, 9 index bits per level.
  static constexpr int kSlotBits = 9;
  static constexpr std::int64_t kSlots = 1 << kSlotBits; // 512
  static constexpr std::int64_t kSlotMask = kSlots - 1;
  static constexpr int kShift[3] = {12, 12 + kSlotBits, 12 + 2 * kSlotBits};

  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot; ///< kNoSlot for post()ed events
    std::uint32_t gen;  ///< slab generation at schedule time
    EventFn fn;
  };

  // What actually travels through buckets, staging, sort and the heap: a
  // trivially-copyable 24-byte ordering key. The entry itself (with its
  // 64-byte closure) stays put in its slab node from insert to pop, so
  // re-bucketing and sorting never invoke the closure's move operation.
  struct Key {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t node;
  };
  // std::push_heap/pop_heap build a max-heap w.r.t. the comparator, so
  // "a fires later than b" puts the earliest event at the front.
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Earlier {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  enum class Src { kNone, kActive, kHeap };

  // Wheel bucket storage: intrusive singly-linked lists over a free-listed
  // node slab. Per-bucket vectors would re-allocate on the first touch of
  // every ring slot (level-2 slots recur only every ~550 s, so they never
  // warm up); the shared slab reaches its working-set size once and then
  // recycles nodes forever — the zero-allocation steady state the bench
  // alloc hook asserts.
  struct Node {
    Entry entry;
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  bool key_live(const Key& k) const {
    const Entry& e = nodes_[k.node].entry;
    return e.slot == kNoSlot || slot_gen_[e.slot] == e.gen;
  }
  std::uint32_t alloc_node(SimTime at, std::uint64_t seq, std::uint32_t slot,
                           std::uint32_t gen, EventFn&& fn);
  void free_node(std::uint32_t idx);
  void release_slot(std::uint32_t slot);
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);
  bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slot_gen_.size() && slot_gen_[slot] == gen;
  }

  void insert(SimTime at, std::uint32_t slot, std::uint32_t gen, EventFn&& fn);
  void insert_with_seq(SimTime at, std::uint64_t seq, std::uint32_t slot,
                       std::uint32_t gen, EventFn&& fn);
  void place(Key k); ///< drop into a wheel bucket; pre: cur_ <= time < horizon
  void add_bucket(int level, std::int64_t abs_idx, std::uint32_t node);
  void merge_staged();
  bool advance_wheel(); ///< move cursor to next occupied bucket, activate it
  void activate(std::int64_t abs_l0_idx);
  void cascade(int level, std::int64_t abs_idx);
  std::int64_t next_set(int level, std::int64_t from, std::int64_t limit) const;
  void drop_dead_heap();
  Src locate(); ///< find where the global minimum lives (advancing as needed)
  Popped pop_from(Src src);

  // Activated window: bucket contents sorted by (time, seq); active_pos_
  // is the cursor of the next entry to pop. cur_ is the absolute time at
  // which the not-yet-activated wheel begins (end of the active window).
  std::vector<Key> active_;
  std::size_t active_pos_ = 0;
  std::vector<Key> staged_; ///< inserts behind cur_; merged at next pop
  std::vector<Key> scratch_;
  std::int64_t cur_ = 0;

  std::vector<Node> nodes_;          ///< slab holding every buffered entry
  std::uint32_t node_free_ = kNone;  ///< head of the recycled-node list
  std::array<std::uint32_t, kSlots> bucket_head_[3];
  std::array<std::uint64_t, kSlots / 64> bitmap_[3] = {};
  std::size_t wheel_count_ = 0; ///< entries currently in wheel buckets

  std::vector<Key> heap_; ///< beyond-horizon spill
  std::vector<std::uint32_t> slot_gen_; ///< current generation per slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  QueueStats stats_;
};

inline void EventHandle::cancel() {
  if (queue_) queue_->cancel_slot(slot_, gen_);
}

inline bool EventHandle::pending() const {
  return queue_ && queue_->slot_pending(slot_, gen_);
}

} // namespace tsn::sim
