// Kernel vulnerability model for the OS-diversification experiments.
//
// The paper's attacker uses exploit 47164 for CVE-2018-18955 to gain root
// on VMs running Linux 4.19.1. Whether an exploit succeeds depends only on
// the target's kernel version being in the CVE's affected set -- which is
// precisely the property OS diversification breaks.
#pragma once

#include <map>
#include <set>
#include <string>

namespace tsn::faults {

class KernelVulnDb {
 public:
  /// Pre-seeded with CVE-2018-18955 (affects 4.15 <= kernel < 4.19.2).
  static KernelVulnDb with_defaults();

  void add(const std::string& cve, const std::string& kernel_version);
  bool vulnerable(const std::string& kernel_version, const std::string& cve) const;
  std::size_t cve_count() const { return affected_.size(); }

 private:
  std::map<std::string, std::set<std::string>> affected_;
};

/// The paper's exploit.
inline constexpr const char* kCve2018_18955 = "CVE-2018-18955";

} // namespace tsn::faults
