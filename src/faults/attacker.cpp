#include "faults/attacker.hpp"

#include <limits>

#include "util/log.hpp"

namespace tsn::faults {

void Attacker::start() {
  // Capture the step by index: AttackStep (with its CVE string) would not
  // fit the event queue's inline closure storage, and steps_ is immutable
  // once scheduled.
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    ++scheduled_;
    sim_.at(sim::SimTime(steps_[i].at_ns), [this, i] {
      ++executed_;
      execute(steps_[i]);
    });
  }
}

std::int64_t Attacker::next_pending_ns(std::int64_t after_ns) const {
  // Steps need not be sorted by time; any step past `after_ns` is still
  // pending (the barrier is only consulted with after_ns >= now).
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const AttackStep& s : steps_) {
    if (s.at_ns > after_ns) best = std::min(best, s.at_ns);
  }
  return best;
}

void Attacker::execute(const AttackStep& step) {
  AttackResult result{step, false};
  if (step.target->running() && db_.vulnerable(step.target->kernel_version(), step.cve)) {
    // Root obtained: swap in the malicious ptp4l.
    step.target->compromise(step.malicious_pot_offset_ns);
    result.success = true;
    TSN_LOG_INFO("attack", "exploit %s on %s (kernel %s): SUCCESS", step.cve.c_str(),
                 step.target->name().c_str(), step.target->kernel_version().c_str());
  } else {
    TSN_LOG_INFO("attack", "exploit %s on %s (kernel %s): failed", step.cve.c_str(),
                 step.target->name().c_str(), step.target->kernel_version().c_str());
  }
  results_.push_back(result);
  if (on_attempt) on_attempt(result);
}

std::size_t Attacker::successful_exploits() const {
  std::size_t n = 0;
  for (const auto& r : results_) n += r.success ? 1 : 0;
  return n;
}

} // namespace tsn::faults
