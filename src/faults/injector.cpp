#include "faults/injector.hpp"

#include <algorithm>
#include <limits>

#include "util/log.hpp"

namespace tsn::faults {

FaultInjector::FaultInjector(sim::Simulation& sim, std::vector<hv::Ecd*> ecds,
                             const InjectorConfig& cfg)
    : sim_(sim), ecds_(std::move(ecds)), cfg_(cfg), rng_(sim.make_rng("fault-injector")) {}

void FaultInjector::set_partitioned(sim::PartitionRuntime* rt,
                                    std::vector<std::size_t> ecd_regions,
                                    std::size_t home_region) {
  rt_ = rt;
  ecd_regions_ = std::move(ecd_regions);
  home_region_ = home_region;
  for (std::size_t r : ecd_regions_) {
    if (r == home_region_) continue;
    rt_->control_channel(home_region_, r); // kill commands out
    rt_->control_channel(r, home_region_); // outcome reports back
  }
}

std::int64_t FaultInjector::next_pending_ns(std::int64_t after_ns) const {
  const auto it = pending_times_.upper_bound(after_ns);
  return it == pending_times_.end() ? std::numeric_limits<std::int64_t>::max() : *it;
}

void FaultInjector::tracked_at(sim::Simulation& on, std::int64_t at_ns,
                               std::function<void()> fn) {
  if (rt_ != nullptr) {
    // Partitioned: regions would race on the multiset, and the serial-only
    // ff/snapshot machinery never reads it there.
    on.at(sim::SimTime(at_ns), [fn = std::move(fn)] { fn(); });
    return;
  }
  pending_times_.insert(at_ns);
  on.at(sim::SimTime(at_ns), [this, at_ns, fn = std::move(fn)] {
    pending_times_.erase(pending_times_.find(at_ns));
    fn();
  });
}

bool FaultInjector::peer_running(std::size_t ecd_idx, std::size_t vm_idx) const {
  hv::Ecd& ecd = *ecds_[ecd_idx];
  for (std::size_t j = 0; j < ecd.vm_count(); ++j) {
    if (j != vm_idx && ecd.vm(j).running()) return true;
  }
  return false;
}

void FaultInjector::notify(const InjectionEvent& ev) {
  events_.push_back(ev);
  if (on_event) on_event(ev);
  for (auto& listener : listeners_) listener(ev);
}

void FaultInjector::kill(std::size_t ecd_idx, std::size_t vm_idx, bool gm_schedule,
                         std::int64_t downtime_ns, bool raw) {
  if (ecd_idx >= ecds_.size() || vm_idx >= ecds_[ecd_idx]->vm_count()) return;
  if (rt_ != nullptr && ecd_regions_[ecd_idx] != home_region_) {
    // Ship the command to the target's region; the liveness guards must
    // read that region's state, not a cross-thread snapshot.
    const sim::SimTime at(sim_.now().ns() + 2 * sim::kControlLookaheadNs);
    rt_->post_control(ecd_regions_[ecd_idx], at,
                      [this, ecd_idx, vm_idx, gm_schedule, downtime_ns, raw] {
                        execute_kill(ecd_idx, vm_idx, gm_schedule, downtime_ns, raw);
                      });
    return;
  }
  execute_kill(ecd_idx, vm_idx, gm_schedule, downtime_ns, raw);
}

void FaultInjector::execute_kill(std::size_t ecd_idx, std::size_t vm_idx, bool gm_schedule,
                                 std::int64_t downtime_ns, bool raw) {
  hv::ClockSyncVm& vm = ecds_[ecd_idx]->vm(vm_idx);
  sim::Simulation& local = ecds_[ecd_idx]->sim();
  const bool remote = rt_ != nullptr && ecd_regions_[ecd_idx] != home_region_;
  if (!replay_mode_ && spared_.count(&vm) > 0) return;
  if (!vm.running()) return;
  if (!raw && !peer_running(ecd_idx, vm_idx)) {
    // Both VMs of a node failing simultaneously would violate the
    // fail-silent fault hypothesis; the paper's tool avoided it too.
    if (remote) {
      rt_->post_control(home_region_, sim::SimTime(local.now().ns() + sim::kControlLookaheadNs),
                        [this] { record_skip(); });
    } else {
      record_skip();
    }
    return;
  }
  const bool was_gm = vm.is_gm();
  vm.shutdown();
  // Not const: by-value lambda capture must stay nothrow-movable.
  InjectionEvent ev{local.now().ns(), vm.name(),  was_gm, false,
                    ecd_idx,          vm_idx,     downtime_ns};
  if (remote) {
    rt_->post_control(home_region_, sim::SimTime(local.now().ns() + sim::kControlLookaheadNs),
                      [this, ev, gm_schedule] { record_kill(ev, gm_schedule); });
  } else {
    record_kill(ev, gm_schedule);
  }

  tracked_at(local, local.now().ns() + downtime_ns, [this, ecd_idx, vm_idx, remote] {
    hv::ClockSyncVm& target = ecds_[ecd_idx]->vm(vm_idx);
    sim::Simulation& lsim = ecds_[ecd_idx]->sim();
    target.boot(/*first_boot=*/false);
    InjectionEvent reboot{lsim.now().ns(), target.name(), target.is_gm(), true,
                          ecd_idx,         vm_idx,        0};
    if (remote) {
      rt_->post_control(home_region_, sim::SimTime(lsim.now().ns() + sim::kControlLookaheadNs),
                        [this, reboot] { record_reboot(reboot); });
    } else {
      record_reboot(reboot);
    }
  });
}

void FaultInjector::record_kill(const InjectionEvent& ev, bool gm_schedule) {
  ++stats_.total_kills;
  ++stats_.pending_reboots;
  if (gm_schedule || ev.was_gm) {
    ++stats_.gm_kills;
  } else {
    ++stats_.standby_kills;
  }
  notify(ev);
}

void FaultInjector::record_reboot(const InjectionEvent& ev) {
  ++stats_.reboots;
  --stats_.pending_reboots;
  notify(ev);
}

void FaultInjector::record_skip() { ++stats_.skipped_fault_hypothesis; }

void FaultInjector::schedule_gm_round(std::uint64_t round) {
  // Relative to start(): an injector attached after a long bring-up must
  // not "catch up" on rounds whose absolute times already passed (that
  // would burst-kill every GM at once, violating the one-failure-per-
  // period cadence the schedule promises).
  const std::int64_t at =
      start_ns_ + static_cast<std::int64_t>(round + 1) * cfg_.gm_kill_period_ns;
  tracked_at(sim_, at, [this, round] {
    const std::size_t ecd_idx = round % ecds_.size();
    // The GM duty sits on VM 0 of each ECD (static configuration).
    for (std::size_t vm_idx = 0; vm_idx < ecds_[ecd_idx]->vm_count(); ++vm_idx) {
      if (ecds_[ecd_idx]->vm(vm_idx).is_gm()) {
        kill(ecd_idx, vm_idx, /*gm_schedule=*/true, cfg_.gm_downtime_ns);
        break;
      }
    }
    schedule_gm_round(round + 1);
  });
}

void FaultInjector::schedule_standby(std::size_t ecd_idx) {
  // Exponential inter-arrival, floored at the configured minimum gap.
  const double mean_gap_ns = 3.6e12 / std::max(cfg_.standby_kills_per_hour, 1e-9);
  const std::int64_t gap = std::max<std::int64_t>(
      static_cast<std::int64_t>(rng_.exponential(mean_gap_ns)), cfg_.standby_min_gap_ns);
  tracked_at(sim_, sim_.now().ns() + gap, [this, ecd_idx] {
    // Kill a non-GM VM of this node.
    for (std::size_t vm_idx = 0; vm_idx < ecds_[ecd_idx]->vm_count(); ++vm_idx) {
      if (!ecds_[ecd_idx]->vm(vm_idx).is_gm()) {
        kill(ecd_idx, vm_idx, /*gm_schedule=*/false, cfg_.standby_downtime_ns);
        break;
      }
    }
    schedule_standby(ecd_idx);
  });
}

void FaultInjector::start() {
  start_ns_ = sim_.now().ns();
  schedule_gm_round(0);
  for (std::size_t i = 0; i < ecds_.size(); ++i) schedule_standby(i);
}

void FaultInjector::run(const ReplaySchedule& schedule) {
  replay_mode_ = true;
  for (const ScheduledFault& f : schedule.faults) {
    const bool raw = schedule.raw;
    tracked_at(sim_, f.at_ns, [this, f, raw] {
      kill(f.ecd, f.vm, /*gm_schedule=*/false, f.downtime_ns, raw);
    });
  }
}

} // namespace tsn::faults
