// The cyber-attack model of paper section III-B.
//
// The attacker holds restricted user credentials on a set of virtual GMs
// and attempts a local privilege escalation at scheduled times. On a
// vulnerable kernel the exploit succeeds, the attacker gains root and
// replaces the benign ptp4l with a malicious instance distributing
// preciseOriginTimestamps shifted by a constant (-24 us in the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faults/kernel_vuln.hpp"
#include "hv/clock_sync_vm.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"

namespace tsn::faults {

struct AttackStep {
  std::int64_t at_ns = 0;
  hv::ClockSyncVm* target = nullptr;
  std::string cve = kCve2018_18955;
  std::int64_t malicious_pot_offset_ns = -24'000; // the paper's -24 us
};

struct AttackResult {
  AttackStep step;
  bool success = false;
};

class Attacker : public sim::Persistent {
 public:
  Attacker(sim::Simulation& sim, KernelVulnDb db) : sim_(sim), db_(std::move(db)) {}

  void add_step(const AttackStep& step) { steps_.push_back(step); }

  /// Schedule all exploit attempts.
  void start();

  const std::vector<AttackResult>& results() const { return results_; }
  std::size_t successful_exploits() const;

  /// Fired after each attempt.
  std::function<void(const AttackResult&)> on_attempt;

  /// Earliest exploit attempt strictly after `after_ns` (INT64_MAX when
  /// none): the fast-forward barrier keeping analytic windows off every
  /// scheduled attack edge. (A *successful* exploit additionally blocks
  /// the model predicate via ClockSyncVm::compromised() from then on.)
  std::int64_t next_pending_ns(std::int64_t after_ns) const;

  // -- sim::Persistent ------------------------------------------------------
  // Accounting-only, like the FaultInjector: scheduled attempts are
  // standing one-shot events the barrier keeps outside every window.
  const char* persist_name() const override { return "attacker"; }
  void save_state(sim::StateWriter&) override {}
  void load_state(sim::StateReader&) override {}
  std::size_t live_events() const override { return scheduled_ - executed_; }

 private:
  void execute(const AttackStep& step);

  sim::Simulation& sim_;
  KernelVulnDb db_;
  std::vector<AttackStep> steps_;
  std::vector<AttackResult> results_;
  std::size_t scheduled_ = 0; ///< attempts start() put on the queue
  std::size_t executed_ = 0;  ///< attempts that have fired
};

} // namespace tsn::faults
