// Fault injection tool (paper section III-C).
//
// Mirrors the python tool the authors ran in each ECD's service VM:
//   * periodic sequential shutdowns of the GM-hosting VMs, rotating over
//     the ECDs (one GM failure per gm_kill_period);
//   * random shutdowns of redundant (non-GM) clock synchronization VMs,
//     rate-bounded per node;
//   * never both VMs of one node at once (that would violate the
//     fail-silent fault hypothesis);
//   * each killed VM reboots after a configurable downtime and rejoins
//     warm (FTA phase).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "hv/ecd.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace tsn::faults {

struct InjectorConfig {
  /// One GM shutdown per this period, rotating across ECDs. 30 min yields
  /// the paper's 48 GM failures in 24 h.
  std::int64_t gm_kill_period_ns = 1'800'000'000'000LL;
  std::int64_t gm_downtime_ns = 60'000'000'000LL;
  /// Mean random shutdowns of each redundant VM per hour (rate-bounded by
  /// min_gap). ~0.65/h over 3 targeted nodes gives the paper's ~46
  /// non-GM failures in 24 h.
  double standby_kills_per_hour = 0.65;
  std::int64_t standby_min_gap_ns = 300'000'000'000LL; // >= 5 min apart (paper max 12/h)
  std::int64_t standby_downtime_ns = 60'000'000'000LL;
};

struct InjectionEvent {
  std::int64_t at_ns = 0;
  std::string vm;
  bool was_gm = false;   ///< the killed VM hosts a grandmaster
  bool is_reboot = false;
};

struct InjectorStats {
  std::uint64_t total_kills = 0;
  std::uint64_t gm_kills = 0;
  std::uint64_t standby_kills = 0;
  std::uint64_t skipped_fault_hypothesis = 0; ///< peer already down
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, std::vector<hv::Ecd*> ecds, const InjectorConfig& cfg);

  /// Exclude a VM from injection (the measurement VM in the paper's setup
  /// must stay alive to produce the precision series).
  void spare(const hv::ClockSyncVm* vm) { spared_.insert(vm); }

  void start();

  const InjectorStats& stats() const { return stats_; }
  const std::vector<InjectionEvent>& events() const { return events_; }
  std::function<void(const InjectionEvent&)> on_event;

 private:
  bool peer_running(std::size_t ecd_idx, std::size_t vm_idx) const;
  void kill(std::size_t ecd_idx, std::size_t vm_idx, bool gm_schedule,
            std::int64_t downtime_ns);
  void schedule_gm_round(std::uint64_t round);
  void schedule_standby(std::size_t ecd_idx);

  sim::Simulation& sim_;
  std::vector<hv::Ecd*> ecds_;
  InjectorConfig cfg_;
  std::set<const hv::ClockSyncVm*> spared_;
  util::RngStream rng_;
  InjectorStats stats_;
  std::vector<InjectionEvent> events_;
};

} // namespace tsn::faults
