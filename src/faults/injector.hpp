// Fault injection tool (paper section III-C).
//
// Mirrors the python tool the authors ran in each ECD's service VM:
//   * periodic sequential shutdowns of the GM-hosting VMs, rotating over
//     the ECDs (one GM failure per gm_kill_period);
//   * random shutdowns of redundant (non-GM) clock synchronization VMs,
//     rate-bounded per node;
//   * never both VMs of one node at once (that would violate the
//     fail-silent fault hypothesis);
//   * each killed VM reboots after a configurable downtime and rejoins
//     warm (FTA phase).
//
// Beyond the paper's tool, the injector can also execute a scripted
// ReplaySchedule: an explicit list of (time, ecd, vm, downtime) kills.
// That is how the campaign fuzzer replays and delta-debugs a failing
// fault sequence, and -- with `raw` set -- how the invariant tests
// deliberately violate the fault hypothesis to prove the oracles fire.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "hv/ecd.hpp"
#include "sim/partition.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace tsn::faults {

struct InjectorConfig {
  /// One GM shutdown per this period, rotating across ECDs. 30 min yields
  /// the paper's 48 GM failures in 24 h.
  std::int64_t gm_kill_period_ns = 1'800'000'000'000LL;
  std::int64_t gm_downtime_ns = 60'000'000'000LL;
  /// Mean random shutdowns of each redundant VM per hour (rate-bounded by
  /// min_gap). ~0.65/h over 3 targeted nodes gives the paper's ~46
  /// non-GM failures in 24 h.
  double standby_kills_per_hour = 0.65;
  std::int64_t standby_min_gap_ns = 300'000'000'000LL; // >= 5 min apart (paper max 12/h)
  std::int64_t standby_downtime_ns = 60'000'000'000LL;
};

struct InjectionEvent {
  std::int64_t at_ns = 0;
  std::string vm;
  bool was_gm = false;   ///< the killed VM hosts a grandmaster
  bool is_reboot = false;
  std::size_t ecd_idx = 0; ///< index into the injector's ECD vector
  std::size_t vm_idx = 0;  ///< VM index within that ECD
  std::int64_t downtime_ns = 0; ///< scheduled downtime (kill events only)
};

struct InjectorStats {
  std::uint64_t total_kills = 0;
  std::uint64_t gm_kills = 0;
  std::uint64_t standby_kills = 0;
  std::uint64_t skipped_fault_hypothesis = 0; ///< peer already down
  /// Reboots that actually executed. A kill always schedules exactly one
  /// reboot, so total_kills == reboots + pending_reboots at all times --
  /// the conservation identity the invariant oracle checks. Reboots whose
  /// fire time lies beyond the end of the run simply stay pending instead
  /// of silently vanishing from the accounting.
  std::uint64_t reboots = 0;
  std::uint64_t pending_reboots = 0; ///< kills whose reboot has not fired yet
};

/// One scripted fail-silent fault: shut VM `vm` of ECD `ecd` down at
/// `at_ns` and boot it again `downtime_ns` later.
struct ScheduledFault {
  std::int64_t at_ns = 0;
  std::size_t ecd = 0;
  std::size_t vm = 0;
  std::int64_t downtime_ns = 60'000'000'000LL;
};

/// A deterministic, self-contained fault schedule (fuzz replay files,
/// shrinker candidates, synthetic invariant-violation tests).
struct ReplaySchedule {
  std::vector<ScheduledFault> faults;
  /// Raw mode bypasses the fail-silent fault-hypothesis guard (and the
  /// spare list), so a schedule can deliberately take both VMs of a node
  /// down at once. Only the invariant tests should want this.
  bool raw = false;

  bool empty() const { return faults.empty(); }
  std::size_t size() const { return faults.size(); }
};

class FaultInjector : public sim::Persistent {
 public:
  FaultInjector(sim::Simulation& sim, std::vector<hv::Ecd*> ecds, const InjectorConfig& cfg);

  /// Partitioned mode: schedule decisions, stats, the event log and all
  /// listeners stay in `home_region` (the constructor's Simulation must be
  /// that region's). Kill/reboot commands cross to the target ECD's region
  /// over control channels (+2 ms), where the liveness guards evaluate
  /// against local state; outcomes report back home (+1 ms). Call before
  /// start()/run(); `ecd_regions[i]` is ECD i's region.
  void set_partitioned(sim::PartitionRuntime* rt, std::vector<std::size_t> ecd_regions,
                       std::size_t home_region = 0);

  /// Exclude a VM from injection (the measurement VM in the paper's setup
  /// must stay alive to produce the precision series).
  void spare(const hv::ClockSyncVm* vm) { spared_.insert(vm); }

  /// Start the paper's randomized schedule.
  void start();

  /// Execute a scripted schedule instead (kills at exact times). The
  /// fault-hypothesis guard still applies unless `schedule.raw`; the
  /// spare list never applies (a replay must reproduce its recording).
  void run(const ReplaySchedule& schedule);

  const InjectorStats& stats() const { return stats_; }
  const std::vector<InjectionEvent>& events() const { return events_; }
  std::function<void(const InjectionEvent&)> on_event;
  /// Additional observers (the invariant suite subscribes here without
  /// clobbering an experiment's own on_event hook).
  void add_listener(std::function<void(const InjectionEvent&)> fn) {
    listeners_.push_back(std::move(fn));
  }

  /// Earliest scheduled kill/reboot strictly after `after_ns`, INT64_MAX
  /// when none: the fast-forward barrier. Register it on the controller as
  ///   ff->add_barrier([&inj](std::int64_t t) { return inj.next_pending_ns(t); });
  /// so no analytic window ever crosses an injection edge.
  std::int64_t next_pending_ns(std::int64_t after_ns) const;

  // -- sim::Persistent ------------------------------------------------------
  // The injector joins the ff controller purely for event accounting: its
  // scheduled kills and reboots are standing one-shot events the barrier
  // keeps outside every window, so they need no park/advance. It carries
  // no restorable state -- the incremental shrinker re-creates a fresh
  // injector per probe (snapshots are taken before any injector runs).
  const char* persist_name() const override { return "fault-injector"; }
  void save_state(sim::StateWriter&) override {}
  void load_state(sim::StateReader&) override {}
  std::size_t live_events() const override { return pending_times_.size(); }

 private:
  bool peer_running(std::size_t ecd_idx, std::size_t vm_idx) const;
  void kill(std::size_t ecd_idx, std::size_t vm_idx, bool gm_schedule,
            std::int64_t downtime_ns, bool raw = false);
  /// Runs in the target ECD's region: guards, shutdown, reboot schedule.
  void execute_kill(std::size_t ecd_idx, std::size_t vm_idx, bool gm_schedule,
                    std::int64_t downtime_ns, bool raw);
  // Bookkeeping; always executes in the home region.
  void record_kill(const InjectionEvent& ev, bool gm_schedule);
  void record_reboot(const InjectionEvent& ev);
  void record_skip();
  void notify(const InjectionEvent& ev);
  void schedule_gm_round(std::uint64_t round);
  void schedule_standby(std::size_t ecd_idx);
  /// Schedule `fn` at `at_ns` on `on`, tracked in pending_times_ (serial
  /// mode only: partitioned regions would race on the multiset, and the
  /// ff/snapshot machinery that consumes it is serial-only anyway).
  void tracked_at(sim::Simulation& on, std::int64_t at_ns, std::function<void()> fn);

  sim::Simulation& sim_;
  std::vector<hv::Ecd*> ecds_;
  InjectorConfig cfg_;
  std::set<const hv::ClockSyncVm*> spared_;
  util::RngStream rng_;
  InjectorStats stats_;
  std::vector<InjectionEvent> events_;
  std::vector<std::function<void(const InjectionEvent&)>> listeners_;
  bool replay_mode_ = false;
  std::int64_t start_ns_ = 0; ///< when start() armed the randomized schedule
  /// Fire times of every scheduled kill/reboot still pending (serial mode).
  std::multiset<std::int64_t> pending_times_;
  sim::PartitionRuntime* rt_ = nullptr;
  std::vector<std::size_t> ecd_regions_;
  std::size_t home_region_ = 0;
};

} // namespace tsn::faults
