#include "faults/kernel_vuln.hpp"

namespace tsn::faults {

KernelVulnDb KernelVulnDb::with_defaults() {
  KernelVulnDb db;
  // CVE-2018-18955: map_write() in kernel/user_namespace.c, 4.15..4.19.1.
  for (const char* v : {"4.15.0", "4.16.0", "4.17.0", "4.18.0", "4.19.0", "4.19.1"}) {
    db.add(kCve2018_18955, v);
  }
  return db;
}

void KernelVulnDb::add(const std::string& cve, const std::string& kernel_version) {
  affected_[cve].insert(kernel_version);
}

bool KernelVulnDb::vulnerable(const std::string& kernel_version, const std::string& cve) const {
  auto it = affected_.find(cve);
  return it != affected_.end() && it->second.count(kernel_version) > 0;
}

} // namespace tsn::faults
