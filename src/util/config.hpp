// Key-value configuration with typed access, used to parameterize
// experiments from the command line ("key=value" pairs) or files.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace tsn::util {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens (e.g. from argv). Unknown syntax throws.
  static Config from_args(int argc, const char* const* argv, int first = 1);

  void set(std::string key, std::string value) { values_[std::move(key)] = std::move(value); }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get_string(const std::string& key, std::string def = {}) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

} // namespace tsn::util
