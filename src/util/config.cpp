#include "util/config.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace tsn::util {

Config Config::from_args(int argc, const char* const* argv, int first) {
  Config cfg;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("Config: expected key=value, got '" + std::string(arg) + "'");
    }
    cfg.set(std::string(trim(arg.substr(0, eq))), std::string(trim(arg.substr(eq + 1))));
  }
  return cfg;
}

std::string Config::get_string(const std::string& key, std::string def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stoll(it->second);
}

double Config::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Config: bad bool for '" + key + "': " + v);
}

} // namespace tsn::util
