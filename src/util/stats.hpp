// Streaming statistics (Welford) and sample collections.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace tsn::util {

/// Numerically stable streaming count/mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance / stddev (matches how the paper reports avg +/- std).
  double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles. Suitable for <=O(1e7) samples.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  double quantile(double q);           ///< q in [0,1]; linear interpolation.
  double median() { return quantile(0.5); }
  RunningStats stats() const;

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = true;
};

} // namespace tsn::util
