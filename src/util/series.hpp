// Time-series recording with interval aggregation (paper plots avg/min/max
// over 120 s buckets on a log axis).
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace tsn::util {

struct SeriesPoint {
  std::int64_t t_ns = 0;
  double value = 0.0;
};

struct AggregatedPoint {
  std::int64_t bucket_start_ns = 0;
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t count = 0;
};

class TimeSeries {
 public:
  void add(std::int64_t t_ns, double value) { points_.push_back({t_ns, value}); }
  const std::vector<SeriesPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Aggregate into fixed buckets of `bucket_ns` aligned to t=0.
  std::vector<AggregatedPoint> aggregate(std::int64_t bucket_ns) const;

  /// Overall stats of the raw values.
  RunningStats stats() const;

  /// Points within [t_lo, t_hi).
  std::vector<SeriesPoint> window(std::int64_t t_lo, std::int64_t t_hi) const;

 private:
  std::vector<SeriesPoint> points_;
};

} // namespace tsn::util
