#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tsn::util {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

RunningStats SampleSet::stats() const {
  RunningStats s;
  for (double x : samples_) s.add(x);
  return s;
}

} // namespace tsn::util
