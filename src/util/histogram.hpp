// Fixed-width histogram used to reproduce the paper's Fig. 4b.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace tsn::util {

class Histogram {
 public:
  /// Buckets of `bin_width` covering [lo, hi); values outside are counted in
  /// underflow/overflow but still contribute to the running stats.
  Histogram(double lo, double hi, double bin_width);

  void add(double x);

  /// Fold another histogram with identical binning into this one
  /// (bin-wise counts, under/overflow and stats). Throws on a binning
  /// mismatch.
  void merge(const Histogram& other);

  std::size_t bin_count() const { return bins_.size(); }
  std::uint64_t bin(std::size_t i) const { return bins_[i]; }
  double bin_lo(std::size_t i) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  const RunningStats& stats() const { return stats_; }

  /// Render as an ASCII bar chart, `width` characters for the largest bin.
  std::string ascii(int width = 50) const;

 private:
  double lo_;
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  RunningStats stats_;
};

} // namespace tsn::util
