#include "util/rng.hpp"

namespace tsn::util {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

RngStream::RngStream(std::uint64_t master_seed, std::string_view stream_name) {
  std::seed_seq seq{master_seed, fnv1a64(stream_name), std::uint64_t{0x9e3779b97f4a7c15ULL}};
  engine_.seed(seq);
}

double RngStream::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double RngStream::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RngStream::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double RngStream::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool RngStream::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double BoundedRandomWalk::step(RngStream& rng) {
  value_ += rng.normal(0.0, step_sigma_);
  // Reflect at the bounds so long runs stay well-mixed instead of sticking.
  if (value_ > bound_) value_ = 2 * bound_ - value_;
  if (value_ < -bound_) value_ = -2 * bound_ - value_;
  if (value_ > bound_) value_ = bound_;   // pathological large step
  if (value_ < -bound_) value_ = -bound_;
  return value_;
}

} // namespace tsn::util
