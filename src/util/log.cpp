#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/str.hpp"

namespace tsn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRC";
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    case LogLevel::kOff: return "OFF";
  }
  return "???";
}

} // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void log_write(LogLevel level, std::string_view tag, std::string_view msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level), static_cast<int>(tag.size()),
               tag.data(), static_cast<int>(msg.size()), msg.data());
}

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list ap;
  va_start(ap, fmt);
  std::string msg = vformat(fmt, ap);
  va_end(ap);
  log_write(level, tag, msg);
}

} // namespace tsn::util
