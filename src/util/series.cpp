#include "util/series.hpp"

#include <map>

namespace tsn::util {

std::vector<AggregatedPoint> TimeSeries::aggregate(std::int64_t bucket_ns) const {
  std::map<std::int64_t, RunningStats> buckets;
  for (const auto& p : points_) {
    buckets[p.t_ns / bucket_ns].add(p.value);
  }
  std::vector<AggregatedPoint> out;
  out.reserve(buckets.size());
  for (const auto& [idx, st] : buckets) {
    out.push_back({idx * bucket_ns, st.mean(), st.min(), st.max(), st.count()});
  }
  return out;
}

RunningStats TimeSeries::stats() const {
  RunningStats st;
  for (const auto& p : points_) st.add(p.value);
  return st;
}

std::vector<SeriesPoint> TimeSeries::window(std::int64_t t_lo, std::int64_t t_hi) const {
  std::vector<SeriesPoint> out;
  for (const auto& p : points_) {
    if (p.t_ns >= t_lo && p.t_ns < t_hi) out.push_back(p);
  }
  return out;
}

} // namespace tsn::util
