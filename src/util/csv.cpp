#include "util/csv.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace tsn::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& columns)
    : path_(path), out_(path), column_count_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << columns[i] << (i + 1 < columns.size() ? "," : "\n");
  }
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != column_count_) {
    throw std::invalid_argument("CsvWriter: row width mismatch in " + path_);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << cells[i] << (i + 1 < cells.size() ? "," : "\n");
  }
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double c : cells) s.push_back(format("%.6g", c));
  row(s);
}

} // namespace tsn::util
