// String formatting helpers (libstdc++ 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsn::util {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string format(const char* fmt, ...);

/// Vararg backend for format().
std::string vformat(const char* fmt, std::va_list ap);

/// Split `s` on `sep`, trimming ASCII whitespace from each piece.
std::vector<std::string> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Render nanoseconds as a human-readable duration ("1.25us", "12.6ms").
std::string human_ns(std::int64_t ns);

/// Render nanoseconds since experiment start as "hh:mm:ss".
std::string hms(std::int64_t ns);

/// Parse a human duration into nanoseconds: a plain number is seconds,
/// an s/m/h/d/w suffix scales it ("90", "90s", "15m", "36h", "1w").
/// Fractions are allowed ("0.5h"). Throws std::invalid_argument on
/// malformed input, a negative value, or ns overflow.
std::int64_t parse_duration_ns(std::string_view s);

} // namespace tsn::util
