#include "util/str.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tsn::util {

std::string vformat(const char* fmt, std::va_list ap) {
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
  va_end(ap2);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::string out = vformat(fmt, ap);
  va_end(ap);
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    out.emplace_back(trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string human_ns(std::int64_t ns) {
  const double a = std::abs(static_cast<double>(ns));
  if (a < 1e3) return format("%lldns", static_cast<long long>(ns));
  if (a < 1e6) return format("%.2fus", static_cast<double>(ns) / 1e3);
  if (a < 1e9) return format("%.2fms", static_cast<double>(ns) / 1e6);
  return format("%.3fs", static_cast<double>(ns) / 1e9);
}

std::string hms(std::int64_t ns) {
  const std::int64_t total_s = ns / 1'000'000'000;
  return format("%02lld:%02lld:%02lld", static_cast<long long>(total_s / 3600),
                static_cast<long long>((total_s / 60) % 60),
                static_cast<long long>(total_s % 60));
}

std::int64_t parse_duration_ns(std::string_view s) {
  s = trim(s);
  double scale_s = 1.0;
  if (!s.empty()) {
    switch (s.back()) {
      case 's': scale_s = 1.0; s.remove_suffix(1); break;
      case 'm': scale_s = 60.0; s.remove_suffix(1); break;
      case 'h': scale_s = 3600.0; s.remove_suffix(1); break;
      case 'd': scale_s = 86'400.0; s.remove_suffix(1); break;
      case 'w': scale_s = 604'800.0; s.remove_suffix(1); break;
      default: break;
    }
  }
  const std::string num(s);
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(num, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad duration: '" + num + "'");
  }
  if (used != num.size() || value < 0.0) {
    throw std::invalid_argument("bad duration: '" + num + "'");
  }
  const double ns = value * scale_s * 1e9;
  if (!(ns < 9.2e18)) throw std::invalid_argument("duration overflows ns: '" + num + "'");
  return static_cast<std::int64_t>(ns);
}

} // namespace tsn::util
