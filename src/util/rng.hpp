// Deterministic random-number streams.
//
// Every stochastic component of the simulation draws from its own named
// RngStream derived from (master seed, stream name). This makes runs
// reproducible and, crucially, makes a component's random sequence
// independent of the global event interleaving: adding a new component does
// not perturb the draws of existing ones.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace tsn::util {

/// 64-bit FNV-1a hash, used to derive per-stream seeds from names.
std::uint64_t fnv1a64(std::string_view s);

class RngStream {
 public:
  RngStream() : RngStream(0, "default") {}
  RngStream(std::uint64_t master_seed, std::string_view stream_name);

  /// Uniform in [0, 1).
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);
  /// Bernoulli with probability p.
  bool chance(double p);

  /// Underlying engine, for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// A random walk clamped to [-bound, +bound]; used for oscillator wander.
class BoundedRandomWalk {
 public:
  BoundedRandomWalk(double initial, double step_sigma, double bound)
      : value_(initial), step_sigma_(step_sigma), bound_(bound) {}

  /// Advance one step; reflects at the bounds.
  double step(RngStream& rng);
  double value() const { return value_; }
  /// Restore a previously observed position (snapshot/rollback).
  void set_value(double v) { value_ = v; }

 private:
  double value_;
  double step_sigma_;
  double bound_;
};

} // namespace tsn::util
