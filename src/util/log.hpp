// Minimal leveled logger with component tags.
//
// The simulator is deterministic and single-threaded per Simulation, but the
// logger itself is thread-safe so that seqlock/shared-memory tests exercising
// real std::thread concurrency may log too.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>

namespace tsn::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace"|"debug"|"info"|"warn"|"error"|"off" (defaults to kInfo).
LogLevel parse_log_level(std::string_view name);

/// Core sink: writes "[LVL] [tag] message\n" to stderr under a mutex.
void log_write(LogLevel level, std::string_view tag, std::string_view msg);

[[gnu::format(printf, 3, 4)]] void logf(LogLevel level, const char* tag, const char* fmt, ...);

#define TSN_LOG_TRACE(tag, ...) ::tsn::util::logf(::tsn::util::LogLevel::kTrace, tag, __VA_ARGS__)
#define TSN_LOG_DEBUG(tag, ...) ::tsn::util::logf(::tsn::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define TSN_LOG_INFO(tag, ...) ::tsn::util::logf(::tsn::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define TSN_LOG_WARN(tag, ...) ::tsn::util::logf(::tsn::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define TSN_LOG_ERROR(tag, ...) ::tsn::util::logf(::tsn::util::LogLevel::kError, tag, __VA_ARGS__)

} // namespace tsn::util
