// CSV emission for experiment series (consumed by external plotting).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace tsn::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Append one row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row_numeric(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t column_count_;
};

} // namespace tsn::util
