#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/str.hpp"

namespace tsn::util {

Histogram::Histogram(double lo, double hi, double bin_width) : lo_(lo), bin_width_(bin_width) {
  const double span = std::max(hi - lo, bin_width);
  bins_.assign(static_cast<std::size_t>(std::ceil(span / bin_width)), 0);
}

void Histogram::add(double x) {
  stats_.add(x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const std::size_t idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= bins_.size()) {
    ++overflow_;
    return;
  }
  ++bins_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.bin_width_ != bin_width_ || other.bins_.size() != bins_.size()) {
    throw std::invalid_argument("Histogram::merge: binning mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  stats_.merge(other.stats_);
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + static_cast<double>(i) * bin_width_; }

std::string Histogram::ascii(int width) const {
  std::uint64_t peak = 1;
  for (auto b : bins_) peak = std::max(peak, b);
  std::string out;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const int len = static_cast<int>(static_cast<double>(bins_[i]) / static_cast<double>(peak) *
                                     width);
    out += format("%10.0f..%-10.0f |%-*s| %llu\n", bin_lo(i), bin_lo(i) + bin_width_, width,
                  std::string(static_cast<std::size_t>(len), '#').c_str(),
                  static_cast<unsigned long long>(bins_[i]));
  }
  if (overflow_ > 0) out += format("%23s |%llu above range\n", ">", static_cast<unsigned long long>(overflow_));
  return out;
}

} // namespace tsn::util
