// InlineFunction: a move-only, type-erased callable with fixed inline
// storage and no heap allocation, ever.
//
// std::function's small-object optimisation on libstdc++ only covers 16
// bytes, so nearly every closure the simulator builds (periodic reposts,
// frame deliveries, ETF launches) used to heap-allocate on construction
// and again on every move through the event queue. InlineFunction trades
// generality for a hard guarantee: the capture either fits the inline
// buffer or the program does not compile.
//
// Contract (enforced by static_assert at every construction site):
//   - sizeof(callable)  <= Capacity
//   - alignof(callable) <= alignof(std::max_align_t)
//   - the callable is nothrow-move-constructible (moves happen inside
//     the event queue where throwing would corrupt the heap/wheel)
//
// Unlike std::function it supports move-only captures (FrameRef,
// unique_ptr, another InlineFunction), which is what lets the zero-copy
// frame path thread ownership through scheduled events.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tsn::util {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction; // primary left undefined; see the R(Args...) partial.

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {} // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) { // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "closure capture exceeds InlineFunction inline storage; "
                  "shrink the capture (e.g. capture an index instead of the "
                  "object) or raise the Capacity parameter");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "captures must be nothrow-move-constructible: moves happen "
                  "inside the event queue where throwing would corrupt it");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    ops_ = &kOpsFor<D>;
  }

  InlineFunction(InlineFunction&& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this == &other) return *this;
    reset();
    if (other.ops_) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* src, void* dst) noexcept; // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr Ops kOpsFor{
      [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

} // namespace tsn::util
