#include "tsn_time/oscillator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/persist.hpp"

namespace tsn::time {
namespace {

double initial_drift(const OscillatorModel& model, util::RngStream& rng) {
  if (std::isnan(model.initial_drift_ppm)) {
    return rng.uniform(-model.max_drift_ppm, model.max_drift_ppm);
  }
  return model.initial_drift_ppm;
}

} // namespace

Oscillator::Oscillator(const OscillatorModel& model, util::RngStream rng)
    : model_(model),
      rng_(std::move(rng)),
      drift_(0.0, model.wander_sigma_ppm, model.max_drift_ppm),
      next_wander_at_ns_(model.wander_step_ns) {
  drift_ = util::BoundedRandomWalk(initial_drift(model_, rng_), model_.wander_sigma_ppm,
                                   model_.max_drift_ppm);
}

long double Oscillator::integrate_segment(std::int64_t dt_ns) const {
  const long double rate = 1.0L + static_cast<long double>(drift_.value()) * 1e-6L;
  return static_cast<long double>(dt_ns) * rate;
}

void Oscillator::wander_step() { drift_.step(rng_); }

void Oscillator::save_state(sim::StateWriter& w) const {
  w.f64(drift_.value());
  w.rng(rng_);
  w.i64(last_.ns());
  w.i64(next_wander_at_ns_);
}

void Oscillator::load_state(sim::StateReader& r) {
  drift_.set_value(r.f64());
  r.rng(rng_);
  last_ = sim::SimTime{r.i64()};
  next_wander_at_ns_ = r.i64();
}

double Oscillator::fold_drift(double v) const {
  const double b = model_.max_drift_ppm;
  const double period = 4.0 * b;
  double x = std::fmod(v + b, period);
  if (x < 0.0) x += period;
  return x <= 2.0 * b ? x - b : 3.0 * b - x;
}

long double Oscillator::advance_coarse(sim::SimTime to) {
  assert(to >= last_);
  const std::int64_t target = to.ns();
  // Wander boundaries inside (last_, target]. Below the cutoff the exact
  // walk is cheap and keeps short advances draw-identical to advance().
  constexpr std::int64_t kCoarseMinQuanta = 64;
  const std::int64_t boundaries =
      next_wander_at_ns_ <= target
          ? (target - next_wander_at_ns_) / model_.wander_step_ns + 1
          : 0;
  if (boundaries < kCoarseMinQuanta) return advance(to);

  // Decomposition mirroring advance(): head segment at the entry drift v0,
  // M = boundaries-1 full quanta at drifts v_1..v_M, one final wander step
  // at the last boundary, tail segment at the exit drift.
  //
  // With i.i.d. steps xi_i ~ N(0, sigma^2) and S_j = xi_1 + .. + xi_j:
  //   A = S_M             ~ N(0, M sigma^2)
  //   B = sum_{j<=M} S_j,   Var(B) = sigma^2 M(M+1)(2M+1)/6,
  //                         Cov(A,B) = sigma^2 M(M+1)/2
  // so B | A ~ N((M+1)/2 * A, sigma^2 M(M+1)(M-1)/12) and the quanta
  // integral is M*delta*(1 + (v0 + B/M)*1e-6).
  long double elapsed = integrate_segment(next_wander_at_ns_ - last_.ns());
  const std::int64_t quanta = boundaries - 1;
  const double v0 = drift_.value();
  const double sigma = model_.wander_sigma_ppm;
  const double m = static_cast<double>(quanta);
  double walk_sum = 0.0;
  if (quanta > 0) {
    walk_sum = rng_.normal(0.0, sigma * std::sqrt(m));
    double integral = (m + 1.0) / 2.0 * walk_sum;
    if (quanta > 1) {
      integral +=
          rng_.normal(0.0, sigma * std::sqrt(m * (m + 1.0) * (m - 1.0) / 12.0));
    }
    const double avg = std::clamp(v0 + integral / m, -model_.max_drift_ppm,
                                  model_.max_drift_ppm);
    elapsed += static_cast<long double>(quanta) *
               static_cast<long double>(model_.wander_step_ns) *
               (1.0L + static_cast<long double>(avg) * 1e-6L);
  }
  const double exit_drift = fold_drift(v0 + walk_sum + rng_.normal(0.0, sigma));
  drift_.set_value(exit_drift);
  const std::int64_t last_boundary =
      next_wander_at_ns_ + quanta * model_.wander_step_ns;
  elapsed += static_cast<long double>(target - last_boundary) *
             (1.0L + static_cast<long double>(exit_drift) * 1e-6L);
  next_wander_at_ns_ = last_boundary + model_.wander_step_ns;
  last_ = to;
  return elapsed;
}

long double Oscillator::advance(sim::SimTime to) {
  assert(to >= last_);
  long double elapsed_local = 0.0L;
  std::int64_t t = last_.ns();
  const std::int64_t target = to.ns();
  while (t < target) {
    const std::int64_t seg_end = std::min(target, next_wander_at_ns_);
    elapsed_local += integrate_segment(seg_end - t);
    t = seg_end;
    if (t == next_wander_at_ns_) {
      wander_step();
      next_wander_at_ns_ += model_.wander_step_ns;
    }
  }
  last_ = to;
  return elapsed_local;
}

} // namespace tsn::time
