#include "tsn_time/oscillator.hpp"

#include <algorithm>
#include <cassert>

namespace tsn::time {
namespace {

double initial_drift(const OscillatorModel& model, util::RngStream& rng) {
  if (std::isnan(model.initial_drift_ppm)) {
    return rng.uniform(-model.max_drift_ppm, model.max_drift_ppm);
  }
  return model.initial_drift_ppm;
}

} // namespace

Oscillator::Oscillator(const OscillatorModel& model, util::RngStream rng)
    : model_(model),
      rng_(std::move(rng)),
      drift_(0.0, model.wander_sigma_ppm, model.max_drift_ppm),
      next_wander_at_ns_(model.wander_step_ns) {
  drift_ = util::BoundedRandomWalk(initial_drift(model_, rng_), model_.wander_sigma_ppm,
                                   model_.max_drift_ppm);
}

long double Oscillator::integrate_segment(std::int64_t dt_ns) const {
  const long double rate = 1.0L + static_cast<long double>(drift_.value()) * 1e-6L;
  return static_cast<long double>(dt_ns) * rate;
}

void Oscillator::wander_step() { drift_.step(rng_); }

long double Oscillator::advance(sim::SimTime to) {
  assert(to >= last_);
  long double elapsed_local = 0.0L;
  std::int64_t t = last_.ns();
  const std::int64_t target = to.ns();
  while (t < target) {
    const std::int64_t seg_end = std::min(target, next_wander_at_ns_);
    elapsed_local += integrate_segment(seg_end - t);
    t = seg_end;
    if (t == next_wander_at_ns_) {
      wander_step();
      next_wander_at_ns_ += model_.wander_step_ns;
    }
  }
  last_ = to;
  return elapsed_local;
}

} // namespace tsn::time
