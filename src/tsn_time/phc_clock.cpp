#include "tsn_time/phc_clock.hpp"

#include <algorithm>
#include <cmath>

#include "sim/persist.hpp"

namespace tsn::time {

PhcClock::PhcClock(sim::Simulation& sim, const PhcModel& model, const std::string& name)
    : sim_(sim),
      model_(model),
      name_(name),
      osc_(model.oscillator, sim.make_rng("osc/" + name)),
      ts_rng_(sim.make_rng("phc-ts/" + name)) {}

void PhcClock::advance_to_now() {
  const long double local_elapsed = osc_.advance(sim_.now());
  value_ns_ += local_elapsed * (1.0L + static_cast<long double>(freq_adj_ppb_) * 1e-9L) *
               (1.0L + static_cast<long double>(atk_drift_ppm_) * 1e-6L);
}

void PhcClock::catch_up_coarse() {
  const long double local_elapsed = osc_.advance_coarse(sim_.now());
  value_ns_ += local_elapsed * (1.0L + static_cast<long double>(freq_adj_ppb_) * 1e-9L) *
               (1.0L + static_cast<long double>(atk_drift_ppm_) * 1e-6L);
}

std::int64_t PhcClock::read() {
  advance_to_now();
  return static_cast<std::int64_t>(std::llroundl(value_ns_));
}

std::int64_t PhcClock::hw_timestamp() {
  const double jitter = ts_rng_.normal(0.0, model_.timestamp_jitter_ns);
  return read() + static_cast<std::int64_t>(std::llround(jitter));
}

void PhcClock::adj_frequency(double ppb) {
  advance_to_now();
  freq_adj_ppb_ = std::clamp(ppb, -model_.max_freq_adj_ppb, model_.max_freq_adj_ppb);
}

void PhcClock::set_drift_attack(double extra_ppm) {
  advance_to_now(); // integrate the old rate up to now first
  atk_drift_ppm_ = extra_ppm;
}

void PhcClock::step(std::int64_t delta_ns) {
  advance_to_now();
  value_ns_ += static_cast<long double>(delta_ns);
}

void PhcClock::save_state(sim::StateWriter& w) {
  advance_to_now();
  osc_.save_state(w);
  w.rng(ts_rng_);
  w.ld(value_ns_);
  w.f64(freq_adj_ppb_);
  w.f64(atk_drift_ppm_);
}

void PhcClock::load_state(sim::StateReader& r) {
  osc_.load_state(r);
  r.rng(ts_rng_);
  value_ns_ = r.ld();
  freq_adj_ppb_ = r.f64();
  atk_drift_ppm_ = r.f64();
}

double PhcClock::effective_rate() const {
  return (1.0 + osc_.drift_ppm() * 1e-6) * (1.0 + freq_adj_ppb_ * 1e-9);
}

} // namespace tsn::time
