// PTP hardware clock (PHC) model, e.g. the Intel i210's SYSTIM.
//
// The PHC counts oscillator ticks scaled by a servo-programmable frequency
// adjustment (the i210's TIMINCA addend). It supports the same operations
// LinuxPTP uses through the PHC char device: clock_gettime, clock_adjtime
// with ADJ_FREQUENCY, and offset steps. Hardware rx/tx timestamps are PHC
// reads with a small timestamping jitter.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulation.hpp"
#include "tsn_time/oscillator.hpp"

namespace tsn::time {

struct PhcModel {
  OscillatorModel oscillator;
  /// Stddev of HW timestamp error, ns (PHY latching + quantization).
  double timestamp_jitter_ns = 8.0;
  /// Max frequency adjustment the servo may program, ppb (linuxptp default
  /// queries the driver; igb reports 62499999 ppb, we model a sane bound).
  double max_freq_adj_ppb = 62'499'999.0;
};

class PhcClock {
 public:
  PhcClock(sim::Simulation& sim, const PhcModel& model, const std::string& name);

  PhcClock(const PhcClock&) = delete;
  PhcClock& operator=(const PhcClock&) = delete;

  /// clock_gettime(PHC) at the current simulation time.
  std::int64_t read();

  /// A hardware rx/tx timestamp: PHC read plus timestamping jitter.
  std::int64_t hw_timestamp();

  /// ADJ_FREQUENCY: set the servo's frequency adjustment (ppb, clamped).
  void adj_frequency(double ppb);
  double freq_adj_ppb() const { return freq_adj_ppb_; }

  /// Step the clock by delta_ns (linuxptp "clockadj_step").
  void step(std::int64_t delta_ns);

  /// Integrate the clock up to the current simulation time through the
  /// oscillator's O(1) analytic path (Oscillator::advance_coarse) instead
  /// of quantum-by-quantum. The fast-forward stepper calls this on every
  /// clock it touches -- and on the whole world at window exit -- so that
  /// no clock ever pays a multi-minute lazy integration on its first
  /// post-window read. A no-op when the clock is already current.
  void catch_up_coarse();

  /// OS-timer manipulation (attack library): a hidden extra rate applied
  /// on top of oscillator drift and the servo's adjustment, modelling a
  /// compromised clock driver silently skewing the victim's timebase.
  /// The servo chases it like real drift but never sees it.
  void set_drift_attack(double extra_ppm);
  void clear_drift_attack() { set_drift_attack(0.0); }
  double drift_attack_ppm() const { return atk_drift_ppm_; }

  /// Current oscillator frequency error (hidden from the protocol stack;
  /// exposed for experiment instrumentation only).
  double true_drift_ppm() const { return osc_.drift_ppm(); }

  /// Effective rate d(PHC)/d(true time) right now (instrumentation only).
  double effective_rate() const;

  const std::string& name() const { return name_; }

  /// Snapshot support: oscillator, timestamp RNG, accumulator and rates.
  /// save_state first advances the clock to now() so capture-and-continue
  /// and restore resume from bit-identical integration state.
  void save_state(sim::StateWriter& w);
  void load_state(sim::StateReader& r);

 private:
  void advance_to_now();

  sim::Simulation& sim_;
  PhcModel model_;
  std::string name_;
  Oscillator osc_;
  util::RngStream ts_rng_;
  long double value_ns_ = 0.0L;
  double freq_adj_ppb_ = 0.0;
  double atk_drift_ppm_ = 0.0;
};

} // namespace tsn::time
