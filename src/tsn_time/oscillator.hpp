// Crystal oscillator model.
//
// The instantaneous frequency error ("drift") is a piecewise-constant,
// bounded random walk: within each wander quantum the rate is constant, at
// quantum boundaries it takes a small normally-distributed step and reflects
// at +/- max_drift_ppm. This reproduces the assumptions behind the paper's
// drift offset term Gamma = 2 * r_max * S with r_max = 5 ppm (IEEE 802.1AS
// requires +/-100 ppm accuracy but the paper uses the 5 ppm figure from the
// literature for the bound).
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/sim_time.hpp"
#include "util/rng.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
} // namespace tsn::sim

namespace tsn::time {

struct OscillatorModel {
  /// Initial frequency error in ppm; NaN draws uniformly in [-max, +max].
  double initial_drift_ppm = std::nan("");
  /// Hard bound on |drift|.
  double max_drift_ppm = 5.0;
  /// Random-walk step stddev per wander quantum, in ppm.
  double wander_sigma_ppm = 0.002;
  /// Wander quantum.
  std::int64_t wander_step_ns = 10'000'000; // 10 ms
};

class Oscillator {
 public:
  Oscillator(const OscillatorModel& model, util::RngStream rng);

  /// Integrate oscillator-local elapsed time from the last call up to `to`
  /// (true time). Returns elapsed local nanoseconds as long double so the
  /// caller can accumulate without rounding bias. `to` must be monotonic.
  long double advance(sim::SimTime to);

  /// O(1) analytic advance for the fast-forward stepper (DESIGN.md §12).
  /// Instead of walking every wander quantum, samples the (drift
  /// increment, drift time-integral) pair jointly from the random walk's
  /// closed-form Gaussian distribution -- three normal draws regardless of
  /// span. Statistically equivalent to advance() away from the +/-max
  /// bound (reflection is applied only to the endpoint and the integral's
  /// implied average is clamped), but NOT draw-identical: the RNG stream
  /// advances differently, so trajectories diverge from an advance() run
  /// at the first coarse call. Falls back to advance() for short spans.
  long double advance_coarse(sim::SimTime to);

  double drift_ppm() const { return drift_.value(); }
  sim::SimTime last_advanced() const { return last_; }

  /// Snapshot support: walk position, RNG engine and integration cursor.
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);

 private:
  long double integrate_segment(std::int64_t dt_ns) const;
  void wander_step();
  /// Reflect a drift value into [-max_drift_ppm, +max_drift_ppm], the same
  /// boundary behaviour the per-step walk has.
  double fold_drift(double v) const;

  OscillatorModel model_;
  util::RngStream rng_;
  util::BoundedRandomWalk drift_;
  sim::SimTime last_ = sim::SimTime::zero();
  std::int64_t next_wander_at_ns_;
};

} // namespace tsn::time
