// Point-to-point full-duplex link with per-direction delay models.
//
// Per-direction asymmetry is what produces the paper's reading error
// E = dmax - dmin and measurement error gamma; the jitter term models PHY
// and cable-length variation.
//
// A link may also span a partition boundary (make_boundary): each end
// then lives in its own region Simulation and delivery crosses via the
// PartitionRuntime's mailbox channels instead of a local event. The link
// propagation floor (base/2 plus the empty-frame serialization time) is
// the channel's conservative lookahead, and the RNG splits into one
// stream per direction so each is only ever touched by its sender's
// region.
#pragma once

#include <cstdint>
#include <optional>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "sim/partition.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace tsn::net {

class Port;

struct DelayModel {
  /// Fixed propagation + PHY latency, ns.
  std::int64_t base_ns = 500;
  /// Gaussian jitter stddev, ns (truncated so delay stays >= base/2).
  double jitter_sigma_ns = 10.0;
};

struct LinkConfig {
  /// Delay for frames travelling from end A to end B and vice versa; the
  /// two directions may be configured asymmetrically.
  DelayModel a_to_b;
  DelayModel b_to_a;
  /// Line rate for serialization delay.
  double rate_bps = 1e9;
};

class Link : public sim::Persistent {
 public:
  Link(sim::Simulation& sim, Port& end_a, Port& end_b, const LinkConfig& cfg,
       const std::string& name);

  /// A link whose ends live in different regions of a partitioned run.
  /// Delivery crosses the runtime's channels; frames are copied by value
  /// at the boundary and re-adopted into the destination region's pool
  /// (FrameRefs must never cross regions).
  static std::unique_ptr<Link> make_boundary(sim::PartitionRuntime& rt,
                                             std::size_t region_a, Port& end_a,
                                             std::size_t region_b, Port& end_b,
                                             const LinkConfig& cfg,
                                             const std::string& name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Called by a Port: propagate `frame` to the opposite end. `from` must be
  /// one of the two endpoints. The frame is shared, not copied: delivery
  /// captures a FrameRef (boundary links copy instead, see make_boundary).
  void transmit_from(Port& from, const FrameRef& frame);

  Port& peer_of(Port& end) const;

  /// Serialization time of `frame` at the line rate, ns.
  std::int64_t serialization_ns(const EthernetFrame& frame) const;

  /// One random end-to-end delay draw (serialization excluded) for the given
  /// direction; used both for delivery and by tests.
  std::int64_t draw_delay(bool from_a);

  /// Adversarial asymmetric path-delay injection (attack library): add
  /// `bias_ns` plus `ramp_ns_per_s * elapsed` to every subsequent draw in
  /// one direction. Only positive totals are meaningful -- the draw is
  /// still clamped at the model floor base/2, so the boundary channel's
  /// lookahead contract survives any attack magnitude. Must be called
  /// from the sender region (it reads that region's clock).
  void set_delay_attack(bool from_a, std::int64_t bias_ns, double ramp_ns_per_s);
  void clear_delay_attack(bool from_a);

  /// Conservative lower bound on any delivery delay in the given direction
  /// (the boundary channel's lookahead): the delay-model floor base/2 plus
  /// the serialization time of an empty frame.
  std::int64_t min_delay_ns(bool from_a) const;

  bool is_boundary() const { return rt_ != nullptr; }
  const LinkConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  /// True when either direction currently has an adversarial delay armed
  /// (a fast-forward barrier: attacked paths must stay event-simulated).
  bool attack_armed() const { return atk_ab_.active || atk_ba_.active; }

  // -- sim::Persistent: delay RNG streams + armed attack state. In-flight
  // deliveries are queue transients excluded by the quiescence gate; no
  // standing events, so the ff hooks keep their no-op defaults.
  const char* persist_name() const override { return name_.c_str(); }
  void save_state(sim::StateWriter& w) override;
  void load_state(sim::StateReader& r) override;

 private:
  Link(sim::PartitionRuntime& rt, std::size_t region_a, Port& end_a,
       std::size_t region_b, Port& end_b, const LinkConfig& cfg,
       const std::string& name);

  struct DelayAttack {
    bool active = false;
    std::int64_t bias_ns = 0;
    double ramp_ns_per_s = 0.0;
    std::int64_t start_ns = 0; ///< sender-region time at activation
  };
  sim::Simulation& sender_sim(bool from_a);

  sim::Simulation& sim_; ///< end A's Simulation (the only one, if local)
  sim::Simulation* sim_b_ = nullptr; ///< end B's Simulation (boundary only)
  Port& a_;
  Port& b_;
  LinkConfig cfg_;
  std::string name_;
  util::RngStream rng_;                  ///< legacy shared stream (local links)
  sim::PartitionRuntime* rt_ = nullptr;  ///< non-null for boundary links
  std::optional<util::RngStream> rng_ba_; ///< boundary: B->A direction stream
  std::uint32_t ch_ab_ = 0, ch_ba_ = 0;
  DelayAttack atk_ab_, atk_ba_; ///< per-direction adversarial delay
};

} // namespace tsn::net
