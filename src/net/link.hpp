// Point-to-point full-duplex link with per-direction delay models.
//
// Per-direction asymmetry is what produces the paper's reading error
// E = dmax - dmin and measurement error gamma; the jitter term models PHY
// and cable-length variation.
#pragma once

#include <cstdint>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace tsn::net {

class Port;

struct DelayModel {
  /// Fixed propagation + PHY latency, ns.
  std::int64_t base_ns = 500;
  /// Gaussian jitter stddev, ns (truncated so delay stays >= base/2).
  double jitter_sigma_ns = 10.0;
};

struct LinkConfig {
  /// Delay for frames travelling from end A to end B and vice versa; the
  /// two directions may be configured asymmetrically.
  DelayModel a_to_b;
  DelayModel b_to_a;
  /// Line rate for serialization delay.
  double rate_bps = 1e9;
};

class Link {
 public:
  Link(sim::Simulation& sim, Port& end_a, Port& end_b, const LinkConfig& cfg,
       const std::string& name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Called by a Port: propagate `frame` to the opposite end. `from` must be
  /// one of the two endpoints. The frame is shared, not copied: delivery
  /// captures a FrameRef.
  void transmit_from(Port& from, const FrameRef& frame);

  Port& peer_of(Port& end) const;

  /// Serialization time of `frame` at the line rate, ns.
  std::int64_t serialization_ns(const EthernetFrame& frame) const;

  /// One random end-to-end delay draw (serialization excluded) for the given
  /// direction; used both for delivery and by tests.
  std::int64_t draw_delay(bool from_a);

  const LinkConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

 private:
  sim::Simulation& sim_;
  Port& a_;
  Port& b_;
  LinkConfig cfg_;
  std::string name_;
  util::RngStream rng_;
};

} // namespace tsn::net
