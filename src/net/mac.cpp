#include "net/mac.hpp"

#include "util/str.hpp"

namespace tsn::net {

MacAddress MacAddress::from_u64(std::uint64_t v) {
  std::array<std::uint8_t, 6> b{};
  for (int i = 5; i >= 0; --i) {
    b[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return MacAddress(b);
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t v = 0;
  for (auto byte : bytes_) v = (v << 8) | byte;
  return v;
}

bool MacAddress::is_broadcast() const {
  for (auto b : bytes_) {
    if (b != 0xff) return false;
  }
  return true;
}

std::string MacAddress::to_string() const {
  return util::format("%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2], bytes_[3],
                      bytes_[4], bytes_[5]);
}

MacAddress MacAddress::gptp_multicast() {
  return MacAddress({0x01, 0x80, 0xC2, 0x00, 0x00, 0x0E});
}

MacAddress MacAddress::broadcast() {
  return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
}

} // namespace tsn::net
