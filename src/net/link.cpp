#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "net/port.hpp"
#include "sim/partition.hpp"
#include "sim/persist.hpp"

namespace tsn::net {

Link::Link(sim::Simulation& sim, Port& end_a, Port& end_b, const LinkConfig& cfg,
           const std::string& name)
    : sim_(sim), a_(end_a), b_(end_b), cfg_(cfg), name_(name), rng_(sim.make_rng("link/" + name)) {
  a_.attach_link(this);
  b_.attach_link(this);
}

Link::Link(sim::PartitionRuntime& rt, std::size_t region_a, Port& end_a,
           std::size_t region_b, Port& end_b, const LinkConfig& cfg,
           const std::string& name)
    : sim_(rt.region_sim(region_a)),
      sim_b_(&rt.region_sim(region_b)),
      a_(end_a),
      b_(end_b),
      cfg_(cfg),
      name_(name),
      // Per-direction streams: each is only ever advanced by its sender's
      // region, so the draws are race-free and independent of how regions
      // interleave. (The serial path keeps the single legacy stream, which
      // both directions share — boundary and local delay sequences differ
      // by design; determinism is across partition counts >= 1, see
      // Scenario.)
      rng_(rt.region_sim(region_a).make_rng("link/" + name + "/ab")),
      rt_(&rt),
      rng_ba_(rt.region_sim(region_b).make_rng("link/" + name + "/ba")) {
  a_.attach_link(this);
  b_.attach_link(this);
  ch_ab_ = rt.add_channel(region_a, region_b, min_delay_ns(true));
  ch_ba_ = rt.add_channel(region_b, region_a, min_delay_ns(false));
}

std::unique_ptr<Link> Link::make_boundary(sim::PartitionRuntime& rt,
                                          std::size_t region_a, Port& end_a,
                                          std::size_t region_b, Port& end_b,
                                          const LinkConfig& cfg,
                                          const std::string& name) {
  return std::unique_ptr<Link>(
      new Link(rt, region_a, end_a, region_b, end_b, cfg, name));
}

Port& Link::peer_of(Port& end) const {
  assert(&end == &a_ || &end == &b_);
  return (&end == &a_) ? b_ : a_;
}

std::int64_t Link::serialization_ns(const EthernetFrame& frame) const {
  // +20 bytes preamble/SFD/IFG overhead on the wire.
  const double bits = static_cast<double>(frame.wire_size() + 20) * 8.0;
  return static_cast<std::int64_t>(std::llround(bits / cfg_.rate_bps * 1e9));
}

sim::Simulation& Link::sender_sim(bool from_a) {
  return (!from_a && sim_b_) ? *sim_b_ : sim_;
}

std::int64_t Link::draw_delay(bool from_a) {
  const DelayModel& m = from_a ? cfg_.a_to_b : cfg_.b_to_a;
  util::RngStream& rng = (!from_a && rng_ba_) ? *rng_ba_ : rng_;
  const double jitter = rng.normal(0.0, m.jitter_sigma_ns);
  std::int64_t d = m.base_ns + static_cast<std::int64_t>(std::llround(jitter));
  const DelayAttack& atk = from_a ? atk_ab_ : atk_ba_;
  if (atk.active) {
    const double elapsed_s =
        static_cast<double>(sender_sim(from_a).now().ns() - atk.start_ns) * 1e-9;
    d += atk.bias_ns +
         static_cast<std::int64_t>(std::llround(atk.ramp_ns_per_s * std::max(0.0, elapsed_s)));
  }
  // The floor holds under attack too: min_delay_ns() stays a valid
  // lookahead for boundary channels whatever the adversary injects.
  return std::max(d, m.base_ns / 2);
}

void Link::set_delay_attack(bool from_a, std::int64_t bias_ns, double ramp_ns_per_s) {
  DelayAttack& atk = from_a ? atk_ab_ : atk_ba_;
  atk.active = true;
  atk.bias_ns = bias_ns;
  atk.ramp_ns_per_s = ramp_ns_per_s;
  atk.start_ns = sender_sim(from_a).now().ns();
}

void Link::clear_delay_attack(bool from_a) {
  (from_a ? atk_ab_ : atk_ba_).active = false;
}

void Link::save_state(sim::StateWriter& w) {
  w.rng(rng_);
  w.b(rng_ba_.has_value());
  if (rng_ba_) w.rng(*rng_ba_);
  for (const DelayAttack* atk : {&atk_ab_, &atk_ba_}) {
    w.b(atk->active);
    w.i64(atk->bias_ns);
    w.f64(atk->ramp_ns_per_s);
    w.i64(atk->start_ns);
  }
}

void Link::load_state(sim::StateReader& r) {
  r.rng(rng_);
  const bool has_ba = r.b();
  if (has_ba != rng_ba_.has_value()) {
    throw std::runtime_error("Link::load_state: boundary topology mismatch for " + name_);
  }
  if (rng_ba_) r.rng(*rng_ba_);
  for (DelayAttack* atk : {&atk_ab_, &atk_ba_}) {
    atk->active = r.b();
    atk->bias_ns = r.i64();
    atk->ramp_ns_per_s = r.f64();
    atk->start_ns = r.i64();
  }
}

std::int64_t Link::min_delay_ns(bool from_a) const {
  const DelayModel& m = from_a ? cfg_.a_to_b : cfg_.b_to_a;
  // draw_delay() never returns below base/2, and serialization time is
  // monotone in frame size, so the empty frame (padded to the Ethernet
  // minimum) bounds every delivery from below.
  return m.base_ns / 2 + serialization_ns(EthernetFrame{});
}

void Link::transmit_from(Port& from, const FrameRef& frame) {
  Port& to = peer_of(from);
  const bool from_a = (&from == &a_);
  const std::int64_t ser = serialization_ns(*frame);
  const std::int64_t delay = ser + draw_delay(from_a);
  Port* dst = &to;
  if (rt_ == nullptr) {
    sim_.after(delay, [dst, frame, ser] { dst->deliver(frame, ser); });
    return;
  }
  // Boundary crossing: arrival time is stamped in the sender's region
  // clock; the frame is copied by value (FrameRefs must not cross
  // regions) and re-adopted into the destination region's pool when the
  // delivery executes over there.
  sim::Simulation& src = from_a ? sim_ : *sim_b_;
  const sim::SimTime at{src.now().ns() + delay};
  rt_->post_remote(from_a ? ch_ab_ : ch_ba_, at,
                   [dst, ser, f = EthernetFrame(*frame)]() mutable {
                     const FrameRef ref = FramePool::local().adopt(std::move(f));
                     dst->deliver(ref, ser);
                   });
}

} // namespace tsn::net
