#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/port.hpp"

namespace tsn::net {

Link::Link(sim::Simulation& sim, Port& end_a, Port& end_b, const LinkConfig& cfg,
           const std::string& name)
    : sim_(sim), a_(end_a), b_(end_b), cfg_(cfg), name_(name), rng_(sim.make_rng("link/" + name)) {
  a_.attach_link(this);
  b_.attach_link(this);
}

Port& Link::peer_of(Port& end) const {
  assert(&end == &a_ || &end == &b_);
  return (&end == &a_) ? b_ : a_;
}

std::int64_t Link::serialization_ns(const EthernetFrame& frame) const {
  // +20 bytes preamble/SFD/IFG overhead on the wire.
  const double bits = static_cast<double>(frame.wire_size() + 20) * 8.0;
  return static_cast<std::int64_t>(std::llround(bits / cfg_.rate_bps * 1e9));
}

std::int64_t Link::draw_delay(bool from_a) {
  const DelayModel& m = from_a ? cfg_.a_to_b : cfg_.b_to_a;
  const double jitter = rng_.normal(0.0, m.jitter_sigma_ns);
  const std::int64_t d = m.base_ns + static_cast<std::int64_t>(std::llround(jitter));
  return std::max(d, m.base_ns / 2);
}

void Link::transmit_from(Port& from, const FrameRef& frame) {
  Port& to = peer_of(from);
  const bool from_a = (&from == &a_);
  const std::int64_t ser = serialization_ns(*frame);
  const std::int64_t delay = ser + draw_delay(from_a);
  Port* dst = &to;
  sim_.after(delay, [dst, frame, ser] { dst->deliver(frame, ser); });
}

} // namespace tsn::net
