// Pcap capture of simulated traffic.
//
// Writes standard nanosecond-resolution pcap files (magic 0xa1b23c4d,
// LINKTYPE_ETHERNET) that open directly in Wireshark/tshark -- including
// the gPTP frames, whose dissector Wireshark ships. Attach a tracer to any
// Port via the tap hook.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "net/frame.hpp"
#include "net/port.hpp"
#include "sim/simulation.hpp"

namespace tsn::net {

/// Serialize a frame to its on-the-wire byte layout (without FCS).
std::vector<std::uint8_t> frame_to_wire_bytes(const EthernetFrame& frame);

class PcapTracer {
 public:
  /// Opens `path` and writes the pcap global header. Throws on failure.
  PcapTracer(sim::Simulation& sim, const std::string& path);

  PcapTracer(const PcapTracer&) = delete;
  PcapTracer& operator=(const PcapTracer&) = delete;

  /// Capture every frame this port transmits and/or receives.
  void attach(Port& port, bool capture_tx = true, bool capture_rx = true);

  /// Record one frame at the current simulation time.
  void record(const EthernetFrame& frame);

  std::uint64_t frames_written() const { return frames_written_; }
  void flush() { out_.flush(); }

 private:
  void write_u32(std::uint32_t v);
  void write_u16(std::uint16_t v);

  sim::Simulation& sim_;
  std::ofstream out_;
  std::uint64_t frames_written_ = 0;
};

} // namespace tsn::net
