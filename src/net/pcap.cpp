#include "net/pcap.hpp"

#include <stdexcept>

namespace tsn::net {

std::vector<std::uint8_t> frame_to_wire_bytes(const EthernetFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.wire_size());
  auto push_mac = [&out](const MacAddress& mac) {
    for (auto b : mac.bytes()) out.push_back(b);
  };
  auto push_u16 = [&out](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  };
  push_mac(frame.dst);
  push_mac(frame.src);
  if (frame.vlan) {
    push_u16(0x8100); // 802.1Q TPID
    push_u16(static_cast<std::uint16_t>((frame.vlan->pcp << 13) | (frame.vlan->vid & 0x0FFF)));
  }
  push_u16(frame.ethertype);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  while (out.size() < 60) out.push_back(0); // minimum frame padding (no FCS)
  return out;
}

void PcapTracer::write_u32(std::uint32_t v) {
  // pcap headers are host-endian; we write little-endian explicitly.
  const std::uint8_t b[4] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 24)};
  out_.write(reinterpret_cast<const char*>(b), 4);
}

void PcapTracer::write_u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8)};
  out_.write(reinterpret_cast<const char*>(b), 2);
}

PcapTracer::PcapTracer(sim::Simulation& sim, const std::string& path)
    : sim_(sim), out_(path, std::ios::binary) {
  if (!out_) throw std::runtime_error("PcapTracer: cannot open " + path);
  write_u32(0xa1b23c4d); // nanosecond-resolution pcap
  write_u16(2);          // version major
  write_u16(4);          // version minor
  write_u32(0);          // thiszone
  write_u32(0);          // sigfigs
  write_u32(65535);      // snaplen
  write_u32(1);          // LINKTYPE_ETHERNET
}

void PcapTracer::attach(Port& port, bool capture_tx, bool capture_rx) {
  port.set_tap([this, capture_tx, capture_rx](const EthernetFrame& frame, bool is_tx) {
    if ((is_tx && capture_tx) || (!is_tx && capture_rx)) record(frame);
  });
}

void PcapTracer::record(const EthernetFrame& frame) {
  const auto bytes = frame_to_wire_bytes(frame);
  const std::int64_t now = sim_.now().ns();
  write_u32(static_cast<std::uint32_t>(now / 1'000'000'000));
  write_u32(static_cast<std::uint32_t>(now % 1'000'000'000)); // nanoseconds
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  ++frames_written_;
}

} // namespace tsn::net
