// Network ports and the frame-delivery interface.
//
// A Port is one end of a Link. It belongs to a device (NIC or switch) that
// receives frames through the FrameSink interface. Egress supports either
// immediate transmission or an ETF ("earliest txtime first") launch-time
// queue driven by the port's PHC, modelling the Linux ETF qdisc + the Intel
// i210 LaunchTime feature the paper uses for synchronous Sync transmission.
//
// Frames travel as pooled FrameRefs: a transmit hands the port a shared
// immutable buffer, every hop downstream (link propagation, switch
// residence, fan-out) passes the 8-byte reference instead of copying the
// frame. The EthernetFrame-by-value overloads remain as a convenience shim
// (tests, cold paths) and wrap the frame into the thread-local pool.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"
#include "util/inline_fn.hpp"

namespace tsn::net {

class Port;
class Link;

/// Receive-side metadata handed to the device with each frame.
struct RxMeta {
  /// Hardware receive timestamp in the ingress port's PHC timebase, or
  /// nullopt when the port has no PHC. PTP hardware latches the timestamp
  /// at the start-of-frame delimiter, so it excludes serialization time.
  std::optional<std::int64_t> hw_rx_ts;
  /// True (simulation) time the frame was fully received; instrumentation
  /// only, never visible to protocol logic.
  sim::SimTime true_rx_time;
};

class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void handle_frame(Port& ingress, const FrameRef& frame, const RxMeta& meta) = 0;
};

/// Outcome reported to the transmitter once the frame leaves the port (or
/// fails to). Mirrors SO_TIMESTAMPING + ETF error semantics in Linux.
struct TxReport {
  enum class Status {
    kSent,             ///< transmitted; hw_tx_ts valid if the port has a PHC
    kDeadlineMissed,   ///< ETF: launch time already passed -> dropped
    kInvalidLaunch,    ///< ETF: launch time out of acceptable window -> dropped
    kPortDown,         ///< link/port not operational
  };
  Status status = Status::kSent;
  std::optional<std::int64_t> hw_tx_ts;
};

/// Completion callbacks ride the event queue, so they use the same inline
/// no-allocation storage as event closures (move-only as a consequence).
using TxCallback = util::InlineFunction<void(const TxReport&), 48>;

struct TxOptions {
  /// ETF launch time in the port's PHC timebase; nullopt = send immediately.
  std::optional<std::int64_t> launch_time;
  /// Completion callback (tx timestamp delivery). May be empty.
  TxCallback on_complete;
};

struct EtfConfig {
  /// Launch times later than now + horizon are rejected as invalid
  /// (mirrors the qdisc's delta/horizon sanity checking).
  std::int64_t horizon_ns = 1'000'000'000;
  /// Launch times earlier than now - past_tolerance are deadline misses.
  std::int64_t past_tolerance_ns = 0;
};

class Port {
 public:
  /// `phc` may be null (e.g. a port of a switch modelled without per-port
  /// clocks shares the switch PHC passed here for each port).
  Port(sim::Simulation& sim, std::string name, time::PhcClock* phc);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  const std::string& name() const { return name_; }
  time::PhcClock* phc() const { return phc_; }

  void set_sink(FrameSink* sink) { sink_ = sink; }
  void attach_link(Link* link) { link_ = link; }
  Link* link() const { return link_; }
  bool connected() const { return link_ != nullptr; }

  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

  void set_etf_config(const EtfConfig& cfg) { etf_ = cfg; }

  /// Queue a frame for transmission. With a launch time, the frame leaves
  /// when the port PHC reaches it (ETF); otherwise it leaves immediately.
  void transmit(FrameRef frame, TxOptions opts = {});
  /// Convenience overload: wraps the frame into the thread-local pool.
  void transmit(EthernetFrame frame, TxOptions opts = {}) {
    transmit(FramePool::local().adopt(std::move(frame)), std::move(opts));
  }

  /// Optional traffic tap (e.g. a pcap tracer): called for every frame the
  /// port actually puts on the wire (direction=true) or fully receives
  /// (direction=false).
  using Tap = std::function<void(const EthernetFrame&, bool is_tx)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Called by the Link when a frame fully arrives at this port.
  /// `serialization_ns` is the frame's time on the wire, used to back-date
  /// the HW rx timestamp to the start-of-frame delimiter.
  void deliver(const FrameRef& frame, std::int64_t serialization_ns = 0);

 private:
  void launch_now(const FrameRef& frame, TxCallback& cb);
  void schedule_launch(FrameRef frame, std::int64_t launch_time, TxCallback cb);
  void arm_launch(std::uint32_t slot, std::int64_t remaining_phc);
  void fire_launch(std::uint32_t slot);

  // ETF frames waiting for their launch time live in a small reusable
  // slab; the scheduled event captures only (this, slot), keeping the
  // closure well inside EventFn's inline storage.
  struct PendingLaunch {
    FrameRef frame;
    std::int64_t launch_time = 0;
    TxCallback cb;
  };

  sim::Simulation& sim_;
  std::string name_;
  time::PhcClock* phc_;
  FrameSink* sink_ = nullptr;
  Link* link_ = nullptr;
  EtfConfig etf_;
  Tap tap_;
  bool up_ = true;
  std::vector<PendingLaunch> etf_pending_;
  std::vector<std::uint32_t> etf_free_;
};

} // namespace tsn::net
