// Network ports and the frame-delivery interface.
//
// A Port is one end of a Link. It belongs to a device (NIC or switch) that
// receives frames through the FrameSink interface. Egress supports either
// immediate transmission or an ETF ("earliest txtime first") launch-time
// queue driven by the port's PHC, modelling the Linux ETF qdisc + the Intel
// i210 LaunchTime feature the paper uses for synchronous Sync transmission.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::net {

class Port;
class Link;

/// Receive-side metadata handed to the device with each frame.
struct RxMeta {
  /// Hardware receive timestamp in the ingress port's PHC timebase, or
  /// nullopt when the port has no PHC. PTP hardware latches the timestamp
  /// at the start-of-frame delimiter, so it excludes serialization time.
  std::optional<std::int64_t> hw_rx_ts;
  /// True (simulation) time the frame was fully received; instrumentation
  /// only, never visible to protocol logic.
  sim::SimTime true_rx_time;
};

class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void handle_frame(Port& ingress, const EthernetFrame& frame, const RxMeta& meta) = 0;
};

/// Outcome reported to the transmitter once the frame leaves the port (or
/// fails to). Mirrors SO_TIMESTAMPING + ETF error semantics in Linux.
struct TxReport {
  enum class Status {
    kSent,             ///< transmitted; hw_tx_ts valid if the port has a PHC
    kDeadlineMissed,   ///< ETF: launch time already passed -> dropped
    kInvalidLaunch,    ///< ETF: launch time out of acceptable window -> dropped
    kPortDown,         ///< link/port not operational
  };
  Status status = Status::kSent;
  std::optional<std::int64_t> hw_tx_ts;
};

using TxCallback = std::function<void(const TxReport&)>;

struct TxOptions {
  /// ETF launch time in the port's PHC timebase; nullopt = send immediately.
  std::optional<std::int64_t> launch_time;
  /// Completion callback (tx timestamp delivery). May be empty.
  TxCallback on_complete;
};

struct EtfConfig {
  /// Launch times later than now + horizon are rejected as invalid
  /// (mirrors the qdisc's delta/horizon sanity checking).
  std::int64_t horizon_ns = 1'000'000'000;
  /// Launch times earlier than now - past_tolerance are deadline misses.
  std::int64_t past_tolerance_ns = 0;
};

class Port {
 public:
  /// `phc` may be null (e.g. a port of a switch modelled without per-port
  /// clocks shares the switch PHC passed here for each port).
  Port(sim::Simulation& sim, std::string name, time::PhcClock* phc);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  const std::string& name() const { return name_; }
  time::PhcClock* phc() const { return phc_; }

  void set_sink(FrameSink* sink) { sink_ = sink; }
  void attach_link(Link* link) { link_ = link; }
  Link* link() const { return link_; }
  bool connected() const { return link_ != nullptr; }

  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

  void set_etf_config(const EtfConfig& cfg) { etf_ = cfg; }

  /// Queue a frame for transmission. With a launch time, the frame leaves
  /// when the port PHC reaches it (ETF); otherwise it leaves immediately.
  void transmit(EthernetFrame frame, TxOptions opts = {});

  /// Optional traffic tap (e.g. a pcap tracer): called for every frame the
  /// port actually puts on the wire (direction=true) or fully receives
  /// (direction=false).
  using Tap = std::function<void(const EthernetFrame&, bool is_tx)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Called by the Link when a frame fully arrives at this port.
  /// `serialization_ns` is the frame's time on the wire, used to back-date
  /// the HW rx timestamp to the start-of-frame delimiter.
  void deliver(const EthernetFrame& frame, std::int64_t serialization_ns = 0);

 private:
  void launch_now(const EthernetFrame& frame, const TxCallback& cb);
  void schedule_launch(EthernetFrame frame, std::int64_t launch_time, TxCallback cb);

  sim::Simulation& sim_;
  std::string name_;
  time::PhcClock* phc_;
  FrameSink* sink_ = nullptr;
  Link* link_ = nullptr;
  EtfConfig etf_;
  Tap tap_;
  bool up_ = true;
};

} // namespace tsn::net
