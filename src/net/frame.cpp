#include "net/frame.hpp"

#include <algorithm>

namespace tsn::net {

std::size_t EthernetFrame::wire_size() const {
  // 6 dst + 6 src + 2 ethertype + payload + 4 FCS, plus 4 for a VLAN tag.
  std::size_t size = 18 + payload.size() + (vlan ? 4 : 0);
  return std::max<std::size_t>(size, 64);
}

} // namespace tsn::net
