// Pooled, intrusively refcounted frame buffers for the zero-copy path.
//
// A frame travels NIC -> link -> switch -> link -> NIC, historically being
// copied (header + payload) into a fresh closure at every hop and once per
// egress port on multicast fan-out. FrameBuf makes the frame a shared
// immutable object: propagation passes an 8-byte FrameRef, fan-out bumps a
// refcount, and the buffer returns to its pool when the last reference
// drops. Steady state allocates nothing — buffers are recycled through a
// free list and the 96-byte inline payload absorbs every gPTP PDU.
//
// Ownership rules:
//   - The producer acquires a buffer, fills `writable()` while it holds
//     the only reference, and hands the FrameRef to Port::transmit.
//   - From that point the frame is immutable; everyone downstream reads
//     through `const EthernetFrame&`.
//   - The pool is thread-local (one replica = one thread), so refcounts
//     are plain integers and release needs no synchronization. FrameRefs
//     must not cross threads; the sweep runner never does.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/frame.hpp"

namespace tsn::net {

class FramePool;

class FrameBuf {
 public:
  const EthernetFrame& frame() const { return frame_; }

 private:
  friend class FramePool;
  friend class FrameRef;
  EthernetFrame frame_;
  std::uint32_t refs_ = 0;
  FramePool* pool_ = nullptr;
  FrameBuf* next_free_ = nullptr;
};

/// Intrusive smart pointer to a pooled frame. Copy = refcount bump;
/// destruction of the last reference recycles the buffer.
class FrameRef {
 public:
  FrameRef() = default;
  FrameRef(const FrameRef& o) noexcept : buf_(o.buf_) {
    if (buf_) ++buf_->refs_;
  }
  FrameRef(FrameRef&& o) noexcept : buf_(o.buf_) { o.buf_ = nullptr; }
  FrameRef& operator=(const FrameRef& o) noexcept {
    if (this != &o) {
      release();
      buf_ = o.buf_;
      if (buf_) ++buf_->refs_;
    }
    return *this;
  }
  FrameRef& operator=(FrameRef&& o) noexcept {
    if (this != &o) {
      release();
      buf_ = o.buf_;
      o.buf_ = nullptr;
    }
    return *this;
  }
  ~FrameRef() { release(); }

  explicit operator bool() const { return buf_ != nullptr; }
  const EthernetFrame& operator*() const { return buf_->frame_; }
  const EthernetFrame* operator->() const { return &buf_->frame_; }

  /// Mutable access, only legal while this is the sole reference (the
  /// producer filling a freshly acquired buffer before transmission).
  EthernetFrame& writable() {
    assert(buf_ != nullptr && buf_->refs_ == 1 &&
           "frames are immutable once shared");
    return buf_->frame_;
  }

  std::uint32_t use_count() const { return buf_ ? buf_->refs_ : 0; }
  void reset() { release(); }

 private:
  friend class FramePool;
  explicit FrameRef(FrameBuf* b) noexcept : buf_(b) { ++b->refs_; }
  void release() noexcept;
  FrameBuf* buf_ = nullptr;
};

class FramePool {
 public:
  /// Buffers added per growth step.
  static constexpr std::size_t kChunk = 64;

  struct Stats {
    std::uint64_t acquired = 0;  ///< total acquire()/adopt() calls
    std::uint64_t released = 0;  ///< buffers returned to the free list
    std::uint64_t chunks = 0;    ///< growth steps (kChunk buffers each)
    std::size_t buffers = 0;     ///< total buffers owned by the pool
    std::size_t in_use = 0;      ///< currently referenced buffers
    std::size_t high_water = 0;  ///< max simultaneous in_use
  };

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// The calling thread's pool. One replica runs on one thread, so every
  /// frame of a simulation world comes from (and returns to) this pool.
  /// The partitioned runtime overrides it per region (see set_local): a
  /// region's events always allocate from that region's pool, whichever
  /// worker thread happens to execute them.
  static FramePool& local();

  /// Install `pool` as the calling thread's local() until the next
  /// set_local (nullptr restores the thread's own static pool). The
  /// partitioned scenario installs each region's pool around that
  /// region's event execution via the runtime's region scope hook.
  static void set_local(FramePool* pool);

  /// A fresh buffer holding a default (empty-payload) frame; sole reference.
  FrameRef acquire();

  /// Move an existing frame into a pooled buffer (compat shim for the
  /// EthernetFrame-based send/transmit overloads).
  FrameRef adopt(EthernetFrame&& f);

  const Stats& stats() const { return stats_; }

 private:
  friend class FrameRef;
  void release(FrameBuf* b);
  void grow();

  std::vector<std::unique_ptr<FrameBuf[]>> chunks_;
  FrameBuf* free_head_ = nullptr;
  Stats stats_;
};

inline void FrameRef::release() noexcept {
  if (buf_ == nullptr) return;
  if (--buf_->refs_ == 0) buf_->pool_->release(buf_);
  buf_ = nullptr;
}

} // namespace tsn::net
