#include "net/switch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/persist.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::net {

Switch::Switch(sim::Simulation& sim, const SwitchConfig& cfg, const std::string& name)
    : sim_(sim),
      cfg_(cfg),
      name_(name),
      phc_(sim, cfg.phc, name + "/phc"),
      residence_rng_(sim.make_rng("switch-res/" + name)) {
  ports_.reserve(cfg.port_count);
  for (std::size_t i = 0; i < cfg.port_count; ++i) {
    ports_.push_back(
        std::make_unique<Port>(sim, util::format("%s/P%zu", name.c_str(), i), &phc_));
    ports_.back()->set_sink(this);
  }
}

void Switch::add_vlan_member(std::uint16_t vid, std::size_t port_idx) {
  assert(port_idx < ports_.size());
  vlan_members_[vid].insert(port_idx);
}

void Switch::add_fdb_entry(std::uint16_t vid, MacAddress mac, std::size_t port_idx) {
  assert(port_idx < ports_.size());
  fdb_[{vid, mac.to_u64()}].insert(port_idx);
}

std::size_t Switch::index_of(const Port& p) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].get() == &p) return i;
  }
  assert(false && "port does not belong to this switch");
  return 0;
}

bool Switch::is_member(std::uint16_t vid, std::size_t port_idx) const {
  if (vid == 0) return true; // default VLAN spans all ports
  auto it = vlan_members_.find(vid);
  return it != vlan_members_.end() && it->second.count(port_idx) > 0;
}

void Switch::save_state(sim::StateWriter& w) {
  phc_.save_state(w);
  w.rng(residence_rng_);
}

void Switch::load_state(sim::StateReader& r) {
  phc_.load_state(r);
  r.rng(residence_rng_);
}

std::int64_t Switch::draw_residence_ns() {
  const double jitter = residence_rng_.normal(0.0, cfg_.residence_jitter_ns);
  const std::int64_t d = cfg_.residence_base_ns + static_cast<std::int64_t>(std::llround(jitter));
  return std::max<std::int64_t>(d, cfg_.residence_base_ns / 2);
}

void Switch::forward_to(std::size_t out_idx, const FrameRef& frame) {
  const std::int64_t residence = draw_residence_ns();
  Port* out = ports_[out_idx].get();
  // Fan-out shares the buffer: one refcount bump per egress port, no copy.
  sim_.after(residence, [out, frame] {
    if (out->connected()) out->transmit(frame);
  });
}

void Switch::forward(std::size_t ingress_idx, const FrameRef& frame) {
  const std::uint16_t vid = frame->vlan ? frame->vlan->vid : 0;
  const std::uint64_t dst = frame->dst.to_u64();
  auto it = fdb_.find({vid, dst});
  if (it != fdb_.end()) {
    for (std::size_t out_idx : it->second) {
      if (out_idx == ingress_idx || !is_member(vid, out_idx)) continue;
      forward_to(out_idx, frame);
    }
    return;
  }
  if (cfg_.drop_unknown_unicast) return; // strict static forwarding
  // Unknown destination: flood within the VLAN.
  for (std::size_t out_idx = 0; out_idx < ports_.size(); ++out_idx) {
    if (out_idx == ingress_idx || !is_member(vid, out_idx)) continue;
    forward_to(out_idx, frame);
  }
}

void Switch::send_from_port(std::size_t port_idx, FrameRef frame, TxOptions opts) {
  ports_.at(port_idx)->transmit(std::move(frame), std::move(opts));
}

void Switch::send_from_port(std::size_t port_idx, EthernetFrame frame, TxOptions opts) {
  send_from_port(port_idx, FramePool::local().adopt(std::move(frame)), std::move(opts));
}

void Switch::handle_frame(Port& ingress, const FrameRef& frame, const RxMeta& meta) {
  const std::size_t idx = index_of(ingress);
  if (frame->ethertype == kEtherTypePtp) {
    // A time-aware bridge terminates PTP (link-local); a PTP-unaware
    // ("dumb") switch without one just forwards the frames -- the setting
    // the plain IEEE 1588 E2E mechanism is designed for.
    if (ptp_sink_) {
      ptp_sink_(idx, *frame, meta);
      return;
    }
  }
  forward(idx, frame);
}

} // namespace tsn::net
