// A host NIC with its own PTP hardware clock (models the Intel i210 the
// paper passes through to each clock synchronization VM).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "net/port.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::net {

class Nic : public FrameSink {
 public:
  Nic(sim::Simulation& sim, const time::PhcModel& phc_model, MacAddress mac,
      const std::string& name);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const std::string& name() const { return name_; }
  MacAddress mac() const { return mac_; }
  time::PhcClock& phc() { return phc_; }
  Port& port() { return port_; }

  using RxHandler = std::function<void(const EthernetFrame&, const RxMeta&)>;

  /// Register a receive handler for one EtherType (replaces any previous).
  void set_rx_handler(std::uint16_t ethertype, RxHandler handler);

  /// Transmit a pooled frame with the source MAC filled in. The caller
  /// must hold the sole reference (the frame is still being produced).
  void send(FrameRef frame, TxOptions opts = {});
  /// Convenience overload: wraps the frame into the thread-local pool.
  void send(EthernetFrame frame, TxOptions opts = {}) {
    send(FramePool::local().adopt(std::move(frame)), std::move(opts));
  }

  /// Administratively bring the NIC up/down (used for VM failure: a dead VM
  /// neither sends nor acknowledges frames).
  void set_up(bool up) { up_ = up; port_.set_up(up); }
  bool is_up() const { return up_; }

  /// Subscribe to an additional multicast group address.
  void join_multicast(MacAddress group) { multicast_groups_[group.to_u64()] = true; }

  void handle_frame(Port& ingress, const FrameRef& frame, const RxMeta& meta) override;

 private:
  bool accepts(const EthernetFrame& frame) const;

  sim::Simulation& sim_;
  std::string name_;
  MacAddress mac_;
  time::PhcClock phc_;
  Port port_;
  bool up_ = true;
  std::map<std::uint16_t, RxHandler> rx_handlers_;
  std::map<std::uint64_t, bool> multicast_groups_;
};

} // namespace tsn::net
