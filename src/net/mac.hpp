// Ethernet MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace tsn::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> bytes) : bytes_(bytes) {}

  /// Convenience constructor from the low 6 bytes of a 64-bit value, useful
  /// for assigning sequential addresses in tests and topology builders.
  static MacAddress from_u64(std::uint64_t v);

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  std::uint64_t to_u64() const;

  bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }
  bool is_broadcast() const;

  std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

  /// IEEE 802.1AS link-local destination address 01-80-C2-00-00-0E.
  static MacAddress gptp_multicast();
  static MacAddress broadcast();

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

} // namespace tsn::net
