// Ethernet frames with optional 802.1Q VLAN tag.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <optional>
#include <vector>

#include "net/mac.hpp"

namespace tsn::net {

/// EtherTypes used in the reproduction.
inline constexpr std::uint16_t kEtherTypePtp = 0x88F7;
inline constexpr std::uint16_t kEtherTypeMeasurement = 0x88B5; // IEEE local experimental

struct VlanTag {
  std::uint16_t vid = 0; // 12-bit VLAN id
  std::uint8_t pcp = 0;  // 3-bit priority code point

  friend bool operator==(const VlanTag&, const VlanTag&) = default;
};

/// Frame payload with small-buffer storage: 96 inline bytes cover every
/// gPTP PDU the stack builds (the largest fixed-size message, FollowUp
/// with its information TLV, is 76 bytes), so the frame hot path never
/// allocates. Oversize payloads (Announce with a long path-trace TLV,
/// jumbo measurement frames) transparently spill to the heap.
///
/// The interface is the subset of std::vector<uint8_t> the codebase uses,
/// so wire writers/readers work over either container.
class Payload {
 public:
  static constexpr std::size_t kInlineCapacity = 96;

  using value_type = std::uint8_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  Payload() = default;
  Payload(std::initializer_list<std::uint8_t> init) { assign(init.begin(), init.size()); }
  explicit Payload(const std::vector<std::uint8_t>& v) { assign(v.data(), v.size()); }

  Payload(const Payload& other) { assign(other.data(), other.size()); }
  Payload& operator=(const Payload& other) {
    if (this != &other) assign(other.data(), other.size());
    return *this;
  }
  Payload& operator=(const std::vector<std::uint8_t>& v) {
    assign(v.data(), v.size());
    return *this;
  }
  Payload& operator=(std::initializer_list<std::uint8_t> init) {
    assign(init.begin(), init.size());
    return *this;
  }

  Payload(Payload&& other) noexcept { steal(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      if (is_heap()) delete[] data_;
      steal(other);
    }
    return *this;
  }

  ~Payload() {
    if (is_heap()) delete[] data_;
  }

  const std::uint8_t* data() const { return data_; }
  std::uint8_t* data() { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  bool is_heap() const { return data_ != inline_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  std::uint8_t& operator[](std::size_t i) { return data_[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  /// New bytes are zero-initialized (vector semantics).
  void resize(std::size_t n) {
    if (n > cap_) grow(n);
    if (n > size_) std::memset(data_ + size_, 0, n - size_);
    size_ = static_cast<std::uint32_t>(n);
  }

  void push_back(std::uint8_t b) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = b;
  }

  void append(const std::uint8_t* src, std::size_t n) {
    if (size_ + n > cap_) grow(size_ + n);
    std::memcpy(data_ + size_, src, n);
    size_ += static_cast<std::uint32_t>(n);
  }

  void append_zeros(std::size_t n) {
    if (size_ + n > cap_) grow(size_ + n);
    std::memset(data_ + size_, 0, n);
    size_ += static_cast<std::uint32_t>(n);
  }

  void assign(const std::uint8_t* src, std::size_t n) {
    clear();
    append(src, n);
  }

  /// Append-only insert (vector-compatible shim for the wire writers,
  /// which only ever insert at end()).
  void insert(const_iterator pos, const std::uint8_t* first, const std::uint8_t* last) {
    (void)pos;
    append(first, static_cast<std::size_t>(last - first));
  }
  void insert(const_iterator pos, std::size_t n, std::uint8_t v) {
    (void)pos;
    if (v == 0) {
      append_zeros(n);
    } else {
      if (size_ + n > cap_) grow(size_ + n);
      std::memset(data_ + size_, v, n);
      size_ += static_cast<std::uint32_t>(n);
    }
  }

  /// Drop any heap spill and return to the pristine inline state. Used by
  /// the frame pool so recycled buffers stay at their 96-byte footprint.
  void reset() {
    if (is_heap()) delete[] data_;
    data_ = inline_;
    size_ = 0;
    cap_ = kInlineCapacity;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ && std::memcmp(a.data_, b.data_, a.size_) == 0;
  }
  friend bool operator==(const Payload& a, const std::vector<std::uint8_t>& b) {
    return a.size() == b.size() && std::memcmp(a.data(), b.data(), a.size()) == 0;
  }
  friend bool operator==(const std::vector<std::uint8_t>& a, const Payload& b) {
    return b == a;
  }

 private:
  void grow(std::size_t need) {
    std::size_t cap = cap_;
    while (cap < need) cap *= 2;
    auto* p = new std::uint8_t[cap];
    std::memcpy(p, data_, size_);
    if (is_heap()) delete[] data_;
    data_ = p;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  void steal(Payload& other) noexcept {
    if (other.is_heap()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.cap_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      data_ = inline_;
      cap_ = kInlineCapacity;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, other.size_);
      other.size_ = 0;
    }
  }

  std::uint8_t* data_ = inline_;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineCapacity;
  alignas(8) std::uint8_t inline_[kInlineCapacity];
};

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  std::optional<VlanTag> vlan;
  std::uint16_t ethertype = 0;
  Payload payload;

  /// On-wire size in bytes incl. header, FCS, and minimum-frame padding
  /// (preamble/IFG accounted for separately in the serialization model).
  std::size_t wire_size() const;
};

} // namespace tsn::net
