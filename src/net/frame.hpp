// Ethernet frames with optional 802.1Q VLAN tag.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/mac.hpp"

namespace tsn::net {

/// EtherTypes used in the reproduction.
inline constexpr std::uint16_t kEtherTypePtp = 0x88F7;
inline constexpr std::uint16_t kEtherTypeMeasurement = 0x88B5; // IEEE local experimental

struct VlanTag {
  std::uint16_t vid = 0; // 12-bit VLAN id
  std::uint8_t pcp = 0;  // 3-bit priority code point

  friend bool operator==(const VlanTag&, const VlanTag&) = default;
};

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  std::optional<VlanTag> vlan;
  std::uint16_t ethertype = 0;
  std::vector<std::uint8_t> payload;

  /// On-wire size in bytes incl. header, FCS, and minimum-frame padding
  /// (preamble/IFG accounted for separately in the serialization model).
  std::size_t wire_size() const;
};

} // namespace tsn::net
