#include "net/nic.hpp"

namespace tsn::net {

Nic::Nic(sim::Simulation& sim, const time::PhcModel& phc_model, MacAddress mac,
         const std::string& name)
    : sim_(sim),
      name_(name),
      mac_(mac),
      phc_(sim, phc_model, name + "/phc"),
      port_(sim, name + "/port", &phc_) {
  port_.set_sink(this);
  // gPTP peer-delay & sync messages are always accepted.
  multicast_groups_[MacAddress::gptp_multicast().to_u64()] = true;
}

void Nic::set_rx_handler(std::uint16_t ethertype, RxHandler handler) {
  rx_handlers_[ethertype] = std::move(handler);
}

void Nic::send(FrameRef frame, TxOptions opts) {
  if (!up_) {
    if (opts.on_complete) opts.on_complete(TxReport{TxReport::Status::kPortDown, std::nullopt});
    return;
  }
  frame.writable().src = mac_;
  port_.transmit(std::move(frame), std::move(opts));
}

bool Nic::accepts(const EthernetFrame& frame) const {
  if (frame.dst == mac_) return true;
  if (frame.dst.is_broadcast()) return true;
  if (frame.dst.is_multicast()) {
    auto it = multicast_groups_.find(frame.dst.to_u64());
    return it != multicast_groups_.end() && it->second;
  }
  return false;
}

void Nic::handle_frame(Port& /*ingress*/, const FrameRef& frame, const RxMeta& meta) {
  if (!up_ || !accepts(*frame)) return;
  auto it = rx_handlers_.find(frame->ethertype);
  if (it != rx_handlers_.end()) it->second(*frame, meta);
}

} // namespace tsn::net
