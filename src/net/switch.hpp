// Store-and-forward Ethernet switch with static VLAN-aware forwarding.
//
// Models the "integrated Linux-based TSN switch" of each ECD. gPTP frames
// (EtherType 0x88F7) are link-local: they are never forwarded but handed to
// the per-port time-aware-bridge stack registered via set_ptp_sink. All
// other traffic is forwarded according to the static FDB / VLAN membership
// the experiments configure (the paper pins measurement traffic to a VLAN
// with known paths).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "net/port.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"
#include "util/rng.hpp"

namespace tsn::net {

struct SwitchConfig {
  std::size_t port_count = 6;
  /// Store-and-forward processing latency per frame.
  std::int64_t residence_base_ns = 2'000;
  /// Gaussian residence jitter stddev (queueing variation).
  double residence_jitter_ns = 250.0;
  /// Drop frames whose destination has no FDB entry instead of flooding.
  /// Mandatory in looped topologies (the paper's mesh) where flooding an
  /// unknown destination would storm forever.
  bool drop_unknown_unicast = false;
  time::PhcModel phc;
};

class Switch : public FrameSink, public sim::Persistent {
 public:
  Switch(sim::Simulation& sim, const SwitchConfig& cfg, const std::string& name);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  const std::string& name() const { return name_; }
  std::size_t port_count() const { return ports_.size(); }
  Port& port(std::size_t idx) { return *ports_.at(idx); }
  time::PhcClock& phc() { return phc_; }

  /// VLAN membership: only member ports carry frames tagged with `vid`.
  /// Untagged frames use vid 0; all ports are implicit members of vid 0.
  void add_vlan_member(std::uint16_t vid, std::size_t port_idx);

  /// Static FDB entry; multiple entries for the same (vid, mac) accumulate
  /// into a multicast egress set.
  void add_fdb_entry(std::uint16_t vid, MacAddress mac, std::size_t port_idx);

  /// Receiver for gPTP frames (per ingress port).
  using PtpSink = std::function<void(std::size_t port_idx, const EthernetFrame&, const RxMeta&)>;
  void set_ptp_sink(PtpSink sink) { ptp_sink_ = std::move(sink); }

  /// Originate a frame from one of the switch's ports (used by the
  /// time-aware bridge stack to send its own Sync/Pdelay messages).
  void send_from_port(std::size_t port_idx, FrameRef frame, TxOptions opts = {});
  void send_from_port(std::size_t port_idx, EthernetFrame frame, TxOptions opts = {});

  void handle_frame(Port& ingress, const FrameRef& frame, const RxMeta& meta) override;

  /// Residence delay draw (exposed for tests).
  std::int64_t draw_residence_ns();

  // -- sim::Persistent: free-running PHC + residence RNG. The VLAN/FDB
  // tables are static configuration; in-flight frames are queue transients
  // that the quiescence gate excludes. No standing events, so the ff hooks
  // keep their no-op defaults.
  const char* persist_name() const override { return name_.c_str(); }
  void save_state(sim::StateWriter& w) override;
  void load_state(sim::StateReader& r) override;

 private:
  std::size_t index_of(const Port& p) const;
  bool is_member(std::uint16_t vid, std::size_t port_idx) const;
  void forward(std::size_t ingress_idx, const FrameRef& frame);
  void forward_to(std::size_t out_idx, const FrameRef& frame);

  sim::Simulation& sim_;
  SwitchConfig cfg_;
  std::string name_;
  time::PhcClock phc_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::map<std::uint16_t, std::set<std::size_t>> vlan_members_;
  std::map<std::pair<std::uint16_t, std::uint64_t>, std::set<std::size_t>> fdb_;
  PtpSink ptp_sink_;
  util::RngStream residence_rng_;
};

} // namespace tsn::net
