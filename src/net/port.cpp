#include "net/port.hpp"

#include <cmath>
#include <utility>

#include "net/link.hpp"
#include "util/log.hpp"

namespace tsn::net {

Port::Port(sim::Simulation& sim, std::string name, time::PhcClock* phc)
    : sim_(sim), name_(std::move(name)), phc_(phc) {}

void Port::launch_now(const FrameRef& frame, TxCallback& cb) {
  if (!up_ || link_ == nullptr) {
    if (cb) cb(TxReport{TxReport::Status::kPortDown, std::nullopt});
    return;
  }
  link_->transmit_from(*this, frame);
  if (tap_) tap_(*frame, /*is_tx=*/true);
  TxReport report{TxReport::Status::kSent, std::nullopt};
  if (phc_ != nullptr) report.hw_tx_ts = phc_->hw_timestamp();
  if (cb) cb(report);
}

void Port::schedule_launch(FrameRef frame, std::int64_t launch_time, TxCallback cb) {
  std::uint32_t slot;
  if (!etf_free_.empty()) {
    slot = etf_free_.back();
    etf_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(etf_pending_.size());
    etf_pending_.emplace_back();
  }
  PendingLaunch& p = etf_pending_[slot];
  p.frame = std::move(frame);
  p.launch_time = launch_time;
  p.cb = std::move(cb);
  const std::int64_t remaining_phc = launch_time - phc_->read();
  arm_launch(slot, remaining_phc);
}

void Port::arm_launch(std::uint32_t slot, std::int64_t remaining_phc) {
  // The hardware launches when its own counter reaches launch_time, so
  // convert the remaining PHC nanoseconds to true time with the counter's
  // current rate and re-check on wake (the rate may wander in between).
  const double rate = phc_->effective_rate();
  const auto remaining_true = static_cast<std::int64_t>(
      std::llround(static_cast<double>(remaining_phc) / rate));
  sim_.after(std::max<std::int64_t>(remaining_true, 1),
             [this, slot] { fire_launch(slot); });
}

void Port::fire_launch(std::uint32_t slot) {
  PendingLaunch& p = etf_pending_[slot];
  const std::int64_t remaining_phc = p.launch_time - phc_->read();
  if (remaining_phc > 0) {
    arm_launch(slot, remaining_phc);
    return;
  }
  FrameRef frame = std::move(p.frame);
  TxCallback cb = std::move(p.cb);
  etf_free_.push_back(slot);
  launch_now(frame, cb);
}

void Port::transmit(FrameRef frame, TxOptions opts) {
  if (!opts.launch_time || phc_ == nullptr) {
    launch_now(frame, opts.on_complete);
    return;
  }
  const std::int64_t now_phc = phc_->read();
  const std::int64_t lt = *opts.launch_time;
  if (lt < now_phc - etf_.past_tolerance_ns) {
    TSN_LOG_DEBUG("net", "%s: ETF deadline miss (lt=%lld phc=%lld)", name_.c_str(),
                  static_cast<long long>(lt), static_cast<long long>(now_phc));
    if (opts.on_complete) opts.on_complete(TxReport{TxReport::Status::kDeadlineMissed, std::nullopt});
    return;
  }
  if (lt > now_phc + etf_.horizon_ns) {
    if (opts.on_complete) opts.on_complete(TxReport{TxReport::Status::kInvalidLaunch, std::nullopt});
    return;
  }
  schedule_launch(std::move(frame), lt, std::move(opts.on_complete));
}

void Port::deliver(const FrameRef& frame, std::int64_t serialization_ns) {
  if (!up_ || sink_ == nullptr) return; // silently dropped, like a downed NIC
  if (tap_) tap_(*frame, /*is_tx=*/false);
  RxMeta meta;
  meta.true_rx_time = sim_.now();
  if (phc_ != nullptr) {
    // The PHY latched the timestamp when the SFD arrived, one serialization
    // time before the frame completed (drift over <1 us is sub-ns).
    meta.hw_rx_ts = phc_->hw_timestamp() - serialization_ns;
  }
  sink_->handle_frame(*this, frame, meta);
}

} // namespace tsn::net
