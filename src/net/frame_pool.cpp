#include "net/frame_pool.hpp"

namespace tsn::net {

namespace {
thread_local FramePool* t_local_override = nullptr;
}

FramePool& FramePool::local() {
  if (t_local_override != nullptr) return *t_local_override;
  static thread_local FramePool pool;
  return pool;
}

void FramePool::set_local(FramePool* pool) { t_local_override = pool; }

void FramePool::grow() {
  chunks_.push_back(std::make_unique<FrameBuf[]>(kChunk));
  FrameBuf* chunk = chunks_.back().get();
  for (std::size_t i = 0; i < kChunk; ++i) {
    chunk[i].pool_ = this;
    chunk[i].next_free_ = free_head_;
    free_head_ = &chunk[i];
  }
  ++stats_.chunks;
  stats_.buffers += kChunk;
}

FrameRef FramePool::acquire() {
  if (free_head_ == nullptr) grow();
  FrameBuf* b = free_head_;
  free_head_ = b->next_free_;
  ++stats_.acquired;
  ++stats_.in_use;
  if (stats_.in_use > stats_.high_water) stats_.high_water = stats_.in_use;
  return FrameRef(b);
}

FrameRef FramePool::adopt(EthernetFrame&& f) {
  FrameRef ref = acquire();
  ref.writable() = std::move(f);
  return ref;
}

void FramePool::release(FrameBuf* b) {
  // Return the buffer pristine: shed any heap-spilled payload so pooled
  // buffers stay at their inline footprint.
  b->frame_.payload.reset();
  b->frame_.vlan.reset();
  b->frame_.ethertype = 0;
  b->frame_.dst = MacAddress();
  b->frame_.src = MacAddress();
  b->next_free_ = free_head_;
  free_head_ = b;
  ++stats_.released;
  --stats_.in_use;
}

} // namespace tsn::net
