#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/str.hpp"

namespace tsn::obs {

std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("LatencyHistogram: bounds must be sorted");
  }
  for (auto& s : stripes_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  }
}

void LatencyHistogram::observe(double v) {
  // Inclusive upper bounds (first bound >= v), matching the "le" labels
  // the CSV exporter prints.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Stripe& s = stripes_[thread_stripe()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::sum() const {
  double total = 0.0;
  for (const auto& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : stripes_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(name, std::move(upper_bounds)).first;
  } else if (it->second.upper_bounds() != upper_bounds) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' re-registered with different bounds");
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.upper_bounds = h.upper_bounds();
    hs.counts = h.bucket_counts();
    hs.count = h.count();
    hs.sum = h.sum();
    out.histograms[name] = hs;
  }
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.upper_bounds != h.upper_bounds) {
      throw std::invalid_argument("MetricsSnapshot::merge: bucket mismatch for '" + name + "'");
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) mine.counts[i] += h.counts[i];
    mine.count += h.count;
    mine.sum += h.sum;
  }
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double v) {
  // %.17g round-trips doubles; trim what printf keeps simple.
  return util::format("%.17g", v);
}

} // namespace

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + pad;
  const std::string pad3 = pad2 + pad;
  std::string out = "{\n";

  auto emit_map = [&](const char* title, const auto& m, auto&& value_fn, bool last) {
    out += pad + "\"" + title + "\": {";
    bool first = true;
    for (const auto& [name, v] : m) {
      out += first ? "\n" : ",\n";
      first = false;
      out += pad2 + "\"";
      append_json_escaped(out, name);
      out += "\": " + value_fn(v);
    }
    out += first ? "}" : "\n" + pad + "}";
    out += last ? "\n" : ",\n";
  };

  emit_map("counters", counters,
           [](std::uint64_t v) { return util::format("%llu", (unsigned long long)v); }, false);
  emit_map("gauges", gauges, [](double v) { return json_number(v); }, false);
  emit_map(
      "histograms", histograms,
      [&](const HistogramSnapshot& h) {
        std::string s = "{\n" + pad3 + "\"upper_bounds\": [";
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          if (i) s += ", ";
          s += json_number(h.upper_bounds[i]);
        }
        s += "],\n" + pad3 + "\"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (i) s += ", ";
          s += util::format("%llu", (unsigned long long)h.counts[i]);
        }
        s += "],\n" + pad3 + "\"count\": " + util::format("%llu", (unsigned long long)h.count);
        s += ",\n" + pad3 + "\"sum\": " + json_number(h.sum);
        s += "\n" + pad2 + "}";
        return s;
      },
      true);

  out += "}";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "kind,name,value\n";
  for (const auto& [name, v] : counters) {
    out += util::format("counter,%s,%llu\n", name.c_str(), (unsigned long long)v);
  }
  for (const auto& [name, v] : gauges) {
    out += util::format("gauge,%s,%.17g\n", name.c_str(), v);
  }
  for (const auto& [name, h] : histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string bucket = i < h.upper_bounds.size()
                                     ? util::format("le%.17g", h.upper_bounds[i])
                                     : std::string("overflow");
      out += util::format("histogram,%s[%s],%llu\n", name.c_str(), bucket.c_str(),
                          (unsigned long long)h.counts[i]);
    }
    out += util::format("histogram,%s.count,%llu\n", name.c_str(), (unsigned long long)h.count);
    out += util::format("histogram,%s.sum,%.17g\n", name.c_str(), h.sum);
  }
  return out;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;
  for (const auto& p : parts) merged.merge(p);
  return merged;
}

} // namespace tsn::obs
