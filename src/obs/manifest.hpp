// Per-run manifest: the machine-checkable record every reproduction
// binary writes next to its CSVs -- which scenario ran (config key/values
// + seed), on which code (git SHA), and what the instrumented subsystems
// counted (metrics snapshot). Later PRs' regression gates diff these
// instead of eyeballing CSV dumps.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace tsn::obs {

/// Short git SHA the binary was configured from ("unknown" outside git).
const char* build_git_sha();

struct RunManifest {
  std::string tool;       ///< bench/binary name
  std::uint64_t seed = 0; ///< base seed (replica i runs seed + i)
  std::size_t replicas = 1;
  std::size_t threads = 1;
  std::map<std::string, std::string> scenario; ///< stringified scenario config
  std::map<std::string, std::string> extra;    ///< bench-specific scalars
  MetricsSnapshot metrics;                     ///< merged across replicas

  std::string to_json() const;
};

/// Serialize and write `m` to `path` (throws std::runtime_error on I/O
/// failure).
void write_manifest(const std::string& path, const RunManifest& m);

} // namespace tsn::obs
