// Observability context handed down the construction chain. Both members
// are nullable: a component given an empty context either skips tracing
// (trace) or falls back to a private registry (metrics), so unit tests and
// standalone uses need no setup.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tsn::obs {

struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceRing* trace = nullptr;

  explicit operator bool() const { return metrics != nullptr || trace != nullptr; }
};

/// The per-world observability bundle a Scenario (or test) owns.
struct Observability {
  MetricsRegistry metrics;
  TraceRing trace{8192};

  ObsContext context() { return ObsContext{&metrics, &trace}; }
};

} // namespace tsn::obs
