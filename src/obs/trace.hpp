// Structured trace ring: typed, fixed-size records of the events the
// paper's figures annotate and an operator would page on -- gate
// acquisitions, FTA aggregations (with per-domain validity verdicts),
// servo state transitions, heartbeat misses, vote exclusions, takeovers.
//
// The ring has a fixed capacity and overwrites the oldest record, so its
// memory stays bounded no matter how long a run lasts; total() minus
// size() is how many records were overwritten. Component names are
// interned once into small integer ids, keeping each record POD (32
// bytes + no heap).
//
// One ring per replica world, written from that world's (single) sim
// thread; the ring is NOT thread-safe by design -- SweepRunner replicas
// each own their ring, exactly like they own their Simulation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsn::obs {

enum class TraceKind : std::uint8_t {
  kGateAcquire,    ///< coordinator won the FTSHMEM aggregation gate
  kAggregate,      ///< FTA executed; mask = per-domain validity verdicts
  kNoQuorum,       ///< gate won but too few usable clocks; free-run hold
  kServoState,     ///< PI servo state transition (a = new State)
  kHeartbeatMiss,  ///< monitor declared a VM fail-silent (a = vm index)
  kVmRecovery,     ///< heartbeat returned (a = vm index)
  kVoteExclusion,  ///< 2f+1 vote excluded a VM (a = vm, v0 = deviation ns)
  kTakeover,       ///< CLOCK_SYNCTIME moved to a healthy VM (a = new vm)
  kNoSuccessor,    ///< fail-over wanted but no healthy successor existed
  kPhaseChange,    ///< startup -> FTA transition (a = new phase)
  kAttack,         ///< adversarial schedule edge (a = AttackKind, v0 = magnitude,
                   ///< v1 = victim ECD; mask 1 = enable, 0 = disable)
};

const char* to_string(TraceKind kind);

struct TraceRecord {
  std::int64_t t_ns = 0;    ///< component-local timestamp of the event
  TraceKind kind = TraceKind::kGateAcquire;
  std::uint16_t source = 0; ///< interned component id (TraceRing::name)
  std::uint32_t a = 0;      ///< small integer payload (vm index, state, count)
  std::uint32_t mask = 0;   ///< per-domain validity bitmask (kAggregate/kNoQuorum)
  double v0 = 0.0;          ///< payload (aggregated offset ns, deviation ns)
  double v1 = 0.0;          ///< payload (frequency ppb, clocks used)
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Register a component name, returning its id; interning the same name
  /// twice returns the same id.
  std::uint16_t intern(std::string_view name);
  const std::string& name(std::uint16_t id) const { return names_.at(id); }
  std::size_t source_count() const { return names_.size(); }

  void push(const TraceRecord& r);

  std::size_t capacity() const { return buf_.size(); }
  /// Records currently held (<= capacity).
  std::size_t size() const { return total_ < buf_.size() ? static_cast<std::size_t>(total_) : buf_.size(); }
  /// Records pushed over the ring's lifetime.
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - size(); }

  /// Held records, oldest first.
  std::vector<TraceRecord> snapshot() const;

  /// Incremental subscription: append every record pushed after `cursor`
  /// (a previous total() value; 0 reads from the start) to `out`, oldest
  /// first, and advance `cursor` to total(). Returns how many records were
  /// overwritten before they could be read -- 0 whenever the consumer
  /// keeps up with the ring (the invariant suite polls well inside one
  /// ring turnover).
  std::uint64_t read_since(std::uint64_t& cursor, std::vector<TraceRecord>& out) const;

  void clear() { total_ = 0; }

  /// JSON array of the held records (names resolved).
  std::string to_json() const;
  /// "t_ns,kind,source,a,mask,v0,v1" rows, oldest first.
  std::string to_csv() const;

 private:
  std::vector<TraceRecord> buf_;
  std::uint64_t total_ = 0;
  std::vector<std::string> names_;
};

} // namespace tsn::obs
