#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/str.hpp"

namespace tsn::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kGateAcquire: return "gate_acquire";
    case TraceKind::kAggregate: return "aggregate";
    case TraceKind::kNoQuorum: return "no_quorum";
    case TraceKind::kServoState: return "servo_state";
    case TraceKind::kHeartbeatMiss: return "heartbeat_miss";
    case TraceKind::kVmRecovery: return "vm_recovery";
    case TraceKind::kVoteExclusion: return "vote_exclusion";
    case TraceKind::kTakeover: return "takeover";
    case TraceKind::kNoSuccessor: return "no_successor";
    case TraceKind::kPhaseChange: return "phase_change";
    case TraceKind::kAttack: return "attack";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) : buf_(std::max<std::size_t>(1, capacity)) {}

std::uint16_t TraceRing::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint16_t>(i);
  }
  if (names_.size() >= UINT16_MAX) throw std::length_error("TraceRing: too many sources");
  names_.emplace_back(name);
  return static_cast<std::uint16_t>(names_.size() - 1);
}

void TraceRing::push(const TraceRecord& r) {
  buf_[static_cast<std::size_t>(total_ % buf_.size())] = r;
  ++total_;
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  const std::size_t n = size();
  std::vector<TraceRecord> out;
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
  }
  return out;
}

std::uint64_t TraceRing::read_since(std::uint64_t& cursor, std::vector<TraceRecord>& out) const {
  if (cursor > total_) cursor = total_; // the ring was clear()ed since the last read
  const std::uint64_t first_retained = total_ - size();
  const std::uint64_t lost = cursor < first_retained ? first_retained - cursor : 0;
  for (std::uint64_t i = std::max(cursor, first_retained); i < total_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
  }
  cursor = total_;
  return lost;
}

std::string TraceRing::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const TraceRecord& r : snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    const std::string src = r.source < names_.size() ? names_[r.source] : util::format("#%u", r.source);
    out += util::format(
        "  {\"t_ns\": %lld, \"kind\": \"%s\", \"source\": \"%s\", \"a\": %u, "
        "\"mask\": %u, \"v0\": %.17g, \"v1\": %.17g}",
        (long long)r.t_ns, to_string(r.kind), src.c_str(), r.a, r.mask, r.v0, r.v1);
  }
  out += first ? "]" : "\n]";
  return out;
}

std::string TraceRing::to_csv() const {
  std::string out = "t_ns,kind,source,a,mask,v0,v1\n";
  for (const TraceRecord& r : snapshot()) {
    const std::string src = r.source < names_.size() ? names_[r.source] : util::format("#%u", r.source);
    out += util::format("%lld,%s,%s,%u,%u,%.17g,%.17g\n", (long long)r.t_ns, to_string(r.kind),
                        src.c_str(), r.a, r.mask, r.v0, r.v1);
  }
  return out;
}

} // namespace tsn::obs
