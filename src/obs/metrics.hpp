// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
// latency histograms.
//
// Hot-path writes are wait-free relaxed atomics. Counters and histogram
// buckets are striped across cache-line-padded cells indexed by a
// per-thread stripe id, so concurrent writers (SweepRunner workers
// touching a shared sweep-level registry) never contend on a cache line.
// Within a replica world every component shares the world's registry but
// runs on one thread, so increments are uncontended by construction.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and returns a
// stable reference: register once at construction time, increment from the
// hot path. Registering an existing name returns the same metric, which is
// how several instances of a component can share a total.
//
// snapshot() folds the stripes into plain maps (deterministically ordered)
// that merge, export to JSON/CSV, and diff across runs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tsn::obs {

inline constexpr std::size_t kStripes = 8;

/// Stable per-thread stripe index in [0, kStripes).
std::size_t thread_stripe();

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    cells_[thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Last-write-wins double value (free-running totals harvested at export
/// time, queue depths, configuration echoes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram with fixed bucket upper bounds (the last bucket is the
/// +inf overflow). Bucket counts are striped like Counter cells; count and
/// sum ride in the same cells, so observe() is three relaxed adds.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> upper_bounds);
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  std::uint64_t count() const;
  double sum() const;
  /// Bucket counts folded across stripes; size() == upper_bounds().size()+1.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets; ///< bounds+1 cells
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Stripe, kStripes> stripes_;
};

struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts; ///< upper_bounds.size()+1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Plain-data view of a registry, deterministically ordered by name.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Fold `other` in: counters and histograms sum, gauges sum (per-replica
  /// gauges carry totals, so the merged value is the sweep total). Folding
  /// per-replica snapshots in submission order is deterministic whatever
  /// thread count produced them.
  void merge(const MetricsSnapshot& other);

  std::string to_json(int indent = 2) const;
  /// "kind,name,value" rows (histograms expand to one row per bucket).
  std::string to_csv() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// The bounds argument only applies on first registration; re-registering
  /// an existing name with different bounds throws.
  LatencyHistogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

/// Fold snapshots in order (submission order for sweep replicas).
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

} // namespace tsn::obs
