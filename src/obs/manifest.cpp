#include "obs/manifest.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/str.hpp"

#ifndef TSN_GIT_SHA
#define TSN_GIT_SHA "unknown"
#endif

namespace tsn::obs {

const char* build_git_sha() { return TSN_GIT_SHA; }

namespace {

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

void emit_string_map(std::string& out, const char* title,
                     const std::map<std::string, std::string>& m) {
  out += util::format("  \"%s\": {", title);
  bool first = true;
  for (const auto& [k, v] : m) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_string(k) + ": " + json_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
}

} // namespace

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "  \"tool\": " + json_string(tool) + ",\n";
  out += util::format("  \"git_sha\": %s,\n", json_string(build_git_sha()).c_str());
  out += util::format("  \"seed\": %llu,\n", (unsigned long long)seed);
  out += util::format("  \"replicas\": %zu,\n", replicas);
  out += util::format("  \"threads\": %zu,\n", threads);
  emit_string_map(out, "scenario", scenario);
  emit_string_map(out, "extra", extra);
  // Indent the metrics object two spaces to nest it.
  std::string metrics_json = metrics.to_json();
  std::string indented;
  indented.reserve(metrics_json.size());
  for (std::size_t i = 0; i < metrics_json.size(); ++i) {
    indented += metrics_json[i];
    if (metrics_json[i] == '\n') indented += "  ";
  }
  out += "  \"metrics\": " + indented + "\n";
  out += "}\n";
  return out;
}

void write_manifest(const std::string& path, const RunManifest& m) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("write_manifest: cannot open " + path);
  const std::string json = m.to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) throw std::runtime_error("write_manifest: short write to " + path);
}

} // namespace tsn::obs
