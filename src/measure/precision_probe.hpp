// Clock synchronization precision measurement (paper section III-A2).
//
// A dedicated measurement VM multicasts a packet p_s once per second on a
// measurement VLAN with known, symmetric paths. Every receiving clock
// synchronization VM timestamps the reception with CLOCK_SYNCTIME (the
// dependent clock of its node) and the measured precision is
//     Pi*_s = max over receiver pairs |t_c(rx) - t_c'(rx)|     (eq. 3.1)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hv/ecd.hpp"
#include "net/nic.hpp"
#include "sim/partition.hpp"
#include "sim/persist.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/series.hpp"

namespace tsn::measure {

inline constexpr std::uint16_t kEtherTypePrecisionProbe = 0x88B5;

/// The well-known measurement multicast group.
net::MacAddress measurement_group();

struct ProbeConfig {
  std::int64_t period_ns = 1'000'000'000; // 1 Hz, as in the paper
  std::uint16_t vlan_id = 100;
  /// Software timestamping jitter when a VM stamps the arrival with
  /// CLOCK_SYNCTIME (interrupt + syscall latency variation).
  double sw_timestamp_jitter_ns = 35.0;
  /// Heavy-tail component: with this probability the stamping is delayed
  /// by an exponential extra latency (softirq/scheduling outliers, the
  /// source of the paper's sporadic multi-us precision spikes).
  double sw_ts_tail_prob = 0.002;
  double sw_ts_tail_mean_ns = 1'500.0;
  /// Wait this long after sending before evaluating an interval's
  /// timestamps (all paths are far shorter).
  std::int64_t collect_delay_ns = 100'000'000;
};

class PrecisionProbe : public sim::Persistent {
 public:
  struct Receiver {
    std::string name;
    net::Nic* nic;        ///< the clock sync VM's NIC (rx path)
    hv::ClockSyncVm* vm;  ///< for liveness: dead VMs do not stamp
    hv::Ecd* ecd;         ///< CLOCK_SYNCTIME source (STSHMEM + TSC)
  };

  PrecisionProbe(sim::Simulation& sim, net::Nic& sender, const ProbeConfig& cfg,
                 const std::string& name);

  /// Partitioned mode: the probe (sender, evaluation, series) lives in
  /// `home_region` — the Simulation passed to the constructor must be that
  /// region's — and receivers stamp in their own region, forwarding the
  /// sample over a control channel (+1 ms, well under the collect delay).
  /// Each receiver gets a private jitter stream (the serial path's single
  /// shared stream would be advanced in nondeterministic order). Call
  /// before any add_receiver().
  void set_partitioned(sim::PartitionRuntime* rt, std::size_t home_region);

  /// Register a receiving clock synchronization VM. Per the paper, the
  /// co-located VM c^m_1 is *not* registered (asymmetric path). `region`
  /// is the receiver's region (partitioned mode only).
  void add_receiver(const Receiver& r, std::size_t region = 0);

  void start();
  void stop();

  /// The measured precision series Pi*_s (one point per interval with >= 2
  /// responding receivers).
  const util::TimeSeries& series() const { return series_; }

  /// Fired for each computed interval: (sim time, precision ns).
  std::function<void(std::int64_t, double)> on_sample;

  std::uint64_t intervals_sent() const { return seq_; }
  std::uint64_t intervals_measured() const { return measured_; }
  std::uint64_t intervals_skipped() const { return skipped_; }

  /// True when no interval is waiting for its evaluation callback (the
  /// model-quiescence gate: a probe mid-collection keeps the window shut;
  /// the in-flight evaluate event also blocks it structurally).
  bool idle() const { return pending_.empty(); }

  // -- sim::Persistent ------------------------------------------------------
  // Probes that would have fired inside a fast-forward window are simply
  // skipped: the series has no points there (the probe measures, it does
  // not influence the clocks), and the send periodic re-arms on its
  // pre-park phase grid.
  const char* persist_name() const override { return name_.c_str(); }
  void save_state(sim::StateWriter& w) override;
  void load_state(sim::StateReader& r) override;
  std::size_t live_events() const override { return periodic_.active() ? 1 : 0; }
  void ff_park() override;
  void ff_resume() override;

 private:
  void send_probe();
  void evaluate(std::uint32_t seq);

  sim::Simulation& sim_;
  net::Nic& sender_;
  ProbeConfig cfg_;
  std::string name_;
  std::vector<Receiver> receivers_;
  util::RngStream ts_jitter_rng_;
  sim::PartitionRuntime* rt_ = nullptr;
  std::size_t home_region_ = 0;
  std::vector<util::RngStream> rx_rngs_; ///< per-receiver (partitioned)
  sim::Simulation::PeriodicHandle periodic_;
  std::uint32_t seq_ = 0;
  std::map<std::uint32_t, std::vector<double>> pending_; // seq -> rx timestamps
  util::TimeSeries series_;
  std::uint64_t measured_ = 0;
  std::uint64_t skipped_ = 0;

  // Fast-forward park state.
  bool parked_running_ = false;
  std::int64_t park_due_ns_ = 0;
};

} // namespace tsn::measure
