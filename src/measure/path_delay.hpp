// Path delay metering: the offline calibration step of paper section
// III-A3. The authors measured the network latency between all node pairs
// (via ptp4l data) to derive the reading error E = dmax - dmin and the
// measurement error gamma from the measurement VM's paths.
//
// We reproduce it with instrumented probe frames that carry their true
// transmission time: the receiver side computes the true one-way transit
// time. This is measurement infrastructure (run before/alongside the
// experiment), not part of the synchronized system itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/nic.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace tsn::measure {

inline constexpr std::uint16_t kEtherTypePathProbe = 0x88B6;

class PathDelayMeter {
 public:
  PathDelayMeter(sim::Simulation& sim, std::uint16_t vlan_id, const std::string& name);

  /// Register a node endpoint. All pairwise one-way delays between
  /// registered nodes are measured.
  void add_node(const std::string& name, net::Nic* nic);

  /// Launch `rounds` probe sweeps spaced `spacing_ns` apart, starting now.
  /// `on_done` fires after the last sweep's results are in.
  void run(int rounds, std::int64_t spacing_ns, std::function<void()> on_done = {});

  struct PairStats {
    util::RunningStats delay_ns;
  };

  /// Per ordered pair (src, dst) one-way delay statistics.
  const std::map<std::pair<std::string, std::string>, PairStats>& pairs() const {
    return pairs_;
  }

  /// Minimum / maximum observed latency over all node pairs -> E.
  double dmin_ns() const;
  double dmax_ns() const;
  double reading_error_ns() const { return dmax_ns() - dmin_ns(); }

  /// Measurement error gamma (paper eq. 3.2) for the path set from
  /// `measurement_node` to `destinations`: max over those paths of the
  /// maximum delay minus min over those paths of the minimum delay.
  double gamma_ns(const std::string& measurement_node,
                  const std::vector<std::string>& destinations) const;

  std::uint64_t probes_received() const { return probes_received_; }

 private:
  void sweep();
  void on_probe(const std::string& dst, const net::EthernetFrame& frame,
                const net::RxMeta& meta);

  sim::Simulation& sim_;
  std::uint16_t vlan_id_;
  std::string name_;
  struct Node {
    std::string name;
    net::Nic* nic;
  };
  std::vector<Node> nodes_;
  std::map<std::pair<std::string, std::string>, PairStats> pairs_;
  std::uint64_t probes_received_ = 0;
  int rounds_left_ = 0;
  std::int64_t spacing_ns_ = 0;
  std::function<void()> on_done_;
};

} // namespace tsn::measure
