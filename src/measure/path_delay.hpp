// Path delay metering: the offline calibration step of paper section
// III-A3. The authors measured the network latency between all node pairs
// (via ptp4l data) to derive the reading error E = dmax - dmin and the
// measurement error gamma from the measurement VM's paths.
//
// We reproduce it with instrumented probe frames that carry their true
// transmission time: the receiver side computes the true one-way transit
// time. This is measurement infrastructure (run before/alongside the
// experiment), not part of the synchronized system itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/nic.hpp"
#include "sim/partition.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace tsn::measure {

inline constexpr std::uint16_t kEtherTypePathProbe = 0x88B6;

class PathDelayMeter {
 public:
  PathDelayMeter(sim::Simulation& sim, std::uint16_t vlan_id, const std::string& name);

  /// Partitioned mode: sweeps are coordinated from `home_region` (the
  /// constructor's Simulation must be that region's). Send commands fan
  /// out to each node's region over control channels (+2 ms), nodes stamp
  /// their own region clock, and receivers forward (src, dst, delay)
  /// samples back home (+1 ms). Call before any add_node().
  void set_partitioned(sim::PartitionRuntime* rt, std::size_t home_region);

  /// Register a node endpoint. All pairwise one-way delays between
  /// registered nodes are measured. `node_sim`/`region` locate the node in
  /// a partitioned world (serial callers leave the defaults).
  void add_node(const std::string& name, net::Nic* nic,
                sim::Simulation* node_sim = nullptr, std::size_t region = 0);

  /// Launch `rounds` probe sweeps spaced `spacing_ns` apart, starting now.
  /// `on_done` fires after the last sweep's results are in.
  void run(int rounds, std::int64_t spacing_ns, std::function<void()> on_done = {});

  struct PairStats {
    util::RunningStats delay_ns;
  };

  /// Per ordered pair (src, dst) one-way delay statistics.
  const std::map<std::pair<std::string, std::string>, PairStats>& pairs() const {
    return pairs_;
  }

  /// Minimum / maximum observed latency over all node pairs -> E.
  double dmin_ns() const;
  double dmax_ns() const;
  double reading_error_ns() const { return dmax_ns() - dmin_ns(); }

  /// Measurement error gamma (paper eq. 3.2) for the path set from
  /// `measurement_node` to `destinations`: max over those paths of the
  /// maximum delay minus min over those paths of the minimum delay.
  double gamma_ns(const std::string& measurement_node,
                  const std::vector<std::string>& destinations) const;

  std::uint64_t probes_received() const { return probes_received_; }

 private:
  void sweep();
  void send_from(std::uint32_t src_idx);
  void on_probe(std::uint32_t dst_idx, const net::EthernetFrame& frame,
                const net::RxMeta& meta);
  void record(std::uint32_t src_idx, std::uint32_t dst_idx, double delay_ns);

  sim::Simulation& sim_;
  std::uint16_t vlan_id_;
  std::string name_;
  struct Node {
    std::string name;
    net::Nic* nic;
    sim::Simulation* sim = nullptr; ///< node's region sim (partitioned)
    std::size_t region = 0;
  };
  std::vector<Node> nodes_;
  sim::PartitionRuntime* rt_ = nullptr;
  std::size_t home_region_ = 0;
  std::map<std::pair<std::string, std::string>, PairStats> pairs_;
  std::uint64_t probes_received_ = 0;
  int rounds_left_ = 0;
  std::int64_t spacing_ns_ = 0;
  std::function<void()> on_done_;
};

} // namespace tsn::measure
