#include "measure/path_delay.hpp"

#include <cassert>
#include <limits>

#include "gptp/wire.hpp"

namespace tsn::measure {

PathDelayMeter::PathDelayMeter(sim::Simulation& sim, std::uint16_t vlan_id,
                               const std::string& name)
    : sim_(sim), vlan_id_(vlan_id), name_(name) {}

void PathDelayMeter::set_partitioned(sim::PartitionRuntime* rt, std::size_t home_region) {
  assert(nodes_.empty()); // channels are set up per node
  rt_ = rt;
  home_region_ = home_region;
}

void PathDelayMeter::add_node(const std::string& node_name, net::Nic* nic,
                              sim::Simulation* node_sim, std::size_t region) {
  if (rt_ != nullptr && region != home_region_) {
    // Deterministic channel ids: create both directions at build time.
    rt_->control_channel(home_region_, region); // send commands out
    rt_->control_channel(region, home_region_); // samples back home
  }
  const std::uint32_t dst_idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({node_name, nic, node_sim, region});
  nic->set_rx_handler(kEtherTypePathProbe,
                      [this, dst_idx](const net::EthernetFrame& frame, const net::RxMeta& meta) {
                        on_probe(dst_idx, frame, meta);
                      });
}

void PathDelayMeter::on_probe(std::uint32_t dst_idx, const net::EthernetFrame& frame,
                              const net::RxMeta& meta) {
  gptp::ByteReader r(frame.payload);
  const std::uint32_t src_idx = r.u32();
  const std::int64_t tx_true_ns = r.i64();
  if (!r.ok() || src_idx >= nodes_.size()) return;
  const double delay = static_cast<double>(meta.true_rx_time.ns() - tx_true_ns);
  const Node& dst = nodes_[dst_idx];
  if (rt_ != nullptr && dst.region != home_region_) {
    // Executing in the receiver's region: ship the sample home.
    const sim::SimTime at(dst.sim->now().ns() + sim::kControlLookaheadNs);
    rt_->post_control(home_region_, at, [this, src_idx, dst_idx, delay] {
      record(src_idx, dst_idx, delay);
    });
    return;
  }
  record(src_idx, dst_idx, delay);
}

void PathDelayMeter::record(std::uint32_t src_idx, std::uint32_t dst_idx, double delay_ns) {
  pairs_[{nodes_[src_idx].name, nodes_[dst_idx].name}].delay_ns.add(delay_ns);
  ++probes_received_;
}

void PathDelayMeter::send_from(std::uint32_t src_idx) {
  const Node& src = nodes_[src_idx];
  const std::int64_t tx_true_ns = (src.sim != nullptr ? *src.sim : sim_).now().ns();
  for (const Node& dst : nodes_) {
    if (dst.nic == src.nic) continue;
    net::EthernetFrame frame;
    frame.dst = dst.nic->mac();
    frame.ethertype = kEtherTypePathProbe;
    if (vlan_id_ != 0) frame.vlan = net::VlanTag{vlan_id_, 0};
    gptp::BasicByteWriter<net::Payload> w(frame.payload);
    w.u32(src_idx);
    w.i64(tx_true_ns);
    w.zeros(34); // pad to a plausible probe size
    src.nic->send(std::move(frame));
  }
}

void PathDelayMeter::sweep() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (rt_ != nullptr && nodes_[i].region != home_region_) {
      // Command the node's region to send; +2x lookahead keeps the post
      // legal however late in the stage this sweep executes.
      const sim::SimTime at(sim_.now().ns() + 2 * sim::kControlLookaheadNs);
      rt_->post_control(nodes_[i].region, at, [this, i] { send_from(i); });
    } else {
      send_from(i);
    }
  }
  if (--rounds_left_ > 0) {
    sim_.after(spacing_ns_, [this] { sweep(); });
  } else if (on_done_) {
    // Give in-flight probes time to land before reporting (partitioned:
    // plus the command/report channel legs).
    const std::int64_t margin = rt_ != nullptr ? 4 * sim::kControlLookaheadNs : 0;
    sim_.after(spacing_ns_ + margin, [this] { on_done_(); });
  }
}

void PathDelayMeter::run(int rounds, std::int64_t spacing_ns, std::function<void()> on_done) {
  rounds_left_ = rounds;
  spacing_ns_ = spacing_ns;
  on_done_ = std::move(on_done);
  sim_.after(0, [this] { sweep(); });
}

double PathDelayMeter::dmin_ns() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& [key, st] : pairs_) lo = std::min(lo, st.delay_ns.min());
  return lo;
}

double PathDelayMeter::dmax_ns() const {
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& [key, st] : pairs_) hi = std::max(hi, st.delay_ns.max());
  return hi;
}

double PathDelayMeter::gamma_ns(const std::string& measurement_node,
                                const std::vector<std::string>& destinations) const {
  double path_max = -std::numeric_limits<double>::infinity();
  double path_min = std::numeric_limits<double>::infinity();
  for (const auto& dst : destinations) {
    auto it = pairs_.find({measurement_node, dst});
    if (it == pairs_.end()) continue;
    path_max = std::max(path_max, it->second.delay_ns.max());
    path_min = std::min(path_min, it->second.delay_ns.min());
  }
  if (path_min > path_max) return 0.0;
  return path_max - path_min;
}

} // namespace tsn::measure
