#include "measure/path_delay.hpp"

#include <limits>

#include "gptp/wire.hpp"

namespace tsn::measure {

PathDelayMeter::PathDelayMeter(sim::Simulation& sim, std::uint16_t vlan_id,
                               const std::string& name)
    : sim_(sim), vlan_id_(vlan_id), name_(name) {}

void PathDelayMeter::add_node(const std::string& node_name, net::Nic* nic) {
  nodes_.push_back({node_name, nic});
  nic->set_rx_handler(kEtherTypePathProbe,
                      [this, node_name](const net::EthernetFrame& frame, const net::RxMeta& meta) {
                        on_probe(node_name, frame, meta);
                      });
}

void PathDelayMeter::on_probe(const std::string& dst, const net::EthernetFrame& frame,
                              const net::RxMeta& meta) {
  gptp::ByteReader r(frame.payload);
  const std::uint32_t src_idx = r.u32();
  const std::int64_t tx_true_ns = r.i64();
  if (!r.ok() || src_idx >= nodes_.size()) return;
  const double delay = static_cast<double>(meta.true_rx_time.ns() - tx_true_ns);
  pairs_[{nodes_[src_idx].name, dst}].delay_ns.add(delay);
  ++probes_received_;
}

void PathDelayMeter::sweep() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    for (const Node& dst : nodes_) {
      if (dst.nic == nodes_[i].nic) continue;
      net::EthernetFrame frame;
      frame.dst = dst.nic->mac();
      frame.ethertype = kEtherTypePathProbe;
      if (vlan_id_ != 0) frame.vlan = net::VlanTag{vlan_id_, 0};
      gptp::BasicByteWriter<net::Payload> w(frame.payload);
      w.u32(i);
      w.i64(sim_.now().ns());
      w.zeros(34); // pad to a plausible probe size
      nodes_[i].nic->send(std::move(frame));
    }
  }
  if (--rounds_left_ > 0) {
    sim_.after(spacing_ns_, [this] { sweep(); });
  } else if (on_done_) {
    // Give in-flight probes time to land before reporting.
    sim_.after(spacing_ns_, [this] { on_done_(); });
  }
}

void PathDelayMeter::run(int rounds, std::int64_t spacing_ns, std::function<void()> on_done) {
  rounds_left_ = rounds;
  spacing_ns_ = spacing_ns;
  on_done_ = std::move(on_done);
  sim_.after(0, [this] { sweep(); });
}

double PathDelayMeter::dmin_ns() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& [key, st] : pairs_) lo = std::min(lo, st.delay_ns.min());
  return lo;
}

double PathDelayMeter::dmax_ns() const {
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& [key, st] : pairs_) hi = std::max(hi, st.delay_ns.max());
  return hi;
}

double PathDelayMeter::gamma_ns(const std::string& measurement_node,
                                const std::vector<std::string>& destinations) const {
  double path_max = -std::numeric_limits<double>::infinity();
  double path_min = std::numeric_limits<double>::infinity();
  for (const auto& dst : destinations) {
    auto it = pairs_.find({measurement_node, dst});
    if (it == pairs_.end()) continue;
    path_max = std::max(path_max, it->second.delay_ns.max());
    path_min = std::min(path_min, it->second.delay_ns.min());
  }
  if (path_min > path_max) return 0.0;
  return path_max - path_min;
}

} // namespace tsn::measure
