#include "measure/bound.hpp"

#include "core/fta.hpp"

namespace tsn::measure {

PrecisionBound compute_bound(const BoundInputs& in) {
  PrecisionBound out;
  out.reading_error_ns = in.dmax_ns - in.dmin_ns;
  out.drift_offset_ns =
      2.0 * in.rmax_ppm * 1e-6 * static_cast<double>(in.sync_interval_ns);
  out.multiplier = core::fta_precision_multiplier(in.n, in.f);
  out.pi_ns = out.multiplier * (out.reading_error_ns + out.drift_offset_ns);
  return out;
}

} // namespace tsn::measure
