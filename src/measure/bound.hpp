// The upper bound on clock synchronization precision (paper section
// III-A3): the convergence function of Kopetz & Ochsenreiter,
//     Pi(N, f, E, Gamma) = u(N, f) * (E + Gamma)
// with u(4, 1) = 2, Gamma = 2 * rmax * S, and reading error E = dmax - dmin
// from measured node-to-node latencies.
#pragma once

#include <cstdint>

namespace tsn::measure {

struct BoundInputs {
  int n = 4;     ///< number of GM clocks / domains
  int f = 1;     ///< tolerated faults
  double dmin_ns = 0.0;
  double dmax_ns = 0.0;
  double rmax_ppm = 5.0;                 ///< max drift rate (literature value)
  std::int64_t sync_interval_ns = 125'000'000;
};

struct PrecisionBound {
  double reading_error_ns = 0.0; ///< E = dmax - dmin
  double drift_offset_ns = 0.0;  ///< Gamma = 2 * rmax * S
  double multiplier = 2.0;       ///< u(N, f)
  double pi_ns = 0.0;            ///< Pi = u * (E + Gamma)
};

PrecisionBound compute_bound(const BoundInputs& in);

} // namespace tsn::measure
