#include "measure/precision_probe.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "gptp/wire.hpp"
#include "sim/persist.hpp"
#include "util/log.hpp"

namespace tsn::measure {

net::MacAddress measurement_group() {
  return net::MacAddress({0x01, 0x00, 0x5E, 0x4D, 0x45, 0x41}); // "MEA"
}

PrecisionProbe::PrecisionProbe(sim::Simulation& sim, net::Nic& sender, const ProbeConfig& cfg,
                               const std::string& name)
    : sim_(sim),
      sender_(sender),
      cfg_(cfg),
      name_(name),
      ts_jitter_rng_(sim.make_rng("probe-swts/" + name)) {}

void PrecisionProbe::set_partitioned(sim::PartitionRuntime* rt, std::size_t home_region) {
  assert(receivers_.empty()); // streams/channels are set up per receiver
  rt_ = rt;
  home_region_ = home_region;
}

void PrecisionProbe::add_receiver(const Receiver& r, std::size_t region) {
  receivers_.push_back(r);
  r.nic->join_multicast(measurement_group());
  net::Nic* nic = r.nic;
  hv::ClockSyncVm* vm = r.vm;
  hv::Ecd* ecd = r.ecd;
  if (rt_ != nullptr) {
    const bool remote = region != home_region_;
    if (remote) rt_->control_channel(region, home_region_); // deterministic id
    rx_rngs_.push_back(ecd->sim().make_rng("probe-swts/" + name_ + "/" + r.name));
    const std::size_t rx_idx = rx_rngs_.size() - 1;
    nic->set_rx_handler(
        kEtherTypePrecisionProbe,
        [this, vm, ecd, rx_idx, remote](const net::EthernetFrame& frame, const net::RxMeta&) {
          if (!vm->running()) return; // dead VMs do not serve measurements
          gptp::ByteReader rd(frame.payload);
          const std::uint32_t seq = rd.u32();
          if (!rd.ok()) return;
          const auto synctime = ecd->read_synctime();
          if (!synctime) return; // CLOCK_SYNCTIME not yet published
          util::RngStream& rng = rx_rngs_[rx_idx];
          double jitter = rng.normal(0.0, cfg_.sw_timestamp_jitter_ns);
          if (cfg_.sw_ts_tail_prob > 0 && rng.chance(cfg_.sw_ts_tail_prob)) {
            jitter += rng.exponential(cfg_.sw_ts_tail_mean_ns);
          }
          const double stamp = static_cast<double>(*synctime) + jitter;
          if (!remote) {
            pending_[seq].push_back(stamp);
            return;
          }
          const sim::SimTime at(ecd->sim().now().ns() + sim::kControlLookaheadNs);
          rt_->post_control(home_region_, at,
                            [this, seq, stamp] { pending_[seq].push_back(stamp); });
        });
    return;
  }
  nic->set_rx_handler(
      kEtherTypePrecisionProbe,
      [this, vm, ecd](const net::EthernetFrame& frame, const net::RxMeta&) {
        if (!vm->running()) return; // dead VMs do not serve measurements
        gptp::ByteReader rd(frame.payload);
        const std::uint32_t seq = rd.u32();
        if (!rd.ok()) return;
        const auto synctime = ecd->read_synctime();
        if (!synctime) return; // CLOCK_SYNCTIME not yet published
        double jitter = ts_jitter_rng_.normal(0.0, cfg_.sw_timestamp_jitter_ns);
        if (cfg_.sw_ts_tail_prob > 0 && ts_jitter_rng_.chance(cfg_.sw_ts_tail_prob)) {
          jitter += ts_jitter_rng_.exponential(cfg_.sw_ts_tail_mean_ns);
        }
        pending_[seq].push_back(static_cast<double>(*synctime) + jitter);
      });
}

void PrecisionProbe::start() {
  if (periodic_.active()) return;
  periodic_ = sim_.every(sim_.now() + cfg_.period_ns, cfg_.period_ns,
                         [this](sim::SimTime) { send_probe(); });
}

void PrecisionProbe::stop() { periodic_.cancel(); }

void PrecisionProbe::send_probe() {
  const std::uint32_t seq = ++seq_;
  net::EthernetFrame frame;
  frame.dst = measurement_group();
  frame.ethertype = kEtherTypePrecisionProbe;
  frame.vlan = net::VlanTag{cfg_.vlan_id, 6};
  gptp::BasicByteWriter<net::Payload> w(frame.payload);
  w.u32(seq);
  w.zeros(42);
  sender_.send(std::move(frame));
  sim_.after(cfg_.collect_delay_ns, [this, seq] { evaluate(seq); });
}

void PrecisionProbe::save_state(sim::StateWriter& w) {
  w.b(periodic_.active());
  w.i64(periodic_.next_due_ns());
  w.u32(seq_);
  w.u64(measured_);
  w.u64(skipped_);
  w.rng(ts_jitter_rng_);
  w.u64(rx_rngs_.size());
  for (util::RngStream& rng : rx_rngs_) w.rng(rng);
  // pending_ is empty at any component-quiescent instant (the in-flight
  // evaluate event blocks the gate), but persist it anyway so the format
  // does not silently depend on that invariant.
  w.u64(pending_.size());
  for (const auto& [seq, stamps] : pending_) {
    w.u32(seq);
    w.u64(stamps.size());
    for (double s : stamps) w.f64(s);
  }
  const auto& pts = series_.points();
  w.u64(pts.size());
  for (const auto& p : pts) {
    w.i64(p.t_ns);
    w.f64(p.value);
  }
}

void PrecisionProbe::load_state(sim::StateReader& r) {
  const bool was_active = r.b();
  const std::int64_t due = r.i64();
  seq_ = r.u32();
  measured_ = r.u64();
  skipped_ = r.u64();
  r.rng(ts_jitter_rng_);
  const std::uint64_t n_rx = r.u64();
  if (n_rx != rx_rngs_.size()) {
    throw std::runtime_error("PrecisionProbe::load_state: receiver-stream count mismatch for " +
                             name_);
  }
  for (util::RngStream& rng : rx_rngs_) r.rng(rng);
  pending_.clear();
  const std::uint64_t n_pending = r.u64();
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    const std::uint32_t seq = r.u32();
    auto& stamps = pending_[seq];
    const std::uint64_t n_stamps = r.u64();
    stamps.reserve(n_stamps);
    for (std::uint64_t j = 0; j < n_stamps; ++j) stamps.push_back(r.f64());
  }
  series_ = util::TimeSeries{};
  const std::uint64_t n_pts = r.u64();
  for (std::uint64_t i = 0; i < n_pts; ++i) {
    const std::int64_t t = r.i64();
    const double v = r.f64();
    series_.add(t, v);
  }
  periodic_.cancel();
  periodic_ = {};
  if (was_active) {
    periodic_ = sim_.every(
        sim::SimTime{sim::align_phase(due, cfg_.period_ns, sim_.now().ns())}, cfg_.period_ns,
        [this](sim::SimTime) { send_probe(); });
  }
}

void PrecisionProbe::ff_park() {
  parked_running_ = periodic_.active();
  if (!parked_running_) return;
  park_due_ns_ = periodic_.next_due_ns();
  periodic_.cancel();
}

void PrecisionProbe::ff_resume() {
  if (!parked_running_) return;
  parked_running_ = false;
  periodic_ = sim_.every(
      sim::SimTime{sim::align_phase(park_due_ns_, cfg_.period_ns, sim_.now().ns())},
      cfg_.period_ns, [this](sim::SimTime) { send_probe(); });
}

void PrecisionProbe::evaluate(std::uint32_t seq) {
  auto it = pending_.find(seq);
  const std::vector<double> stamps = (it == pending_.end()) ? std::vector<double>{} : it->second;
  if (it != pending_.end()) pending_.erase(it);
  if (stamps.size() < 2) {
    ++skipped_;
    return;
  }
  double lo = stamps[0], hi = stamps[0];
  for (double s : stamps) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double precision = hi - lo; // max pairwise |difference|
  series_.add(sim_.now().ns(), precision);
  ++measured_;
  if (on_sample) on_sample(sim_.now().ns(), precision);
}

} // namespace tsn::measure
