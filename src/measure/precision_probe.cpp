#include "measure/precision_probe.hpp"

#include <cassert>
#include <cmath>

#include "gptp/wire.hpp"
#include "util/log.hpp"

namespace tsn::measure {

net::MacAddress measurement_group() {
  return net::MacAddress({0x01, 0x00, 0x5E, 0x4D, 0x45, 0x41}); // "MEA"
}

PrecisionProbe::PrecisionProbe(sim::Simulation& sim, net::Nic& sender, const ProbeConfig& cfg,
                               const std::string& name)
    : sim_(sim),
      sender_(sender),
      cfg_(cfg),
      name_(name),
      ts_jitter_rng_(sim.make_rng("probe-swts/" + name)) {}

void PrecisionProbe::set_partitioned(sim::PartitionRuntime* rt, std::size_t home_region) {
  assert(receivers_.empty()); // streams/channels are set up per receiver
  rt_ = rt;
  home_region_ = home_region;
}

void PrecisionProbe::add_receiver(const Receiver& r, std::size_t region) {
  receivers_.push_back(r);
  r.nic->join_multicast(measurement_group());
  net::Nic* nic = r.nic;
  hv::ClockSyncVm* vm = r.vm;
  hv::Ecd* ecd = r.ecd;
  if (rt_ != nullptr) {
    const bool remote = region != home_region_;
    if (remote) rt_->control_channel(region, home_region_); // deterministic id
    rx_rngs_.push_back(ecd->sim().make_rng("probe-swts/" + name_ + "/" + r.name));
    const std::size_t rx_idx = rx_rngs_.size() - 1;
    nic->set_rx_handler(
        kEtherTypePrecisionProbe,
        [this, vm, ecd, rx_idx, remote](const net::EthernetFrame& frame, const net::RxMeta&) {
          if (!vm->running()) return; // dead VMs do not serve measurements
          gptp::ByteReader rd(frame.payload);
          const std::uint32_t seq = rd.u32();
          if (!rd.ok()) return;
          const auto synctime = ecd->read_synctime();
          if (!synctime) return; // CLOCK_SYNCTIME not yet published
          util::RngStream& rng = rx_rngs_[rx_idx];
          double jitter = rng.normal(0.0, cfg_.sw_timestamp_jitter_ns);
          if (cfg_.sw_ts_tail_prob > 0 && rng.chance(cfg_.sw_ts_tail_prob)) {
            jitter += rng.exponential(cfg_.sw_ts_tail_mean_ns);
          }
          const double stamp = static_cast<double>(*synctime) + jitter;
          if (!remote) {
            pending_[seq].push_back(stamp);
            return;
          }
          const sim::SimTime at(ecd->sim().now().ns() + sim::kControlLookaheadNs);
          rt_->post_control(home_region_, at,
                            [this, seq, stamp] { pending_[seq].push_back(stamp); });
        });
    return;
  }
  nic->set_rx_handler(
      kEtherTypePrecisionProbe,
      [this, vm, ecd](const net::EthernetFrame& frame, const net::RxMeta&) {
        if (!vm->running()) return; // dead VMs do not serve measurements
        gptp::ByteReader rd(frame.payload);
        const std::uint32_t seq = rd.u32();
        if (!rd.ok()) return;
        const auto synctime = ecd->read_synctime();
        if (!synctime) return; // CLOCK_SYNCTIME not yet published
        double jitter = ts_jitter_rng_.normal(0.0, cfg_.sw_timestamp_jitter_ns);
        if (cfg_.sw_ts_tail_prob > 0 && ts_jitter_rng_.chance(cfg_.sw_ts_tail_prob)) {
          jitter += ts_jitter_rng_.exponential(cfg_.sw_ts_tail_mean_ns);
        }
        pending_[seq].push_back(static_cast<double>(*synctime) + jitter);
      });
}

void PrecisionProbe::start() {
  if (periodic_.active()) return;
  periodic_ = sim_.every(sim_.now() + cfg_.period_ns, cfg_.period_ns,
                         [this](sim::SimTime) { send_probe(); });
}

void PrecisionProbe::stop() { periodic_.cancel(); }

void PrecisionProbe::send_probe() {
  const std::uint32_t seq = ++seq_;
  net::EthernetFrame frame;
  frame.dst = measurement_group();
  frame.ethertype = kEtherTypePrecisionProbe;
  frame.vlan = net::VlanTag{cfg_.vlan_id, 6};
  gptp::BasicByteWriter<net::Payload> w(frame.payload);
  w.u32(seq);
  w.zeros(42);
  sender_.send(std::move(frame));
  sim_.after(cfg_.collect_delay_ns, [this, seq] { evaluate(seq); });
}

void PrecisionProbe::evaluate(std::uint32_t seq) {
  auto it = pending_.find(seq);
  const std::vector<double> stamps = (it == pending_.end()) ? std::vector<double>{} : it->second;
  if (it != pending_.end()) pending_.erase(it);
  if (stamps.size() < 2) {
    ++skipped_;
    return;
  }
  double lo = stamps[0], hi = stamps[0];
  for (double s : stamps) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double precision = hi - lo; // max pairwise |difference|
  series_.add(sim_.now().ns(), precision);
  ++measured_;
  if (on_sample) on_sample(sim_.now().ns(), precision);
}

} // namespace tsn::measure
