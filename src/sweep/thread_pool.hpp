// Work-stealing thread pool for fanning independent simulation replicas
// out across cores.
//
// Each worker owns a deque: it pushes/pops its own work at the back and
// steals from the front of other workers' deques when it runs dry, which
// keeps contention off the common path. External submissions are
// distributed round-robin. The pool never touches simulation state — the
// determinism of a sweep comes from replicas owning all of their mutable
// state and from merging results in submission order, not from any
// scheduling property of this class.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tsn::sweep {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queues: blocks until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe; may be called from worker threads too
  /// (the task then lands on the calling worker's own deque).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks (including ones submitted while
  /// waiting) have finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// The effective worker count a given configuration yields.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool try_get_task(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0; ///< submitted but not yet finished
  std::size_t queued_ = 0;  ///< submitted but not yet picked up by a worker
  std::size_t next_queue_ = 0;
  bool shutdown_ = false;
};

} // namespace tsn::sweep
