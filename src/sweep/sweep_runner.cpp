#include "sweep/sweep_runner.hpp"

#include <stdexcept>

namespace tsn::sweep {

std::vector<experiments::ScenarioConfig> seed_sweep(const experiments::ScenarioConfig& base,
                                                    std::size_t count) {
  std::vector<experiments::ScenarioConfig> configs(count, base);
  for (std::size_t i = 0; i < count; ++i) {
    configs[i].seed = base.seed + static_cast<std::uint64_t>(i);
  }
  return configs;
}

util::TimeSeries merge_series(const std::vector<util::TimeSeries>& parts) {
  util::TimeSeries merged;
  for (const auto& part : parts) {
    for (const auto& p : part.points()) merged.add(p.t_ns, p.value);
  }
  return merged;
}

experiments::EventLog merge_event_logs(const std::vector<experiments::EventLog>& parts) {
  experiments::EventLog merged;
  for (const auto& part : parts) {
    for (const auto& e : part.events()) merged.record(e.t_ns, e.kind, e.subject, e.detail);
  }
  return merged;
}

util::RunningStats merge_stats(const std::vector<util::RunningStats>& parts) {
  util::RunningStats merged;
  for (const auto& part : parts) merged.merge(part);
  return merged;
}

util::Histogram merge_histograms(const std::vector<util::Histogram>& parts) {
  if (parts.empty()) throw std::invalid_argument("merge_histograms: no parts");
  util::Histogram merged = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) merged.merge(parts[i]);
  return merged;
}

obs::MetricsSnapshot merge_metrics(const std::vector<obs::MetricsSnapshot>& parts) {
  return obs::merge_snapshots(parts);
}

} // namespace tsn::sweep
