#include "sweep/thread_pool.hpp"

#include <algorithm>

namespace tsn::sweep {

namespace {
// Identifies the pool (and worker slot) the current thread belongs to, so
// submit() from inside a task lands on the worker's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;
} // namespace

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tls_pool == this) {
    target = tls_index;
  } else {
    std::lock_guard<std::mutex> lk(state_mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mutex);
    queues_[target]->deque.push_back(std::move(task));
  }
  // The task must be visible in a deque before the queued count says so;
  // a worker that reserves a unit of work is then guaranteed to find one.
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    ++queued_;
    ++pending_;
  }
  work_available_.notify_one();
}

bool ThreadPool::try_get_task(std::size_t self, std::function<void()>& out) {
  // Own deque first (back = most recently pushed, cache-warm), then steal
  // from the front of the others.
  {
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lk(w.mutex);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Worker& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(victim.mutex);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.front());
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_index = self;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(state_mutex_);
      work_available_.wait(lk, [&] { return shutdown_ || queued_ > 0; });
      if (queued_ == 0) {
        if (shutdown_) return;
        continue;
      }
      --queued_; // reserve one unit of work
    }
    std::function<void()> task;
    while (!try_get_task(self, task)) {
      // The reserved task is mid-push or being shuffled; extremely short
      // window, just yield.
      std::this_thread::yield();
    }
    task();
    task = nullptr; // release captures before reporting completion
    bool done;
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      done = (--pending_ == 0);
    }
    if (done) all_done_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(state_mutex_);
  all_done_.wait(lk, [&] { return pending_ == 0; });
}

} // namespace tsn::sweep
