// SweepRunner: fan independent (ScenarioConfig, seed) replicas out across
// cores and merge their results deterministically.
//
// Every replica body builds and owns its entire world — Simulation,
// Scenario, ExperimentHarness, injectors — so replicas share no mutable
// state and the per-replica results are identical whatever thread ran
// them. Results are collected into a vector indexed by submission order,
// and all merging helpers fold in that order, so the merged CSVs, stats
// and histograms of a `threads=N` run are byte-identical to a
// `threads=1` run.
//
// With threads == 1 the replicas run inline on the calling thread, no
// pool is spawned and behavior is exactly the sequential legacy loop.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <type_traits>
#include <vector>

#include "experiments/event_log.hpp"
#include "experiments/scenario.hpp"
#include "obs/obs.hpp"
#include "sweep/thread_pool.hpp"
#include "util/histogram.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"

namespace tsn::sweep {

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (exact
  /// sequential legacy behavior).
  std::size_t threads = 0;
  /// Sweep-level observability (replica count, wall time per replica).
  /// The striped counters/histograms absorb concurrent workers without
  /// contending; per-world metrics live in each replica's Scenario.
  obs::ObsContext obs = {};
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

  std::size_t threads() const { return ThreadPool::resolve_threads(opts_.threads); }

  /// Run `fn(configs[i], i)` for every config and return the results in
  /// submission order. `fn` must not touch shared mutable state; the
  /// first exception a replica throws is rethrown after the sweep
  /// completes.
  template <typename Fn>
  auto run(const std::vector<experiments::ScenarioConfig>& configs, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const experiments::ScenarioConfig&, std::size_t>> {
    using Result = std::invoke_result_t<Fn&, const experiments::ScenarioConfig&, std::size_t>;
    static_assert(!std::is_void_v<Result>, "replica body must return its result");
    obs::Counter* c_replicas = nullptr;
    obs::LatencyHistogram* h_wall = nullptr;
    if (opts_.obs.metrics) {
      c_replicas = &opts_.obs.metrics->counter("sweep.replicas_run");
      h_wall = &opts_.obs.metrics->histogram(
          "sweep.replica_wall_ms",
          {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1'000.0, 3'000.0, 10'000.0, 30'000.0});
    }
    auto timed = [&](const experiments::ScenarioConfig& cfg, std::size_t i) -> Result {
      const auto t0 = std::chrono::steady_clock::now();
      Result r = fn(cfg, i);
      if (c_replicas) {
        const std::chrono::duration<double, std::milli> ms =
            std::chrono::steady_clock::now() - t0;
        c_replicas->inc();
        h_wall->observe(ms.count());
      }
      return r;
    };
    std::vector<Result> results(configs.size());
    const std::size_t n_threads = threads();
    if (n_threads <= 1 || configs.size() <= 1) {
      for (std::size_t i = 0; i < configs.size(); ++i) results[i] = timed(configs[i], i);
      return results;
    }
    std::vector<std::exception_ptr> errors(configs.size());
    {
      ThreadPool pool(n_threads);
      for (std::size_t i = 0; i < configs.size(); ++i) {
        pool.submit([&, i] {
          try {
            results[i] = timed(configs[i], i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return results;
  }

  /// Run `fn(i)` for i in [0, count) and return the results in index
  /// order — the ScenarioConfig-free variant for workloads (like the fuzz
  /// campaign) whose replicas derive their whole world from an index. The
  /// same determinism contract applies: `fn` must not touch shared
  /// mutable state, results are merged in index order, and the first
  /// replica exception is rethrown after the sweep completes.
  template <typename Fn>
  auto run_indexed(std::size_t count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using Result = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<Result>, "replica body must return its result");
    std::vector<Result> results(count);
    const std::size_t n_threads = threads();
    if (n_threads <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
      return results;
    }
    std::vector<std::exception_ptr> errors(count);
    {
      ThreadPool pool(n_threads);
      for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&, i] {
          try {
            results[i] = fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return results;
  }

 private:
  SweepOptions opts_;
};

/// `count` copies of `base` with seeds base.seed, base.seed+1, ... —
/// the canonical N-seed replica sweep.
std::vector<experiments::ScenarioConfig> seed_sweep(const experiments::ScenarioConfig& base,
                                                    std::size_t count);

// ---------------------------------------------------------------------------
// Deterministic (submission-order) merge helpers.

/// Concatenate per-replica series in order. Timestamps are left untouched;
/// replicas of equal duration interleave per-replica runs of points.
util::TimeSeries merge_series(const std::vector<util::TimeSeries>& parts);

/// Merge event logs in replica order (events stay grouped per replica,
/// each log's internal order preserved).
experiments::EventLog merge_event_logs(const std::vector<experiments::EventLog>& parts);

/// Fold per-replica running stats in replica order.
util::RunningStats merge_stats(const std::vector<util::RunningStats>& parts);

/// Fold per-replica histograms (identical binning) in replica order.
/// Precondition: parts is non-empty.
util::Histogram merge_histograms(const std::vector<util::Histogram>& parts);

/// Fold per-replica metric snapshots in replica order: counters,
/// histogram buckets and gauges all sum, so merged totals are identical
/// whatever thread count produced the parts.
obs::MetricsSnapshot merge_metrics(const std::vector<obs::MetricsSnapshot>& parts);

} // namespace tsn::sweep
