#include "core/validity.hpp"

#include <algorithm>
#include <cmath>

#include "core/fta.hpp"

namespace tsn::core {

std::vector<GmVerdict> evaluate_validity(const std::vector<std::optional<GmOffsetRecord>>& slots,
                                         std::int64_t now, const ValidityConfig& cfg) {
  std::vector<GmVerdict> verdicts(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    verdicts[i].fresh = slots[i].has_value() &&
                        (now - slots[i]->local_rx_ts) <= cfg.freshness_window_ns;
  }
  std::vector<double> fresh_offsets;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (verdicts[i].fresh) fresh_offsets.push_back(slots[i]->offset_ns);
  }
  if (fresh_offsets.size() < 3) {
    // No quorum to out-vote anyone.
    for (auto& v : verdicts) v.agrees = v.fresh;
    return verdicts;
  }
  // Agreement against the median of all fresh offsets (self included): with
  // a majority of honest clocks the median always lies inside the honest
  // range, so honest GMs stay in and isolated outliers are voted out.
  const double med = *median(fresh_offsets);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!verdicts[i].fresh) continue;
    verdicts[i].agrees = std::abs(slots[i]->offset_ns - med) <= cfg.agreement_threshold_ns;
  }
  return verdicts;
}

} // namespace tsn::core
