// Single-writer/multi-reader sequence lock for trivially copyable records.
//
// FTSHMEM and STSHMEM are shared-memory regions in the paper (between
// ptp4l processes and between VMs respectively). We reproduce their
// concurrency semantics faithfully: writers never block, readers retry on
// torn reads. The simulation itself is single-threaded, but the seqlock is
// real and is exercised with std::thread in the test suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace tsn::core {

template <typename T>
class SeqLock {
  static_assert(std::is_trivially_copyable_v<T>, "seqlock payload must be memcpy-safe");

 public:
  SeqLock() = default;
  explicit SeqLock(const T& initial) : value_(initial) {}

  /// Store a new value (single writer at a time).
  void store(const T& value) {
    const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_release); // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    std::memcpy(&value_, &value, sizeof(T));
    std::atomic_thread_fence(std::memory_order_release);
    seq_.store(seq + 2, std::memory_order_release); // even: stable
  }

  /// Read a consistent snapshot (retries while a write is in flight).
  T load() const {
    T out;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
    do {
      before = seq_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_acquire);
      std::memcpy(&out, &value_, sizeof(T));
      std::atomic_thread_fence(std::memory_order_acquire);
      after = seq_.load(std::memory_order_acquire);
    } while (before != after || (before & 1) != 0);
    return out;
  }

  /// Number of completed writes (even sequence / 2).
  std::uint64_t version() const { return seq_.load(std::memory_order_acquire) / 2; }

 private:
  std::atomic<std::uint64_t> seq_{0};
  T value_{};
};

} // namespace tsn::core
