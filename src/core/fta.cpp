#include "core/fta.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsn::core {

std::optional<double> fault_tolerant_average(std::vector<double> values, int f) {
  if (f < 0) throw std::invalid_argument("fta: f must be >= 0");
  const std::size_t n = values.size();
  if (n < static_cast<std::size_t>(2 * f + 1)) return std::nullopt;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  const std::size_t lo = static_cast<std::size_t>(f);
  const std::size_t hi = n - static_cast<std::size_t>(f);
  for (std::size_t i = lo; i < hi; ++i) sum += values[i];
  return sum / static_cast<double>(hi - lo);
}

std::optional<double> median(std::vector<double> values) {
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

std::optional<double> mean(const std::vector<double>& values) {
  if (values.empty()) return std::nullopt;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::optional<double> aggregate(std::vector<double> values, AggregationMethod method, int f) {
  switch (method) {
    case AggregationMethod::kFta: return fault_tolerant_average(std::move(values), f);
    case AggregationMethod::kMedian: return median(std::move(values));
    case AggregationMethod::kMean: return mean(values);
  }
  return std::nullopt;
}

double fta_precision_multiplier(int n, int f) {
  if (n <= 3 * f) throw std::invalid_argument("fta bound requires N > 3f");
  return static_cast<double>(n - 2 * f) / static_cast<double>(n - 3 * f);
}

} // namespace tsn::core
