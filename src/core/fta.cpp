#include "core/fta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsn::core {

namespace {

// One Neumaier step: accumulate x into (sum, comp). Branchless big/small
// selection compiles to cmp+blend; a data-random branch would mispredict
// half the time.
inline void neumaier_step(double& sum, double& comp, double x) {
  const double t = sum + x;
  const bool sum_bigger = std::abs(sum) >= std::abs(x);
  const double big = sum_bigger ? sum : x;
  const double small = sum_bigger ? x : sum;
  comp += (big - t) + small;
  sum = t;
}

// Neumaier-compensated sum as an unevaluated (sum, comp) pair, accumulated
// in four independent lanes so the loop is throughput- instead of
// latency-bound. The trimmed middle produced by nth_element is unordered,
// so a plain left-to-right sum would depend on the partition's internal
// order; compensation makes the result exact to the last ulp (error
// O(n·eps²)) and therefore permutation-invariant, like the fully-sorted
// implementation this replaced.
struct CompensatedSum {
  double sum = 0.0;
  double comp = 0.0;
  double collapse() const {
    // With infinities the compensation term is NaN; the plain sum already
    // carries the correct ±inf/NaN outcome.
    if (!std::isfinite(sum)) return sum;
    return sum + comp;
  }
};

CompensatedSum compensated_sum(const double* first, const double* last) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  double c[4] = {0.0, 0.0, 0.0, 0.0};
  const double* p = first;
  for (; last - p >= 4; p += 4) {
    neumaier_step(s[0], c[0], p[0]);
    neumaier_step(s[1], c[1], p[1]);
    neumaier_step(s[2], c[2], p[2]);
    neumaier_step(s[3], c[3], p[3]);
  }
  for (int k = 0; p != last; ++p, k = (k + 1) & 3) neumaier_step(s[k], c[k], *p);
  CompensatedSum out;
  for (int k = 0; k < 4; ++k) {
    neumaier_step(out.sum, out.comp, s[k]);
    out.comp += c[k];
  }
  return out;
}

} // namespace

std::optional<double> fault_tolerant_average(std::vector<double> values, int f) {
  if (f < 0) throw std::invalid_argument("fta: f must be >= 0");
  const std::size_t n = values.size();
  if (n < static_cast<std::size_t>(2 * f + 1)) return std::nullopt;
  // Trimming only needs partial selection, not a full sort: partition the
  // f smallest to the front, then the f largest of the remainder to the
  // back. O(n) instead of O(n log n); the kept middle stays unordered.
  const std::size_t lo = static_cast<std::size_t>(f);
  const std::size_t hi = n - static_cast<std::size_t>(f);
  if (f == 1) {
    // The paper's configuration: a branchless min/max scan (vectorizable)
    // plus "compensated total minus the extremes" beats even one
    // nth_element partition pass, and trimming one min and one max
    // occurrence yields the same kept multiset sum as the sorted trim.
    double mn = values[0];
    double mx = values[0];
    for (std::size_t i = 1; i < n; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    if (std::isfinite(mn) && std::isfinite(mx)) {
      CompensatedSum total = compensated_sum(values.data(), values.data() + n);
      neumaier_step(total.sum, total.comp, -mn);
      neumaier_step(total.sum, total.comp, -mx);
      return total.collapse() / static_cast<double>(n - 2);
    }
    // Infinite extremes would turn the subtraction into inf - inf; fall
    // through to the partition path, which trims them positionally.
  }
  if (f > 0) {
    std::nth_element(values.begin(), values.begin() + lo, values.end());
    std::nth_element(values.begin() + lo, values.begin() + hi - 1, values.end());
  }
  const double sum = compensated_sum(values.data() + lo, values.data() + hi).collapse();
  return sum / static_cast<double>(hi - lo);
}

std::optional<double> median(std::vector<double> values) {
  if (values.empty()) return std::nullopt;
  const std::size_t n = values.size();
  const auto mid = values.begin() + n / 2;
  std::nth_element(values.begin(), mid, values.end());
  if (n % 2 == 1) return *mid;
  // Even size: the lower central element is the max of the left partition.
  const double below = *std::max_element(values.begin(), mid);
  return (below + *mid) / 2.0;
}

std::optional<double> mean(const std::vector<double>& values) {
  if (values.empty()) return std::nullopt;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::optional<double> aggregate(std::vector<double> values, AggregationMethod method, int f) {
  switch (method) {
    case AggregationMethod::kFta: return fault_tolerant_average(std::move(values), f);
    case AggregationMethod::kMedian: return median(std::move(values));
    case AggregationMethod::kMean: return mean(values);
  }
  return std::nullopt;
}

double fta_precision_multiplier(int n, int f) {
  if (n <= 3 * f) throw std::invalid_argument("fta bound requires N > 3f");
  return static_cast<double>(n - 2 * f) / static_cast<double>(n - 3 * f);
}

} // namespace tsn::core
