// FTSHMEM: the user-space shared memory region between the M ptp4l
// instances of a clock synchronization VM (paper section II-B, Fig. 1).
//
// Contents, exactly as the paper lists them:
//   * the latest M grandmaster offsets
//   * an array of M booleans flagging GMs whose offset deviates from the
//     remaining GMs beyond a configurable threshold
//   * adjust_last, the timestamp of the most recent frequency adjustment
//     (it doubles as the aggregation gate: the first instance observing
//     adjust_last + sync_interval <= now performs the aggregation)
//   * the PI controller state shared by the instances
//
// All fields use lock-free primitives with the concurrency semantics a
// process-shared memory region would need; the suite exercises them with
// real threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>

#include "core/seqlock.hpp"

namespace tsn::sim {
class StateWriter;
class StateReader;
} // namespace tsn::sim

namespace tsn::core {

inline constexpr std::size_t kMaxDomains = 8;

/// One GM offset slot (written by that domain's ptp4l instance).
struct GmOffsetRecord {
  double offset_ns = 0.0;
  std::int64_t local_rx_ts = 0; ///< PHC time the Sync was received
  double rate_ratio = 1.0;
  std::uint32_t sample_count = 0; ///< monotonically increasing per slot
};

enum class SyncPhase : std::uint8_t {
  kStartup = 0, ///< slaving every node to the initial domain's GM
  kFta = 1,     ///< fault-tolerant multi-domain aggregation active
};

class FtShmem {
 public:
  explicit FtShmem(std::size_t num_domains);

  FtShmem(const FtShmem&) = delete;
  FtShmem& operator=(const FtShmem&) = delete;

  std::size_t num_domains() const { return num_domains_; }

  /// Store the newest offset for domain slot `idx`; bumps sample_count.
  void store_offset(std::size_t idx, const GmOffsetRecord& record);

  /// Snapshot of slot `idx`; nullopt until the first store.
  std::optional<GmOffsetRecord> load_offset(std::size_t idx) const;

  /// The aggregation gate. Atomically checks `adjust_last + interval <=
  /// now` and, if so, advances adjust_last to `now`; returns whether this
  /// caller won the gate (paper eq. 2.1).
  bool try_acquire_gate(std::int64_t now, std::int64_t interval_ns);

  std::int64_t adjust_last() const { return adjust_last_.load(std::memory_order_acquire); }
  /// Reset the gate, e.g. when a standby VM takes over mid-interval.
  void set_adjust_last(std::int64_t t) { adjust_last_.store(t, std::memory_order_release); }

  /// GM validity flags maintained by the aggregating instance.
  void set_gm_valid(std::size_t idx, bool valid);
  bool gm_valid(std::size_t idx) const;

  /// Shared PI controller state.
  void store_servo_integral(double ppb) { servo_integral_.store(ppb, std::memory_order_release); }
  double servo_integral() const { return servo_integral_.load(std::memory_order_acquire); }

  SyncPhase phase() const { return static_cast<SyncPhase>(phase_.load(std::memory_order_acquire)); }
  void set_phase(SyncPhase p) { phase_.store(static_cast<std::uint8_t>(p), std::memory_order_release); }

  std::uint64_t aggregations_performed() const {
    return aggregations_.load(std::memory_order_acquire);
  }
  void count_aggregation() { aggregations_.fetch_add(1, std::memory_order_acq_rel); }

  // -- Snapshot / fast-forward support -------------------------------------
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);
  /// Fast-forward: shift the gate stamp and the rx stamps of slots that
  /// were *fresh at window entry* (`entry_now_ns`, same timebase as
  /// local_rx_ts -- the owning VM's PHC) by `shift_ns`. Stale slots keep
  /// their old stamps, so a down GM's slot stays classified stale after
  /// the jump instead of briefly looking fresh-but-ancient.
  void ff_shift(std::int64_t shift_ns, std::int64_t entry_now_ns,
                std::int64_t freshness_ns);

 private:
  std::size_t num_domains_;
  std::array<SeqLock<GmOffsetRecord>, kMaxDomains> offsets_;
  std::array<std::atomic<std::uint32_t>, kMaxDomains> sample_counts_;
  std::array<std::atomic<bool>, kMaxDomains> valid_;
  std::atomic<std::int64_t> adjust_last_{INT64_MIN};
  std::atomic<double> servo_integral_{0.0};
  std::atomic<std::uint8_t> phase_{0};
  std::atomic<std::uint64_t> aggregations_{0};
};

} // namespace tsn::core
