#include "core/coordinator.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/persist.hpp"
#include "util/log.hpp"

namespace tsn::core {

MultiDomainCoordinator::MultiDomainCoordinator(sim::Simulation& sim, time::PhcClock& phc,
                                               FtShmem& shmem, const CoordinatorConfig& cfg,
                                               const std::string& name, obs::ObsContext obs)
    : sim_(sim), phc_(phc), shmem_(shmem), cfg_(cfg), name_(name), servo_(cfg.servo) {
  if (cfg_.domains.empty() || cfg_.domains.size() != shmem.num_domains()) {
    throw std::invalid_argument("coordinator: domain list must match FTSHMEM size");
  }
  for (std::size_t i = 0; i < cfg_.domains.size(); ++i) {
    slot_map_[cfg_.domains[i]] = i;
  }
  if (slot_map_.size() != cfg_.domains.size()) {
    throw std::invalid_argument("coordinator: duplicate domain numbers");
  }
  if (slot_map_.count(cfg_.initial_domain) == 0) {
    throw std::invalid_argument("coordinator: initial domain not in domain list");
  }
  last_validity_.assign(cfg_.domains.size(), true);
  bind_metrics(obs);
  // Warm start: inherit the shared servo state left in FTSHMEM.
  servo_.set_integral_ppb(shmem_.servo_integral());
  if (cfg_.skip_startup) {
    shmem_.set_phase(SyncPhase::kFta);
  }
}

void MultiDomainCoordinator::bind_metrics(obs::ObsContext obs) {
  obs::MetricsRegistry* reg = obs.metrics;
  if (!reg) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    reg = own_metrics_.get();
  }
  const std::string p = name_ + ".";
  c_samples_stored_ = &reg->counter(p + "samples_stored");
  c_aggregations_ = &reg->counter(p + "aggregations");
  c_skipped_no_quorum_ = &reg->counter(p + "aggregation_skipped_no_quorum");
  c_startup_adjustments_ = &reg->counter(p + "startup_adjustments");
  c_excluded_stale_ = &reg->counter(p + "gms_excluded_stale");
  c_excluded_disagreeing_ = &reg->counter(p + "gms_excluded_disagreeing");
  c_clock_steps_ = &reg->counter(p + "clock_steps");
  trace_ = obs.trace;
  if (trace_) trace_src_ = trace_->intern(name_);
  servo_.attach_obs(obs::ObsContext{reg, obs.trace}, name_ + ".servo");
}

void MultiDomainCoordinator::trace(obs::TraceKind kind, std::uint32_t a, std::uint32_t mask,
                                   std::int64_t v0, std::int64_t v1) const {
  if (!trace_) return;
  obs::TraceRecord rec;
  rec.t_ns = phc_.read();
  rec.kind = kind;
  rec.source = trace_src_;
  rec.a = a;
  rec.mask = mask;
  rec.v0 = v0;
  rec.v1 = v1;
  trace_->push(rec);
}

CoordinatorStats MultiDomainCoordinator::stats() const {
  CoordinatorStats s;
  s.samples_stored = c_samples_stored_->value();
  s.aggregations = c_aggregations_->value();
  s.aggregation_skipped_no_quorum = c_skipped_no_quorum_->value();
  s.startup_adjustments = c_startup_adjustments_->value();
  s.gms_excluded_stale = c_excluded_stale_->value();
  s.gms_excluded_disagreeing = c_excluded_disagreeing_->value();
  s.clock_steps = c_clock_steps_->value();
  return s;
}

std::size_t MultiDomainCoordinator::slot_of(std::uint8_t domain) const {
  return slot_map_.at(domain);
}

void MultiDomainCoordinator::on_offset(const gptp::MasterOffsetSample& sample) {
  const auto it = slot_map_.find(sample.domain);
  if (it == slot_map_.end()) return; // domain we do not aggregate
  const std::size_t slot = it->second;

  GmOffsetRecord record;
  record.offset_ns = sample.offset_ns;
  record.local_rx_ts = sample.local_rx_ts;
  record.rate_ratio = sample.rate_ratio;
  shmem_.store_offset(slot, record);
  c_samples_stored_->inc();

  if (shmem_.phase() == SyncPhase::kStartup) {
    startup_step(slot, sample);
  } else {
    fta_step(sample);
  }
}

void MultiDomainCoordinator::apply_servo(double offset_ns, std::int64_t local_ts) {
  const auto res = servo_.sample(static_cast<std::int64_t>(std::llround(offset_ns)), local_ts);
  switch (res.state) {
    case gptp::PiServo::State::kUnlocked:
      break;
    case gptp::PiServo::State::kJump:
      phc_.step(-static_cast<std::int64_t>(std::llround(offset_ns)));
      phc_.adj_frequency(res.freq_ppb);
      c_clock_steps_->inc();
      break;
    case gptp::PiServo::State::kLocked:
      phc_.adj_frequency(res.freq_ppb);
      break;
  }
  shmem_.store_servo_integral(servo_.integral_ppb());
}

void MultiDomainCoordinator::startup_step(std::size_t slot,
                                          const gptp::MasterOffsetSample& sample) {
  // During startup only the initial domain disciplines the clock.
  if (sample.domain != cfg_.initial_domain) return;
  apply_servo(sample.offset_ns, sample.local_rx_ts);
  c_startup_adjustments_->inc();

  // Leave startup once every domain's offset is fresh and small, for
  // startup_consecutive initial-domain intervals in a row.
  const std::int64_t now = phc_.read();
  bool all_small = true;
  for (std::size_t i = 0; i < shmem_.num_domains(); ++i) {
    const auto rec = shmem_.load_offset(i);
    if (!rec || (now - rec->local_rx_ts) > cfg_.validity.freshness_window_ns ||
        std::abs(rec->offset_ns) > cfg_.startup_threshold_ns) {
      all_small = false;
      break;
    }
  }
  startup_ok_streak_ = all_small ? startup_ok_streak_ + 1 : 0;
  if (startup_ok_streak_ >= cfg_.startup_consecutive) {
    enter_fta_phase();
  }
}

void MultiDomainCoordinator::enter_fta_phase() {
  shmem_.set_phase(SyncPhase::kFta);
  shmem_.set_adjust_last(phc_.read());
  TSN_LOG_INFO("fta", "%s: entering FTA phase", name_.c_str());
  trace(obs::TraceKind::kPhaseChange, static_cast<std::uint32_t>(SyncPhase::kFta), 0, 0, 0);
  if (on_phase_change) on_phase_change(SyncPhase::kFta);
}

void MultiDomainCoordinator::save_state(sim::StateWriter& w) const {
  servo_.save_state(w);
  w.i64(startup_ok_streak_);
  w.u64(last_validity_.size());
  for (const bool v : last_validity_) w.b(v);
  // Counters live in the metrics registry, which is observational and
  // deliberately outside snapshot state.
}

void MultiDomainCoordinator::load_state(sim::StateReader& r) {
  servo_.load_state(r);
  startup_ok_streak_ = static_cast<int>(r.i64());
  const std::uint64_t n = r.u64();
  last_validity_.assign(n, false);
  for (std::uint64_t i = 0; i < n; ++i) last_validity_[i] = r.b();
}

void MultiDomainCoordinator::fta_step(const gptp::MasterOffsetSample& sample) {
  const std::int64_t now = phc_.read();
  if (!shmem_.try_acquire_gate(now, cfg_.sync_interval_ns)) return;
  trace(obs::TraceKind::kGateAcquire, static_cast<std::uint32_t>(sample.domain), 0, now, 0);

  // This instance won the gate: aggregate all stored offsets.
  std::vector<std::optional<GmOffsetRecord>> slots;
  slots.reserve(shmem_.num_domains());
  for (std::size_t i = 0; i < shmem_.num_domains(); ++i) {
    slots.push_back(shmem_.load_offset(i));
  }
  const auto verdicts = evaluate_validity(slots, now, cfg_.validity);

  std::vector<double> usable;
  std::uint32_t valid_mask = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const bool valid = verdicts[i].usable();
    if (valid) {
      usable.push_back(slots[i]->offset_ns);
      if (i < 32) valid_mask |= (1u << i);
    } else if (!verdicts[i].fresh) {
      c_excluded_stale_->inc();
    } else {
      c_excluded_disagreeing_->inc();
    }
    shmem_.set_gm_valid(i, valid);
    if (valid != last_validity_[i]) {
      last_validity_[i] = valid;
      if (on_validity_change) on_validity_change(i, valid);
    }
  }

  const auto aggregated = aggregate(usable, cfg_.method, cfg_.fta_f);
  if (!aggregated) {
    // Too few usable clocks: hold the current frequency (free-run) rather
    // than following a possibly-faulty minority.
    c_skipped_no_quorum_->inc();
    trace(obs::TraceKind::kNoQuorum, static_cast<std::uint32_t>(usable.size()), valid_mask, 0,
          0);
    return;
  }

  apply_servo(*aggregated, sample.local_rx_ts);
  c_aggregations_->inc();
  trace(obs::TraceKind::kAggregate, static_cast<std::uint32_t>(usable.size()), valid_mask,
        static_cast<std::int64_t>(std::llround(*aggregated)), 0);
  shmem_.count_aggregation();
  if (on_aggregate) on_aggregate(*aggregated, static_cast<int>(usable.size()));
}

} // namespace tsn::core
