#include "core/ft_shmem.hpp"

#include <stdexcept>

#include "sim/persist.hpp"

namespace tsn::core {

FtShmem::FtShmem(std::size_t num_domains) : num_domains_(num_domains) {
  if (num_domains == 0 || num_domains > kMaxDomains) {
    throw std::invalid_argument("FtShmem: unsupported domain count");
  }
  for (std::size_t i = 0; i < kMaxDomains; ++i) {
    sample_counts_[i].store(0, std::memory_order_relaxed);
    valid_[i].store(true, std::memory_order_relaxed);
  }
}

void FtShmem::store_offset(std::size_t idx, const GmOffsetRecord& record) {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  GmOffsetRecord r = record;
  r.sample_count = sample_counts_[idx].fetch_add(1, std::memory_order_acq_rel) + 1;
  offsets_[idx].store(r);
}

std::optional<GmOffsetRecord> FtShmem::load_offset(std::size_t idx) const {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  if (sample_counts_[idx].load(std::memory_order_acquire) == 0) return std::nullopt;
  return offsets_[idx].load();
}

bool FtShmem::try_acquire_gate(std::int64_t now, std::int64_t interval_ns) {
  std::int64_t last = adjust_last_.load(std::memory_order_acquire);
  while (last == INT64_MIN || last + interval_ns <= now) {
    if (adjust_last_.compare_exchange_weak(last, now, std::memory_order_acq_rel)) {
      return true;
    }
    // `last` reloaded by compare_exchange; re-check the gate condition.
  }
  return false;
}

void FtShmem::set_gm_valid(std::size_t idx, bool valid) {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  valid_[idx].store(valid, std::memory_order_release);
}

bool FtShmem::gm_valid(std::size_t idx) const {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  return valid_[idx].load(std::memory_order_acquire);
}

void FtShmem::save_state(sim::StateWriter& w) const {
  for (std::size_t i = 0; i < num_domains_; ++i) {
    const std::uint32_t count = sample_counts_[i].load(std::memory_order_acquire);
    w.u32(count);
    const GmOffsetRecord rec = count ? offsets_[i].load() : GmOffsetRecord{};
    w.f64(rec.offset_ns);
    w.i64(rec.local_rx_ts);
    w.f64(rec.rate_ratio);
    w.u32(rec.sample_count);
    w.b(valid_[i].load(std::memory_order_acquire));
  }
  w.i64(adjust_last_.load(std::memory_order_acquire));
  w.f64(servo_integral_.load(std::memory_order_acquire));
  w.u8(phase_.load(std::memory_order_acquire));
  w.u64(aggregations_.load(std::memory_order_acquire));
}

void FtShmem::load_state(sim::StateReader& r) {
  for (std::size_t i = 0; i < num_domains_; ++i) {
    sample_counts_[i].store(r.u32(), std::memory_order_release);
    GmOffsetRecord rec;
    rec.offset_ns = r.f64();
    rec.local_rx_ts = r.i64();
    rec.rate_ratio = r.f64();
    rec.sample_count = r.u32();
    offsets_[i].store(rec);
    valid_[i].store(r.b(), std::memory_order_release);
  }
  adjust_last_.store(r.i64(), std::memory_order_release);
  servo_integral_.store(r.f64(), std::memory_order_release);
  phase_.store(r.u8(), std::memory_order_release);
  aggregations_.store(r.u64(), std::memory_order_release);
}

void FtShmem::ff_shift(std::int64_t shift_ns, std::int64_t entry_now_ns,
                       std::int64_t freshness_ns) {
  for (std::size_t i = 0; i < num_domains_; ++i) {
    if (sample_counts_[i].load(std::memory_order_acquire) == 0) continue;
    GmOffsetRecord rec = offsets_[i].load();
    if (entry_now_ns - rec.local_rx_ts <= freshness_ns) {
      rec.local_rx_ts += shift_ns;
      offsets_[i].store(rec);
    }
  }
  const std::int64_t last = adjust_last_.load(std::memory_order_acquire);
  if (last != INT64_MIN) {
    adjust_last_.store(last + shift_ns, std::memory_order_release);
  }
}

} // namespace tsn::core
