#include "core/ft_shmem.hpp"

#include <stdexcept>

namespace tsn::core {

FtShmem::FtShmem(std::size_t num_domains) : num_domains_(num_domains) {
  if (num_domains == 0 || num_domains > kMaxDomains) {
    throw std::invalid_argument("FtShmem: unsupported domain count");
  }
  for (std::size_t i = 0; i < kMaxDomains; ++i) {
    sample_counts_[i].store(0, std::memory_order_relaxed);
    valid_[i].store(true, std::memory_order_relaxed);
  }
}

void FtShmem::store_offset(std::size_t idx, const GmOffsetRecord& record) {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  GmOffsetRecord r = record;
  r.sample_count = sample_counts_[idx].fetch_add(1, std::memory_order_acq_rel) + 1;
  offsets_[idx].store(r);
}

std::optional<GmOffsetRecord> FtShmem::load_offset(std::size_t idx) const {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  if (sample_counts_[idx].load(std::memory_order_acquire) == 0) return std::nullopt;
  return offsets_[idx].load();
}

bool FtShmem::try_acquire_gate(std::int64_t now, std::int64_t interval_ns) {
  std::int64_t last = adjust_last_.load(std::memory_order_acquire);
  while (last == INT64_MIN || last + interval_ns <= now) {
    if (adjust_last_.compare_exchange_weak(last, now, std::memory_order_acq_rel)) {
      return true;
    }
    // `last` reloaded by compare_exchange; re-check the gate condition.
  }
  return false;
}

void FtShmem::set_gm_valid(std::size_t idx, bool valid) {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  valid_[idx].store(valid, std::memory_order_release);
}

bool FtShmem::gm_valid(std::size_t idx) const {
  if (idx >= num_domains_) throw std::out_of_range("FtShmem: bad domain index");
  return valid_[idx].load(std::memory_order_acquire);
}

} // namespace tsn::core
