// MultiDomainCoordinator: the paper's extension of ptp4l.
//
// The M ptp4l instances of a clock synchronization VM each deliver their
// grandmaster offset here. The coordinator stores it into FTSHMEM and then
// executes the paper's aggregation protocol:
//
//   * Startup phase: all nodes slave to the initial domain's GM until every
//     domain's GM offset stays below a configurable threshold (the paper
//     assumes a fault-free initial synchronization, citing [17], [18]).
//   * FTA phase: the first instance whose gate check
//     adjust_last + sync_interval <= now succeeds sorts the M stored
//     offsets, drops stale/disagreeing GMs (validity flags), computes the
//     fault-tolerant average and passes it to the single shared PI servo,
//     which programs the NIC PHC's frequency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ft_shmem.hpp"
#include "core/fta.hpp"
#include "core/validity.hpp"
#include "gptp/instance.hpp"
#include "gptp/servo.hpp"
#include "obs/obs.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"

namespace tsn::core {

struct CoordinatorConfig {
  /// gPTP domain numbers in slot order (slot i holds domains[i]).
  std::vector<std::uint8_t> domains;
  /// Tolerated Byzantine faults for the FTA.
  int fta_f = 1;
  std::int64_t sync_interval_ns = 125'000'000;
  AggregationMethod method = AggregationMethod::kFta;

  /// Startup: domain whose GM everyone initially slaves to.
  std::uint8_t initial_domain = 1;
  /// Offsets must stay below this to leave the startup phase...
  double startup_threshold_ns = 2'000.0;
  /// ...for this many consecutive initial-domain sync intervals.
  int startup_consecutive = 8;
  /// Start directly in FTA phase (warm standby taking over, tests).
  bool skip_startup = false;

  ValidityConfig validity;
  gptp::PiServoConfig servo;
};

/// Snapshot of the coordinator's registry-backed counters; kept as a
/// plain struct so existing `stats().field` call sites read unchanged.
struct CoordinatorStats {
  std::uint64_t samples_stored = 0;
  std::uint64_t aggregations = 0;
  std::uint64_t aggregation_skipped_no_quorum = 0;
  std::uint64_t startup_adjustments = 0;
  std::uint64_t gms_excluded_stale = 0;
  std::uint64_t gms_excluded_disagreeing = 0;
  std::uint64_t clock_steps = 0;
};

class MultiDomainCoordinator {
 public:
  MultiDomainCoordinator(sim::Simulation& sim, time::PhcClock& phc, FtShmem& shmem,
                         const CoordinatorConfig& cfg, const std::string& name,
                         obs::ObsContext obs = {});

  MultiDomainCoordinator(const MultiDomainCoordinator&) = delete;
  MultiDomainCoordinator& operator=(const MultiDomainCoordinator&) = delete;

  /// Entry point wired to each PtpInstance's offset callback.
  void on_offset(const gptp::MasterOffsetSample& sample);

  SyncPhase phase() const { return shmem_.phase(); }
  /// Shared-servo discipline state (ff quiescence checks want kLocked).
  gptp::PiServo::State servo_state() const { return servo_.state(); }

  // -- Snapshot support (callback-driven: no standing events) --------------
  void save_state(sim::StateWriter& w) const;
  void load_state(sim::StateReader& r);
  /// Reads the live counters into a plain struct (by value: the backing
  /// store is the metrics registry, not a member struct).
  CoordinatorStats stats() const;
  FtShmem& shmem() { return shmem_; }

  /// Fired when the coordinator leaves the startup phase.
  std::function<void(SyncPhase)> on_phase_change;
  /// Fired after each FTA aggregation: (aggregated offset, clocks used).
  std::function<void(double offset_ns, int clocks_used)> on_aggregate;
  /// Fired when a GM's validity flag flips: (slot index, now valid).
  std::function<void(std::size_t, bool)> on_validity_change;

 private:
  std::size_t slot_of(std::uint8_t domain) const;
  void startup_step(std::size_t slot, const gptp::MasterOffsetSample& sample);
  void fta_step(const gptp::MasterOffsetSample& sample);
  void apply_servo(double offset_ns, std::int64_t local_ts);
  void enter_fta_phase();
  void bind_metrics(obs::ObsContext obs);
  void trace(obs::TraceKind kind, std::uint32_t a, std::uint32_t mask,
             std::int64_t v0, std::int64_t v1) const;

  sim::Simulation& sim_;
  time::PhcClock& phc_;
  FtShmem& shmem_;
  CoordinatorConfig cfg_;
  std::string name_;
  std::map<std::uint8_t, std::size_t> slot_map_;
  gptp::PiServo servo_;
  int startup_ok_streak_ = 0;
  std::vector<bool> last_validity_;

  /// Owned fallback so stats() works when no shared registry is wired in
  /// (unit tests construct coordinators bare).
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::Counter* c_samples_stored_ = nullptr;
  obs::Counter* c_aggregations_ = nullptr;
  obs::Counter* c_skipped_no_quorum_ = nullptr;
  obs::Counter* c_startup_adjustments_ = nullptr;
  obs::Counter* c_excluded_stale_ = nullptr;
  obs::Counter* c_excluded_disagreeing_ = nullptr;
  obs::Counter* c_clock_steps_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  std::uint16_t trace_src_ = 0;
};

} // namespace tsn::core
