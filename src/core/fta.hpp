// Fault-tolerant average and related aggregation functions.
//
// The FTA (Kopetz & Ochsenreiter 1987, used by the paper for multi-domain
// aggregation) discards the f smallest and f largest clock readings and
// averages the remainder. With N >= 3f+1 readings it masks up to f
// arbitrary (Byzantine) faults; the paper instantiates N = 4, f = 1.
// Only partial selection (std::nth_element) is needed for the trim, so
// aggregation is O(N) rather than O(N log N).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tsn::core {

enum class AggregationMethod {
  kFta,    ///< drop f min + f max, average the rest (the paper's choice)
  kMedian, ///< middle element (ablation)
  kMean,   ///< plain average, no fault tolerance (ablation/baseline)
};

/// Fault-tolerant average of `values` tolerating `f` faults. Returns
/// nullopt when fewer than 2f+1 values are present (the trimmed set would
/// be empty or meaningless).
std::optional<double> fault_tolerant_average(std::vector<double> values, int f);

/// Exact median (average of the two central elements for even sizes).
std::optional<double> median(std::vector<double> values);

/// Plain mean.
std::optional<double> mean(const std::vector<double>& values);

/// Dispatch on the configured method ("f" only used by kFta).
std::optional<double> aggregate(std::vector<double> values, AggregationMethod method, int f);

/// Precision bound multiplier u(N, f) = (N - 2f) / (N - 3f) from Kopetz &
/// Ochsenreiter; the paper uses u(4, 1) = 2 in Pi = u * (E + Gamma).
double fta_precision_multiplier(int n, int f);

} // namespace tsn::core
