// GM validity voting.
//
// The paper keeps, in FTSHMEM, "an array of M booleans indicating whether
// the corresponding GM clock's offset from the remaining GM clocks is
// within a configurable threshold". A GM is also unusable when its offset
// is stale (fail-silent GM: Syncs stopped arriving).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/ft_shmem.hpp"

namespace tsn::core {

struct ValidityConfig {
  /// Max |offset_i - offset_j| against the median of the other GMs for GM i
  /// to count as agreeing.
  double agreement_threshold_ns = 30'000.0;
  /// Offsets older than this (vs. the local clock `now`) are stale.
  std::int64_t freshness_window_ns = 500'000'000;
};

struct GmVerdict {
  bool fresh = false;
  bool agrees = false;
  bool usable() const { return fresh && agrees; }
};

/// Evaluate all slots at local time `now`. Slots that never produced a
/// sample are not fresh. Agreement: |offset_i - median(other fresh
/// offsets)| <= threshold; with fewer than 2 fresh peers agreement
/// defaults to true (no quorum to vote a GM out).
std::vector<GmVerdict> evaluate_validity(const std::vector<std::optional<GmOffsetRecord>>& slots,
                                         std::int64_t now, const ValidityConfig& cfg);

} // namespace tsn::core
