#include "experiments/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::experiments {
namespace {

constexpr std::uint16_t kMeasurementVlan = 100;

/// Diverse kernels for the redundant VMs (not attack targets).
const char* redundant_kernel(std::size_t ecd_idx) {
  static const char* kVersions[] = {"5.4.0", "5.10.0", "5.15.0", "6.1.0"};
  return kVersions[ecd_idx % 4];
}

} // namespace

Scenario::Scenario(const ScenarioConfig& cfg)
    : cfg_(cfg), sim_(cfg.seed), pool_base_(net::FramePool::local().stats()) {
  if (cfg_.num_ecds < 2 || cfg_.gm_kernels.size() < cfg_.num_ecds) {
    throw std::invalid_argument("Scenario: need >= 2 ECDs and a kernel per GM");
  }
  build_ecds();
  build_network();
  build_bridges();
  configure_measurement_vlan();
  configure_data_fdb();
  build_probe();
}

std::size_t Scenario::mesh_port(std::size_t x, std::size_t y) const {
  // Ports 2..(num_ecds) of sw_x face the other switches in ascending order.
  std::size_t rank = 0;
  for (std::size_t peer = 0; peer < cfg_.num_ecds; ++peer) {
    if (peer == x) continue;
    if (peer == y) return 2 + rank;
    ++rank;
  }
  throw std::invalid_argument("mesh_port: x == y");
}

void Scenario::build_ecds() {
  time::PhcModel nic_phc;
  nic_phc.oscillator.max_drift_ppm = cfg_.max_drift_ppm;
  nic_phc.oscillator.wander_sigma_ppm = cfg_.wander_sigma_ppm;
  nic_phc.timestamp_jitter_ns = cfg_.nic_ts_jitter_ns;

  time::PhcModel tsc_model;
  tsc_model.oscillator.max_drift_ppm = 30.0; // TSCs are worse than TCXOs
  tsc_model.oscillator.wander_sigma_ppm = cfg_.wander_sigma_ppm;
  tsc_model.timestamp_jitter_ns = 0.0;

  util::RngStream phase_rng = sim_.make_rng("initial-phase");

  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    hv::EcdConfig ecfg;
    ecfg.name = util::format("ecd%zu", x + 1);
    ecfg.tsc = tsc_model;
    ecds_.push_back(std::make_unique<hv::Ecd>(sim_, ecfg, obs_.context()));

    for (std::size_t i = 0; i < 2; ++i) {
      hv::ClockSyncVmConfig vcfg;
      vcfg.name = util::format("c%zu%zu", x + 1, i + 1);
      vcfg.mac = net::MacAddress::from_u64(0x020000000000ULL | ((x + 1) << 8) | (i + 1));
      vcfg.phc = nic_phc;
      for (std::size_t d = 0; d < cfg_.num_ecds; ++d) {
        vcfg.domains.push_back(static_cast<std::uint8_t>(d + 1));
      }
      if (i == 0) {
        vcfg.gm_domain = static_cast<std::uint8_t>(x + 1);
        vcfg.kernel_version = cfg_.gm_kernels[x];
        vcfg.aggregate = cfg_.gm_mutual_sync; // baseline: GMs free-run
      } else {
        vcfg.kernel_version = redundant_kernel(x);
        // Baseline clients have no startup phase to lean on.
        vcfg.coordinator.skip_startup = !cfg_.gm_mutual_sync;
      }
      vcfg.coordinator.fta_f = cfg_.fta_f;
      vcfg.coordinator.sync_interval_ns = cfg_.sync_interval_ns;
      vcfg.coordinator.method = cfg_.aggregation;
      vcfg.coordinator.initial_domain = 1;
      vcfg.coordinator.startup_threshold_ns = cfg_.startup_threshold_ns;
      vcfg.coordinator.startup_consecutive = cfg_.startup_consecutive;
      vcfg.coordinator.validity.agreement_threshold_ns = cfg_.validity_threshold_ns;
      vcfg.coordinator.validity.freshness_window_ns = 4 * cfg_.sync_interval_ns;
      vcfg.instance.sync_interval_ns = cfg_.sync_interval_ns;
      vcfg.synctime.period_ns = cfg_.synctime_period_ns;
      vcfg.synctime.mode = cfg_.synctime_feed_forward ? hv::SyncTimeMode::kFeedForward
                                                       : hv::SyncTimeMode::kPiFeedback;

      auto& vm = ecds_.back()->add_clock_sync_vm(vcfg);
      // Random initial phase: the paper assumes a fault-free initial
      // synchronization; the startup phase has to earn it here.
      vm.nic().phc().step(static_cast<std::int64_t>(
          phase_rng.uniform(-cfg_.initial_phase_range_ns, cfg_.initial_phase_range_ns)));
    }
  }
}

void Scenario::build_network() {
  net::SwitchConfig scfg;
  // Ports 0-1 host the two VMs; 2..N mesh to the other switches. The
  // paper's 4-ECD testbed uses the integrated 6-port switch; larger
  // fuzzed topologies (up to N=7 for f=2) need num_ecds+1 ports.
  scfg.port_count = std::max<std::size_t>(6, cfg_.num_ecds + 1);
  scfg.residence_base_ns = cfg_.switch_residence_ns;
  scfg.residence_jitter_ns = cfg_.switch_residence_jitter_ns;
  scfg.drop_unknown_unicast = true; // the mesh has loops: no flooding
  scfg.phc.oscillator.max_drift_ppm = cfg_.max_drift_ppm;
  scfg.phc.oscillator.wander_sigma_ppm = cfg_.wander_sigma_ppm;
  scfg.phc.timestamp_jitter_ns = cfg_.nic_ts_jitter_ns;

  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    switches_.push_back(std::make_unique<net::Switch>(sim_, scfg, util::format("sw%zu", x + 1)));
  }

  net::LinkConfig host_link;
  host_link.a_to_b = {cfg_.host_link_delay_ns, cfg_.host_link_jitter_ns};
  host_link.b_to_a = {cfg_.host_link_delay_ns, cfg_.host_link_jitter_ns};

  // Host links: VM i of ECD x <-> sw_x port i.
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t i = 0; i < 2; ++i) {
      links_.push_back(std::make_unique<net::Link>(
          sim_, vm(x, i).nic().port(), switches_[x]->port(i), host_link,
          util::format("c%zu%zu-sw%zu", x + 1, i + 1, x + 1)));
    }
  }

  // Full mesh between switches (slight per-link base asymmetry emulates
  // cable-length variation and feeds the reading error E).
  util::RngStream asym_rng = sim_.make_rng("link-asymmetry");
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t y = x + 1; y < cfg_.num_ecds; ++y) {
      net::LinkConfig mesh;
      const auto base = cfg_.mesh_link_delay_ns;
      mesh.a_to_b = {base + asym_rng.uniform_int(-100, 100), cfg_.mesh_link_jitter_ns};
      mesh.b_to_a = {base + asym_rng.uniform_int(-100, 100), cfg_.mesh_link_jitter_ns};
      links_.push_back(std::make_unique<net::Link>(
          sim_, switches_[x]->port(mesh_port(x, y)), switches_[y]->port(mesh_port(y, x)), mesh,
          util::format("sw%zu-sw%zu", x + 1, y + 1)));
    }
  }
}

void Scenario::build_bridges() {
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    gptp::BridgeConfig bcfg;
    for (std::size_t e = 0; e < cfg_.num_ecds; ++e) {
      gptp::BridgeDomainConfig dom;
      dom.domain = static_cast<std::uint8_t>(e + 1);
      if (x == e) {
        // This switch hosts the domain's GM on port 0.
        dom.slave_port = 0;
        dom.master_ports.insert(1);
        for (std::size_t y = 0; y < cfg_.num_ecds; ++y) {
          if (y != x) dom.master_ports.insert(mesh_port(x, y));
        }
      } else {
        // Tree: directly toward the GM's switch; other mesh ports passive.
        dom.slave_port = mesh_port(x, e);
        dom.master_ports = {0, 1};
      }
      bcfg.domains.push_back(dom);
    }
    bridges_.push_back(std::make_unique<gptp::TimeAwareBridge>(sim_, *switches_[x], bcfg,
                                                               util::format("br%zu", x + 1)));
  }
}

void Scenario::configure_measurement_vlan() {
  const std::size_t m = cfg_.measurement_ecd;
  const net::MacAddress group = measure::measurement_group();
  // Root: the measurement ECD's switch fans out over its mesh ports.
  switches_[m]->add_vlan_member(kMeasurementVlan, 1); // sender's host port
  for (std::size_t y = 0; y < cfg_.num_ecds; ++y) {
    if (y == m) continue;
    const std::size_t p = mesh_port(m, y);
    switches_[m]->add_vlan_member(kMeasurementVlan, p);
    switches_[m]->add_fdb_entry(kMeasurementVlan, group, p);
    // Leaves: toward-root port plus both host ports.
    switches_[y]->add_vlan_member(kMeasurementVlan, mesh_port(y, m));
    switches_[y]->add_vlan_member(kMeasurementVlan, 0);
    switches_[y]->add_vlan_member(kMeasurementVlan, 1);
    switches_[y]->add_fdb_entry(kMeasurementVlan, group, 0);
    switches_[y]->add_fdb_entry(kMeasurementVlan, group, 1);
  }
}

void Scenario::configure_data_fdb() {
  // Static unicast forwarding for every VM MAC on the default VLAN:
  // direct mesh hop towards the destination ECD, host port locally.
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t y = 0; y < cfg_.num_ecds; ++y) {
      for (std::size_t i = 0; i < 2; ++i) {
        const net::MacAddress mac = vm(y, i).nic().mac();
        const std::size_t port = (y == x) ? i : mesh_port(x, y);
        switches_[x]->add_fdb_entry(0, mac, port);
      }
    }
  }
}

void Scenario::build_probe() {
  const std::size_t m = cfg_.measurement_ecd;
  probe_ = std::make_unique<measure::PrecisionProbe>(sim_, measurement_vm().nic(), cfg_.probe,
                                                     "probe");
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    if (x == m) continue; // excludes c^m_1 (asymmetric path) and the sender
    for (std::size_t i = 0; i < 2; ++i) {
      probe_->add_receiver({vm(x, i).name(), &vm(x, i).nic(), &vm(x, i), ecds_[x].get()});
    }
  }

  path_meter_ = std::make_unique<measure::PathDelayMeter>(sim_, 0, "path-meter");
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t i = 0; i < 2; ++i) {
      path_meter_->add_node(vm(x, i).name(), &vm(x, i).nic());
    }
  }
}

std::vector<std::string> Scenario::probe_destinations() const {
  std::vector<std::string> out;
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    if (x == cfg_.measurement_ecd) continue;
    for (std::size_t i = 0; i < 2; ++i) {
      out.push_back(util::format("c%zu%zu", x + 1, i + 1));
    }
  }
  return out;
}

std::string Scenario::measurement_vm_name() const {
  return util::format("c%zu2", cfg_.measurement_ecd + 1);
}

std::vector<hv::Ecd*> Scenario::ecd_ptrs() {
  std::vector<hv::Ecd*> out;
  for (auto& e : ecds_) out.push_back(e.get());
  return out;
}

void Scenario::start() {
  for (auto& ecd : ecds_) ecd->start();
  for (auto& bridge : bridges_) bridge->start();
  if (!cfg_.gm_mutual_sync) {
    // Baseline ("clients only"): the aggregating client VM, not the
    // free-running GM, maintains each node's CLOCK_SYNCTIME.
    for (auto& ecd : ecds_) {
      ecd->st_shmem().set_active_vm(1);
      ecd->vm(0).set_active(false);
      ecd->vm(1).set_active(true);
    }
  }
}

bool Scenario::all_in_fta_phase() {
  for (auto& ecd : ecds_) {
    for (std::size_t i = 0; i < ecd->vm_count(); ++i) {
      auto& v = ecd->vm(i);
      if (!v.running()) continue;
      if (v.coordinator() == nullptr) {
        if (!cfg_.gm_mutual_sync) continue; // baseline GMs never aggregate
        return false;
      }
      if (v.coordinator()->phase() != core::SyncPhase::kFta) return false;
    }
  }
  return true;
}

obs::MetricsSnapshot Scenario::metrics_snapshot() {
  const auto& q = sim_.queue().stats();
  obs_.metrics.gauge("sim.events_executed").set(static_cast<double>(sim_.events_executed()));
  obs_.metrics.gauge("sim.events_scheduled").set(static_cast<double>(q.scheduled));
  obs_.metrics.gauge("sim.events_posted").set(static_cast<double>(q.posted));
  obs_.metrics.gauge("sim.events_cancelled").set(static_cast<double>(q.cancelled));
  obs_.metrics.gauge("sim.wheel_inserts").set(static_cast<double>(q.wheel_inserts));
  obs_.metrics.gauge("sim.staged_inserts").set(static_cast<double>(q.staged_inserts));
  obs_.metrics.gauge("sim.heap_spills").set(static_cast<double>(q.heap_spills));
  obs_.metrics.gauge("sim.cascades").set(static_cast<double>(q.cascades));
  const auto& p = net::FramePool::local().stats();
  const std::uint64_t acquired = p.acquired - pool_base_.acquired;
  const std::uint64_t released = p.released - pool_base_.released;
  obs_.metrics.gauge("net.frames_acquired").set(static_cast<double>(acquired));
  obs_.metrics.gauge("net.frames_released").set(static_cast<double>(released));
  obs_.metrics.gauge("net.frames_in_flight").set(static_cast<double>(acquired - released));
  obs_.metrics.gauge("trace.records_total").set(static_cast<double>(obs_.trace.total()));
  obs_.metrics.gauge("trace.records_dropped").set(static_cast<double>(obs_.trace.dropped()));
  return obs_.metrics.snapshot();
}

double Scenario::gm_clock_disagreement_ns() {
  std::vector<std::int64_t> readings;
  for (auto& ecd : ecds_) {
    if (ecd->vm(0).running()) readings.push_back(ecd->vm(0).nic().phc().read());
  }
  if (readings.size() < 2) return 0.0;
  const auto [lo, hi] = std::minmax_element(readings.begin(), readings.end());
  return static_cast<double>(*hi - *lo);
}

} // namespace tsn::experiments
