#include "experiments/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/ft_shmem.hpp"
#include "core/fta.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::experiments {
namespace {

constexpr std::uint16_t kMeasurementVlan = 100;

/// Diverse kernels for the redundant VMs (not attack targets).
const char* redundant_kernel(std::size_t ecd_idx) {
  static const char* kVersions[] = {"5.4.0", "5.10.0", "5.15.0", "6.1.0"};
  return kVersions[ecd_idx % 4];
}

/// Installs a region's frame pool as the build thread's local() for the
/// duration of that region's component construction, so any buffer a
/// component touches at build time lives in the right pool. No-op when
/// `pool` is null (serial mode).
class PoolScope {
 public:
  explicit PoolScope(net::FramePool* pool) : active_(pool != nullptr) {
    if (active_) net::FramePool::set_local(pool);
  }
  ~PoolScope() {
    if (active_) net::FramePool::set_local(nullptr);
  }
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  bool active_;
};

} // namespace

Scenario::Scenario(const ScenarioConfig& cfg)
    : cfg_(cfg),
      topo_(Topology::build(cfg.topology, cfg.num_ecds)),
      sim_(cfg.seed),
      pool_base_(net::FramePool::local().stats()) {
  if (cfg_.num_ecds < 2 || cfg_.gm_kernels.empty()) {
    throw std::invalid_argument("Scenario: need >= 2 ECDs and GM kernels");
  }
  if (domain_count() < 2 || domain_count() > cfg_.num_ecds) {
    throw std::invalid_argument("Scenario: need 2 <= num_domains <= num_ecds");
  }
  if (cfg_.partitions > 0) {
    // One region per ECD, always: the decomposition is part of the model,
    // so results cannot depend on how many shards execute it.
    runtime_ = std::make_unique<sim::PartitionRuntime>(cfg_.num_ecds, cfg_.seed,
                                                       cfg_.partitions);
    for (std::size_t r = 0; r < cfg_.num_ecds; ++r) {
      pools_.push_back(std::make_unique<net::FramePool>());
      obs_regions_.push_back(std::make_unique<obs::Observability>());
    }
    runtime_->set_region_scope_hook([this](std::size_t r, bool enter) {
      net::FramePool::set_local(enter ? pools_[r].get() : nullptr);
    });
  }
  build_ecds();
  build_network();
  build_bridges();
  configure_measurement_vlan();
  configure_data_fdb();
  build_probe();
}

std::size_t Scenario::domain_count() const {
  // Default: one domain per ECD, capped at the STSHMEM slot count so that
  // scaled-up topologies (num_ecds > kMaxDomains) work without an explicit
  // num_domains=.
  return cfg_.num_domains == 0 ? std::min(cfg_.num_ecds, core::kMaxDomains)
                               : cfg_.num_domains;
}

sim::Simulation& Scenario::sim_for(std::size_t ecd_idx) {
  return runtime_ ? runtime_->region_sim(ecd_idx) : sim_;
}

obs::ObsContext Scenario::obs_for(std::size_t ecd_idx) {
  return runtime_ ? obs_regions_[ecd_idx]->context() : obs_.context();
}

sim::Simulation& Scenario::sim() {
  if (runtime_ != nullptr) {
    throw std::logic_error(
        "Scenario::sim() is serial-only; a partitioned world has one "
        "Simulation per region (run_to()/now_ns(), ecd(x).sim())");
  }
  return sim_;
}

obs::MetricsRegistry& Scenario::metrics() {
  if (runtime_ != nullptr) {
    throw std::logic_error("Scenario::metrics() is serial-only; partitioned "
                           "worlds merge region registries in metrics_snapshot()");
  }
  return obs_.metrics;
}

obs::TraceRing& Scenario::trace() {
  if (runtime_ != nullptr) {
    throw std::logic_error(
        "Scenario::trace() is serial-only; use region_trace(r)");
  }
  return obs_.trace;
}

obs::TraceRing& Scenario::region_trace(std::size_t r) {
  if (runtime_ == nullptr) {
    if (r != 0) throw std::out_of_range("region_trace: serial world has region 0 only");
    return obs_.trace;
  }
  return obs_regions_.at(r)->trace;
}

void Scenario::run_to(std::int64_t t_ns) {
  if (runtime_) {
    runtime_->run_until(sim::SimTime(t_ns));
  } else if (ff_) {
    ff_->run_to(sim::SimTime(t_ns));
  } else {
    sim_.run_until(sim::SimTime(t_ns));
  }
}

std::int64_t Scenario::now_ns() const {
  return runtime_ ? runtime_->now().ns() : sim_.now().ns();
}

std::uint64_t Scenario::events_executed() const {
  return runtime_ ? runtime_->events_executed() : sim_.events_executed();
}

sim::Simulation& Scenario::control_sim() {
  return runtime_ ? runtime_->region_sim(0) : sim_;
}

std::size_t Scenario::mesh_port(std::size_t x, std::size_t y) const {
  return topo_.port(x, y);
}

void Scenario::build_ecds() {
  time::PhcModel nic_phc;
  nic_phc.oscillator.max_drift_ppm = cfg_.max_drift_ppm;
  nic_phc.oscillator.wander_sigma_ppm = cfg_.wander_sigma_ppm;
  nic_phc.timestamp_jitter_ns = cfg_.nic_ts_jitter_ns;

  time::PhcModel tsc_model;
  tsc_model.oscillator.max_drift_ppm = 30.0; // TSCs are worse than TCXOs
  tsc_model.oscillator.wander_sigma_ppm = cfg_.wander_sigma_ppm;
  tsc_model.timestamp_jitter_ns = 0.0;

  util::RngStream phase_rng = sim_.make_rng("initial-phase");
  const std::size_t domains = domain_count();

  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    PoolScope pool(runtime_ ? pools_[x].get() : nullptr);
    hv::EcdConfig ecfg;
    ecfg.name = util::format("ecd%zu", x + 1);
    ecfg.tsc = tsc_model;
    ecds_.push_back(std::make_unique<hv::Ecd>(sim_for(x), ecfg, obs_for(x)));

    for (std::size_t i = 0; i < 2; ++i) {
      hv::ClockSyncVmConfig vcfg;
      vcfg.name = util::format("c%zu%zu", x + 1, i + 1);
      vcfg.mac = net::MacAddress::from_u64(0x020000000000ULL | ((x + 1) << 8) | (i + 1));
      vcfg.phc = nic_phc;
      for (std::size_t d = 0; d < domains; ++d) {
        vcfg.domains.push_back(static_cast<std::uint8_t>(d + 1));
      }
      // ECD x's first VM is the GM of domain x+1 -- when that domain
      // exists (num_domains may cap the count below one per ECD; the
      // remaining first VMs are plain aggregating members).
      const bool is_gm_vm = (i == 0) && (x < domains);
      if (is_gm_vm) {
        vcfg.gm_domain = static_cast<std::uint8_t>(x + 1);
        vcfg.kernel_version = cfg_.gm_kernels[x % cfg_.gm_kernels.size()];
        vcfg.aggregate = cfg_.gm_mutual_sync; // baseline: GMs free-run
      } else {
        vcfg.kernel_version =
            (i == 0) ? cfg_.gm_kernels[x % cfg_.gm_kernels.size()] : redundant_kernel(x);
        // Baseline clients have no startup phase to lean on.
        vcfg.coordinator.skip_startup = !cfg_.gm_mutual_sync;
      }
      vcfg.coordinator.fta_f = cfg_.fta_f;
      vcfg.coordinator.sync_interval_ns = cfg_.sync_interval_ns;
      vcfg.coordinator.method = cfg_.aggregation;
      vcfg.coordinator.initial_domain = 1;
      vcfg.coordinator.startup_threshold_ns = cfg_.startup_threshold_ns;
      vcfg.coordinator.startup_consecutive = cfg_.startup_consecutive;
      vcfg.coordinator.validity.agreement_threshold_ns = cfg_.validity_threshold_ns;
      vcfg.coordinator.validity.freshness_window_ns = 4 * cfg_.sync_interval_ns;
      vcfg.instance.sync_interval_ns = cfg_.sync_interval_ns;
      vcfg.synctime.period_ns = cfg_.synctime_period_ns;
      vcfg.synctime.mode = cfg_.synctime_feed_forward ? hv::SyncTimeMode::kFeedForward
                                                       : hv::SyncTimeMode::kPiFeedback;

      auto& vm = ecds_.back()->add_clock_sync_vm(vcfg);
      // Random initial phase: the paper assumes a fault-free initial
      // synchronization; the startup phase has to earn it here.
      vm.nic().phc().step(static_cast<std::int64_t>(
          phase_rng.uniform(-cfg_.initial_phase_range_ns, cfg_.initial_phase_range_ns)));
    }
  }
}

void Scenario::build_network() {
  net::SwitchConfig scfg;
  // Ports 0-1 host the two VMs; 2.. face the neighbor switches. The
  // paper's 4-ECD testbed uses the integrated 6-port switch; a mesh of N
  // needs num_ecds+1 ports (the PR-5 fuzz constraint), sparse topologies
  // need 2 + degree.
  scfg.port_count = std::max<std::size_t>(6, topo_.min_port_count());
  scfg.residence_base_ns = cfg_.switch_residence_ns;
  scfg.residence_jitter_ns = cfg_.switch_residence_jitter_ns;
  scfg.drop_unknown_unicast = true; // the mesh has loops: no flooding
  scfg.phc.oscillator.max_drift_ppm = cfg_.max_drift_ppm;
  scfg.phc.oscillator.wander_sigma_ppm = cfg_.wander_sigma_ppm;
  scfg.phc.timestamp_jitter_ns = cfg_.nic_ts_jitter_ns;

  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    PoolScope pool(runtime_ ? pools_[x].get() : nullptr);
    switches_.push_back(
        std::make_unique<net::Switch>(sim_for(x), scfg, util::format("sw%zu", x + 1)));
  }

  net::LinkConfig host_link;
  host_link.a_to_b = {cfg_.host_link_delay_ns, cfg_.host_link_jitter_ns};
  host_link.b_to_a = {cfg_.host_link_delay_ns, cfg_.host_link_jitter_ns};

  // Host links: VM i of ECD x <-> sw_x port i. Always region-local.
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t i = 0; i < 2; ++i) {
      links_.push_back(std::make_unique<net::Link>(
          sim_for(x), vm(x, i).nic().port(), switches_[x]->port(i), host_link,
          util::format("c%zu%zu-sw%zu", x + 1, i + 1, x + 1)));
    }
  }

  // Switch-to-switch links in ascending edge order (slight per-link base
  // asymmetry emulates cable-length variation and feeds the reading error
  // E). The draw order over edges is fixed by the topology, so the mesh
  // reproduces the legacy wiring byte for byte; in partitioned mode these
  // are the boundary links whose propagation floor bounds the lookahead.
  util::RngStream asym_rng = sim_.make_rng("link-asymmetry");
  for (const TopologyEdge& e : topo_.edges()) {
    net::LinkConfig mesh;
    const auto base = cfg_.mesh_link_delay_ns;
    mesh.a_to_b = {base + asym_rng.uniform_int(-100, 100), cfg_.mesh_link_jitter_ns};
    mesh.b_to_a = {base + asym_rng.uniform_int(-100, 100), cfg_.mesh_link_jitter_ns};
    const std::string name = util::format("sw%zu-sw%zu", e.a + 1, e.b + 1);
    net::Port& port_a = switches_[e.a]->port(topo_.port(e.a, e.b));
    net::Port& port_b = switches_[e.b]->port(topo_.port(e.b, e.a));
    if (runtime_) {
      links_.push_back(
          net::Link::make_boundary(*runtime_, e.a, port_a, e.b, port_b, mesh, name));
    } else {
      links_.push_back(std::make_unique<net::Link>(sim_, port_a, port_b, mesh, name));
    }
  }
}

void Scenario::build_bridges() {
  const std::size_t domains = domain_count();
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    PoolScope pool(runtime_ ? pools_[x].get() : nullptr);
    gptp::BridgeConfig bcfg;
    for (std::size_t d = 0; d < domains; ++d) {
      // Domain d+1 is rooted at ECD d's switch; Sync flows down the
      // shortest-path tree toward every other switch.
      gptp::BridgeDomainConfig dom;
      dom.domain = static_cast<std::uint8_t>(d + 1);
      if (x == d) {
        // This switch hosts the domain's GM on port 0.
        dom.slave_port = 0;
        dom.master_ports.insert(1);
      } else {
        // Toward the root; local hosts are leaves.
        dom.slave_port = topo_.port(x, topo_.next_hop(x, d));
        dom.master_ports = {0, 1};
      }
      // Downstream: neighbors that reach the root through this switch.
      for (std::size_t child : topo_.tree_children(x, d)) {
        dom.master_ports.insert(topo_.port(x, child));
      }
      bcfg.domains.push_back(dom);
    }
    bridges_.push_back(std::make_unique<gptp::TimeAwareBridge>(sim_for(x), *switches_[x], bcfg,
                                                               util::format("br%zu", x + 1)));
  }
}

void Scenario::configure_measurement_vlan() {
  const std::size_t m = cfg_.measurement_ecd;
  const net::MacAddress group = measure::measurement_group();
  // The measurement VLAN spans the shortest-path tree rooted at the
  // measurement ECD (for the mesh: the root fans out directly to every
  // leaf, the legacy shape).
  switches_[m]->add_vlan_member(kMeasurementVlan, 1); // sender's host port
  for (std::size_t child : topo_.tree_children(m, m)) {
    const std::size_t p = topo_.port(m, child);
    switches_[m]->add_vlan_member(kMeasurementVlan, p);
    switches_[m]->add_fdb_entry(kMeasurementVlan, group, p);
  }
  for (std::size_t y = 0; y < cfg_.num_ecds; ++y) {
    if (y == m) continue;
    // Toward-root port, both host ports, and any downstream subtree.
    switches_[y]->add_vlan_member(kMeasurementVlan, topo_.port(y, topo_.next_hop(y, m)));
    switches_[y]->add_vlan_member(kMeasurementVlan, 0);
    switches_[y]->add_vlan_member(kMeasurementVlan, 1);
    switches_[y]->add_fdb_entry(kMeasurementVlan, group, 0);
    switches_[y]->add_fdb_entry(kMeasurementVlan, group, 1);
    for (std::size_t child : topo_.tree_children(y, m)) {
      const std::size_t p = topo_.port(y, child);
      switches_[y]->add_vlan_member(kMeasurementVlan, p);
      switches_[y]->add_fdb_entry(kMeasurementVlan, group, p);
    }
  }
}

void Scenario::configure_data_fdb() {
  // Static unicast forwarding for every VM MAC on the default VLAN:
  // next hop along the shortest path towards the destination ECD (the
  // direct mesh hop in the legacy shape), host port locally.
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t y = 0; y < cfg_.num_ecds; ++y) {
      for (std::size_t i = 0; i < 2; ++i) {
        const net::MacAddress mac = vm(y, i).nic().mac();
        const std::size_t port =
            (y == x) ? i : topo_.port(x, topo_.next_hop(x, y));
        switches_[x]->add_fdb_entry(0, mac, port);
      }
    }
  }
}

void Scenario::build_probe() {
  const std::size_t m = cfg_.measurement_ecd;
  {
    PoolScope pool(runtime_ ? pools_[m].get() : nullptr);
    probe_ = std::make_unique<measure::PrecisionProbe>(sim_for(m), measurement_vm().nic(),
                                                       cfg_.probe, "probe");
  }
  if (runtime_) probe_->set_partitioned(runtime_.get(), m);
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    if (x == m) continue; // excludes c^m_1 (asymmetric path) and the sender
    for (std::size_t i = 0; i < 2; ++i) {
      probe_->add_receiver({vm(x, i).name(), &vm(x, i).nic(), &vm(x, i), ecds_[x].get()}, x);
    }
  }

  {
    PoolScope pool(runtime_ ? pools_[0].get() : nullptr);
    path_meter_ = std::make_unique<measure::PathDelayMeter>(sim_for(0), 0, "path-meter");
  }
  if (runtime_) path_meter_->set_partitioned(runtime_.get(), 0);
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    for (std::size_t i = 0; i < 2; ++i) {
      path_meter_->add_node(vm(x, i).name(), &vm(x, i).nic(),
                            runtime_ ? &runtime_->region_sim(x) : nullptr, x);
    }
  }
}

std::vector<std::string> Scenario::probe_destinations() const {
  std::vector<std::string> out;
  for (std::size_t x = 0; x < cfg_.num_ecds; ++x) {
    if (x == cfg_.measurement_ecd) continue;
    for (std::size_t i = 0; i < 2; ++i) {
      out.push_back(util::format("c%zu%zu", x + 1, i + 1));
    }
  }
  return out;
}

std::string Scenario::measurement_vm_name() const {
  return util::format("c%zu2", cfg_.measurement_ecd + 1);
}

std::vector<hv::Ecd*> Scenario::ecd_ptrs() {
  std::vector<hv::Ecd*> out;
  for (auto& e : ecds_) out.push_back(e.get());
  return out;
}

void Scenario::start() {
  for (std::size_t x = 0; x < ecds_.size(); ++x) {
    PoolScope pool(runtime_ ? pools_[x].get() : nullptr);
    ecds_[x]->start();
  }
  for (std::size_t x = 0; x < bridges_.size(); ++x) {
    PoolScope pool(runtime_ ? pools_[x].get() : nullptr);
    bridges_[x]->start();
  }
  if (!cfg_.gm_mutual_sync) {
    // Baseline ("clients only"): the aggregating client VM, not the
    // free-running GM, maintains each node's CLOCK_SYNCTIME.
    for (auto& ecd : ecds_) {
      ecd->st_shmem().set_active_vm(1);
      ecd->vm(0).set_active(false);
      ecd->vm(1).set_active(true);
    }
  }
}

bool Scenario::all_in_fta_phase() {
  for (auto& ecd : ecds_) {
    for (std::size_t i = 0; i < ecd->vm_count(); ++i) {
      auto& v = ecd->vm(i);
      if (!v.running()) continue;
      if (v.coordinator() == nullptr) {
        if (!cfg_.gm_mutual_sync) continue; // baseline GMs never aggregate
        return false;
      }
      if (v.coordinator()->phase() != core::SyncPhase::kFta) return false;
    }
  }
  return true;
}

obs::MetricsSnapshot Scenario::metrics_snapshot() {
  if (runtime_ == nullptr) {
    const auto& q = sim_.queue().stats();
    obs_.metrics.gauge("sim.events_executed").set(static_cast<double>(sim_.events_executed()));
    obs_.metrics.gauge("sim.events_scheduled").set(static_cast<double>(q.scheduled));
    obs_.metrics.gauge("sim.events_posted").set(static_cast<double>(q.posted));
    obs_.metrics.gauge("sim.events_cancelled").set(static_cast<double>(q.cancelled));
    obs_.metrics.gauge("sim.wheel_inserts").set(static_cast<double>(q.wheel_inserts));
    obs_.metrics.gauge("sim.staged_inserts").set(static_cast<double>(q.staged_inserts));
    obs_.metrics.gauge("sim.heap_spills").set(static_cast<double>(q.heap_spills));
    obs_.metrics.gauge("sim.cascades").set(static_cast<double>(q.cascades));
    const auto& p = net::FramePool::local().stats();
    const std::uint64_t acquired = p.acquired - pool_base_.acquired;
    const std::uint64_t released = p.released - pool_base_.released;
    obs_.metrics.gauge("net.frames_acquired").set(static_cast<double>(acquired));
    obs_.metrics.gauge("net.frames_released").set(static_cast<double>(released));
    obs_.metrics.gauge("net.frames_in_flight").set(static_cast<double>(acquired - released));
    obs_.metrics.gauge("trace.records_total").set(static_cast<double>(obs_.trace.total()));
    obs_.metrics.gauge("trace.records_dropped").set(static_cast<double>(obs_.trace.dropped()));
    return obs_.metrics.snapshot();
  }

  // Partitioned: fold the per-region registries in region order (the
  // fold, like the sweep runner's, is deterministic whatever thread count
  // executed the regions), then overlay scheduling totals. Only totals
  // that the horizon protocol cannot perturb are harvested: posted/
  // scheduled/cancelled/executed counts are properties of the event set,
  // while wheel-placement stats (staged vs wheel vs heap, cascades)
  // depend on when a mailbox was drained relative to the queue cursor --
  // deterministic results, nondeterministic bookkeeping.
  std::vector<obs::MetricsSnapshot> parts;
  parts.reserve(obs_regions_.size());
  for (auto& o : obs_regions_) parts.push_back(o->metrics.snapshot());
  obs::MetricsSnapshot s = obs::merge_snapshots(parts);
  std::uint64_t scheduled = 0, posted = 0, cancelled = 0;
  std::uint64_t acquired = 0, released = 0, trace_total = 0, trace_dropped = 0;
  for (std::size_t r = 0; r < runtime_->region_count(); ++r) {
    const auto& q = runtime_->region_sim(r).queue().stats();
    scheduled += q.scheduled;
    posted += q.posted;
    cancelled += q.cancelled;
    acquired += pools_[r]->stats().acquired;
    released += pools_[r]->stats().released;
    trace_total += obs_regions_[r]->trace.total();
    trace_dropped += obs_regions_[r]->trace.dropped();
  }
  s.gauges["sim.events_executed"] = static_cast<double>(runtime_->events_executed());
  s.gauges["sim.events_scheduled"] = static_cast<double>(scheduled);
  s.gauges["sim.events_posted"] = static_cast<double>(posted);
  s.gauges["sim.events_cancelled"] = static_cast<double>(cancelled);
  s.gauges["net.frames_acquired"] = static_cast<double>(acquired);
  s.gauges["net.frames_released"] = static_cast<double>(released);
  s.gauges["net.frames_in_flight"] = static_cast<double>(acquired - released);
  s.gauges["trace.records_total"] = static_cast<double>(trace_total);
  s.gauges["trace.records_dropped"] = static_cast<double>(trace_dropped);
  return s;
}

std::vector<sim::Persistent*> Scenario::persist_targets() {
  std::vector<sim::Persistent*> out;
  out.reserve(ecds_.size() + switches_.size() + bridges_.size() + links_.size() + 1);
  for (auto& e : ecds_) out.push_back(e.get());
  for (auto& s : switches_) out.push_back(s.get());
  for (auto& b : bridges_) out.push_back(b.get());
  for (auto& l : links_) out.push_back(l.get());
  out.push_back(probe_.get());
  return out;
}

sim::SimSnapshot Scenario::snapshot() {
  if (runtime_) {
    throw std::logic_error("Scenario::snapshot() is serial-only; a partitioned "
                           "world has one queue per region");
  }
  return sim::take_snapshot(sim_, persist_targets());
}

void Scenario::restore(const sim::SimSnapshot& snap) {
  if (runtime_) throw std::logic_error("Scenario::restore() is serial-only");
  sim::restore_snapshot(sim_, persist_targets(), snap);
}

bool Scenario::run_to_quiescence(std::int64_t max_wait_ns) {
  if (runtime_) throw std::logic_error("Scenario::run_to_quiescence() is serial-only");
  const std::vector<sim::Persistent*> targets = persist_targets();
  // Sync/pdelay transients (frames in flight, bridge relays, coordinator
  // evaluations) retire within a few milliseconds of each 125 ms volley,
  // so millisecond probing lands on a clean instant almost immediately.
  constexpr std::int64_t kStepNs = 1'000'000;
  const std::int64_t deadline = sim_.now().ns() + max_wait_ns;
  while (!sim::components_quiescent(sim_, targets)) {
    if (sim_.now().ns() >= deadline) return false;
    sim_.run_until(sim::SimTime{sim_.now().ns() + kStepNs});
  }
  return true;
}

void Scenario::enable_fast_forward(const sim::FfConfig& fcfg) {
  if (runtime_) {
    throw std::logic_error("Scenario::enable_fast_forward() is serial-only; the "
                           "partitioned runtime has its own horizon protocol");
  }
  if (ff_) throw std::logic_error("fast-forward already enabled");
  ff_cfg_ = fcfg;
  ff_ = std::make_unique<sim::FfController>(sim_, fcfg);
  for (sim::Persistent* p : persist_targets()) ff_->add_participant(p);
  ff_->set_model_quiescent([this] { return model_quiescent(); });
  ff_->set_analytic_prepare([this](std::int64_t park) { analytic_prepare(park); });
  ff_->set_analytic_advance(
      [this](std::int64_t from, std::int64_t to) { analytic_advance(from, to); });
}

bool Scenario::model_quiescent() {
  for (std::size_t x = 0; x < ecds_.size(); ++x) {
    hv::Ecd& e = *ecds_[x];
    for (std::size_t i = 0; i < e.vm_count(); ++i) {
      hv::ClockSyncVm& v = e.vm(i);
      // The monitor's view must agree with the VM's liveness: a
      // just-killed VM is structurally quiescent (zero standing events)
      // before its heartbeat goes stale, and opening a window there would
      // postpone the takeover by the whole window span. Likewise a
      // recovering VM whose comeback the monitor has not processed yet.
      if (v.running() == e.monitor().detected_failed(i)) return false;
      if (v.compromised()) return false;
      if (!v.running()) continue; // steady "down", monitor agrees
      if (e.monitor().voted_out(i)) return false;
      if (hv::SyncTimeUpdater* u = v.updater()) {
        if (!u->running()) return false;
        if (u->param_corruption() != 0 || u->rate_corruption() != 0.0) return false;
      }
      if (core::MultiDomainCoordinator* c = v.coordinator()) {
        if (c->phase() != core::SyncPhase::kFta) return false;
        if (c->servo_state() != gptp::PiServo::State::kLocked) return false;
      }
      // coordinator == nullptr: a baseline free-running GM -- trivially
      // steady (nothing disciplines its clock).
    }
  }
  for (auto& b : bridges_) {
    if (b->attack_armed()) return false;
  }
  for (auto& l : links_) {
    if (l->attack_armed()) return false;
  }
  return probe_->idle();
}

std::optional<double> Scenario::ff_aggregate_rel(std::int64_t t_ref) {
  std::vector<double> readings;
  readings.reserve(ff_pull_.ensemble.size());
  for (time::PhcClock* phc : ff_pull_.ensemble) {
    readings.push_back(static_cast<double>(phc->read() - t_ref));
  }
  return core::aggregate(readings, cfg_.aggregation, cfg_.fta_f);
}

void Scenario::analytic_prepare(std::int64_t park_ns) {
  // Capture the stepper's entry state from the LIVE model, before the
  // controller parks the servos and drains the queue. The 2.5 s drain
  // runs every clock open-loop on its last frequency trim -- after a long
  // window those trims are stale by the oscillator wander the window
  // accumulated, so the drain can smear the ensemble apart by trim-error
  // x drain-span. Anchoring the residuals here means the first analytic
  // step pulls that smear back out, exactly as the live servos would
  // have; capturing after the drain instead locks it into the window and
  // ratchets the spread at every boundary until the validity layer's
  // disagreement filter evicts the whole ensemble (no quorum, servos
  // frozen, clocks diverging on stale trims -- unrecoverable).
  ff_pull_.ensemble.clear();
  ff_pull_.pulls.clear();
  ff_pull_.armed = false;

  // Ensemble members: the running domain GMs (domain d+1 is rooted at
  // vm(d, 0)); a down GM's domain is exactly what the validity layer
  // would flag stale under event simulation.
  for (std::size_t d = 0; d < domain_count(); ++d) {
    hv::ClockSyncVm& v = gm_vm(d);
    if (v.running()) ff_pull_.ensemble.push_back(&v.nic().phc());
  }

  const std::optional<double> entry_agg = ff_aggregate_rel(park_ns);
  if (!entry_agg) return;
  // entry_agg empty = no aggregation quorum: every clock holds its
  // frequency across the window, matching the event-simulated
  // "aggregation_skipped_no_quorum" behaviour.

  // Pulled clocks: every running VM that aggregates (has a coordinator);
  // model_quiescent() already guaranteed their servos are locked.
  for (auto& ecd : ecds_) {
    for (std::size_t i = 0; i < ecd->vm_count(); ++i) {
      hv::ClockSyncVm& v = ecd->vm(i);
      if (!v.running() || v.coordinator() == nullptr) continue;
      time::PhcClock& phc = v.nic().phc();
      ff_pull_.pulls.push_back(
          {&phc, static_cast<double>(phc.read() - park_ns) - *entry_agg});
    }
  }
  ff_pull_.armed = true;
}

void Scenario::analytic_advance(std::int64_t from_ns, std::int64_t to_ns) {
  // One analytic "FTA round" per stride (never finer than the sync
  // interval, capped at cfg.max_steps): at each step the ensemble
  // aggregate E_k is recomputed from the GM PHCs -- which keep wandering
  // through their coarse O(1) oscillator integration, statistically as
  // they would under event simulation -- and every locked aggregating
  // clock is stepped so it keeps the offset from the aggregate it had at
  // park (the locked servo's fixed point; see analytic_prepare). All
  // arithmetic on clock readings is relative to the step time t_k:
  // absolute nanoseconds at week scale (~6e14) carry 0.125 ns of double
  // ulp, the relative offsets are microseconds.
  const std::int64_t span = to_ns - from_ns;
  const std::int64_t ival =
      std::max<std::int64_t>(std::max<std::int64_t>(1, cfg_.sync_interval_ns),
                             ff_cfg_.analytic_step_ns);
  const std::int64_t want = span / ival;
  const std::int64_t n =
      std::max<std::int64_t>(1, std::min<std::int64_t>(ff_cfg_.max_steps, want));

  // Direct callers (tests driving the stepper without the controller):
  // anchor the residuals at from_ns, drain smear included.
  if (!ff_pull_.armed && ff_pull_.ensemble.empty()) analytic_prepare(from_ns);

  const bool pull = ff_pull_.armed && !ff_pull_.pulls.empty();
  for (std::int64_t k = 1; k <= n; ++k) {
    const std::int64_t t_k =
        from_ns + static_cast<std::int64_t>(
                      static_cast<__int128>(span) * k / n);
    sim_.advance_to(sim::SimTime{t_k});
    if (!pull) continue;
    for (time::PhcClock* phc : ff_pull_.ensemble) phc->catch_up_coarse();
    for (const FfPull& p : ff_pull_.pulls) p.phc->catch_up_coarse();
    const std::optional<double> agg = ff_aggregate_rel(t_k);
    if (!agg) continue; // quorum lost mid-window: hold frequency
    for (const FfPull& p : ff_pull_.pulls) {
      const double cur = static_cast<double>(p.phc->read() - t_k);
      const double tgt = *agg + p.residual_ns;
      p.phc->step(static_cast<std::int64_t>(std::llround(tgt - cur)));
    }
  }
  // Flush every clock in the world through the window analytically:
  // clocks the stepper never touched (TSCs, switch PHCs, down VMs) would
  // otherwise pay the full quantum-by-quantum wander integration lazily
  // at their first post-window read -- 360k RNG draws each after an hour.
  for (auto& ecd : ecds_) {
    ecd->tsc().catch_up_coarse();
    for (std::size_t i = 0; i < ecd->vm_count(); ++i)
      ecd->vm(i).nic().phc().catch_up_coarse();
  }
  for (auto& sw : switches_) sw->phc().catch_up_coarse();
  ff_pull_.ensemble.clear();
  ff_pull_.pulls.clear();
  ff_pull_.armed = false;
}

double Scenario::gm_clock_disagreement_ns() {
  std::vector<std::int64_t> readings;
  for (auto& ecd : ecds_) {
    if (ecd->vm(0).running()) readings.push_back(ecd->vm(0).nic().phc().read());
  }
  if (readings.size() < 2) return 0.0;
  const auto [lo, hi] = std::minmax_element(readings.begin(), readings.end());
  return static_cast<double>(*hi - *lo);
}

} // namespace tsn::experiments
