// Terminal and CSV emitters for the reproduction binaries: each bench
// prints the same rows/series the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "experiments/event_log.hpp"
#include "experiments/harness.hpp"
#include "experiments/scenario.hpp"
#include "util/histogram.hpp"
#include "util/series.hpp"

namespace tsn::experiments {

/// One "paper vs measured" comparison row.
struct ComparisonRow {
  std::string metric;
  std::string paper;
  std::string measured;
  std::string note;
};

void print_comparison_table(const std::string& title, const std::vector<ComparisonRow>& rows);

/// Section III-A3 scalars: dmin/dmax/E/Gamma/Pi/gamma.
void print_calibration(const ExperimentHarness::Calibration& cal, double paper_dmin_ns,
                       double paper_dmax_ns, double paper_pi_ns, double paper_gamma_ns);

/// Fig. 3a/3b/4a-style series: 120 s (configurable) aggregation with
/// avg/min/max per bucket plus bound-violation marking.
void print_precision_series(const util::TimeSeries& series, double pi_ns, double gamma_ns,
                            std::int64_t bucket_ns = 120'000'000'000LL);

/// Fig. 4b-style distribution (histogram + avg/std/min/max line).
void print_precision_histogram(const util::TimeSeries& series, double bin_ns = 50.0,
                               double range_hi_ns = 1'000.0);

/// Fig. 5-style annotated timeline of a window.
void print_event_timeline(const EventLog& log, const util::TimeSeries& series,
                          std::int64_t lo_ns, std::int64_t hi_ns, double pi_ns, double gamma_ns);

/// CSV dumps for external plotting.
void dump_series_csv(const util::TimeSeries& series, const std::string& path);
void dump_aggregated_csv(const util::TimeSeries& series, std::int64_t bucket_ns,
                         const std::string& path);
void dump_events_csv(const EventLog& log, const std::string& path);

/// Fraction of samples with (value - gamma) <= pi, i.e. eq. 3.3 holding.
double bound_holding_fraction(const util::TimeSeries& series, double pi_ns, double gamma_ns);

/// Stringify the scenario knobs for the run manifest (stable key names,
/// %g formatting for doubles).
std::map<std::string, std::string> scenario_kv(const ScenarioConfig& cfg);

} // namespace tsn::experiments
