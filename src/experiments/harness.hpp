// ExperimentHarness: wires a Scenario to the measurement infrastructure
// and event recording, and drives the phases every reproduction binary
// shares: boot -> initial synchronization -> offline bound calibration ->
// measured run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/event_log.hpp"
#include "experiments/scenario.hpp"
#include "measure/bound.hpp"

namespace tsn::experiments {

class ExperimentHarness {
 public:
  explicit ExperimentHarness(Scenario& scenario);

  /// Boot the testbed and run until every VM finished the startup phase
  /// (fault-free initial synchronization), plus a short settle period for
  /// the servos' post-transition transients. Throws if it does not
  /// converge within `limit_ns`.
  void bring_up(std::int64_t limit_ns = 120'000'000'000LL,
                std::int64_t settle_ns = 20'000'000'000LL);

  /// Offline calibration (paper section III-A3): measure node-to-node
  /// latencies, derive E, gamma and the bound Pi.
  struct Calibration {
    double dmin_ns = 0;
    double dmax_ns = 0;
    double gamma_ns = 0;
    measure::PrecisionBound bound;
  };
  Calibration calibrate(int rounds = 40, std::int64_t spacing_ns = 50'000'000);

  /// Start the precision probe and run for `duration_ns`.
  void run_measured(std::int64_t duration_ns);

  /// The experiment event log. Partitioned scenarios record into one log
  /// per region (each only ever touched by its region's shard) and this
  /// accessor merges them by (time, region) on demand; serial scenarios
  /// return the single live log directly.
  EventLog& events();
  Scenario& scenario() { return scenario_; }
  const Calibration& calibration() const { return calibration_; }

  /// Total ptp4l application faults observed (across reboots).
  std::uint64_t total_tx_timestamp_timeouts();
  std::uint64_t total_deadline_misses();

 private:
  void wire_event_recording();

  Scenario& scenario_;
  std::vector<EventLog> logs_; ///< one (serial) or one per region
  EventLog merged_;            ///< cache for the partitioned events() view
  Calibration calibration_;
  bool started_ = false;
};

} // namespace tsn::experiments
