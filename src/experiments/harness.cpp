#include "experiments/harness.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::experiments {

ExperimentHarness::ExperimentHarness(Scenario& scenario) : scenario_(scenario) {
  wire_event_recording();
}

void ExperimentHarness::wire_event_recording() {
  auto& sim = scenario_.sim();
  for (std::size_t x = 0; x < scenario_.num_ecds(); ++x) {
    hv::Ecd& ecd = scenario_.ecd(x);
    ecd.monitor().on_vm_failure = [this, &sim, &ecd](std::size_t idx) {
      events_.record(sim.now().ns(), EventKind::kVmFailure, ecd.vm(idx).name());
    };
    ecd.monitor().on_takeover = [this, &sim, &ecd](std::size_t idx) {
      events_.record(sim.now().ns(), EventKind::kTakeover, ecd.vm(idx).name());
    };
    ecd.monitor().on_vm_recovery = [this, &sim, &ecd](std::size_t idx) {
      events_.record(sim.now().ns(), EventKind::kVmRecovery, ecd.vm(idx).name());
    };
    for (std::size_t i = 0; i < ecd.vm_count(); ++i) {
      ecd.vm(i).set_fault_callback([this, &sim](const std::string& vm, const std::string& kind) {
        events_.record(sim.now().ns(), EventKind::kAppFault, vm, kind);
      });
    }
  }
}

void ExperimentHarness::bring_up(std::int64_t limit_ns, std::int64_t settle_ns) {
  if (!started_) {
    scenario_.start();
    started_ = true;
  }
  auto& sim = scenario_.sim();
  const std::int64_t step = 1'000'000'000;
  while (!scenario_.all_in_fta_phase()) {
    if (sim.now().ns() > limit_ns) {
      throw std::runtime_error("bring_up: initial synchronization did not converge");
    }
    sim.run_until(sim.now() + step);
  }
  TSN_LOG_INFO("harness", "all VMs in FTA phase at t=%s",
               util::hms(sim.now().ns()).c_str());
  sim.run_until(sim.now() + settle_ns);
}

ExperimentHarness::Calibration ExperimentHarness::calibrate(int rounds,
                                                            std::int64_t spacing_ns) {
  auto& sim = scenario_.sim();
  bool done = false;
  scenario_.path_meter().run(rounds, spacing_ns, [&] { done = true; });
  while (!done) {
    sim.run_until(sim.now() + spacing_ns);
  }
  auto& meter = scenario_.path_meter();
  calibration_.dmin_ns = meter.dmin_ns();
  calibration_.dmax_ns = meter.dmax_ns();
  calibration_.gamma_ns =
      meter.gamma_ns(scenario_.measurement_vm_name(), scenario_.probe_destinations());

  measure::BoundInputs in;
  in.n = static_cast<int>(scenario_.num_ecds());
  in.f = scenario_.config().fta_f;
  in.dmin_ns = calibration_.dmin_ns;
  in.dmax_ns = calibration_.dmax_ns;
  in.rmax_ppm = scenario_.config().max_drift_ppm;
  in.sync_interval_ns = scenario_.config().sync_interval_ns;
  calibration_.bound = measure::compute_bound(in);
  return calibration_;
}

void ExperimentHarness::run_measured(std::int64_t duration_ns) {
  auto& sim = scenario_.sim();
  scenario_.probe().start();
  sim.run_until(sim.now() + duration_ns);
  scenario_.probe().stop();
}

std::uint64_t ExperimentHarness::total_tx_timestamp_timeouts() {
  std::uint64_t total = 0;
  for (std::size_t x = 0; x < scenario_.num_ecds(); ++x) {
    for (std::size_t i = 0; i < scenario_.ecd(x).vm_count(); ++i) {
      total += scenario_.vm(x, i).total_tx_timestamp_timeouts();
    }
  }
  return total;
}

std::uint64_t ExperimentHarness::total_deadline_misses() {
  std::uint64_t total = 0;
  for (std::size_t x = 0; x < scenario_.num_ecds(); ++x) {
    for (std::size_t i = 0; i < scenario_.ecd(x).vm_count(); ++i) {
      total += scenario_.vm(x, i).total_deadline_misses();
    }
  }
  return total;
}

} // namespace tsn::experiments
