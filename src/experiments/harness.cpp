#include "experiments/harness.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::experiments {

ExperimentHarness::ExperimentHarness(Scenario& scenario) : scenario_(scenario) {
  logs_.resize(scenario_.partitioned() ? scenario_.num_ecds() : 1);
  wire_event_recording();
}

void ExperimentHarness::wire_event_recording() {
  for (std::size_t x = 0; x < scenario_.num_ecds(); ++x) {
    hv::Ecd& ecd = scenario_.ecd(x);
    // Each ECD records into its region's log with its region's clock
    // (ecd.sim() is the shared Simulation when serial); the callbacks run
    // only in that region's shard, so the logs need no synchronization.
    EventLog& log = logs_[scenario_.partitioned() ? x : 0];
    ecd.monitor().on_vm_failure = [&log, &ecd](std::size_t idx) {
      log.record(ecd.sim().now().ns(), EventKind::kVmFailure, ecd.vm(idx).name());
    };
    ecd.monitor().on_takeover = [&log, &ecd](std::size_t idx) {
      log.record(ecd.sim().now().ns(), EventKind::kTakeover, ecd.vm(idx).name());
    };
    ecd.monitor().on_vm_recovery = [&log, &ecd](std::size_t idx) {
      log.record(ecd.sim().now().ns(), EventKind::kVmRecovery, ecd.vm(idx).name());
    };
    for (std::size_t i = 0; i < ecd.vm_count(); ++i) {
      ecd.vm(i).set_fault_callback([&log, &ecd](const std::string& vm, const std::string& kind) {
        log.record(ecd.sim().now().ns(), EventKind::kAppFault, vm, kind);
      });
    }
  }
}

EventLog& ExperimentHarness::events() {
  if (!scenario_.partitioned()) return logs_[0];
  // Rebuild the merged view: (time, region, in-region order) is a total
  // order identical for every partition count and thread schedule.
  merged_ = EventLog{};
  struct Tagged {
    std::int64_t t_ns;
    std::size_t region;
    std::size_t idx;
  };
  std::vector<Tagged> order;
  for (std::size_t r = 0; r < logs_.size(); ++r) {
    const auto& evs = logs_[r].events();
    for (std::size_t i = 0; i < evs.size(); ++i) order.push_back({evs[i].t_ns, r, i});
  }
  std::sort(order.begin(), order.end(), [](const Tagged& a, const Tagged& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    if (a.region != b.region) return a.region < b.region;
    return a.idx < b.idx;
  });
  for (const Tagged& t : order) {
    const ExperimentEvent& e = logs_[t.region].events()[t.idx];
    merged_.record(e.t_ns, e.kind, e.subject, e.detail);
  }
  return merged_;
}

void ExperimentHarness::bring_up(std::int64_t limit_ns, std::int64_t settle_ns) {
  if (!started_) {
    scenario_.start();
    started_ = true;
  }
  const std::int64_t step = 1'000'000'000;
  while (!scenario_.all_in_fta_phase()) {
    if (scenario_.now_ns() > limit_ns) {
      throw std::runtime_error("bring_up: initial synchronization did not converge");
    }
    scenario_.run_to(scenario_.now_ns() + step);
  }
  TSN_LOG_INFO("harness", "all VMs in FTA phase at t=%s",
               util::hms(scenario_.now_ns()).c_str());
  scenario_.run_to(scenario_.now_ns() + settle_ns);
}

ExperimentHarness::Calibration ExperimentHarness::calibrate(int rounds,
                                                            std::int64_t spacing_ns) {
  bool done = false;
  scenario_.path_meter().run(rounds, spacing_ns, [&] { done = true; });
  while (!done) {
    scenario_.run_to(scenario_.now_ns() + spacing_ns);
  }
  auto& meter = scenario_.path_meter();
  calibration_.dmin_ns = meter.dmin_ns();
  calibration_.dmax_ns = meter.dmax_ns();
  calibration_.gamma_ns =
      meter.gamma_ns(scenario_.measurement_vm_name(), scenario_.probe_destinations());

  measure::BoundInputs in;
  in.n = static_cast<int>(scenario_.num_ecds());
  in.f = scenario_.config().fta_f;
  in.dmin_ns = calibration_.dmin_ns;
  in.dmax_ns = calibration_.dmax_ns;
  in.rmax_ppm = scenario_.config().max_drift_ppm;
  in.sync_interval_ns = scenario_.config().sync_interval_ns;
  calibration_.bound = measure::compute_bound(in);
  return calibration_;
}

void ExperimentHarness::run_measured(std::int64_t duration_ns) {
  scenario_.probe().start();
  scenario_.run_to(scenario_.now_ns() + duration_ns);
  scenario_.probe().stop();
}

std::uint64_t ExperimentHarness::total_tx_timestamp_timeouts() {
  std::uint64_t total = 0;
  for (std::size_t x = 0; x < scenario_.num_ecds(); ++x) {
    for (std::size_t i = 0; i < scenario_.ecd(x).vm_count(); ++i) {
      total += scenario_.vm(x, i).total_tx_timestamp_timeouts();
    }
  }
  return total;
}

std::uint64_t ExperimentHarness::total_deadline_misses() {
  std::uint64_t total = 0;
  for (std::size_t x = 0; x < scenario_.num_ecds(); ++x) {
    for (std::size_t i = 0; i < scenario_.ecd(x).vm_count(); ++i) {
      total += scenario_.vm(x, i).total_deadline_misses();
    }
  }
  return total;
}

} // namespace tsn::experiments
