// ScenarioBuilder: the paper's testbed (Fig. 2).
//
// Four ECDs, each with an integrated 6-port TSN switch. The switches form
// a full mesh (every remote clock-sync VM is exactly three links from the
// measurement VM, matching section III-A2's hop counts). Each ECD hosts
// two clock synchronization VMs with passthrough NICs on switch ports P0
// (c^x_1, the GM of gPTP domain x) and P1 (c^x_2, the redundant VM).
// External port configuration pins one spanning tree per domain rooted at
// the domain's GM; a measurement VLAN with static multicast forwarding
// provides the symmetric 3-link paths for the precision probe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gptp/bridge.hpp"
#include "hv/ecd.hpp"
#include "measure/path_delay.hpp"
#include "measure/precision_probe.hpp"
#include "net/frame_pool.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "obs/obs.hpp"
#include "sim/simulation.hpp"

namespace tsn::experiments {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::size_t num_ecds = 4;

  // Clock models.
  double max_drift_ppm = 5.0;        // the literature value behind Gamma
  double wander_sigma_ppm = 0.002;
  double nic_ts_jitter_ns = 8.0;     // i210-class HW timestamping
  double initial_phase_range_ns = 50'000.0; // random initial PHC offsets

  // Network calibration (targets the paper's measured dmin/dmax).
  std::int64_t host_link_delay_ns = 600;
  double host_link_jitter_ns = 15.0;
  std::int64_t mesh_link_delay_ns = 1'900;
  double mesh_link_jitter_ns = 40.0;
  std::int64_t switch_residence_ns = 1'800;
  double switch_residence_jitter_ns = 80.0;

  // Protocol.
  std::int64_t sync_interval_ns = 125'000'000;

  // Multi-domain aggregation. The validity threshold sits just below the
  // paper's bound Pi (~12.6 us): a -24 us attacker splits the clocks into
  // camps 12 us from the median, so honest nodes exclude the offenders --
  // and with two offenders lose their aggregation quorum, losing
  // synchronization exactly as in Fig. 3a.
  double validity_threshold_ns = 10'000.0;
  double startup_threshold_ns = 2'000.0;
  int startup_consecutive = 8;
  core::AggregationMethod aggregation = core::AggregationMethod::kFta;
  int fta_f = 1;

  // CLOCK_SYNCTIME maintenance.
  std::int64_t synctime_period_ns = 125'000'000;
  bool synctime_feed_forward = false;

  // Precision measurement.
  measure::ProbeConfig probe;
  std::size_t measurement_ecd = 0; ///< hosts the measurement VM c^m_2

  /// Kernel version per GM VM (c^x_1); redundant VMs get diverse defaults.
  std::vector<std::string> gm_kernels = {"4.19.1", "4.19.1", "4.19.1", "4.19.1"};

  /// The paper's architecture mutually synchronizes the GM clocks through
  /// the FTA (after the startup phase). Setting this false reproduces the
  /// Kyriakakis et al. baseline instead: GMs free-run unsynchronized,
  /// only client VMs aggregate (and skip the startup phase, which that
  /// design lacks); the client VM maintains each node's CLOCK_SYNCTIME.
  bool gm_mutual_sync = true;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Boot all ECDs (cold start at the current simulation time).
  void start();

  sim::Simulation& sim() { return sim_; }
  const ScenarioConfig& config() const { return cfg_; }

  std::size_t num_ecds() const { return ecds_.size(); }
  hv::Ecd& ecd(std::size_t x) { return *ecds_.at(x); }
  hv::ClockSyncVm& vm(std::size_t ecd_idx, std::size_t vm_idx) {
    return ecds_.at(ecd_idx)->vm(vm_idx);
  }
  hv::ClockSyncVm& gm_vm(std::size_t ecd_idx) { return vm(ecd_idx, 0); }
  net::Switch& ecd_switch(std::size_t x) { return *switches_.at(x); }
  gptp::TimeAwareBridge& bridge(std::size_t x) { return *bridges_.at(x); }
  measure::PrecisionProbe& probe() { return *probe_; }
  measure::PathDelayMeter& path_meter() { return *path_meter_; }
  hv::ClockSyncVm& measurement_vm() { return vm(cfg_.measurement_ecd, 1); }

  std::vector<hv::Ecd*> ecd_ptrs();
  /// Names of the probe's destination VMs (for gamma computation).
  std::vector<std::string> probe_destinations() const;
  std::string measurement_vm_name() const;

  /// Switch port of sw_x facing sw_y (x != y).
  std::size_t mesh_port(std::size_t x, std::size_t y) const;

  /// True once every running VM's coordinator reached the FTA phase.
  bool all_in_fta_phase();

  /// Max |PHC_a - PHC_b| over all GM clocks right now (true-time
  /// instrumentation, used by tests and sanity checks).
  double gm_clock_disagreement_ns();

  /// The scenario-wide metrics registry / trace ring every component of
  /// this world reports into. Single-threaded by construction (one world =
  /// one replica = one thread in the sweep runner).
  obs::MetricsRegistry& metrics() { return obs_.metrics; }
  obs::TraceRing& trace() { return obs_.trace; }
  /// Registry snapshot plus the event-queue totals harvested as gauges
  /// ("sim.events_executed", "sim.events_scheduled", ...).
  obs::MetricsSnapshot metrics_snapshot();

 private:
  void build_ecds();
  void build_network();
  void build_bridges();
  void configure_measurement_vlan();
  void configure_data_fdb();
  void build_probe();

  ScenarioConfig cfg_;
  sim::Simulation sim_;
  /// Frame-pool counters at construction. The pool is thread-local and
  /// outlives scenarios, so only the per-scenario deltas of the
  /// monotonic counters (acquired/released) are deterministic across
  /// sweep replicas; absolute totals, high_water and chunk counts carry
  /// history from whatever ran on this thread before.
  net::FramePool::Stats pool_base_;
  obs::Observability obs_; ///< must outlive the components holding handles
  std::vector<std::unique_ptr<hv::Ecd>> ecds_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  std::vector<std::unique_ptr<gptp::TimeAwareBridge>> bridges_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<measure::PrecisionProbe> probe_;
  std::unique_ptr<measure::PathDelayMeter> path_meter_;
};

} // namespace tsn::experiments
